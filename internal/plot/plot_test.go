package plot

import (
	"strings"
	"testing"

	"vecycle/internal/stats"
)

func TestLineEmpty(t *testing.T) {
	if _, err := Line(LineConfig{}); err == nil {
		t.Error("empty chart accepted")
	}
	if _, err := Line(LineConfig{}, Series{Name: "x"}); err == nil {
		t.Error("series without points accepted")
	}
}

func TestLineBasicShape(t *testing.T) {
	s := Series{Name: "decay"}
	for i := 0; i < 20; i++ {
		s.Points = append(s.Points, stats.Point{X: float64(i), Y: 1.0 / float64(i+1)})
	}
	out, err := Line(LineConfig{Title: "similarity", Width: 40, Height: 10}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "similarity") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no data markers")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + height rows + axis + x labels + legend.
	if len(lines) < 13 {
		t.Errorf("only %d lines rendered", len(lines))
	}
	// The decaying series should put a marker in the top-left and the
	// bottom-right region, not vice versa.
	topRows := strings.Join(lines[1:4], "\n")
	if !strings.Contains(topRows, "*") {
		t.Error("no marker near the top for the initial high values")
	}
}

func TestLineMultipleSeriesMarkers(t *testing.T) {
	a := Series{Name: "a", Points: []stats.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}}
	b := Series{Name: "b", Points: []stats.Point{{X: 0, Y: 1}, {X: 1, Y: 0}}}
	out, err := Line(LineConfig{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("second series marker missing")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Error("legend missing")
	}
}

func TestLineFixedYRange(t *testing.T) {
	s := Series{Points: []stats.Point{{X: 0, Y: 0.5}}}
	out, err := Line(LineConfig{YMin: 0, YMax: 1, Height: 9}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1") || !strings.Contains(out, "0") {
		t.Error("y-axis labels missing")
	}
}

func TestLineConstantSeries(t *testing.T) {
	s := Series{Points: []stats.Point{{X: 0, Y: 5}, {X: 1, Y: 5}}}
	if _, err := Line(LineConfig{}, s); err != nil {
		t.Errorf("constant series failed: %v", err)
	}
}

func TestBarsEmpty(t *testing.T) {
	if _, err := Bars(BarConfig{}, nil); err == nil {
		t.Error("empty bars accepted")
	}
}

func TestBarsRender(t *testing.T) {
	out, err := Bars(BarConfig{Title: "methods", Width: 20, Max: 1}, []Bar{
		{Label: "dedup", Value: 0.9},
		{Label: "hashes+dedup", Value: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "methods") || !strings.Contains(out, "dedup") {
		t.Error("labels missing")
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if len(rows) != 3 {
		t.Fatalf("rendered %d rows", len(rows))
	}
	long := strings.Count(rows[1], "█")
	short := strings.Count(rows[2], "█")
	if long <= short {
		t.Errorf("bar lengths wrong: %d vs %d", long, short)
	}
	if long != 18 { // 0.9 of width 20
		t.Errorf("dedup bar length %d, want 18", long)
	}
}

func TestBarsClampsAndAutoScales(t *testing.T) {
	out, err := Bars(BarConfig{Width: 10}, []Bar{
		{Label: "a", Value: -1},
		{Label: "b", Value: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(rows[0], "█") != 0 {
		t.Error("negative bar not clamped to zero")
	}
	if strings.Count(rows[1], "█") != 10 {
		t.Error("max bar not full width under auto-scale")
	}
}
