// Package plot renders small ASCII charts — line series and horizontal
// bars — so the benchmark harness can show the *shape* of each reproduced
// figure directly in the terminal, next to the numeric tables.
package plot

import (
	"fmt"
	"math"
	"strings"

	"vecycle/internal/stats"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	Points []stats.Point
}

// markers distinguish overlapping series, assigned in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// LineConfig controls line-chart rendering.
type LineConfig struct {
	// Title is printed above the chart.
	Title string
	// Width and Height are the plot area size in characters (excluding
	// axes). Defaults: 64×16.
	Width  int
	Height int
	// YMin/YMax fix the y-range; both zero = auto-scale.
	YMin float64
	YMax float64
	// XLabel and YLabel annotate the axes.
	XLabel string
	YLabel string
}

func (c *LineConfig) setDefaults() {
	if c.Width <= 0 {
		c.Width = 64
	}
	if c.Height <= 0 {
		c.Height = 16
	}
}

// Line renders one or more series as an ASCII line chart.
func Line(cfg LineConfig, series ...Series) (string, error) {
	cfg.setDefaults()
	var pts int
	for _, s := range series {
		pts += len(s.Points)
	}
	if pts == 0 {
		return "", fmt.Errorf("plot: no points")
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
		}
	}
	if cfg.YMin != 0 || cfg.YMax != 0 {
		ymin, ymax = cfg.YMin, cfg.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for _, p := range s.Points {
			col := int((p.X - xmin) / (xmax - xmin) * float64(cfg.Width-1))
			row := int((p.Y - ymin) / (ymax - ymin) * float64(cfg.Height-1))
			if col < 0 || col >= cfg.Width || row < 0 || row >= cfg.Height {
				continue
			}
			grid[cfg.Height-1-row][col] = mark
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yLab := func(v float64) string { return fmt.Sprintf("%8.3g", v) }
	for r := 0; r < cfg.Height; r++ {
		label := strings.Repeat(" ", 8)
		switch r {
		case 0:
			label = yLab(ymax)
		case cfg.Height - 1:
			label = yLab(ymin)
		case (cfg.Height - 1) / 2:
			label = yLab((ymin + ymax) / 2)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", cfg.Width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", 8), cfg.Width/2, xmin, cfg.Width-cfg.Width/2, xmax)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", 8), cfg.XLabel, cfg.YLabel)
	}
	if len(series) > 1 || series[0].Name != "" {
		legend := make([]string, 0, len(series))
		for si, s := range series {
			legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
		}
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 8), strings.Join(legend, "   "))
	}
	return b.String(), nil
}

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarConfig controls bar-chart rendering.
type BarConfig struct {
	Title string
	// Width is the maximum bar length in characters (default 50).
	Width int
	// Max fixes the scale; zero auto-scales to the largest value.
	Max float64
}

// Bars renders a horizontal bar chart.
func Bars(cfg BarConfig, bars []Bar) (string, error) {
	if len(bars) == 0 {
		return "", fmt.Errorf("plot: no bars")
	}
	if cfg.Width <= 0 {
		cfg.Width = 50
	}
	maxV := cfg.Max
	if maxV <= 0 {
		for _, b := range bars {
			if b.Value > maxV {
				maxV = b.Value
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	labelW := 0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&sb, "%s\n", cfg.Title)
	}
	for _, b := range bars {
		n := int(b.Value / maxV * float64(cfg.Width))
		if n < 0 {
			n = 0
		}
		if n > cfg.Width {
			n = cfg.Width
		}
		fmt.Fprintf(&sb, "%-*s |%s %.3g\n", labelW, b.Label, strings.Repeat("█", n), b.Value)
	}
	return sb.String(), nil
}
