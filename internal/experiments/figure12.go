package experiments

import (
	"time"

	"vecycle/internal/memmodel"
)

// Figure1 reproduces the six-panel similarity study: for two servers, two
// laptops and two crawlers, the min/avg/max snapshot similarity binned by
// the time between snapshots, up to 24 hours.
func Figure1(opts Options) ([]*Table, error) {
	machines := []memmodel.Preset{
		memmodel.ServerA(), memmodel.LaptopA(), memmodel.CrawlerA(),
		memmodel.ServerB(), memmodel.LaptopB(), memmodel.CrawlerB(),
	}
	tables := make([]*Table, 0, len(machines))
	for _, p := range machines {
		tbl, err := similarityTable(p, 24*time.Hour, opts)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// Figure2 reproduces Server C's similarity over the entire 7-day trace.
func Figure2(opts Options) (*Table, error) {
	return similarityTable(memmodel.ServerC(), 7*24*time.Hour, opts)
}

func similarityTable(p memmodel.Preset, maxDelta time.Duration, opts Options) (*Table, error) {
	corpus, err := corpusFor(p)
	if err != nil {
		return nil, err
	}
	series, err := corpus.BinnedSimilarity(30*time.Minute, maxDelta, opts.stride())
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title: "Snapshot similarity vs time delta: " + p.Config.Name +
			" (" + p.OS + ", " + formatGiB(p.Config.RAMBytes) + ")",
		Columns: []string{"delta_h", "pairs", "min", "avg", "max"},
	}
	for _, b := range series {
		tbl.AddRow(formatHours(b.Center), b.N, b.Min, b.Avg, b.Max)
	}
	return tbl, nil
}
