package experiments

import (
	"fmt"
	"time"

	"vecycle/internal/fingerprint"
	"vecycle/internal/memmodel"
	"vecycle/internal/methods"
	"vecycle/internal/sched"
)

// HotspotResult carries the hot-spot mitigation study — the first
// migration cause the paper's introduction cites (Wood et al. [27]).
type HotspotResult struct {
	Summary *Table
	// Migrations across all VMs over the simulated window.
	Migrations int
	// RevisitFraction is how often a migration returned a VM to a host it
	// had already visited — where a checkpoint awaits.
	RevisitFraction float64
	// Traffic fractions of the full-migration baseline.
	DedupFraction   float64
	VeCycleFraction float64
}

// Hotspot replays a week of greedy load balancing over eight modelled VMs
// on three hosts, with checkpoints retained at every visited host. Laptops
// going online and offline keep shifting the load, so VMs oscillate within
// a small host set — the Birke et al. pattern.
func Hotspot() (*HotspotResult, error) {
	presets := []memmodel.Preset{
		memmodel.ServerA(), memmodel.ServerB(), memmodel.ServerC(),
		memmodel.CrawlerA(), memmodel.CrawlerB(),
		memmodel.LaptopA(), memmodel.LaptopB(), memmodel.LaptopC(),
	}
	const hosts = 3
	initial := []int{0, 1, 2, 0, 1, 2, 0, 1}

	// Build machines, their activity handles, and fingerprint timelines.
	type vmState struct {
		preset  memmodel.Preset
		machine *memmodel.Machine
		byTime  map[int64]*fingerprint.Fingerprint
	}
	states := make([]*vmState, len(presets))
	var times []time.Time
	const steps = 336 // one week
	for i, p := range presets {
		m, err := p.Build()
		if err != nil {
			return nil, err
		}
		st := &vmState{preset: p, machine: m, byTime: map[int64]*fingerprint.Fingerprint{}}
		for s := 0; s < steps; s++ {
			ts := m.Now()
			if i == 0 {
				times = append(times, ts)
			}
			st.byTime[ts.Unix()] = m.Fingerprint()
			m.Step()
		}
		states[i] = st
	}

	vms := make([]sched.BalanceVM, len(states))
	for i, st := range states {
		vms[i] = sched.BalanceVM{Name: st.preset.Config.Name, Level: st.preset.Activity.Level}
	}
	policy := sched.BalancePolicy{HighWater: 1.1, MaxMovesPerStep: 1}
	events, err := policy.PlanBalance(times, vms, hosts, initial)
	if err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("experiments: balancer produced no migrations")
	}

	// Traffic accounting with per-(VM, host) checkpoints.
	stateByName := map[string]*vmState{}
	for _, st := range states {
		stateByName[st.preset.Config.Name] = st
	}
	checkpoints := map[string]map[int]*fingerprint.Fingerprint{}
	var full, dedup, vecycle float64
	for _, ev := range events {
		st := stateByName[ev.VM]
		cur := st.byTime[ev.At.Unix()]
		if cur == nil {
			return nil, fmt.Errorf("experiments: no fingerprint for %s at %v", ev.VM, ev.At)
		}
		perHost := checkpoints[ev.VM]
		if perHost == nil {
			perHost = map[int]*fingerprint.Fingerprint{}
			checkpoints[ev.VM] = perHost
		}
		b := methods.Analyze(perHost[ev.To], cur)
		full++
		dedup += b.Fraction(methods.Dedup)
		vecycle += b.Fraction(methods.HashesDedup)
		// The source host keeps a checkpoint of the departing state.
		perHost[ev.From] = cur
	}

	res := &HotspotResult{
		Migrations:      len(events),
		RevisitFraction: sched.RevisitFraction(events, vms, initial),
		DedupFraction:   dedup / full,
		VeCycleFraction: vecycle / full,
	}
	visited := sched.HostsVisited(events, vms, initial)
	summary := &Table{
		Title:   "Hot-spot mitigation: one week, 8 VMs, 3 hosts",
		Columns: []string{"metric", "value"},
	}
	summary.AddRow("migrations", res.Migrations)
	summary.AddRow("revisit fraction", fmt.Sprintf("%.2f", res.RevisitFraction))
	summary.AddRow("distinct hosts per VM (sorted)", fmt.Sprintf("%v", visited))
	summary.AddRow("dedup traffic (fraction of full)", res.DedupFraction)
	summary.AddRow("VeCycle traffic (fraction of full)", res.VeCycleFraction)
	res.Summary = summary
	return res, nil
}
