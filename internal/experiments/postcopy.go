package experiments

import (
	"fmt"

	"vecycle/internal/migsim"
)

// PostCopy compares pre-copy and post-copy hand-over at paper scale — an
// extension the paper's related work (§5, Hines & Gopalan) points at.
// With checkpoint recycling, both modes are bound by the source's checksum
// pass (§3.4), so the recycled post-copy resumes in the time a recycled
// pre-copy needs in total — an order of magnitude before a baseline
// pre-copy hands over — and, unlike pre-copy, its total is insensitive to
// guest write rate (no dirty re-rounds).
func PostCopy() ([]*Table, error) {
	tbl := &Table{
		Title: "Post-copy extension: hand-over latency vs pre-copy (LAN, 3% drift)",
		Columns: []string{"mem_MiB", "precopy_baseline_s", "precopy_vecycle_s",
			"postcopy_resume_s", "postcopy_total_s", "net_faulted_pages"},
	}
	for _, mib := range []int64{1024, 2048, 4096} {
		g, err := migsim.NewGuest("idle", mib<<20, mib)
		if err != nil {
			return nil, err
		}
		if err := g.FillRandom(0.95); err != nil {
			return nil, err
		}
		cp := g.Checkpoint()
		if err := g.UpdatePercent(1.0, 3); err != nil {
			return nil, err
		}
		base, err := migsim.Simulate(g, nil, migsim.LANCost(), migsim.Baseline)
		if err != nil {
			return nil, err
		}
		pre, err := migsim.Simulate(g, cp, migsim.LANCost(), migsim.VeCycle)
		if err != nil {
			return nil, err
		}
		post, err := migsim.SimulatePostCopy(g, cp, migsim.LANCost())
		if err != nil {
			return nil, err
		}
		tbl.AddRow(mib,
			fmt.Sprintf("%.1f", base.Time.Seconds()),
			fmt.Sprintf("%.1f", pre.Time.Seconds()),
			fmt.Sprintf("%.2f", post.ResumeDelay.Seconds()),
			fmt.Sprintf("%.1f", post.Time.Seconds()),
			post.MissingPages)
	}
	return []*Table{tbl}, nil
}
