package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment outputs")

// goldenExperiments are the fast, fully deterministic runners whose exact
// output is pinned: any change to presets, cost models or formatting shows
// up as a diff. Regenerate deliberately with `go test -run Golden
// -update-golden ./internal/experiments`.
var goldenExperiments = []string{"table1", "figure6", "figure7", "figure8", "postcopy"}

func renderExperiment(t *testing.T, name string) string {
	t.Helper()
	tables, err := Run(name, Options{Stride: 8})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tbl := range tables {
		b.WriteString(tbl.String())
	}
	return b.String()
}

func TestGoldenOutputs(t *testing.T) {
	for _, name := range goldenExperiments {
		t.Run(name, func(t *testing.T) {
			got := renderExperiment(t, name)
			path := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
