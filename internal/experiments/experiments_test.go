package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{Title: "demo", Columns: []string{"a", "long_column"}}
	tbl.AddRow("x", 1.5)
	tbl.AddRow("longer_cell", "y")
	out := tbl.String()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "1.500") {
		t.Error("float not formatted")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, blank, header, dashes, 2 rows → 6 minus blank merge
		t.Logf("output:\n%s", out)
	}
}

func TestTable1Data(t *testing.T) {
	tbl := Table1Data()
	if len(tbl.Rows) != 7 {
		t.Fatalf("Table 1 has %d systems, want 7", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "Server A" || tbl.Rows[0][3] != "1 GiB" {
		t.Errorf("row 0 = %v", tbl.Rows[0])
	}
	if tbl.Rows[3][1] != "OSX" {
		t.Errorf("laptop OS = %v", tbl.Rows[3])
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("figure3", Options{}); err == nil {
		t.Error("figure3 should be rejected (concept diagram)")
	}
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestNamesAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, name := range Names() {
		tables, err := Run(name, Options{Stride: 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tables) == 0 {
			t.Errorf("%s produced no tables", name)
		}
		for _, tbl := range tables {
			if len(tbl.Rows) == 0 {
				t.Errorf("%s: table %q is empty", name, tbl.Title)
			}
			if len(tbl.Columns) == 0 {
				t.Errorf("%s: table %q has no columns", name, tbl.Title)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("%s: table %q row width %d != %d columns", name, tbl.Title, len(row), len(tbl.Columns))
				}
			}
		}
	}
}

func TestFigure1PanelsAndDecay(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic sweep")
	}
	tables, err := Figure1(Options{Stride: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("Figure 1 has %d panels, want 6", len(tables))
	}
	// Each panel's average similarity must broadly decrease from the first
	// bin to the last (the paper's headline trend).
	for _, tbl := range tables {
		if len(tbl.Rows) < 3 {
			t.Errorf("%s: only %d bins", tbl.Title, len(tbl.Rows))
			continue
		}
		first := tbl.Rows[0][3] // avg column
		last := tbl.Rows[len(tbl.Rows)-1][3]
		if first <= last {
			t.Errorf("%s: similarity did not decay (%s → %s)", tbl.Title, first, last)
		}
	}
}

func TestFigure2WeekRange(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic sweep")
	}
	tbl, err := Figure2(Options{Stride: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The last bin should be near the 7-day mark (x-axis of Figure 2).
	lastHour := tbl.Rows[len(tbl.Rows)-1][0]
	if !strings.HasPrefix(lastHour, "16") {
		t.Errorf("last delta = %s h, want ≈167", lastHour)
	}
}

func TestFigure6PaperShape(t *testing.T) {
	tables, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Figure 6 has %d panels, want 3", len(tables))
	}
	lan := tables[0]
	if len(lan.Rows) != 4 {
		t.Fatalf("LAN panel has %d sizes, want 4", len(lan.Rows))
	}
	// Every row: VeCycle strictly faster, reduction strongly negative.
	for _, row := range lan.Rows {
		if !strings.HasPrefix(row[3], "-") {
			t.Errorf("LAN row %v: no reduction", row)
		}
	}
	traffic := tables[2]
	for _, row := range traffic.Rows {
		if !strings.HasPrefix(row[3], "-9") {
			t.Errorf("traffic row %v: paper reports ~-94%%", row)
		}
	}
}

func TestFigure7ApproachesBaseline(t *testing.T) {
	tables, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	lan := tables[0]
	if len(lan.Rows) != 5 {
		t.Fatalf("LAN panel has %d update levels, want 5", len(lan.Rows))
	}
	// At 100 % updates VeCycle's reduction should be small (a few percent
	// at most); at 0 % it should be large.
	first, last := lan.Rows[0], lan.Rows[len(lan.Rows)-1]
	if first[3] >= last[3] { // e.g. "-71%" < "-9%" lexically; compare crudely via parse
		t.Logf("first=%v last=%v", first, last)
	}
	if !strings.HasPrefix(first[3], "-") {
		t.Errorf("0%% updates row %v: expected a large reduction", first)
	}
}

func TestFigure8PaperNumbers(t *testing.T) {
	res, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.PerMigration.Rows); got != 26 {
		t.Fatalf("%d migrations, paper has 26", got)
	}
	// Paper: dedup ≈ 86 % of baseline, VeCycle ≈ 25 %, and VeCycle
	// transfers ~9 % fewer pages than dirty tracking with deduplication.
	if res.DedupFraction < 0.78 || res.DedupFraction > 0.93 {
		t.Errorf("dedup fraction = %.3f, paper reports 0.86", res.DedupFraction)
	}
	if res.VeCycleFraction < 0.15 || res.VeCycleFraction > 0.35 {
		t.Errorf("VeCycle fraction = %.3f, paper reports 0.25", res.VeCycleFraction)
	}
	if res.VeCycleFraction >= res.DirtyDedupFraction {
		t.Errorf("VeCycle (%.3f) not below dirty+dedup (%.3f)",
			res.VeCycleFraction, res.DirtyDedupFraction)
	}
	// The first migration has no checkpoint: its VeCycle traffic is the
	// dedup traffic (the paper's "first migration causes the most traffic").
	first := res.PerMigration.Rows[0]
	if first[2] != first[3] {
		t.Errorf("first migration dedup %s != vecycle %s", first[2], first[3])
	}
}

func TestFigure4Panels(t *testing.T) {
	tables, err := Figure4(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Figure 4 has %d panels, want 3", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s empty", tbl.Title)
		}
	}
}

func TestFigure5Panels(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic sweep")
	}
	tables, err := Figure5(Options{Stride: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Figure 5 has %d panels, want 3", len(tables))
	}
	bars := tables[0]
	if len(bars.Rows) != 10 { // 2 machines × 5 methods
		t.Errorf("bar panel has %d rows, want 10", len(bars.Rows))
	}
	// CDF values must be within [0,1] and non-decreasing per machine.
	for _, tbl := range tables[1:] {
		prev := map[string]string{}
		for _, row := range tbl.Rows {
			machine, cdf := row[0], row[2]
			if p, ok := prev[machine]; ok && cdf < p {
				t.Errorf("%s: CDF not monotone for %s (%s < %s)", tbl.Title, machine, cdf, p)
			}
			prev[machine] = cdf
		}
	}
}

func TestConsolidationScenario(t *testing.T) {
	res, err := Consolidation()
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations < 6 {
		t.Errorf("only %d migrations across three VMs", res.Migrations)
	}
	if len(res.PerVM.Rows) != 3 {
		t.Errorf("per-VM table has %d rows", len(res.PerVM.Rows))
	}
	// The consolidation rhythm (hours between moves) should recycle well:
	// clearly better than dedup alone, in the rough band of the VDI result.
	if res.VeCycleFraction >= res.DedupFraction {
		t.Errorf("VeCycle %.3f not below dedup %.3f", res.VeCycleFraction, res.DedupFraction)
	}
	if res.VeCycleFraction > 0.6 {
		t.Errorf("VeCycle fraction %.3f, expected substantial reuse", res.VeCycleFraction)
	}
	if res.DedupFraction < 0.6 || res.DedupFraction > 0.95 {
		t.Errorf("dedup fraction %.3f outside plausible band", res.DedupFraction)
	}
}

func TestPlotsAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every chart")
	}
	for _, name := range Names() {
		charts, err := Plots(name, Options{Stride: 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "table1" || name == "postcopy" || name == "hotspot" || name == "downtime" {
			if len(charts) != 0 {
				t.Errorf("%s produced charts", name)
			}
			continue
		}
		if len(charts) == 0 {
			t.Errorf("%s produced no charts", name)
		}
		for i, c := range charts {
			if len(c) < 100 {
				t.Errorf("%s chart %d suspiciously small (%d bytes)", name, i, len(c))
			}
		}
	}
	if _, err := Plots("bogus", Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPostCopyScenario(t *testing.T) {
	tables, err := PostCopy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("unexpected shape: %+v", tables)
	}
	for _, row := range tables[0].Rows {
		// Post-copy resume must beat the baseline pre-copy hand-over.
		resume, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		baseline, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if resume >= baseline {
			t.Errorf("row %v: resume %s not below baseline %s", row[0], row[3], row[1])
		}
	}
}

func TestHotspotScenario(t *testing.T) {
	res, err := Hotspot()
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations < 10 {
		t.Errorf("only %d migrations in a week of balancing", res.Migrations)
	}
	// The Birke et al. pattern: most migrations return to a visited host.
	if res.RevisitFraction < 0.5 {
		t.Errorf("revisit fraction = %.2f, expected the ping-pong pattern", res.RevisitFraction)
	}
	if res.VeCycleFraction >= res.DedupFraction {
		t.Errorf("VeCycle %.3f not below dedup %.3f", res.VeCycleFraction, res.DedupFraction)
	}
	// Load-balancing migrations move *busy* VMs, so reuse is real but
	// modest — consistent with §2.3's "an active VM ... will only gain a
	// small benefit".
	if res.VeCycleFraction < 0.3 || res.VeCycleFraction > 0.95 {
		t.Errorf("VeCycle fraction = %.3f outside plausible band", res.VeCycleFraction)
	}
}
