package experiments

import (
	"fmt"
	"time"

	"vecycle/internal/migsim"
)

// Figure6 reproduces the best-case study (§4.4): an idle guest with a
// fresh checkpoint at the destination, swept over memory sizes of 1, 2, 4
// and 6 GiB, on LAN and emulated WAN. Three tables mirror the three panels:
// LAN migration time, WAN migration time, and source send traffic.
func Figure6() ([]*Table, error) {
	sizes := []int64{1024, 2048, 4096, 6144} // MiB, the paper's x-axis

	lan := &Table{
		Title:   "Figure 6 (left): best-case migration time, LAN [s]",
		Columns: []string{"mem_MiB", "QEMU 2.0", "VeCycle", "reduction"},
	}
	wan := &Table{
		Title:   "Figure 6 (centre): best-case migration time, WAN [s]",
		Columns: []string{"mem_MiB", "QEMU 2.0", "VeCycle", "reduction"},
	}
	traffic := &Table{
		Title:   "Figure 6 (right): source send traffic [GiB]",
		Columns: []string{"mem_MiB", "QEMU 2.0", "VeCycle", "reduction"},
	}

	for _, mib := range sizes {
		g, err := migsim.NewGuest("idle", mib<<20, mib)
		if err != nil {
			return nil, err
		}
		// §4.4 preparation: 95 % of memory filled with random data, then
		// the guest idles. Even an idle Ubuntu guest runs background
		// daemons, so a few percent of memory still drifts between the
		// checkpoint and the migration — that drift is what separates the
		// paper's −94 % traffic reduction from a perfect −99 %.
		if err := g.FillRandom(0.95); err != nil {
			return nil, err
		}
		cp := g.Checkpoint()
		if err := g.UpdatePercent(1.0, 3); err != nil {
			return nil, err
		}

		for _, env := range []struct {
			cost  migsim.CostModel
			table *Table
		}{
			{migsim.LANCost(), lan},
			{migsim.WANCost(), wan},
		} {
			base, err := migsim.Simulate(g, nil, env.cost, migsim.Baseline)
			if err != nil {
				return nil, err
			}
			vc, err := migsim.Simulate(g, cp, env.cost, migsim.VeCycle)
			if err != nil {
				return nil, err
			}
			env.table.AddRow(mib,
				fmt.Sprintf("%.1f", base.Time.Seconds()),
				fmt.Sprintf("%.1f", vc.Time.Seconds()),
				formatReduction(float64(base.Time), float64(vc.Time)))
			if env.table == lan {
				traffic.AddRow(mib,
					fmt.Sprintf("%.3f", gibOf(base.SourceSendBytes)),
					fmt.Sprintf("%.3f", gibOf(vc.SourceSendBytes)),
					formatReduction(float64(base.SourceSendBytes), float64(vc.SourceSendBytes)))
			}
		}
	}
	return []*Table{lan, wan, traffic}, nil
}

// Figure7 reproduces the controlled update-rate study (§4.5): a 4 GiB
// guest with a ramdisk spanning 90 % of memory, of which 0–100 % is
// rewritten between checkpoint and migration.
func Figure7() ([]*Table, error) {
	const memBytes = int64(4096) << 20
	updates := []float64{0, 25, 50, 75, 100}

	lan := &Table{
		Title:   "Figure 7 (left): migration time vs update rate, LAN [s]",
		Columns: []string{"updates_pct", "QEMU 2.0", "VeCycle", "reduction"},
	}
	wan := &Table{
		Title:   "Figure 7 (centre): migration time vs update rate, WAN [s]",
		Columns: []string{"updates_pct", "QEMU 2.0", "VeCycle", "reduction"},
	}
	traffic := &Table{
		Title:   "Figure 7 (right): source send traffic vs update rate [GiB]",
		Columns: []string{"updates_pct", "QEMU 2.0", "VeCycle", "reduction"},
	}

	for _, pct := range updates {
		g, err := migsim.NewGuest("ramdisk", memBytes, int64(pct)+17)
		if err != nil {
			return nil, err
		}
		if err := g.FillRandom(1); err != nil {
			return nil, err
		}
		cp := g.Checkpoint()
		if err := g.UpdatePercent(0.9, pct); err != nil {
			return nil, err
		}
		for _, env := range []struct {
			cost  migsim.CostModel
			table *Table
		}{
			{migsim.LANCost(), lan},
			{migsim.WANCost(), wan},
		} {
			base, err := migsim.Simulate(g, nil, env.cost, migsim.Baseline)
			if err != nil {
				return nil, err
			}
			vc, err := migsim.Simulate(g, cp, env.cost, migsim.VeCycle)
			if err != nil {
				return nil, err
			}
			env.table.AddRow(pct,
				fmt.Sprintf("%.1f", base.Time.Seconds()),
				fmt.Sprintf("%.1f", vc.Time.Seconds()),
				formatReduction(float64(base.Time), float64(vc.Time)))
			if env.table == lan {
				traffic.AddRow(pct,
					fmt.Sprintf("%.3f", gibOf(base.SourceSendBytes)),
					fmt.Sprintf("%.3f", gibOf(vc.SourceSendBytes)),
					formatReduction(float64(base.SourceSendBytes), float64(vc.SourceSendBytes)))
			}
		}
	}
	return []*Table{lan, wan, traffic}, nil
}

func gibOf(bytes int64) float64 { return float64(bytes) / (1 << 30) }

func formatReduction(base, vc float64) string {
	if base <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", (vc-base)/base*100)
}

func formatGiB(bytes int64) string { return fmt.Sprintf("%d GiB", bytes>>30) }

func formatHours(d time.Duration) string { return fmt.Sprintf("%.1f", d.Hours()) }
