package experiments

import (
	"fmt"
	"strconv"
	"time"

	"vecycle/internal/memmodel"
	"vecycle/internal/methods"
	"vecycle/internal/plot"
	"vecycle/internal/stats"
)

// Plots renders ASCII charts for a named experiment, mirroring the shape
// of the corresponding paper figure. Experiments that are pure tables
// (table1) return no charts.
func Plots(name string, opts Options) ([]string, error) {
	switch name {
	case "table1":
		return nil, nil
	case "figure1":
		return plotSimilarityPanels([]memmodel.Preset{
			memmodel.ServerA(), memmodel.LaptopA(), memmodel.CrawlerA(),
			memmodel.ServerB(), memmodel.LaptopB(), memmodel.CrawlerB(),
		}, 24*time.Hour, opts)
	case "figure2":
		return plotSimilarityPanels([]memmodel.Preset{memmodel.ServerC()}, 7*24*time.Hour, opts)
	case "figure4":
		return plotFigure4()
	case "figure5":
		return plotFigure5(opts)
	case "figure6":
		return plotFigure67("figure6")
	case "figure7":
		return plotFigure67("figure7")
	case "figure8":
		return plotFigure8()
	case "consolidation":
		return plotConsolidation()
	case "postcopy", "hotspot", "downtime":
		return nil, nil // summary tables; nothing to plot
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", name)
	}
}

func plotSimilarityPanels(presets []memmodel.Preset, maxDelta time.Duration, opts Options) ([]string, error) {
	var out []string
	for _, p := range presets {
		corpus, err := corpusFor(p)
		if err != nil {
			return nil, err
		}
		series, err := corpus.BinnedSimilarity(30*time.Minute, maxDelta, opts.stride())
		if err != nil {
			return nil, err
		}
		minS := plot.Series{Name: "min"}
		avgS := plot.Series{Name: "avg"}
		maxS := plot.Series{Name: "max"}
		for _, b := range series {
			x := b.Center.Hours()
			minS.Points = append(minS.Points, stats.Point{X: x, Y: b.Min})
			avgS.Points = append(avgS.Points, stats.Point{X: x, Y: b.Avg})
			maxS.Points = append(maxS.Points, stats.Point{X: x, Y: b.Max})
		}
		chart, err := plot.Line(plot.LineConfig{
			Title:  "Snapshot similarity: " + p.Config.Name,
			YMin:   0,
			YMax:   1,
			XLabel: "time between snapshots [h]",
			YLabel: "similarity",
		}, maxS, avgS, minS)
		if err != nil {
			return nil, err
		}
		out = append(out, chart)
	}
	return out, nil
}

func plotFigure4() ([]string, error) {
	var series []plot.Series
	for _, p := range []memmodel.Preset{memmodel.ServerA(), memmodel.ServerB(), memmodel.ServerC()} {
		corpus, err := corpusFor(p)
		if err != nil {
			return nil, err
		}
		s := plot.Series{Name: p.Config.Name}
		for _, pt := range corpus.DupSeries() {
			s.Points = append(s.Points, stats.Point{X: pt.X, Y: 100 * pt.Y})
		}
		series = append(series, s)
	}
	chart, err := plot.Line(plot.LineConfig{
		Title:  "Duplicate pages, servers [%]",
		XLabel: "time [h]",
		YLabel: "duplicate pages [%]",
	}, series...)
	if err != nil {
		return nil, err
	}
	return []string{chart}, nil
}

func plotFigure5(opts Options) ([]string, error) {
	var out []string
	for _, p := range []memmodel.Preset{memmodel.ServerA(), memmodel.ServerB()} {
		means, _, err := figure5Sweep(p, opts)
		if err != nil {
			return nil, err
		}
		bars := make([]plot.Bar, 0, 5)
		for _, m := range []methods.Method{methods.Dedup, methods.Dirty,
			methods.DirtyDedup, methods.Hashes, methods.HashesDedup} {
			bars = append(bars, plot.Bar{Label: m.String(), Value: means[m]})
		}
		chart, err := plot.Bars(plot.BarConfig{
			Title: "Fraction of baseline traffic: " + p.Config.Name,
			Max:   1,
		}, bars)
		if err != nil {
			return nil, err
		}
		out = append(out, chart)
	}
	return out, nil
}

// plotFigure67 turns the time tables of Figure 6/7 into line charts.
func plotFigure67(name string) ([]string, error) {
	tables, err := Run(name, Options{})
	if err != nil {
		return nil, err
	}
	var out []string
	for _, tbl := range tables[:2] { // LAN and WAN time panels
		base := plot.Series{Name: "QEMU 2.0"}
		vc := plot.Series{Name: "VeCycle"}
		for _, row := range tbl.Rows {
			x, err := strconv.ParseFloat(row[0], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: parse x %q: %w", row[0], err)
			}
			yb, err := strconv.ParseFloat(row[1], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: parse baseline %q: %w", row[1], err)
			}
			yv, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: parse vecycle %q: %w", row[2], err)
			}
			base.Points = append(base.Points, stats.Point{X: x, Y: yb})
			vc.Points = append(vc.Points, stats.Point{X: x, Y: yv})
		}
		chart, err := plot.Line(plot.LineConfig{
			Title:  tbl.Title,
			XLabel: tbl.Columns[0],
			YLabel: "migration time [s]",
		}, base, vc)
		if err != nil {
			return nil, err
		}
		out = append(out, chart)
	}
	return out, nil
}

func plotFigure8() ([]string, error) {
	res, err := Figure8()
	if err != nil {
		return nil, err
	}
	dedup := plot.Series{Name: "dedup"}
	vecycle := plot.Series{Name: "vecycle"}
	for _, row := range res.PerMigration.Rows {
		x, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: parse migration %q: %w", row[0], err)
		}
		yd, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: parse dedup %q: %w", row[2], err)
		}
		yv, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: parse vecycle %q: %w", row[3], err)
		}
		dedup.Points = append(dedup.Points, stats.Point{X: x, Y: yd})
		vecycle.Points = append(vecycle.Points, stats.Point{X: x, Y: yv})
	}
	chart, err := plot.Line(plot.LineConfig{
		Title:  "Figure 8: per-migration traffic [% of RAM]",
		YMin:   0,
		YMax:   100,
		XLabel: "migration #",
		YLabel: "% of RAM",
	}, dedup, vecycle)
	if err != nil {
		return nil, err
	}
	return []string{chart}, nil
}

func plotConsolidation() ([]string, error) {
	res, err := Consolidation()
	if err != nil {
		return nil, err
	}
	bars := []plot.Bar{
		{Label: "full migration", Value: 1},
		{Label: "sender-side dedup", Value: res.DedupFraction},
		{Label: "VeCycle (+dedup)", Value: res.VeCycleFraction},
	}
	chart, err := plot.Bars(plot.BarConfig{
		Title: "Consolidation: aggregate traffic [fraction of full]",
		Max:   1,
	}, bars)
	if err != nil {
		return nil, err
	}
	return []string{chart}, nil
}
