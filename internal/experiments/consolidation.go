package experiments

import (
	"fmt"
	"time"

	"vecycle/internal/fingerprint"
	"vecycle/internal/memmodel"
	"vecycle/internal/methods"
	"vecycle/internal/sched"
)

// ConsolidationResult carries the dynamic-consolidation study: the second
// use case §2.2 motivates, evaluated the same way as the VDI scenario.
type ConsolidationResult struct {
	PerVM  *Table
	Totals *Table
	// Aggregate fractions of the full-migration baseline across all VMs.
	DedupFraction   float64
	VeCycleFraction float64
	Migrations      int
}

// Consolidation replays a threshold-driven consolidation loop over the
// laptop and desktop models: each VM moves to an active host when it wakes
// and back to the consolidation server when it has been quiet for an hour,
// with checkpoints left on both sides.
func Consolidation() (*ConsolidationResult, error) {
	policy := sched.ConsolidationPolicy{
		WakeLevel:  0.5,
		SleepLevel: 0.1,
		MinQuiet:   time.Hour,
	}
	presets := []memmodel.Preset{
		memmodel.LaptopA(), memmodel.LaptopB(), memmodel.Desktop(),
	}

	perVM := &Table{
		Title:   "Consolidation: per-VM aggregate traffic [fraction of full]",
		Columns: []string{"vm", "migrations", "dedup", "vecycle"},
	}
	var sumFull, sumDedup, sumVecycle float64
	totalMigs := 0

	for _, p := range presets {
		m, err := p.Build()
		if err != nil {
			return nil, err
		}
		act := p.Activity
		// Sample the machine's activity and fingerprints together.
		var times []time.Time
		byTime := map[int64]*fingerprint.Fingerprint{}
		steps := p.TraceSteps
		if steps > 336 {
			steps = 336 // a week is plenty for the policy study
		}
		for i := 0; i < steps; i++ {
			ts := m.Now()
			times = append(times, ts)
			byTime[ts.Unix()] = m.Fingerprint()
			m.Step()
		}
		events, err := policy.Plan(times, act.Level)
		if err != nil {
			return nil, err
		}
		if len(events) == 0 {
			return nil, fmt.Errorf("experiments: %s never woke up", p.Config.Name)
		}

		checkpoints := map[sched.Direction]*fingerprint.Fingerprint{}
		var full, dedup, vecycle float64
		for _, ev := range events {
			cur := byTime[ev.At.Unix()]
			old := checkpoints[ev.Direction]
			b := methods.Analyze(old, cur)
			full++
			dedup += b.Fraction(methods.Dedup)
			vecycle += b.Fraction(methods.HashesDedup)
			checkpoints[oppositeDirection(ev.Direction)] = cur
		}
		perVM.AddRow(p.Config.Name, len(events), dedup/full, vecycle/full)
		sumFull += full
		sumDedup += dedup
		sumVecycle += vecycle
		totalMigs += len(events)
	}

	res := &ConsolidationResult{
		PerVM:           perVM,
		DedupFraction:   sumDedup / sumFull,
		VeCycleFraction: sumVecycle / sumFull,
		Migrations:      totalMigs,
	}
	totals := &Table{
		Title:   "Consolidation totals: traffic across all VMs",
		Columns: []string{"technique", "fraction_of_baseline"},
	}
	totals.AddRow("full migration", 1.0)
	totals.AddRow("sender-side dedup", res.DedupFraction)
	totals.AddRow("VeCycle (+dedup)", res.VeCycleFraction)
	res.Totals = totals
	return res, nil
}
