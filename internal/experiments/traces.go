package experiments

import (
	"fmt"
	"sync"

	"vecycle/internal/fingerprint"
	"vecycle/internal/memmodel"
)

// Options tune the trace-driven experiments.
type Options struct {
	// Stride subsamples the fingerprint list before the quadratic all-pairs
	// sweeps of Figures 1, 2 and 5. Stride 1 is the full sweep; the default
	// of 4 cuts the pair count 16× with no visible change in the binned
	// statistics.
	Stride int
}

func (o Options) stride() int {
	if o.Stride < 1 {
		return 4
	}
	return o.Stride
}

// traceCache memoizes generated traces: several figures consume the same
// machines, and trace generation is the expensive step.
var traceCache sync.Map // machine name → []*fingerprint.Fingerprint

// traceFor generates (or recalls) the full trace of a preset machine.
func traceFor(p memmodel.Preset) ([]*fingerprint.Fingerprint, error) {
	if cached, ok := traceCache.Load(p.Config.Name); ok {
		return cached.([]*fingerprint.Fingerprint), nil
	}
	m, err := p.Build()
	if err != nil {
		return nil, fmt.Errorf("experiments: build %s: %w", p.Config.Name, err)
	}
	fps := m.Trace(p.TraceSteps)
	if len(fps) == 0 {
		return nil, fmt.Errorf("experiments: %s produced an empty trace", p.Config.Name)
	}
	traceCache.Store(p.Config.Name, fps)
	return fps, nil
}

// corpusFor wraps traceFor in a fingerprint corpus.
func corpusFor(p memmodel.Preset) (*fingerprint.Corpus, error) {
	fps, err := traceFor(p)
	if err != nil {
		return nil, err
	}
	return fingerprint.NewCorpus(fps)
}

// Table1Data reproduces Table 1: the systems whose traces the study
// analyzes.
func Table1Data() *Table {
	t := &Table{
		Title:   "Table 1: traced systems (synthetic models)",
		Columns: []string{"Name", "OS", "Trace ID", "RAM", "Fingerprints"},
	}
	for _, p := range memmodel.Table1() {
		t.AddRow(
			p.Config.Name,
			p.OS,
			p.TraceID,
			fmt.Sprintf("%d GiB", p.Config.RAMBytes>>30),
			p.TraceSteps,
		)
	}
	return t
}
