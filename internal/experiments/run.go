package experiments

import "fmt"

// Run regenerates a named experiment: "table1", "figure1" … "figure8"
// (Figure 3 is the paper's concept diagram; its set relations are asserted
// by the methods package tests rather than plotted), or "consolidation" —
// the dynamic-consolidation scenario §2.2 motivates, beyond the paper's
// own evaluation.
func Run(name string, opts Options) ([]*Table, error) {
	switch name {
	case "table1":
		return []*Table{Table1Data()}, nil
	case "figure1":
		return Figure1(opts)
	case "figure2":
		t, err := Figure2(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	case "figure4":
		return Figure4(12)
	case "figure5":
		return Figure5(opts)
	case "figure6":
		return Figure6()
	case "figure7":
		return Figure7()
	case "figure8":
		res, err := Figure8()
		if err != nil {
			return nil, err
		}
		return []*Table{res.PerMigration, res.Totals}, nil
	case "postcopy":
		return PostCopy()
	case "downtime":
		return Downtime()
	case "hotspot":
		res, err := Hotspot()
		if err != nil {
			return nil, err
		}
		return []*Table{res.Summary}, nil
	case "consolidation":
		res, err := Consolidation()
		if err != nil {
			return nil, err
		}
		return []*Table{res.PerVM, res.Totals}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (want table1, figure1, figure2, figure4…figure8)", name)
	}
}

// Names lists the runnable experiments in paper order.
func Names() []string {
	return []string{"table1", "figure1", "figure2", "figure4", "figure5", "figure6", "figure7", "figure8", "consolidation", "postcopy", "hotspot", "downtime"}
}
