package experiments

import (
	"fmt"

	"vecycle/internal/migsim"
)

// Downtime sweeps the guest write rate and compares hand-over downtime
// across strategies — the dimension the paper's evaluation holds constant
// (its guests idle during migration). Pre-copy downtime balloons as the
// write rate approaches the effective link bandwidth; post-copy's stays
// flat because nothing is retransmitted.
func Downtime() ([]*Table, error) {
	const memBytes = int64(2048) << 20 // 2 GiB guest
	tbl := &Table{
		Title: "Downtime vs guest write rate (2 GiB guest, LAN, 3% drift)",
		Columns: []string{"write_MBps", "precopy_base_down_s", "precopy_base_rounds",
			"precopy_vecycle_down_s", "postcopy_down_s"},
	}
	for _, mbps := range []float64{0, 20, 50, 80, 100} {
		g, err := migsim.NewGuest("busy", memBytes, int64(mbps)+5)
		if err != nil {
			return nil, err
		}
		if err := g.FillRandom(0.95); err != nil {
			return nil, err
		}
		cp := g.Checkpoint()
		if err := g.UpdatePercent(1.0, 3); err != nil {
			return nil, err
		}
		opts := migsim.LiveOptions{WriteBytesPerSec: mbps * 1e6}
		base, err := migsim.SimulateLive(g, nil, migsim.LANCost(), migsim.Baseline, opts)
		if err != nil {
			return nil, err
		}
		vc, err := migsim.SimulateLive(g, cp, migsim.LANCost(), migsim.VeCycle, opts)
		if err != nil {
			return nil, err
		}
		post, err := migsim.SimulatePostCopy(g, cp, migsim.LANCost())
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("%.0f", mbps),
			fmt.Sprintf("%.2f", base.Downtime.Seconds()),
			base.Rounds,
			fmt.Sprintf("%.2f", vc.Downtime.Seconds()),
			fmt.Sprintf("%.2f", post.ResumeDelay.Seconds()))
	}
	return []*Table{tbl}, nil
}
