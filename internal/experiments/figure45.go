package experiments

import (
	"fmt"
	"time"

	"vecycle/internal/fingerprint"
	"vecycle/internal/memmodel"
	"vecycle/internal/methods"
	"vecycle/internal/stats"
)

// Figure4 reproduces the duplicate-page study: the duplicate-page
// percentage over the trace for servers and laptops, and the zero-page
// percentage for the servers.
func Figure4(sampleEveryHours int) ([]*Table, error) {
	if sampleEveryHours < 1 {
		sampleEveryHours = 12
	}
	servers := []memmodel.Preset{memmodel.ServerA(), memmodel.ServerB(), memmodel.ServerC()}
	laptops := []memmodel.Preset{memmodel.LaptopA(), memmodel.LaptopB(), memmodel.LaptopC()}

	dupTable := func(title string, presets []memmodel.Preset, metric func(*fingerprint.Fingerprint) float64) (*Table, error) {
		tbl := &Table{Title: title, Columns: []string{"machine", "time_h", "percent"}}
		for _, p := range presets {
			fps, err := traceFor(p)
			if err != nil {
				return nil, err
			}
			t0 := fps[0].Taken
			next := time.Duration(0)
			for _, f := range fps {
				at := f.Taken.Sub(t0)
				if at < next {
					continue
				}
				next = at + time.Duration(sampleEveryHours)*time.Hour
				tbl.AddRow(p.Config.Name, formatHours(at), 100*metric(f))
			}
		}
		return tbl, nil
	}

	dupServers, err := dupTable("Figure 4 (left): duplicate pages, servers [%]",
		servers, (*fingerprint.Fingerprint).DupFraction)
	if err != nil {
		return nil, err
	}
	dupLaptops, err := dupTable("Figure 4 (middle): duplicate pages, laptops [%]",
		laptops, (*fingerprint.Fingerprint).DupFraction)
	if err != nil {
		return nil, err
	}
	zeroServers, err := dupTable("Figure 4 (right): zero pages, servers [%]",
		servers, (*fingerprint.Fingerprint).ZeroFraction)
	if err != nil {
		return nil, err
	}
	return []*Table{dupServers, dupLaptops, zeroServers}, nil
}

// figure5Sweep analyzes every (strided) fingerprint pair of a machine and
// returns the per-method mean fraction of baseline traffic plus the sample
// list of hashes+dedup's reduction over dirty+dedup.
func figure5Sweep(p memmodel.Preset, opts Options) (means map[methods.Method]float64, reductions []float64, err error) {
	corpus, err := corpusFor(p)
	if err != nil {
		return nil, nil, err
	}
	sums := map[methods.Method]float64{}
	pairs := 0
	stride := opts.stride()
	for i := 0; i < corpus.Len(); i += stride {
		for j := i + stride; j < corpus.Len(); j += stride {
			b := methods.Analyze(corpus.At(i), corpus.At(j))
			for _, m := range methods.All() {
				sums[m] += b.Fraction(m)
			}
			reductions = append(reductions, b.ReductionOverDirtyDedup())
			pairs++
		}
	}
	if pairs == 0 {
		return nil, nil, fmt.Errorf("experiments: %s has too few fingerprints for a pair sweep", p.Config.Name)
	}
	means = make(map[methods.Method]float64, len(sums))
	for m, s := range sums {
		means[m] = s / float64(pairs)
	}
	return means, reductions, nil
}

// Figure5 reproduces the traffic-reduction comparison: mean fraction of
// baseline traffic per method for Server A and Server B (the bar panels),
// and the CDFs of content-based elimination's reduction over dirty+dedup
// for the servers and the laptops.
func Figure5(opts Options) ([]*Table, error) {
	bars := &Table{
		Title:   "Figure 5 (bars): mean fraction of baseline traffic per method",
		Columns: []string{"machine", "method", "fraction"},
	}
	for _, p := range []memmodel.Preset{memmodel.ServerA(), memmodel.ServerB()} {
		means, _, err := figure5Sweep(p, opts)
		if err != nil {
			return nil, err
		}
		for _, m := range []methods.Method{methods.Dedup, methods.Dirty,
			methods.DirtyDedup, methods.Hashes, methods.HashesDedup} {
			bars.AddRow(p.Config.Name, m.String(), means[m])
		}
	}

	cdfTable := func(title string, presets []memmodel.Preset) (*Table, error) {
		tbl := &Table{Title: title, Columns: []string{"machine", "reduction_pct", "cdf"}}
		for _, p := range presets {
			_, reductions, err := figure5Sweep(p, opts)
			if err != nil {
				return nil, err
			}
			cdf, err := stats.NewCDF(reductions)
			if err != nil {
				return nil, err
			}
			for _, x := range []float64{0, 5, 10, 20, 30, 40, 50, 60, 70, 80} {
				tbl.AddRow(p.Config.Name, x, cdf.At(x))
			}
		}
		return tbl, nil
	}

	cdfServers, err := cdfTable(
		"Figure 5 (centre): CDF of reduction over dirty+dedup, servers",
		[]memmodel.Preset{memmodel.ServerA(), memmodel.ServerB(), memmodel.ServerC()})
	if err != nil {
		return nil, err
	}
	cdfLaptops, err := cdfTable(
		"Figure 5 (right): CDF of reduction over dirty+dedup, laptops",
		[]memmodel.Preset{memmodel.LaptopA(), memmodel.LaptopB(), memmodel.LaptopC(), memmodel.LaptopD()})
	if err != nil {
		return nil, err
	}
	return []*Table{bars, cdfServers, cdfLaptops}, nil
}
