package experiments

import (
	"fmt"

	"vecycle/internal/fingerprint"
	"vecycle/internal/memmodel"
	"vecycle/internal/methods"
	"vecycle/internal/sched"
)

// Figure8Result carries the VDI study's per-migration series and the
// aggregate traffic totals quoted in §4.6.
type Figure8Result struct {
	// PerMigration is the Figure 8 plot: for each of the 26 migrations, the
	// traffic as a percentage of the VM's RAM under sender-side dedup and
	// under VeCycle (with dedup, as the paper assumes).
	PerMigration *Table
	// Totals summarizes aggregate traffic per technique.
	Totals *Table

	// Aggregate fractions of the full-migration baseline.
	DedupFraction      float64
	VeCycleFraction    float64
	DirtyDedupFraction float64
}

// Figure8 replays the virtual-desktop consolidation scenario: the author's
// desktop trace, two migrations every weekday (9 am to the workstation,
// 5 pm to the consolidation server), checkpoints left at both hosts.
func Figure8() (*Figure8Result, error) {
	preset := memmodel.Desktop()
	fps, err := traceFor(preset)
	if err != nil {
		return nil, err
	}
	byTime := make(map[int64]*fingerprint.Fingerprint, len(fps))
	for _, f := range fps {
		byTime[f.Taken.Unix()] = f
	}

	schedule := sched.PaperVDISchedule()
	per := &Table{
		Title:   "Figure 8: per-migration traffic [% of RAM]",
		Columns: []string{"migration", "direction", "dedup", "vecycle"},
	}

	// Checkpoints left at each host, keyed by destination of the *next*
	// migration: the 9 am migration lands on the workstation, whose
	// checkpoint is the state the VM had when it left at 5 pm; vice versa
	// for the server.
	checkpoints := map[sched.Direction]*fingerprint.Fingerprint{}
	var dedupPages, vecyclePages, dirtyDedupPages, fullPages float64

	for i, mig := range schedule {
		cur, ok := byTime[mig.At.Unix()]
		if !ok {
			return nil, fmt.Errorf("experiments: no fingerprint at %v", mig.At)
		}
		old := checkpoints[mig.Direction] // checkpoint at the destination
		b := methods.Analyze(old, cur)

		dedupFrac := b.Fraction(methods.Dedup)
		vecycleFrac := b.Fraction(methods.HashesDedup)
		per.AddRow(i+1, mig.Direction.String(), 100*dedupFrac, 100*vecycleFrac)

		fullPages += 1
		dedupPages += dedupFrac
		vecyclePages += vecycleFrac
		dirtyDedupPages += b.Fraction(methods.DirtyDedup)

		// The VM just left its previous host, which stores a checkpoint of
		// the departing state. That host is the destination of migrations
		// in the opposite direction.
		checkpoints[oppositeDirection(mig.Direction)] = cur
	}

	ram := float64(preset.Config.RAMBytes)
	toGB := func(fracSum float64) float64 { return fracSum * ram / 1e9 }

	res := &Figure8Result{
		PerMigration:       per,
		DedupFraction:      dedupPages / fullPages,
		VeCycleFraction:    vecyclePages / fullPages,
		DirtyDedupFraction: dirtyDedupPages / fullPages,
	}
	totals := &Table{
		Title:   "Figure 8 totals: aggregate migration traffic over 26 migrations",
		Columns: []string{"technique", "traffic_GB", "fraction_of_baseline"},
	}
	totals.AddRow("full migration", fmt.Sprintf("%.0f", toGB(fullPages)), 1.0)
	totals.AddRow("sender-side dedup", fmt.Sprintf("%.0f", toGB(dedupPages)), res.DedupFraction)
	totals.AddRow("dirty+dedup", fmt.Sprintf("%.0f", toGB(dirtyDedupPages)), res.DirtyDedupFraction)
	totals.AddRow("VeCycle (+dedup)", fmt.Sprintf("%.0f", toGB(vecyclePages)), res.VeCycleFraction)
	res.Totals = totals
	return res, nil
}

// oppositeDirection reports where the VM was before a migration: the
// source of a ToWorkstation migration is the server, i.e. the destination
// of a ToServer migration, and vice versa.
func oppositeDirection(d sched.Direction) sched.Direction {
	if d == sched.ToWorkstation {
		return sched.ToServer
	}
	return sched.ToWorkstation
}
