// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 trace study: Table 1, Figures 1-3; §4 benchmarks:
// Figures 4-8) from the reproduction's own substrates. Each runner returns
// printable tables: cmd/vecycle-bench renders them, the repository-root
// benchmarks time them, and EXPERIMENTS.md records their output against the
// paper's numbers. DESIGN.md §4 indexes which packages feed which figure,
// and DESIGN.md §2 documents where synthetic substrates substitute for the
// paper's unretrievable traces and testbed.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result grid.
type Table struct {
	// Title names the experiment ("Figure 6 (LAN)").
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold pre-formatted cells, one slice per row.
	Rows [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s\n\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	dashes := make([]string, len(t.Columns))
	for i, w := range widths {
		dashes[i] = strings.Repeat("-", w)
	}
	if _, err := fmt.Fprintln(w, line(dashes)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	// strings.Builder never fails.
	_ = t.Fprint(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
