package trace

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"vecycle/internal/fingerprint"
)

func sampleTrace() *Trace {
	t0 := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	return &Trace{
		Meta: Meta{
			Name:        "Server A",
			OS:          "Linux",
			TraceID:     "00065BEE5AA7",
			RAMBytes:    1 << 30,
			PagesPerGiB: 2048,
		},
		Fingerprints: []*fingerprint.Fingerprint{
			{Taken: t0, Hashes: []fingerprint.PageHash{1, 2, 3, 0}},
			{Taken: t0.Add(30 * time.Minute), Hashes: []fingerprint.PageHash{1, 9, 3, 0}},
		},
	}
}

func tracesEqual(a, b *Trace) bool {
	if a.Meta != b.Meta || len(a.Fingerprints) != len(b.Fingerprints) {
		return false
	}
	for i := range a.Fingerprints {
		fa, fb := a.Fingerprints[i], b.Fingerprints[i]
		if !fa.Taken.Equal(fb.Taken) || len(fa.Hashes) != len(fb.Hashes) {
			return false
		}
		for j := range fa.Hashes {
			if fa.Hashes[j] != fb.Hashes[j] {
				return false
			}
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, got) {
		t.Errorf("round trip mismatch:\nwrote %+v\nread  %+v", tr, got)
	}
}

func TestRoundTripEmptyFingerprints(t *testing.T) {
	tr := &Trace{Meta: Meta{Name: "empty"}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fingerprints) != 0 || got.Meta.Name != "empty" {
		t.Errorf("got %+v", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "server-a.vctf")
	tr := sampleTrace()
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, got) {
		t.Error("file round trip mismatch")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.vctf")); err == nil {
		t.Error("missing file read succeeded")
	}
}

func TestReadBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE...."))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 0xFF // corrupt version
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{3, 5, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d/%d accepted", cut, len(raw))
		}
	}
}

func TestReadHostileCounts(t *testing.T) {
	// Build a header that claims maxFingerprints+1 fingerprints.
	var buf bytes.Buffer
	tr := &Trace{Meta: Meta{Name: "x"}}
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The count is the last 4 bytes of this minimal trace.
	for i := 1; i <= 4; i++ {
		raw[len(raw)-i] = 0xFF
	}
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("hostile fingerprint count accepted")
	}
}

func TestWriteOverlongString(t *testing.T) {
	tr := sampleTrace()
	tr.Meta.Name = string(make([]byte, maxStringLen+1))
	var buf bytes.Buffer
	if err := Write(&buf, tr); err == nil {
		t.Error("overlong string accepted")
	}
}

// Property: any trace with valid timestamps round-trips losslessly.
func TestRoundTripProperty(t *testing.T) {
	f := func(name, os, id string, ram int64, hashes [][]uint64) bool {
		if len(name) > 1024 || len(os) > 1024 || len(id) > 1024 {
			return true
		}
		if ram < 0 {
			ram = -ram
		}
		tr := &Trace{Meta: Meta{Name: name, OS: os, TraceID: id, RAMBytes: ram, PagesPerGiB: 2048}}
		t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
		for i, hs := range hashes {
			fp := &fingerprint.Fingerprint{Taken: t0.Add(time.Duration(i) * time.Minute)}
			for _, h := range hs {
				fp.Hashes = append(fp.Hashes, fingerprint.PageHash(h))
			}
			tr.Fingerprints = append(tr.Fingerprints, fp)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return tracesEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
