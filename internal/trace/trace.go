// Package trace serializes fingerprint traces so experiments can be
// decoupled from trace generation, in the same way the paper's analysis
// consumed pre-recorded Memory Buddies trace files.
//
// The binary format is little-endian and self-describing:
//
//	magic "VCTF" | version u16 | metadata | fingerprint count u32 |
//	fingerprints...
//
// where metadata carries the Table 1 columns (machine name, OS, trace ID,
// RAM size, model scale) and each fingerprint is a Unix-nano timestamp
// followed by its page hashes.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"vecycle/internal/fingerprint"
)

// Magic identifies a VeCycle trace file.
var Magic = [4]byte{'V', 'C', 'T', 'F'}

// Version is the current format version.
const Version uint16 = 1

// Limits guarding against corrupt headers.
const (
	maxStringLen    = 4096
	maxFingerprints = 1 << 20
	maxPages        = 1 << 28
)

// Meta describes the traced machine — the columns of Table 1 plus the model
// scale needed to convert model pages back to real bytes.
type Meta struct {
	// Name is the machine name ("Server A").
	Name string
	// OS is the traced operating system.
	OS string
	// TraceID references the source data set.
	TraceID string
	// RAMBytes is the real machine's memory size.
	RAMBytes int64
	// PagesPerGiB is the model scale the trace was generated at.
	PagesPerGiB int32
}

// Trace is a fingerprint history with its metadata.
type Trace struct {
	Meta         Meta
	Fingerprints []*fingerprint.Fingerprint
}

// Write serializes the trace to w.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, Version); err != nil {
		return fmt.Errorf("trace: write version: %w", err)
	}
	for _, s := range []string{tr.Meta.Name, tr.Meta.OS, tr.Meta.TraceID} {
		if err := writeString(bw, s); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, tr.Meta.RAMBytes); err != nil {
		return fmt.Errorf("trace: write ram size: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, tr.Meta.PagesPerGiB); err != nil {
		return fmt.Errorf("trace: write scale: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(tr.Fingerprints))); err != nil {
		return fmt.Errorf("trace: write count: %w", err)
	}
	for i, fp := range tr.Fingerprints {
		if err := binary.Write(bw, binary.LittleEndian, fp.Taken.UnixNano()); err != nil {
			return fmt.Errorf("trace: write fingerprint %d time: %w", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(fp.Hashes))); err != nil {
			return fmt.Errorf("trace: write fingerprint %d size: %w", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, fp.Hashes); err != nil {
			return fmt.Errorf("trace: write fingerprint %d hashes: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Read deserializes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("trace: read version: %w", err)
	}
	if version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", version, Version)
	}
	tr := &Trace{}
	for _, dst := range []*string{&tr.Meta.Name, &tr.Meta.OS, &tr.Meta.TraceID} {
		s, err := readString(br)
		if err != nil {
			return nil, err
		}
		*dst = s
	}
	if err := binary.Read(br, binary.LittleEndian, &tr.Meta.RAMBytes); err != nil {
		return nil, fmt.Errorf("trace: read ram size: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &tr.Meta.PagesPerGiB); err != nil {
		return nil, fmt.Errorf("trace: read scale: %w", err)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: read count: %w", err)
	}
	if count > maxFingerprints {
		return nil, fmt.Errorf("trace: header claims %d fingerprints, limit %d", count, maxFingerprints)
	}
	tr.Fingerprints = make([]*fingerprint.Fingerprint, 0, count)
	for i := uint32(0); i < count; i++ {
		var nanos int64
		if err := binary.Read(br, binary.LittleEndian, &nanos); err != nil {
			return nil, fmt.Errorf("trace: read fingerprint %d time: %w", i, err)
		}
		var pages uint32
		if err := binary.Read(br, binary.LittleEndian, &pages); err != nil {
			return nil, fmt.Errorf("trace: read fingerprint %d size: %w", i, err)
		}
		if pages > maxPages {
			return nil, fmt.Errorf("trace: fingerprint %d claims %d pages, limit %d", i, pages, maxPages)
		}
		fp := &fingerprint.Fingerprint{
			Taken:  time.Unix(0, nanos).UTC(),
			Hashes: make([]fingerprint.PageHash, pages),
		}
		if err := binary.Read(br, binary.LittleEndian, fp.Hashes); err != nil {
			return nil, fmt.Errorf("trace: read fingerprint %d hashes: %w", i, err)
		}
		tr.Fingerprints = append(tr.Fingerprints, fp)
	}
	return tr, nil
}

// WriteFile serializes the trace to the named file.
func WriteFile(path string, tr *Trace) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: close %s: %w", path, cerr)
		}
	}()
	return Write(f, tr)
}

// ReadFile deserializes a trace from the named file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func writeString(w io.Writer, s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("trace: string of %d bytes exceeds limit %d", len(s), maxStringLen)
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return fmt.Errorf("trace: write string length: %w", err)
	}
	if _, err := io.WriteString(w, s); err != nil {
		return fmt.Errorf("trace: write string: %w", err)
	}
	return nil
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("trace: read string length: %w", err)
	}
	if int(n) > maxStringLen {
		return "", fmt.Errorf("trace: string of %d bytes exceeds limit %d", n, maxStringLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("trace: read string: %w", err)
	}
	return string(buf), nil
}
