package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("zero-value Summary not empty: %v", s.String())
	}
	if s.Variance() != 0 || s.StdDev() != 0 {
		t.Errorf("zero-value Summary variance/stddev not zero")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.N() != 1 {
		t.Fatalf("N = %d, want 1", s.N())
	}
	if s.Min() != 3.5 || s.Max() != 3.5 || s.Mean() != 3.5 {
		t.Errorf("single sample: min=%v max=%v mean=%v, want all 3.5", s.Min(), s.Max(), s.Mean())
	}
	if s.Variance() != 0 {
		t.Errorf("single sample variance = %v, want 0", s.Variance())
	}
}

func TestSummaryKnownValues(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got, want := s.Mean(), 5.0; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := s.StdDev(), 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Errorf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.AddAll([]float64{-5, -1, -3})
	if s.Min() != -5 || s.Max() != -1 {
		t.Errorf("Min/Max = %v/%v, want -5/-1", s.Min(), s.Max())
	}
	if got := s.Mean(); got != -3 {
		t.Errorf("Mean = %v, want -3", got)
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, all Summary
	xs := []float64{1, 2, 3}
	ys := []float64{10, 20}
	a.AddAll(xs)
	b.AddAll(ys)
	all.AddAll(append(append([]float64{}, xs...), ys...))
	a.Merge(b)
	if a.N() != all.N() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged summary %v != direct %v", a.String(), all.String())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Errorf("merged mean %v != direct %v", a.Mean(), all.Mean())
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(7)
	before := a.String()
	a.Merge(b) // merging empty is a no-op
	if a.String() != before {
		t.Errorf("merge of empty changed summary: %v -> %v", before, a.String())
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 7 {
		t.Errorf("merge into empty: %v", b.String())
	}
}

// Property: mean is always within [min, max], variance is non-negative.
func TestSummaryInvariants(t *testing.T) {
	f := func(vs []float64) bool {
		var s Summary
		for _, v := range vs {
			// Restrict to the library's domain (fractions, byte counts,
			// seconds); astronomically large magnitudes overflow sum2.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9 && s.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); err == nil {
		t.Fatal("NewCDF(nil) should fail")
	}
}

func TestCDFAt(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.75},
		{3, 1},
		{99, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c, err := NewCDF([]float64{10, 20, 30, 40, 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %v, want 50", got)
	}
	if got := c.Quantile(0.5); got != 30 {
		t.Errorf("Quantile(0.5) = %v, want 30", got)
	}
	if got := c.Quantile(0.25); got != 20 {
		t.Errorf("Quantile(0.25) = %v, want 20", got)
	}
}

func TestCDFQuantileInterpolates(t *testing.T) {
	c, err := NewCDF([]float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5 (interpolated)", got)
	}
}

// Property: CDF is monotonic and bounded in [0,1]; quantile inverts within
// sample bounds.
func TestCDFInvariants(t *testing.T) {
	f := func(vs []float64, probe float64) bool {
		clean := vs[:0]
		for _, v := range vs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c, err := NewCDF(clean)
		if err != nil {
			return false
		}
		p := c.At(probe)
		if p < 0 || p > 1 {
			return false
		}
		// Monotonic: At(x) <= At(x + 1).
		if !math.IsNaN(probe) && !math.IsInf(probe, 0) && c.At(probe) > c.At(probe+1) {
			return false
		}
		// Quantiles stay within [min, max].
		q := c.Quantile(0.37)
		return q >= c.Quantile(0)-1e-9 && q <= c.Quantile(1)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d points", len(pts))
	}
	if pts[0].X != 1 || pts[len(pts)-1].X != 10 {
		t.Errorf("Points should span the extremes, got first=%v last=%v", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y || pts[i].X < pts[i-1].X {
			t.Errorf("Points not monotonic at %d: %v -> %v", i, pts[i-1], pts[i])
		}
	}
}

func TestNewDeltaBinnerValidation(t *testing.T) {
	if _, err := NewDeltaBinner(0, 10); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewDeltaBinner(time.Minute, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestDeltaBinnerPaperEdges(t *testing.T) {
	// Paper: 30-minute bins; the first bin covers [15, 45) minutes.
	b, err := NewDeltaBinner(30*time.Minute, 48)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		delta time.Duration
		want  int
	}{
		{14 * time.Minute, -1},
		{15 * time.Minute, 0},
		{44 * time.Minute, 0},
		{45 * time.Minute, 1},
		{74 * time.Minute, 1},
		{75 * time.Minute, 2},
		{24*time.Hour + 14*time.Minute, 47},
		{24*time.Hour + 15*time.Minute, -1}, // beyond the last bin
	}
	for _, tc := range cases {
		if got := b.BinIndex(tc.delta); got != tc.want {
			t.Errorf("BinIndex(%v) = %d, want %d", tc.delta, got, tc.want)
		}
	}
}

func TestDeltaBinnerCenter(t *testing.T) {
	b, err := NewDeltaBinner(30*time.Minute, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Center(0); got != 30*time.Minute {
		t.Errorf("Center(0) = %v, want 30m", got)
	}
	if got := b.Center(3); got != 2*time.Hour {
		t.Errorf("Center(3) = %v, want 2h", got)
	}
}

func TestDeltaBinnerSeries(t *testing.T) {
	b, err := NewDeltaBinner(time.Hour, 3)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(time.Hour, 0.5)
	b.Add(time.Hour, 0.7)
	b.Add(3*time.Hour, 0.2)
	// Bin 1 (centre 2h) stays empty and must be skipped.
	series := b.Series()
	if len(series) != 2 {
		t.Fatalf("Series length = %d, want 2", len(series))
	}
	if series[0].Center != time.Hour || series[0].N != 2 || series[0].Min != 0.5 || series[0].Max != 0.7 {
		t.Errorf("series[0] = %+v", series[0])
	}
	if series[1].Center != 3*time.Hour || series[1].Avg != 0.2 {
		t.Errorf("series[1] = %+v", series[1])
	}
}

func TestDeltaBinnerDropsOutOfRange(t *testing.T) {
	b, err := NewDeltaBinner(time.Hour, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(10*time.Hour, 1.0)
	b.Add(time.Minute, 1.0)
	if got := len(b.Series()); got != 0 {
		t.Errorf("out-of-range samples should be dropped, series has %d bins", got)
	}
}
