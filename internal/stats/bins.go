package stats

import (
	"fmt"
	"time"
)

// DeltaBinner groups samples keyed by a time delta into fixed-width bins,
// reproducing the binning of the paper's Figure 1: the first bin covers
// deltas in [width/2, 3*width/2), the second [3*width/2, 5*width/2), and so
// on, so that bin i is centred on (i+1)*width. With the paper's 30-minute
// fingerprint period the first bin is [15 min, 45 min), centred on 30 min.
type DeltaBinner struct {
	width   time.Duration
	maxBins int
	bins    []Summary
}

// NewDeltaBinner creates a binner with the given bin width and a cap on the
// number of bins (samples beyond the last bin are dropped, matching the
// paper's 24-hour x-axis cut-off). width must be positive and maxBins at
// least 1.
func NewDeltaBinner(width time.Duration, maxBins int) (*DeltaBinner, error) {
	if width <= 0 {
		return nil, fmt.Errorf("stats: bin width must be positive, got %v", width)
	}
	if maxBins < 1 {
		return nil, fmt.Errorf("stats: maxBins must be >= 1, got %d", maxBins)
	}
	return &DeltaBinner{
		width:   width,
		maxBins: maxBins,
		bins:    make([]Summary, maxBins),
	}, nil
}

// BinIndex reports the bin a delta falls into, or -1 if it is below the
// first bin's lower edge or beyond the last bin.
func (b *DeltaBinner) BinIndex(delta time.Duration) int {
	lo := b.width / 2
	if delta < lo {
		return -1
	}
	idx := int((delta - lo) / b.width)
	if idx >= b.maxBins {
		return -1
	}
	return idx
}

// Add records sample v for the given delta. Samples outside the binned
// range are silently dropped.
func (b *DeltaBinner) Add(delta time.Duration, v float64) {
	if idx := b.BinIndex(delta); idx >= 0 {
		b.bins[idx].Add(v)
	}
}

// Bin returns the summary for bin i (0-based). It panics if i is out of
// range, mirroring slice indexing.
func (b *DeltaBinner) Bin(i int) *Summary { return &b.bins[i] }

// Len reports the configured number of bins.
func (b *DeltaBinner) Len() int { return b.maxBins }

// Center reports the delta at the centre of bin i.
func (b *DeltaBinner) Center(i int) time.Duration {
	return time.Duration(i+1) * b.width
}

// BinStat is the plotted content of one bin: its centre on the x-axis and
// the min/avg/max envelope on the y-axis.
type BinStat struct {
	Center time.Duration
	N      int
	Min    float64
	Avg    float64
	Max    float64
}

// Series returns one BinStat per non-empty bin, in x order. This is exactly
// the data behind one panel of Figure 1.
func (b *DeltaBinner) Series() []BinStat {
	out := make([]BinStat, 0, b.maxBins)
	for i := range b.bins {
		s := &b.bins[i]
		if s.N() == 0 {
			continue
		}
		out = append(out, BinStat{
			Center: b.Center(i),
			N:      s.N(),
			Min:    s.Min(),
			Avg:    s.Mean(),
			Max:    s.Max(),
		})
	}
	return out
}
