// Package stats provides the small set of statistics primitives shared by
// every experiment in the VeCycle reproduction: summary statistics
// (min/avg/max as plotted in Figures 1 and 2), empirical CDFs (Figure 5),
// and time-delta binning of fingerprint pairs.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that require at least one sample.
var ErrEmpty = errors.New("stats: no samples")

// Summary holds the aggregate statistics of a sample set. The zero value is
// an empty summary ready for use; call Add to accumulate samples.
type Summary struct {
	n    int
	min  float64
	max  float64
	sum  float64
	sum2 float64
}

// Add accumulates one sample.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sum2 += v * v
}

// AddAll accumulates every sample in vs.
func (s *Summary) AddAll(vs []float64) {
	for _, v := range vs {
		s.Add(v)
	}
}

// N reports the number of accumulated samples.
func (s *Summary) N() int { return s.n }

// Min reports the smallest sample, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest sample, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// Sum reports the sum of all samples.
func (s *Summary) Sum() float64 { return s.sum }

// Mean reports the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Variance reports the population variance, or 0 for an empty summary.
// Floating-point cancellation can drive the naive formula slightly
// negative; the result is clamped at 0.
func (s *Summary) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sum2/float64(s.n) - m*m
	if v < 0 {
		return 0
	}
	return v
}

// StdDev reports the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds the samples of other into s.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
	s.sum += other.sum
	s.sum2 += other.sum2
}

// String formats the summary as "n=… min=… avg=… max=…".
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4f avg=%.4f max=%.4f", s.n, s.Min(), s.Mean(), s.Max())
}

// CDF is an empirical cumulative distribution function over a fixed sample
// set. Construct one with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the given samples. The input slice is
// copied; the caller retains ownership.
func NewCDF(samples []float64) (*CDF, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// N reports the number of samples underlying the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// At reports P(X <= x), the fraction of samples less than or equal to x.
func (c *CDF) At(x float64) float64 {
	// sort.SearchFloat64s finds the first index with sorted[i] >= x; advance
	// past equal values to make the CDF right-continuous (P(X <= x)).
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile reports the q-th quantile for q in [0,1] using nearest-rank
// interpolation. Quantile(0) is the minimum and Quantile(1) the maximum.
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs suitable for
// plotting the CDF curve, always including the extreme samples.
func (c *CDF) Points(n int) []Point {
	if n < 2 {
		n = 2
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		// Map i over the sample index range [0, len-1].
		idx := i * (len(c.sorted) - 1) / (n - 1)
		x := c.sorted[idx]
		pts = append(pts, Point{X: x, Y: float64(idx+1) / float64(len(c.sorted))})
	}
	return pts
}

// Point is one (x, y) pair of a plotted series.
type Point struct {
	X float64
	Y float64
}
