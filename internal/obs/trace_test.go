package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestTraceLogRecordsEvents(t *testing.T) {
	l := NewTraceLog(4)
	rec := l.Begin("alpha", "source", "vm0", "127.0.0.1:1")
	rec.Event(Event{Kind: "hello", Detail: "have_checkpoint=true"})
	rec.Event(Event{Kind: "round", Round: 1, Pages: 256, Bytes: 1 << 20})
	if got := len(l.Active()); got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}
	rec.Finish(nil)
	if got := len(l.Active()); got != 0 {
		t.Fatalf("active after finish = %d, want 0", got)
	}
	recent := l.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent = %d, want 1", len(recent))
	}
	m := recent[0]
	if m.Host != "alpha" || m.VM != "vm0" || m.Role != "source" || m.Err != "" {
		t.Errorf("unexpected migration header: %+v", m)
	}
	if len(m.Events) != 2 || m.Events[1].Kind != "round" || m.Events[1].Bytes != 1<<20 {
		t.Errorf("unexpected events: %+v", m.Events)
	}
	if m.End.Before(m.Start) {
		t.Errorf("End %v before Start %v", m.End, m.Start)
	}
}

func TestTraceLogFinishError(t *testing.T) {
	l := NewTraceLog(4)
	rec := l.Begin("alpha", "dest", "vm0", "")
	rec.Finish(errors.New("boom"))
	rec.Finish(nil) // idempotent: must not clear the error or duplicate
	recent := l.Recent()
	if len(recent) != 1 || recent[0].Err != "boom" {
		t.Fatalf("recent = %+v, want single record with err=boom", recent)
	}
	// Events after Finish must not mutate the completed record.
	rec.Event(Event{Kind: "late"})
	if got := len(l.Recent()[0].Events); got != 0 {
		t.Errorf("late event appended to finished trace (%d events)", got)
	}
}

func TestTraceLogRingTruncation(t *testing.T) {
	const capacity = 8
	l := NewTraceLog(capacity)
	for i := 0; i < 3*capacity; i++ {
		rec := l.Begin("h", "source", fmt.Sprintf("vm-%d", i), "")
		rec.Finish(nil)
	}
	recent := l.Recent()
	if len(recent) != capacity {
		t.Fatalf("ring holds %d, want %d", len(recent), capacity)
	}
	// Newest first: the last Begin must lead.
	if recent[0].VM != fmt.Sprintf("vm-%d", 3*capacity-1) {
		t.Errorf("newest = %s", recent[0].VM)
	}
}

// TestTraceLogConcurrent hammers one log from many goroutines — writers
// appending events, migrations finishing, and readers snapshotting — and
// checks the retention bounds hold. Run under -race (make ci does).
func TestTraceLogConcurrent(t *testing.T) {
	const (
		capacity   = 16
		writers    = 8
		migrations = 50
		events     = 30
	)
	l := NewTraceLog(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < migrations; i++ {
				rec := l.Begin("h", "source", fmt.Sprintf("w%d-m%d", w, i), "")
				var ewg sync.WaitGroup
				for e := 0; e < 3; e++ {
					ewg.Add(1)
					go func(e int) { // concurrent writers on ONE recorder
						defer ewg.Done()
						for k := 0; k < events; k++ {
							rec.Event(Event{Kind: "round", Round: e*events + k})
						}
					}(e)
				}
				ewg.Wait()
				rec.Finish(nil)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent readers
		for {
			select {
			case <-done:
				return
			default:
				_ = l.Recent()
				_ = l.Active()
			}
		}
	}()
	wg.Wait()
	close(done)

	recent := l.Recent()
	if len(recent) != capacity {
		t.Fatalf("ring holds %d, want %d", len(recent), capacity)
	}
	for _, m := range recent {
		if got := len(m.Events) + m.DroppedEvents; got != 3*events {
			t.Errorf("%s: %d events + %d dropped, want %d total", m.VM, len(m.Events), m.DroppedEvents, 3*events)
		}
	}
	if got := len(l.Active()); got != 0 {
		t.Errorf("active after all finished = %d", got)
	}
}

func TestTraceLogEventCap(t *testing.T) {
	l := NewTraceLog(1)
	rec := l.Begin("h", "source", "vm", "")
	for i := 0; i < maxEventsPerMigration+10; i++ {
		rec.Event(Event{Kind: "round", Round: i})
	}
	rec.Finish(nil)
	m := l.Recent()[0]
	if len(m.Events) != maxEventsPerMigration || m.DroppedEvents != 10 {
		t.Errorf("events=%d dropped=%d, want %d/%d", len(m.Events), m.DroppedEvents, maxEventsPerMigration, 10)
	}
}

func TestWriteJSONL(t *testing.T) {
	l := NewTraceLog(4)
	for i := 0; i < 2; i++ {
		rec := l.Begin("h", "dest", fmt.Sprintf("vm-%d", i), "peer:1")
		rec.Event(Event{Kind: "hello"})
		rec.Finish(nil)
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var m Migration
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if m.VM != fmt.Sprintf("vm-%d", lines) { // oldest first
			t.Errorf("line %d: vm %s", lines, m.VM)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("JSONL lines = %d, want 2", lines)
	}
}
