package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// The ops endpoint. One handler serves everything an operator needs to
// watch a host's migrations live:
//
//	/metrics                 Prometheus text format (the registry)
//	/debug/migrations        JSON {active, recent}: traces of in-flight and
//	                         just-completed migrations
//	/debug/migrations.jsonl  completed traces as JSON Lines (curl-able into
//	                         the same format -trace-out writes)
//	/debug/pprof/...         the standard runtime profiles
//
// Observability is purely host-side: nothing here touches the migration
// wire protocol.

// metricsContentType is the Prometheus text exposition content type.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler builds the ops HTTP handler for a registry and trace log.
// Either may be nil, disabling the corresponding routes.
func Handler(reg *Registry, traces *TraceLog) http.Handler {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", metricsContentType)
			_ = reg.WritePrometheus(w)
		})
	}
	if traces != nil {
		mux.HandleFunc("/debug/migrations", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Active []Migration `json:"active"`
				Recent []Migration `json:"recent"`
			}{traces.Active(), traces.Recent()})
		})
		mux.HandleFunc("/debug/migrations.jsonl", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = traces.WriteJSONL(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a minimal HTTP server wrapper around Handler, used by
// sched.Host.ListenOps and the vecycle -ops-addr flags.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an ops server on addr (e.g. "127.0.0.1:0") and returns once
// the listener is bound; requests are served on a background goroutine.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }
