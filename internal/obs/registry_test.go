package obs

import (
	"strings"
	"testing"
)

// render builds a registry via setup and returns the exposition text.
func render(t *testing.T, setup func(r *Registry)) string {
	t.Helper()
	r := NewRegistry()
	setup(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestWritePrometheus(t *testing.T) {
	cases := []struct {
		name  string
		setup func(r *Registry)
		want  string
	}{
		{
			name: "counter scalar",
			setup: func(r *Registry) {
				c := r.Counter("vecycle_test_total", "a counter")
				c.Add(41)
				c.Inc()
			},
			want: "# HELP vecycle_test_total a counter\n" +
				"# TYPE vecycle_test_total counter\n" +
				"vecycle_test_total 42\n",
		},
		{
			name: "counter ignores negative add",
			setup: func(r *Registry) {
				c := r.Counter("neg_total", "h")
				c.Add(5)
				c.Add(-3)
			},
			want: "# HELP neg_total h\n# TYPE neg_total counter\nneg_total 5\n",
		},
		{
			name: "gauge func evaluated at scrape",
			setup: func(r *Registry) {
				r.Gauge("usage_bytes", "h").SetFunc(func() float64 { return 1024 })
			},
			want: "# HELP usage_bytes h\n# TYPE usage_bytes gauge\nusage_bytes 1024\n",
		},
		{
			name: "label keys in registration order, series sorted by value",
			setup: func(r *Registry) {
				v := r.CounterVec("migrations_total", "h", "role", "outcome")
				v.With("source", "success").Add(3)
				v.With("dest", "success").Add(2)
				v.With("dest", "error").Inc()
			},
			want: "# HELP migrations_total h\n" +
				"# TYPE migrations_total counter\n" +
				`migrations_total{role="dest",outcome="error"} 1` + "\n" +
				`migrations_total{role="dest",outcome="success"} 2` + "\n" +
				`migrations_total{role="source",outcome="success"} 3` + "\n",
		},
		{
			name: "label value escaping",
			setup: func(r *Registry) {
				r.GaugeVec("weird", "h", "vm").With("a\\b\"c\nd").Set(1)
			},
			want: "# HELP weird h\n# TYPE weird gauge\n" +
				`weird{vm="a\\b\"c\nd"} 1` + "\n",
		},
		{
			name: "help escaping",
			setup: func(r *Registry) {
				r.Gauge("g", "line\nbreak \\ slash").Set(0)
			},
			want: "# HELP g line\\nbreak \\\\ slash\n# TYPE g gauge\ng 0\n",
		},
		{
			name: "histogram cumulative buckets with +Inf",
			setup: func(r *Registry) {
				h := r.Histogram("dur_seconds", "h", []float64{0.1, 1, 10})
				h.Observe(0.05) // le 0.1
				h.Observe(0.5)  // le 1
				h.Observe(0.7)  // le 1
				h.Observe(99)   // +Inf only
			},
			want: "# HELP dur_seconds h\n" +
				"# TYPE dur_seconds histogram\n" +
				`dur_seconds_bucket{le="0.1"} 1` + "\n" +
				`dur_seconds_bucket{le="1"} 3` + "\n" +
				`dur_seconds_bucket{le="10"} 3` + "\n" +
				`dur_seconds_bucket{le="+Inf"} 4` + "\n" +
				"dur_seconds_sum 100.25\n" +
				"dur_seconds_count 4\n",
		},
		{
			name: "histogram boundary value lands in its bucket",
			setup: func(r *Registry) {
				// le is inclusive: an observation equal to the bound counts.
				r.Histogram("b", "h", []float64{1}).Observe(1)
			},
			want: "# HELP b h\n# TYPE b histogram\n" +
				`b_bucket{le="1"} 1` + "\n" +
				`b_bucket{le="+Inf"} 1` + "\n" +
				"b_sum 1\nb_count 1\n",
		},
		{
			name: "labelled histogram keeps le last",
			setup: func(r *Registry) {
				v := r.HistogramVec("lat", "h", []float64{1}, "role")
				v.With("source").Observe(2)
			},
			want: "# HELP lat h\n# TYPE lat histogram\n" +
				`lat_bucket{role="source",le="1"} 0` + "\n" +
				`lat_bucket{role="source",le="+Inf"} 1` + "\n" +
				`lat_sum{role="source"} 2` + "\n" +
				`lat_count{role="source"} 1` + "\n",
		},
		{
			name: "unsorted duplicate buckets normalized",
			setup: func(r *Registry) {
				r.Histogram("n", "h", []float64{10, 1, 10}).Observe(5)
			},
			want: "# HELP n h\n# TYPE n histogram\n" +
				`n_bucket{le="1"} 0` + "\n" +
				`n_bucket{le="10"} 1` + "\n" +
				`n_bucket{le="+Inf"} 1` + "\n" +
				"n_sum 5\nn_count 1\n",
		},
		{
			name: "families sorted by name",
			setup: func(r *Registry) {
				r.Counter("zz_total", "z").Inc()
				r.Gauge("aa", "a").Set(1)
			},
			want: "# HELP aa a\n# TYPE aa gauge\naa 1\n" +
				"# HELP zz_total z\n# TYPE zz_total counter\nzz_total 1\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := render(t, tc.setup)
			if got != tc.want {
				t.Errorf("rendered output mismatch\n got:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "h")
	b := r.Counter("c_total", "h")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Errorf("shared counter = %v, want 2", got)
	}
	v := r.CounterVec("v_total", "h", "host")
	if v.With("x") == nil || r.CounterVec("v_total", "h", "host").With("x").Value() != 0 {
		t.Errorf("vec get-or-create broken")
	}
}

func TestRegistryConflictsPanic(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("c_total", "h")
	mustPanic("kind conflict", func() { r.Gauge("c_total", "h") })
	r.CounterVec("v_total", "h", "a")
	mustPanic("label conflict", func() { r.CounterVec("v_total", "h", "b") })
	mustPanic("bad metric name", func() { r.Counter("bad-name", "h") })
	mustPanic("bad label name", func() { r.CounterVec("ok_total", "h", "bad-label") })
	mustPanic("reserved le label", func() { r.HistogramVec("h2", "h", nil, "le") })
	mustPanic("label arity", func() { r.CounterVec("v_total", "h", "a").With("x", "y") })
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "h")
	r.Gauge("a", "h")
	r.Histogram("c", "h", []float64{1})
	got := r.Names()
	want := []string{"a", "b_total", "c"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}
