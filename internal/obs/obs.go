// Package obs is the host-side observability layer: a dependency-free
// metrics registry rendering the Prometheus text exposition format, a
// bounded per-migration event trace with JSONL export, and an ops HTTP
// handler combining the two with net/http/pprof.
//
// The paper's entire evaluation (Figures 1-8, Table 1) is a measurement
// story — migration time, traffic, downtime, per-technique savings. The
// engine's core.Metrics values remain the programmatic API; this package
// observes them at the seams (sched.Host feeds every completed migration
// into its registry and trace log) so the wire format is untouched and an
// operator can watch a fleet of live migrations instead of reading test
// output. See docs/OBSERVABILITY.md for the full metric and trace
// catalogue, and DESIGN.md §2 for the reproduction context.
//
// The package deliberately has no dependency beyond the standard library:
// the text format is simple enough to render by hand, and the repo must
// not grow a client_golang dependency it cannot vendor.
package obs
