package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestOpsServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("vecycle_up_total", "h").Inc()
	traces := NewTraceLog(4)
	rec := traces.Begin("h", "source", "vm0", "")
	rec.Event(Event{Kind: "hello"})
	rec.Finish(nil)

	srv, err := Serve("127.0.0.1:0", Handler(reg, traces))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "vecycle_up_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if ctype != metricsContentType {
		t.Errorf("/metrics content type %q", ctype)
	}

	body, _ = get("/debug/migrations")
	if !strings.Contains(body, `"vm": "vm0"`) || !strings.Contains(body, `"recent"`) {
		t.Errorf("/debug/migrations body:\n%s", body)
	}

	body, _ = get("/debug/migrations.jsonl")
	if !strings.Contains(body, `"vm":"vm0"`) {
		t.Errorf("/debug/migrations.jsonl body:\n%s", body)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
