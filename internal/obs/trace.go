package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Per-migration event tracing: each migration attempt (either role) is one
// Migration record holding a bounded sequence of span-like Events, one per
// protocol turn — hello, per-round progress, checksum announcement,
// stop-and-copy pause, post-copy fetch, retry/backoff decisions. Completed
// records are retained in a fixed-size ring (oldest evicted first) and can
// be exported as JSONL or served over the ops endpoint.

// DefaultTraceCapacity is how many completed migrations a TraceLog keeps
// when constructed with capacity <= 0.
const DefaultTraceCapacity = 64

// maxEventsPerMigration bounds one migration's event list; a migration
// that emits more (a pathological round count) keeps the earliest events
// and counts the overflow in DroppedEvents.
const maxEventsPerMigration = 512

// Event is one protocol turn (or scheduler decision) within a migration.
type Event struct {
	// T is the event timestamp.
	T time.Time `json:"t"`
	// Kind names the protocol turn: "hello", "announce", "round",
	// "pause", "resume", "manifest", "fetch", "retry", "delta-fallback",
	// "checkpoint-saved", "done", ... (docs/OBSERVABILITY.md lists all).
	Kind string `json:"kind"`
	// Round is the pre-copy round (or retry attempt for "retry" events);
	// zero when not applicable.
	Round int `json:"round,omitempty"`
	// Pages is the page count the turn covered (pages streamed in a
	// round, pages missing at resume, ...).
	Pages int64 `json:"pages,omitempty"`
	// Bytes is the wire volume attributed to the turn.
	Bytes int64 `json:"bytes,omitempty"`
	// Detail carries free-form context (rejection reasons, retry errors).
	Detail string `json:"detail,omitempty"`
}

// Migration is the trace of one migration attempt as seen from one host.
type Migration struct {
	// ID is unique within the TraceLog's process lifetime.
	ID uint64 `json:"id"`
	// Host is the observing host's name.
	Host string `json:"host,omitempty"`
	// VM is the migrating VM (or virtual disk) name.
	VM string `json:"vm"`
	// Role is "source" or "dest".
	Role string `json:"role"`
	// Peer is the remote address, when known.
	Peer string `json:"peer,omitempty"`
	// Start and End bracket the migration; End is zero while in flight.
	Start time.Time `json:"start"`
	End   time.Time `json:"end,omitempty"`
	// Err is the failure, empty on success (and while in flight).
	Err string `json:"err,omitempty"`
	// Events is the bounded protocol-turn sequence.
	Events []Event `json:"events"`
	// DroppedEvents counts events discarded beyond the per-migration cap.
	DroppedEvents int `json:"dropped_events,omitempty"`
}

// TraceLog retains the traces of recent migrations: every in-flight
// recorder plus a ring of the last-completed records. Safe for concurrent
// use by any number of migrations.
type TraceLog struct {
	mu       sync.Mutex
	capacity int
	nextID   uint64
	active   map[uint64]*Recorder
	recent   []*Migration // completed, oldest first
}

// NewTraceLog creates a log retaining up to capacity completed migrations
// (DefaultTraceCapacity when capacity <= 0).
func NewTraceLog(capacity int) *TraceLog {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceLog{capacity: capacity, active: make(map[uint64]*Recorder)}
}

// Recorder accumulates one migration's events. Event and Finish are safe
// to call from concurrent goroutines; Finish is idempotent.
type Recorder struct {
	log *TraceLog

	mu       sync.Mutex
	m        Migration
	finished bool
}

// Begin opens a trace for one migration attempt and returns its recorder.
func (l *TraceLog) Begin(host, role, vmName, peer string) *Recorder {
	l.mu.Lock()
	l.nextID++
	r := &Recorder{
		log: l,
		m: Migration{
			ID:    l.nextID,
			Host:  host,
			VM:    vmName,
			Role:  role,
			Peer:  peer,
			Start: time.Now(),
		},
	}
	l.active[r.m.ID] = r
	l.mu.Unlock()
	return r
}

// Event appends one protocol-turn record, stamping the time if unset.
func (r *Recorder) Event(e Event) {
	if r == nil {
		return
	}
	if e.T.IsZero() {
		e.T = time.Now()
	}
	r.mu.Lock()
	switch {
	case r.finished:
		// Late events (a worker finishing after the protocol turn that
		// failed the migration) are dropped rather than mutating a record
		// already in the completed ring.
	case len(r.m.Events) >= maxEventsPerMigration:
		r.m.DroppedEvents++
	default:
		r.m.Events = append(r.m.Events, e)
	}
	r.mu.Unlock()
}

// Finish closes the trace, recording err (nil for success), and moves it
// into the completed ring. Calls after the first are no-ops.
func (r *Recorder) Finish(err error) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.finished {
		r.mu.Unlock()
		return
	}
	r.finished = true
	r.m.End = time.Now()
	if err != nil {
		r.m.Err = err.Error()
	}
	done := r.m // copy under the recorder lock; Events slice is now frozen
	r.mu.Unlock()

	l := r.log
	l.mu.Lock()
	delete(l.active, done.ID)
	l.recent = append(l.recent, &done)
	if over := len(l.recent) - l.capacity; over > 0 {
		l.recent = append([]*Migration(nil), l.recent[over:]...)
	}
	l.mu.Unlock()
}

// snapshot deep-copies a recorder's current state.
func (r *Recorder) snapshot() Migration {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.m
	m.Events = append([]Event(nil), r.m.Events...)
	return m
}

// Recent returns the completed migrations, newest first.
func (l *TraceLog) Recent() []Migration {
	l.mu.Lock()
	out := make([]Migration, 0, len(l.recent))
	for i := len(l.recent) - 1; i >= 0; i-- {
		out = append(out, *l.recent[i])
	}
	l.mu.Unlock()
	return out
}

// Active returns a snapshot of the in-flight migrations, oldest first.
func (l *TraceLog) Active() []Migration {
	l.mu.Lock()
	recs := make([]*Recorder, 0, len(l.active))
	for _, r := range l.active {
		recs = append(recs, r)
	}
	l.mu.Unlock()
	out := make([]Migration, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.snapshot())
	}
	// map iteration order is random; restore chronological order by ID
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// WriteJSONL exports the completed migrations as JSON Lines, oldest first
// — one Migration object per line, the format -trace-out files use.
func (l *TraceLog) WriteJSONL(w io.Writer) error {
	l.mu.Lock()
	recs := make([]*Migration, len(l.recent))
	copy(recs, l.recent)
	l.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, m := range recs {
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return nil
}
