package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The registry is get-or-create: asking twice for the same family returns
// the same family, so several hosts in one process can share a registry and
// distinguish themselves with a label (the fleet command does exactly
// this). Registering the same name with a different kind or label set is a
// programming error and panics, matching client_golang's MustRegister
// contract.

// metricKind discriminates the three supported Prometheus metric types.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

var (
	validName  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	validLabel = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). All methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label-key schema; it holds one
// series per distinct label-value combination.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, +Inf implicit

	mu     sync.Mutex
	series map[string]*series
}

// series is one (family, label values) time series.
type series struct {
	labelValues []string

	mu    sync.Mutex
	value float64        // counter and gauge
	fn    func() float64 // gauge callback, overrides value when non-nil
	// histogram state: counts[i] counts observations <= buckets[i];
	// counts[len(buckets)] is the +Inf bucket. Counts are per-bucket here
	// and accumulated at render time.
	counts []uint64
	sum    float64
	count  uint64
}

// family fetches or creates a metric family, panicking on schema conflicts
// (same name, different kind/labels/buckets) — those are programming
// errors, not runtime conditions.
func (r *Registry) family(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		if strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %q re-registered with labels %v (was %v)", name, labels, f.labels))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: normalizeBuckets(buckets),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// normalizeBuckets sorts, dedupes, and strips non-finite upper bounds (the
// +Inf bucket is always implicit).
func normalizeBuckets(buckets []float64) []float64 {
	out := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	n := 0
	for i, b := range out {
		if i == 0 || b != out[n-1] {
			out[n] = b
			n++
		}
	}
	return out[:n]
}

// get fetches or creates the series for the given label values.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	if f.kind == histogramKind {
		s.counts = make([]uint64, len(f.buckets)+1)
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters only go
// up).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.s.mu.Lock()
	c.s.value += delta
	c.s.mu.Unlock()
}

// Value reports the current count.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.value
}

// Gauge is a value that can go up and down, or be computed at scrape time
// via SetFunc.
type Gauge struct{ s *series }

// Set replaces the gauge value (and clears any scrape callback).
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.value, g.s.fn = v, nil
	g.s.mu.Unlock()
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	g.s.mu.Lock()
	g.s.value += delta
	g.s.mu.Unlock()
}

// SetFunc makes the gauge report fn() at every scrape — for values that
// already live elsewhere (store usage, resident-VM counts) and would only
// go stale if copied.
func (g *Gauge) SetFunc(fn func() float64) {
	g.s.mu.Lock()
	g.s.fn = fn
	g.s.mu.Unlock()
}

// Value reports the current gauge value (calling the callback if set).
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	fn, v := g.s.fn, g.s.value
	g.s.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return v
}

// Histogram counts observations into its family's fixed buckets.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.s.mu.Lock()
	h.s.counts[idx]++
	h.s.sum += v
	h.s.count++
	h.s.mu.Unlock()
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.count
}

// Counter fetches or creates an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r.family(name, help, counterKind, nil, nil).get(nil)}
}

// Gauge fetches or creates an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r.family(name, help, gaugeKind, nil, nil).get(nil)}
}

// Histogram fetches or creates an unlabelled histogram with the given
// upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, histogramKind, nil, buckets)
	return &Histogram{f.get(nil), f.buckets}
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec fetches or creates a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, counterKind, labels, nil)}
}

// With resolves the counter for the given label values (positional, in
// registration order).
func (v *CounterVec) With(values ...string) *Counter { return &Counter{v.f.get(values)} }

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec fetches or creates a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, gaugeKind, labels, nil)}
}

// With resolves the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{v.f.get(values)} }

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec fetches or creates a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, histogramKind, labels, buckets)}
}

// With resolves the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{v.f.get(values), v.f.buckets}
}

// Names reports every registered metric family name, sorted — the set
// docs/OBSERVABILITY.md must cover (a test diffs the two).
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// WritePrometheus renders every family in the text exposition format:
// families sorted by name, series sorted by label values, label keys in
// registration order, histograms with cumulative buckets and a trailing
// +Inf bucket.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snaps := make([]*series, len(keys))
	for i, k := range keys {
		snaps[i] = f.series[k]
	}
	f.mu.Unlock()
	for _, s := range snaps {
		s.mu.Lock()
		value, fn := s.value, s.fn
		counts := append([]uint64(nil), s.counts...)
		sum, count := s.sum, s.count
		s.mu.Unlock()
		switch f.kind {
		case counterKind, gaugeKind:
			if fn != nil {
				value = fn()
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name, formatLabels(f.labels, s.labelValues, "", 0), formatFloat(value))
		case histogramKind:
			var cum uint64
			for i, bound := range f.buckets {
				cum += counts[i]
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, formatLabels(f.labels, s.labelValues, "le", bound), cum)
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, formatLabels(f.labels, s.labelValues, "le", math.Inf(1)), count)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, formatLabels(f.labels, s.labelValues, "", 0), formatFloat(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, formatLabels(f.labels, s.labelValues, "", 0), count)
		}
	}
}

// formatLabels renders {k1="v1",...}, optionally appending a le bucket
// label; it returns "" when there are no labels at all.
func formatLabels(keys, values []string, le string, bound float64) string {
	if len(keys) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(values[i]))
	}
	if le != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, le, formatFloat(bound))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the label-value escaping of the text format: exactly
// backslash, double quote, and newline (other bytes pass through raw, per
// the exposition-format spec).
func escapeLabel(v string) string {
	return strings.NewReplacer("\\", `\\`, "\"", `\"`, "\n", `\n`).Replace(v)
}

// escapeHelp escapes a HELP string (backslash and newline only; quotes are
// legal there).
func escapeHelp(h string) string {
	return strings.NewReplacer("\\", "\\\\", "\n", "\\n").Replace(h)
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip decimal, "+Inf"/"-Inf" for infinities.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
