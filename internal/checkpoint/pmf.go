package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"vecycle/internal/checksum"
	"vecycle/internal/faultfs"
	"vecycle/internal/vm"
)

// The page manifest file (pmf). Under content addressing a checkpoint entry
// owns no page bytes of its own: it is the ordered list of object keys that
// reconstructs the guest's memory, page frame by page frame, from the
// host-wide segment pool. The pmf is that list, durably.
//
// File layout (little-endian):
//
//	magic    [4]byte  "VPMF"
//	version  uint16   pmfVersion
//	alg      uint8    ObjectAlgorithm the keys were computed with
//	reserved uint8    zero
//	pageSize uint32   vm.PageSize the guest was paginated with
//	count    uint64   number of page frames (= logical size / pageSize)
//	keys     count × checksum.Size bytes, in page-frame order
//
// The store manifest records each entry's pmf by the hex SHA-256 of the
// whole pmf file. Because object keys are collision resistant, that one
// digest pins the entry's complete logical content: the recovery scan can
// decide "this pmf describes the committed transaction" with a single
// small-file hash instead of re-reading gigabytes of pages, and the
// fingerprint sidecar anchors to the same digest for its staleness check.
const (
	pmfSuffix     = ".pmf"
	pmfVersion    = 1
	pmfHeaderSize = 4 + 2 + 1 + 1 + 4 + 8
)

var pmfMagic = [4]byte{'V', 'P', 'M', 'F'}

// encodePMF renders the page-ordered object keys as pmf file bytes.
func encodePMF(keys []checksum.Sum) []byte {
	out := make([]byte, pmfHeaderSize+len(keys)*checksum.Size)
	copy(out[0:4], pmfMagic[:])
	binary.LittleEndian.PutUint16(out[4:6], pmfVersion)
	out[6] = byte(ObjectAlgorithm)
	binary.LittleEndian.PutUint32(out[8:12], uint32(vm.PageSize))
	binary.LittleEndian.PutUint64(out[12:20], uint64(len(keys)))
	for i := range keys {
		copy(out[pmfHeaderSize+i*checksum.Size:], keys[i][:])
	}
	return out
}

// writePMF atomically persists the entry's page manifest and returns the
// hex SHA-256 of the file — the digest the store manifest commits to.
func writePMF(fsys faultfs.FS, path string, keys []checksum.Sum) (digest string, err error) {
	raw := encodePMF(keys)
	if err := atomicWriteFile(fsys, path, raw, 0o644); err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// loadPMF reads an entry's page manifest, returning the page-ordered object
// keys and the hex SHA-256 of the file bytes for replay against the store
// manifest's record.
func loadPMF(fsys faultfs.FS, path string) (keys []checksum.Sum, digest string, err error) {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("checkpoint: page manifest: %w", err)
	}
	if len(raw) < pmfHeaderSize {
		return nil, "", fmt.Errorf("checkpoint: page manifest truncated (%d bytes)", len(raw))
	}
	if [4]byte(raw[0:4]) != pmfMagic {
		return nil, "", fmt.Errorf("checkpoint: page manifest has bad magic %q", raw[0:4])
	}
	if v := binary.LittleEndian.Uint16(raw[4:6]); v != pmfVersion {
		return nil, "", fmt.Errorf("checkpoint: page manifest version %d, want %d", v, pmfVersion)
	}
	if got := checksum.Algorithm(raw[6]); got != ObjectAlgorithm {
		return nil, "", fmt.Errorf("checkpoint: page manifest keyed with %v, store uses %v", got, ObjectAlgorithm)
	}
	if ps := binary.LittleEndian.Uint32(raw[8:12]); ps != vm.PageSize {
		return nil, "", fmt.Errorf("checkpoint: page manifest page size %d, want %d", ps, vm.PageSize)
	}
	count := binary.LittleEndian.Uint64(raw[12:20])
	if want := pmfHeaderSize + int(count)*checksum.Size; len(raw) != want {
		return nil, "", fmt.Errorf("checkpoint: page manifest is %d bytes, want %d for %d pages", len(raw), want, count)
	}
	keys = make([]checksum.Sum, count)
	for i := range keys {
		keys[i] = checksum.Sum(raw[pmfHeaderSize+i*checksum.Size : pmfHeaderSize+(i+1)*checksum.Size])
	}
	sum := sha256.Sum256(raw)
	return keys, hex.EncodeToString(sum[:]), nil
}
