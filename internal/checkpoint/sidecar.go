package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"vecycle/internal/checksum"
	"vecycle/internal/faultfs"
	"vecycle/internal/vm"
)

// The persistent fingerprint sidecar. checkpoint.Open rebuilds the §3.3
// checksum→offset index by re-reading and re-hashing the whole image on
// every migration — an O(RAM) rescan that dominates the warm-start path on
// the paper's WAN setting. Save therefore persists the per-page sums next
// to the image in a versioned sidecar; Open loads the sidecar instead of
// rehashing when its header validates against the image, and falls back to
// the full rescan (rewriting the sidecar) on any mismatch, truncation, or
// decode error. The sidecar is an acceleration cache, never a source of
// truth: deleting it only costs the next Open a rescan.
//
// File layout (little-endian):
//
//	magic     [4]byte  "VCFP"
//	version   uint16   sidecarVersion
//	alg       uint8    checksum.Algorithm the sums were computed with
//	reserved  uint8    zero
//	pageSize  uint32   vm.PageSize the image was paginated with
//	imageSize uint64   byte size of the image the sums describe
//	count     uint64   number of page sums (= imageSize / pageSize)
//	digest    [32]byte SHA-256 of the image, all zero when unknown
//	sums      count × checksum.Size bytes, in page order

const (
	sidecarSuffix  = ".idx"
	sidecarVersion = 1

	// sidecarHeaderSize is the fixed header: magic, version, alg, reserved,
	// pageSize, imageSize, count, digest.
	sidecarHeaderSize = 4 + 2 + 1 + 1 + 4 + 8 + 8 + 32
)

var sidecarMagic = [4]byte{'V', 'C', 'F', 'P'}

// SidecarPath reports where the fingerprint sidecar for an image lives.
func SidecarPath(imagePath string) string { return imagePath + sidecarSuffix }

// SidecarStatus reports how an Open interacted with the fingerprint sidecar.
type SidecarStatus uint8

const (
	// SidecarDisabled: the sidecar was bypassed (OpenConfig.NoSidecar).
	SidecarDisabled SidecarStatus = iota
	// SidecarHit: the index was loaded from a validated sidecar.
	SidecarHit
	// SidecarMiss: no sidecar file existed; the image was rehashed.
	SidecarMiss
	// SidecarFallback: a sidecar existed but failed validation or decoding;
	// the image was rehashed and the sidecar rewritten.
	SidecarFallback
)

// String returns the status as the label used by the obs metrics.
func (s SidecarStatus) String() string {
	switch s {
	case SidecarDisabled:
		return "disabled"
	case SidecarHit:
		return "hit"
	case SidecarMiss:
		return "miss"
	case SidecarFallback:
		return "fallback"
	default:
		return fmt.Sprintf("SidecarStatus(%d)", uint8(s))
	}
}

// writeSidecar writes a sidecar for an image of imageSize bytes whose page
// sums under alg are sum(0) … sum(n-1). digestHex, when non-empty, is the
// hex SHA-256 of the image. The write goes through a temp file + rename so
// a crash never leaves a torn sidecar for the next Open to trip over.
func writeSidecar(fsys faultfs.FS, path string, alg checksum.Algorithm, imageSize int64, digestHex string, n int, sum func(i int) checksum.Sum) (err error) {
	var hdr [sidecarHeaderSize]byte
	copy(hdr[0:4], sidecarMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], sidecarVersion)
	hdr[6] = byte(alg)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(vm.PageSize))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(imageSize))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(n))
	if digestHex != "" {
		raw, derr := hex.DecodeString(digestHex)
		if derr != nil || len(raw) != 32 {
			return fmt.Errorf("checkpoint: sidecar digest %q is not a hex SHA-256", digestHex)
		}
		copy(hdr[28:60], raw)
	}
	tmp := path + tmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: sidecar: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			fsys.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err = bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: sidecar header: %w", err)
	}
	for i := 0; i < n; i++ {
		s := sum(i)
		if _, err = bw.Write(s[:]); err != nil {
			return fmt.Errorf("checkpoint: sidecar sum %d: %w", i, err)
		}
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("checkpoint: sidecar flush: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sidecar sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("checkpoint: sidecar close: %w", err)
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("checkpoint: sidecar rename: %w", err)
	}
	return syncDir(fsys, filepath.Dir(path))
}

// loadSidecar streams the sidecar at path and returns the page-ordered sums
// for an image of imageSize bytes hashed under alg. wantDigestHex, when
// non-empty, is the expected image digest: a sidecar recording a different
// (or no) digest is stale and rejected. Any validation or decode failure
// returns an error; callers treat os.IsNotExist as a miss and anything else
// as a fallback, and rehash either way.
func loadSidecar(fsys faultfs.FS, path string, alg checksum.Algorithm, imageSize int64, wantDigestHex string) ([]checksum.Sum, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: sidecar stat: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [sidecarHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: sidecar header: %w", err)
	}
	if [4]byte(hdr[0:4]) != sidecarMagic {
		return nil, fmt.Errorf("checkpoint: sidecar has bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != sidecarVersion {
		return nil, fmt.Errorf("checkpoint: sidecar format version %d, want %d", v, sidecarVersion)
	}
	if got := checksum.Algorithm(hdr[6]); got != alg {
		return nil, fmt.Errorf("checkpoint: sidecar hashed with %v, index needs %v", got, alg)
	}
	if ps := binary.LittleEndian.Uint32(hdr[8:12]); ps != vm.PageSize {
		return nil, fmt.Errorf("checkpoint: sidecar page size %d, want %d", ps, vm.PageSize)
	}
	if sz := binary.LittleEndian.Uint64(hdr[12:20]); sz != uint64(imageSize) {
		return nil, fmt.Errorf("checkpoint: sidecar describes a %d-byte image, image is %d bytes", sz, imageSize)
	}
	count := binary.LittleEndian.Uint64(hdr[20:28])
	if count != uint64(imageSize)/vm.PageSize {
		return nil, fmt.Errorf("checkpoint: sidecar has %d sums for a %d-byte image", count, imageSize)
	}
	if wantDigestHex != "" {
		want, derr := hex.DecodeString(wantDigestHex)
		if derr != nil || len(want) != 32 {
			return nil, fmt.Errorf("checkpoint: expected digest %q is not a hex SHA-256", wantDigestHex)
		}
		if !bytes.Equal(hdr[28:60], want) {
			return nil, fmt.Errorf("checkpoint: sidecar digest does not match image digest")
		}
	}
	wantSize := int64(sidecarHeaderSize) + int64(count)*checksum.Size
	if st.Size() != wantSize {
		return nil, fmt.Errorf("checkpoint: sidecar is %d bytes, want %d (truncated or trailing data)", st.Size(), wantSize)
	}
	// Streamed body read: fixed chunks through the buffered reader, never a
	// whole-file slurp.
	sums := make([]checksum.Sum, count)
	const chunkSums = 4096
	buf := make([]byte, chunkSums*checksum.Size)
	for off := uint64(0); off < count; {
		n := uint64(chunkSums)
		if off+n > count {
			n = count - off
		}
		b := buf[:n*checksum.Size]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("checkpoint: sidecar sums at %d: %w", off, err)
		}
		for i := uint64(0); i < n; i++ {
			sums[off+i] = checksum.Sum(b[i*checksum.Size : (i+1)*checksum.Size])
		}
		off += n
	}
	return sums, nil
}

// minPagesPerSumWorker keeps the parallel sidecar build from fanning out
// over trivially small guests; mirrors the migration engine's checksum
// fan-out granularity.
const minPagesPerSumWorker = 256

// sumChunkPages is the contiguous span one pageSums worker claims per grab:
// large enough that a single ReadRange (one VM lock acquisition, one
// contiguous copy) amortizes across many hashes, small enough that the tail
// of the image still balances across the pool.
const sumChunkPages = 256

// pageSums computes the per-page sums of a live VM. Workers claim contiguous
// sumChunkPages-sized spans off an atomic cursor and copy each span out with
// one ReadRange before hashing — page-at-a-time PageSum calls paid one lock
// round-trip per 4 KiB, which throttled the Save-time SHA-256 keying scan.
func pageSums(v *vm.VM, alg checksum.Algorithm) []checksum.Sum {
	pages := v.NumPages()
	sums := make([]checksum.Sum, pages)
	chunk := sumChunkPages
	if pages < chunk {
		chunk = pages
	}
	var next atomic.Int64
	scan := func() {
		buf := make([]byte, chunk*vm.PageSize)
		for {
			start := int(next.Add(int64(chunk))) - chunk
			if start >= pages {
				return
			}
			cnt := chunk
			if start+cnt > pages {
				cnt = pages - start
			}
			span := buf[:cnt*vm.PageSize]
			v.ReadRange(start, cnt, span)
			for i := 0; i < cnt; i++ {
				sums[start+i] = alg.Page(span[i*vm.PageSize : (i+1)*vm.PageSize])
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > pages/minPagesPerSumWorker {
		workers = pages / minPagesPerSumWorker
	}
	if workers < 2 {
		scan()
		return sums
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scan()
		}()
	}
	wg.Wait()
	return sums
}
