package checkpoint

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// saveOne creates a store with one saved checkpoint and returns both.
func saveOne(t *testing.T, name string, pages int) (*Store, *vm.VM) {
	t.Helper()
	store, err := NewStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	src := newVM(t, name, pages, 1)
	fillPattern(src)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	return store, src
}

func TestSaveWritesSidecar(t *testing.T) {
	store, _ := saveOne(t, "vm0", 16)
	st, err := os.Stat(store.sidecarPath("vm0"))
	if err != nil {
		t.Fatalf("Save left no sidecar: %v", err)
	}
	if want := int64(sidecarHeaderSize + 16*checksum.Size); st.Size() != want {
		t.Errorf("sidecar is %d bytes, want %d", st.Size(), want)
	}
}

func TestRestoreWarmHitMatchesCold(t *testing.T) {
	store, src := saveOne(t, "vm0", 32)

	dst := newVM(t, "vm0", 32, 9)
	warm, err := store.Restore("vm0", checksum.MD5, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.Sidecar() != SidecarHit {
		t.Errorf("Sidecar() = %v, want hit", warm.Sidecar())
	}
	if !src.MemEqual(dst) {
		t.Errorf("warm restore lost memory at page %d", src.FirstDifference(dst))
	}

	// Cold path: the same entry with the sidecar bypassed rescans every
	// page out of the pool.
	store.SetNoSidecar(true)
	cold, err := store.Restore("vm0", checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	if cold.Sidecar() != SidecarDisabled {
		t.Errorf("cold Sidecar() = %v, want disabled", cold.Sidecar())
	}
	// Same announcement set and same resolvable blocks either way.
	if warm.SumSet().Len() != cold.SumSet().Len() ||
		warm.SumSet().IntersectCount(cold.SumSet()) != cold.SumSet().Len() {
		t.Error("warm and cold announcement sets differ")
	}
	for i := 0; i < src.NumPages(); i++ {
		sum := src.PageSum(i, checksum.MD5)
		wd, ok, err := warm.ReadBlock(sum)
		if err != nil || !ok {
			t.Fatalf("warm ReadBlock(page %d): ok=%v err=%v", i, ok, err)
		}
		warm.Release(wd)
	}
}

func TestOpenMissRewritesSidecar(t *testing.T) {
	dir := t.TempDir()
	src := newVM(t, "vm0", 16, 1)
	fillPattern(src)
	path := filepath.Join(dir, "vm0.img")
	// A bare Write (the flat-image path) leaves no sidecar.
	if err := Write(path, src); err != nil {
		t.Fatal(err)
	}
	cp, err := Open(path, checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Sidecar() != SidecarMiss {
		t.Errorf("first Open Sidecar() = %v, want miss", cp.Sidecar())
	}
	cp.Close()
	if _, err := os.Stat(SidecarPath(path)); err != nil {
		t.Fatalf("miss did not rewrite the sidecar: %v", err)
	}
	cp2, err := Open(path, checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Sidecar() != SidecarHit {
		t.Errorf("second Open Sidecar() = %v, want hit", cp2.Sidecar())
	}
}

func TestOpenNoSidecarLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	src := newVM(t, "vm0", 8, 1)
	fillPattern(src)
	path := filepath.Join(dir, "vm0.img")
	if err := Write(path, src); err != nil {
		t.Fatal(err)
	}
	cp, err := OpenWith(path, checksum.MD5, nil, OpenConfig{NoSidecar: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if cp.Sidecar() != SidecarDisabled {
		t.Errorf("Sidecar() = %v, want disabled", cp.Sidecar())
	}
	if _, err := os.Stat(SidecarPath(path)); !os.IsNotExist(err) {
		t.Errorf("NoSidecar open wrote a sidecar (stat err=%v)", err)
	}
}

func TestStoreSetNoSidecar(t *testing.T) {
	store, err := NewStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	store.SetNoSidecar(true)
	src := newVM(t, "vm0", 8, 1)
	fillPattern(src)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(store.sidecarPath("vm0")); !os.IsNotExist(err) {
		t.Errorf("SetNoSidecar Save wrote a sidecar (stat err=%v)", err)
	}
	cp, err := store.Restore("vm0", checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if cp.Sidecar() != SidecarDisabled {
		t.Errorf("Sidecar() = %v, want disabled", cp.Sidecar())
	}
}

// TestSidecarCorruptionFallsBack covers the corruption matrix: every broken
// sidecar must fall back to the rescan without surfacing an error, restore
// the right memory, and leave behind a rewritten sidecar that the next
// Restore hits.
func TestSidecarCorruptionFallsBack(t *testing.T) {
	cases := map[string]struct {
		corrupt func(t *testing.T, store *Store)
		alg     checksum.Algorithm
	}{
		"truncated file": {
			corrupt: func(t *testing.T, store *Store) {
				if err := os.Truncate(store.sidecarPath("vm0"), sidecarHeaderSize+5); err != nil {
					t.Fatal(err)
				}
			},
			alg: checksum.MD5,
		},
		"wrong algorithm": {
			// The sidecar records MD5 sums; this restore asks for SHA256.
			corrupt: func(t *testing.T, _ *Store) {},
			alg:     checksum.SHA256,
		},
		"stale anchor digest": {
			corrupt: func(t *testing.T, store *Store) {
				// Flip a byte inside the sidecar's recorded anchor digest so
				// it no longer matches the entry's page-manifest digest.
				f, err := os.OpenFile(store.sidecarPath("vm0"), os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				var b [1]byte
				if _, err := f.ReadAt(b[:], 30); err != nil {
					t.Fatal(err)
				}
				b[0] ^= 0xff
				if _, err := f.WriteAt(b[:], 30); err != nil {
					t.Fatal(err)
				}
			},
			alg: checksum.MD5,
		},
		"bad magic": {
			corrupt: func(t *testing.T, store *Store) {
				f, err := os.OpenFile(store.sidecarPath("vm0"), os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.WriteAt([]byte("XXXX"), 0); err != nil {
					t.Fatal(err)
				}
			},
			alg: checksum.MD5,
		},
		"future version": {
			corrupt: func(t *testing.T, store *Store) {
				f, err := os.OpenFile(store.sidecarPath("vm0"), os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.WriteAt([]byte{0xff, 0x7f}, 4); err != nil {
					t.Fatal(err)
				}
			},
			alg: checksum.MD5,
		},
		"garbage sums trailing": {
			corrupt: func(t *testing.T, store *Store) {
				f, err := os.OpenFile(store.sidecarPath("vm0"), os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.Write(make([]byte, 7)); err != nil {
					t.Fatal(err)
				}
			},
			alg: checksum.MD5,
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			store, _ := saveOne(t, "vm0", 16)
			tc.corrupt(t, store)

			dst := newVM(t, "vm0", 16, 9)
			cp, err := store.Restore("vm0", tc.alg, dst)
			if err != nil {
				t.Fatalf("corrupt sidecar broke Restore: %v", err)
			}
			if cp.Sidecar() != SidecarFallback {
				t.Errorf("Sidecar() = %v, want fallback", cp.Sidecar())
			}
			// The fallback must produce a correct index over the stored
			// content: every installed page resolves by checksum.
			for i := 0; i < dst.NumPages(); i++ {
				if !cp.SumSet().Contains(dst.PageSum(i, tc.alg)) {
					t.Fatalf("page %d missing from fallback index", i)
				}
			}
			cp.Close()

			// The fallback rewrote the sidecar: same algorithm hits now.
			cp2, err := store.Restore("vm0", tc.alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer cp2.Close()
			if cp2.Sidecar() != SidecarHit {
				t.Errorf("post-fallback Sidecar() = %v, want hit", cp2.Sidecar())
			}
		})
	}
}

// TestWarmOpenSkipsImageHashing proves the warm path does not rehash: with
// a validated sidecar and no VM to install into, Restore never reads page
// content, so doctoring a stored payload behind the sidecar's back goes
// unnoticed (integrity remains Verify's job — see VerifyOnRestore).
func TestWarmOpenSkipsImageHashing(t *testing.T) {
	store, src := saveOne(t, "vm0", 16)
	tamperObject(t, store, "vm0", 0)
	cp, err := store.Restore("vm0", checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if cp.Sidecar() != SidecarHit {
		t.Fatalf("Sidecar() = %v, want hit", cp.Sidecar())
	}
	// The announcement still reflects the original content: nothing was
	// rehashed.
	if !cp.SumSet().Contains(src.PageSum(0, checksum.MD5)) {
		t.Error("warm open rehashed the stored pages")
	}
}

// TestConcurrentRemoveDuringRestore races Store.Remove against
// Store.Restore. Either outcome is legal — a clean restore (possibly via
// sidecar-miss fallback) or a not-found error — but never a wrong index, a
// panic, or a data race.
func TestConcurrentRemoveDuringRestore(t *testing.T) {
	for round := 0; round < 8; round++ {
		store, _ := saveOne(t, "vm0", 32)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = store.Remove("vm0")
		}()
		go func() {
			defer wg.Done()
			cp, err := store.Restore("vm0", checksum.MD5, nil)
			if err != nil {
				// The removed side of the race: acceptable.
				return
			}
			defer cp.Close()
			if cp.Pages() != 32 {
				t.Errorf("raced restore produced %d pages, want 32", cp.Pages())
			}
			if cp.SumSet().Len() == 0 {
				t.Error("raced restore produced an empty index")
			}
		}()
		wg.Wait()
	}
}
