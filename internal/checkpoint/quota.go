package checkpoint

import (
	"errors"
	"fmt"
	"time"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// ErrQuotaExceeded marks a save (or shrink) that could not fit under the
// configured physical-byte quota even after collecting dead segments and
// evicting every other entry. The degradation ladder treats it like ENOSPC:
// a full store must not fail a completed migration.
var ErrQuotaExceeded = errors.New("checkpoint: store quota exceeded")

// Storage quota management. The paper argues local checkpoint storage is
// "cheap and abundant" (§1), but a host that serves many VMs still needs a
// bound. The quota caps PHYSICAL bytes — deduplicated segment payloads,
// what the disk actually spends — so a host full of near-identical guests
// fits far more logical checkpoint state than the cap suggests. When a Save
// does not fit, the store first collects dead segments, then evicts the
// least-recently-used entries (and collects again) until the new pages fit.
// An entry counts as used when it is saved or restored.

// SetQuota caps the physical bytes of checkpoint pages in the store. A zero
// or negative quota removes the cap. If the pool already exceeds the new
// quota, dead segments are collected and least-recently-used entries
// evicted immediately.
func (s *Store) SetQuota(bytes int64) error {
	s.mu.Lock()
	s.quota = bytes
	err := s.shrinkToQuotaLocked()
	s.mu.Unlock()
	s.drainMetrics()
	return err
}

// Quota reports the configured cap (0 = uncapped).
func (s *Store) Quota() int64 { return s.quota }

// Usage reports the physical payload bytes the object pool occupies — the
// quantity the quota caps. See Stats for the logical/physical breakdown.
func (s *Store) Usage() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.physicalLocked(), nil
}

// entryUsed reports an entry's last-use time — its page manifest's mtime,
// refreshed by touch on every save and restore.
func (s *Store) entryUsed(key string) time.Time {
	st, err := s.fs.Stat(s.pmfPath(key))
	if err != nil {
		return time.Time{} // missing pmf sorts oldest: evict first
	}
	return st.ModTime()
}

// lruVictimLocked picks the least-recently-used evictable entry, skipping
// excludeKey (the entry a Save is about to replace — it is superseded in
// place, never evicted to make room for itself).
func (s *Store) lruVictimLocked(excludeKey string) (string, bool) {
	victim := ""
	var victimUsed time.Time
	for key := range s.man.Entries {
		if key == excludeKey {
			continue
		}
		used := s.entryUsed(key)
		if victim == "" || used.Before(victimUsed) {
			victim, victimUsed = key, used
		}
	}
	return victim, victim != ""
}

// shrinkToQuotaLocked brings the pool back under the quota: collect, then
// evict LRU entries one at a time (collecting after each) until it fits.
func (s *Store) shrinkToQuotaLocked() error {
	if s.quota <= 0 {
		return nil
	}
	for s.physicalLocked() > s.quota {
		if rep, err := s.gcLocked(); err != nil {
			return err
		} else if rep.Reclaimed() {
			continue
		}
		victim, ok := s.lruVictimLocked("")
		if !ok {
			return fmt.Errorf("checkpoint: pool of %d bytes exceeds store quota %d and nothing is evictable: %w", s.physicalLocked(), s.quota, ErrQuotaExceeded)
		}
		if err := s.removeLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// fitQuotaLocked makes room for a Save that must write the pages in
// newSlots (indices into pageKeys). Eviction can free objects the save was
// counting on reusing, so the missing set is recomputed after every pass;
// the final missing set is returned. selfKey is never evicted.
func (s *Store) fitQuotaLocked(selfKey string, pageKeys []checksum.Sum, newSlots []int) ([]int, error) {
	for {
		incoming := int64(len(newSlots)) * vm.PageSize
		if s.physicalLocked()+incoming <= s.quota {
			return newSlots, nil
		}
		if rep, err := s.gcLocked(); err != nil {
			return nil, err
		} else if rep.Reclaimed() {
			newSlots = s.missingLocked(pageKeys)
			continue
		}
		victim, ok := s.lruVictimLocked(selfKey)
		if !ok {
			return nil, fmt.Errorf("checkpoint: %d incoming bytes exceed store quota %d: %w", incoming, s.quota, ErrQuotaExceeded)
		}
		if err := s.removeLocked(victim); err != nil {
			return nil, err
		}
		if rep, err := s.gcLocked(); err != nil {
			return nil, err
		} else if !rep.Reclaimed() {
			// The victim's objects were all shared; its removal freed
			// nothing physical. Keep evicting — the loop terminates because
			// each pass removes one entry and entries are finite.
			if _, stillMore := s.lruVictimLocked(selfKey); !stillMore {
				return nil, fmt.Errorf("checkpoint: %d incoming bytes exceed store quota %d: %w", incoming, s.quota, ErrQuotaExceeded)
			}
		}
		newSlots = s.missingLocked(pageKeys)
	}
}

// touch marks an entry as recently used, so Restore refreshes its LRU
// position.
func (s *Store) touch(vmName string) {
	now := time.Now()
	// Best effort: a failed utimes only degrades eviction ordering.
	_ = s.fs.Chtimes(s.pmfPath(vmName), now, now)
}
