package checkpoint

import (
	"fmt"
	"os"
	"sort"
	"time"
)

// Storage quota management. The paper argues local checkpoint storage is
// "cheap and abundant" (§1), but a host that serves many VMs still needs a
// bound: the store can be capped, evicting the least-recently-used
// checkpoints first. A checkpoint counts as used when it is saved or
// restored.

// SetQuota caps the total bytes of checkpoint images in the store. A zero
// or negative quota removes the cap. If existing images already exceed the
// new quota, the least-recently-used ones are evicted immediately.
func (s *Store) SetQuota(bytes int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quota = bytes
	return s.enforceQuotaLocked(0)
}

// Quota reports the configured cap (0 = uncapped).
func (s *Store) Quota() int64 { return s.quota }

// Usage reports the total bytes of stored checkpoint images.
func (s *Store) Usage() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.imageInfosLocked()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		total += e.size
	}
	return total, nil
}

type imageInfo struct {
	vmName string
	size   int64
	used   time.Time
}

// imageInfosLocked lists stored images with size and last-use time.
func (s *Store) imageInfosLocked() ([]imageInfo, error) {
	names, err := s.listLocked()
	if err != nil {
		return nil, err
	}
	infos := make([]imageInfo, 0, len(names))
	for _, n := range names {
		st, err := os.Stat(s.ImagePath(n))
		if err != nil {
			continue // raced with a concurrent Remove
		}
		infos = append(infos, imageInfo{vmName: n, size: st.Size(), used: st.ModTime()})
	}
	return infos, nil
}

// enforceQuotaLocked evicts least-recently-used images until usage +
// incoming fits the quota. incoming reserves room for an image about to be
// written.
func (s *Store) enforceQuotaLocked(incoming int64) error {
	if s.quota <= 0 {
		return nil
	}
	infos, err := s.imageInfosLocked()
	if err != nil {
		return err
	}
	var total int64
	for _, e := range infos {
		total += e.size
	}
	if total+incoming <= s.quota {
		return nil
	}
	// Oldest use first.
	sort.Slice(infos, func(i, j int) bool { return infos[i].used.Before(infos[j].used) })
	for _, e := range infos {
		if total+incoming <= s.quota {
			break
		}
		if err := s.removeLocked(e.vmName); err != nil {
			return err
		}
		total -= e.size
	}
	if total+incoming > s.quota {
		return fmt.Errorf("checkpoint: image of %d bytes exceeds store quota %d", incoming, s.quota)
	}
	return nil
}

// touch marks an image as recently used, so Restore refreshes its LRU
// position.
func (s *Store) touch(vmName string) {
	now := time.Now()
	// Best effort: a failed utimes only degrades eviction ordering.
	_ = os.Chtimes(s.ImagePath(vmName), now, now)
}
