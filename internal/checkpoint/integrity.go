package checkpoint

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"
)

// Image integrity. A checkpoint may sit on disk for days between
// migrations (the paper's inter-migration times reach a week); silent
// media corruption would otherwise surface only as a hard protocol error
// mid-migration, or — with an unlucky flip in a reused block — not at all
// on the unverified fast path. Save therefore records a whole-image
// SHA-256 in the store manifest (hashed in the same pass as the write),
// the startup recovery scan replays it against the disk, and Verify (or
// Restore, via the store's VerifyOnRestore knob) re-checks it on demand.
// Pre-manifest stores recorded the digest in a <image>.sha256 file, read
// here as a fallback until the recovery scan adopts the entry.

func (s *Store) digestPath(vmName string) string {
	return s.ImagePath(vmName) + ".sha256"
}

// readDigestLocked returns the recorded image digest — manifest first,
// legacy .sha256 file second — or "" when none exists.
func (s *Store) readDigestLocked(vmName string) string {
	if e, ok := s.man.Entries[sanitize(vmName)]; ok && e.Digest != "" {
		return e.Digest
	}
	raw, err := os.ReadFile(s.digestPath(vmName))
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(raw))
}

// Verify re-hashes the named VM's image and compares it with the recorded
// digest. An entry with no recorded digest verifies trivially.
func (s *Store) Verify(vmName string) error {
	s.mu.Lock()
	want := s.readDigestLocked(vmName)
	s.mu.Unlock()
	if want == "" {
		return nil
	}
	got, err := hashFile(s.ImagePath(vmName))
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("checkpoint: image %q failed integrity check (stored %s, computed %s)",
			vmName, want[:12], got[:12])
	}
	return nil
}

// SetVerifyOnRestore makes every Restore verify the image digest first.
// Costs one sequential read of the image before the bootstrap read.
func (s *Store) SetVerifyOnRestore(on bool) { s.verifyOnRestore = on }

func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, bufio.NewReaderSize(f, 1<<20)); err != nil {
		return "", fmt.Errorf("checkpoint: hash %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
