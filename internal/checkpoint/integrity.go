package checkpoint

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"vecycle/internal/faultfs"
	"vecycle/internal/vm"
)

// Pool integrity. A checkpoint may sit on disk for days between migrations
// (the paper's inter-migration times reach a week); silent media corruption
// would otherwise surface only as a hard protocol error mid-migration, or —
// with an unlucky flip in a reused block — not at all on the unverified
// fast path. The content-addressed layout makes every page self-verifying:
// an object's key IS its collision-resistant checksum, so Verify re-reads
// an entry's pages out of the pool and re-derives each key, catching bit
// rot in any segment the entry touches. The startup recovery scan covers
// the complementary whole-file layer (segment and page-manifest digests
// recorded in the manifest), and Restore can be made to verify first via
// the store's VerifyOnRestore knob.

// digestPath is where a pre-manifest, pre-CAS store recorded a legacy
// image's whole-file digest; recovery consumes it during adoption.
func (s *Store) digestPath(vmName string) string {
	return s.legacyImagePath(vmName) + ".sha256"
}

// Verify re-reads the named VM's pages from the object pool and checks each
// against its recorded object key. An entry with no resolvable page keys
// (absent, or an un-adopted legacy quarantine) verifies trivially.
func (s *Store) Verify(vmName string) error {
	s.mu.Lock()
	key := sanitize(vmName)
	pageKeys := s.keys[key]
	var refs []pageRef
	var files []faultfs.File
	var err error
	if pageKeys != nil {
		refs, files, err = s.resolveLocked(pageKeys)
	}
	s.mu.Unlock()
	if pageKeys == nil {
		return nil
	}
	if err != nil {
		return err
	}
	defer closeAll(files)
	buf := make([]byte, vm.PageSize)
	for i, ref := range refs {
		if _, err := ref.f.ReadAt(buf, ref.off); err != nil {
			return fmt.Errorf("checkpoint: verify %q page %d: %w", vmName, i, err)
		}
		if got := ObjectAlgorithm.Page(buf); got != pageKeys[i] {
			return fmt.Errorf("checkpoint: image %q failed integrity check (page %d stored as object %s, bytes hash to %s)",
				vmName, i, pageKeys[i], got)
		}
	}
	return nil
}

// SetVerifyOnRestore makes every Restore verify the entry's pages first.
// Costs one extra sequential read (plus hashing) before the bootstrap read.
func (s *Store) SetVerifyOnRestore(on bool) { s.verifyOnRestore = on }

func hashFile(fsys faultfs.FS, path string) (string, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, bufio.NewReaderSize(f, 1<<20)); err != nil {
		return "", fmt.Errorf("checkpoint: hash %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
