package checkpoint

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"
)

// Image integrity. A checkpoint may sit on disk for days between
// migrations (the paper's inter-migration times reach a week); silent
// media corruption would otherwise surface only as a hard protocol error
// mid-migration, or — with an unlucky flip in a reused block — not at all
// on the unverified fast path. Save therefore records a whole-image
// SHA-256 alongside each image, and Verify (or Restore, via the store's
// VerifyOnRestore knob) replays it.

func (s *Store) digestPath(vmName string) string {
	return s.ImagePath(vmName) + ".sha256"
}

// writeDigestValue records a digest computed while the image was written —
// Save hashes in the same pass as the write, so no re-read happens here.
func (s *Store) writeDigestValue(vmName, sum string) error {
	if err := os.WriteFile(s.digestPath(vmName), []byte(sum+"\n"), 0o644); err != nil {
		return fmt.Errorf("checkpoint: write digest: %w", err)
	}
	return nil
}

// readDigest returns the recorded image digest, or "" when none exists (an
// image from an older store, or a raced Remove).
func (s *Store) readDigest(vmName string) string {
	raw, err := os.ReadFile(s.digestPath(vmName))
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(raw))
}

// Verify re-hashes the named VM's image and compares it with the recorded
// digest. A missing digest sidecar (images from older stores) verifies
// trivially.
func (s *Store) Verify(vmName string) error {
	raw, err := os.ReadFile(s.digestPath(vmName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: read digest: %w", err)
	}
	want := strings.TrimSpace(string(raw))
	got, err := hashFile(s.ImagePath(vmName))
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("checkpoint: image %q failed integrity check (stored %s, computed %s)",
			vmName, want[:12], got[:12])
	}
	return nil
}

// SetVerifyOnRestore makes every Restore verify the image digest first.
// Costs one sequential read of the image before the bootstrap read.
func (s *Store) SetVerifyOnRestore(on bool) { s.verifyOnRestore = on }

func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, bufio.NewReaderSize(f, 1<<20)); err != nil {
		return "", fmt.Errorf("checkpoint: hash %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
