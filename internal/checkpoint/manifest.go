package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The store manifest. The image, sidecar and generation files are each
// written atomically, but a checkpoint is only coherent when they agree —
// and a crash can land between any two of them. The manifest is the single
// commit point: a small versioned JSON file, rewritten atomically as the
// LAST step of every Save/SaveSalvage/Remove, recording each entry's state
// and the digest of the image those states describe. Any crash earlier in
// the sequence leaves the manifest describing the previous transaction, so
// the startup recovery scan sees a digest that no longer matches the bytes
// on disk and quarantines the entry instead of serving it.

const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1
)

// EntryState is the lifecycle state of a store entry, as recorded in the
// manifest.
type EntryState string

const (
	// EntryComplete is a fully written checkpoint: a coherent image of the
	// whole guest, eligible for bootstrap, delta bases and generations.
	EntryComplete EntryState = "complete"
	// EntryPartial is a salvage checkpoint: pages installed by an
	// interrupted incoming migration, persisted so the next attempt's hash
	// announcement resends only what is missing. Served for announce-driven
	// bootstrap, never as a delta base or generation source.
	EntryPartial EntryState = "partial"
	// EntryQuarantined marks an entry whose image failed its digest check
	// (torn write, bit rot). The files are kept for forensics but the store
	// refuses to serve them.
	EntryQuarantined EntryState = "quarantined"
)

// manifestEntry is one entry's durable record.
type manifestEntry struct {
	State  EntryState `json:"state"`
	Digest string     `json:"digest,omitempty"` // hex SHA-256 of the image
	Size   int64      `json:"size"`
	Reason string     `json:"reason,omitempty"` // why quarantined
}

// manifestFile is the on-disk shape.
type manifestFile struct {
	Version int                      `json:"version"`
	Entries map[string]manifestEntry `json:"entries"`
}

// EntryInfo describes a store entry: the manifest record joined with the
// files actually on disk.
type EntryInfo struct {
	// Name is the store key — the sanitized VM name, also the image stem.
	Name string
	// State is the entry's manifest state. Images found on disk without a
	// manifest record (stores written before the manifest existed) report
	// EntryComplete after the recovery scan adopts them.
	State EntryState
	// Digest is the recorded hex SHA-256 of the image, empty when unknown.
	Digest string
	// Size is the image's current byte size.
	Size int64
	// Reason explains a quarantine, empty otherwise.
	Reason string
	// HasSidecar reports whether a fingerprint sidecar file sits next to
	// the image (its validity is only established when it is loaded).
	HasSidecar bool
}

func (s *Store) manifestPath() string {
	return filepath.Join(s.dir, manifestName)
}

// loadManifestLocked reads the manifest into memory, tolerating absence
// (pre-manifest store) and rejecting unknown versions.
func (s *Store) loadManifestLocked() error {
	s.man = manifestFile{Version: manifestVersion, Entries: map[string]manifestEntry{}}
	raw, err := os.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: read manifest: %w", err)
	}
	var m manifestFile
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("checkpoint: parse manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("checkpoint: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Entries == nil {
		m.Entries = map[string]manifestEntry{}
	}
	s.man = m
	return nil
}

// commitManifestLocked atomically persists the in-memory manifest — the
// transaction commit point of every mutating store operation.
func (s *Store) commitManifestLocked() error {
	raw, err := json.MarshalIndent(s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal manifest: %w", err)
	}
	if err := atomicWriteFile(s.manifestPath(), append(raw, '\n'), 0o644); err != nil {
		return err
	}
	return kill("manifest-committed")
}

// entryLocked joins the manifest record for vmName with the on-disk image.
// Images never recorded in the manifest (written by pre-manifest stores,
// or dropped in by hand) report as complete — the recovery scan adopts
// them properly on the next open or Scrub.
func (s *Store) entryLocked(vmName string) (EntryInfo, bool) {
	key := sanitize(vmName)
	st, statErr := os.Stat(s.ImagePath(vmName))
	e, ok := s.man.Entries[key]
	if !ok {
		if statErr != nil {
			return EntryInfo{}, false
		}
		return EntryInfo{Name: key, State: EntryComplete, Size: st.Size(), HasSidecar: s.hasSidecar(vmName)}, true
	}
	if statErr != nil {
		// Manifest entry without an image: a raced Remove or a crash after
		// the image unlink. Report absent; recovery drops the record.
		return EntryInfo{}, false
	}
	return EntryInfo{
		Name: key, State: e.State, Digest: e.Digest,
		Size: st.Size(), Reason: e.Reason, HasSidecar: s.hasSidecar(vmName),
	}, true
}

func (s *Store) hasSidecar(vmName string) bool {
	_, err := os.Stat(SidecarPath(s.ImagePath(vmName)))
	return err == nil
}

// Entry reports the named VM's store entry, ok=false when none exists.
func (s *Store) Entry(vmName string) (EntryInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entryLocked(vmName)
}

// Entries lists every store entry — manifest records joined with on-disk
// images, plus unrecorded legacy images — sorted by name.
func (s *Store) Entries() ([]EntryInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names, err := s.listLocked()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []EntryInfo
	for _, n := range names {
		if info, ok := s.entryLocked(n); ok && !seen[info.Name] {
			seen[info.Name] = true
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
