package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The store manifest. Segments, page manifests, sidecars and generation
// files are each written atomically, but a checkpoint entry is only
// coherent when they agree — and a crash can land between any two of them.
// The manifest is the single commit point: a small versioned JSON file,
// rewritten atomically as the LAST step of every Save/SaveSalvage/Remove/GC,
// recording each entry's state and pmf digest plus every segment the object
// pool consists of. Any crash earlier in a transaction leaves the manifest
// describing the previous transaction, so the startup recovery scan sees
// digests that no longer match the bytes on disk and quarantines (entries)
// or rolls back (unrecorded segments/pmfs) instead of serving torn state.
//
// Version 1 manifests described the pre-CAS store of one private image per
// VM; loading one is supported, and the recovery scan converts its images
// into the content-addressed layout on first open.

const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 2
	// manifestVersionLegacy is the pre-CAS per-image manifest, still
	// accepted on load; recovery adopts its images into the object pool.
	manifestVersionLegacy = 1
)

// EntryState is the lifecycle state of a store entry, as recorded in the
// manifest.
type EntryState string

const (
	// EntryComplete is a fully written checkpoint: a coherent image of the
	// whole guest, eligible for bootstrap, delta bases and generations.
	EntryComplete EntryState = "complete"
	// EntryPartial is a salvage checkpoint: pages installed by an
	// interrupted incoming migration, persisted so the next attempt's hash
	// announcement resends only what is missing. Served for announce-driven
	// bootstrap, never as a delta base or generation source.
	EntryPartial EntryState = "partial"
	// EntryQuarantined marks an entry whose page manifest or backing
	// segment failed its digest check (torn write, bit rot). The files are
	// kept for forensics but the store refuses to serve them.
	EntryQuarantined EntryState = "quarantined"
)

// manifestEntry is one entry's durable record.
type manifestEntry struct {
	State EntryState `json:"state"`
	// Digest is the hex SHA-256 of the entry's page manifest file, which —
	// object keys being collision resistant — pins the entry's complete
	// logical content. For un-adopted legacy entries it is the image digest.
	Digest string `json:"digest,omitempty"`
	// Size is the entry's logical byte size: what the guest's memory
	// occupies, not what the deduplicated store spends on it.
	Size  int64 `json:"size"`
	Pages int   `json:"pages,omitempty"`
	// Reason explains a quarantine, empty otherwise.
	Reason string `json:"reason,omitempty"`
	// LegacyImage marks a quarantined pre-CAS entry whose .img file is kept
	// on disk for forensics instead of being adopted into the object pool.
	LegacyImage bool `json:"legacyImage,omitempty"`
}

// segmentRecord is one segment file's durable record.
type segmentRecord struct {
	// Digest is the hex SHA-256 of the whole segment file, replayed by the
	// recovery scan to catch torn writes and bit rot.
	Digest string `json:"digest"`
	Pages  int    `json:"pages"`
}

// manifestFile is the on-disk shape.
type manifestFile struct {
	Version  int                      `json:"version"`
	Entries  map[string]manifestEntry `json:"entries"`
	Segments map[string]segmentRecord `json:"segments,omitempty"`
	// NextSeg is the sequence number of the next segment file, so names
	// never collide even after segments are GC'd.
	NextSeg uint64 `json:"nextSeg,omitempty"`
}

// EntryInfo describes a store entry as recorded in the manifest.
type EntryInfo struct {
	// Name is the store key — the sanitized VM name, also the file stem of
	// the entry's page manifest.
	Name string
	// State is the entry's manifest state.
	State EntryState
	// Digest is the hex SHA-256 of the entry's page manifest (its logical
	// content identity), empty when unknown.
	Digest string
	// Size is the entry's logical byte size; the physical bytes behind it
	// are shared with every other entry referencing the same objects.
	Size int64
	// Pages is the entry's page-frame count.
	Pages int
	// UniqueBytes is the portion of Size backed by objects no other entry
	// references — what Remove+GC of this entry alone would reclaim.
	UniqueBytes int64
	// Reason explains a quarantine, empty otherwise.
	Reason string
	// HasSidecar reports whether a fingerprint sidecar file exists for the
	// entry (its validity is only established when it is loaded).
	HasSidecar bool
}

func (s *Store) manifestPath() string {
	return filepath.Join(s.dir, manifestName)
}

// loadManifestLocked reads the manifest into memory, tolerating absence
// (fresh or pre-manifest store), accepting the legacy per-image version 1
// (whose images the recovery scan adopts), and rejecting unknown versions.
func (s *Store) loadManifestLocked() error {
	s.man = manifestFile{Version: manifestVersion, Entries: map[string]manifestEntry{}, Segments: map[string]segmentRecord{}}
	raw, err := s.fs.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: read manifest: %w", err)
	}
	var m manifestFile
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("checkpoint: parse manifest: %w", err)
	}
	if m.Version != manifestVersion && m.Version != manifestVersionLegacy {
		return fmt.Errorf("checkpoint: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Entries == nil {
		m.Entries = map[string]manifestEntry{}
	}
	if m.Segments == nil {
		m.Segments = map[string]segmentRecord{}
	}
	if m.Version == manifestVersionLegacy {
		// Version 1 entries describe private .img files. Carry the records;
		// the recovery scan converts the images into the object pool (or
		// keeps them as legacy files when quarantined).
		m.Version = manifestVersion
		for key, e := range m.Entries {
			e.LegacyImage = true
			m.Entries[key] = e
		}
	}
	s.man = m
	return nil
}

// commitManifestLocked atomically persists the in-memory manifest — the
// transaction commit point of every mutating store operation.
func (s *Store) commitManifestLocked() error {
	raw, err := json.MarshalIndent(s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal manifest: %w", err)
	}
	if err := atomicWriteFile(s.fs, s.manifestPath(), append(raw, '\n'), 0o644); err != nil {
		return err
	}
	return kill("manifest-committed")
}

// entryLocked reports the manifest record for vmName. Under content
// addressing the manifest is the sole source of truth: files the manifest
// does not describe are interrupted transactions (rolled back by recovery)
// or legacy images (adopted by recovery).
func (s *Store) entryLocked(vmName string) (EntryInfo, bool) {
	key := sanitize(vmName)
	e, ok := s.man.Entries[key]
	if !ok {
		return EntryInfo{}, false
	}
	return EntryInfo{
		Name: key, State: e.State, Digest: e.Digest, Size: e.Size,
		Pages: e.Pages, Reason: e.Reason, HasSidecar: s.hasSidecar(vmName),
		UniqueBytes: s.uniqueBytesLocked(key),
	}, true
}

func (s *Store) hasSidecar(vmName string) bool {
	_, err := s.fs.Stat(s.sidecarPath(vmName))
	return err == nil
}

// Entry reports the named VM's store entry, ok=false when none exists.
func (s *Store) Entry(vmName string) (EntryInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entryLocked(vmName)
}

// Entries lists every store entry recorded in the manifest, sorted by name.
func (s *Store) Entries() ([]EntryInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EntryInfo, 0, len(s.man.Entries))
	for key := range s.man.Entries {
		if info, ok := s.entryLocked(key); ok {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
