package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Startup recovery. NewStore replays the crash-consistency contract before
// serving anything: leftover temp files are interrupted transactions and
// are deleted; manifest records whose image vanished are dropped; images
// the manifest never heard of are adopted; and every recorded digest is
// replayed against the bytes actually on disk — a mismatch means the crash
// landed between the image rename and the manifest commit, and the entry
// is quarantined rather than served. Torn fingerprint sidecars need no
// quarantine: Open validates them independently and falls back to the
// rescan, so a sidecar can at worst cost time, never correctness.

// ScrubReport summarizes one recovery scan.
type ScrubReport struct {
	// Checked counts the entries whose recorded digest was replayed.
	Checked int
	// Adopted lists legacy images found without a manifest record and
	// adopted (their digest computed and recorded).
	Adopted []string
	// Quarantined lists entries quarantined by this scan.
	Quarantined []string
	// Dropped lists manifest records whose image had vanished.
	Dropped []string
	// TempFiles lists interrupted-transaction temp files deleted.
	TempFiles []string
}

// Scrub runs the recovery scan on demand — the same pass NewStore runs at
// startup — and reports what it found. Already-quarantined entries are
// re-checked: one whose image now matches its digest again stays
// quarantined (the state records that it was once torn; Remove is the way
// out).
func (s *Store) Scrub() (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recoverLocked()
}

func (s *Store) recoverLocked() (ScrubReport, error) {
	var rep ScrubReport
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return rep, fmt.Errorf("checkpoint: recovery scan: %w", err)
	}
	changed := false

	// 1. Interrupted transactions: any surviving temp file belongs to a
	// write whose commit never happened.
	for _, de := range dirents {
		if strings.HasSuffix(de.Name(), tmpSuffix) {
			p := filepath.Join(s.dir, de.Name())
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				return rep, fmt.Errorf("checkpoint: remove orphan %s: %w", p, err)
			}
			rep.TempFiles = append(rep.TempFiles, de.Name())
		}
	}

	// 2. Manifest records whose image vanished: drop them, sweeping any
	// satellite files the interrupted remove left behind.
	for key := range s.man.Entries {
		img := filepath.Join(s.dir, key+".img")
		if _, err := os.Stat(img); err == nil {
			continue
		}
		for _, p := range []string{SidecarPath(img), img + ".gens.json", img + ".sha256"} {
			_ = os.Remove(p)
		}
		delete(s.man.Entries, key)
		rep.Dropped = append(rep.Dropped, key)
		changed = true
	}

	// 3. Images the manifest never recorded (pre-manifest stores): adopt
	// them as complete, preferring a legacy .sha256 record over a fresh
	// hash so bit rot predating adoption is still caught below.
	for _, de := range dirents {
		key, ok := strings.CutSuffix(de.Name(), ".img")
		if !ok {
			continue
		}
		if _, known := s.man.Entries[key]; known {
			continue
		}
		digest := s.readDigestLocked(key)
		if digest == "" {
			if digest, err = hashFile(filepath.Join(s.dir, de.Name())); err != nil {
				return rep, err
			}
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent remove
		}
		s.man.Entries[key] = manifestEntry{State: EntryComplete, Digest: digest, Size: info.Size()}
		rep.Adopted = append(rep.Adopted, key)
		changed = true
	}

	// 4. Digest replay: every recorded digest is checked against the image
	// bytes. A mismatch is a torn transaction (or bit rot) — quarantine,
	// never serve.
	keys := make([]string, 0, len(s.man.Entries))
	for key := range s.man.Entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		e := s.man.Entries[key]
		if e.Digest == "" || e.State == EntryQuarantined {
			continue
		}
		rep.Checked++
		got, err := hashFile(filepath.Join(s.dir, key+".img"))
		if err != nil {
			return rep, err
		}
		if got != e.Digest {
			e.State = EntryQuarantined
			e.Reason = fmt.Sprintf("image digest mismatch (recorded %s, computed %s)", e.Digest[:12], got[:12])
			s.man.Entries[key] = e
			rep.Quarantined = append(rep.Quarantined, key)
			changed = true
		}
	}

	if changed {
		if err := s.commitManifestLocked(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
