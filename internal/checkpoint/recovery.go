package checkpoint

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// Startup recovery. NewStore replays the crash-consistency contract before
// serving anything:
//
//   - leftover temp files are interrupted transactions and are deleted;
//   - every recorded segment's whole-file digest is replayed against the
//     disk — a vanished or torn segment is pulled from the pool (the file,
//     if torn, is set aside under a .bad suffix for forensics) and every
//     entry that depended on it quarantines below;
//   - legacy per-image checkpoints (pre-CAS stores and version-1 manifests)
//     are adopted: their pages are deduplicated into the object pool, a
//     page manifest is written, and the .img file retired — unless the
//     image fails its recorded digest, in which case it is quarantined
//     untouched;
//   - every entry's page-manifest digest is replayed and its object keys
//     resolved against the pool — a mismatch or an unresolvable key means
//     the crash landed between a file rename and the manifest commit, and
//     the entry is quarantined rather than served;
//   - segment and page-manifest files the manifest never heard of are the
//     uncommitted tail of an interrupted transaction and are rolled back.
//
// Torn fingerprint sidecars need no quarantine: Restore validates them
// independently and falls back to the rescan, so a sidecar can at worst
// cost time, never correctness.

// ScrubReport summarizes one recovery scan.
type ScrubReport struct {
	// Checked counts the entries whose recorded page-manifest digest was
	// replayed against the disk.
	Checked int
	// Adopted lists legacy per-image checkpoints converted into the
	// content-addressed pool by this scan.
	Adopted []string
	// Quarantined lists entries quarantined by this scan.
	Quarantined []string
	// Dropped lists manifest records whose page manifest (or legacy image)
	// had vanished.
	Dropped []string
	// TempFiles lists interrupted-transaction temp files deleted.
	TempFiles []string
	// Orphans lists segment and page-manifest files no committed
	// transaction described, rolled back by this scan.
	Orphans []string
	// CleanupFailures lists paths of best-effort cleanups (satellite
	// sweeps, retired legacy files) that failed to unlink. The scan
	// proceeds — the files are garbage, not state — but a disk that
	// cannot unlink is worth surfacing; each failure is also counted in
	// the vecycle_store_cleanup_errors_total metric.
	CleanupFailures []string
}

// Scrub runs the recovery scan on demand — the same pass NewStore runs at
// startup — and reports what it found. Already-quarantined entries are
// re-checked: one whose files now validate again stays quarantined (the
// state records that it was once torn; Remove is the way out).
func (s *Store) Scrub() (ScrubReport, error) {
	s.mu.Lock()
	rep, err := s.recoverLocked()
	s.mu.Unlock()
	s.drainMetrics()
	return rep, err
}

func (s *Store) recoverLocked() (ScrubReport, error) {
	var rep ScrubReport
	dirents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return rep, fmt.Errorf("checkpoint: recovery scan: %w", err)
	}
	changed := false

	// Reset the in-memory pool view: recovery rebuilds it from disk.
	s.objects = map[checksum.Sum]objLoc{}
	s.refs = map[checksum.Sum]int{}
	s.keys = map[string][]checksum.Sum{}
	s.segKeys = map[string][]checksum.Sum{}

	// 1. Interrupted transactions: any surviving temp file belongs to a
	// write whose commit never happened.
	for _, de := range dirents {
		if strings.HasSuffix(de.Name(), tmpSuffix) {
			p := filepath.Join(s.dir, de.Name())
			if err := s.fs.Remove(p); err != nil && !os.IsNotExist(err) {
				return rep, fmt.Errorf("checkpoint: remove orphan %s: %w", p, err)
			}
			rep.TempFiles = append(rep.TempFiles, de.Name())
		}
	}

	// 2. Segment replay: every recorded segment must exist, parse, and hash
	// to its recorded digest before its objects enter the pool. badKeys
	// remembers why a torn segment's objects vanished, so the entries that
	// referenced them can quarantine with the root cause.
	badKeys := map[checksum.Sum]string{}
	for _, segName := range sortedKeys(s.man.Segments) {
		rec := s.man.Segments[segName]
		path := filepath.Join(s.dir, segName)
		got, err := hashFile(s.fs, path)
		if os.IsNotExist(err) {
			delete(s.man.Segments, segName)
			changed = true
			continue
		}
		if err != nil {
			return rep, err
		}
		reason := ""
		if got != rec.Digest {
			reason = fmt.Sprintf("segment %s digest mismatch (recorded %.12s, computed %.12s)", segName, rec.Digest, got)
		} else if segKeys, kerr := readSegmentKeys(s.fs, path); kerr != nil {
			reason = fmt.Sprintf("segment %s unreadable: %v", segName, kerr)
		} else if len(segKeys) != rec.Pages {
			reason = fmt.Sprintf("segment %s holds %d objects, manifest records %d", segName, len(segKeys), rec.Pages)
		} else {
			s.registerSegmentLocked(segName, segKeys)
			continue
		}
		if segKeys, kerr := readSegmentKeys(s.fs, path); kerr == nil {
			for _, k := range segKeys {
				badKeys[k] = reason
			}
		}
		// Torn: pull it from the pool, set the file aside for forensics.
		delete(s.man.Segments, segName)
		changed = true
		if err := s.fs.Rename(path, path+".bad"); err != nil && !os.IsNotExist(err) {
			return rep, fmt.Errorf("checkpoint: set aside %s: %w", segName, err)
		}
	}

	// 3. Legacy per-image checkpoints: adopt them into the pool (or
	// quarantine them untouched when their recorded digest does not match).
	for _, de := range dirents {
		key, ok := strings.CutSuffix(de.Name(), ".img")
		if !ok {
			continue
		}
		rec := s.man.Entries[key]
		if rec.State == EntryQuarantined {
			// Already quarantined: keep the evidence, adopt nothing.
			if !rec.LegacyImage {
				rec.LegacyImage = true
				s.man.Entries[key] = rec
				changed = true
			}
			continue
		}
		adopted, why, err := s.adoptLegacyLocked(&rep, key, rec)
		if err != nil {
			return rep, err
		}
		changed = true
		if adopted {
			rep.Adopted = append(rep.Adopted, key)
		} else {
			rep.Quarantined = append(rep.Quarantined, key)
			_ = why
		}
	}

	// 4. Entry replay: page-manifest digest and object resolution.
	for _, key := range sortedKeys(s.man.Entries) {
		e := s.man.Entries[key]
		if e.State == EntryQuarantined {
			// Keep the record; if its page manifest is readable, keep its
			// objects pinned so GC preserves the evidence.
			if pageKeys, _, err := loadPMF(s.fs, s.pmfPath(key)); err == nil {
				s.registerEntryLocked(key, pageKeys)
			}
			continue
		}
		pageKeys, digest, err := loadPMF(s.fs, s.pmfPath(key))
		if err != nil {
			if !os.IsNotExist(unwrapPathError(err)) {
				// Readable but torn page manifest: quarantine.
				e.State = EntryQuarantined
				e.Reason = fmt.Sprintf("page manifest unreadable: %v", err)
				s.man.Entries[key] = e
				rep.Quarantined = append(rep.Quarantined, key)
				changed = true
				continue
			}
			// Record without a page manifest: a raced Remove or a crash
			// after the unlink. Drop it, sweeping satellite files.
			s.sweepLocked(&rep, s.sidecarPath(key), s.genPath(key), s.digestPath(key))
			delete(s.man.Entries, key)
			s.dropEntryLocked(key)
			rep.Dropped = append(rep.Dropped, key)
			changed = true
			continue
		}
		rep.Checked++
		reason := ""
		if e.Digest != "" && digest != e.Digest {
			reason = fmt.Sprintf("page manifest digest mismatch (recorded %.12s, computed %.12s)", e.Digest, digest)
		} else {
			for _, k := range pageKeys {
				if _, ok := s.objects[k]; !ok {
					if why, torn := badKeys[k]; torn {
						reason = why
					} else {
						reason = fmt.Sprintf("object %s missing from pool", k)
					}
					break
				}
			}
		}
		s.registerEntryLocked(key, pageKeys)
		if reason != "" {
			e.State = EntryQuarantined
			e.Reason = reason
			s.man.Entries[key] = e
			rep.Quarantined = append(rep.Quarantined, key)
			changed = true
		}
	}

	// 5. Roll back files no committed transaction describes: unrecorded
	// segments and page manifests are the tail of an interrupted Save.
	for _, de := range dirents {
		name := de.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, segmentSuffix) {
			if _, recorded := s.man.Segments[name]; !recorded {
				if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
					return rep, fmt.Errorf("checkpoint: roll back %s: %w", name, err)
				}
				rep.Orphans = append(rep.Orphans, name)
			}
			continue
		}
		if key, ok := strings.CutSuffix(name, pmfSuffix); ok {
			if _, recorded := s.man.Entries[key]; !recorded {
				for _, p := range []string{filepath.Join(s.dir, name), filepath.Join(s.dir, name+sidecarSuffix)} {
					if err := s.fs.Remove(p); err != nil && !os.IsNotExist(err) {
						return rep, fmt.Errorf("checkpoint: roll back %s: %w", p, err)
					}
				}
				rep.Orphans = append(rep.Orphans, name)
			}
		}
	}

	if changed {
		if err := s.commitManifestLocked(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// sweepLocked removes best-effort satellite files, recording failures in
// the scrub report and the cleanup-errors metric instead of dropping them.
func (s *Store) sweepLocked(rep *ScrubReport, paths ...string) {
	for _, p := range paths {
		if err := s.fs.Remove(p); err != nil && !os.IsNotExist(err) {
			rep.CleanupFailures = append(rep.CleanupFailures, p)
			path := p
			s.deferMetricLocked(func(m Metrics) { m.CleanupError(path) })
		}
	}
}

// adoptLegacyLocked converts one pre-CAS image into the object pool: its
// pages are read once, deduplicated against the pool, and re-homed behind a
// page manifest; the .img file and its satellites are retired. An image
// whose recorded digest (version-1 manifest or legacy .sha256 file) does
// not match the bytes on disk is quarantined untouched instead. Reports
// adopted=false with a reason when quarantined.
func (s *Store) adoptLegacyLocked(rep *ScrubReport, key string, rec manifestEntry) (adopted bool, reason string, err error) {
	path := s.legacyImagePath(key)
	expect := rec.Digest
	if expect == "" {
		if raw, err := s.fs.ReadFile(s.digestPath(key)); err == nil {
			expect = strings.TrimSpace(string(raw))
		}
	}
	quarantine := func(why string) (bool, string, error) {
		state := rec
		state.State = EntryQuarantined
		state.Reason = why
		state.LegacyImage = true
		if state.Digest == "" {
			state.Digest = expect
		}
		s.man.Entries[key] = state
		return false, why, nil
	}

	f, err := s.fs.Open(path)
	if err != nil {
		return false, "", fmt.Errorf("checkpoint: adopt %s: %w", key, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return false, "", fmt.Errorf("checkpoint: adopt %s: %w", key, err)
	}
	if st.Size()%vm.PageSize != 0 {
		return quarantine(fmt.Sprintf("image size %d not a multiple of the page size", st.Size()))
	}
	pages := int(st.Size() / vm.PageSize)

	// One sequential read: whole-image digest, object keys and announce
	// sums all in the same pass.
	h := sha256.New()
	pageKeys := make([]checksum.Sum, pages)
	announce := make([]checksum.Sum, pages)
	br := bufio.NewReaderSize(f, 1<<20)
	buf := make([]byte, vm.PageSize)
	for i := 0; i < pages; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return false, "", fmt.Errorf("checkpoint: adopt %s: read page %d: %w", key, i, err)
		}
		h.Write(buf)
		pageKeys[i] = ObjectAlgorithm.Page(buf)
		announce[i] = SidecarAlgorithm.Page(buf)
	}
	if got := hex.EncodeToString(h.Sum(nil)); expect != "" && got != expect {
		return quarantine(fmt.Sprintf("image digest mismatch (recorded %.12s, computed %.12s)", expect, got))
	}

	// Write the missing pages into a fresh segment, reading them back out
	// of the image by offset.
	newSlots := s.missingLocked(pageKeys)
	segName := ""
	if len(newSlots) > 0 {
		segKeyList := make([]checksum.Sum, len(newSlots))
		for i, slot := range newSlots {
			segKeyList[i] = pageKeys[slot]
		}
		segName = segmentName(s.man.NextSeg + 1)
		var readErr error
		digest, err := writeSegment(s.fs, filepath.Join(s.dir, segName), segKeyList, func(i int, out []byte) {
			if _, rerr := f.ReadAt(out, int64(newSlots[i])*vm.PageSize); rerr != nil && readErr == nil {
				readErr = rerr
			}
		})
		if err == nil && readErr != nil {
			err = fmt.Errorf("checkpoint: adopt %s: %w", key, readErr)
		}
		if err != nil {
			return false, "", err
		}
		s.man.NextSeg++
		s.man.Segments[segName] = segmentRecord{Digest: digest, Pages: len(newSlots)}
		s.registerSegmentLocked(segName, segKeyList)
	}
	pmfDigest, err := writePMF(s.fs, s.pmfPath(key), pageKeys)
	if err != nil {
		return false, "", err
	}
	if !s.noSidecar {
		if err := writeSidecar(s.fs, s.sidecarPath(key), SidecarAlgorithm, st.Size(), pmfDigest,
			pages, func(i int) checksum.Sum { return announce[i] }); err != nil {
			return false, "", err
		}
	}
	state := rec.State
	if state == "" {
		state = EntryComplete
	}
	s.man.Entries[key] = manifestEntry{State: state, Digest: pmfDigest, Size: st.Size(), Pages: pages}
	s.registerEntryLocked(key, pageKeys)
	s.sweepLocked(rep, path, SidecarPath(path), s.digestPath(key))
	return true, "", nil
}

// sortedKeys returns a map's keys in sorted order, for deterministic scans.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// unwrapPathError digs the underlying error out of the fmt wrapping so
// os.IsNotExist works on loadPMF failures.
func unwrapPathError(err error) error {
	for {
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return err
		}
		inner := u.Unwrap()
		if inner == nil {
			return err
		}
		err = inner
	}
}
