package checkpoint

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"path/filepath"

	"vecycle/internal/checksum"
	"vecycle/internal/faultfs"
	"vecycle/internal/vm"
)

// The content-addressed object layer. The paper's observation that drives
// checkpoint recycling — identical memory content recurs between a VM's
// visits to a host (§3.1) — extends across VMs on the same host: zero
// pages, guest-kernel text and shared-library pages are byte-identical in
// every tenant. The store therefore keys every 4 KiB page by a
// collision-resistant checksum (the object key) and persists each distinct
// page exactly once per host, in append-only segment files. Checkpoint
// entries become page manifests: ordered lists of object keys (pmf.go).
//
// Segment file layout (little-endian), immutable once renamed into place:
//
//	magic    [4]byte  "VSEG"
//	version  uint16   segmentVersion
//	reserved uint16   zero
//	pageSize uint32   vm.PageSize the payloads are cut into
//	count    uint32   number of objects in this segment
//	keys     count × checksum.Size bytes, in slot order
//	payloads count × pageSize bytes, in the same slot order
//
// A segment is written with the same tmp+fsync+rename discipline as every
// other store artifact and recorded — whole-file SHA-256 included — in the
// store manifest as part of the same transaction that makes its objects
// reachable. A segment file the manifest does not know about is an
// interrupted transaction and is deleted by recovery and by GC.

// ObjectAlgorithm is the checksum algorithm that keys the content-addressed
// store. Object keys deduplicate across VMs and are never negotiated, so
// only a collision-resistant (Strong) algorithm is acceptable here — the
// PR 7 policy that weak checksums may only drive baseline transfers, never
// content reuse, applies doubly to a host-wide index.
const ObjectAlgorithm = checksum.SHA256

const (
	segmentVersion    = 1
	segmentHeaderSize = 4 + 2 + 2 + 4 + 4
	segmentSuffix     = ".seg"
)

var segmentMagic = [4]byte{'V', 'S', 'E', 'G'}

// segmentName formats the file name of segment n.
func segmentName(n uint64) string {
	return fmt.Sprintf("seg-%08d%s", n, segmentSuffix)
}

// segPayloadOffset reports the byte offset of slot i's payload in a segment
// holding count objects.
func segPayloadOffset(count, i int) int64 {
	return segmentHeaderSize + int64(count)*checksum.Size + int64(i)*vm.PageSize
}

// segmentFileSize reports the total byte size of a segment holding count
// objects.
func segmentFileSize(count int) int64 {
	return segPayloadOffset(count, count)
}

// writeSegment writes a segment holding the given object keys, reading slot
// i's payload via page(i, buf). It returns the hex SHA-256 of the written
// file, computed in the same pass. The write shares the image kill points
// ("image-written", "image-synced", "image-renamed") with the legacy image
// writer so the kill-point matrix drives both.
func writeSegment(fsys faultfs.FS, path string, keys []checksum.Sum, page func(i int, buf []byte)) (digest string, err error) {
	tmp := path + tmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("checkpoint: segment: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			if !killed(err) {
				fsys.Remove(tmp)
			}
		}
	}()
	h := sha256.New()
	bw := bufio.NewWriterSize(io.MultiWriter(f, h), 1<<20)
	var hdr [segmentHeaderSize]byte
	copy(hdr[0:4], segmentMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], segmentVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(vm.PageSize))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(keys)))
	if _, err = bw.Write(hdr[:]); err != nil {
		return "", fmt.Errorf("checkpoint: segment header: %w", err)
	}
	for i := range keys {
		if _, err = bw.Write(keys[i][:]); err != nil {
			return "", fmt.Errorf("checkpoint: segment key %d: %w", i, err)
		}
	}
	buf := make([]byte, vm.PageSize)
	for i := range keys {
		page(i, buf)
		if _, err = bw.Write(buf); err != nil {
			return "", fmt.Errorf("checkpoint: segment payload %d: %w", i, err)
		}
	}
	if err = bw.Flush(); err != nil {
		return "", fmt.Errorf("checkpoint: segment flush: %w", err)
	}
	if err = kill("image-written"); err != nil {
		return "", err
	}
	if err = f.Sync(); err != nil {
		return "", fmt.Errorf("checkpoint: segment sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return "", fmt.Errorf("checkpoint: segment close: %w", err)
	}
	if err = kill("image-synced"); err != nil {
		return "", err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("checkpoint: segment rename: %w", err)
	}
	if err = kill("image-renamed"); err != nil {
		return "", err
	}
	if err = syncDir(fsys, filepath.Dir(path)); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// readSegmentKeys parses a segment file's header and key table, validating
// magic, version, page size and total file size. Payloads are not read.
func readSegmentKeys(fsys faultfs.FS, path string) ([]checksum.Sum, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: segment stat: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [segmentHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: segment header: %w", err)
	}
	if [4]byte(hdr[0:4]) != segmentMagic {
		return nil, fmt.Errorf("checkpoint: segment has bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != segmentVersion {
		return nil, fmt.Errorf("checkpoint: segment format version %d, want %d", v, segmentVersion)
	}
	if ps := binary.LittleEndian.Uint32(hdr[8:12]); ps != vm.PageSize {
		return nil, fmt.Errorf("checkpoint: segment page size %d, want %d", ps, vm.PageSize)
	}
	count := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if st.Size() != segmentFileSize(count) {
		return nil, fmt.Errorf("checkpoint: segment is %d bytes, want %d for %d objects", st.Size(), segmentFileSize(count), count)
	}
	keys := make([]checksum.Sum, count)
	for i := range keys {
		var raw [checksum.Size]byte
		if _, err := io.ReadFull(br, raw[:]); err != nil {
			return nil, fmt.Errorf("checkpoint: segment key %d: %w", i, err)
		}
		keys[i] = checksum.Sum(raw)
	}
	return keys, nil
}
