package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"vecycle/internal/vm"
)

const testPage = vm.PageSize

func quotaStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(filepath.Join(t.TempDir(), "q"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// saveVM saves a VM whose content is random but deterministic per name, so
// distinct names share no pages — each save costs its full physical size.
// (The quota caps physical bytes; entries that dedup'd against each other
// would make the arithmetic here meaningless.)
func saveVM(t *testing.T, s *Store, name string, pages int) {
	t.Helper()
	seed := int64(1)
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	v := filledVM(t, name, pages, seed)
	if err := s.Save(v); err != nil {
		t.Fatal(err)
	}
}

// ageImage pushes an entry's LRU timestamp into the past.
func ageImage(t *testing.T, s *Store, name string, age time.Duration) {
	t.Helper()
	old := time.Now().Add(-age)
	if err := os.Chtimes(s.pmfPath(name), old, old); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaUncappedByDefault(t *testing.T) {
	s := quotaStore(t)
	if s.Quota() != 0 {
		t.Errorf("default quota = %d", s.Quota())
	}
	saveVM(t, s, "a", 4)
	saveVM(t, s, "b", 4)
	usage, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if usage != 8*testPage {
		t.Errorf("Usage = %d, want %d", usage, 8*testPage)
	}
}

func TestQuotaEvictsLRUOnSave(t *testing.T) {
	s := quotaStore(t)
	if err := s.SetQuota(8 * testPage); err != nil {
		t.Fatal(err)
	}
	saveVM(t, s, "old", 4)
	ageImage(t, s, "old", 2*time.Hour)
	saveVM(t, s, "mid", 4)
	ageImage(t, s, "mid", time.Hour)

	// A third 4-page image exceeds the 8-page quota: "old" must go.
	saveVM(t, s, "new", 4)
	if s.Has("old") {
		t.Error("LRU image survived eviction")
	}
	if !s.Has("mid") || !s.Has("new") {
		t.Error("wrong image evicted")
	}
}

func TestQuotaRestoreRefreshesLRU(t *testing.T) {
	s := quotaStore(t)
	if err := s.SetQuota(8 * testPage); err != nil {
		t.Fatal(err)
	}
	saveVM(t, s, "a", 4)
	ageImage(t, s, "a", 2*time.Hour)
	saveVM(t, s, "b", 4)
	ageImage(t, s, "b", time.Hour)

	// Restoring "a" marks it used; "b" becomes the eviction candidate.
	cp, err := s.Restore("a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()

	saveVM(t, s, "c", 4)
	if !s.Has("a") {
		t.Error("recently restored image evicted")
	}
	if s.Has("b") {
		t.Error("stale image survived")
	}
}

func TestQuotaReplacingOwnImage(t *testing.T) {
	// Re-saving the same VM must not evict others: the old image is
	// replaced in place.
	s := quotaStore(t)
	if err := s.SetQuota(8 * testPage); err != nil {
		t.Fatal(err)
	}
	saveVM(t, s, "a", 4)
	saveVM(t, s, "b", 4)
	saveVM(t, s, "a", 4) // replace
	if !s.Has("a") || !s.Has("b") {
		t.Error("replacement evicted a sibling")
	}
}

func TestQuotaTooSmallForImage(t *testing.T) {
	s := quotaStore(t)
	if err := s.SetQuota(2 * testPage); err != nil {
		t.Fatal(err)
	}
	v := filledVM(t, "big", 4, 1)
	if err := s.Save(v); err == nil {
		t.Error("checkpoint larger than quota accepted")
	}
}

func TestSetQuotaEvictsImmediately(t *testing.T) {
	s := quotaStore(t)
	saveVM(t, s, "a", 4)
	ageImage(t, s, "a", time.Hour)
	saveVM(t, s, "b", 4)
	if err := s.SetQuota(4 * testPage); err != nil {
		t.Fatal(err)
	}
	if s.Has("a") {
		t.Error("SetQuota did not evict LRU image")
	}
	if !s.Has("b") {
		t.Error("SetQuota evicted the wrong image")
	}
}

func TestSetQuotaZeroRemovesCap(t *testing.T) {
	s := quotaStore(t)
	if err := s.SetQuota(4 * testPage); err != nil {
		t.Fatal(err)
	}
	if err := s.SetQuota(0); err != nil {
		t.Fatal(err)
	}
	saveVM(t, s, "a", 4)
	saveVM(t, s, "b", 4)
	saveVM(t, s, "c", 4)
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Errorf("uncapped store evicted: %v", names)
	}
}
