package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vecycle/internal/checksum"
	"vecycle/internal/dirtytrack"
	"vecycle/internal/vm"
)

// Store manages the checkpoints a host keeps for the VMs that have visited
// it. The paper's premise (via Birke et al.) is that a VM revisits a small
// set of hosts — often just two — so "storing a checkpoint at each visited
// server" is cheap and pays for itself on the next incoming migration.
//
// Alongside each image the store keeps a Miyakodori generation-vector
// sidecar, so the dirty-tracking baseline can be driven from the same
// stored state.
type Store struct {
	dir             string
	quota           int64
	verifyOnRestore bool
	noSidecar       bool
}

// NewStore opens (creating if needed) a checkpoint store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// ImagePath reports where the image for the named VM lives.
func (s *Store) ImagePath(vmName string) string {
	return filepath.Join(s.dir, sanitize(vmName)+".img")
}

func (s *Store) genPath(vmName string) string {
	return filepath.Join(s.dir, sanitize(vmName)+".gens.json")
}

// sanitize keeps VM names from escaping the store directory.
func sanitize(name string) string {
	r := strings.NewReplacer("/", "_", "\\", "_", "..", "_", string(os.PathSeparator), "_")
	out := r.Replace(name)
	if out == "" {
		out = "_"
	}
	return out
}

// Has reports whether a checkpoint exists for the named VM.
func (s *Store) Has(vmName string) bool {
	_, err := os.Stat(s.ImagePath(vmName))
	return err == nil
}

// Save checkpoints the VM's memory (and its generation vector) on this
// host, replacing any previous checkpoint of the same VM. When a quota is
// set, least-recently-used checkpoints are evicted first to make room.
func (s *Store) Save(source *vm.VM) error {
	if s.quota > 0 {
		// The VM's own previous image (about to be replaced) does not
		// count against the incoming size.
		incoming := source.MemBytes()
		if st, err := os.Stat(s.ImagePath(source.Name())); err == nil {
			incoming -= st.Size()
		}
		if incoming < 0 {
			incoming = 0
		}
		if err := s.enforceQuota(incoming); err != nil {
			return err
		}
	}
	digest, err := writeImage(s.ImagePath(source.Name()), source)
	if err != nil {
		return err
	}
	gens := source.GenSnapshot()
	raw, err := json.Marshal(gens)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal generations: %w", err)
	}
	if err := os.WriteFile(s.genPath(source.Name()), raw, 0o644); err != nil {
		return fmt.Errorf("checkpoint: write generations: %w", err)
	}
	if !s.noSidecar {
		// Persist the fingerprint sidecar so the next Restore warm-starts
		// instead of rehashing the image. Hashing fans out across cores,
		// same as the migration engine's checksum collection.
		sums := pageSums(source, SidecarAlgorithm)
		if err := writeSidecar(SidecarPath(s.ImagePath(source.Name())), SidecarAlgorithm,
			source.MemBytes(), digest, len(sums), func(i int) checksum.Sum { return sums[i] }); err != nil {
			return err
		}
	}
	return s.writeDigestValue(source.Name(), digest)
}

// SidecarAlgorithm is the checksum algorithm Store.Save records in the
// fingerprint sidecar. Restores requesting a different algorithm fall back
// to the rescan path and rewrite the sidecar under the requested one.
const SidecarAlgorithm = checksum.MD5

// SetNoSidecar disables the fingerprint sidecar for this store: Save skips
// writing it and Restore neither reads nor rewrites one. Escape hatch for
// debugging and for hosts where the extra ~0.4 % of image size matters.
func (s *Store) SetNoSidecar(on bool) { s.noSidecar = on }

// NoSidecar reports whether the fingerprint sidecar is disabled.
func (s *Store) NoSidecar() bool { return s.noSidecar }

// Restore opens the named VM's checkpoint, installing its blocks into dst
// (when non-nil) and returning the indexed handle for the merge phase.
func (s *Store) Restore(vmName string, alg checksum.Algorithm, dst *vm.VM) (*Checkpoint, error) {
	if s.verifyOnRestore {
		if err := s.Verify(vmName); err != nil {
			return nil, err
		}
	}
	cfg := OpenConfig{NoSidecar: s.noSidecar}
	if !s.noSidecar {
		// Pin the sidecar to the image the integrity record describes: a
		// string compare at load time replaces a full rehash.
		cfg.ExpectedDigest = s.readDigest(vmName)
	}
	cp, err := OpenWith(s.ImagePath(vmName), alg, dst, cfg)
	if err == nil {
		s.touch(vmName)
	}
	return cp, err
}

// Generations loads the Miyakodori generation vector stored with the
// checkpoint, or ok=false if none exists.
func (s *Store) Generations(vmName string) (dirtytrack.GenVector, bool, error) {
	raw, err := os.ReadFile(s.genPath(vmName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: read generations: %w", err)
	}
	var gens dirtytrack.GenVector
	if err := json.Unmarshal(raw, &gens); err != nil {
		return nil, false, fmt.Errorf("checkpoint: parse generations: %w", err)
	}
	return gens, true, nil
}

// Remove deletes the named VM's checkpoint and sidecars, if present. The
// image goes first: a concurrent Restore that wins the race on the
// fingerprint sidecar alone only pays a rescan fallback, never reads sums
// for a different image.
func (s *Store) Remove(vmName string) error {
	for _, p := range []string{s.ImagePath(vmName), SidecarPath(s.ImagePath(vmName)), s.genPath(vmName), s.digestPath(vmName)} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("checkpoint: remove %s: %w", p, err)
		}
	}
	return nil
}

// List reports the VM names with stored checkpoints.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".img"); ok {
			names = append(names, n)
		}
	}
	return names, nil
}
