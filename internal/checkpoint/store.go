package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"vecycle/internal/checksum"
	"vecycle/internal/dirtytrack"
	"vecycle/internal/faultfs"
	"vecycle/internal/vm"
)

// Store manages the checkpoints a host keeps for the VMs that have visited
// it. The paper's premise (via Birke et al.) is that a VM revisits a small
// set of hosts — often just two — so "storing a checkpoint at each visited
// server" is cheap and pays for itself on the next incoming migration.
//
// The store is content addressed and host wide: every distinct 4 KiB page
// is persisted exactly once per host, in append-only segment files keyed by
// a collision-resistant checksum (object.go), and each checkpoint entry is
// a page manifest referencing those objects (pmf.go). Pages shared between
// VMs — zero pages, kernel text, common libraries — cost their bytes once,
// and a destination can bootstrap a fresh VM from the union of every
// resident entry's content (OpenUnion). Reference counts over the object
// pool drive a GC pass (gc.go) that deletes and compacts dead segments.
//
// Alongside each entry the store keeps a Miyakodori generation-vector
// sidecar, so the dirty-tracking baseline can be driven from the same
// stored state.
//
// The store is crash-consistent: every file reaches its name via
// tmp+fsync+rename, a versioned manifest (committed last, atomically)
// records each entry's page-manifest digest and every live segment, and
// NewStore replays the recorded digests against the disk — quarantining
// entries a crash left torn and rolling back files no committed transaction
// describes. Entries are complete (a full checkpoint), partial (a salvage
// checkpoint persisted by an interrupted incoming migration, served for
// announce-driven resume only), or quarantined (never served).
type Store struct {
	dir             string
	fs              faultfs.FS
	mu              sync.Mutex
	man             manifestFile
	quota           int64
	verifyOnRestore bool
	noSidecar       bool

	// In-memory view of the object pool, rebuilt from the manifest and the
	// segment key tables by the recovery scan — never persisted, so it can
	// not desynchronize across a crash.
	objects map[checksum.Sum]objLoc   // object key → payload location
	refs    map[checksum.Sum]int      // object key → entry references
	keys    map[string][]checksum.Sum // entry → page-ordered object keys
	segKeys map[string][]checksum.Sum // segment file → keys in slot order

	dedupPages int64 // cumulative pages Save skipped writing (already pooled)

	metrics Metrics
	pending []func(Metrics) // metric callbacks deferred until s.mu is free
}

// objLoc locates one object's payload inside a segment file.
type objLoc struct {
	seg string // segment file name within the store directory
	off int64  // payload byte offset
}

// Metrics receives store-side counter events. The scheduler layer installs
// an implementation that forwards to the host's observability registry.
// Callbacks are invoked only after the store's own lock is released, so an
// implementation may take locks of its own — even ones a concurrent metrics
// scrape holds while calling back into Stats or Usage.
type Metrics interface {
	// DedupPages reports n pages a Save deduplicated against the pool
	// instead of writing.
	DedupPages(n int)
	// GCRun reports a completed GC pass; outcome is "reclaimed" when the
	// pass deleted or compacted at least one segment, "clean" otherwise.
	GCRun(outcome string)
	// HashBytes reports n payload bytes a Save digested itself; stage is
	// "save_keys" (the SHA-256 content-keying scan) or "save_sidecar" (the
	// fingerprint sidecar build).
	HashBytes(stage string, n int64)
	// HashAvoidedBytes reports n payload bytes whose digests were supplied
	// precomputed by the caller (SaveWithSums) instead of recomputed.
	HashAvoidedBytes(n int64)
	// CleanupError reports a best-effort cleanup (superseded legacy files,
	// satellite sweeps) that failed to remove path. The store carries on —
	// the file is garbage, not state — but silent failures used to hide
	// sick disks, so every one is now counted.
	CleanupError(path string)
	// Degraded reports a rung of the graceful-degradation ladder taken
	// inside the store itself — e.g. a union-bootstrap entry skipped
	// because its segment reads fail. stage and fault use the same label
	// vocabulary as the vecycle_degraded_total metric.
	Degraded(stage, fault string)
}

// SetMetrics installs the metrics sink. Pass nil to disable.
func (s *Store) SetMetrics(m Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
}

// deferMetric queues a metric callback for delivery once s.mu is released.
func (s *Store) deferMetricLocked(fn func(Metrics)) {
	if s.metrics != nil {
		s.pending = append(s.pending, fn)
	}
}

// drainMetrics delivers queued metric callbacks. Called by every public
// mutator after releasing the lock.
func (s *Store) drainMetrics() {
	s.mu.Lock()
	m := s.metrics
	pend := s.pending
	s.pending = nil
	s.mu.Unlock()
	if m == nil {
		return
	}
	for _, fn := range pend {
		fn(m)
	}
}

// NewStore opens (creating if needed) a checkpoint store rooted at dir and
// runs the crash-recovery scan — including adoption of legacy per-image
// checkpoints into the object pool — before returning.
func NewStore(dir string) (*Store, error) {
	return NewStoreFS(dir, faultfs.OS)
}

// NewStoreFS is NewStore with an explicit filesystem seam. Production code
// passes faultfs.OS (what NewStore does); chaos tests pass an
// injector-wrapped FS so every store op site becomes a fault site.
func NewStoreFS(dir string, fsys faultfs.FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store: %w", err)
	}
	s := &Store{
		dir:     dir,
		fs:      fsys,
		objects: map[checksum.Sum]objLoc{},
		refs:    map[checksum.Sum]int{},
		keys:    map[string][]checksum.Sum{},
		segKeys: map[string][]checksum.Sum{},
	}
	if err := s.loadManifestLocked(); err != nil {
		return nil, err
	}
	if _, err := s.recoverLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// pmfPath reports where the named VM's page manifest lives.
func (s *Store) pmfPath(vmName string) string {
	return filepath.Join(s.dir, sanitize(vmName)+pmfSuffix)
}

// sidecarPath reports where the named VM's fingerprint sidecar lives.
func (s *Store) sidecarPath(vmName string) string {
	return SidecarPath(s.pmfPath(vmName))
}

// legacyImagePath reports where a pre-CAS store kept the named VM's image.
func (s *Store) legacyImagePath(vmName string) string {
	return filepath.Join(s.dir, sanitize(vmName)+".img")
}

func (s *Store) genPath(vmName string) string {
	return filepath.Join(s.dir, sanitize(vmName)+".gens.json")
}

// sanitize keeps VM names from escaping the store directory.
func sanitize(name string) string {
	r := strings.NewReplacer("/", "_", "\\", "_", "..", "_", string(os.PathSeparator), "_")
	out := r.Replace(name)
	if out == "" {
		out = "_"
	}
	return out
}

// Has reports whether a servable checkpoint — complete or partial, not
// quarantined — exists for the named VM.
func (s *Store) Has(vmName string) bool {
	info, ok := s.Entry(vmName)
	return ok && info.State != EntryQuarantined
}

// Save checkpoints the VM's memory (and its generation vector) on this
// host, replacing any previous checkpoint of the same VM — including a
// salvage checkpoint, which a completed migration supersedes. Pages whose
// content the object pool already holds (from any VM) are referenced, not
// rewritten. When a quota is set, dead segments are collected and then
// least-recently-used entries are evicted until the new pages fit.
func (s *Store) Save(source *vm.VM) error {
	s.mu.Lock()
	_, err := s.saveLocked(source, EntryComplete, nil)
	s.mu.Unlock()
	s.drainMetrics()
	return err
}

// SaveWithSums is Save with a caller-supplied per-page digest table —
// typically the sum table a migration recorded (core.SumTable) — so the
// digest pass matching alg is skipped: the sidecar build when alg is
// SidecarAlgorithm, the content-keying scan when it is ObjectAlgorithm. The
// other pass still recomputes its own algorithm from the image.
//
// The caller asserts sums[i] is alg's digest of the VM's current page i. A
// wrong table poisons what that pass would have produced (a sidecar is
// trusted on warm restore; content keys decide dedup identity), so hand over
// only tables the migration protocol itself vouched for. A nil/short/alien
// table is not an error — the save silently falls back to rehashing, so
// callers need no special-casing for failed or untracked migrations.
func (s *Store) SaveWithSums(source *vm.VM, alg checksum.Algorithm, sums []checksum.Sum) error {
	var pre *preSums
	if len(sums) == source.NumPages() && alg.Valid() {
		pre = &preSums{alg: alg, sums: sums}
	}
	s.mu.Lock()
	_, err := s.saveLocked(source, EntryComplete, pre)
	s.mu.Unlock()
	s.drainMetrics()
	return err
}

// preSums is a caller-supplied digest table threaded into one save
// transaction; covers reports whether it substitutes for a pass under alg.
type preSums struct {
	alg  checksum.Algorithm
	sums []checksum.Sum
}

func (p *preSums) covers(alg checksum.Algorithm, pages int) bool {
	return p != nil && p.alg == alg && len(p.sums) == pages
}

// SaveSalvage persists the VM's memory as a salvage checkpoint: a partial
// entry holding whatever pages an interrupted incoming migration had
// installed, with its own page manifest and fingerprint sidecar. The next
// incoming attempt announces its page sums like any checkpoint, so the
// source resends only what is missing. No generation vector is written —
// a partial image is not a coherent guest state — and any stale one from
// a previous complete checkpoint is removed.
func (s *Store) SaveSalvage(source *vm.VM) error {
	s.mu.Lock()
	_, err := s.saveLocked(source, EntryPartial, nil)
	s.mu.Unlock()
	s.drainMetrics()
	return err
}

// registerSegmentLocked adds a segment's key table to the in-memory pool
// index. The first segment to hold an object wins its location.
func (s *Store) registerSegmentLocked(name string, keys []checksum.Sum) {
	s.segKeys[name] = keys
	for i, k := range keys {
		if _, ok := s.objects[k]; !ok {
			s.objects[k] = objLoc{seg: name, off: segPayloadOffset(len(keys), i)}
		}
	}
}

// registerEntryLocked records an entry's page keys, bumping refcounts (and
// releasing the entry's previous keys, if any).
func (s *Store) registerEntryLocked(key string, pageKeys []checksum.Sum) {
	if old := s.keys[key]; old != nil {
		s.unrefLocked(old)
	}
	s.keys[key] = pageKeys
	for _, k := range pageKeys {
		s.refs[k]++
	}
}

// unrefLocked releases one reference per key occurrence.
func (s *Store) unrefLocked(pageKeys []checksum.Sum) {
	for _, k := range pageKeys {
		if s.refs[k] <= 1 {
			delete(s.refs, k)
		} else {
			s.refs[k]--
		}
	}
}

// dropEntryLocked forgets an entry's in-memory key list and refcounts.
func (s *Store) dropEntryLocked(key string) {
	if old := s.keys[key]; old != nil {
		s.unrefLocked(old)
		delete(s.keys, key)
	}
}

// missingLocked reports the page slots whose objects the pool does not yet
// hold — one slot per distinct missing key, first occurrence wins.
func (s *Store) missingLocked(pageKeys []checksum.Sum) []int {
	var slots []int
	seen := map[checksum.Sum]struct{}{}
	for i, k := range pageKeys {
		if _, ok := s.objects[k]; ok {
			continue
		}
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		slots = append(slots, i)
	}
	return slots
}

// uniqueBytesLocked reports the bytes of entry pages backed by objects no
// other entry references.
func (s *Store) uniqueBytesLocked(key string) int64 {
	pageKeys := s.keys[key]
	if pageKeys == nil {
		return 0
	}
	own := map[checksum.Sum]int{}
	for _, k := range pageKeys {
		own[k]++
	}
	var n int64
	for k, c := range own {
		if s.refs[k] == c {
			n += vm.PageSize
		}
	}
	return n
}

// saveLocked runs one save transaction. Write order is: new segment (only
// the pages the pool is missing), page manifest, generation vector,
// fingerprint sidecar, then — the commit point — the store manifest. A
// crash before the manifest commit leaves the previous transaction's
// manifest in charge: recovery rolls back unrecorded segments and
// quarantines the entry if its pmf was already replaced.
//
// pre, when non-nil, carries a caller-supplied digest table (SaveWithSums)
// that substitutes for whichever digest pass matches its algorithm; the
// hash/hash-avoided metric events account each pass either way.
func (s *Store) saveLocked(source *vm.VM, state EntryState, pre *preSums) (dedup int, err error) {
	name := source.Name()
	key := sanitize(name)
	memBytes := source.MemBytes()
	var pageKeys []checksum.Sum
	if pre.covers(ObjectAlgorithm, source.NumPages()) {
		pageKeys = pre.sums
		s.deferMetricLocked(func(m Metrics) { m.HashAvoidedBytes(memBytes) })
	} else {
		pageKeys = pageSums(source, ObjectAlgorithm)
		s.deferMetricLocked(func(m Metrics) { m.HashBytes("save_keys", memBytes) })
	}
	newSlots := s.missingLocked(pageKeys)
	if s.quota > 0 {
		if newSlots, err = s.fitQuotaLocked(key, pageKeys, newSlots); err != nil {
			return 0, err
		}
	}
	dedup = len(pageKeys) - len(newSlots)

	segName := ""
	var segDigest string
	var segKeyList []checksum.Sum
	if len(newSlots) > 0 {
		segKeyList = make([]checksum.Sum, len(newSlots))
		for i, slot := range newSlots {
			segKeyList[i] = pageKeys[slot]
		}
		segName = segmentName(s.man.NextSeg + 1)
		segDigest, err = writeSegment(s.fs, filepath.Join(s.dir, segName), segKeyList, func(i int, buf []byte) {
			source.ReadPage(newSlots[i], buf)
		})
		if err != nil {
			return 0, err
		}
	}
	pmfDigest, err := writePMF(s.fs, s.pmfPath(name), pageKeys)
	if err != nil {
		return 0, err
	}
	if err := kill("pmf-written"); err != nil {
		return 0, err
	}
	if state == EntryComplete {
		gens := source.GenSnapshot()
		raw, err := json.Marshal(gens)
		if err != nil {
			return 0, fmt.Errorf("checkpoint: marshal generations: %w", err)
		}
		if err := atomicWriteFile(s.fs, s.genPath(name), raw, 0o644); err != nil {
			return 0, err
		}
	} else if err := s.fs.Remove(s.genPath(name)); err != nil && !os.IsNotExist(err) {
		return 0, fmt.Errorf("checkpoint: remove stale generations: %w", err)
	}
	if err := kill("gens-written"); err != nil {
		return 0, err
	}
	if !s.noSidecar {
		// Persist the fingerprint sidecar so the next Restore warm-starts
		// instead of rehashing every page. Anchored to the pmf digest: a
		// sidecar describing a different page manifest is stale. A
		// migration-recorded table under the sidecar algorithm (the common
		// SaveWithSums case) goes straight to the writer.
		var sums []checksum.Sum
		if pre.covers(SidecarAlgorithm, source.NumPages()) {
			sums = pre.sums
			s.deferMetricLocked(func(m Metrics) { m.HashAvoidedBytes(memBytes) })
		} else {
			sums = pageSums(source, SidecarAlgorithm)
			s.deferMetricLocked(func(m Metrics) { m.HashBytes("save_sidecar", memBytes) })
		}
		if err := writeSidecar(s.fs, s.sidecarPath(name), SidecarAlgorithm,
			source.MemBytes(), pmfDigest, len(sums), func(i int) checksum.Sum { return sums[i] }); err != nil {
			return 0, err
		}
	}
	if err := kill("sidecar-written"); err != nil {
		return 0, err
	}
	// A superseded legacy digest record must not outlive the entry it
	// described; the manifest carries the digest from here on.
	if err := s.fs.Remove(s.digestPath(name)); err != nil && !os.IsNotExist(err) {
		return 0, fmt.Errorf("checkpoint: remove legacy digest: %w", err)
	}
	// Transaction commit: the manifest is written LAST, so a crash at any
	// earlier point leaves recorded digests that no longer match the disk —
	// which the recovery scan quarantines instead of serving.
	if segName != "" {
		s.man.NextSeg++
		s.man.Segments[segName] = segmentRecord{Digest: segDigest, Pages: len(newSlots)}
	}
	s.man.Entries[key] = manifestEntry{State: state, Digest: pmfDigest, Size: source.MemBytes(), Pages: len(pageKeys)}
	if err := s.commitManifestLocked(); err != nil {
		return 0, err
	}
	// The transaction is durable: fold it into the in-memory pool view.
	if segName != "" {
		s.registerSegmentLocked(segName, segKeyList)
	}
	s.registerEntryLocked(key, pageKeys)
	s.dedupPages += int64(dedup)
	if dedup > 0 {
		n := dedup
		s.deferMetricLocked(func(m Metrics) { m.DedupPages(n) })
	}
	// A save over an un-adopted legacy entry supersedes its image files.
	for _, p := range []string{s.legacyImagePath(name), SidecarPath(s.legacyImagePath(name))} {
		s.cleanupLocked(p)
	}
	return dedup, nil
}

// cleanupLocked removes a best-effort file: one whose survival costs bytes
// but never correctness. A failure is counted (CleanupError metric) rather
// than silently dropped or escalated — a disk that cannot even unlink is
// news the operator wants.
func (s *Store) cleanupLocked(path string) {
	if err := s.fs.Remove(path); err != nil && !os.IsNotExist(err) {
		p := path
		s.deferMetricLocked(func(m Metrics) { m.CleanupError(p) })
	}
}

// SidecarAlgorithm is the checksum algorithm Store.Save records in the
// fingerprint sidecar. Restores requesting a different algorithm fall back
// to the rescan path and rewrite the sidecar under the requested one.
const SidecarAlgorithm = checksum.MD5

// SetNoSidecar disables the fingerprint sidecar for this store: Save skips
// writing it and Restore neither reads nor rewrites one. Escape hatch for
// debugging and for hosts where the extra ~0.4 % of logical size matters.
func (s *Store) SetNoSidecar(on bool) { s.noSidecar = on }

// NoSidecar reports whether the fingerprint sidecar is disabled.
func (s *Store) NoSidecar() bool { return s.noSidecar }

// resolveLocked maps page keys to open-file page references, opening each
// backing segment once. The returned files are owned by the caller (they
// become the Checkpoint's, closed on its Close). Because the fds are opened
// under the store lock, a concurrent GC deleting a compacted segment only
// unlinks the name — the handle keeps serving the old bytes.
func (s *Store) resolveLocked(pageKeys []checksum.Sum) (refs []pageRef, files []faultfs.File, err error) {
	open := map[string]faultfs.File{}
	defer func() {
		if err != nil {
			for _, f := range files {
				f.Close()
			}
		}
	}()
	refs = make([]pageRef, len(pageKeys))
	for i, k := range pageKeys {
		loc, ok := s.objects[k]
		if !ok {
			return nil, nil, fmt.Errorf("checkpoint: object %s missing from pool", k)
		}
		f := open[loc.seg]
		if f == nil {
			f, err = s.fs.Open(filepath.Join(s.dir, loc.seg))
			if err != nil {
				return nil, nil, fmt.Errorf("checkpoint: open segment: %w", err)
			}
			open[loc.seg] = f
			files = append(files, f)
		}
		refs[i] = pageRef{f: f, off: loc.off}
	}
	return refs, files, nil
}

// Restore opens the named VM's checkpoint, installing its pages into dst
// (when non-nil) and returning the indexed handle for the merge phase.
// Quarantined entries are refused: a checkpoint that failed its integrity
// check is never served.
func (s *Store) Restore(vmName string, alg checksum.Algorithm, dst *vm.VM) (*Checkpoint, error) {
	if !alg.Valid() {
		return nil, fmt.Errorf("checkpoint: invalid checksum algorithm")
	}
	s.mu.Lock()
	info, ok := s.entryLocked(vmName)
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("checkpoint: no checkpoint for %q: %w", vmName, os.ErrNotExist)
	}
	if info.State == EntryQuarantined {
		s.mu.Unlock()
		return nil, fmt.Errorf("checkpoint: %q is quarantined (%s); refusing to serve", vmName, info.Reason)
	}
	pageKeys := s.keys[sanitize(vmName)]
	refs, files, err := s.resolveLocked(pageKeys)
	noSidecar := s.noSidecar
	verify := s.verifyOnRestore
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if verify {
		if err := s.Verify(vmName); err != nil {
			closeAll(files)
			return nil, err
		}
	}
	cp, err := s.openEntry(vmName, alg, dst, info, refs, files, noSidecar)
	if err != nil {
		closeAll(files)
		return nil, err
	}
	s.touch(vmName)
	return cp, nil
}

func closeAll(files []faultfs.File) {
	for _, f := range files {
		f.Close()
	}
}

// openEntry builds a Checkpoint for one entry from resolved page refs,
// loading announce sums from the fingerprint sidecar when possible and
// rescanning (reading and hashing every page, then rewriting the sidecar)
// otherwise. dst, when non-nil, receives every page.
func (s *Store) openEntry(vmName string, alg checksum.Algorithm, dst *vm.VM, info EntryInfo, refs []pageRef, files []faultfs.File, noSidecar bool) (*Checkpoint, error) {
	pages := len(refs)
	if dst != nil && dst.NumPages() != pages {
		return nil, fmt.Errorf("checkpoint: image has %d pages, VM has %d", pages, dst.NumPages())
	}
	logical := int64(pages) * vm.PageSize
	status := SidecarDisabled
	var sums []checksum.Sum
	if !noSidecar {
		var serr error
		sums, serr = loadSidecar(s.fs, s.sidecarPath(vmName), alg, logical, info.Digest)
		switch {
		case serr == nil:
			status = SidecarHit
		case os.IsNotExist(serr):
			status = SidecarMiss
		default:
			status = SidecarFallback
		}
	}
	if sums == nil {
		// Rescan: read every page out of the pool and hash it under alg.
		sums = make([]checksum.Sum, pages)
		buf := make([]byte, vm.PageSize)
		for i, ref := range refs {
			if _, err := ref.f.ReadAt(buf, ref.off); err != nil {
				return nil, fmt.Errorf("checkpoint: read page %d: %w", i, err)
			}
			sums[i] = alg.Page(buf)
			if dst != nil {
				dst.InstallPage(i, buf)
			}
		}
		if !noSidecar {
			// Self-heal: persist the rebuilt sums so the next Restore under
			// this algorithm is warm. Best effort — a failed rewrite only
			// costs the next Restore a rescan.
			_ = writeSidecar(s.fs, s.sidecarPath(vmName), alg, logical, info.Digest,
				pages, func(i int) checksum.Sum { return sums[i] })
		}
	} else if dst != nil {
		// Warm hit with an install: a plain read of every page, no hashing.
		buf := make([]byte, vm.PageSize)
		for i, ref := range refs {
			if _, err := ref.f.ReadAt(buf, ref.off); err != nil {
				return nil, fmt.Errorf("checkpoint: read page %d: %w", i, err)
			}
			dst.InstallPage(i, buf)
		}
	}
	return newCheckpoint(alg, sums, refs, files, status), nil
}

// OpenUnion builds a Checkpoint over the union of every servable entry in
// the store — other VMs' checkpoints, older content, salvage partials. The
// destination of a fresh VM's migration (no checkpoint of its own) opens
// the union and announces it, so the source skips every page any resident
// checkpoint holds (the paper's §3.1 redundancy, pooled host-wide). The
// union has no page-frame geometry: PageAt reports no frames, so it can
// never serve as a delta base — matching the partial-checkpoint rules the
// wire protocol already carries.
//
// Returns the union checkpoint and the names of the entries it covers, or
// (nil, nil, nil) when the store holds nothing servable.
//
// The union is an optimization, so a single sick entry must not cost the
// migration its whole bootstrap: an entry whose segments cannot be opened
// or read is skipped — reported through the Metrics Degraded callback with
// stage "union-read" — and the union is built from the rest. Skipped
// entries stay in the store untouched (a transient read error is not
// evidence of corruption; Scrub and Verify decide quarantines).
func (s *Store) OpenUnion(alg checksum.Algorithm) (*Checkpoint, []string, error) {
	if !alg.Valid() {
		return nil, nil, fmt.Errorf("checkpoint: invalid checksum algorithm")
	}
	type unionEntry struct {
		info EntryInfo
		keys []checksum.Sum
		refs []pageRef
	}
	s.mu.Lock()
	var candidates []string
	for key, e := range s.man.Entries {
		if e.State != EntryQuarantined {
			candidates = append(candidates, key)
		}
	}
	sort.Strings(candidates)
	entries := make([]unionEntry, 0, len(candidates))
	var files []faultfs.File
	open := map[string]faultfs.File{}
	for _, key := range candidates {
		info, _ := s.entryLocked(key)
		pageKeys := s.keys[key]
		refs := make([]pageRef, len(pageKeys))
		var resolveErr error
		for i, k := range pageKeys {
			loc, ok := s.objects[k]
			if !ok {
				resolveErr = fmt.Errorf("checkpoint: object %s missing from pool", k)
				break
			}
			f := open[loc.seg]
			if f == nil {
				f, resolveErr = s.fs.Open(filepath.Join(s.dir, loc.seg))
				if resolveErr != nil {
					break
				}
				open[loc.seg] = f
				files = append(files, f)
			}
			refs[i] = pageRef{f: f, off: loc.off}
		}
		if resolveErr != nil {
			fault := faultfs.Label(resolveErr)
			s.deferMetricLocked(func(m Metrics) { m.Degraded("union-read", fault) })
			continue
		}
		entries = append(entries, unionEntry{info: info, keys: pageKeys, refs: refs})
	}
	noSidecar := s.noSidecar
	s.mu.Unlock()
	defer s.drainMetrics()
	if len(entries) == 0 {
		closeAll(files)
		return nil, nil, nil
	}
	cp := &Checkpoint{
		alg:     alg,
		files:   files,
		sums:    checksum.NewSet(0),
		sidecar: SidecarHit,
	}
	var names []string
	buf := make([]byte, vm.PageSize)
	for _, ue := range entries {
		logical := int64(len(ue.keys)) * vm.PageSize
		var sums []checksum.Sum
		if !noSidecar {
			if got, err := loadSidecar(s.fs, s.sidecarPath(ue.info.Name), alg, logical, ue.info.Digest); err == nil {
				sums = got
			}
		}
		if sums == nil {
			// Rescan this entry's pages; no sidecar self-heal here — the
			// union is read-mostly and must not race a concurrent Save on
			// the entry's own files. A read error skips the entry: nothing
			// of it has been folded into the union yet.
			cp.sidecar = SidecarMiss
			sums = make([]checksum.Sum, len(ue.refs))
			readErr := error(nil)
			for i, ref := range ue.refs {
				if _, err := ref.f.ReadAt(buf, ref.off); err != nil {
					readErr = err
					break
				}
				sums[i] = alg.Page(buf)
			}
			if readErr != nil {
				fault := faultfs.Label(readErr)
				s.mu.Lock()
				s.deferMetricLocked(func(m Metrics) { m.Degraded("union-read", fault) })
				s.mu.Unlock()
				continue
			}
		}
		names = append(names, ue.info.Name)
		for i, sum := range sums {
			if cp.sums.Contains(sum) {
				continue
			}
			cp.sums.Add(sum)
			cp.index.add(sum, ue.refs[i])
		}
	}
	if len(names) == 0 {
		closeAll(files)
		return nil, nil, nil
	}
	cp.index.sort()
	return cp, names, nil
}

// Generations loads the Miyakodori generation vector stored with the
// checkpoint, or ok=false if none exists.
func (s *Store) Generations(vmName string) (dirtytrack.GenVector, bool, error) {
	raw, err := s.fs.ReadFile(s.genPath(vmName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: read generations: %w", err)
	}
	var gens dirtytrack.GenVector
	if err := json.Unmarshal(raw, &gens); err != nil {
		return nil, false, fmt.Errorf("checkpoint: parse generations: %w", err)
	}
	return gens, true, nil
}

// Remove deletes the named VM's entry — page manifest, sidecars and
// manifest record — and releases its object references. The only way out
// of quarantine. Object payloads stay pooled until a GC pass collects the
// segments nothing references anymore.
func (s *Store) Remove(vmName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.removeLocked(vmName)
}

func (s *Store) removeLocked(vmName string) error {
	key := sanitize(vmName)
	e, recorded := s.man.Entries[key]
	paths := []string{s.pmfPath(vmName), s.sidecarPath(vmName), s.genPath(vmName), s.digestPath(vmName)}
	if e.LegacyImage {
		img := s.legacyImagePath(vmName)
		paths = append(paths, img, SidecarPath(img))
	}
	for _, p := range paths {
		if err := s.fs.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("checkpoint: remove %s: %w", p, err)
		}
	}
	s.dropEntryLocked(key)
	if recorded {
		delete(s.man.Entries, key)
		return s.commitManifestLocked()
	}
	return nil
}

// Quarantine marks the named VM's entry as quarantined with the given
// reason: the store keeps its files for forensics but refuses to serve it
// (Restore errors, OpenUnion and announcements exclude it) until Remove
// clears the record. The degradation ladder calls this when a recycled
// page read fails mid-merge — the entry's bytes can no longer be trusted
// to be readable, and excluding it lets the retry converge over the wire.
// Quarantining an already-quarantined entry updates nothing; a missing
// entry is not an error (the caller often cannot tell a union bootstrap
// from an own-entry one).
func (s *Store) Quarantine(vmName, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := sanitize(vmName)
	e, ok := s.man.Entries[key]
	if !ok || e.State == EntryQuarantined {
		return nil
	}
	e.State = EntryQuarantined
	e.Reason = reason
	s.man.Entries[key] = e
	return s.commitManifestLocked()
}

// List reports the VM names with store entries, whatever their state,
// sorted. Use Entries for states and Has for serveability.
func (s *Store) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.listLocked()
}

func (s *Store) listLocked() ([]string, error) {
	names := make([]string, 0, len(s.man.Entries))
	for key := range s.man.Entries {
		names = append(names, key)
	}
	sort.Strings(names)
	return names, nil
}
