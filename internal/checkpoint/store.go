package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"vecycle/internal/checksum"
	"vecycle/internal/dirtytrack"
	"vecycle/internal/vm"
)

// Store manages the checkpoints a host keeps for the VMs that have visited
// it. The paper's premise (via Birke et al.) is that a VM revisits a small
// set of hosts — often just two — so "storing a checkpoint at each visited
// server" is cheap and pays for itself on the next incoming migration.
//
// Alongside each image the store keeps a Miyakodori generation-vector
// sidecar, so the dirty-tracking baseline can be driven from the same
// stored state.
//
// The store is crash-consistent: every file reaches its name via
// tmp+fsync+rename, a versioned manifest (committed last, atomically)
// records each entry's state and image digest, and NewStore replays the
// recorded digests against the disk, quarantining any entry a crash left
// torn. Entries are complete (a full checkpoint), partial (a salvage
// checkpoint persisted by an interrupted incoming migration, served for
// announce-driven resume only), or quarantined (never served).
type Store struct {
	dir             string
	mu              sync.Mutex
	man             manifestFile
	quota           int64
	verifyOnRestore bool
	noSidecar       bool
}

// NewStore opens (creating if needed) a checkpoint store rooted at dir and
// runs the crash-recovery scan before returning.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store: %w", err)
	}
	s := &Store{dir: dir}
	if err := s.loadManifestLocked(); err != nil {
		return nil, err
	}
	if _, err := s.recoverLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// ImagePath reports where the image for the named VM lives.
func (s *Store) ImagePath(vmName string) string {
	return filepath.Join(s.dir, sanitize(vmName)+".img")
}

func (s *Store) genPath(vmName string) string {
	return filepath.Join(s.dir, sanitize(vmName)+".gens.json")
}

// sanitize keeps VM names from escaping the store directory.
func sanitize(name string) string {
	r := strings.NewReplacer("/", "_", "\\", "_", "..", "_", string(os.PathSeparator), "_")
	out := r.Replace(name)
	if out == "" {
		out = "_"
	}
	return out
}

// Has reports whether a servable checkpoint — complete or partial, not
// quarantined — exists for the named VM.
func (s *Store) Has(vmName string) bool {
	info, ok := s.Entry(vmName)
	return ok && info.State != EntryQuarantined
}

// Save checkpoints the VM's memory (and its generation vector) on this
// host, replacing any previous checkpoint of the same VM — including a
// salvage checkpoint, which a completed migration supersedes. When a quota
// is set, least-recently-used checkpoints are evicted first to make room.
func (s *Store) Save(source *vm.VM) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveLocked(source, EntryComplete)
}

// SaveSalvage persists the VM's memory as a salvage checkpoint: a partial
// entry holding whatever pages an interrupted incoming migration had
// installed, with its own digest and fingerprint sidecar. The next
// incoming attempt announces its page sums like any checkpoint, so the
// source resends only what is missing. No generation vector is written —
// a partial image is not a coherent guest state — and any stale one from
// a previous complete checkpoint is removed.
func (s *Store) SaveSalvage(source *vm.VM) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveLocked(source, EntryPartial)
}

func (s *Store) saveLocked(source *vm.VM, state EntryState) error {
	if s.quota > 0 {
		// The VM's own previous image (about to be replaced) does not
		// count against the incoming size.
		incoming := source.MemBytes()
		if st, err := os.Stat(s.ImagePath(source.Name())); err == nil {
			incoming -= st.Size()
		}
		if incoming < 0 {
			incoming = 0
		}
		if err := s.enforceQuotaLocked(incoming); err != nil {
			return err
		}
	}
	digest, err := writeImage(s.ImagePath(source.Name()), source)
	if err != nil {
		return err
	}
	if state == EntryComplete {
		gens := source.GenSnapshot()
		raw, err := json.Marshal(gens)
		if err != nil {
			return fmt.Errorf("checkpoint: marshal generations: %w", err)
		}
		if err := atomicWriteFile(s.genPath(source.Name()), raw, 0o644); err != nil {
			return err
		}
	} else if err := os.Remove(s.genPath(source.Name())); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: remove stale generations: %w", err)
	}
	if err := kill("gens-written"); err != nil {
		return err
	}
	if !s.noSidecar {
		// Persist the fingerprint sidecar so the next Restore warm-starts
		// instead of rehashing the image. Hashing fans out across cores,
		// same as the migration engine's checksum collection.
		sums := pageSums(source, SidecarAlgorithm)
		if err := writeSidecar(SidecarPath(s.ImagePath(source.Name())), SidecarAlgorithm,
			source.MemBytes(), digest, len(sums), func(i int) checksum.Sum { return sums[i] }); err != nil {
			return err
		}
	}
	if err := kill("sidecar-written"); err != nil {
		return err
	}
	// A superseded legacy digest record must not outlive the image it
	// described; the manifest carries the digest from here on.
	if err := os.Remove(s.digestPath(source.Name())); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: remove legacy digest: %w", err)
	}
	// Transaction commit: the manifest is written LAST, so a crash at any
	// earlier point leaves a recorded digest that no longer matches the
	// disk — which the recovery scan quarantines instead of serving.
	s.man.Entries[sanitize(source.Name())] = manifestEntry{
		State: state, Digest: digest, Size: source.MemBytes(),
	}
	return s.commitManifestLocked()
}

// SidecarAlgorithm is the checksum algorithm Store.Save records in the
// fingerprint sidecar. Restores requesting a different algorithm fall back
// to the rescan path and rewrite the sidecar under the requested one.
const SidecarAlgorithm = checksum.MD5

// SetNoSidecar disables the fingerprint sidecar for this store: Save skips
// writing it and Restore neither reads nor rewrites one. Escape hatch for
// debugging and for hosts where the extra ~0.4 % of image size matters.
func (s *Store) SetNoSidecar(on bool) { s.noSidecar = on }

// NoSidecar reports whether the fingerprint sidecar is disabled.
func (s *Store) NoSidecar() bool { return s.noSidecar }

// Restore opens the named VM's checkpoint, installing its blocks into dst
// (when non-nil) and returning the indexed handle for the merge phase.
// Quarantined entries are refused: a checkpoint that failed its integrity
// check is never served.
func (s *Store) Restore(vmName string, alg checksum.Algorithm, dst *vm.VM) (*Checkpoint, error) {
	s.mu.Lock()
	if info, ok := s.entryLocked(vmName); ok && info.State == EntryQuarantined {
		s.mu.Unlock()
		return nil, fmt.Errorf("checkpoint: %q is quarantined (%s); refusing to serve", vmName, info.Reason)
	}
	digest := s.readDigestLocked(vmName)
	verify := s.verifyOnRestore
	noSidecar := s.noSidecar
	s.mu.Unlock()
	if verify {
		if err := s.Verify(vmName); err != nil {
			return nil, err
		}
	}
	cfg := OpenConfig{NoSidecar: noSidecar}
	if !noSidecar {
		// Pin the sidecar to the image the integrity record describes: a
		// string compare at load time replaces a full rehash.
		cfg.ExpectedDigest = digest
	}
	cp, err := OpenWith(s.ImagePath(vmName), alg, dst, cfg)
	if err == nil {
		s.touch(vmName)
	}
	return cp, err
}

// Generations loads the Miyakodori generation vector stored with the
// checkpoint, or ok=false if none exists.
func (s *Store) Generations(vmName string) (dirtytrack.GenVector, bool, error) {
	raw, err := os.ReadFile(s.genPath(vmName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: read generations: %w", err)
	}
	var gens dirtytrack.GenVector
	if err := json.Unmarshal(raw, &gens); err != nil {
		return nil, false, fmt.Errorf("checkpoint: parse generations: %w", err)
	}
	return gens, true, nil
}

// Remove deletes the named VM's checkpoint and sidecars, if present — the
// only way out of quarantine. The image goes first: a concurrent Restore
// that wins the race on the fingerprint sidecar alone only pays a rescan
// fallback, never reads sums for a different image.
func (s *Store) Remove(vmName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.removeLocked(vmName)
}

func (s *Store) removeLocked(vmName string) error {
	for _, p := range []string{s.ImagePath(vmName), SidecarPath(s.ImagePath(vmName)), s.genPath(vmName), s.digestPath(vmName)} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("checkpoint: remove %s: %w", p, err)
		}
	}
	if _, ok := s.man.Entries[sanitize(vmName)]; ok {
		delete(s.man.Entries, sanitize(vmName))
		return s.commitManifestLocked()
	}
	return nil
}

// List reports the VM names with stored checkpoint images, whatever their
// state. Use Entries for states and Has for serveability.
func (s *Store) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.listLocked()
}

func (s *Store) listLocked() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".img"); ok {
			names = append(names, n)
		}
	}
	return names, nil
}
