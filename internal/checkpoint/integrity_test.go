package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"vecycle/internal/checksum"
)

// tamperObject flips bytes inside the stored payload of the named entry's
// page `slot`, behind the store's back.
func tamperObject(t *testing.T, s *Store, name string, slot int) {
	t.Helper()
	s.mu.Lock()
	loc := s.objects[s.keys[sanitize(name)][slot]]
	s.mu.Unlock()
	f, err := os.OpenFile(filepath.Join(s.dir, loc.seg), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte{0xde, 0xad}, loc.off+100); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCleanImage(t *testing.T) {
	s := quotaStore(t)
	saveVM(t, s, "a", 4)
	if err := s.Verify("a"); err != nil {
		t.Errorf("clean checkpoint failed verification: %v", err)
	}
}

func TestVerifyDetectsBitRot(t *testing.T) {
	s := quotaStore(t)
	saveVM(t, s, "a", 4)
	tamperObject(t, s, "a", 2)
	if err := s.Verify("a"); err == nil {
		t.Error("bit rot not detected")
	}
}

func TestVerifyAbsentEntryTrivial(t *testing.T) {
	s := quotaStore(t)
	if err := s.Verify("never-saved"); err != nil {
		t.Errorf("absent entry should verify trivially: %v", err)
	}
}

func TestVerifyOnRestore(t *testing.T) {
	s, err := NewStore(filepath.Join(t.TempDir(), "v"))
	if err != nil {
		t.Fatal(err)
	}
	v := filledVM(t, "a", 4, 1)
	if err := s.Save(v); err != nil {
		t.Fatal(err)
	}
	s.SetVerifyOnRestore(true)

	// Clean restore succeeds.
	cp, err := s.Restore("a", checksum.MD5, nil)
	if err != nil {
		t.Fatalf("clean restore: %v", err)
	}
	cp.Close()

	// Corrupt a stored page: restore must now fail before any data is used.
	tamperObject(t, s, "a", 1)
	if _, err := s.Restore("a", checksum.MD5, nil); err == nil {
		t.Error("corrupt checkpoint restored under VerifyOnRestore")
	}

	// Without the knob the (page-aligned) corruption is invisible: the warm
	// sidecar path installs pages without hashing them.
	s.SetVerifyOnRestore(false)
	cp, err = s.Restore("a", checksum.MD5, nil)
	if err != nil {
		t.Fatalf("unverified restore: %v", err)
	}
	cp.Close()
}

func TestRemoveDeletesDigest(t *testing.T) {
	s := quotaStore(t)
	saveVM(t, s, "a", 4)
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.digestPath("a")); !os.IsNotExist(err) {
		t.Error("digest sidecar survived Remove")
	}
}
