package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

func TestVerifyCleanImage(t *testing.T) {
	s := quotaStore(t)
	saveVM(t, s, "a", 4)
	if err := s.Verify("a"); err != nil {
		t.Errorf("clean image failed verification: %v", err)
	}
}

func TestVerifyDetectsBitRot(t *testing.T) {
	s := quotaStore(t)
	saveVM(t, s, "a", 4)
	// Flip one bit in the middle of the image.
	path := s.ImagePath("a")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify("a"); err == nil {
		t.Error("bit rot not detected")
	}
}

func TestVerifyMissingDigestTrivial(t *testing.T) {
	s := quotaStore(t)
	saveVM(t, s, "a", 4)
	// Forget the recorded digest (an entry adopted from a store predating
	// both the manifest and the legacy .sha256 record).
	s.mu.Lock()
	e := s.man.Entries["a"]
	e.Digest = ""
	s.man.Entries["a"] = e
	err := s.commitManifestLocked()
	s.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify("a"); err != nil {
		t.Errorf("missing digest should verify trivially: %v", err)
	}
}

func TestVerifyOnRestore(t *testing.T) {
	s, err := NewStore(filepath.Join(t.TempDir(), "v"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(vm.Config{Name: "a", MemBytes: 4 * testPage, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(v); err != nil {
		t.Fatal(err)
	}
	s.SetVerifyOnRestore(true)

	// Clean restore succeeds.
	cp, err := s.Restore("a", checksum.MD5, nil)
	if err != nil {
		t.Fatalf("clean restore: %v", err)
	}
	cp.Close()

	// Corrupt the image: restore must now fail before any data is used.
	raw, err := os.ReadFile(s.ImagePath("a"))
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(s.ImagePath("a"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Restore("a", checksum.MD5, nil); err == nil {
		t.Error("corrupt image restored under VerifyOnRestore")
	}

	// Without the knob the (page-aligned) corruption is invisible to Open.
	s.SetVerifyOnRestore(false)
	cp, err = s.Restore("a", checksum.MD5, nil)
	if err != nil {
		t.Fatalf("unverified restore: %v", err)
	}
	cp.Close()
}

func TestRemoveDeletesDigest(t *testing.T) {
	s := quotaStore(t)
	saveVM(t, s, "a", 4)
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.digestPath("a")); !os.IsNotExist(err) {
		t.Error("digest sidecar survived Remove")
	}
}
