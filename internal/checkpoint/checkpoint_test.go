package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

func newVM(t *testing.T, name string, pages int, seed int64) *vm.VM {
	t.Helper()
	v, err := vm.New(vm.Config{Name: name, MemBytes: int64(pages) * vm.PageSize, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func fillPattern(v *vm.VM) {
	buf := make([]byte, vm.PageSize)
	for i := 0; i < v.NumPages(); i++ {
		for j := range buf {
			buf[j] = byte(i + j)
		}
		v.WritePage(i, buf)
	}
}

func TestWriteAndOpenRestoresMemory(t *testing.T) {
	dir := t.TempDir()
	src := newVM(t, "vm0", 16, 1)
	fillPattern(src)
	path := filepath.Join(dir, "vm0.img")
	if err := Write(path, src); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 16, 2)
	cp, err := Open(path, checksum.MD5, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if !src.MemEqual(dst) {
		t.Errorf("restored memory differs at page %d", src.FirstDifference(dst))
	}
	if cp.Pages() != 16 {
		t.Errorf("Pages = %d", cp.Pages())
	}
	if cp.Algorithm() != checksum.MD5 {
		t.Errorf("Algorithm = %v", cp.Algorithm())
	}
}

func TestOpenWithoutVM(t *testing.T) {
	dir := t.TempDir()
	src := newVM(t, "vm0", 8, 1)
	fillPattern(src)
	path := filepath.Join(dir, "vm0.img")
	if err := Write(path, src); err != nil {
		t.Fatal(err)
	}
	cp, err := Open(path, checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if cp.SumSet().Len() == 0 {
		t.Error("no checksums indexed")
	}
}

func TestOpenSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	src := newVM(t, "vm0", 8, 1)
	path := filepath.Join(dir, "vm0.img")
	if err := Write(path, src); err != nil {
		t.Fatal(err)
	}
	wrong := newVM(t, "vm0", 16, 1)
	if _, err := Open(path, checksum.MD5, wrong); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestOpenTruncatedImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.img")
	if err := os.WriteFile(path, make([]byte, vm.PageSize+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, checksum.MD5, nil); err == nil {
		t.Error("non-page-aligned image accepted")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "none.img"), checksum.MD5, nil); err == nil {
		t.Error("missing image accepted")
	}
}

func TestOpenInvalidAlgorithm(t *testing.T) {
	if _, err := Open("whatever", checksum.Algorithm(0), nil); err == nil {
		t.Error("invalid algorithm accepted")
	}
}

func TestSumSetAnnouncesEveryBlock(t *testing.T) {
	dir := t.TempDir()
	src := newVM(t, "vm0", 8, 1)
	fillPattern(src)
	path := filepath.Join(dir, "vm0.img")
	if err := Write(path, src); err != nil {
		t.Fatal(err)
	}
	cp, err := Open(path, checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	for i := 0; i < src.NumPages(); i++ {
		if !cp.SumSet().Contains(src.PageSum(i, checksum.MD5)) {
			t.Errorf("page %d checksum missing from announcement", i)
		}
	}
}

func TestReadBlockByChecksum(t *testing.T) {
	dir := t.TempDir()
	src := newVM(t, "vm0", 8, 1)
	fillPattern(src)
	path := filepath.Join(dir, "vm0.img")
	if err := Write(path, src); err != nil {
		t.Fatal(err)
	}
	cp, err := Open(path, checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()

	want := make([]byte, vm.PageSize)
	src.ReadPage(5, want)
	data, ok, err := cp.ReadBlock(src.PageSum(5, checksum.MD5))
	if err != nil || !ok {
		t.Fatalf("ReadBlock: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(data, want) {
		t.Error("ReadBlock returned wrong content")
	}
	// Unknown checksum.
	if _, ok, err := cp.ReadBlock(checksum.MD5.Page([]byte("nope"))); ok || err != nil {
		t.Errorf("unknown checksum: ok=%v err=%v", ok, err)
	}
}

func TestIndexDuplicateBlocks(t *testing.T) {
	// Two pages with identical content: lookup must return a valid offset.
	dir := t.TempDir()
	src := newVM(t, "vm0", 4, 1)
	same := bytes.Repeat([]byte{0x42}, vm.PageSize)
	src.WritePage(1, same)
	src.WritePage(3, same)
	path := filepath.Join(dir, "vm0.img")
	if err := Write(path, src); err != nil {
		t.Fatal(err)
	}
	cp, err := Open(path, checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	data, ok, err := cp.ReadBlock(checksum.MD5.Page(same))
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(data, same) {
		t.Error("duplicate block content wrong")
	}
}

// Property: the index finds every inserted sum and nothing else.
func TestIndexLookupProperty(t *testing.T) {
	f := func(blocks []uint8, probe uint8) bool {
		var ix Index
		want := map[checksum.Sum]bool{}
		for i, b := range blocks {
			sum := checksum.MD5.Page([]byte{b})
			ix.add(sum, pageRef{off: int64(i) * vm.PageSize})
			want[sum] = true
		}
		ix.sort()
		for sum := range want {
			if _, ok := ix.Lookup(sum); !ok {
				return false
			}
		}
		probeSum := checksum.MD5.Page([]byte{probe, 0xFF})
		_, ok := ix.Lookup(probeSum)
		return ok == want[probeSum]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreSaveRestore(t *testing.T) {
	store, err := NewStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	src := newVM(t, "web-1", 8, 1)
	fillPattern(src)
	if store.Has("web-1") {
		t.Error("Has before Save")
	}
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	if !store.Has("web-1") {
		t.Error("Has after Save")
	}
	dst := newVM(t, "web-1", 8, 9)
	cp, err := store.Restore("web-1", checksum.MD5, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if !src.MemEqual(dst) {
		t.Error("store round trip lost data")
	}
}

func TestStoreGenerations(t *testing.T) {
	store, err := NewStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	src := newVM(t, "vm0", 4, 1)
	src.WritePage(2, bytes.Repeat([]byte{1}, vm.PageSize))
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	gens, ok, err := store.Generations("vm0")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(gens) != 4 || gens[2] != 1 || gens[0] != 0 {
		t.Errorf("generations = %v", gens)
	}
	if _, ok, err := store.Generations("other"); ok || err != nil {
		t.Errorf("missing sidecar: ok=%v err=%v", ok, err)
	}
}

func TestStoreRemoveAndList(t *testing.T) {
	store, err := NewStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	a := newVM(t, "a", 2, 1)
	b := newVM(t, "b", 2, 2)
	if err := store.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(b); err != nil {
		t.Fatal(err)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Errorf("List = %v", names)
	}
	if err := store.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if store.Has("a") || !store.Has("b") {
		t.Error("Remove removed wrong checkpoint")
	}
	if err := store.Remove("a"); err != nil {
		t.Errorf("double remove errored: %v", err)
	}
}

func TestStoreSanitizesNames(t *testing.T) {
	store, err := NewStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	evil := newVM(t, "../../etc/passwd", 2, 1)
	if err := store.Save(evil); err != nil {
		t.Fatal(err)
	}
	path := store.pmfPath("../../etc/passwd")
	rel, err := filepath.Rel(store.Dir(), path)
	if err != nil || len(rel) == 0 || rel[0] == '.' {
		t.Errorf("page-manifest path %q escapes store dir", path)
	}
}

func TestNewStoreEmptyDir(t *testing.T) {
	if _, err := NewStore(""); err == nil {
		t.Error("empty dir accepted")
	}
}
