// Package checkpoint implements VeCycle's recycled VM checkpoints (§3.3),
// stored content addressed and host wide.
//
// The paper's mechanism: after an outgoing migration the source dumps the
// guest's memory to local disk; a later incoming migration re-reads it,
// computes one checksum per 4 KiB block, records each with its location in
// a sorted list, and answers checksums from the wire by binary search —
// reusing local bytes instead of network ones. This package keeps that
// merge-loop contract (Index, Checkpoint.ReadBlock) and adds the layers the
// paper's evaluation assumes but does not spell out:
//
//   - object pool (object.go): every distinct page is persisted once per
//     host in append-only segment files, keyed by a collision-resistant
//     checksum — the paper's §3.1 content redundancy, pooled across VMs,
//     generations, and salvage partials instead of duplicated per image;
//   - page manifests (pmf.go): a checkpoint entry is a page-ordered list of
//     object keys, so N near-identical guests cost the disk one copy of
//     their shared pages;
//   - store manifest (manifest.go) + recovery (recovery.go): the
//     crash-consistency layer — every mutation commits atomically via the
//     manifest, and startup replays recorded digests, quarantining torn
//     entries and rolling back uncommitted files;
//   - refcounts + GC (store.go, gc.go): dead objects become reclaimed bytes
//     by deleting and compacting segments, never by rewriting manifests;
//   - fingerprint sidecars (sidecar.go): persisted per-entry page sums that
//     let a warm Restore skip the O(RAM) rescan of §3.3;
//   - union bootstrap (Store.OpenUnion): a destination with no checkpoint
//     for the incoming VM announces the union of everything resident, so
//     even a first visit reuses any page some other guest already brought.
//
// The flat Write/Open pair still operates on single raw image files; the
// Store is the content-addressed layer above, and adopts such legacy images
// into the pool on first open.
package checkpoint

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"vecycle/internal/checksum"
	"vecycle/internal/faultfs"
	"vecycle/internal/vm"
)

// pageRef locates one page's payload: a byte offset in an open backing file
// (a flat image or a pool segment). The file is held behind the faultfs
// seam; outside chaos tests it is a bare *os.File, so the indirection costs
// one interface dispatch per ReadAt — a syscall-dominated call either way.
type pageRef struct {
	f   faultfs.File
	off int64
}

// indexEntry pairs a block checksum with the location of its payload.
type indexEntry struct {
	sum checksum.Sum
	ref pageRef
}

// Index maps block checksums to payload locations. It is the sorted list of
// §3.3, queried by binary search during the destination's merge loop.
type Index struct {
	entries []indexEntry
}

// add records a block. Called in page order during the sequential scan.
func (ix *Index) add(sum checksum.Sum, ref pageRef) {
	ix.entries = append(ix.entries, indexEntry{sum: sum, ref: ref})
}

// sort orders the entries for binary search, keeping the lowest offset for
// duplicate checksums (any copy of identical content works).
func (ix *Index) sort() {
	sort.Slice(ix.entries, func(i, j int) bool {
		c := bytes.Compare(ix.entries[i].sum[:], ix.entries[j].sum[:])
		if c != 0 {
			return c < 0
		}
		return ix.entries[i].ref.off < ix.entries[j].ref.off
	})
}

// Lookup reports the payload location of a block with the given checksum.
func (ix *Index) Lookup(sum checksum.Sum) (ref pageRef, ok bool) {
	i := sort.Search(len(ix.entries), func(i int) bool {
		return bytes.Compare(ix.entries[i].sum[:], sum[:]) >= 0
	})
	if i < len(ix.entries) && ix.entries[i].sum == sum {
		return ix.entries[i].ref, true
	}
	return pageRef{}, false
}

// Len reports the number of indexed blocks.
func (ix *Index) Len() int { return len(ix.entries) }

// Write dumps the VM's memory to path as a raw page-ordered image,
// streaming pages sequentially — the paper's checkpoint format, used
// directly by tooling and tests; the Store's save path pools pages instead.
func Write(path string, source *vm.VM) error {
	_, err := writeImage(path, source)
	return err
}

// writeImage streams the VM's memory to path and returns the hex SHA-256 of
// the written bytes, computed in the same pass. The image lands via
// tmp+fsync+rename+dir-fsync, so a crash mid-write leaves the previous
// image intact, never a torn one under the final name.
func writeImage(path string, source *vm.VM) (digest string, err error) {
	fsys := faultfs.OS
	tmp := path + tmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			if !killed(err) {
				fsys.Remove(tmp)
			}
		}
	}()
	h := sha256.New()
	bw := bufio.NewWriterSize(io.MultiWriter(f, h), 1<<20)
	buf := make([]byte, vm.PageSize)
	for i := 0; i < source.NumPages(); i++ {
		source.ReadPage(i, buf)
		if _, err = bw.Write(buf); err != nil {
			return "", fmt.Errorf("checkpoint: write page %d: %w", i, err)
		}
	}
	if err = bw.Flush(); err != nil {
		return "", fmt.Errorf("checkpoint: flush: %w", err)
	}
	if err = kill("image-written"); err != nil {
		return "", err
	}
	if err = f.Sync(); err != nil {
		return "", fmt.Errorf("checkpoint: sync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return "", fmt.Errorf("checkpoint: close %s: %w", tmp, err)
	}
	if err = kill("image-synced"); err != nil {
		return "", err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("checkpoint: rename %s: %w", tmp, err)
	}
	if err = kill("image-renamed"); err != nil {
		return "", err
	}
	if err = syncDir(fsys, filepath.Dir(path)); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Checkpoint is an opened checkpoint: the checksum→location index for the
// merge loop, the announcement sum set, and the page-frame geometry (for
// entries that have one — the union of a whole store does not). The backing
// files may be a single flat image or several shared pool segments; Close
// releases them all.
type Checkpoint struct {
	files   []faultfs.File
	alg     checksum.Algorithm
	index   Index
	sums    *checksum.Set
	frames  []pageRef // per-page-frame payloads; nil when the checkpoint has no frame geometry
	pages   int
	sidecar SidecarStatus
}

// newCheckpoint assembles a Checkpoint whose page i lives at refs[i] and
// hashes to sums[i]. The files are adopted (closed by Close).
func newCheckpoint(alg checksum.Algorithm, sums []checksum.Sum, refs []pageRef, files []faultfs.File, status SidecarStatus) *Checkpoint {
	cp := &Checkpoint{
		files:   files,
		alg:     alg,
		sums:    checksum.NewSet(len(sums)),
		frames:  refs,
		pages:   len(refs),
		sidecar: status,
	}
	cp.index.entries = make([]indexEntry, len(sums))
	for i, s := range sums {
		cp.index.entries[i] = indexEntry{sum: s, ref: refs[i]}
		cp.sums.Add(s)
	}
	cp.index.sort()
	return cp
}

// OpenConfig tunes how Open builds the checksum index.
type OpenConfig struct {
	// NoSidecar bypasses the fingerprint sidecar entirely: the index is
	// rebuilt by the full rescan and no sidecar is read or written.
	NoSidecar bool
	// ExpectedDigest, when non-empty, is the hex digest the sidecar must
	// record to be trusted (for flat images, the image's SHA-256). A sidecar
	// recording a different digest is stale and ignored, and the digest is
	// embedded in any sidecar rewrite.
	ExpectedDigest string
}

// Open scans the flat image at path sequentially, building the checksum
// index and the announcement set. If dst is non-nil each block is also
// installed into the corresponding page of dst — the destination's RAM
// bootstrap — in which case the image size must match the VM's memory
// exactly.
//
// When a valid fingerprint sidecar sits next to the image the scan is
// skipped: the index loads from the sidecar and the image is only read (a
// plain sequential copy, no hashing) when dst needs its pages installed.
func Open(path string, alg checksum.Algorithm, dst *vm.VM) (*Checkpoint, error) {
	return OpenWith(path, alg, dst, OpenConfig{})
}

// OpenWith is Open with explicit sidecar configuration.
func OpenWith(path string, alg checksum.Algorithm, dst *vm.VM, cfg OpenConfig) (*Checkpoint, error) {
	if !alg.Valid() {
		return nil, fmt.Errorf("checkpoint: invalid checksum algorithm")
	}
	f, err := faultfs.OS.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: stat: %w", err)
	}
	if st.Size()%vm.PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("checkpoint: image size %d not a multiple of the page size", st.Size())
	}
	pages := int(st.Size() / vm.PageSize)
	if dst != nil && dst.NumPages() != pages {
		f.Close()
		return nil, fmt.Errorf("checkpoint: image has %d pages, VM has %d", pages, dst.NumPages())
	}
	cp := &Checkpoint{
		files:   []faultfs.File{f},
		alg:     alg,
		sums:    checksum.NewSet(pages),
		pages:   pages,
		sidecar: SidecarDisabled,
	}
	if !cfg.NoSidecar {
		sums, serr := loadSidecar(faultfs.OS, SidecarPath(path), alg, st.Size(), cfg.ExpectedDigest)
		switch {
		case serr == nil:
			if err := cp.fromSums(f, sums, dst); err != nil {
				f.Close()
				return nil, err
			}
			cp.sidecar = SidecarHit
			cp.index.sort()
			return cp, nil
		case os.IsNotExist(serr):
			cp.sidecar = SidecarMiss
		default:
			cp.sidecar = SidecarFallback
		}
	}
	br := bufio.NewReaderSize(f, 1<<20)
	workers := runtime.GOMAXPROCS(0)
	if workers > pages/openChunkPages {
		workers = pages / openChunkPages
	}
	if workers < 2 {
		// Small image or single core: the sequential scan of §3.3.
		cp.index.entries = make([]indexEntry, 0, pages)
		buf := make([]byte, vm.PageSize)
		for i := 0; i < pages; i++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				f.Close()
				return nil, fmt.Errorf("checkpoint: read block %d: %w", i, err)
			}
			sum := alg.Page(buf)
			cp.index.add(sum, pageRef{f: f, off: int64(i) * vm.PageSize})
			cp.sums.Add(sum)
			if dst != nil {
				dst.InstallPage(i, buf)
			}
		}
	} else if err := openParallel(br, f, alg, dst, cp, pages, workers); err != nil {
		f.Close()
		return nil, err
	}
	if !cfg.NoSidecar {
		// Self-heal: persist the freshly rebuilt index so the next Open is
		// warm. Entries are still in page order here (sorting happens
		// below), so the entry list doubles as the page-ordered sum list.
		// Best effort — a failed rewrite only costs the next Open a rescan.
		entries := cp.index.entries
		_ = writeSidecar(faultfs.OS, SidecarPath(path), alg, st.Size(), cfg.ExpectedDigest,
			len(entries), func(i int) checksum.Sum { return entries[i].sum })
	}
	cp.frames = cp.frameRefs(f, pages)
	cp.index.sort()
	return cp, nil
}

// frameRefs builds the page-frame geometry of a flat image: frame i at byte
// offset i*PageSize of f.
func (c *Checkpoint) frameRefs(f faultfs.File, pages int) []pageRef {
	refs := make([]pageRef, pages)
	for i := range refs {
		refs[i] = pageRef{f: f, off: int64(i) * vm.PageSize}
	}
	return refs
}

// fromSums builds the index and announcement set from sidecar-loaded
// page-ordered sums, installing the image into dst when non-nil. The
// install is a plain sequential read — no hashing, the sums are already
// known.
func (c *Checkpoint) fromSums(f faultfs.File, sums []checksum.Sum, dst *vm.VM) error {
	entries := make([]indexEntry, len(sums))
	for i, s := range sums {
		entries[i] = indexEntry{sum: s, ref: pageRef{f: f, off: int64(i) * vm.PageSize}}
		c.sums.Add(s)
	}
	c.index.entries = entries
	c.frames = c.frameRefs(f, c.pages)
	if dst == nil {
		return nil
	}
	br := bufio.NewReaderSize(f, 1<<20)
	buf := make([]byte, vm.PageSize)
	for i := 0; i < c.pages; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("checkpoint: read block %d: %w", i, err)
		}
		dst.InstallPage(i, buf)
	}
	return nil
}

// openChunkPages is the work unit of the parallel index build: 2 MiB of
// image per dispatch keeps channel overhead negligible.
const openChunkPages = 512

// openParallel fans the per-block checksum (and the optional RAM install)
// out across `workers` goroutines while the file itself is still read
// strictly sequentially — preserving the paper's "optimal use of the disk's
// available I/O bandwidth" while removing the hash from the critical path.
// Index entries are written positionally, so the result is identical to the
// sequential scan's.
func openParallel(br io.Reader, f faultfs.File, alg checksum.Algorithm, dst *vm.VM, cp *Checkpoint, pages, workers int) error {
	entries := make([]indexEntry, pages)
	type chunk struct {
		start int
		buf   []byte
	}
	free := make(chan []byte, workers+2)
	for i := 0; i < workers+2; i++ {
		free <- make([]byte, openChunkPages*vm.PageSize)
	}
	work := make(chan chunk)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				n := len(c.buf) / vm.PageSize
				for i := 0; i < n; i++ {
					page := c.start + i
					block := c.buf[i*vm.PageSize : (i+1)*vm.PageSize]
					entries[page] = indexEntry{sum: alg.Page(block), ref: pageRef{f: f, off: int64(page) * vm.PageSize}}
					if dst != nil {
						dst.InstallPage(page, block)
					}
				}
				free <- c.buf
			}
		}()
	}
	var readErr error
	for off := 0; off < pages; off += openChunkPages {
		n := openChunkPages
		if off+n > pages {
			n = pages - off
		}
		buf := (<-free)[:n*vm.PageSize]
		if _, err := io.ReadFull(br, buf); err != nil {
			readErr = fmt.Errorf("checkpoint: read block %d: %w", off, err)
			break
		}
		work <- chunk{start: off, buf: buf}
	}
	close(work)
	wg.Wait()
	if readErr != nil {
		return readErr
	}
	cp.index.entries = entries
	for i := range entries {
		cp.sums.Add(entries[i].sum)
	}
	return nil
}

// Pages reports the number of page frames the checkpoint describes — zero
// for a union checkpoint, which has content but no frame geometry.
func (c *Checkpoint) Pages() int { return c.pages }

// Sidecar reports how this open interacted with the fingerprint sidecar:
// loaded from it (hit), rebuilt because none existed (miss), rebuilt because
// it failed validation (fallback), or bypassed (disabled).
func (c *Checkpoint) Sidecar() SidecarStatus { return c.sidecar }

// Algorithm reports the checksum algorithm the index was built with.
func (c *Checkpoint) Algorithm() checksum.Algorithm { return c.alg }

// SumSet returns the set of block checksums present in the checkpoint — the
// content of the destination's hash announcement. The caller must not
// mutate it.
func (c *Checkpoint) SumSet() *checksum.Set { return c.sums }

// blockPool recycles ReadBlock buffers: the destination merge loop resolves
// one block per reused-from-disk page, and a per-call 4 KiB allocation is
// pure GC pressure on that hot path. Buffers return via Release.
var blockPool = sync.Pool{New: func() interface{} {
	return make([]byte, vm.PageSize)
}}

// ReadBlock returns the content of a block with the given checksum, or
// ok=false if no such block exists. This is the lseek+read of Listing 1,
// executed when an incoming checksum does not match the page frame's
// current content. ReadBlock is safe for concurrent use (reads go through
// ReadAt). The returned buffer may be recycled by passing it to Release
// once its content has been consumed.
func (c *Checkpoint) ReadBlock(sum checksum.Sum) (data []byte, ok bool, err error) {
	ref, ok := c.index.Lookup(sum)
	if !ok {
		return nil, false, nil
	}
	buf := blockPool.Get().([]byte)
	if _, err := ref.f.ReadAt(buf, ref.off); err != nil {
		blockPool.Put(buf) //nolint:staticcheck // SA6002: 4 KiB slice, header alloc is fine
		return nil, true, fmt.Errorf("checkpoint: read block at %d: %w", ref.off, err)
	}
	return buf, true, nil
}

// Release returns a buffer obtained from ReadBlock to the internal pool.
// The caller must not touch data afterwards. Releasing is optional — an
// unreleased buffer is simply garbage-collected.
func (c *Checkpoint) Release(data []byte) {
	if cap(data) < vm.PageSize {
		return
	}
	blockPool.Put(data[:vm.PageSize]) //nolint:staticcheck // SA6002
}

// PageAt returns the checkpoint's content for page frame i — the content
// the destination's RAM holds right after its checkpoint bootstrap. The
// source of a delta-encoded migration reads its own mirror of the
// destination's checkpoint through this method. ok is false when the frame
// is outside the image, or when the checkpoint has no frame geometry at all
// (a union bootstrap — which is exactly why a union is never a delta base).
func (c *Checkpoint) PageAt(frame int) (data []byte, ok bool, err error) {
	if frame < 0 || frame >= len(c.frames) {
		return nil, false, nil
	}
	ref := c.frames[frame]
	buf := make([]byte, vm.PageSize)
	if _, err := ref.f.ReadAt(buf, ref.off); err != nil {
		return nil, true, fmt.Errorf("checkpoint: read frame %d: %w", frame, err)
	}
	return buf, true, nil
}

// Close releases the underlying files.
func (c *Checkpoint) Close() error {
	var first error
	for _, f := range c.files {
		if err := f.Close(); err != nil && first == nil {
			first = fmt.Errorf("checkpoint: close: %w", err)
		}
	}
	return first
}
