package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// Garbage collection over the object pool. Save only ever appends segments;
// Remove (and quota eviction, and re-saves that change content) merely drop
// references. GC is the pass that turns dead references into reclaimed
// bytes: segments no live entry references are deleted outright, and
// segments more than half dead are compacted — their live payloads
// rewritten into a fresh segment, their file deleted. Page manifests never
// change during GC (they reference objects by key, not by location), so a
// compaction is invisible to entries and to concurrently open Checkpoints,
// which hold file handles that outlive the unlink.
//
// GC follows the same transaction discipline as Save: new (compacted)
// segments are written first, the manifest commit flips the store to the
// new layout atomically, and only then are dead files unlinked. A crash
// anywhere in between leaves either the old layout (plus unrecorded files
// recovery rolls back) or the new one (plus recorded-but-undeleted files a
// later GC re-collects).

// compactDeadFraction is the occupancy threshold for rewriting a segment:
// a segment is compacted when at least half of its pages are dead. Below
// that, the reclaimed bytes are not worth the rewrite I/O.
const compactDeadFraction = 0.5

// GCReport summarizes one collection pass.
type GCReport struct {
	// SegmentsDeleted counts segment files removed because nothing live
	// referenced any of their pages.
	SegmentsDeleted int
	// SegmentsCompacted counts segments rewritten to shed dead pages.
	SegmentsCompacted int
	// PagesReclaimed counts dead page payloads whose bytes were freed.
	PagesReclaimed int
	// BytesReclaimed is the physical payload bytes freed by this pass.
	BytesReclaimed int64
	// OrphanFiles counts unrecorded segment files (interrupted
	// transactions) deleted.
	OrphanFiles int
}

// Reclaimed reports whether the pass freed anything.
func (r GCReport) Reclaimed() bool {
	return r.SegmentsDeleted > 0 || r.SegmentsCompacted > 0 || r.OrphanFiles > 0
}

// GC runs a collection pass over the object pool and reports what it
// reclaimed. Safe to run at any time; concurrent Restores keep serving
// through their already-open file handles.
func (s *Store) GC() (GCReport, error) {
	s.mu.Lock()
	rep, err := s.gcLocked()
	s.mu.Unlock()
	s.drainMetrics()
	return rep, err
}

func (s *Store) gcLocked() (rep GCReport, err error) {
	defer func() {
		if err == nil {
			outcome := "clean"
			if rep.Reclaimed() {
				outcome = "reclaimed"
			}
			s.deferMetricLocked(func(m Metrics) { m.GCRun(outcome) })
		}
	}()

	// Orphan segment files: present on disk, absent from the manifest —
	// interrupted transactions (or files a crashed GC already unlinked from
	// the manifest but not the directory).
	dirents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return rep, fmt.Errorf("checkpoint: gc scan: %w", err)
	}
	for _, de := range dirents {
		name := de.Name()
		if !strings.HasSuffix(name, segmentSuffix) || !strings.HasPrefix(name, "seg-") {
			continue
		}
		if _, recorded := s.man.Segments[name]; recorded {
			continue
		}
		if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
			return rep, fmt.Errorf("checkpoint: gc orphan %s: %w", name, err)
		}
		rep.OrphanFiles++
	}

	// Liveness per segment: an object is live when some entry references it
	// AND this segment is its canonical location (compaction may leave a
	// key's payload duplicated across segments; only the indexed copy
	// counts).
	segNames := make([]string, 0, len(s.man.Segments))
	for name := range s.man.Segments {
		segNames = append(segNames, name)
	}
	sort.Strings(segNames)

	changed := false
	var deadFiles []string
	for _, segName := range segNames {
		keys := s.segKeys[segName]
		var liveSlots []int
		for i, k := range keys {
			if s.refs[k] > 0 && s.objects[k].seg == segName {
				liveSlots = append(liveSlots, i)
			}
		}
		dead := len(keys) - len(liveSlots)
		switch {
		case len(liveSlots) == 0:
			// Fully dead: drop the record now, unlink after the commit.
			for _, k := range keys {
				if s.objects[k].seg == segName {
					delete(s.objects, k)
				}
			}
			delete(s.segKeys, segName)
			delete(s.man.Segments, segName)
			deadFiles = append(deadFiles, segName)
			rep.SegmentsDeleted++
			rep.PagesReclaimed += dead
			rep.BytesReclaimed += int64(dead) * vm.PageSize
			changed = true
		case float64(dead) >= compactDeadFraction*float64(len(keys)):
			// Mostly dead: rewrite the live payloads into a new segment.
			newKeys := make([]checksum.Sum, len(liveSlots))
			for i, slot := range liveSlots {
				newKeys[i] = keys[slot]
			}
			src, err := s.fs.Open(filepath.Join(s.dir, segName))
			if err != nil {
				return rep, fmt.Errorf("checkpoint: gc open %s: %w", segName, err)
			}
			newName := segmentName(s.man.NextSeg + 1)
			var readErr error
			digest, err := writeSegment(s.fs, filepath.Join(s.dir, newName), newKeys, func(i int, buf []byte) {
				off := segPayloadOffset(len(keys), liveSlots[i])
				if _, rerr := src.ReadAt(buf, off); rerr != nil && readErr == nil {
					readErr = rerr
				}
			})
			src.Close()
			if err == nil && readErr != nil {
				err = fmt.Errorf("checkpoint: gc read %s: %w", segName, readErr)
			}
			if err != nil {
				return rep, err
			}
			s.man.NextSeg++
			s.man.Segments[newName] = segmentRecord{Digest: digest, Pages: len(newKeys)}
			delete(s.man.Segments, segName)
			// Drop every index entry canonical to the old segment — the dead
			// ones (refs == 0) vanish with the file; the live ones are
			// re-registered at their compacted location just below. Leaving a
			// dead key behind would let a later Save dedup new content
			// against a payload that no longer exists on disk.
			for _, k := range keys {
				if s.objects[k].seg == segName {
					delete(s.objects, k)
				}
			}
			// Re-point the pool index at the compacted copies.
			s.segKeys[newName] = newKeys
			delete(s.segKeys, segName)
			for i, k := range newKeys {
				s.objects[k] = objLoc{seg: newName, off: segPayloadOffset(len(newKeys), i)}
			}
			deadFiles = append(deadFiles, segName)
			rep.SegmentsCompacted++
			rep.PagesReclaimed += dead
			rep.BytesReclaimed += int64(dead) * vm.PageSize
			changed = true
		}
	}
	if changed {
		if err := s.commitManifestLocked(); err != nil {
			return rep, err
		}
	}
	// Unlink after the commit: a crash here leaves unrecorded files, which
	// the orphan sweep (above, and in recovery) re-collects.
	for _, name := range deadFiles {
		if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
			return rep, fmt.Errorf("checkpoint: gc unlink %s: %w", name, err)
		}
	}
	return rep, nil
}

// Stats is the store's dedup accounting.
type Stats struct {
	// Entries is the number of manifest entries, all states included.
	Entries int
	// Segments is the number of live segment files.
	Segments int
	// Objects is the number of distinct pages in the pool.
	Objects int
	// LogicalBytes is the sum of entry sizes: what the checkpoints would
	// occupy stored privately, one image per VM.
	LogicalBytes int64
	// PhysicalBytes is the payload bytes actually stored in segments (file
	// format overhead, page manifests and sidecars excluded — together
	// under half a percent of payload).
	PhysicalBytes int64
	// DedupPagesTotal is the cumulative count of pages Save deduplicated
	// against the pool instead of writing, since this store was opened.
	DedupPagesTotal int64
}

// DedupRatio reports LogicalBytes / PhysicalBytes — 1.0 means no sharing;
// the paper's cross-generation redundancy alone reaches ~1.3. Zero when the
// store is empty.
func (st Stats) DedupRatio() float64 {
	if st.PhysicalBytes == 0 {
		return 0
	}
	return float64(st.LogicalBytes) / float64(st.PhysicalBytes)
}

// Stats reports the store's current dedup accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Store) statsLocked() Stats {
	st := Stats{
		Entries:         len(s.man.Entries),
		Segments:        len(s.man.Segments),
		Objects:         len(s.objects),
		DedupPagesTotal: s.dedupPages,
	}
	for _, e := range s.man.Entries {
		st.LogicalBytes += e.Size
	}
	st.PhysicalBytes = s.physicalLocked()
	return st
}

// physicalLocked reports the payload bytes stored across all segments.
func (s *Store) physicalLocked() int64 {
	var n int64
	for _, rec := range s.man.Segments {
		n += int64(rec.Pages) * vm.PageSize
	}
	return n
}

// SegmentInfo describes one live segment file for ops tooling.
type SegmentInfo struct {
	// Name is the segment's file name within the store directory.
	Name string
	// Pages is the number of page payloads the segment holds.
	Pages int
	// LivePages is how many of them some entry still references.
	LivePages int
}

// Segments lists the store's live segment files, sorted by name.
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentInfo, 0, len(s.man.Segments))
	for name, rec := range s.man.Segments {
		live := 0
		for _, k := range s.segKeys[name] {
			if s.refs[k] > 0 && s.objects[k].seg == name {
				live++
			}
		}
		out = append(out, SegmentInfo{Name: name, Pages: rec.Pages, LivePages: live})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
