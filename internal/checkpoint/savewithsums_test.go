package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// vmSums digests every page of v under alg — the table a migration's
// hash-once lifecycle would have recorded for free.
func vmSums(t *testing.T, v *vm.VM, alg checksum.Algorithm) []checksum.Sum {
	t.Helper()
	sums := make([]checksum.Sum, v.NumPages())
	for i := range sums {
		sums[i] = v.PageSum(i, alg)
	}
	return sums
}

// metricsStore builds a store in its own directory with a fakeMetrics sink
// attached, returning both plus the directory.
func metricsStore(t *testing.T) (*Store, *fakeMetrics, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "s")
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := &fakeMetrics{store: s}
	s.SetMetrics(m)
	return s, m, dir
}

// TestSaveWithSumsMatchesSave is the ingest-equivalence contract: a save
// fed a migration-recorded MD5 table must produce a byte-identical
// fingerprint sidecar and an identically restorable entry, while skipping
// the sidecar digest pass entirely.
func TestSaveWithSumsMatchesSave(t *testing.T) {
	const pages = 64
	v := filledVM(t, "a", pages, 1)

	sPlain, mPlain, dirPlain := metricsStore(t)
	if err := sPlain.Save(v); err != nil {
		t.Fatal(err)
	}
	sPre, mPre, dirPre := metricsStore(t)
	if err := sPre.SaveWithSums(v, SidecarAlgorithm, vmSums(t, v, SidecarAlgorithm)); err != nil {
		t.Fatal(err)
	}

	// Same content, same layout: the sidecars must be byte-identical.
	plain, err := os.ReadFile(SidecarPath(filepath.Join(dirPlain, "a"+pmfSuffix)))
	if err != nil {
		t.Fatal(err)
	}
	pre, err := os.ReadFile(SidecarPath(filepath.Join(dirPre, "a"+pmfSuffix)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, pre) {
		t.Error("precomputed-sum save wrote a different sidecar than a rehashing save")
	}

	// Both entries restore bit exactly.
	for name, s := range map[string]*Store{"plain": sPlain, "withsums": sPre} {
		dst := newVM(t, "a", pages, 99)
		cp, err := s.Restore("a", checksum.MD5, dst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cp.Close()
		if !v.MemEqual(dst) {
			t.Errorf("%s: restore lost data at page %d", name, v.FirstDifference(dst))
		}
	}

	// Accounting: the plain save digested the image twice (keys + sidecar);
	// the precomputed save paid only the SHA-256 keying scan and recycled
	// the sidecar pass.
	mem := v.MemBytes()
	mPlain.mu.Lock()
	if mPlain.hashed["save_keys"] != mem || mPlain.hashed["save_sidecar"] != mem || mPlain.unhashed != 0 {
		t.Errorf("plain save accounting = %v avoided=%d, want both stages hashed", mPlain.hashed, mPlain.unhashed)
	}
	mPlain.mu.Unlock()
	mPre.mu.Lock()
	if mPre.hashed["save_keys"] != mem || mPre.hashed["save_sidecar"] != 0 || mPre.unhashed != mem {
		t.Errorf("withsums save accounting = %v avoided=%d, want sidecar pass recycled", mPre.hashed, mPre.unhashed)
	}
	mPre.mu.Unlock()
}

// TestSaveWithSumsObjectAlgorithm: a SHA-256 table substitutes for the
// content-keying scan instead, and dedup still works against entries keyed
// by the rehashing path.
func TestSaveWithSumsObjectAlgorithm(t *testing.T) {
	const pages = 8
	v := filledVM(t, "a", pages, 1)
	s, m, _ := metricsStore(t)
	if err := s.Save(v); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	// Re-save the unchanged VM under a precomputed key table: every page
	// must dedup against the first save, with zero key-scan hashing.
	if err := s.SaveWithSums(v, ObjectAlgorithm, vmSums(t, v, ObjectAlgorithm)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().PhysicalBytes - before.PhysicalBytes; got != 0 {
		t.Errorf("identical re-save grew the pool by %d bytes", got)
	}
	m.mu.Lock()
	if m.hashed["save_keys"] != v.MemBytes() || m.unhashed != v.MemBytes() {
		t.Errorf("accounting = %v avoided=%d, want first save's key scan hashed and second's recycled", m.hashed, m.unhashed)
	}
	m.mu.Unlock()
	dst := newVM(t, "a", pages, 99)
	cp, err := s.Restore("a", checksum.MD5, dst)
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	if !v.MemEqual(dst) {
		t.Error("restore after keyed re-save lost data")
	}
}

// TestSaveWithSumsFallback: a table that does not cover the image — wrong
// length or no valid algorithm — silently degrades to the rehashing path.
func TestSaveWithSumsFallback(t *testing.T) {
	const pages = 8
	v := filledVM(t, "a", pages, 1)
	cases := map[string]struct {
		alg  checksum.Algorithm
		sums []checksum.Sum
	}{
		"nil-table":   {SidecarAlgorithm, nil},
		"short-table": {SidecarAlgorithm, make([]checksum.Sum, pages-1)},
		"zero-alg":    {0, make([]checksum.Sum, pages)},
		"foreign-alg": {checksum.FNV, vmSums(t, v, checksum.FNV)},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			s, m, _ := metricsStore(t)
			if err := s.SaveWithSums(v, tc.alg, tc.sums); err != nil {
				t.Fatal(err)
			}
			mem := v.MemBytes()
			m.mu.Lock()
			if m.hashed["save_keys"] != mem || m.hashed["save_sidecar"] != mem || m.unhashed != 0 {
				t.Errorf("accounting = %v avoided=%d, want full fallback rehash", m.hashed, m.unhashed)
			}
			m.mu.Unlock()
			dst := newVM(t, "a", pages, 99)
			cp, err := s.Restore("a", checksum.MD5, dst)
			if err != nil {
				t.Fatal(err)
			}
			cp.Close()
			if !v.MemEqual(dst) {
				t.Error("fallback save lost data")
			}
		})
	}
}
