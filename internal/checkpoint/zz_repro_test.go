package checkpoint

import (
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// Repro: after a GC compaction, dead objects whose canonical location was the
// compacted segment remain in s.objects pointing at the deleted file. A later
// Save of the same content dedups against the vanished payload.
func TestReproCompactionStaleIndex(t *testing.T) {
	s := quotaStore(t)
	a := filledVM(t, "a", 8, 1)
	b := filledVM(t, "b", 8, 2)
	copyPages(t, a, b, 4) // b shares a's first 4 pages

	if err := s.Save(a); err != nil { // seg1: all 8 of a's pages
		t.Fatal(err)
	}
	if err := s.Save(b); err != nil { // seg2: b's 4 unique pages
		t.Fatal(err)
	}
	if err := s.Remove("a"); err != nil { // a's last 4 pages now dead in seg1
		t.Fatal(err)
	}
	rep, err := s.GC() // 4/8 dead -> compaction threshold hit
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gc: %+v", rep)

	// VM c carries the content of a's dead pages (a's pages 4..7).
	c := filledVM(t, "c", 4, 99)
	buf := make([]byte, vm.PageSize)
	for i := 0; i < 4; i++ {
		a.ReadPage(4+i, buf)
		c.WritePage(i, buf)
	}
	if err := s.Save(c); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "c", 4, 123)
	cp, err := s.Restore("c", checksum.MD5, dst)
	if err != nil {
		t.Fatalf("restore after compaction: %v", err)
	}
	cp.Close()
	if !c.MemEqual(dst) {
		t.Fatalf("restored content differs at page %d", c.FirstDifference(dst))
	}
}
