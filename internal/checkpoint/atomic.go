package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"vecycle/internal/faultfs"
)

// Crash-consistent file plumbing. Every durable artifact the store owns —
// image, fingerprint sidecar, generation vector, manifest — reaches its
// final name through the same discipline: write a temp file in the store
// directory, fsync it, rename it over the target, fsync the directory. A
// crash at any instant therefore leaves either the old file or the new
// one, never a torn hybrid; the only window that needs detection (a
// renamed image whose manifest entry still describes the previous bytes)
// is exactly what the startup recovery scan's digest check catches.

// tmpSuffix marks in-flight writes. The recovery scan deletes any leftover
// *.tmp file unconditionally: a temp file that survived to the next start
// is by definition an interrupted write whose transaction never committed.
const tmpSuffix = ".tmp"

// testHookKill, when non-nil, is consulted at named commit points inside
// the store's write paths. Returning a non-nil error aborts the write at
// that point, leaving the on-disk state exactly as a crash there would —
// error-path cleanups are suppressed for killed writes, so the kill-point
// matrix test drives the real recovery code through every window.
// Production code never sets it.
var testHookKill func(point string) error

// killedError marks a simulated crash injected by testHookKill; cleanup
// paths that would tidy a normal failure leave the disk untouched for it.
type killedError struct {
	point string
	err   error
}

func (e *killedError) Error() string {
	return fmt.Sprintf("checkpoint: simulated crash at %s: %v", e.point, e.err)
}

func (e *killedError) Unwrap() error { return e.err }

func killed(err error) bool {
	var k *killedError
	return errors.As(err, &k)
}

func kill(point string) error {
	if testHookKill != nil {
		if err := testHookKill(point); err != nil {
			return &killedError{point: point, err: err}
		}
	}
	return nil
}

// atomicWriteFile writes data to path via tmp+fsync+rename+dir-fsync,
// with every file operation routed through fsys so each is a fault site.
func atomicWriteFile(fsys faultfs.FS, path string, data []byte, perm os.FileMode) (err error) {
	tmp := path + tmpSuffix
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			fsys.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("checkpoint: write %s: %w", tmp, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmp, err)
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("checkpoint: rename %s: %w", tmp, err)
	}
	return syncDir(fsys, filepath.Dir(path))
}

// syncDir fsyncs a directory so a preceding rename is durable. Filesystems
// that refuse to sync directories (some CI tmpfs mounts) degrade silently:
// the rename itself is still atomic, only its durability is best-effort.
func syncDir(fsys faultfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir %s: %w", dir, err)
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
