package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// filledVM builds a VM with deterministic random content so different seeds
// yield fully distinct page sets (no accidental cross-entry dedup).
func filledVM(t *testing.T, name string, pages int, seed int64) *vm.VM {
	t.Helper()
	v, err := vm.New(vm.Config{Name: name, MemBytes: int64(pages) * testPage, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.FillRandom(1.0); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSaveSalvagePartialEntry(t *testing.T) {
	s := quotaStore(t)
	v := filledVM(t, "a", 4, 1)
	if err := s.SaveSalvage(v); err != nil {
		t.Fatal(err)
	}
	info, ok := s.Entry("a")
	if !ok || info.State != EntryPartial {
		t.Fatalf("Entry after SaveSalvage = %+v, %v; want partial", info, ok)
	}
	if !s.Has("a") {
		t.Error("partial entry should be servable")
	}
	if info.Digest == "" || !info.HasSidecar {
		t.Errorf("salvage entry missing digest or sidecar: %+v", info)
	}
	if _, ok, err := s.Generations("a"); err != nil || ok {
		t.Errorf("partial entry has generations (ok=%v, err=%v)", ok, err)
	}
	cp, err := s.Restore("a", checksum.MD5, nil)
	if err != nil {
		t.Fatalf("restore partial: %v", err)
	}
	if cp.Sidecar() != SidecarHit {
		t.Errorf("salvage restore sidecar = %v, want hit", cp.Sidecar())
	}
	cp.Close()

	// A completed migration supersedes the salvage entry.
	if err := s.Save(v); err != nil {
		t.Fatal(err)
	}
	info, _ = s.Entry("a")
	if info.State != EntryComplete {
		t.Errorf("state after Save = %v, want complete", info.State)
	}
	if _, ok, _ := s.Generations("a"); !ok {
		t.Error("complete entry lost its generations")
	}
}

func TestSaveRemovesStaleGenerationsOnSalvage(t *testing.T) {
	s := quotaStore(t)
	v := filledVM(t, "a", 4, 1)
	if err := s.Save(v); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSalvage(filledVM(t, "a", 4, 2)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Generations("a"); ok {
		t.Error("salvage save left the previous checkpoint's generations behind")
	}
}

// TestKillPointMatrix crashes a Save at every commit point and asserts the
// reopened store either serves the old content or quarantines — never
// serves torn state.
func TestKillPointMatrix(t *testing.T) {
	points := []struct {
		point string
		// wantOld: the recovered entry serves the pre-crash content.
		// wantNew: the transaction committed; the new content is served.
		// Neither: the entry must be quarantined and refuse to serve.
		wantOld bool
		wantNew bool
	}{
		{point: "image-written", wantOld: true},      // segment tmp written, not yet durable
		{point: "image-synced", wantOld: true},       // segment tmp durable, before rename
		{point: "image-renamed", wantOld: true},      // segment renamed but unrecorded: rolled back
		{point: "pmf-written"},                       // page manifest replaced, store manifest stale
		{point: "gens-written"},                      // satellite files written, manifest stale
		{point: "sidecar-written"},                   // all files new, manifest still stale
		{point: "manifest-committed", wantNew: true}, // transaction committed
	}
	for _, tc := range points {
		t.Run(tc.point, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "s")
			s, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			old := filledVM(t, "a", 4, 1)
			if err := s.Save(old); err != nil {
				t.Fatal(err)
			}
			oldInfo, ok := s.Entry("a")
			if !ok || oldInfo.Digest == "" {
				t.Fatalf("pre-crash entry = %+v, %v", oldInfo, ok)
			}

			boom := errors.New("simulated crash")
			testHookKill = func(p string) error {
				if p == tc.point {
					return boom
				}
				return nil
			}
			defer func() { testHookKill = nil }()
			err = s.Save(filledVM(t, "a", 4, 2))
			testHookKill = nil
			if tc.point == "manifest-committed" {
				// The kill fires after the commit: the error is reported but
				// the transaction is already durable.
				if err == nil {
					t.Fatal("kill hook did not fire")
				}
			} else if err == nil || !errors.Is(err, boom) {
				t.Fatalf("killed Save error = %v, want the simulated crash", err)
			}

			// "Reboot": a fresh store over the same directory runs recovery.
			s2, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			info, ok := s2.Entry("a")
			if !ok {
				t.Fatal("entry vanished after recovery")
			}
			switch {
			case tc.wantOld:
				if info.State != EntryComplete {
					t.Fatalf("state = %v (%s), want complete (old content)", info.State, info.Reason)
				}
				if info.Digest != oldInfo.Digest {
					t.Error("recovered entry is not the pre-crash checkpoint")
				}
				dst := newVM(t, "a", 4, 99)
				if cp, err := s2.Restore("a", checksum.MD5, dst); err != nil {
					t.Errorf("old checkpoint refused: %v", err)
				} else {
					cp.Close()
					if !old.MemEqual(dst) {
						t.Error("recovered content differs from the pre-crash save")
					}
				}
			case tc.wantNew:
				if info.State != EntryComplete {
					t.Fatalf("state = %v (%s), want complete (new content)", info.State, info.Reason)
				}
				if info.Digest == oldInfo.Digest {
					t.Error("committed transaction still serves the old digest")
				}
				if cp, err := s2.Restore("a", checksum.MD5, nil); err != nil {
					t.Errorf("committed checkpoint refused: %v", err)
				} else {
					cp.Close()
				}
			default:
				if info.State != EntryQuarantined {
					t.Fatalf("state = %v, want quarantined", info.State)
				}
				if s2.Has("a") {
					t.Error("Has serves a quarantined entry")
				}
				if _, err := s2.Restore("a", checksum.MD5, nil); err == nil {
					t.Error("Restore served a quarantined entry")
				}
			}
			// No interrupted-transaction temp files or unrecorded segments
			// survive recovery.
			dirents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			recorded := map[string]bool{}
			for _, seg := range s2.Segments() {
				recorded[seg.Name] = true
			}
			for _, de := range dirents {
				if filepath.Ext(de.Name()) == tmpSuffix {
					t.Errorf("orphan temp file survived recovery: %s", de.Name())
				}
				if filepath.Ext(de.Name()) == segmentSuffix && !recorded[de.Name()] {
					t.Errorf("unrecorded segment survived recovery: %s", de.Name())
				}
			}
		})
	}
}

func TestTornSegmentQuarantinedTornSidecarNot(t *testing.T) {
	// A torn segment must quarantine every entry whose pages it held; a torn
	// fingerprint sidecar must not — Restore validates sidecars
	// independently and falls back to the rescan, so tearing one can cost
	// time, never correctness.
	dir := filepath.Join(t.TempDir(), "s")
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct seeds: the two entries share no objects, so tearing one
	// entry's segment must not touch the other.
	if err := s.Save(filledVM(t, "seg-torn", 4, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(filledVM(t, "idx-torn", 4, 4)); err != nil {
		t.Fatal(err)
	}
	// Tear the segment holding seg-torn's pages mid-payload.
	loc := s.objects[s.keys["seg-torn"][2]]
	f, err := os.OpenFile(filepath.Join(dir, loc.seg), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, loc.off+17); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// A torn sidecar is a truncation: the write stopped partway.
	if err := os.Truncate(s.sidecarPath("idx-torn"), sidecarHeaderSize+5); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := s2.Entry("seg-torn"); info.State != EntryQuarantined {
		t.Errorf("torn segment entry state = %v, want quarantined", info.State)
	}
	if _, err := s2.Restore("seg-torn", checksum.MD5, nil); err == nil {
		t.Error("entry with a torn segment served")
	}
	if info, _ := s2.Entry("idx-torn"); info.State != EntryComplete {
		t.Errorf("torn sidecar state = %v (%s), want complete", info.State, info.Reason)
	}
	cp, err := s2.Restore("idx-torn", checksum.MD5, nil)
	if err != nil {
		t.Fatalf("torn sidecar must fall back, got %v", err)
	}
	if cp.Sidecar() != SidecarFallback {
		t.Errorf("sidecar status = %v, want fallback", cp.Sidecar())
	}
	cp.Close()
}

func TestRecoveryAdoptsLegacyImage(t *testing.T) {
	// An image written by a pre-CAS store (no manifest record, legacy
	// .sha256 digest file) is adopted into the object pool as a complete
	// entry; one that fails its recorded digest is quarantined untouched.
	dir := filepath.Join(t.TempDir(), "s")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	v := filledVM(t, "legacy", 4, 4)
	digest, err := writeImage(filepath.Join(dir, "legacy.img"), v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "legacy.img.sha256"), []byte(digest+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A second legacy image with bit rot under its recorded digest.
	if _, err := writeImage(filepath.Join(dir, "rotten.img"), filledVM(t, "rotten", 4, 5)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "rotten.img.sha256"), []byte(digest+"\n"), 0o644); err != nil {
		t.Fatal(err) // digest of the other image: guaranteed mismatch
	}

	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := s.Entry("legacy")
	if !ok || info.State != EntryComplete || info.Digest == "" {
		t.Errorf("legacy adoption = %+v, %v", info, ok)
	}
	// Adopted: the content round-trips out of the pool, and the .img file
	// is retired.
	dst := newVM(t, "legacy", 4, 99)
	cp, err := s.Restore("legacy", checksum.MD5, dst)
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	if !v.MemEqual(dst) {
		t.Error("adopted legacy content differs from the original image")
	}
	if _, err := os.Stat(filepath.Join(dir, "legacy.img")); !os.IsNotExist(err) {
		t.Error("adopted legacy image file not retired")
	}
	// Quarantined: untouched for forensics.
	if info, _ := s.Entry("rotten"); info.State != EntryQuarantined {
		t.Errorf("rotten legacy image state = %v, want quarantined", info.State)
	}
	if _, err := os.Stat(filepath.Join(dir, "rotten.img")); err != nil {
		t.Error("quarantined legacy image file removed")
	}
}

func TestScrubReportAndManifestDrop(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(filledVM(t, "gone", 4, 6)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(filledVM(t, "kept", 4, 7)); err != nil {
		t.Fatal(err)
	}
	// Delete one page manifest behind the store's back and drop in an
	// orphan temp file.
	if err := os.Remove(s.pmfPath("gone")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.img.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dropped) != 1 || rep.Dropped[0] != "gone" {
		t.Errorf("Dropped = %v", rep.Dropped)
	}
	if len(rep.TempFiles) != 1 {
		t.Errorf("TempFiles = %v", rep.TempFiles)
	}
	if rep.Checked != 1 {
		t.Errorf("Checked = %d, want 1", rep.Checked)
	}
	if _, ok := s.Entry("gone"); ok {
		t.Error("dropped entry still reported")
	}
	if !s.Has("kept") {
		t.Error("surviving entry lost")
	}
}
