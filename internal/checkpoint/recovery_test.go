package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// filledVM builds a VM with deterministic non-zero content so different
// seeds yield different image digests.
func filledVM(t *testing.T, name string, pages int, seed int64) *vm.VM {
	t.Helper()
	v, err := vm.New(vm.Config{Name: name, MemBytes: int64(pages) * testPage, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.FillRandom(1.0); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSaveSalvagePartialEntry(t *testing.T) {
	s := quotaStore(t)
	v := filledVM(t, "a", 4, 1)
	if err := s.SaveSalvage(v); err != nil {
		t.Fatal(err)
	}
	info, ok := s.Entry("a")
	if !ok || info.State != EntryPartial {
		t.Fatalf("Entry after SaveSalvage = %+v, %v; want partial", info, ok)
	}
	if !s.Has("a") {
		t.Error("partial entry should be servable")
	}
	if info.Digest == "" || !info.HasSidecar {
		t.Errorf("salvage entry missing digest or sidecar: %+v", info)
	}
	if _, ok, err := s.Generations("a"); err != nil || ok {
		t.Errorf("partial entry has generations (ok=%v, err=%v)", ok, err)
	}
	cp, err := s.Restore("a", checksum.MD5, nil)
	if err != nil {
		t.Fatalf("restore partial: %v", err)
	}
	if cp.Sidecar() != SidecarHit {
		t.Errorf("salvage restore sidecar = %v, want hit", cp.Sidecar())
	}
	cp.Close()

	// A completed migration supersedes the salvage entry.
	if err := s.Save(v); err != nil {
		t.Fatal(err)
	}
	info, _ = s.Entry("a")
	if info.State != EntryComplete {
		t.Errorf("state after Save = %v, want complete", info.State)
	}
	if _, ok, _ := s.Generations("a"); !ok {
		t.Error("complete entry lost its generations")
	}
}

func TestSaveRemovesStaleGenerationsOnSalvage(t *testing.T) {
	s := quotaStore(t)
	v := filledVM(t, "a", 4, 1)
	if err := s.Save(v); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSalvage(filledVM(t, "a", 4, 2)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Generations("a"); ok {
		t.Error("salvage save left the previous checkpoint's generations behind")
	}
}

// TestKillPointMatrix crashes a Save at every commit point and asserts the
// reopened store either serves the old image or quarantines — never serves
// torn state.
func TestKillPointMatrix(t *testing.T) {
	points := []struct {
		point string
		// wantOld: the recovered entry serves the pre-crash image.
		// wantNew: the transaction committed; the new image is served.
		// Neither: the entry must be quarantined and refuse to serve.
		wantOld bool
		wantNew bool
	}{
		{point: "image-written", wantOld: true},      // tmp written, not yet durable
		{point: "image-synced", wantOld: true},       // tmp durable, before rename
		{point: "image-renamed"},                     // renamed, before dir fsync + manifest
		{point: "gens-written"},                      // satellite files written, manifest stale
		{point: "sidecar-written"},                   // all files new, manifest still stale
		{point: "manifest-committed", wantNew: true}, // transaction committed
	}
	for _, tc := range points {
		t.Run(tc.point, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "s")
			s, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Save(filledVM(t, "a", 4, 1)); err != nil {
				t.Fatal(err)
			}
			oldDigest, err := hashFile(s.ImagePath("a"))
			if err != nil {
				t.Fatal(err)
			}

			boom := errors.New("simulated crash")
			testHookKill = func(p string) error {
				if p == tc.point {
					return boom
				}
				return nil
			}
			defer func() { testHookKill = nil }()
			err = s.Save(filledVM(t, "a", 4, 2))
			testHookKill = nil
			if tc.point == "manifest-committed" {
				// The kill fires after the commit: the error is reported but
				// the transaction is already durable.
				if err == nil {
					t.Fatal("kill hook did not fire")
				}
			} else if err == nil || !errors.Is(err, boom) {
				t.Fatalf("killed Save error = %v, want the simulated crash", err)
			}

			// "Reboot": a fresh store over the same directory runs recovery.
			s2, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			info, ok := s2.Entry("a")
			if !ok {
				t.Fatal("entry vanished after recovery")
			}
			switch {
			case tc.wantOld:
				if info.State != EntryComplete {
					t.Fatalf("state = %v, want complete (old image)", info.State)
				}
				got, err := hashFile(s2.ImagePath("a"))
				if err != nil {
					t.Fatal(err)
				}
				if got != oldDigest {
					t.Error("recovered image is not the pre-crash image")
				}
				if cp, err := s2.Restore("a", checksum.MD5, nil); err != nil {
					t.Errorf("old image refused: %v", err)
				} else {
					cp.Close()
				}
			case tc.wantNew:
				if info.State != EntryComplete {
					t.Fatalf("state = %v, want complete (new image)", info.State)
				}
				if info.Digest == oldDigest {
					t.Error("committed transaction still serves the old digest")
				}
				if cp, err := s2.Restore("a", checksum.MD5, nil); err != nil {
					t.Errorf("committed image refused: %v", err)
				} else {
					cp.Close()
				}
			default:
				if info.State != EntryQuarantined {
					t.Fatalf("state = %v, want quarantined", info.State)
				}
				if s2.Has("a") {
					t.Error("Has serves a quarantined entry")
				}
				if _, err := s2.Restore("a", checksum.MD5, nil); err == nil {
					t.Error("Restore served a quarantined entry")
				}
			}
			// No interrupted-transaction temp files survive recovery.
			dirents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, de := range dirents {
				if filepath.Ext(de.Name()) == tmpSuffix {
					t.Errorf("orphan temp file survived recovery: %s", de.Name())
				}
			}
		})
	}
}

func TestTornImageQuarantinedTornSidecarNot(t *testing.T) {
	// A torn image must be quarantined; a torn fingerprint sidecar must
	// not — Open validates sidecars independently and falls back to the
	// rescan, so tearing one can cost time, never correctness.
	dir := filepath.Join(t.TempDir(), "s")
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"img-torn", "idx-torn"} {
		if err := s.Save(filledVM(t, n, 4, 3)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the image of one entry mid-file, the sidecar of the other.
	tamper := func(path string, off int64) {
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, off); err != nil {
			t.Fatal(err)
		}
	}
	tamper(s.ImagePath("img-torn"), 2*testPage)
	// A torn sidecar is a truncation: the write stopped partway.
	if err := os.Truncate(SidecarPath(s.ImagePath("idx-torn")), sidecarHeaderSize+5); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := s2.Entry("img-torn"); info.State != EntryQuarantined {
		t.Errorf("torn image state = %v, want quarantined", info.State)
	}
	if _, err := s2.Restore("img-torn", checksum.MD5, nil); err == nil {
		t.Error("torn image served")
	}
	if info, _ := s2.Entry("idx-torn"); info.State != EntryComplete {
		t.Errorf("torn sidecar state = %v, want complete", info.State)
	}
	cp, err := s2.Restore("idx-torn", checksum.MD5, nil)
	if err != nil {
		t.Fatalf("torn sidecar must fall back, got %v", err)
	}
	if cp.Sidecar() != SidecarFallback {
		t.Errorf("sidecar status = %v, want fallback", cp.Sidecar())
	}
	cp.Close()
}

func TestRecoveryAdoptsLegacyImage(t *testing.T) {
	// An image written by a pre-manifest store (no manifest record, legacy
	// .sha256 digest file) is adopted as complete, and its legacy digest —
	// not a fresh hash — anchors the integrity check.
	dir := filepath.Join(t.TempDir(), "s")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	v := filledVM(t, "legacy", 4, 4)
	digest, err := writeImage(filepath.Join(dir, "legacy.img"), v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "legacy.img.sha256"), []byte(digest+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A second legacy image with bit rot under its recorded digest.
	if _, err := writeImage(filepath.Join(dir, "rotten.img"), filledVM(t, "rotten", 4, 5)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "rotten.img.sha256"), []byte(digest+"\n"), 0o644); err != nil {
		t.Fatal(err) // digest of the other image: guaranteed mismatch
	}

	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := s.Entry("legacy")
	if !ok || info.State != EntryComplete || info.Digest != digest {
		t.Errorf("legacy adoption = %+v, %v", info, ok)
	}
	if info, _ := s.Entry("rotten"); info.State != EntryQuarantined {
		t.Errorf("rotten legacy image state = %v, want quarantined", info.State)
	}
}

func TestScrubReportAndManifestDrop(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(filledVM(t, "gone", 4, 6)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(filledVM(t, "kept", 4, 7)); err != nil {
		t.Fatal(err)
	}
	// Delete one image behind the store's back and drop in an orphan temp.
	if err := os.Remove(s.ImagePath("gone")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.img.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dropped) != 1 || rep.Dropped[0] != "gone" {
		t.Errorf("Dropped = %v", rep.Dropped)
	}
	if len(rep.TempFiles) != 1 {
		t.Errorf("TempFiles = %v", rep.TempFiles)
	}
	if rep.Checked != 1 {
		t.Errorf("Checked = %d, want 1", rep.Checked)
	}
	if _, ok := s.Entry("gone"); ok {
		t.Error("dropped entry still reported")
	}
	if !s.Has("kept") {
		t.Error("surviving entry lost")
	}
}
