package checkpoint

import (
	"path/filepath"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// BenchmarkOpen measures the §3.3 index build on a 64 MiB checkpoint, cold
// (full pool read + rehash, the pre-sidecar behavior) versus warm
// (fingerprint sidecar load). The warm path reads ~0.4 % of the bytes and
// hashes nothing; the acceptance bar for the warm-start layer is ≥ 5× over
// cold.
func BenchmarkOpen(b *testing.B) {
	const pages = 16384 // 64 MiB at 4 KiB pages
	store, err := NewStore(filepath.Join(b.TempDir(), "ckpts"))
	if err != nil {
		b.Fatal(err)
	}
	src, err := vm.New(vm.Config{Name: "bench", MemBytes: pages * vm.PageSize, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if err := src.FillRandom(0.5); err != nil {
		b.Fatal(err)
	}
	if err := store.Save(src); err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		store.SetNoSidecar(true)
		defer store.SetNoSidecar(false)
		b.SetBytes(pages * vm.PageSize)
		for i := 0; i < b.N; i++ {
			cp, err := store.Restore("bench", checksum.MD5, nil)
			if err != nil {
				b.Fatal(err)
			}
			if cp.Sidecar() != SidecarDisabled {
				b.Fatalf("cold restore got %v, want disabled", cp.Sidecar())
			}
			cp.Close()
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.SetBytes(pages * vm.PageSize)
		for i := 0; i < b.N; i++ {
			cp, err := store.Restore("bench", checksum.MD5, nil)
			if err != nil {
				b.Fatal(err)
			}
			if cp.Sidecar() != SidecarHit {
				b.Fatalf("warm open got %v, want hit", cp.Sidecar())
			}
			cp.Close()
		}
	})
}

// BenchmarkSaveWarm measures re-checkpointing a VM whose content is already
// fully resident in the pool — the steady state after every successful
// migration, where the save writes no segment and the digest passes are
// the whole cost. `rehash` is the plain Save path (SHA-256 content keying
// plus the MD5 sidecar rebuild); `withsums` hands Save the MD5 table a
// tracked migration records for free, leaving only the keying scan. The
// hash-once acceptance bar is withsums ≥ 1.5× rehash; tools/benchgate
// enforces it on the committed recording.
func BenchmarkSaveWarm(b *testing.B) {
	const pages = 16384 // 64 MiB at 4 KiB pages
	store, err := NewStore(filepath.Join(b.TempDir(), "ckpts"))
	if err != nil {
		b.Fatal(err)
	}
	src, err := vm.New(vm.Config{Name: "bench", MemBytes: pages * vm.PageSize, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if err := src.FillRandom(0.5); err != nil {
		b.Fatal(err)
	}
	if err := store.Save(src); err != nil {
		b.Fatal(err)
	}
	// The table a migration's TrackIncoming/SentSums recording supplies.
	sums := make([]checksum.Sum, pages)
	for i := range sums {
		sums[i] = src.PageSum(i, SidecarAlgorithm)
	}

	b.Run("rehash", func(b *testing.B) {
		b.SetBytes(pages * vm.PageSize)
		for i := 0; i < b.N; i++ {
			if err := store.Save(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("withsums", func(b *testing.B) {
		b.SetBytes(pages * vm.PageSize)
		for i := 0; i < b.N; i++ {
			if err := store.SaveWithSums(src, SidecarAlgorithm, sums); err != nil {
				b.Fatal(err)
			}
		}
	})
}
