package checkpoint

import (
	"path/filepath"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// BenchmarkOpen measures the §3.3 index build on a 64 MiB checkpoint, cold
// (full pool read + rehash, the pre-sidecar behavior) versus warm
// (fingerprint sidecar load). The warm path reads ~0.4 % of the bytes and
// hashes nothing; the acceptance bar for the warm-start layer is ≥ 5× over
// cold.
func BenchmarkOpen(b *testing.B) {
	const pages = 16384 // 64 MiB at 4 KiB pages
	store, err := NewStore(filepath.Join(b.TempDir(), "ckpts"))
	if err != nil {
		b.Fatal(err)
	}
	src, err := vm.New(vm.Config{Name: "bench", MemBytes: pages * vm.PageSize, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if err := src.FillRandom(0.5); err != nil {
		b.Fatal(err)
	}
	if err := store.Save(src); err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		store.SetNoSidecar(true)
		defer store.SetNoSidecar(false)
		b.SetBytes(pages * vm.PageSize)
		for i := 0; i < b.N; i++ {
			cp, err := store.Restore("bench", checksum.MD5, nil)
			if err != nil {
				b.Fatal(err)
			}
			if cp.Sidecar() != SidecarDisabled {
				b.Fatalf("cold restore got %v, want disabled", cp.Sidecar())
			}
			cp.Close()
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.SetBytes(pages * vm.PageSize)
		for i := 0; i < b.N; i++ {
			cp, err := store.Restore("bench", checksum.MD5, nil)
			if err != nil {
				b.Fatal(err)
			}
			if cp.Sidecar() != SidecarHit {
				b.Fatalf("warm open got %v, want hit", cp.Sidecar())
			}
			cp.Close()
		}
	})
}
