package checkpoint

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// copyPages copies page frames [0, n) from src into dst.
func copyPages(t *testing.T, src, dst *vm.VM, n int) {
	t.Helper()
	buf := make([]byte, vm.PageSize)
	for i := 0; i < n; i++ {
		src.ReadPage(i, buf)
		dst.WritePage(i, buf)
	}
}

// TestDedupAcrossVMs is the tentpole assertion: two VMs sharing half their
// content must cost the disk less than the sum of their logical sizes, and
// both must still round-trip bit exactly.
func TestDedupAcrossVMs(t *testing.T) {
	s := quotaStore(t)
	a := filledVM(t, "a", 8, 1)
	b := filledVM(t, "b", 8, 2)
	copyPages(t, a, b, 4) // b's first 4 pages now duplicate a's

	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(b); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.LogicalBytes != 16*testPage {
		t.Errorf("LogicalBytes = %d, want %d", st.LogicalBytes, 16*testPage)
	}
	if st.PhysicalBytes != 12*testPage {
		t.Errorf("PhysicalBytes = %d, want %d (4 shared pages stored once)", st.PhysicalBytes, 12*testPage)
	}
	if st.DedupPagesTotal != 4 {
		t.Errorf("DedupPagesTotal = %d, want 4", st.DedupPagesTotal)
	}
	if r := st.DedupRatio(); r <= 1.0 {
		t.Errorf("DedupRatio = %v, want > 1.0", r)
	}
	for name, src := range map[string]*vm.VM{"a": a, "b": b} {
		dst := newVM(t, name, 8, 99)
		cp, err := s.Restore(name, checksum.MD5, dst)
		if err != nil {
			t.Fatal(err)
		}
		cp.Close()
		if !src.MemEqual(dst) {
			t.Errorf("%s: dedup'd checkpoint lost data at page %d", name, src.FirstDifference(dst))
		}
	}
	// UniqueBytes: each entry uniquely owns its 4 private pages.
	info, _ := s.Entry("a")
	if info.UniqueBytes != 4*testPage {
		t.Errorf("UniqueBytes = %d, want %d", info.UniqueBytes, 4*testPage)
	}
}

// TestDedupAcrossGenerations covers the paper's own redundancy claim: a
// re-save after partial mutation only writes the changed pages.
func TestDedupAcrossGenerations(t *testing.T) {
	s := quotaStore(t)
	v := filledVM(t, "a", 8, 1)
	if err := s.Save(v); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	// Mutate 6 of 8 pages, re-save: only those 6 should cost bytes.
	other := filledVM(t, "tmp", 6, 7)
	copyPages(t, other, v, 6)
	if err := s.Save(v); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if got := after.PhysicalBytes - before.PhysicalBytes; got != 6*testPage {
		t.Errorf("re-save grew pool by %d bytes, want %d", got, 6*testPage)
	}
	// The superseded pages are dead until GC; the old segment is 75 % dead,
	// so a pass compacts it down to the 2 still-live pages.
	rep, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reclaimed() || rep.PagesReclaimed != 6 {
		t.Errorf("GC report = %+v, want 6 pages reclaimed", rep)
	}
	if got := s.Stats().PhysicalBytes; got != 8*testPage {
		t.Errorf("post-GC PhysicalBytes = %d, want %d", got, 8*testPage)
	}
	dst := newVM(t, "a", 8, 99)
	cp, err := s.Restore("a", checksum.MD5, dst)
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	if !v.MemEqual(dst) {
		t.Error("restore after GC lost data")
	}
}

func TestGCDeletesFullyDeadSegments(t *testing.T) {
	s := quotaStore(t)
	if err := s.Save(filledVM(t, "a", 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(filledVM(t, "b", 4, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	rep, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SegmentsDeleted != 1 || rep.PagesReclaimed != 4 {
		t.Errorf("GC report = %+v, want 1 segment / 4 pages", rep)
	}
	if got := s.Stats().PhysicalBytes; got != 4*testPage {
		t.Errorf("PhysicalBytes = %d, want %d", got, 4*testPage)
	}
	dst := newVM(t, "b", 4, 99)
	cp, err := s.Restore("b", checksum.MD5, dst)
	if err != nil {
		t.Fatalf("survivor broken after GC: %v", err)
	}
	cp.Close()
	// An idle second pass reclaims nothing.
	rep, err = s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reclaimed() {
		t.Errorf("idle GC reclaimed: %+v", rep)
	}
}

func TestGCCompactsMostlyDeadSegment(t *testing.T) {
	s := quotaStore(t)
	a := filledVM(t, "a", 8, 1)
	b := filledVM(t, "b", 8, 2)
	copyPages(t, a, b, 2) // b keeps 2 of a's pages alive
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	// a's segment: 8 pages, 2 still referenced by b — 75 % dead, compact.
	rep, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SegmentsCompacted != 1 || rep.PagesReclaimed != 6 {
		t.Errorf("GC report = %+v, want 1 compaction / 6 pages", rep)
	}
	if got := s.Stats().PhysicalBytes; got != 8*testPage {
		t.Errorf("PhysicalBytes = %d, want %d", got, 8*testPage)
	}
	dst := newVM(t, "b", 8, 99)
	cp, err := s.Restore("b", checksum.MD5, dst)
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	if !b.MemEqual(dst) {
		t.Error("compaction corrupted a surviving entry")
	}
}

// TestGCCrashMidCompact kills the compaction's segment rename and asserts
// the reopened store still serves everything from the old layout.
func TestGCCrashMidCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := filledVM(t, "a", 8, 1)
	b := filledVM(t, "b", 8, 2)
	copyPages(t, a, b, 2)
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("simulated crash")
	testHookKill = func(p string) error {
		if p == "image-renamed" {
			return boom
		}
		return nil
	}
	_, err = s.GC()
	testHookKill = nil
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("killed GC error = %v, want the simulated crash", err)
	}
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "b", 8, 99)
	cp, err := s2.Restore("b", checksum.MD5, dst)
	if err != nil {
		t.Fatalf("entry lost to a crashed GC: %v", err)
	}
	cp.Close()
	if !b.MemEqual(dst) {
		t.Error("crashed GC corrupted a surviving entry")
	}
	// The interrupted compaction's work is re-doable.
	if _, err := s2.GC(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenUnionServesResidentContent(t *testing.T) {
	s := quotaStore(t)
	// Empty store: no union.
	cp, names, err := s.OpenUnion(checksum.MD5)
	if err != nil || cp != nil || names != nil {
		t.Fatalf("empty union = %v, %v, %v", cp, names, err)
	}
	a := filledVM(t, "a", 4, 1)
	b := filledVM(t, "b", 4, 2)
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSalvage(b); err != nil {
		t.Fatal(err)
	}
	cp, names, err = s.OpenUnion(checksum.MD5)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if len(names) != 2 {
		t.Fatalf("union covers %v, want both entries", names)
	}
	// Every page of both residents resolves out of the union.
	for name, src := range map[string]*vm.VM{"a": a, "b": b} {
		for i := 0; i < src.NumPages(); i++ {
			sum := src.PageSum(i, checksum.MD5)
			if !cp.SumSet().Contains(sum) {
				t.Fatalf("%s page %d missing from union announcement", name, i)
			}
			want := make([]byte, vm.PageSize)
			src.ReadPage(i, want)
			got, ok, err := cp.ReadBlock(sum)
			if err != nil || !ok {
				t.Fatalf("%s page %d: ok=%v err=%v", name, i, ok, err)
			}
			if string(got) != string(want) {
				t.Fatalf("%s page %d: union served wrong bytes", name, i)
			}
			cp.Release(got)
		}
	}
	// The union has no frame geometry: it can never act as a delta base.
	if cp.Pages() != 0 {
		t.Errorf("union Pages = %d, want 0", cp.Pages())
	}
	if _, ok, _ := cp.PageAt(0); ok {
		t.Error("union PageAt served a frame")
	}
}

func TestOpenUnionSkipsQuarantined(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(filledVM(t, "good", 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(filledVM(t, "bad", 4, 2)); err != nil {
		t.Fatal(err)
	}
	tamperObject(t, s, "bad", 1)
	s2, err := NewStore(dir) // recovery quarantines "bad"
	if err != nil {
		t.Fatal(err)
	}
	cp, names, err := s2.OpenUnion(checksum.MD5)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if len(names) != 1 || names[0] != "good" {
		t.Errorf("union covers %v, want only the good entry", names)
	}
}

// fakeMetrics records store metric callbacks; its methods call back into
// the store to prove the deferred-delivery contract is deadlock free.
type fakeMetrics struct {
	mu          sync.Mutex
	store       *Store
	dedup       int
	gcRuns      map[string]int
	physSum     int64
	hashed      map[string]int64
	unhashed    int64
	degraded    map[string]int
	cleanupErrs []string
}

func (m *fakeMetrics) DedupPages(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dedup += n
	m.physSum = m.store.Stats().PhysicalBytes // re-enters the store lock
}

func (m *fakeMetrics) GCRun(outcome string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.gcRuns == nil {
		m.gcRuns = map[string]int{}
	}
	m.gcRuns[outcome]++
}

func (m *fakeMetrics) HashBytes(stage string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hashed == nil {
		m.hashed = map[string]int64{}
	}
	m.hashed[stage] += n
}

func (m *fakeMetrics) HashAvoidedBytes(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.unhashed += n
}

func (m *fakeMetrics) Degraded(stage, fault string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.degraded == nil {
		m.degraded = map[string]int{}
	}
	m.degraded[stage+":"+fault]++
}

func (m *fakeMetrics) CleanupError(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cleanupErrs = append(m.cleanupErrs, path)
}

func TestMetricsSinkDeliveredOutsideLock(t *testing.T) {
	s := quotaStore(t)
	m := &fakeMetrics{store: s}
	s.SetMetrics(m)
	a := filledVM(t, "a", 4, 1)
	b := filledVM(t, "b", 4, 2)
	copyPages(t, a, b, 2)
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(b); err != nil {
		t.Fatal(err)
	}
	if m.dedup != 2 {
		t.Errorf("DedupPages total = %d, want 2", m.dedup)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if m.gcRuns["clean"] < 1 || m.gcRuns["reclaimed"] < 1 {
		t.Errorf("GCRun outcomes = %v, want both clean and reclaimed", m.gcRuns)
	}
}

// TestConcurrentSaveGCRestore hammers Save, GC, Restore, OpenUnion and
// Stats from concurrent goroutines. Run under -race; invariants: no panics,
// no unexpected errors, restores that succeed return coherent checkpoints.
func TestConcurrentSaveGCRestore(t *testing.T) {
	s := quotaStore(t)
	seed := filledVM(t, "vm0", 8, 1)
	if err := s.Save(seed); err != nil {
		t.Fatal(err)
	}
	const rounds = 20
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	wg.Add(4)
	go func() { // saver: churns entries so GC has work
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			v := filledVM(t, fmt.Sprintf("vm%d", i%3), 8, int64(i+2))
			if err := s.Save(v); err != nil {
				errc <- err
				return
			}
		}
	}()
	go func() { // collector
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := s.GC(); err != nil {
				errc <- err
				return
			}
		}
	}()
	go func() { // restorer: vm0 always exists in some generation
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			cp, err := s.Restore("vm0", checksum.MD5, nil)
			if err != nil {
				errc <- err
				return
			}
			if cp.SumSet().Len() == 0 {
				errc <- fmt.Errorf("empty restore index")
			}
			cp.Close()
		}
	}()
	go func() { // union + stats reader
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			cp, _, err := s.OpenUnion(checksum.MD5)
			if err != nil {
				errc <- err
				return
			}
			if cp != nil {
				cp.Close()
			}
			_ = s.Stats()
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The store is still coherent after the storm.
	if _, err := s.Scrub(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
}
