package sched

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"vecycle/internal/core"
	"vecycle/internal/vm"
)

// TestMixedVersionAnnounceOverTCP drives the host-level compact-announce
// negotiation across real TCP in all four support pairings. A first leg
// seeds a checkpoint at the destination; the second leg of the same VM then
// triggers the announcement. Every pairing must migrate correctly — an old
// peer on either side silently degrades to the v1 encoding — and the VM's
// memory must survive each leg byte-for-byte.
func TestMixedVersionAnnounceOverTCP(t *testing.T) {
	cases := []struct {
		name           string
		srcOld, dstOld bool
	}{
		{"both-v2", false, false},
		{"old-source", true, false},
		{"old-dest", false, true},
		{"both-old", true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			alpha := newHost(t, "alpha")
			beta := newHost(t, "beta")
			beta.NoCompactAnnounce = tc.dstOld
			addrB := listen(t, beta)
			addrA := listen(t, alpha)

			v := newGuest(t, "vm0", 64)
			if err := v.FillRandom(0.9); err != nil {
				t.Fatal(err)
			}
			alpha.AddVM(v)

			wait := func(h *Host) {
				t.Helper()
				deadline := time.Now().Add(5 * time.Second)
				for {
					if _, ok := h.VM("vm0"); ok {
						return
					}
					if time.Now().After(deadline) {
						t.Fatal("VM never arrived")
					}
					time.Sleep(time.Millisecond)
				}
			}
			opts := func() MigrateOptions {
				return MigrateOptions{
					Recycle:           true,
					KeepCheckpoint:    true,
					NoCompactAnnounce: tc.srcOld,
				}
			}

			// The announcement is sent by the destination; its accounting is
			// exact (the source's read-side figure depends on transport
			// buffering). Capture the return leg's DestResult at alpha.
			arrived := make(chan core.DestResult, 1)
			alpha.OnArrival = func(_ *vm.VM, res core.DestResult) { arrived <- res }

			// Leg 1 seeds beta's checkpoint; leg 2 (beta → alpha, alpha now
			// holding a checkpoint from the departure save) announces.
			if _, err := alpha.MigrateTo(context.Background(), addrB, "vm0", opts()); err != nil {
				t.Fatal(err)
			}
			wait(beta)
			vb, _ := beta.VM("vm0")
			vb.TouchRandomPages(3)
			want := vb.Fingerprint64()
			// alpha is now the destination: its NoCompactAnnounce models the
			// old-dest pairing on the return leg.
			alpha.NoCompactAnnounce = tc.dstOld
			m, err := beta.MigrateTo(context.Background(), addrA, "vm0", opts())
			if err != nil {
				t.Fatal(err)
			}
			wait(alpha)
			var res core.DestResult
			select {
			case res = <-arrived:
			case <-time.After(5 * time.Second):
				t.Fatal("destination never reported the arrival")
			}

			dm := res.Metrics
			if dm.AnnounceBytes == 0 || dm.AnnounceRawBytes == 0 {
				t.Fatalf("return leg sent no announcement (bytes=%d raw=%d); checkpoint path not exercised",
					dm.AnnounceBytes, dm.AnnounceRawBytes)
			}
			v1Wire := dm.AnnounceRawBytes + 1 // tag byte + v1 body
			if tc.srcOld || tc.dstOld {
				if dm.AnnounceBytes != v1Wire {
					t.Errorf("%s: AnnounceBytes = %d, want exact v1 wire size %d", tc.name, dm.AnnounceBytes, v1Wire)
				}
			} else if dm.AnnounceBytes > v1Wire+5 {
				t.Errorf("negotiated v2 announce cost %d bytes, v1 wire size is %d", dm.AnnounceBytes, v1Wire)
			}
			if m.PagesSum == 0 {
				t.Error("return leg recycled nothing")
			}
			landed, _ := alpha.VM("vm0")
			got := landed.Fingerprint64()
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("page %d differs after %s migration", i, tc.name)
				}
			}
		})
	}
}

// TestHostSetNoSidecar exercises the -no-sidecar plumbing at the host
// level: with sidecars disabled neither departure checkpoints nor arrival
// saves leave an index file behind, and migrations keep working.
func TestHostSetNoSidecar(t *testing.T) {
	alpha := newHost(t, "alpha")
	beta := newHost(t, "beta")
	alpha.SetNoSidecar(true)
	beta.SetNoSidecar(true)
	beta.SaveArrivals = true
	addrB := listen(t, beta)

	v := newGuest(t, "vm0", 32)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	alpha.AddVM(v)
	if _, err := alpha.MigrateTo(context.Background(), addrB, "vm0", MigrateOptions{
		Recycle: true, KeepCheckpoint: true,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := beta.VM("vm0"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("VM never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	for _, h := range []*Host{alpha, beta} {
		if !h.Store().Has("vm0") {
			t.Fatalf("host %s kept no checkpoint", h.Name())
		}
		if !h.Store().NoSidecar() {
			t.Errorf("host %s store reports sidecars enabled", h.Name())
		}
		idx, err := filepath.Glob(filepath.Join(h.Store().Dir(), "*.idx"))
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) != 0 {
			t.Errorf("host %s wrote sidecars despite -no-sidecar: %v", h.Name(), idx)
		}
	}
}
