package sched

import (
	"fmt"
	"sort"
	"time"
)

// Hot-spot mitigation (Wood et al., the paper's reference [27]): when a
// host's aggregate load exceeds a watermark, its busiest VM moves to the
// least-loaded host. Over time VMs oscillate within a small set of hosts —
// the behaviour Birke et al. measured (68 % of VMs only ever visit two
// hosts) and the reason checkpoint recycling pays.

// BalancePolicy parameterizes the greedy balancer.
type BalancePolicy struct {
	// HighWater triggers evacuation when a host's load (sum of its VMs'
	// activity levels) exceeds it.
	HighWater float64
	// MaxMovesPerStep caps migrations per sample (0 = one per step) so a
	// load spike does not trigger a migration storm.
	MaxMovesPerStep int
}

// Validate checks the policy.
func (p BalancePolicy) Validate() error {
	if p.HighWater <= 0 {
		return fmt.Errorf("sched: HighWater must be positive")
	}
	if p.MaxMovesPerStep < 0 {
		return fmt.Errorf("sched: negative MaxMovesPerStep")
	}
	return nil
}

// BalanceVM is one balanced VM: a name and its activity level over time.
type BalanceVM struct {
	Name  string
	Level func(time.Time) float64
}

// BalanceEvent is one planned migration.
type BalanceEvent struct {
	At   time.Time
	VM   string
	From int
	To   int
}

// PlanBalance walks the sampled timeline and emits the migrations the
// policy would perform. initial assigns each VM (by index) to a starting
// host; hosts are numbered 0..hosts-1.
func (p BalancePolicy) PlanBalance(times []time.Time, vms []BalanceVM, hosts int, initial []int) ([]BalanceEvent, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if hosts < 2 {
		return nil, fmt.Errorf("sched: need at least 2 hosts, got %d", hosts)
	}
	if len(initial) != len(vms) {
		return nil, fmt.Errorf("sched: %d initial placements for %d VMs", len(initial), len(vms))
	}
	placement := make([]int, len(vms))
	for i, h := range initial {
		if h < 0 || h >= hosts {
			return nil, fmt.Errorf("sched: VM %d placed on invalid host %d", i, h)
		}
		placement[i] = h
	}

	var events []BalanceEvent
	for ti, ts := range times {
		if ti > 0 && ts.Before(times[ti-1]) {
			return nil, fmt.Errorf("sched: samples not ascending at %d", ti)
		}
		levels := make([]float64, len(vms))
		loads := make([]float64, hosts)
		for i, v := range vms {
			levels[i] = v.Level(ts)
			loads[placement[i]] += levels[i]
		}
		// Greedy evacuation, bounded per step.
		budget := p.MaxMovesPerStep
		if budget == 0 {
			budget = 1
		}
		for moved := 0; moved < budget; moved++ {
			// Hottest host above the watermark.
			src := -1
			for h := 0; h < hosts; h++ {
				if loads[h] > p.HighWater && (src < 0 || loads[h] > loads[src]) {
					src = h
				}
			}
			if src < 0 {
				break
			}
			// Its busiest VM.
			vmIdx := -1
			for i := range vms {
				if placement[i] == src && (vmIdx < 0 || levels[i] > levels[vmIdx]) {
					vmIdx = i
				}
			}
			if vmIdx < 0 {
				break
			}
			// Coolest host with room.
			dst := -1
			for h := 0; h < hosts; h++ {
				if h == src {
					continue
				}
				if dst < 0 || loads[h] < loads[dst] {
					dst = h
				}
			}
			// Move only if it strictly improves the imbalance — the
			// Sandpiper-style relief condition. Without it a fleet that is
			// globally overloaded would thrash or wedge.
			if dst < 0 || loads[dst]+levels[vmIdx] >= loads[src] {
				break
			}
			loads[src] -= levels[vmIdx]
			loads[dst] += levels[vmIdx]
			placement[vmIdx] = dst
			events = append(events, BalanceEvent{At: ts, VM: vms[vmIdx].Name, From: src, To: dst})
		}
	}
	return events, nil
}

// RevisitFraction reports, over a planned sequence, the fraction of
// migrations whose destination the VM had already visited (including its
// initial host) — the quantity behind Birke et al.'s "68 % of VMs visit
// just two servers". A higher fraction means more recyclable checkpoints.
func RevisitFraction(events []BalanceEvent, vms []BalanceVM, initial []int) float64 {
	if len(events) == 0 {
		return 0
	}
	visited := make(map[string]map[int]bool, len(vms))
	for i, v := range vms {
		visited[v.Name] = map[int]bool{initial[i]: true}
	}
	revisits := 0
	for _, ev := range events {
		hosts := visited[ev.VM]
		if hosts == nil {
			hosts = map[int]bool{}
			visited[ev.VM] = hosts
		}
		if hosts[ev.To] {
			revisits++
		}
		hosts[ev.To] = true
		hosts[ev.From] = true
	}
	return float64(revisits) / float64(len(events))
}

// HostsVisited reports how many distinct hosts each VM touched (initial
// placement included), sorted by VM name order of vms.
func HostsVisited(events []BalanceEvent, vms []BalanceVM, initial []int) []int {
	visited := make(map[string]map[int]bool, len(vms))
	for i, v := range vms {
		visited[v.Name] = map[int]bool{initial[i]: true}
	}
	for _, ev := range events {
		visited[ev.VM][ev.To] = true
	}
	out := make([]int, len(vms))
	for i, v := range vms {
		out[i] = len(visited[v.Name])
	}
	sort.Ints(out)
	return out
}
