package sched

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vecycle/internal/core"
	"vecycle/internal/vm"
)

// TestStalledPeerTimesOut verifies that a peer which accepts the connection
// and then never drains it fails the migration with ErrIdleTimeout within
// the per-I/O budget, instead of blocking forever.
func TestStalledPeerTimesOut(t *testing.T) {
	src := newHost(t, "alpha")
	src.AddVM(newGuest(t, "vm0", 16))

	// The "peer": one end of an in-memory pipe nobody ever reads.
	var silent []net.Conn
	var mu sync.Mutex
	src.DialFunc = func(ctx context.Context, addr string) (io.ReadWriteCloser, error) {
		a, b := net.Pipe()
		mu.Lock()
		silent = append(silent, b)
		mu.Unlock()
		return a, nil
	}
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range silent {
			c.Close()
		}
	})

	start := time.Now()
	_, err := src.MigrateTo(context.Background(), "stalled:1", "vm0", MigrateOptions{
		IdleTimeout: 100 * time.Millisecond,
	})
	if !errors.Is(err, core.ErrIdleTimeout) {
		t.Fatalf("MigrateTo = %v, want ErrIdleTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stalled migration held the caller for %v", elapsed)
	}
	if _, ok := src.VM("vm0"); !ok {
		t.Error("VM deregistered after a failed migration")
	}
}

// TestStalledPeerContextDeadline covers the other abort path: per-I/O
// deadlines disabled, the caller's context deadline must still cut the
// blocked migration loose.
func TestStalledPeerContextDeadline(t *testing.T) {
	src := newHost(t, "alpha")
	src.AddVM(newGuest(t, "vm0", 16))

	var silent net.Conn
	src.DialFunc = func(ctx context.Context, addr string) (io.ReadWriteCloser, error) {
		a, b := net.Pipe()
		silent = b
		return a, nil
	}
	t.Cleanup(func() {
		if silent != nil {
			silent.Close()
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := src.MigrateTo(ctx, "stalled:1", "vm0", MigrateOptions{
		IdleTimeout: -1, // rely on the context alone
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("MigrateTo = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("migration took %v to honor a 100ms context deadline", elapsed)
	}
}

// TestClosePromptWithWedgedHandler connects a client that sends a partial
// hello and then goes silent. Close must not wait out the idle timeout of
// the wedged handler.
func TestClosePromptWithWedgedHandler(t *testing.T) {
	h := newHost(t, "alpha")
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// One valid hello tag byte, then silence: the handler blocks mid-frame.
	if _, err := conn.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the handler reach the blocked read

	done := make(chan struct{})
	go func() {
		h.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close wedged behind a stalled handler")
	}
}

// TestConcurrentDuplicateArrival races two migrations of the same VM name
// into one host. Exactly one may land; the other must be rejected, not
// silently merged or double-registered.
func TestConcurrentDuplicateArrival(t *testing.T) {
	dst := newHost(t, "gamma")
	addr := listen(t, dst)

	sources := [2]*Host{newHost(t, "alpha"), newHost(t, "beta")}
	for i, h := range sources {
		v := newGuest(t, "dup-vm", 64)
		if err := v.FillRandom(0.9); err != nil {
			t.Fatal(err)
		}
		_ = i
		h.AddVM(v)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, h := range sources {
		wg.Add(1)
		go func(i int, h *Host) {
			defer wg.Done()
			_, errs[i] = h.MigrateTo(context.Background(), addr, "dup-vm", MigrateOptions{})
		}(i, h)
	}
	wg.Wait()

	var ok, rejected int
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, core.ErrRejected):
			rejected++
		default:
			t.Errorf("unexpected migration error: %v", err)
		}
	}
	if ok != 1 || rejected != 1 {
		t.Fatalf("got %d successes and %d rejections, want exactly 1 and 1 (errs: %v)", ok, rejected, errs)
	}
	if _, found := dst.VM("dup-vm"); !found {
		t.Error("winning migration did not register the VM")
	}
}

// TestRetryStopsOnRejection: a rejection is terminal — the retry policy
// must not burn attempts (or connections) asking again.
func TestRetryStopsOnRejection(t *testing.T) {
	dst := newHost(t, "beta")
	dst.AddVM(newGuest(t, "vm0", 16)) // already resident: arrivals rejected
	addr := listen(t, dst)

	src := newHost(t, "alpha")
	src.AddVM(newGuest(t, "vm0", 16))

	var dials atomic.Int64
	src.DialFunc = func(ctx context.Context, addr string) (io.ReadWriteCloser, error) {
		dials.Add(1)
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}

	_, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{
		Retry: RetryPolicy{Attempts: 5, Backoff: 10 * time.Millisecond},
	})
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("MigrateTo = %v, want ErrRejected", err)
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("rejected migration dialed %d times, want 1", n)
	}
}

// TestRetryRecoversFromReset injects a mid-stream reset into the first
// attempt; the second attempt on a fresh connection must complete.
func TestRetryRecoversFromReset(t *testing.T) {
	dst := newHost(t, "beta")
	addr := listen(t, dst)
	arrived := make(chan struct{}, 1)
	dst.OnArrival = func(*vm.VM, core.DestResult) { arrived <- struct{}{} }

	src := newHost(t, "alpha")
	v := newGuest(t, "vm0", 64)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	src.AddVM(v)

	var dials atomic.Int64
	src.DialFunc = func(ctx context.Context, addr string) (io.ReadWriteCloser, error) {
		n := dials.Add(1)
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			// First attempt: cut the stream well into round one.
			return core.NewFaultConn(conn, core.FaultConfig{ResetAfterBytes: 20_000}), nil
		}
		return conn, nil
	}

	m, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{
		Retry: RetryPolicy{Attempts: 3, Backoff: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("MigrateTo with retry = %v", err)
	}
	if n := dials.Load(); n != 2 {
		t.Fatalf("migration dialed %d times, want 2 (reset + retry)", n)
	}
	if m.PagesFull == 0 {
		t.Error("successful attempt reported no page traffic")
	}
	select {
	case <-arrived:
	case <-time.After(5 * time.Second):
		t.Fatal("VM never registered at the destination")
	}
}

// TestMigrateOptionsPlumbing drives the new engine knobs end-to-end: a
// mostly-zero guest under Compress must produce compressed pages at the
// destination, and the round cap must hold.
func TestMigrateOptionsPlumbing(t *testing.T) {
	dst := newHost(t, "beta")
	addr := listen(t, dst)
	arrived := make(chan core.DestResult, 1)
	dst.OnArrival = func(_ *vm.VM, res core.DestResult) { arrived <- res }

	src := newHost(t, "alpha")
	// Zero-filled memory: highly compressible, unlike FillRandom content.
	src.AddVM(newGuest(t, "vm0", 64))

	m, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{
		Compress:        true,
		ChecksumWorkers: 4,
		MaxRounds:       2,
		StopThreshold:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.PagesCompressed == 0 {
		t.Error("Compress had no effect: no compressed pages on the wire")
	}
	if m.CompressionSavedBytes <= 0 {
		t.Error("compression reported no savings on zero pages")
	}
	if m.Rounds > 2 {
		t.Errorf("MaxRounds=2 ignored: %d rounds", m.Rounds)
	}
	select {
	case res := <-arrived:
		if res.Metrics.PagesCompressed == 0 {
			t.Error("destination decoded no compressed pages")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("VM never arrived")
	}
}

// TestRetryableClassification pins the terminal/transient split the retry
// loop relies on.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{core.ErrRejected, false},
		{core.ErrProtocol, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{ErrNoSuchVM, false},
		{core.ErrIdleTimeout, true},
		{core.ErrInjectedReset, true},
		{io.ErrUnexpectedEOF, true},
		{errors.New("dial tcp: connection refused"), true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
