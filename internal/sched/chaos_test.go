package sched

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vecycle/internal/checkpoint"
	"vecycle/internal/core"
)

// chaosDialer wires a deterministic fault schedule into a host's outbound
// connections: dial n gets a connection that resets after schedule[n-1]
// bytes written (a negative entry tears the stream at that offset instead
// — a clean prefix, then ErrInjectedTornWrite); dials past the schedule
// are clean. Between dials it waits
// for the destination's previous handler to finish (observed via OnError),
// so each retry sees the salvage state the prior failure left behind —
// without that barrier a fast retry races the destination's still-pending
// arrival reservation and is rejected as a duplicate.
type chaosDialer struct {
	t        *testing.T
	schedule []int64
	dials    atomic.Int64
	handled  *atomic.Int64
}

func (c *chaosDialer) dial(ctx context.Context, addr string) (io.ReadWriteCloser, error) {
	n := c.dials.Add(1)
	deadline := time.Now().Add(10 * time.Second)
	for c.handled.Load() < n-1 {
		if time.Now().After(deadline) {
			c.t.Errorf("destination never finished handling attempt %d", n-1)
			break
		}
		time.Sleep(time.Millisecond)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if int(n) <= len(c.schedule) {
		b := c.schedule[n-1]
		cfg := core.FaultConfig{ResetAfterBytes: b}
		if b < 0 {
			cfg = core.FaultConfig{TornWriteAfterBytes: -b}
		}
		return core.NewFaultConn(conn, cfg), nil
	}
	return conn, nil
}

// TestChaosKillEveryTurn is the chaos gate: one migration whose wire is
// killed at every protocol turn in sequence — inside the hello, right
// after it, during the announcement exchange, and at three points deep in
// round one — must converge through the retry chain, with each resumed
// attempt reusing at least as much salvaged progress as the one before and
// the final attempt resending strictly fewer full pages than a from-zero
// migration would.
func TestChaosKillEveryTurn(t *testing.T) {
	// Page-range frames coalesce up to 256 full pages (~1 MiB) per frame,
	// and a cut mid-frame installs nothing — so the guest spans several
	// frames and the round-one cuts fall at 1/2/4 complete frames to
	// exercise increasing salvage. The 2.4 MB cut is a torn write (the
	// stream dies mid-frame after a clean prefix) rather than a reset, so
	// the chaos gate covers both transport fault shapes.
	const pages = 2048
	dst := newHost(t, "beta")
	var handled atomic.Int64
	dst.OnError = func(error) { handled.Add(1) }
	addr := listen(t, dst)

	src := newHost(t, "alpha")
	t.Cleanup(func() { src.Close() })
	v := newGuest(t, "vm0", pages)
	if err := v.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	src.AddVM(v)

	cd := &chaosDialer{
		t:        t,
		schedule: []int64{10, 30, 5_000, 1_200_000, -2_400_000, 4_800_000},
		handled:  &handled,
	}
	src.DialFunc = cd.dial

	type outcome struct {
		m   core.Metrics
		err error
	}
	var attempts []outcome
	m, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{
		Recycle: true,
		Retry:   RetryPolicy{Attempts: len(cd.schedule) + 1, Backoff: time.Millisecond},
		OnAttempt: func(attempt int, m core.Metrics, err error) {
			attempts = append(attempts, outcome{m, err})
		},
	})
	if err != nil {
		t.Fatalf("retry chain did not converge: %v (after %d attempts)", err, len(attempts))
	}
	if got, want := len(attempts), len(cd.schedule)+1; got != want {
		t.Fatalf("ran %d attempts, want %d", got, want)
	}
	for i, a := range attempts[:len(attempts)-1] {
		if a.err == nil {
			t.Fatalf("attempt %d survived its scheduled cut", i+1)
		}
	}
	if last := attempts[len(attempts)-1]; last.err != nil {
		t.Fatalf("final attempt failed: %v", last.err)
	}

	// Convergence direction: later attempts reuse at least as much salvaged
	// progress (pages answered by checksum instead of content) as earlier
	// ones, and the final attempt resends strictly fewer full pages than the
	// from-zero transfer attempt 1 was performing.
	for i := 1; i < len(attempts); i++ {
		if attempts[i].m.PagesSum < attempts[i-1].m.PagesSum {
			t.Errorf("attempt %d reused %d sum-pages, less than attempt %d's %d",
				i+1, attempts[i].m.PagesSum, i, attempts[i-1].m.PagesSum)
		}
	}
	if m.PagesFull >= pages {
		t.Errorf("final attempt sent %d full pages; salvage bought nothing", m.PagesFull)
	}
	if m.PagesSum == 0 {
		t.Error("final attempt reused no salvaged pages")
	}

	// The arrival registers asynchronously; then the stale partial image
	// must be superseded (dropped — SaveArrivals is off).
	waitFor(t, func() bool { _, ok := dst.VM("vm0"); return ok }, "arrival never registered")
	waitFor(t, func() bool { _, ok := dst.Store().Entry("vm0"); return !ok },
		"stale salvage image not dropped after successful arrival")

	var sb strings.Builder
	if err := dst.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`vecycle_salvage_total{host="beta",outcome="written"}`,
		`vecycle_salvage_total{host="beta",outcome="resumed"}`,
		`vecycle_salvage_total{host="beta",outcome="superseded"} 1`,
		`vecycle_salvage_pages_total{host="beta"}`,
		`vecycle_salvage_bytes_avoided_total{host="beta"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("destination metrics missing %s", want)
		}
	}
	sb.Reset()
	if err := src.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `vecycle_salvage_total{host="alpha",outcome="resumed"}`) {
		t.Error("source metrics missing the resumed salvage outcome")
	}
}

// waitFor polls cond with a deadline, for destination-side effects that
// complete asynchronously after MigrateTo returns.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosNoSalvage: with Host.NoSalvage the same mid-stream kill leaves
// no partial entry behind.
func TestChaosNoSalvage(t *testing.T) {
	dst := newHost(t, "beta")
	dst.NoSalvage = true
	var handled atomic.Int64
	dst.OnError = func(error) { handled.Add(1) }
	addr := listen(t, dst)

	src := newHost(t, "alpha")
	t.Cleanup(func() { src.Close() })
	v := newGuest(t, "vm0", 128)
	if err := v.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	src.AddVM(v)
	cd := &chaosDialer{t: t, schedule: []int64{120_000}, handled: &handled}
	src.DialFunc = cd.dial

	if _, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{Recycle: true}); err == nil {
		t.Fatal("cut migration succeeded")
	}
	waitFor(t, func() bool { return handled.Load() >= 1 }, "destination handler never finished")
	if _, ok := dst.Store().Entry("vm0"); ok {
		t.Error("NoSalvage destination still wrote a store entry")
	}
}

// TestSalvageSupersededBySaveArrivals: with SaveArrivals the successful
// retry overwrites the partial image with a complete arrival checkpoint
// instead of dropping it.
func TestSalvageSupersededBySaveArrivals(t *testing.T) {
	dst := newHost(t, "beta")
	dst.SaveArrivals = true
	var handled atomic.Int64
	dst.OnError = func(error) { handled.Add(1) }
	addr := listen(t, dst)

	src := newHost(t, "alpha")
	t.Cleanup(func() { src.Close() })
	v := newGuest(t, "vm0", 128)
	if err := v.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	src.AddVM(v)
	cd := &chaosDialer{t: t, schedule: []int64{120_000}, handled: &handled}
	src.DialFunc = cd.dial

	if _, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{
		Recycle: true,
		Retry:   RetryPolicy{Attempts: 2, Backoff: time.Millisecond},
	}); err != nil {
		t.Fatalf("retry did not converge: %v", err)
	}
	waitFor(t, func() bool {
		info, ok := dst.Store().Entry("vm0")
		return ok && info.State == checkpoint.EntryComplete
	}, "arrival image never superseded the partial entry")
}

// TestRetryMaxBackoffCap pins the RetryPolicy.MaxBackoff contract: however
// large the retry count or multiplier, the computed delay (jitter
// included) never exceeds the cap and never goes negative.
func TestRetryMaxBackoffCap(t *testing.T) {
	p := RetryPolicy{Backoff: time.Second, Multiplier: 1e9, MaxBackoff: 50 * time.Millisecond}
	for _, retry := range []int{0, 1, 2, 10, 100, 10_000} {
		if d := p.delay(retry); d < 0 || d > p.MaxBackoff {
			t.Errorf("delay(%d) = %v, want within [0, %v]", retry, d, p.MaxBackoff)
		}
	}
	// Defaults: 5s cap, even at retry counts whose uncapped exponential
	// would overflow time.Duration.
	var q RetryPolicy
	for _, retry := range []int{0, 63, 1024} {
		if d := q.delay(retry); d < 0 || d > 5*time.Second {
			t.Errorf("default delay(%d) = %v, want within [0, 5s]", retry, d)
		}
	}
}

// TestCtxErrorTerminalMidStream pins the cancellation contract: whether
// the cancel surfaces mid-stream (as a transport error on a dying
// connection) or mid-backoff, MigrateTo returns the context's own error
// and does not burn retry attempts.
func TestCtxErrorTerminalMidStream(t *testing.T) {
	dst := newHost(t, "beta")
	addr := listen(t, dst)
	src := newHost(t, "alpha")
	t.Cleanup(func() { src.Close() })
	v := newGuest(t, "vm0", 64)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	src.AddVM(v)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var dials atomic.Int64
	src.DialFunc = func(ctx context.Context, addr string) (io.ReadWriteCloser, error) {
		dials.Add(1)
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		// The caller gives up while the stream is in flight; the connection
		// dies shortly after, so the attempt's own error is a reset, not a
		// context error.
		cancel()
		return core.NewFaultConn(conn, core.FaultConfig{ResetAfterBytes: 10_000}), nil
	}

	attempts := 0
	_, err := src.MigrateTo(ctx, addr, "vm0", MigrateOptions{
		Recycle:   true,
		Retry:     RetryPolicy{Attempts: 5, Backoff: time.Millisecond},
		OnAttempt: func(int, core.Metrics, error) { attempts++ },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MigrateTo = %v, want context.Canceled", err)
	}
	if attempts != 1 {
		t.Errorf("ran %d attempts after cancellation, want 1", attempts)
	}
	if n := dials.Load(); n != 1 {
		t.Errorf("dialed %d times after cancellation, want 1", n)
	}
}
