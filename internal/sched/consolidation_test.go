package sched

import (
	"testing"
	"time"
)

func TestConsolidationPolicyValidate(t *testing.T) {
	bad := []ConsolidationPolicy{
		{WakeLevel: 0.2, SleepLevel: 0.5},               // inverted
		{WakeLevel: 1.5, SleepLevel: 0.1},               // out of range
		{WakeLevel: 0.5, SleepLevel: -0.1},              // out of range
		{WakeLevel: 0.5, SleepLevel: 0.1, MinQuiet: -1}, // negative dwell
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d accepted: %+v", i, p)
		}
	}
	good := ConsolidationPolicy{WakeLevel: 0.5, SleepLevel: 0.1, MinQuiet: time.Hour}
	if err := good.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
}

// step builds an ascending 30-minute sample grid.
func sampleGrid(n int) []time.Time {
	t0 := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	out := make([]time.Time, n)
	for i := range out {
		out[i] = t0.Add(time.Duration(i) * 30 * time.Minute)
	}
	return out
}

func TestConsolidationPlanWakeSleepCycle(t *testing.T) {
	p := ConsolidationPolicy{WakeLevel: 0.5, SleepLevel: 0.1, MinQuiet: time.Hour}
	times := sampleGrid(20)
	// Quiet for 5 samples, busy for 5, quiet for 10.
	level := func(ts time.Time) float64 {
		i := int(ts.Sub(times[0]) / (30 * time.Minute))
		if i >= 5 && i < 10 {
			return 0.9
		}
		return 0.0
	}
	events, err := p.Plan(times, level)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (wake + sleep): %+v", len(events), events)
	}
	if events[0].Direction != ToWorkstation {
		t.Errorf("first event = %v, want wake", events[0].Direction)
	}
	if !events[0].At.Equal(times[5]) {
		t.Errorf("wake at %v, want %v", events[0].At, times[5])
	}
	if events[1].Direction != ToServer {
		t.Errorf("second event = %v, want sleep", events[1].Direction)
	}
	// MinQuiet of 1 h = two 30-minute samples after the first quiet one.
	if events[1].At.Before(times[12]) {
		t.Errorf("sleep at %v, too early for 1h hysteresis", events[1].At)
	}
}

func TestConsolidationPlanHysteresis(t *testing.T) {
	p := ConsolidationPolicy{WakeLevel: 0.5, SleepLevel: 0.1, MinQuiet: 2 * time.Hour}
	times := sampleGrid(12)
	// Busy, then alternating quiet/busy blips: never quiet for 2 h.
	level := func(ts time.Time) float64 {
		i := int(ts.Sub(times[0]) / (30 * time.Minute))
		if i == 0 {
			return 0.9
		}
		if i%3 == 0 {
			return 0.4 // blip above SleepLevel resets the quiet timer
		}
		return 0.0
	}
	events, err := p.Plan(times, level)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[1:] {
		if ev.Direction == ToServer {
			t.Errorf("flapping activity produced a consolidation at %v", ev.At)
		}
	}
}

func TestConsolidationPlanNeverWakes(t *testing.T) {
	p := ConsolidationPolicy{WakeLevel: 0.5, SleepLevel: 0.1, MinQuiet: time.Hour}
	times := sampleGrid(10)
	events, err := p.Plan(times, func(time.Time) float64 { return 0.05 })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("idle VM migrated: %+v", events)
	}
}

func TestConsolidationPlanUnsortedTimes(t *testing.T) {
	p := ConsolidationPolicy{WakeLevel: 0.5, SleepLevel: 0.1}
	times := sampleGrid(3)
	times[1], times[2] = times[2], times[1]
	if _, err := p.Plan(times, func(time.Time) float64 { return 0 }); err == nil {
		t.Error("unsorted samples accepted")
	}
}

func TestConsolidationPlanAlternates(t *testing.T) {
	// Directions must strictly alternate wake/sleep.
	p := ConsolidationPolicy{WakeLevel: 0.5, SleepLevel: 0.1, MinQuiet: 30 * time.Minute}
	times := sampleGrid(48)
	level := func(ts time.Time) float64 {
		i := int(ts.Sub(times[0]) / (30 * time.Minute))
		if (i/6)%2 == 1 {
			return 0.9
		}
		return 0.0
	}
	events, err := p.Plan(times, level)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 4 {
		t.Fatalf("expected several cycles, got %d events", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Direction == events[i-1].Direction {
			t.Errorf("events %d and %d have the same direction", i-1, i)
		}
		if !events[i].At.After(events[i-1].At) {
			t.Errorf("events not chronological at %d", i)
		}
	}
	if events[0].Direction != ToWorkstation {
		t.Error("first event must be a wake")
	}
}
