package sched

import (
	"testing"
	"time"
)

func TestBalancePolicyValidate(t *testing.T) {
	if err := (BalancePolicy{HighWater: 0}).Validate(); err == nil {
		t.Error("zero HighWater accepted")
	}
	if err := (BalancePolicy{HighWater: 1, MaxMovesPerStep: -1}).Validate(); err == nil {
		t.Error("negative budget accepted")
	}
	if err := (BalancePolicy{HighWater: 1}).Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
}

func TestPlanBalanceValidation(t *testing.T) {
	p := BalancePolicy{HighWater: 1}
	times := sampleGrid(2)
	vms := []BalanceVM{{Name: "a", Level: func(time.Time) float64 { return 0 }}}
	if _, err := p.PlanBalance(times, vms, 1, []int{0}); err == nil {
		t.Error("single host accepted")
	}
	if _, err := p.PlanBalance(times, vms, 2, []int{0, 1}); err == nil {
		t.Error("mismatched placements accepted")
	}
	if _, err := p.PlanBalance(times, vms, 2, []int{5}); err == nil {
		t.Error("invalid initial host accepted")
	}
	bad := sampleGrid(3)
	bad[1], bad[2] = bad[2], bad[1]
	if _, err := p.PlanBalance(bad, vms, 2, []int{0}); err == nil {
		t.Error("unsorted samples accepted")
	}
}

func TestPlanBalanceRelievesHotspot(t *testing.T) {
	// Two busy VMs start on host 0, host 1 is empty: the balancer must
	// move exactly one of them.
	p := BalancePolicy{HighWater: 1.0}
	times := sampleGrid(1)
	busy := func(time.Time) float64 { return 0.8 }
	vms := []BalanceVM{
		{Name: "a", Level: busy},
		{Name: "b", Level: busy},
	}
	events, err := p.PlanBalance(times, vms, 2, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1: %+v", len(events), events)
	}
	if events[0].From != 0 || events[0].To != 1 {
		t.Errorf("event = %+v, want 0→1", events[0])
	}
}

func TestPlanBalanceNoMoveWhenBalanced(t *testing.T) {
	p := BalancePolicy{HighWater: 1.0}
	times := sampleGrid(10)
	calm := func(time.Time) float64 { return 0.3 }
	vms := []BalanceVM{
		{Name: "a", Level: calm},
		{Name: "b", Level: calm},
	}
	events, err := p.PlanBalance(times, vms, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("balanced cluster migrated: %+v", events)
	}
}

func TestPlanBalanceNoThrashWhenGloballyOverloaded(t *testing.T) {
	// Every host over the watermark and no move improves anything: the
	// balancer must not bounce VMs around.
	p := BalancePolicy{HighWater: 0.5}
	times := sampleGrid(10)
	busy := func(time.Time) float64 { return 0.9 }
	vms := []BalanceVM{
		{Name: "a", Level: busy},
		{Name: "b", Level: busy},
	}
	events, err := p.PlanBalance(times, vms, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("globally overloaded cluster thrashed: %+v", events)
	}
}

func TestPlanBalanceBudget(t *testing.T) {
	// Three busy VMs on host 0; per-step budget 1 forces the relief to
	// spread over steps.
	p := BalancePolicy{HighWater: 0.5, MaxMovesPerStep: 1}
	times := sampleGrid(3)
	busy := func(time.Time) float64 { return 0.4 }
	vms := []BalanceVM{
		{Name: "a", Level: busy},
		{Name: "b", Level: busy},
		{Name: "c", Level: busy},
	}
	events, err := p.PlanBalance(times, vms, 3, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	perStep := map[time.Time]int{}
	for _, ev := range events {
		perStep[ev.At]++
	}
	for ts, n := range perStep {
		if n > 1 {
			t.Errorf("%d moves at %v, budget is 1", n, ts)
		}
	}
	if len(events) < 2 {
		t.Errorf("expected relief over multiple steps, got %d events", len(events))
	}
}

func TestRevisitFraction(t *testing.T) {
	vms := []BalanceVM{{Name: "a"}, {Name: "b"}}
	initial := []int{0, 1}
	events := []BalanceEvent{
		{VM: "a", From: 0, To: 1}, // first visit to 1
		{VM: "a", From: 1, To: 0}, // revisit (initial host)
		{VM: "a", From: 0, To: 1}, // revisit
		{VM: "b", From: 1, To: 2}, // first visit
	}
	got := RevisitFraction(events, vms, initial)
	if got != 0.5 {
		t.Errorf("RevisitFraction = %v, want 0.5 (2 of 4)", got)
	}
	if RevisitFraction(nil, vms, initial) != 0 {
		t.Error("empty events should yield 0")
	}
}

func TestHostsVisited(t *testing.T) {
	vms := []BalanceVM{{Name: "a"}, {Name: "b"}}
	initial := []int{0, 1}
	events := []BalanceEvent{
		{VM: "a", From: 0, To: 1},
		{VM: "a", From: 1, To: 2},
		{VM: "a", From: 2, To: 0},
	}
	got := HostsVisited(events, vms, initial)
	// a visited {0,1,2} = 3; b stayed on {1} = 1. Sorted: [1, 3].
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("HostsVisited = %v, want [1 3]", got)
	}
}
