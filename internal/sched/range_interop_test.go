package sched

import (
	"context"
	"testing"
	"time"

	"vecycle/internal/core"
	"vecycle/internal/vm"
)

// TestMixedVersionRangeFramesOverTCP drives the host-level range-frame
// negotiation across real TCP in all four support pairings: coalesced
// frames are on the wire only when both ends are new, any old peer silently
// degrades the pair to the per-page v1 stream, and the guest's memory
// survives every pairing byte-for-byte.
func TestMixedVersionRangeFramesOverTCP(t *testing.T) {
	cases := []struct {
		name           string
		srcOld, dstOld bool
		wantRanges     bool
	}{
		{"both-new", false, false, true},
		{"old-source", true, false, false},
		{"old-dest", false, true, false},
		{"both-old", true, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			alpha := newHost(t, "alpha")
			beta := newHost(t, "beta")
			beta.NoRangeFrames = tc.dstOld
			addrB := listen(t, beta)

			// 600 pages of mixed content: long full-page runs for the cold
			// round, so a negotiated pair has something to coalesce.
			v := newGuest(t, "vm0", 600)
			if err := v.FillRandom(0.9); err != nil {
				t.Fatal(err)
			}
			alpha.AddVM(v)
			want := v.Fingerprint64()

			arrived := make(chan core.DestResult, 1)
			beta.OnArrival = func(_ *vm.VM, res core.DestResult) { arrived <- res }

			m, err := alpha.MigrateTo(context.Background(), addrB, "vm0", MigrateOptions{
				NoRangeFrames: tc.srcOld,
			})
			if err != nil {
				t.Fatal(err)
			}
			var res core.DestResult
			select {
			case res = <-arrived:
			case <-time.After(5 * time.Second):
				t.Fatal("destination never reported the arrival")
			}

			if tc.wantRanges {
				if m.RangeFrames == 0 {
					t.Error("negotiated pair sent no range frames")
				}
			} else if m.RangeFrames != 0 {
				t.Errorf("unnegotiated pair sent %d range frames", m.RangeFrames)
			}
			if res.Metrics.RangeFrames != m.RangeFrames {
				t.Errorf("dest decoded %d range frames, source sent %d",
					res.Metrics.RangeFrames, m.RangeFrames)
			}

			landed, ok := beta.VM("vm0")
			if !ok {
				t.Fatal("VM never landed")
			}
			got := landed.Fingerprint64()
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("page %d differs after %s migration", i, tc.name)
				}
			}
		})
	}
}
