// Package sched provides the deployment layer above the migration engine:
// hosts that accept incoming migrations over TCP, keep per-VM checkpoints
// in a local store, remember the checksums seen on incoming migrations for
// the ping-pong optimization, and the migration schedules of the paper's
// use cases (the 9-to-5 VDI scenario of §4.6, dynamic consolidation).
package sched

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vecycle/internal/checkpoint"
	"vecycle/internal/checksum"
	"vecycle/internal/core"
	"vecycle/internal/disk"
	"vecycle/internal/vm"
)

// dialTimeout bounds connection establishment to a peer host.
const dialTimeout = 10 * time.Second

// ErrNoSuchVM is returned when a named VM is not resident on the host.
var ErrNoSuchVM = errors.New("sched: no such VM on this host")

// Host is one physical machine: resident VMs, a checkpoint store, and an
// optional TCP listener for incoming migrations.
type Host struct {
	name  string
	store *checkpoint.Store

	mu       sync.Mutex
	vms      map[string]*vm.VM
	disks    map[string]*disk.Disk    // VM name → attached block device
	seen     map[string]*checksum.Set // VM name → sums observed on last incoming migration
	arrivals int
	ln       net.Listener
	wg       sync.WaitGroup

	// OnArrival, when non-nil, is invoked after a VM lands on this host.
	OnArrival func(v *vm.VM, res core.DestResult)

	// OnError, when non-nil, observes errors from incoming-migration
	// handlers (which are otherwise only reported to the peer in-protocol).
	OnError func(error)

	// SaveArrivals checkpoints every VM right after it arrives. The arrival
	// image is byte-identical to the checkpoint the sending peer wrote when
	// the VM departed, which makes it a sound delta base for the return
	// migration (see MigrateOptions.UseDelta). Costs one image write per
	// arrival.
	SaveArrivals bool
}

// NewHost creates a host whose checkpoint store lives at storeDir.
func NewHost(name, storeDir string) (*Host, error) {
	if name == "" {
		return nil, fmt.Errorf("sched: empty host name")
	}
	store, err := checkpoint.NewStore(storeDir)
	if err != nil {
		return nil, err
	}
	return &Host{
		name:  name,
		store: store,
		vms:   make(map[string]*vm.VM),
		disks: make(map[string]*disk.Disk),
		seen:  make(map[string]*checksum.Set),
	}, nil
}

// Name reports the host name.
func (h *Host) Name() string { return h.name }

// Store exposes the host's checkpoint store.
func (h *Host) Store() *checkpoint.Store { return h.store }

// AddVM places a VM on this host (initial placement, not migration).
func (h *Host) AddVM(v *vm.VM) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.vms[v.Name()] = v
}

// AttachDisk associates a block device with a resident VM. Migrations of
// the VM move the disk first (unshared-storage mode), as QEMU's block
// migration does.
func (h *Host) AttachDisk(d *disk.Disk) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.disks[d.VMName()] = d
}

// Disk looks up the device attached to a VM.
func (h *Host) Disk(vmName string) (*disk.Disk, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.disks[vmName]
	return d, ok
}

// VM looks up a resident VM.
func (h *Host) VM(name string) (*vm.VM, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.vms[name]
	return v, ok
}

// VMNames lists resident VMs.
func (h *Host) VMNames() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.vms))
	for n := range h.vms {
		names = append(names, n)
	}
	return names
}

// Listen starts accepting incoming migrations on addr (e.g.
// "127.0.0.1:0"). The returned address carries the bound port.
func (h *Host) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("sched: listen: %w", err)
	}
	h.mu.Lock()
	h.ln = ln
	h.mu.Unlock()
	h.wg.Add(1)
	go h.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and waits for in-flight migrations.
func (h *Host) Close() error {
	h.mu.Lock()
	ln := h.ln
	h.ln = nil
	h.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	h.wg.Wait()
	return err
}

func (h *Host) acceptLoop(ln net.Listener) {
	defer h.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer conn.Close()
			// Errors are also reported to the peer in-protocol.
			if err := h.handleIncoming(conn); err != nil && h.OnError != nil {
				h.OnError(err)
			}
		}()
	}
}

// handleIncoming accepts one migration: it creates the destination VM from
// the session parameters, runs the merge, and registers the VM as resident.
func (h *Host) handleIncoming(conn net.Conn) error {
	session, err := core.Accept(conn)
	if err != nil {
		return err
	}
	h.mu.Lock()
	_, resident := h.vms[session.VMName()]
	if disk.IsDiskName(session.VMName()) {
		base := session.VMName()[:len(session.VMName())-len(disk.DiskSuffix)]
		_, resident = h.disks[base]
	}
	h.mu.Unlock()
	if resident {
		return session.Reject(fmt.Sprintf("VM %q already resident on %s", session.VMName(), h.name))
	}
	if session.IsPostCopy() {
		return h.handlePostCopy(session)
	}
	// The seed only drives the guest's future workload randomness (its
	// memory is about to be overwritten by the migration), but it must
	// differ across hosts and across arrivals: a host resuming the same VM
	// with a repeated seed would "randomly" write identical content, which
	// then spuriously matches checkpoints.
	h.mu.Lock()
	h.arrivals++
	seed := int64(fnv64(fmt.Sprintf("%s/%s/%d", h.name, session.VMName(), h.arrivals)))
	h.mu.Unlock()
	dst, err := vm.New(vm.Config{Name: session.VMName(), MemBytes: session.MemBytes(), Seed: seed})
	if err != nil {
		return session.Reject(err.Error())
	}
	res, err := session.Run(dst, core.DestOptions{
		Store:         h.store,
		TrackIncoming: true,
	})
	if err != nil {
		return err
	}
	if h.SaveArrivals {
		if err := h.store.Save(dst); err != nil {
			return err
		}
	}
	if disk.IsDiskName(dst.Name()) {
		d, err := disk.FromBacking(dst)
		if err != nil {
			return err
		}
		h.mu.Lock()
		h.disks[d.VMName()] = d
		h.mu.Unlock()
		return nil
	}
	h.mu.Lock()
	h.vms[dst.Name()] = dst
	h.seen[dst.Name()] = res.SeenSums
	h.mu.Unlock()
	if h.OnArrival != nil {
		h.OnArrival(dst, res)
	}
	return nil
}

// handlePostCopy completes an incoming post-copy migration.
func (h *Host) handlePostCopy(session *core.IncomingSession) error {
	h.mu.Lock()
	h.arrivals++
	seed := int64(fnv64(fmt.Sprintf("%s/%s/%d", h.name, session.VMName(), h.arrivals)))
	h.mu.Unlock()
	dst, err := vm.New(vm.Config{Name: session.VMName(), MemBytes: session.MemBytes(), Seed: seed})
	if err != nil {
		return session.Reject(err.Error())
	}
	res, err := session.RunPostCopy(dst, core.PostCopyDestOptions{Store: h.store})
	if err != nil {
		return err
	}
	if h.SaveArrivals {
		if err := h.store.Save(dst); err != nil {
			return err
		}
	}
	h.mu.Lock()
	h.vms[dst.Name()] = dst
	h.mu.Unlock()
	if h.OnArrival != nil {
		h.OnArrival(dst, core.DestResult{
			Metrics:        res.Metrics.Metrics,
			UsedCheckpoint: res.UsedCheckpoint,
		})
	}
	return nil
}

// PostCopyTo moves the named VM to the peer at addr using the post-copy
// protocol. The caller must have stopped the guest workload: post-copy
// transfers a frozen state, and the guest logically resumes at the
// destination the moment the manifest is resolved.
func (h *Host) PostCopyTo(addr, vmName string) (core.PostCopyMetrics, error) {
	h.mu.Lock()
	v, ok := h.vms[vmName]
	h.mu.Unlock()
	if !ok {
		return core.PostCopyMetrics{}, fmt.Errorf("%w: %q", ErrNoSuchVM, vmName)
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return core.PostCopyMetrics{}, fmt.Errorf("sched: dial %s: %w", addr, err)
	}
	defer conn.Close()
	m, err := core.PostCopySource(conn, v, core.PostCopySourceOptions{})
	if err != nil {
		return m, err
	}
	if err := h.store.Save(v); err != nil {
		return m, fmt.Errorf("sched: checkpoint after migration: %w", err)
	}
	h.mu.Lock()
	delete(h.vms, vmName)
	delete(h.seen, vmName)
	h.mu.Unlock()
	return m, nil
}

// fnv64 hashes a string with FNV-1a.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// MigrateOptions tunes an outgoing migration from a host.
type MigrateOptions struct {
	// Recycle enables checkpoint-assisted mode (default in VeCycle
	// deployments; disable for a baseline QEMU-style migration).
	Recycle bool
	// UsePingPong consults the checksums seen when this VM last arrived
	// here, skipping the destination's announcement (§3.2). Only sound when
	// the destination is the host the VM arrived from and its checkpoint is
	// unchanged since.
	UsePingPong bool
	// KeepCheckpoint writes a local checkpoint after the VM leaves (the
	// core of VeCycle). Disable to model a host with no spare disk.
	KeepCheckpoint bool
	// UseDelta sends partially-changed pages as XBZRLE deltas against this
	// host's stored checkpoint of the VM. The optimization is *optimistic*:
	// it assumes the local image equals the destination's checkpoint, which
	// holds in two-host ping-pong with SaveArrivals + KeepCheckpoint but
	// can go stale when the VM roams more hosts. A stale base is caught by
	// the destination's mandatory per-delta verification; MigrateTo then
	// retries the migration once without deltas.
	UseDelta bool
	// Pause and Resume bracket the stop-and-copy phase, as in
	// core.SourceOptions.
	Pause  func()
	Resume func()
}

// MigrateTo live-migrates the named resident VM to the peer host listening
// at addr. On success the VM is no longer resident here and, when
// KeepCheckpoint is set, a checkpoint of its final state is stored locally.
func (h *Host) MigrateTo(addr, vmName string, opts MigrateOptions) (core.Metrics, error) {
	h.mu.Lock()
	v, ok := h.vms[vmName]
	var known *checksum.Set
	if opts.UsePingPong {
		known = h.seen[vmName]
	}
	h.mu.Unlock()
	if !ok {
		return core.Metrics{}, fmt.Errorf("%w: %q", ErrNoSuchVM, vmName)
	}

	var deltaBase core.PageProvider
	if opts.UseDelta && h.store.Has(vmName) {
		cp, err := h.store.Restore(vmName, checksum.MD5, nil)
		if err != nil {
			return core.Metrics{}, fmt.Errorf("sched: open delta base: %w", err)
		}
		defer cp.Close()
		deltaBase = cp
	}

	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return core.Metrics{}, fmt.Errorf("sched: dial %s: %w", addr, err)
	}
	defer conn.Close()

	// Unshared storage: the block device moves first, through the same
	// engine on its own connection, so the guest's final rounds overlap
	// only with RAM streaming (QEMU's block-then-RAM ordering).
	h.mu.Lock()
	d := h.disks[vmName]
	h.mu.Unlock()
	if d != nil {
		diskConn, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err != nil {
			return core.Metrics{}, fmt.Errorf("sched: dial %s for disk: %w", addr, err)
		}
		_, derr := core.MigrateSource(diskConn, d.Backing(), core.SourceOptions{Recycle: opts.Recycle})
		diskConn.Close()
		if derr != nil {
			return core.Metrics{}, fmt.Errorf("sched: disk migration: %w", derr)
		}
		if opts.KeepCheckpoint {
			if err := h.store.Save(d.Backing()); err != nil {
				return core.Metrics{}, fmt.Errorf("sched: disk checkpoint: %w", err)
			}
		}
	}

	attempt := func(c net.Conn, base core.PageProvider) (core.Metrics, error) {
		return core.MigrateSource(c, v, core.SourceOptions{
			Recycle:       opts.Recycle,
			KnownDestSums: known,
			DeltaBase:     base,
			Pause:         opts.Pause,
			Resume:        opts.Resume,
		})
	}
	m, err := attempt(conn, deltaBase)
	if err != nil && deltaBase != nil {
		// Delta encoding is optimistic: if this host's checkpoint mirror
		// went stale (the VM visited the destination via a third host),
		// the destination's mandatory per-delta verification aborts the
		// stream. Retry once on a fresh connection without deltas.
		if h.OnError != nil {
			h.OnError(fmt.Errorf("sched: delta migration of %q to %s failed (%v); retrying without deltas", vmName, addr, err))
		}
		retryConn, dialErr := net.DialTimeout("tcp", addr, dialTimeout)
		if dialErr != nil {
			return m, fmt.Errorf("sched: redial %s: %w", addr, dialErr)
		}
		m, err = attempt(retryConn, nil)
		retryConn.Close()
	}
	if err != nil {
		return m, err
	}

	// The VM now runs at the destination. Write the local checkpoint —
	// after the migration, off the critical path, as in the paper.
	if opts.KeepCheckpoint {
		if err := h.store.Save(v); err != nil {
			return m, fmt.Errorf("sched: checkpoint after migration: %w", err)
		}
	}
	h.mu.Lock()
	delete(h.vms, vmName)
	delete(h.disks, vmName)
	delete(h.seen, vmName)
	h.mu.Unlock()
	return m, nil
}
