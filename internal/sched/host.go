// Package sched provides the deployment layer above the migration engine:
// hosts that accept incoming migrations over TCP, keep per-VM checkpoints
// in a local store, remember the checksums seen on incoming migrations for
// the ping-pong optimization (§3.2), and the migration schedules of the
// paper's use cases (§2.2): the 9-to-5 VDI scenario evaluated in §4.6 and
// Figure 8, dynamic consolidation, and hot-spot balancing.
//
// A Host stands in for the paper's migration manager on each physical
// machine (the QEMU-external daemon of §3.1; see DESIGN.md §2 for what the
// reproduction substitutes for the hypervisor). It also carries the
// transport hardening (idle deadlines, retry/backoff, delta fallback) and
// the observability seam: every migration, either role, is folded into an
// internal/obs registry and trace log, optionally served over HTTP by
// ListenOps (docs/OBSERVABILITY.md).
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"vecycle/internal/checkpoint"
	"vecycle/internal/checksum"
	"vecycle/internal/core"
	"vecycle/internal/disk"
	"vecycle/internal/faultfs"
	"vecycle/internal/obs"
	"vecycle/internal/vm"
)

// dialTimeout bounds connection establishment to a peer host.
const dialTimeout = 10 * time.Second

// DefaultIdleTimeout is the per-I/O idle budget applied to migration
// connections when Host.IdleTimeout is zero. Any single read or write that
// makes no progress for this long fails the migration instead of wedging
// the handler (and with it Host.Close) forever.
const DefaultIdleTimeout = 2 * time.Minute

// ErrNoSuchVM is returned when a named VM is not resident on the host.
var ErrNoSuchVM = errors.New("sched: no such VM on this host")

// Host is one physical machine: resident VMs, a checkpoint store, and an
// optional TCP listener for incoming migrations.
type Host struct {
	name  string
	store *checkpoint.Store

	// lifeCtx is cancelled by Close, aborting every in-flight incoming
	// handler so Close returns promptly even with a wedged peer.
	lifeCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	vms      map[string]*vm.VM
	disks    map[string]*disk.Disk    // VM name → attached block device
	seen     map[string]*checksum.Set // VM name → sums observed on last incoming migration
	pending  map[string]bool          // arrivals in flight, reserved until registered
	arrivals int
	ln       net.Listener
	opsSrv   *obs.Server // optional ops HTTP listener (ListenOps)
	wg       sync.WaitGroup

	// obs folds every migration into a metrics registry and trace log
	// (see obs.go); always non-nil after NewHost.
	obs *hostObs

	// OnArrival, when non-nil, is invoked after a VM lands on this host.
	OnArrival func(v *vm.VM, res core.DestResult)

	// OnError, when non-nil, observes errors from incoming-migration
	// handlers (which are otherwise only reported to the peer in-protocol)
	// and retry/backoff decisions on the outgoing side.
	OnError func(error)

	// SaveArrivals checkpoints every VM right after it arrives. The arrival
	// image is byte-identical to the checkpoint the sending peer wrote when
	// the VM departed, which makes it a sound delta base for the return
	// migration (see MigrateOptions.UseDelta). Costs one image write per
	// arrival.
	SaveArrivals bool

	// IdleTimeout bounds each individual read and write on migration
	// connections, both accept- and dial-side. Zero selects
	// DefaultIdleTimeout; negative disables the per-I/O deadline.
	IdleTimeout time.Duration

	// Workers sizes the pipelined merge of incoming migrations
	// (core.DestOptions.Workers): frames are decoded on one goroutine while
	// this many workers decompress, verify, and install pages. Values below
	// 1 keep the sequential merge loop.
	Workers int

	// NoCompactAnnounce keeps incoming migrations on the v1 announcement
	// encoding even when the source advertises the compact-announce
	// capability (core.DestOptions.NoCompactAnnounce).
	NoCompactAnnounce bool

	// NoSalvage disables salvage checkpoints: interrupted incoming
	// migrations discard their partially-installed pages instead of
	// persisting them for the next attempt to resume from
	// (core.DestOptions.NoSalvage).
	NoSalvage bool

	// NoRangeFrames refuses the coalesced page-range-frame capability on
	// incoming migrations, keeping the per-page v1 page encoding
	// (core.DestOptions.NoRangeFrames).
	NoRangeFrames bool

	// DialFunc, when non-nil, replaces outbound connection establishment —
	// the seam the fault-injection tests use to interpose a
	// core.FaultConn. nil dials TCP with dialTimeout.
	DialFunc func(ctx context.Context, addr string) (io.ReadWriteCloser, error)

	// TCPDelay re-enables Nagle's algorithm on migration sockets. By default
	// the host calls SetNoDelay(true): the engine already batches frames into
	// megabyte writes, so coalescing in the kernel only adds latency to the
	// small control turns (hello, round acks) the protocol blocks on.
	TCPDelay bool

	// TCPReadBuffer / TCPWriteBuffer, when positive, set SO_RCVBUF /
	// SO_SNDBUF on migration sockets (both accept- and dial-side). Zero
	// keeps the OS defaults (with auto-tuning, usually right on a LAN);
	// sizing them to the bandwidth-delay product helps on high-RTT paths.
	TCPReadBuffer  int
	TCPWriteBuffer int
}

// tuneConn applies the host's socket knobs to a migration connection. It is
// a no-op on anything but a *net.TCPConn (tests dial net.Pipe and fault
// wrappers through DialFunc).
func (h *Host) tuneConn(conn interface{}) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	_ = tc.SetNoDelay(!h.TCPDelay)
	if h.TCPReadBuffer > 0 {
		_ = tc.SetReadBuffer(h.TCPReadBuffer)
	}
	if h.TCPWriteBuffer > 0 {
		_ = tc.SetWriteBuffer(h.TCPWriteBuffer)
	}
}

// NewHost creates a host whose checkpoint store lives at storeDir.
func NewHost(name, storeDir string) (*Host, error) {
	store, err := checkpoint.NewStore(storeDir)
	if err != nil {
		return nil, err
	}
	return NewHostWithStore(name, store)
}

// NewHostWithStore creates a host around an already-open checkpoint store —
// the seam the storage chaos tests use to run a host against a store built
// on an injected filesystem (checkpoint.NewStoreFS + faultfs).
func NewHostWithStore(name string, store *checkpoint.Store) (*Host, error) {
	if name == "" {
		return nil, fmt.Errorf("sched: empty host name")
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &Host{
		name:    name,
		store:   store,
		lifeCtx: ctx,
		cancel:  cancel,
		vms:     make(map[string]*vm.VM),
		disks:   make(map[string]*disk.Disk),
		seen:    make(map[string]*checksum.Set),
		pending: make(map[string]bool),
	}
	h.obs = newHostObs(h, obs.NewRegistry(), obs.NewTraceLog(0))
	return h, nil
}

// Name reports the host name.
func (h *Host) Name() string { return h.name }

// Store exposes the host's checkpoint store.
func (h *Host) Store() *checkpoint.Store { return h.store }

// SetNoSidecar disables fingerprint sidecars in the host's checkpoint
// store: Save stops writing them and Restore rehashes the image instead of
// consulting one. The warm-start escape hatch behind the -no-sidecar flag.
func (h *Host) SetNoSidecar(on bool) { h.store.SetNoSidecar(on) }

// AddVM places a VM on this host (initial placement, not migration).
func (h *Host) AddVM(v *vm.VM) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.vms[v.Name()] = v
}

// AttachDisk associates a block device with a resident VM. Migrations of
// the VM move the disk first (unshared-storage mode), as QEMU's block
// migration does.
func (h *Host) AttachDisk(d *disk.Disk) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.disks[d.VMName()] = d
}

// Disk looks up the device attached to a VM.
func (h *Host) Disk(vmName string) (*disk.Disk, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.disks[vmName]
	return d, ok
}

// VM looks up a resident VM.
func (h *Host) VM(name string) (*vm.VM, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.vms[name]
	return v, ok
}

// VMNames lists resident VMs.
func (h *Host) VMNames() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.vms))
	for n := range h.vms {
		names = append(names, n)
	}
	return names
}

// idle resolves the host's per-I/O idle budget.
func (h *Host) idle() time.Duration {
	return resolveIdle(h.IdleTimeout)
}

func resolveIdle(d time.Duration) time.Duration {
	switch {
	case d < 0:
		return 0 // disabled
	case d == 0:
		return DefaultIdleTimeout
	default:
		return d
	}
}

// dial establishes an outbound migration connection.
func (h *Host) dial(ctx context.Context, addr string) (io.ReadWriteCloser, error) {
	if h.DialFunc != nil {
		return h.DialFunc(ctx, addr)
	}
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sched: dial %s: %w", addr, err)
	}
	h.tuneConn(conn)
	return conn, nil
}

// Listen starts accepting incoming migrations on addr (e.g.
// "127.0.0.1:0"). The returned address carries the bound port.
func (h *Host) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("sched: listen: %w", err)
	}
	h.mu.Lock()
	h.ln = ln
	h.mu.Unlock()
	h.wg.Add(1)
	go h.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener, aborts in-flight incoming migrations, and waits
// for their handlers. A handler blocked on a stalled peer is unblocked by
// the cancellation, so Close returns promptly rather than waiting out the
// peer.
func (h *Host) Close() error {
	h.cancel()
	h.mu.Lock()
	ln := h.ln
	h.ln = nil
	opsSrv := h.opsSrv
	h.opsSrv = nil
	h.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	if opsSrv != nil {
		opsSrv.Close()
	}
	h.wg.Wait()
	return err
}

func (h *Host) acceptLoop(ln net.Listener) {
	defer h.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer conn.Close()
			h.tuneConn(conn)
			// Per-I/O deadlines so a hung peer cannot wedge the handler;
			// the host context aborts the connection on Close.
			dc := core.NewDeadlineConn(conn, h.idle())
			// Errors are also reported to the peer in-protocol.
			if err := h.handleIncoming(h.lifeCtx, dc, conn.RemoteAddr().String()); err != nil && h.OnError != nil {
				h.OnError(err)
			}
		}()
	}
}

// reserveArrival claims the VM name for one in-flight incoming migration.
// It reports false when the VM is already resident or already arriving —
// the duplicate-arrival race is decided here, under one lock acquisition.
func (h *Host) reserveArrival(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, resident := h.vms[name]
	if disk.IsDiskName(name) {
		base := name[:len(name)-len(disk.DiskSuffix)]
		if _, ok := h.disks[base]; ok {
			resident = true
		}
	}
	if resident || h.pending[name] {
		return false
	}
	h.pending[name] = true
	return true
}

func (h *Host) releaseArrival(name string) {
	h.mu.Lock()
	delete(h.pending, name)
	h.mu.Unlock()
}

// handleIncoming accepts one migration: it creates the destination VM from
// the session parameters, runs the merge, and registers the VM as resident.
func (h *Host) handleIncoming(ctx context.Context, conn io.ReadWriter, peer string) error {
	session, err := core.Accept(ctx, conn)
	if err != nil {
		return err
	}
	name := session.VMName()
	rec := h.obs.begin("dest", name, peer)
	if !h.reserveArrival(name) {
		rerr := fmt.Errorf("%w: VM %q already resident on %s", core.ErrRejected, name, h.name)
		h.obs.finish(rec, "dest", name, core.Metrics{}, rerr)
		return session.Reject(fmt.Sprintf("VM %q already resident on %s", name, h.name))
	}
	defer h.releaseArrival(name)
	if session.IsPostCopy() {
		return h.handlePostCopy(ctx, session, rec)
	}
	res, err := h.runIncoming(ctx, session, rec)
	h.obs.finish(rec, "dest", name, res.Metrics, err)
	return err
}

// runIncoming is the body of handleIncoming for the pre-copy path, split
// out so every return funnels through one obs.finish call.
func (h *Host) runIncoming(ctx context.Context, session *core.IncomingSession, rec *obs.Recorder) (core.DestResult, error) {
	name := session.VMName()
	// The seed only drives the guest's future workload randomness (its
	// memory is about to be overwritten by the migration), but it must
	// differ across hosts and across arrivals: a host resuming the same VM
	// with a repeated seed would "randomly" write identical content, which
	// then spuriously matches checkpoints.
	h.mu.Lock()
	h.arrivals++
	seed := int64(fnv64(fmt.Sprintf("%s/%s/%d", h.name, name, h.arrivals)))
	h.mu.Unlock()
	dst, err := vm.New(vm.Config{Name: name, MemBytes: session.MemBytes(), Seed: seed})
	if err != nil {
		return core.DestResult{}, session.Reject(err.Error())
	}
	res, err := session.Run(ctx, dst, core.DestOptions{
		Store:             h.store,
		TrackIncoming:     true,
		Workers:           h.Workers,
		NoCompactAnnounce: h.NoCompactAnnounce,
		NoRangeFrames:     h.NoRangeFrames,
		NoSalvage:         h.NoSalvage,
		OnEvent:           h.obs.eventFunc(rec, "dest"),
	})
	if err != nil {
		return res, err
	}
	if res.ResumedFromPartial {
		// The resumed pages crossed the wire as page-sums instead of full
		// pages; attribute the saving to the salvage image.
		h.obs.salvageAvoided.With(h.name).Add(float64(
			int64(res.Metrics.PagesReusedInPlace+res.Metrics.PagesReusedFromDisk) * vm.PageSize))
	}
	if !h.SaveArrivals {
		// The arrival succeeded, so any salvage image for this VM is now
		// stale. SaveArrivals overwrites it with a complete checkpoint below;
		// without it, drop the partial so later bootstraps don't use it.
		if info, ok := h.store.Entry(name); ok && info.State == checkpoint.EntryPartial {
			if rerr := h.store.Remove(name); rerr == nil {
				h.obs.salvage.With(h.name, "superseded").Inc()
				rec.Event(obs.Event{Kind: core.EventSalvage, Detail: "superseded"})
			}
		}
	}
	if h.SaveArrivals {
		// The merge recorded every installed page's digest (TrackIncoming is
		// always on here), so the save skips its matching rehash pass. The
		// persist is best-effort: the VM has fully arrived, so a failed save
		// degrades (the next migration runs cold) instead of failing it.
		if h.saveOrDegrade(core.StageSaveArrivals, rec, func() error {
			return saveWithTable(h.store, dst, res.PageSums)
		}) {
			rec.Event(obs.Event{Kind: "checkpoint-saved", Detail: "arrival image"})
		}
	}
	if disk.IsDiskName(dst.Name()) {
		d, err := disk.FromBacking(dst)
		if err != nil {
			return res, err
		}
		h.mu.Lock()
		if _, dup := h.disks[d.VMName()]; dup {
			h.mu.Unlock()
			return res, fmt.Errorf("sched: disk for %q became resident on %s during migration; dropping duplicate arrival", d.VMName(), h.name)
		}
		h.disks[d.VMName()] = d
		h.mu.Unlock()
		return res, nil
	}
	if err := h.register(dst, res.SeenSums); err != nil {
		return res, err
	}
	if h.OnArrival != nil {
		h.OnArrival(dst, res)
	}
	return res, nil
}

// register makes an arrived VM resident, re-checking residency under the
// same lock acquisition as the insert: two racing arrivals of one VM must
// never silently overwrite each other, whichever registers second loses.
func (h *Host) register(dst *vm.VM, sums *checksum.Set) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.vms[dst.Name()]; dup {
		return fmt.Errorf("sched: VM %q became resident on %s during migration; dropping duplicate arrival", dst.Name(), h.name)
	}
	h.vms[dst.Name()] = dst
	h.seen[dst.Name()] = sums
	return nil
}

// handlePostCopy completes an incoming post-copy migration.
func (h *Host) handlePostCopy(ctx context.Context, session *core.IncomingSession, rec *obs.Recorder) error {
	res, err := h.runPostCopy(ctx, session, rec)
	h.obs.finishPostCopy(rec, "dest", session.VMName(), res.Metrics, err)
	return err
}

func (h *Host) runPostCopy(ctx context.Context, session *core.IncomingSession, rec *obs.Recorder) (core.PostCopyDestResult, error) {
	h.mu.Lock()
	h.arrivals++
	seed := int64(fnv64(fmt.Sprintf("%s/%s/%d", h.name, session.VMName(), h.arrivals)))
	h.mu.Unlock()
	dst, err := vm.New(vm.Config{Name: session.VMName(), MemBytes: session.MemBytes(), Seed: seed})
	if err != nil {
		return core.PostCopyDestResult{}, session.Reject(err.Error())
	}
	res, err := session.RunPostCopy(ctx, dst, core.PostCopyDestOptions{
		Store:   h.store,
		OnEvent: h.obs.eventFunc(rec, "dest"),
	})
	if err != nil {
		return res, err
	}
	if h.SaveArrivals {
		if h.saveOrDegrade(core.StageSaveArrivals, rec, func() error {
			return h.store.Save(dst)
		}) {
			rec.Event(obs.Event{Kind: "checkpoint-saved", Detail: "arrival image"})
		}
	}
	if err := h.register(dst, nil); err != nil {
		return res, err
	}
	if h.OnArrival != nil {
		h.OnArrival(dst, core.DestResult{
			Metrics:        res.Metrics.Metrics,
			UsedCheckpoint: res.UsedCheckpoint,
		})
	}
	return res, nil
}

// PostCopyTo moves the named VM to the peer at addr using the post-copy
// protocol. The caller must have stopped the guest workload: post-copy
// transfers a frozen state, and the guest logically resumes at the
// destination the moment the manifest is resolved. Cancelling ctx aborts
// the transfer; per-I/O deadlines follow Host.IdleTimeout.
func (h *Host) PostCopyTo(ctx context.Context, addr, vmName string) (core.PostCopyMetrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	h.mu.Lock()
	v, ok := h.vms[vmName]
	h.mu.Unlock()
	if !ok {
		return core.PostCopyMetrics{}, fmt.Errorf("%w: %q", ErrNoSuchVM, vmName)
	}
	rec := h.obs.begin("source", vmName, addr)
	m, err := h.runPostCopyTo(ctx, addr, vmName, v, rec)
	h.obs.finishPostCopy(rec, "source", vmName, m, err)
	return m, err
}

func (h *Host) runPostCopyTo(ctx context.Context, addr, vmName string, v *vm.VM, rec *obs.Recorder) (core.PostCopyMetrics, error) {
	conn, err := h.dial(ctx, addr)
	if err != nil {
		return core.PostCopyMetrics{}, err
	}
	defer conn.Close()
	m, err := core.PostCopySource(ctx, core.NewDeadlineConn(conn, h.idle()), v, core.PostCopySourceOptions{
		OnEvent: h.obs.eventFunc(rec, "source"),
	})
	if err != nil {
		return m, err
	}
	// The guest already runs at the destination; the departure image is a
	// future optimization, not part of this transfer's success.
	if h.saveOrDegrade(core.StageKeepCheckpoint, rec, func() error {
		return h.store.Save(v)
	}) {
		rec.Event(obs.Event{Kind: "checkpoint-saved", Detail: "departure image"})
	}
	h.mu.Lock()
	delete(h.vms, vmName)
	delete(h.seen, vmName)
	h.mu.Unlock()
	return m, nil
}

// fnv64 hashes a string with FNV-1a.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// RetryPolicy configures how MigrateTo re-attempts a migration after a
// transient transport failure — a dial error, an idle timeout, a mid-stream
// reset. Terminal failures (the destination rejecting the migration, a
// local protocol violation, context cancellation) are never retried.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first. Values
	// below 2 mean a single attempt (no retry).
	Attempts int
	// Backoff is the delay before the first retry. Defaults to 200ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Defaults to 5s.
	MaxBackoff time.Duration
	// Multiplier scales the delay after each retry. Defaults to 2.
	Multiplier float64
	// Jitter spreads each delay by ±Jitter fraction to avoid retry
	// stampedes across a fleet. Defaults to 0.2.
	Jitter float64
}

func (p RetryPolicy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// delay computes the backoff before the (retry+1)-th retry, 0-indexed.
func (p RetryPolicy) delay(retry int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(base)
	for i := 0; i < retry; i++ {
		d *= mult
		if d >= float64(maxB) {
			d = float64(maxB)
			break
		}
	}
	jitter := p.Jitter
	if jitter <= 0 {
		jitter = 0.2
	}
	d *= 1 + jitter*(2*rand.Float64()-1)
	if d < 0 {
		d = 0
	}
	if d > float64(maxB) {
		d = float64(maxB)
	}
	return time.Duration(d)
}

// Retryable classifies a migration error: true means a fresh attempt on a
// new connection could plausibly succeed (the peer or the network hiccuped,
// or the peer's storage flaked mid-merge), false means retrying is
// pointless or unsafe. The routing is core.Classify's: a classified
// core.MigrationError anywhere in the chain is authoritative; otherwise
// rejection, protocol violations and cancellation are terminal and
// everything else (dial failures, idle timeouts, resets, truncated
// streams) is worth a retry.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, ErrNoSuchVM) {
		return false
	}
	return core.Classify(err) != core.ClassTerminal
}

// saveOrDegrade runs one best-effort checkpoint persist — a rung of the
// graceful-degradation ladder. A full store (ENOSPC from the disk or
// ErrQuotaExceeded from the quota) gets one GC-then-retry; any failure
// that survives is recorded — vecycle_degraded_total, a trace event,
// OnError — and swallowed. stage names the rung (core.Stage* constants).
// Returns true when the save ultimately succeeded.
func (h *Host) saveOrDegrade(stage string, rec *obs.Recorder, save func() error) bool {
	err := save()
	if err != nil && (errors.Is(err, checkpoint.ErrQuotaExceeded) || faultfs.Label(err) == "enospc") {
		// The pool may hold dead segments a collection can turn into room;
		// one pass, one more try. GC failing too just degrades below.
		if _, gcErr := h.store.GC(); gcErr == nil {
			err = save()
		}
	}
	if err == nil {
		return true
	}
	fault := faultfs.Label(err)
	h.obs.degraded.With(h.name, stage, fault).Inc()
	rec.Event(obs.Event{Kind: core.EventDegraded, Detail: stage + ":" + fault})
	if h.OnError != nil {
		h.OnError(fmt.Errorf("sched: %s degraded (%s): %w", stage, fault, err))
	}
	return false
}

// MigrateOptions tunes an outgoing migration from a host.
type MigrateOptions struct {
	// Recycle enables checkpoint-assisted mode (default in VeCycle
	// deployments; disable for a baseline QEMU-style migration).
	Recycle bool
	// UsePingPong consults the checksums seen when this VM last arrived
	// here, skipping the destination's announcement (§3.2). Only sound when
	// the destination is the host the VM arrived from and its checkpoint is
	// unchanged since.
	UsePingPong bool
	// KeepCheckpoint writes a local checkpoint after the VM leaves (the
	// core of VeCycle). Disable to model a host with no spare disk.
	KeepCheckpoint bool
	// UseDelta sends partially-changed pages as XBZRLE deltas against this
	// host's stored checkpoint of the VM. The optimization is *optimistic*:
	// it assumes the local image equals the destination's checkpoint, which
	// holds in two-host ping-pong with SaveArrivals + KeepCheckpoint but
	// can go stale when the VM roams more hosts. A stale base is caught by
	// the destination's mandatory per-delta verification; MigrateTo then
	// retries the migration once without deltas.
	UseDelta bool
	// Compress deflates full-page payloads (core.SourceOptions.Compress).
	Compress bool
	// Alg selects the page-checksum algorithm (core.SourceOptions.Alg);
	// zero keeps the engine default (MD5). Weak algorithms (fnv, fast64)
	// are only valid for baseline migrations — recycling needs a
	// collision-resistant digest to stand in for page content.
	Alg checksum.Algorithm
	// Workers sizes the source pipeline (core.SourceOptions.Workers): page
	// reads, per-page encoding, and wire emission overlap, with this many
	// encode workers. Values below 1 keep the sequential engine.
	Workers int
	// NoCompactAnnounce withholds the compact-announce capability from the
	// hello (core.SourceOptions.NoCompactAnnounce), pinning the v1
	// announcement encoding.
	NoCompactAnnounce bool
	// NoRangeFrames withholds the page-range-frame capability from the
	// hello (core.SourceOptions.NoRangeFrames), pinning the per-page v1
	// page encoding.
	NoRangeFrames bool
	// ChecksumWorkers is the deprecated name for Workers
	// (core.SourceOptions.ChecksumWorkers); consulted only when Workers is 0.
	ChecksumWorkers int
	// MaxRounds bounds the pre-copy rounds (core.SourceOptions.MaxRounds);
	// 0 keeps the engine default.
	MaxRounds int
	// StopThreshold is the dirty-page count triggering the final round
	// (core.SourceOptions.StopThreshold); 0 keeps the engine default.
	StopThreshold int
	// IdleTimeout overrides Host.IdleTimeout for this migration's
	// connections. Zero inherits the host setting; negative disables.
	IdleTimeout time.Duration
	// Retry re-attempts the migration on transient transport failures with
	// exponential backoff. The zero value performs a single attempt.
	Retry RetryPolicy
	// OnAttempt, when non-nil, observes every engine attempt of this
	// migration — the first try, the delta fallback, and each retry — with
	// its 1-based attempt number and outcome. The chaos tests use it to
	// assert that resumed attempts resend strictly fewer full pages.
	OnAttempt func(attempt int, m core.Metrics, err error)
	// Pause and Resume bracket the stop-and-copy phase, as in
	// core.SourceOptions.
	Pause  func()
	Resume func()
}

// migrationIdle resolves the per-migration idle budget against the host's.
func (h *Host) migrationIdle(override time.Duration) time.Duration {
	if override != 0 {
		return resolveIdle(override)
	}
	return h.idle()
}

// MigrateTo live-migrates the named resident VM to the peer host listening
// at addr. On success the VM is no longer resident here and, when
// KeepCheckpoint is set, a checkpoint of its final state is stored locally.
//
// Cancelling ctx aborts the migration (and any pending retry wait) with
// ctx's error. Transient failures are retried per opts.Retry; a rejection
// by the destination is terminal. An attempt with an optimistic delta base
// that fails is re-run once without deltas before the retry policy is
// consulted, preserving the stale-delta fallback.
func (h *Host) MigrateTo(ctx context.Context, addr, vmName string, opts MigrateOptions) (core.Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	h.mu.Lock()
	v, ok := h.vms[vmName]
	var known *checksum.Set
	if opts.UsePingPong {
		known = h.seen[vmName]
	}
	h.mu.Unlock()
	if !ok {
		return core.Metrics{}, fmt.Errorf("%w: %q", ErrNoSuchVM, vmName)
	}
	rec := h.obs.begin("source", vmName, addr)
	m, err := h.runMigrateTo(ctx, addr, vmName, v, known, opts, rec)
	h.obs.finish(rec, "source", vmName, m, err)
	return m, err
}

// runMigrateTo is the body of MigrateTo, split out so every return funnels
// through one obs.finish call.
func (h *Host) runMigrateTo(ctx context.Context, addr, vmName string, v *vm.VM, known *checksum.Set, opts MigrateOptions, rec *obs.Recorder) (core.Metrics, error) {
	var deltaBase core.PageProvider
	// Only a complete checkpoint is a sound delta base: a salvage image left
	// by an interrupted incoming migration holds another attempt's partial
	// state, not a mirror of the destination's checkpoint.
	if info, ok := h.store.Entry(vmName); opts.UseDelta && ok && info.State == checkpoint.EntryComplete {
		cp, err := h.store.Restore(vmName, checksum.MD5, nil)
		if err != nil {
			// Deltas are an optimization; an unopenable base loses it, not
			// the migration. Degrade to full/sum encoding.
			fault := faultfs.Label(err)
			h.obs.degraded.With(h.name, core.StageDeltaBase, fault).Inc()
			rec.Event(obs.Event{Kind: core.EventDegraded, Detail: core.StageDeltaBase + ":" + fault})
			if h.OnError != nil {
				h.OnError(fmt.Errorf("sched: delta base of %q degraded (%s): %w", vmName, fault, err))
			}
		} else {
			defer cp.Close()
			deltaBase = cp
			h.obs.sidecar.With(h.name, cp.Sidecar().String()).Inc()
			rec.Event(obs.Event{Kind: core.EventSidecar, Detail: cp.Sidecar().String()})
		}
	}

	idle := h.migrationIdle(opts.IdleTimeout)

	// Unshared storage: the block device moves first, through the same
	// engine on its own connection, so the guest's final rounds overlap
	// only with RAM streaming (QEMU's block-then-RAM ordering).
	h.mu.Lock()
	d := h.disks[vmName]
	h.mu.Unlock()
	if d != nil {
		// The disk leg is its own wire session; trace and count it as its
		// own migration record, named after the disk's backing VM.
		diskName := d.Backing().Name()
		drec := h.obs.begin("source", diskName, addr)
		dm, derr := h.migrateDisk(ctx, addr, d, idle, opts, drec)
		h.obs.finish(drec, "source", diskName, dm, derr)
		if derr != nil {
			return core.Metrics{}, fmt.Errorf("sched: disk migration: %w", derr)
		}
		rec.Event(obs.Event{Kind: "disk", Bytes: dm.BytesSent, Detail: diskName})
		if opts.KeepCheckpoint {
			h.saveOrDegrade(core.StageDiskCheckpoint, rec, func() error {
				return h.store.Save(d.Backing())
			})
		}
	}

	// sent records each page's digest as it is encoded; after a successful
	// attempt it holds the paused final state's sums, which the
	// KeepCheckpoint save below hands to the store so the sidecar pass is
	// skipped. The engine resets it at every attempt, so retries never
	// inherit a failed attempt's partial table. Nil (recording disabled)
	// when no checkpoint will be written.
	var sent *core.SumTable
	if opts.KeepCheckpoint {
		sent = core.NewSumTable()
	}
	attempt := func(base core.PageProvider) (core.Metrics, error) {
		conn, err := h.dial(ctx, addr)
		if err != nil {
			return core.Metrics{}, err
		}
		defer conn.Close()
		return core.MigrateSource(ctx, core.NewDeadlineConn(conn, idle), v, core.SourceOptions{
			Recycle:           opts.Recycle,
			Alg:               opts.Alg,
			KnownDestSums:     known,
			DeltaBase:         base,
			SentSums:          sent,
			Compress:          opts.Compress,
			Workers:           opts.Workers,
			ChecksumWorkers:   opts.ChecksumWorkers,
			MaxRounds:         opts.MaxRounds,
			StopThreshold:     opts.StopThreshold,
			NoCompactAnnounce: opts.NoCompactAnnounce,
			NoRangeFrames:     opts.NoRangeFrames,
			Pause:             opts.Pause,
			Resume:            opts.Resume,
			OnEvent:           h.obs.eventFunc(rec, "source"),
		})
	}

	attempts := opts.Retry.attempts()
	base := deltaBase
	deltaFallback := base != nil
	var m core.Metrics
	var err error
	attemptNo := 0
	for retries := 0; ; {
		m, err = attempt(base)
		attemptNo++
		if opts.OnAttempt != nil {
			opts.OnAttempt(attemptNo, m, err)
		}
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			// Cancellation is terminal everywhere — whether it surfaced
			// mid-stream (as a wrapped transport error) or would have been
			// caught mid-backoff, the caller sees the ctx error itself.
			return m, ctx.Err()
		}
		if errors.Is(err, core.ErrRejected) {
			return m, err
		}
		// Any failed attempt may have left a salvage image at the
		// destination, superseding the complete checkpoint the ping-pong
		// sums describe. Drop them: the next attempt negotiates a fresh
		// announcement and resumes from whatever the destination salvaged.
		known = nil
		if deltaFallback {
			// Delta encoding is optimistic: if this host's checkpoint mirror
			// went stale (the VM visited the destination via a third host),
			// the destination's mandatory per-delta verification aborts the
			// stream. Retry once on a fresh connection without deltas; this
			// fallback does not consume a retry attempt.
			if h.OnError != nil {
				h.OnError(fmt.Errorf("sched: delta migration of %q to %s failed (%v); retrying without deltas", vmName, addr, err))
			}
			h.obs.fallbacks.With(h.name).Inc()
			rec.Event(obs.Event{Kind: "delta-fallback", Detail: err.Error()})
			base = nil
			deltaFallback = false
			continue
		}
		// After the first failure the destination may hold a salvage image,
		// which is never a sound delta target; stop offering deltas for the
		// rest of the chain.
		base = nil
		deltaFallback = false
		if !Retryable(err) || retries >= attempts-1 {
			return m, err
		}
		retries++
		delay := opts.Retry.delay(retries - 1)
		if h.OnError != nil {
			h.OnError(fmt.Errorf("sched: migration of %q to %s failed (attempt %d/%d: %v); retrying in %v", vmName, addr, retries, attempts, err, delay))
		}
		h.obs.retries.With(h.name).Inc()
		rec.Event(obs.Event{Kind: "retry", Round: retries, Detail: fmt.Sprintf("%v; backoff %v", err, delay)})
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return m, ctx.Err()
		case <-timer.C:
		}
	}

	// The VM now runs at the destination. Write the local checkpoint —
	// after the migration, off the critical path, as in the paper. The
	// paused final state is exactly what the successful attempt's sum table
	// describes, so the save skips its matching rehash pass.
	if opts.KeepCheckpoint {
		if h.saveOrDegrade(core.StageKeepCheckpoint, rec, func() error {
			return saveWithTable(h.store, v, sent)
		}) {
			rec.Event(obs.Event{Kind: "checkpoint-saved", Detail: "departure image"})
		}
	}
	h.mu.Lock()
	delete(h.vms, vmName)
	delete(h.disks, vmName)
	delete(h.seen, vmName)
	h.mu.Unlock()
	return m, nil
}

// saveWithTable checkpoints v, handing the store the migration's page-sum
// table when it is complete so Save skips the digest pass matching the
// table's algorithm. Any incomplete, nil, or failed-attempt table falls
// back to a plain (rehashing) Save.
func saveWithTable(st *checkpoint.Store, v *vm.VM, t *core.SumTable) error {
	if sums, ok := t.Sums(); ok {
		return st.SaveWithSums(v, t.Alg(), sums)
	}
	return st.Save(v)
}

// migrateDisk streams the block device to the peer on its own connection.
func (h *Host) migrateDisk(ctx context.Context, addr string, d *disk.Disk, idle time.Duration, opts MigrateOptions, rec *obs.Recorder) (core.Metrics, error) {
	diskConn, err := h.dial(ctx, addr)
	if err != nil {
		return core.Metrics{}, fmt.Errorf("sched: dial for disk: %w", err)
	}
	defer diskConn.Close()
	return core.MigrateSource(ctx, core.NewDeadlineConn(diskConn, idle), d.Backing(), core.SourceOptions{
		Recycle: opts.Recycle,
		Alg:     opts.Alg,
		OnEvent: h.obs.eventFunc(rec, "source"),
	})
}
