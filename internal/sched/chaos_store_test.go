package sched

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"vecycle/internal/checkpoint"
	"vecycle/internal/checksum"
	"vecycle/internal/core"
	"vecycle/internal/faultfs"
	"vecycle/internal/vm"
)

// Storage chaos: every test here builds a host whose checkpoint store runs
// on an injected filesystem (checkpoint.NewStoreFS + faultfs) and asserts
// the graceful-degradation ladder's contract — a completed transfer is
// never failed by a storage fault, the guest's memory arrives intact, and
// every rung taken is visible in vecycle_degraded_total and the trace.

// newFaultHost builds a host whose store routes all disk I/O through inj.
func newFaultHost(t *testing.T, name string, inj *faultfs.Injector) *Host {
	t.Helper()
	st, err := checkpoint.NewStoreFS(filepath.Join(t.TempDir(), name), inj.FS(faultfs.OS))
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHostWithStore(name, st)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// scrape renders a host's metrics registry as Prometheus text.
func scrape(t *testing.T, h *Host) string {
	t.Helper()
	var sb strings.Builder
	if err := h.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// traceJSON renders a host's completed migration traces as JSONL.
func traceJSON(t *testing.T, h *Host) string {
	t.Helper()
	var sb strings.Builder
	if err := h.Traces().WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// fingerprintEqual fails the test unless the landed VM holds exactly the
// memory the guest held at departure.
func fingerprintEqual(t *testing.T, want []uint64, landed *vm.VM) {
	t.Helper()
	got := landed.Fingerprint64()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("page %d differs after migration: data loss", i)
		}
	}
}

// TestChaosStoreKeepCheckpointENOSPC is the issue's acceptance scenario:
// the source's disk fills during the post-migration KeepCheckpoint save.
// The migration must still succeed on its single attempt — the retry loop
// is for transfer failures, not persist failures — the guest must run at
// the destination, and the rung must be recorded.
func TestChaosStoreKeepCheckpointENOSPC(t *testing.T) {
	inj := faultfs.NewInjector()
	src := newFaultHost(t, "alpha", inj)
	t.Cleanup(func() { src.Close() })
	dst := newHost(t, "beta")
	addr := listen(t, dst)

	v := newGuest(t, "vm0", 256)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	want := v.Fingerprint64()
	src.AddVM(v)

	inj.Arm(faultfs.Fault{Op: faultfs.OpWrite, Path: ".seg", Err: faultfs.ErrENOSPC, Times: -1})

	attempts := 0
	_, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{
		Recycle:        true,
		KeepCheckpoint: true,
		Retry:          RetryPolicy{Attempts: 3, Backoff: time.Millisecond},
		OnAttempt:      func(int, core.Metrics, error) { attempts++ },
	})
	if err != nil {
		t.Fatalf("ENOSPC during KeepCheckpoint failed the migration: %v", err)
	}
	if attempts != 1 {
		t.Errorf("ran %d attempts, want 1 (persist failures must not enter the retry loop)", attempts)
	}
	waitFor(t, func() bool { _, ok := dst.VM("vm0"); return ok }, "guest never registered at the destination")
	landed, _ := dst.VM("vm0")
	fingerprintEqual(t, want, landed)

	if _, ok := src.Store().Entry("vm0"); ok {
		t.Error("source store holds an entry despite the injected ENOSPC")
	}
	metrics := scrape(t, src)
	if !strings.Contains(metrics, `vecycle_degraded_total{host="alpha",stage="keep-checkpoint",fault="enospc"} 1`) {
		t.Errorf("keep-checkpoint degradation not counted; metrics:\n%s", metrics)
	}
	if strings.Contains(metrics, `vecycle_migration_retries_total{host="alpha"}`) {
		t.Error("retry counter incremented; the retry loop must not see persist failures")
	}
	if tr := traceJSON(t, src); !strings.Contains(tr, `"kind":"degraded"`) ||
		!strings.Contains(tr, "keep-checkpoint:enospc") {
		t.Error("trace is missing the degraded event")
	}
}

// TestChaosStoreGCRetryRecovers: when the first save fails with ENOSPC but
// a collection pass completes, the gc-then-retry rung saves successfully
// and no degradation is recorded.
func TestChaosStoreGCRetryRecovers(t *testing.T) {
	inj := faultfs.NewInjector()
	src := newFaultHost(t, "alpha", inj)
	t.Cleanup(func() { src.Close() })
	dst := newHost(t, "beta")
	addr := listen(t, dst)

	// Leave a dead segment in the pool: save a throwaway VM, then remove
	// its entry without collecting — the ladder's GC pass has real work.
	junk := newGuest(t, "junk", 64)
	if err := junk.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	if err := src.Store().Save(junk); err != nil {
		t.Fatal(err)
	}
	if err := src.Store().Remove("junk"); err != nil {
		t.Fatal(err)
	}

	v := newGuest(t, "vm0", 64)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	src.AddVM(v)

	// Exactly one injected ENOSPC: the first save fails, the ladder runs
	// GC and the retried save goes through.
	inj.Arm(faultfs.Fault{Op: faultfs.OpWrite, Path: ".seg", Err: faultfs.ErrENOSPC, Times: 1})

	if _, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{
		Recycle: true, KeepCheckpoint: true,
	}); err != nil {
		t.Fatal(err)
	}
	info, ok := src.Store().Entry("vm0")
	if !ok || info.State != checkpoint.EntryComplete {
		t.Fatalf("gc-then-retry did not complete the save (entry=%+v ok=%v)", info, ok)
	}
	if strings.Contains(scrape(t, src), `vecycle_degraded_total{host="alpha"`) {
		t.Error("a recovered save must not count as a degradation")
	}
}

// TestChaosStoreSaveArrivalsEIO: the destination's arrival persist fails
// with EIO; the arrival itself must register and the rung be recorded on
// the destination.
func TestChaosStoreSaveArrivalsEIO(t *testing.T) {
	inj := faultfs.NewInjector()
	dst := newFaultHost(t, "beta", inj)
	dst.SaveArrivals = true
	addr := listen(t, dst)
	src := newHost(t, "alpha")
	t.Cleanup(func() { src.Close() })

	v := newGuest(t, "vm0", 128)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	want := v.Fingerprint64()
	src.AddVM(v)

	inj.Arm(faultfs.Fault{Op: faultfs.OpCreate, Path: ".seg", Times: -1})

	if _, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{Recycle: true}); err != nil {
		t.Fatalf("EIO during SaveArrivals failed the migration: %v", err)
	}
	waitFor(t, func() bool { _, ok := dst.VM("vm0"); return ok }, "guest never registered at the destination")
	landed, _ := dst.VM("vm0")
	fingerprintEqual(t, want, landed)
	waitFor(t, func() bool {
		return strings.Contains(scrape(t, dst), `vecycle_degraded_total{host="beta",stage="save-arrivals",fault="eio"} 1`)
	}, "save-arrivals degradation not counted on the destination")
}

// TestChaosStoreSalvageDegraded: the wire dies mid-round AND the
// destination's salvage persist fails. The salvage loss must be recorded
// as a degradation, and the retry must still converge — from zero, since
// nothing was salvaged.
func TestChaosStoreSalvageDegraded(t *testing.T) {
	inj := faultfs.NewInjector()
	dst := newFaultHost(t, "beta", inj)
	var handled atomic.Int64
	dst.OnError = func(error) { handled.Add(1) }
	addr := listen(t, dst)
	src := newHost(t, "alpha")
	t.Cleanup(func() { src.Close() })

	// Pages arrive in coalesced range frames of up to 256 pages, and a cut
	// mid-frame installs nothing — so the guest spans several frames and
	// the cut falls after the first complete one, leaving real progress
	// for the salvage to (fail to) persist.
	v := newGuest(t, "vm0", 2048)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	want := v.Fingerprint64()
	src.AddVM(v)

	// Every store write fails: the salvage after the cut cannot persist.
	inj.Arm(faultfs.Fault{Op: faultfs.OpCreate, Path: ".seg", Times: -1})

	cd := &chaosDialer{t: t, schedule: []int64{1_200_000}, handled: &handled}
	src.DialFunc = cd.dial

	if _, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{
		Recycle: true,
		Retry:   RetryPolicy{Attempts: 2, Backoff: time.Millisecond},
	}); err != nil {
		t.Fatalf("retry did not converge: %v", err)
	}
	waitFor(t, func() bool { _, ok := dst.VM("vm0"); return ok }, "guest never registered at the destination")
	landed, _ := dst.VM("vm0")
	fingerprintEqual(t, want, landed)

	metrics := scrape(t, dst)
	if !strings.Contains(metrics, `vecycle_degraded_total{host="beta",stage="salvage",fault="eio"}`) {
		t.Errorf("salvage degradation not counted; metrics:\n%s", metrics)
	}
	if !strings.Contains(metrics, `vecycle_salvage_total{host="beta",outcome="write-failed"}`) {
		t.Error("salvage write-failed outcome not counted")
	}
}

// TestChaosStoreRecycleReadQuarantine: the destination bootstraps from a
// checkpoint whose segment bytes go bad mid-merge — after the bootstrap
// restore, the first ReadBlock for a moved page hits EIO. The attempt must
// fail with a retryable recycle-read MigrationError (visible to errors.As
// in the handler's error), the entry must be quarantined, and the retry
// must converge over the wire with zero data loss.
func TestChaosStoreRecycleReadQuarantine(t *testing.T) {
	inj := faultfs.NewInjector()
	dst := newFaultHost(t, "beta", inj)
	var handled atomic.Int64
	var mu sync.Mutex
	var destErrs []error
	dst.OnError = func(err error) {
		mu.Lock()
		destErrs = append(destErrs, err)
		mu.Unlock()
		handled.Add(1)
	}
	addr := listen(t, dst)
	src := newHost(t, "alpha")
	t.Cleanup(func() { src.Close() })

	const pages = 64
	v := newGuest(t, "vm0", pages)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	want := v.Fingerprint64()
	src.AddVM(v)

	// Pre-seed the destination's store with a checkpoint of the same VM
	// whose content is the guest's with pages swapped pairwise: the
	// bootstrap restores it, the announcement covers every arriving sum,
	// and each swapped position mismatches in place — forcing ReadBlock
	// lookups mid-merge.
	clone := newGuest(t, "vm0", pages)
	if err := clone.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	a := make([]byte, vm.PageSize)
	b := make([]byte, vm.PageSize)
	for i := 0; i < 16; i += 2 {
		clone.ReadPage(i, a)
		clone.ReadPage(i+1, b)
		clone.InstallPage(i, b)
		clone.InstallPage(i+1, a)
	}
	if err := dst.Store().Save(clone); err != nil {
		t.Fatal(err)
	}

	// Count the segment reads one steady-state restore performs: a warm-up
	// restore settles the sidecar, then a latency-only rule (fires,
	// injects nothing) counts the second. The EIO rule is armed past that
	// count, so the migration's own bootstrap restore — the third,
	// identical — succeeds and the fault lands on mid-merge ReadBlocks.
	warm := newGuest(t, "vm0", pages)
	cp, err := dst.Store().Restore("vm0", checksum.MD5, warm)
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	inj.Arm(faultfs.Fault{Op: faultfs.OpReadAt, Path: ".seg", Times: -1, Latency: time.Nanosecond})
	scratch := newGuest(t, "vm0", pages)
	cp, err = dst.Store().Restore("vm0", checksum.MD5, scratch)
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	restoreReads := len(inj.Shots())
	inj.Disarm()
	if restoreReads == 0 {
		t.Fatal("restore performed no segment reads; the counting rule is broken")
	}
	inj.Arm(faultfs.Fault{Op: faultfs.OpReadAt, Path: ".seg", After: restoreReads, Times: -1})

	cd := &chaosDialer{t: t, handled: &handled}
	src.DialFunc = cd.dial

	if _, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{
		Recycle: true,
		Retry:   RetryPolicy{Attempts: 3, Backoff: time.Millisecond},
	}); err != nil {
		t.Fatalf("retry did not converge after the recycle-read fault: %v", err)
	}
	waitFor(t, func() bool { _, ok := dst.VM("vm0"); return ok }, "guest never registered at the destination")
	landed, _ := dst.VM("vm0")
	fingerprintEqual(t, want, landed)

	// The failed attempt's error, as the destination handler saw it, must
	// round-trip the taxonomy: errors.As finds the classified
	// MigrationError, errors.Is still reaches the injected syscall error.
	mu.Lock()
	errs := append([]error(nil), destErrs...)
	mu.Unlock()
	found := false
	for _, derr := range errs {
		var me *core.MigrationError
		if !errors.As(derr, &me) || me.Stage != core.StageRecycleRead {
			continue
		}
		found = true
		if me.Class != core.ClassRetryable {
			t.Errorf("recycle-read classified %v, want retryable", me.Class)
		}
		if me.Fault != "eio" {
			t.Errorf("recycle-read fault label %q, want eio", me.Fault)
		}
		if !errors.Is(derr, syscall.EIO) {
			t.Error("errors.Is lost the injected EIO through the wrap chain")
		}
		if !Retryable(derr) {
			t.Error("Retryable() = false for a retryable recycle-read error")
		}
	}
	if !found {
		t.Errorf("no recycle-read MigrationError reached the handler; errors: %v", errs)
	}

	info, ok := dst.Store().Entry("vm0")
	if !ok || info.State != checkpoint.EntryQuarantined {
		t.Errorf("failing entry not quarantined (entry=%+v ok=%v)", info, ok)
	}
	if metrics := scrape(t, dst); !strings.Contains(metrics, `stage="recycle-read",fault="eio"`) {
		t.Errorf("recycle-read degradation not counted; metrics:\n%s", metrics)
	}
}

// TestChaosStoreMatrix is the chaos-store gate: one small migration per
// (store op site × fault kind × migration phase) cell, each with the fault
// armed for the whole run. Every cell must converge with the guest's
// memory intact — storage faults may cost checkpoints, never migrations.
func TestChaosStoreMatrix(t *testing.T) {
	type site struct {
		path string
		op   faultfs.Op
	}
	writeSites := []site{
		{".seg", faultfs.OpCreate},
		{".seg", faultfs.OpWrite},
		{".seg", faultfs.OpSync},
		{".seg", faultfs.OpRename},
		{".pmf", faultfs.OpCreate},
		{".pmf", faultfs.OpWrite},
		{".idx", faultfs.OpCreate},
		{".idx", faultfs.OpWrite},
		{".gens.json", faultfs.OpCreate},
		{"MANIFEST.json", faultfs.OpCreate},
		{"MANIFEST.json", faultfs.OpRename},
	}
	readSites := []site{
		{".seg", faultfs.OpOpen},
		{".seg", faultfs.OpReadAt},
		{".pmf", faultfs.OpOpen},
		{".idx", faultfs.OpOpen},
	}
	faults := []struct {
		name string
		arm  func(s site) (faultfs.Fault, bool)
	}{
		{"eio", func(s site) (faultfs.Fault, bool) {
			return faultfs.Fault{Op: s.op, Path: s.path, Err: faultfs.ErrEIO, Times: -1}, true
		}},
		{"enospc", func(s site) (faultfs.Fault, bool) {
			return faultfs.Fault{Op: s.op, Path: s.path, Err: faultfs.ErrENOSPC, Times: -1}, true
		}},
		{"torn", func(s site) (faultfs.Fault, bool) {
			if s.op != faultfs.OpWrite {
				return faultfs.Fault{}, false // torn writes only make sense on writes
			}
			return faultfs.Fault{Op: s.op, Path: s.path, TornBytes: 7, Times: -1}, true
		}},
	}

	const pages = 64
	run := func(t *testing.T, phase, faultName string, s site, arm func(site) (faultfs.Fault, bool)) {
		f, ok := arm(s)
		if !ok {
			t.Skip("fault kind not applicable to this op")
		}
		inj := faultfs.NewInjector()
		var src, dst *Host
		opts := MigrateOptions{Recycle: true, Retry: RetryPolicy{Attempts: 3, Backoff: time.Millisecond}}
		switch phase {
		case "keep-checkpoint":
			src = newFaultHost(t, "alpha", inj)
			dst = newHost(t, "beta")
			opts.KeepCheckpoint = true
		case "save-arrivals":
			src = newHost(t, "alpha")
			dst = newFaultHost(t, "beta", inj)
			dst.SaveArrivals = true
		case "bootstrap":
			src = newHost(t, "alpha")
			dst = newFaultHost(t, "beta", inj)
		}
		t.Cleanup(func() { src.Close() })
		var handled atomic.Int64
		dst.OnError = func(error) { handled.Add(1) }
		addr := listen(t, dst)

		v := newGuest(t, "vm0", pages)
		if err := v.FillRandom(0.9); err != nil {
			t.Fatal(err)
		}
		want := v.Fingerprint64()
		src.AddVM(v)

		if phase == "bootstrap" {
			// Give the destination a checkpoint to bootstrap from, so the
			// read fault has something to hit.
			clone := newGuest(t, "vm0", pages)
			if err := clone.FillRandom(0.9); err != nil {
				t.Fatal(err)
			}
			if err := dst.Store().Save(clone); err != nil {
				t.Fatal(err)
			}
		}
		inj.Arm(f)

		// Serialize retries behind the destination's handler, so a failed
		// attempt's arrival reservation is released before the redial.
		cd := &chaosDialer{t: t, handled: &handled}
		src.DialFunc = cd.dial

		if _, err := src.MigrateTo(context.Background(), addr, "vm0", opts); err != nil {
			t.Fatalf("phase %s, fault %s on %s %s: migration failed: %v", phase, faultName, s.op, s.path, err)
		}
		waitFor(t, func() bool { _, ok := dst.VM("vm0"); return ok }, "guest never registered at the destination")
		landed, _ := dst.VM("vm0")
		fingerprintEqual(t, want, landed)
	}

	for _, phase := range []string{"keep-checkpoint", "save-arrivals"} {
		for _, s := range writeSites {
			for _, fk := range faults {
				phase, s, fk := phase, s, fk
				t.Run(fmt.Sprintf("%s/%s-%s/%s", phase, s.op, strings.TrimPrefix(s.path, "."), fk.name), func(t *testing.T) {
					t.Parallel()
					run(t, phase, fk.name, s, fk.arm)
				})
			}
		}
	}
	for _, s := range readSites {
		s := s
		t.Run(fmt.Sprintf("bootstrap/%s-%s/eio", s.op, strings.TrimPrefix(s.path, ".")), func(t *testing.T) {
			t.Parallel()
			run(t, "bootstrap", "eio", s, faults[0].arm)
		})
	}
}
