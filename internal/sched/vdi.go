package sched

import (
	"fmt"
	"time"
)

// The VDI schedule of §4.6: a virtual desktop migrates from the
// consolidation server to the user's workstation when the user arrives
// (9 am) and back when they leave (5 pm), on weekdays only. Over the
// paper's 19-day trace window (5–23 Nov 2014) this yields 13 weekdays and
// 26 migrations.

// Direction tells where a VDI migration moves the desktop.
type Direction uint8

// VDI migration directions.
const (
	// ToWorkstation is the 9 am migration: consolidation server → desk.
	ToWorkstation Direction = iota + 1
	// ToServer is the 5 pm migration: desk → consolidation server.
	ToServer
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case ToWorkstation:
		return "server→workstation"
	case ToServer:
		return "workstation→server"
	default:
		return fmt.Sprintf("direction(%d)", uint8(d))
	}
}

// VDIMigration is one scheduled desktop move.
type VDIMigration struct {
	At        time.Time
	Direction Direction
}

// VDISchedule enumerates the migrations between start and end (inclusive
// dates): one ToWorkstation at morningHour and one ToServer at eveningHour
// on every weekday, none on weekends.
func VDISchedule(start, end time.Time, morningHour, eveningHour int) ([]VDIMigration, error) {
	if end.Before(start) {
		return nil, fmt.Errorf("sched: end %v before start %v", end, start)
	}
	if morningHour < 0 || eveningHour > 24 || morningHour >= eveningHour {
		return nil, fmt.Errorf("sched: invalid hours %d–%d", morningHour, eveningHour)
	}
	var out []VDIMigration
	day := time.Date(start.Year(), start.Month(), start.Day(), 0, 0, 0, 0, start.Location())
	for !day.After(end) {
		if wd := day.Weekday(); wd != time.Saturday && wd != time.Sunday {
			out = append(out,
				VDIMigration{At: day.Add(time.Duration(morningHour) * time.Hour), Direction: ToWorkstation},
				VDIMigration{At: day.Add(time.Duration(eveningHour) * time.Hour), Direction: ToServer},
			)
		}
		day = day.AddDate(0, 0, 1)
	}
	// Trim migrations outside the [start, end] instant range.
	filtered := out[:0]
	for _, m := range out {
		if !m.At.Before(start) && !m.At.After(end) {
			filtered = append(filtered, m)
		}
	}
	return filtered, nil
}

// PaperVDISchedule reproduces §4.6 exactly: 5–23 Nov 2014, 9 am and 5 pm,
// 13 weekdays, 26 migrations.
func PaperVDISchedule() []VDIMigration {
	start := time.Date(2014, 11, 5, 0, 0, 0, 0, time.UTC)
	end := time.Date(2014, 11, 23, 23, 59, 0, 0, time.UTC)
	sched, err := VDISchedule(start, end, 9, 17)
	if err != nil {
		// Unreachable: constants are valid.
		panic(err)
	}
	return sched
}
