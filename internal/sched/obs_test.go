package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"vecycle/internal/core"
	"vecycle/internal/obs"
	"vecycle/internal/vm"
)

// promLine matches one sample line of the Prometheus text exposition
// format: a metric name, an optional label set, and a value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// checkPrometheusFormat fails the test unless body parses as the text
// exposition format: every line is a # HELP, a # TYPE, or a sample.
func checkPrometheusFormat(t *testing.T, body string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty metrics body")
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
}

func httpGet(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}

// TestObservabilityEndToEnd runs a loopback migration between two hosts and
// scrapes both sides' ops endpoints: /metrics must be valid Prometheus text
// containing the expected series, /debug/migrations must return the
// completed migration's trace.
func TestObservabilityEndToEnd(t *testing.T) {
	src := newHost(t, "alpha")
	dst := newHost(t, "beta")
	addr := listen(t, dst)

	srcOps, err := src.ListenOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	dstOps, err := dst.ListenOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	v := newGuest(t, "vm0", 64)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	src.AddVM(v)

	arrived := make(chan struct{}, 1)
	dst.OnArrival = func(*vm.VM, core.DestResult) { arrived <- struct{}{} }

	if _, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{Recycle: true, KeepCheckpoint: true}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-arrived:
	case <-time.After(5 * time.Second):
		t.Fatal("destination never registered the VM")
	}

	// Source-side scrape.
	body, ctype := httpGet(t, "http://"+srcOps+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("metrics content type = %q", ctype)
	}
	checkPrometheusFormat(t, body)
	for _, want := range []string{
		`vecycle_migrations_total{host="alpha",role="source",outcome="success"} 1`,
		`vecycle_migrations_active{host="alpha",role="source"} 0`,
		`vecycle_vm_migrations_total{host="alpha",vm="vm0",role="source"} 1`,
		`vecycle_migration_duration_seconds_count{host="alpha",role="source"} 1`,
		`vecycle_migration_downtime_seconds_count{host="alpha"} 1`,
		`vecycle_store_images{host="alpha"} 1`,
		`vecycle_host_vms{host="alpha"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("source /metrics missing %q", want)
		}
	}
	// A 64-page guest moved at least one round of bytes.
	if !strings.Contains(body, `vecycle_migration_rounds_total{host="alpha"}`) {
		t.Error("source /metrics missing rounds counter")
	}

	// Destination-side scrape.
	body, _ = httpGet(t, "http://"+dstOps+"/metrics")
	checkPrometheusFormat(t, body)
	for _, want := range []string{
		`vecycle_migrations_total{host="beta",role="dest",outcome="success"} 1`,
		`vecycle_host_vms{host="beta"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dest /metrics missing %q", want)
		}
	}

	// Trace of the completed migration, both sides.
	for _, tc := range []struct {
		ops, host, role string
	}{
		{srcOps, "alpha", "source"},
		{dstOps, "beta", "dest"},
	} {
		body, ctype := httpGet(t, "http://"+tc.ops+"/debug/migrations")
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("trace content type = %q", ctype)
		}
		var page struct {
			Active []obs.Migration `json:"active"`
			Recent []obs.Migration `json:"recent"`
		}
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			t.Fatalf("%s /debug/migrations: %v", tc.host, err)
		}
		if len(page.Active) != 0 {
			t.Errorf("%s: %d migrations still active", tc.host, len(page.Active))
		}
		if len(page.Recent) != 1 {
			t.Fatalf("%s: %d recent migrations, want 1", tc.host, len(page.Recent))
		}
		m := page.Recent[0]
		if m.VM != "vm0" || m.Host != tc.host || m.Role != tc.role {
			t.Errorf("%s trace = vm %q host %q role %q", tc.host, m.VM, m.Host, m.Role)
		}
		if m.Err != "" {
			t.Errorf("%s trace err = %q", tc.host, m.Err)
		}
		if m.End.IsZero() || m.End.Before(m.Start) {
			t.Errorf("%s trace not finished: start %v end %v", tc.host, m.Start, m.End)
		}
		kinds := make(map[string]bool)
		for _, e := range m.Events {
			kinds[e.Kind] = true
		}
		for _, want := range []string{core.EventHello, core.EventRound, core.EventDone} {
			if !kinds[want] {
				t.Errorf("%s trace missing %q event (got %v)", tc.host, want, kinds)
			}
		}
	}

	// JSONL export round-trips line-by-line.
	body, _ = httpGet(t, "http://"+srcOps+"/debug/migrations.jsonl")
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 1 {
		t.Fatalf("jsonl lines = %d, want 1", len(lines))
	}
	var rt obs.Migration
	if err := json.Unmarshal([]byte(lines[0]), &rt); err != nil {
		t.Fatal(err)
	}
	if rt.VM != "vm0" {
		t.Errorf("jsonl vm = %q", rt.VM)
	}
}

// TestObservabilityFailedMigration checks the error path: a migration to a
// dead peer counts under outcome="error" and leaves a finished trace with
// the error recorded.
func TestObservabilityFailedMigration(t *testing.T) {
	src := newHost(t, "alpha")
	t.Cleanup(func() { src.Close() })
	v := newGuest(t, "vm0", 8)
	src.AddVM(v)

	// A listener that is immediately closed: connection refused.
	dst := newHost(t, "beta")
	addr := listen(t, dst)
	dst.Close()

	if _, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{Recycle: true}); err == nil {
		t.Fatal("migration to dead peer succeeded")
	}
	var sb strings.Builder
	if err := src.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `vecycle_migrations_total{host="alpha",role="source",outcome="error"} 1`) {
		t.Error("failed migration not counted under outcome=error")
	}
	recent := src.Traces().Recent()
	if len(recent) != 1 || recent[0].Err == "" {
		t.Fatalf("trace of failed migration = %+v", recent)
	}
}

// TestObservabilityRejectedArrival checks that a duplicate arrival is
// recorded on the destination under outcome="rejected".
func TestObservabilityRejectedArrival(t *testing.T) {
	src := newHost(t, "alpha")
	dst := newHost(t, "beta")
	addr := listen(t, dst)
	t.Cleanup(func() { src.Close() })

	// The destination already hosts vm0.
	dst.AddVM(newGuest(t, "vm0", 8))
	src.AddVM(newGuest(t, "vm0", 8))

	_, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{Recycle: true})
	if err == nil {
		t.Fatal("duplicate arrival accepted")
	}
	// The destination handler runs asynchronously; wait for its record.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var sb strings.Builder
		if err := dst.Registry().WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(sb.String(), `vecycle_migrations_total{host="beta",role="dest",outcome="rejected"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejection never counted; metrics:\n%s", sb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetSharedRegistry re-homes two hosts onto one registry and checks a
// single scrape carries both hosts' series, distinguished by the host label.
func TestFleetSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	traces := obs.NewTraceLog(0)
	src := newHost(t, "alpha")
	dst := newHost(t, "beta")
	src.UseObservability(reg, traces)
	dst.UseObservability(reg, traces)
	addr := listen(t, dst)
	t.Cleanup(func() { src.Close() })

	v := newGuest(t, "vm0", 16)
	src.AddVM(v)
	if _, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{Recycle: true}); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `vecycle_migrations_total{host="alpha",role="source",outcome="success"} 1`) {
		t.Error("shared registry missing alpha series")
	}
	// The dest handler is asynchronous; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sb.Reset()
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(sb.String(), `vecycle_migrations_total{host="beta",role="dest",outcome="success"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shared registry missing beta series")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Both hosts' traces land in the shared log.
	hosts := make(map[string]bool)
	for _, m := range traces.Recent() {
		hosts[m.Host] = true
	}
	if !hosts["alpha"] || !hosts["beta"] {
		t.Errorf("shared trace log hosts = %v", hosts)
	}
}

// TestPostCopyObservability migrates post-copy and checks the post-copy
// series and trace events.
func TestPostCopyObservability(t *testing.T) {
	src := newHost(t, "alpha")
	dst := newHost(t, "beta")
	addr := listen(t, dst)
	t.Cleanup(func() { src.Close() })

	v := newGuest(t, "vm0", 32)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	src.AddVM(v)
	arrived := make(chan struct{}, 1)
	dst.OnArrival = func(*vm.VM, core.DestResult) { arrived <- struct{}{} }

	if _, err := src.PostCopyTo(context.Background(), addr, "vm0"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-arrived:
	case <-time.After(5 * time.Second):
		t.Fatal("destination never registered the VM")
	}

	var sb strings.Builder
	if err := src.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`vecycle_postcopy_resume_delay_seconds_count{host="alpha",role="source"} 1`,
		`vecycle_postcopy_pages_fetched_total{host="alpha"}`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("source post-copy metrics missing %q", want)
		}
	}
	recent := src.Traces().Recent()
	if len(recent) != 1 {
		t.Fatalf("recent traces = %d", len(recent))
	}
	kinds := make(map[string]bool)
	for _, e := range recent[0].Events {
		kinds[e.Kind] = true
	}
	for _, want := range []string{core.EventHello, core.EventManifest, core.EventFetch, core.EventDone} {
		if !kinds[want] {
			t.Errorf("post-copy trace missing %q event (got %v)", want, kinds)
		}
	}
}

// metricWord matches metric-name-shaped words in the documentation.
var metricWord = regexp.MustCompile(`vecycle_[a-z0-9_]+`)

// TestObservabilityDocsCoverage diffs the registered metric families
// against docs/OBSERVABILITY.md in both directions: every registered family
// must be documented, and every vecycle_* name the doc mentions must be a
// registered family (possibly with a _bucket/_sum/_count suffix).
func TestObservabilityDocsCoverage(t *testing.T) {
	h := newHost(t, "alpha")
	doc, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	names := h.Registry().Names()
	if len(names) == 0 {
		t.Fatal("no registered metric families")
	}
	registered := make(map[string]bool, len(names))
	for _, name := range names {
		registered[name] = true
		if !strings.Contains(string(doc), name) {
			t.Errorf("docs/OBSERVABILITY.md does not document %s", name)
		}
	}
	for _, word := range metricWord.FindAllString(string(doc), -1) {
		base := word
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(base, suffix); trimmed != base && registered[trimmed] {
				base = trimmed
				break
			}
		}
		if !registered[base] {
			t.Errorf("docs/OBSERVABILITY.md mentions %s, which is not a registered family", word)
		}
	}
}

// TestListenOpsRebind replaces an earlier ops listener and closes with the
// host.
func TestListenOpsRebind(t *testing.T) {
	h := newHost(t, "alpha")
	first, err := h.ListenOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	second, err := h.ListenOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Fatalf("rebind returned same address %s", first)
	}
	if _, err := http.Get("http://" + first + "/metrics"); err == nil {
		t.Error("first ops listener still serving after rebind")
	}
	body, _ := httpGet(t, fmt.Sprintf("http://%s/metrics", second))
	checkPrometheusFormat(t, body)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + second + "/metrics"); err == nil {
		t.Error("ops listener still serving after Close")
	}
}
