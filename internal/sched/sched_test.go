package sched

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"vecycle/internal/core"
	"vecycle/internal/vm"
)

func newHost(t *testing.T, name string) *Host {
	t.Helper()
	h, err := NewHost(name, filepath.Join(t.TempDir(), name))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func listen(t *testing.T, h *Host) string {
	t.Helper()
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return addr
}

func newGuest(t *testing.T, name string, pages int) *vm.VM {
	t.Helper()
	v, err := vm.New(vm.Config{Name: name, MemBytes: int64(pages) * vm.PageSize, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewHostValidation(t *testing.T) {
	if _, err := NewHost("", t.TempDir()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewHost("a", ""); err == nil {
		t.Error("empty store dir accepted")
	}
}

func TestHostVMRegistry(t *testing.T) {
	h := newHost(t, "alpha")
	v := newGuest(t, "vm0", 8)
	h.AddVM(v)
	if got, ok := h.VM("vm0"); !ok || got != v {
		t.Error("VM lookup failed")
	}
	if _, ok := h.VM("other"); ok {
		t.Error("phantom VM found")
	}
	if names := h.VMNames(); len(names) != 1 || names[0] != "vm0" {
		t.Errorf("VMNames = %v", names)
	}
}

func TestMigrateOverTCP(t *testing.T) {
	src := newHost(t, "alpha")
	dst := newHost(t, "beta")
	addr := listen(t, dst)

	v := newGuest(t, "vm0", 64)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	want := v.Fingerprint64()
	src.AddVM(v)

	arrived := make(chan core.DestResult, 1)
	dst.OnArrival = func(_ *vm.VM, res core.DestResult) { arrived <- res }

	m, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{Recycle: true, KeepCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-arrived:
	case <-time.After(5 * time.Second):
		t.Fatal("destination never registered the VM")
	}

	// The VM left the source and landed at the destination with identical
	// memory.
	if _, ok := src.VM("vm0"); ok {
		t.Error("VM still resident at source")
	}
	landed, ok := dst.VM("vm0")
	if !ok {
		t.Fatal("VM not resident at destination")
	}
	got := landed.Fingerprint64()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("page %d differs after migration", i)
		}
	}
	// First migration: no checkpoint at the destination, everything full.
	if m.PagesSum != 0 {
		t.Errorf("first migration recycled %d pages", m.PagesSum)
	}
	// The source kept a checkpoint.
	if !src.Store().Has("vm0") {
		t.Error("source did not checkpoint the departed VM")
	}
}

func TestPingPongOverTCP(t *testing.T) {
	alpha := newHost(t, "alpha")
	beta := newHost(t, "beta")
	addrA := listen(t, alpha)
	addrB := listen(t, beta)

	v := newGuest(t, "vm0", 64)
	if err := v.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	alpha.AddVM(v)

	wait := func(h *Host) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, ok := h.VM("vm0"); ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("VM never arrived")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Leg 1: alpha → beta (full, alpha checkpoints).
	m1, err := alpha.MigrateTo(context.Background(), addrB, "vm0", MigrateOptions{Recycle: true, KeepCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	wait(beta)

	// Touch some pages at beta, then send it home with ping-pong.
	vb, _ := beta.VM("vm0")
	vb.TouchRandomPages(5)
	m2, err := beta.MigrateTo(context.Background(), addrA, "vm0", MigrateOptions{Recycle: true, UsePingPong: true, KeepCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	wait(alpha)

	if m2.AnnounceBytes != 0 {
		t.Errorf("ping-pong leg received a %d-byte announcement", m2.AnnounceBytes)
	}
	if m2.PagesSum == 0 {
		t.Error("return leg recycled nothing")
	}
	if m2.BytesSent >= m1.BytesSent {
		t.Errorf("return leg traffic %d not below first leg %d", m2.BytesSent, m1.BytesSent)
	}

	// Leg 3: alpha → beta again; beta now has a checkpoint, announcement
	// path this time (no ping-pong flag).
	m3, err := alpha.MigrateTo(context.Background(), addrB, "vm0", MigrateOptions{Recycle: true, KeepCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	wait(beta)
	if m3.PagesSum == 0 {
		t.Error("third leg recycled nothing despite checkpoint at beta")
	}
}

func TestMigrateNoSuchVM(t *testing.T) {
	src := newHost(t, "alpha")
	dst := newHost(t, "beta")
	addr := listen(t, dst)
	_, err := src.MigrateTo(context.Background(), addr, "ghost", MigrateOptions{})
	if !errors.Is(err, ErrNoSuchVM) {
		t.Errorf("err = %v, want ErrNoSuchVM", err)
	}
}

func TestMigrateRejectedWhenResident(t *testing.T) {
	src := newHost(t, "alpha")
	dst := newHost(t, "beta")
	addr := listen(t, dst)
	dst.AddVM(newGuest(t, "vm0", 8)) // name collision at destination
	v := newGuest(t, "vm0", 8)
	src.AddVM(v)
	_, err := src.MigrateTo(context.Background(), addr, "vm0", MigrateOptions{})
	if !errors.Is(err, core.ErrRejected) {
		t.Errorf("err = %v, want ErrRejected", err)
	}
	// Failed migration must not remove the VM from the source.
	if _, ok := src.VM("vm0"); !ok {
		t.Error("VM lost after rejected migration")
	}
}

func TestMigrateDialFailure(t *testing.T) {
	src := newHost(t, "alpha")
	src.AddVM(newGuest(t, "vm0", 8))
	if _, err := src.MigrateTo(context.Background(), "127.0.0.1:1", "vm0", MigrateOptions{}); err == nil {
		t.Error("dial to dead port succeeded")
	}
}

func TestVDISchedulePaper(t *testing.T) {
	sched := PaperVDISchedule()
	if len(sched) != 26 {
		t.Fatalf("schedule has %d migrations, paper has 26", len(sched))
	}
	weekdays := map[time.Weekday]bool{}
	for i, m := range sched {
		wd := m.At.Weekday()
		if wd == time.Saturday || wd == time.Sunday {
			t.Errorf("migration %d on %v", i, wd)
		}
		weekdays[wd] = true
		if i%2 == 0 {
			if m.Direction != ToWorkstation || m.At.Hour() != 9 {
				t.Errorf("migration %d = %+v, want 9 am to workstation", i, m)
			}
		} else {
			if m.Direction != ToServer || m.At.Hour() != 17 {
				t.Errorf("migration %d = %+v, want 5 pm to server", i, m)
			}
		}
	}
	if len(weekdays) != 5 {
		t.Errorf("migrations cover %d weekdays, want 5", len(weekdays))
	}
	// Chronological order.
	for i := 1; i < len(sched); i++ {
		if !sched[i].At.After(sched[i-1].At) {
			t.Error("schedule not sorted")
		}
	}
}

func TestVDIScheduleValidation(t *testing.T) {
	now := time.Now()
	if _, err := VDISchedule(now, now.Add(-time.Hour), 9, 17); err == nil {
		t.Error("reversed range accepted")
	}
	if _, err := VDISchedule(now, now, 17, 9); err == nil {
		t.Error("reversed hours accepted")
	}
}

func TestVDIScheduleWeekendOnly(t *testing.T) {
	// A Saturday–Sunday range has no migrations.
	sat := time.Date(2014, 11, 8, 0, 0, 0, 0, time.UTC)
	sun := time.Date(2014, 11, 9, 23, 0, 0, 0, time.UTC)
	sched, err := VDISchedule(sat, sun, 9, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 0 {
		t.Errorf("weekend schedule has %d migrations", len(sched))
	}
}

func TestDirectionString(t *testing.T) {
	if ToWorkstation.String() != "server→workstation" || ToServer.String() != "workstation→server" {
		t.Error("direction labels wrong")
	}
	if Direction(9).String() != "direction(9)" {
		t.Error("invalid direction label wrong")
	}
}
