package sched

import (
	"context"
	"errors"
	"strings"
	"time"

	"vecycle/internal/checksum"
	"vecycle/internal/core"
	"vecycle/internal/obs"
)

// Host-side observability wiring. The migration engine keeps returning
// plain core.Metrics values; this file observes them at the host seam —
// every completed migration (either role) is folded into a metrics
// registry and a bounded trace log, and an optional ops HTTP listener
// exposes both. Nothing here touches the wire protocol.
//
// All series carry a host label, so several hosts in one process (the
// fleet command, tests) can share one registry and stay distinguishable.

// Histogram buckets, fixed so dashboards are comparable across hosts. The
// ranges bracket the paper's measurements: sub-second LAN migrations of
// small guests up to multi-minute WAN transfers of 6 GiB guests
// (Figures 6-8), downtimes from sub-millisecond to the multi-second
// stop-and-copy of a write-heavy guest.
var (
	durationBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}
	downtimeBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}
	// roundBytesBuckets spans 4 KiB (one page) to 1 GiB per pre-copy
	// round in powers of four.
	roundBytesBuckets = []float64{4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864, 268435456, 1073741824}
	// roundFramesBuckets spans 1 to ~1M page-carrying frames per round in
	// powers of four; with page-range frames negotiated a round's frame
	// count collapses well below its page count.
	roundFramesBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
)

// Outcome label values for vecycle_migrations_total.
const (
	outcomeSuccess  = "success"
	outcomeRejected = "rejected"
	outcomeCanceled = "canceled"
	outcomeError    = "error"
)

// hostObs bundles one host's metric handles and trace log.
type hostObs struct {
	host   string
	reg    *obs.Registry
	traces *obs.TraceLog

	migrations     *obs.CounterVec   // vecycle_migrations_total{host,role,outcome}
	active         *obs.GaugeVec     // vecycle_migrations_active{host,role}
	duration       *obs.HistogramVec // vecycle_migration_duration_seconds{host,role}
	downtime       *obs.HistogramVec // vecycle_migration_downtime_seconds{host}
	roundBytes     *obs.HistogramVec // vecycle_migration_round_bytes{host,role}
	roundFrames    *obs.HistogramVec // vecycle_round_frames{host,role}
	rangeFrames    *obs.CounterVec   // vecycle_range_frames_total{host}
	bytes          *obs.CounterVec   // vecycle_migration_bytes_total{host,role,direction}
	pages          *obs.CounterVec   // vecycle_migration_pages_total{host,kind}
	rounds         *obs.CounterVec   // vecycle_migration_rounds_total{host}
	announce       *obs.CounterVec   // vecycle_announce_bytes_total{host}
	announceRaw    *obs.CounterVec   // vecycle_announce_raw_bytes_total{host}
	sidecar        *obs.CounterVec   // vecycle_sidecar_total{host,outcome}
	retries        *obs.CounterVec   // vecycle_migration_retries_total{host}
	fallbacks      *obs.CounterVec   // vecycle_delta_fallbacks_total{host}
	salvage        *obs.CounterVec   // vecycle_salvage_total{host,outcome}
	salvagePg      *obs.CounterVec   // vecycle_salvage_pages_total{host}
	salvageAvoided *obs.CounterVec   // vecycle_salvage_bytes_avoided_total{host}
	compressAtt    *obs.CounterVec   // vecycle_compress_attempted_total{host}
	compressSkip   *obs.CounterVec   // vecycle_compress_skipped_total{host}
	stage          *obs.CounterVec   // vecycle_stage_seconds_total{host,stage,state}
	vmTotal        *obs.CounterVec   // vecycle_vm_migrations_total{host,vm,role}
	vmLast         *obs.GaugeVec     // vecycle_vm_last_migration_seconds{host,vm}
	resume         *obs.HistogramVec // vecycle_postcopy_resume_delay_seconds{host,role}
	fetched        *obs.CounterVec   // vecycle_postcopy_pages_fetched_total{host}
	hashBytes      *obs.CounterVec   // vecycle_hash_bytes_total{host,stage}
	hashAvoided    *obs.CounterVec   // vecycle_hash_avoided_bytes_total{host}
	degraded       *obs.CounterVec   // vecycle_degraded_total{host,stage,fault}
	cleanupErrs    *obs.CounterVec   // vecycle_store_cleanup_errors_total{host}
}

// newHostObs registers (or re-attaches to) every vecycle metric family in
// reg and wires the scrape-time gauges for h's store and VM table.
func newHostObs(h *Host, reg *obs.Registry, traces *obs.TraceLog) *hostObs {
	o := &hostObs{
		host:   h.name,
		reg:    reg,
		traces: traces,
		migrations: reg.CounterVec("vecycle_migrations_total",
			"Completed migration attempts by role and outcome.",
			"host", "role", "outcome"),
		active: reg.GaugeVec("vecycle_migrations_active",
			"Migrations currently in flight by role.",
			"host", "role"),
		duration: reg.HistogramVec("vecycle_migration_duration_seconds",
			"Wall-clock migration time (checkpoint load/save excluded, as in the paper).",
			durationBuckets, "host", "role"),
		downtime: reg.HistogramVec("vecycle_migration_downtime_seconds",
			"Stop-and-copy downtime: guest pause to destination acknowledgement, source-side.",
			downtimeBuckets, "host"),
		roundBytes: reg.HistogramVec("vecycle_migration_round_bytes",
			"Wire bytes per pre-copy round.",
			roundBytesBuckets, "host", "role"),
		roundFrames: reg.HistogramVec("vecycle_round_frames",
			"Page-carrying wire frames per pre-copy round; pages-per-round over this is the realized range-frame coalescing factor.",
			roundFramesBuckets, "host", "role"),
		rangeFrames: reg.CounterVec("vecycle_range_frames_total",
			"Coalesced page-range frames handled (sent or received); zero when the capability was not negotiated.",
			"host"),
		bytes: reg.CounterVec("vecycle_migration_bytes_total",
			"Transport bytes moved by migrations, by direction (sent/received).",
			"host", "role", "direction"),
		pages: reg.CounterVec("vecycle_migration_pages_total",
			"Pages handled, by wire encoding or reuse kind (full, sum, delta, compressed, reused_in_place, reused_from_disk, postcopy_fetched).",
			"host", "kind"),
		rounds: reg.CounterVec("vecycle_migration_rounds_total",
			"Pre-copy rounds run, including final stop-and-copy rounds.",
			"host"),
		announce: reg.CounterVec("vecycle_announce_bytes_total",
			"Bulk checksum-announcement traffic (the paper's 'additional traffic', §3.2).",
			"host"),
		announceRaw: reg.CounterVec("vecycle_announce_raw_bytes_total",
			"What announcements would have cost in the v1 encoding; minus vecycle_announce_bytes_total this is the compact-announce saving.",
			"host"),
		sidecar: reg.CounterVec("vecycle_sidecar_total",
			"Checkpoint fingerprint-sidecar consultations by outcome (hit, miss, fallback, disabled).",
			"host", "outcome"),
		retries: reg.CounterVec("vecycle_migration_retries_total",
			"Outgoing migration attempts re-run after transient transport failures.",
			"host"),
		fallbacks: reg.CounterVec("vecycle_delta_fallbacks_total",
			"Outgoing migrations re-run without deltas after a stale-base abort.",
			"host"),
		salvage: reg.CounterVec("vecycle_salvage_total",
			"Salvage-checkpoint activity around interrupted migrations, by outcome (written, write-failed, resumed, superseded).",
			"host", "outcome"),
		salvagePg: reg.CounterVec("vecycle_salvage_pages_total",
			"Pages persisted into salvage checkpoints by interrupted incoming migrations.",
			"host"),
		salvageAvoided: reg.CounterVec("vecycle_salvage_bytes_avoided_total",
			"Wire bytes avoided by migrations that resumed from a salvage checkpoint (pages reused out of the partial image, at page-size cost each).",
			"host"),
		compressAtt: reg.CounterVec("vecycle_compress_attempted_total",
			"Full pages the entropy gate passed to deflate on outgoing migrations.",
			"host"),
		compressSkip: reg.CounterVec("vecycle_compress_skipped_total",
			"Full pages the entropy gate sent raw (sampled as incompressible) on outgoing migrations.",
			"host"),
		stage: reg.CounterVec("vecycle_stage_seconds_total",
			"Pipelined-engine stage time by stage (ingest, worker, emit) and state (busy, stall).",
			"host", "stage", "state"),
		vmTotal: reg.CounterVec("vecycle_vm_migrations_total",
			"Per-VM migration series: completed migrations touching this VM, by role.",
			"host", "vm", "role"),
		vmLast: reg.GaugeVec("vecycle_vm_last_migration_seconds",
			"Duration of the VM's most recent successful migration on this host.",
			"host", "vm"),
		resume: reg.HistogramVec("vecycle_postcopy_resume_delay_seconds",
			"Post-copy resume delay: migration start until the guest could run at the destination.",
			downtimeBuckets, "host", "role"),
		fetched: reg.CounterVec("vecycle_postcopy_pages_fetched_total",
			"Pages demand-fetched over the network after a post-copy resume.",
			"host"),
		hashBytes: reg.CounterVec("vecycle_hash_bytes_total",
			"Payload bytes actually digested, by stage: track (destination round-end TrackIncoming pass), save_keys (store content-keying scan), save_sidecar (fingerprint sidecar build).",
			"host", "stage"),
		hashAvoided: reg.CounterVec("vecycle_hash_avoided_bytes_total",
			"Payload bytes whose digest was recycled from an earlier computation (install-time sums, migration sum tables handed to SaveWithSums) instead of recomputed.",
			"host"),
		degraded: reg.CounterVec("vecycle_degraded_total",
			"Graceful-degradation ladder rungs taken: a best-effort activity (checkpoint persist, salvage, recycled read, union fold) failed and the migration carried on without it, by stage and storage-fault label.",
			"host", "stage", "fault"),
		cleanupErrs: reg.CounterVec("vecycle_store_cleanup_errors_total",
			"Store cleanup unlinks (stale temp files, superseded artifacts) that failed and left the file behind for the next scrub.",
			"host"),
	}
	reg.GaugeVec("vecycle_store_usage_bytes",
		"Bytes of checkpoint images currently stored.",
		"host").With(h.name).SetFunc(func() float64 {
		u, err := h.store.Usage()
		if err != nil {
			return 0
		}
		return float64(u)
	})
	reg.GaugeVec("vecycle_store_quota_bytes",
		"Configured checkpoint store cap (0 = uncapped).",
		"host").With(h.name).SetFunc(func() float64 { return float64(h.store.Quota()) })
	reg.GaugeVec("vecycle_store_images",
		"Number of checkpoint images in the store.",
		"host").With(h.name).SetFunc(func() float64 {
		names, err := h.store.List()
		if err != nil {
			return 0
		}
		return float64(len(names))
	})
	reg.GaugeVec("vecycle_store_logical_bytes",
		"Sum of resident checkpoint sizes as saved (pages × page size), before content dedup.",
		"host").With(h.name).SetFunc(func() float64 {
		return float64(h.store.Stats().LogicalBytes)
	})
	reg.GaugeVec("vecycle_store_physical_bytes",
		"Bytes of unique page content the pool actually holds; logical over physical is the host dedup ratio.",
		"host").With(h.name).SetFunc(func() float64 {
		return float64(h.store.Stats().PhysicalBytes)
	})
	reg.GaugeVec("vecycle_host_vms",
		"VMs currently resident on the host.",
		"host").With(h.name).SetFunc(func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		return float64(len(h.vms))
	})
	h.store.SetMetrics(storeMetrics{
		host: h.name,
		dedup: reg.CounterVec("vecycle_dedup_pages_total",
			"Pages a checkpoint save found already resident in the content-addressed pool and referenced instead of rewriting.",
			"host"),
		gc: reg.CounterVec("vecycle_store_gc_total",
			"Store garbage-collection passes by outcome (reclaimed, clean).",
			"host", "outcome"),
		// Save-time digest passes share the migration-level hash families,
		// so one pair of series tells the whole hash-once story per host.
		hash:        o.hashBytes,
		hashAvoided: o.hashAvoided,
		// Store-side degradations (union folds that skipped an entry) and
		// cleanup failures land in the same families as the host-level
		// ladder, so one query covers every rung.
		degraded:    o.degraded,
		cleanupErrs: o.cleanupErrs,
	})
	return o
}

// storeMetrics feeds the checkpoint store's dedup and GC callbacks into the
// registry. The store delivers these outside its own lock, so the counters
// may safely be scraped (or trigger SetFunc gauges) re-entrantly.
type storeMetrics struct {
	host        string
	dedup       *obs.CounterVec
	gc          *obs.CounterVec
	hash        *obs.CounterVec
	hashAvoided *obs.CounterVec
	degraded    *obs.CounterVec
	cleanupErrs *obs.CounterVec
}

func (m storeMetrics) DedupPages(n int)     { m.dedup.With(m.host).Add(float64(n)) }
func (m storeMetrics) GCRun(outcome string) { m.gc.With(m.host, outcome).Inc() }

func (m storeMetrics) Degraded(stage, fault string) {
	m.degraded.With(m.host, stage, fault).Inc()
}

func (m storeMetrics) CleanupError(string) { m.cleanupErrs.With(m.host).Inc() }

func (m storeMetrics) HashBytes(stage string, n int64) {
	m.hash.With(m.host, stage).Add(float64(n))
}

func (m storeMetrics) HashAvoidedBytes(n int64) {
	m.hashAvoided.With(m.host).Add(float64(n))
}

// begin opens a trace for one migration attempt and marks it active.
func (o *hostObs) begin(role, vmName, peer string) *obs.Recorder {
	o.active.With(o.host, role).Add(1)
	return o.traces.Begin(o.host, role, vmName, peer)
}

// eventFunc adapts the engine's protocol-turn callback to the trace
// recorder, teeing the per-round and announcement volumes into the
// registry as they happen (not just at migration end) so a scrape during
// a long WAN migration sees live progress. Pause/resume pairs — emitted
// only on the source of a pre-copy migration that reached stop-and-copy —
// feed the downtime histogram.
func (o *hostObs) eventFunc(rec *obs.Recorder, role string) core.EventFunc {
	var pausedAt time.Time
	return func(e core.Event) {
		rec.Event(obs.Event{
			Kind:   e.Kind,
			Round:  e.Round,
			Pages:  e.Pages,
			Bytes:  e.Bytes,
			Detail: e.Detail,
		})
		switch e.Kind {
		case core.EventRound:
			o.roundBytes.With(o.host, role).Observe(float64(e.Bytes))
			o.roundFrames.With(o.host, role).Observe(float64(e.Frames))
			o.rounds.With(o.host).Inc()
		case core.EventAnnounce:
			o.announce.With(o.host).Add(float64(e.Bytes))
			o.announceRaw.With(o.host).Add(float64(checksum.EncodedSize(int(e.Pages))))
		case core.EventSidecar:
			o.sidecar.With(o.host, e.Detail).Inc()
		case core.EventSalvage:
			o.salvage.With(o.host, e.Detail).Inc()
			if e.Detail == "written" {
				o.salvagePg.With(o.host).Add(float64(e.Pages))
			}
		case core.EventDegraded:
			stage, fault := splitDegraded(e.Detail)
			o.degraded.With(o.host, stage, fault).Inc()
		case core.EventPause:
			pausedAt = time.Now()
		case core.EventResume:
			if !pausedAt.IsZero() {
				o.downtime.With(o.host).Observe(time.Since(pausedAt).Seconds())
				pausedAt = time.Time{}
			}
		}
	}
}

// splitDegraded parses an EventDegraded detail ("stage:fault") into its
// metric labels.
func splitDegraded(detail string) (stage, fault string) {
	if i := strings.IndexByte(detail, ':'); i >= 0 {
		return detail[:i], detail[i+1:]
	}
	return detail, "other"
}

// outcome classifies a migration error for the outcome label.
func outcome(err error) string {
	switch {
	case err == nil:
		return outcomeSuccess
	case errors.Is(err, core.ErrRejected):
		return outcomeRejected
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return outcomeCanceled
	default:
		return outcomeError
	}
}

// finish closes the trace and folds the migration's metrics into the
// registry. m is the engine's programmatic result; err decides the
// outcome label. Safe to call with partial metrics on failure.
func (o *hostObs) finish(rec *obs.Recorder, role, vmName string, m core.Metrics, err error) {
	rec.Finish(err)
	o.active.With(o.host, role).Add(-1)
	o.migrations.With(o.host, role, outcome(err)).Inc()
	o.vmTotal.With(o.host, vmName, role).Inc()
	o.bytes.With(o.host, role, "sent").Add(float64(m.BytesSent))
	o.bytes.With(o.host, role, "received").Add(float64(m.BytesReceived))
	o.pages.With(o.host, "full").Add(float64(m.PagesFull))
	o.pages.With(o.host, "sum").Add(float64(m.PagesSum))
	o.pages.With(o.host, "delta").Add(float64(m.PagesDelta))
	o.pages.With(o.host, "compressed").Add(float64(m.PagesCompressed))
	o.pages.With(o.host, "reused_in_place").Add(float64(m.PagesReusedInPlace))
	o.pages.With(o.host, "reused_from_disk").Add(float64(m.PagesReusedFromDisk))
	o.rangeFrames.With(o.host).Add(float64(m.RangeFrames))
	o.compressAtt.With(o.host).Add(float64(m.CompressAttempted))
	o.compressSkip.With(o.host).Add(float64(m.CompressSkipped))
	if m.HashBytes > 0 {
		o.hashBytes.With(o.host, "track").Add(float64(m.HashBytes))
	}
	if m.HashAvoidedBytes > 0 {
		o.hashAvoided.With(o.host).Add(float64(m.HashAvoidedBytes))
	}
	o.observeStages(m.Stages)
	if err == nil {
		o.duration.With(o.host, role).Observe(m.Duration.Seconds())
		o.vmLast.With(o.host, vmName).Set(m.Duration.Seconds())
	}
}

// finishPostCopy is finish plus the post-copy specifics.
func (o *hostObs) finishPostCopy(rec *obs.Recorder, role, vmName string, m core.PostCopyMetrics, err error) {
	o.finish(rec, role, vmName, m.Metrics, err)
	o.fetched.With(o.host).Add(float64(m.PagesRequested))
	if err == nil {
		o.resume.With(o.host, role).Observe(m.ResumeDelay.Seconds())
	}
}

// observeStages accumulates the pipelined engine's busy/stall breakdown.
func (o *hostObs) observeStages(s core.StageMetrics) {
	add := func(stage, state string, d time.Duration) {
		if d > 0 {
			o.stage.With(o.host, stage, state).Add(d.Seconds())
		}
	}
	add("ingest", "busy", s.IngestBusy)
	add("ingest", "stall", s.IngestStall)
	add("dispatch", "stall", s.DispatchStall)
	add("worker", "busy", s.WorkerBusy)
	add("emit", "busy", s.EmitBusy)
	add("emit", "stall", s.EmitStall)
}

// Registry exposes the host's metrics registry (scraped at /metrics).
func (h *Host) Registry() *obs.Registry { return h.obs.reg }

// Traces exposes the host's migration trace log (served at
// /debug/migrations, exported with TraceLog.WriteJSONL).
func (h *Host) Traces() *obs.TraceLog { return h.obs.traces }

// UseObservability re-homes the host's metrics and traces onto a shared
// registry and trace log — the fleet pattern: every host in the process
// reports into one scrape endpoint, distinguished by the host label. Call
// before any migration runs; either argument may be nil to keep the
// host's own.
func (h *Host) UseObservability(reg *obs.Registry, traces *obs.TraceLog) {
	if reg == nil {
		reg = h.obs.reg
	}
	if traces == nil {
		traces = h.obs.traces
	}
	h.obs = newHostObs(h, reg, traces)
}

// ListenOps starts the ops HTTP listener on addr (e.g. "127.0.0.1:0" or
// ":9090"), serving /metrics (Prometheus text format), /debug/migrations
// (recent trace JSON), /debug/migrations.jsonl, and /debug/pprof. The
// returned address carries the bound port. The listener stops with
// Host.Close.
func (h *Host) ListenOps(addr string) (string, error) {
	srv, err := obs.Serve(addr, obs.Handler(h.obs.reg, h.obs.traces))
	if err != nil {
		return "", err
	}
	h.mu.Lock()
	if h.opsSrv != nil {
		h.opsSrv.Close()
	}
	h.opsSrv = srv
	h.mu.Unlock()
	return srv.Addr(), nil
}
