package sched

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"vecycle/internal/vm"
)

// TestThreeHostDeltaStaleBaseRetry sends a VM around a three-host ring with
// optimistic deltas enabled. On the third leg the source's checkpoint
// mirror is stale (the VM reached the destination via the middle host);
// the destination's verification must abort the delta attempt and the
// automatic retry must complete the migration without deltas.
func TestThreeHostDeltaStaleBaseRetry(t *testing.T) {
	hosts := make([]*Host, 3)
	addrs := make([]string, 3)
	var (
		errMu  sync.Mutex
		errLog []string
	)
	for i := range hosts {
		hosts[i] = newHost(t, string(rune('a'+i)))
		hosts[i].SaveArrivals = true
		hosts[i].OnError = func(err error) {
			errMu.Lock()
			defer errMu.Unlock()
			errLog = append(errLog, err.Error())
		}
		addrs[i] = listen(t, hosts[i])
	}
	g, err := vm.New(vm.Config{Name: "vm0", MemBytes: 64 * vm.PageSize, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	hosts[0].AddVM(g)

	wait := func(h *Host) *vm.VM {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if v, ok := h.VM("vm0"); ok {
				return v
			}
			if time.Now().After(deadline) {
				t.Fatal("VM never arrived")
			}
			time.Sleep(time.Millisecond)
		}
	}

	route := []int{1, 2, 0, 1}
	cur := 0
	var prev *vm.VM = g
	for leg, to := range route {
		m, err := hosts[cur].MigrateTo(context.Background(), addrs[to], "vm0", MigrateOptions{
			Recycle: true, UseDelta: true, KeepCheckpoint: true,
		})
		if err != nil {
			t.Fatalf("leg %d (%d->%d): %v", leg+1, cur, to, err)
		}
		v := wait(hosts[to])
		if !prev.MemEqual(v) {
			t.Fatalf("leg %d: memory differs", leg+1)
		}
		// Legs 3+ still recycle via checksums even when the delta attempt
		// is retried away.
		if leg >= 2 && m.PagesSum == 0 {
			t.Errorf("leg %d recycled nothing", leg+1)
		}
		v.TouchRandomPages(8)
		prev = v
		cur = to
	}
	// At least one stale-base retry must have happened on this topology.
	errMu.Lock()
	defer errMu.Unlock()
	retried := false
	for _, e := range errLog {
		if strings.Contains(e, "retrying without deltas") {
			retried = true
		}
	}
	if !retried {
		t.Errorf("expected a stale-delta retry; host errors: %v", errLog)
	}
}
