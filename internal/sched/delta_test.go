package sched

import (
	"context"
	"testing"
	"time"

	"vecycle/internal/vm"
)

// TestPingPongWithDeltas runs the full two-host loop with SaveArrivals and
// UseDelta: after the first round trip, partially-changed pages travel as
// deltas and the wire shrinks below even the checksum-only baseline plus
// full pages.
func TestPingPongWithDeltas(t *testing.T) {
	alpha := newHost(t, "alpha")
	beta := newHost(t, "beta")
	alpha.SaveArrivals = true
	beta.SaveArrivals = true
	addrA := listen(t, alpha)
	addrB := listen(t, beta)

	guest, err := vm.New(vm.Config{Name: "vm0", MemBytes: 64 * vm.PageSize, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	want := guest.Fingerprint64()
	alpha.AddVM(guest)

	wait := func(h *Host) *vm.VM {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if v, ok := h.VM("vm0"); ok {
				return v
			}
			if time.Now().After(deadline) {
				t.Fatal("VM never arrived")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// partialTouch changes 64 bytes inside each of n pages.
	partialTouch := func(v *vm.VM, n int) {
		buf := make([]byte, vm.PageSize)
		for p := 0; p < n; p++ {
			v.ReadPage(p, buf)
			for i := 0; i < 64; i++ {
				buf[i] ^= 0xA5
			}
			v.WritePage(p, buf)
		}
	}

	opts := MigrateOptions{Recycle: true, KeepCheckpoint: true, UseDelta: true}

	// Leg 1: alpha → beta (full, first visit).
	if _, err := alpha.MigrateTo(context.Background(), addrB, "vm0", opts); err != nil {
		t.Fatal(err)
	}
	vb := wait(beta)
	partialTouch(vb, 8)

	// Leg 2: beta → alpha. Beta's arrival image == alpha's checkpoint, so
	// the 8 partially-touched pages go as deltas.
	m2, err := beta.MigrateTo(context.Background(), addrA, "vm0", opts)
	if err != nil {
		t.Fatal(err)
	}
	va := wait(alpha)
	if m2.PagesDelta != 8 {
		t.Errorf("leg 2 PagesDelta = %d, want 8", m2.PagesDelta)
	}
	if m2.PagesFull != 0 {
		t.Errorf("leg 2 PagesFull = %d, want 0 (all changes partial)", m2.PagesFull)
	}

	// Leg 3: alpha → beta again, same dance.
	partialTouch(va, 4)
	m3, err := alpha.MigrateTo(context.Background(), addrB, "vm0", opts)
	if err != nil {
		t.Fatal(err)
	}
	vb = wait(beta)
	if m3.PagesDelta != 4 {
		t.Errorf("leg 3 PagesDelta = %d, want 4", m3.PagesDelta)
	}

	// Content integrity across all three legs: the pages never touched
	// still match the original guest.
	got := vb.Fingerprint64()
	for i := 12; i < len(want); i++ { // pages 0..11 were touched
		if got[i] != want[i] {
			t.Fatalf("untouched page %d changed across the ping-pong", i)
		}
	}
}
