package sched

import (
	"fmt"
	"time"
)

// Dynamic workload consolidation, the second migration pattern §2.2 cites
// (Verma et al., MIDDLEWARE'14): low-activity VMs are packed onto a
// consolidation server and move to an active host as soon as they wake up;
// when they go quiet again they move back. Inter-migration times are hours,
// exactly the regime where checkpoint recycling pays.

// ConsolidationPolicy decides migrations from an activity signal with
// hysteresis: a VM leaves the consolidation server when its activity rises
// above WakeLevel, and returns once it has stayed below SleepLevel for
// MinQuiet.
type ConsolidationPolicy struct {
	// WakeLevel triggers a migration to the active host.
	WakeLevel float64
	// SleepLevel arms the return migration.
	SleepLevel float64
	// MinQuiet is how long activity must stay below SleepLevel before the
	// VM is consolidated again — hysteresis against flapping.
	MinQuiet time.Duration
}

// Validate checks the policy.
func (p ConsolidationPolicy) Validate() error {
	if p.WakeLevel <= p.SleepLevel {
		return fmt.Errorf("sched: WakeLevel %v must exceed SleepLevel %v", p.WakeLevel, p.SleepLevel)
	}
	if p.WakeLevel > 1 || p.SleepLevel < 0 {
		return fmt.Errorf("sched: thresholds out of range [0,1]")
	}
	if p.MinQuiet < 0 {
		return fmt.Errorf("sched: negative MinQuiet")
	}
	return nil
}

// ConsolidationEvent is one planned migration. ToWorkstation means "to the
// active host" and ToServer "back to the consolidation server", mirroring
// the VDI directions.
type ConsolidationEvent struct {
	At        time.Time
	Direction Direction
}

// Plan walks a sampled activity signal (times must be ascending) and emits
// the migrations the policy would perform. The VM starts consolidated.
func (p ConsolidationPolicy) Plan(times []time.Time, level func(time.Time) float64) ([]ConsolidationEvent, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var events []ConsolidationEvent
	consolidated := true
	var quietSince time.Time
	quiet := false
	for i, ts := range times {
		if i > 0 && ts.Before(times[i-1]) {
			return nil, fmt.Errorf("sched: activity samples not ascending at %d", i)
		}
		l := level(ts)
		if consolidated {
			if l >= p.WakeLevel {
				events = append(events, ConsolidationEvent{At: ts, Direction: ToWorkstation})
				consolidated = false
				quiet = false
			}
			continue
		}
		// Active host: watch for a sustained quiet period.
		if l > p.SleepLevel {
			quiet = false
			continue
		}
		if !quiet {
			quiet = true
			quietSince = ts
			continue
		}
		if ts.Sub(quietSince) >= p.MinQuiet {
			events = append(events, ConsolidationEvent{At: ts, Direction: ToServer})
			consolidated = true
			quiet = false
		}
	}
	return events, nil
}
