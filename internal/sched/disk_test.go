package sched

import (
	"context"
	"testing"
	"time"

	"vecycle/internal/disk"
	"vecycle/internal/vm"
)

// TestMigrateVMWithDisk moves a VM and its attached block device between
// hosts (unshared-storage mode), twice, verifying content on both legs and
// that the disk's second leg recycles its checkpoint.
func TestMigrateVMWithDisk(t *testing.T) {
	alpha := newHost(t, "alpha")
	beta := newHost(t, "beta")
	addrA := listen(t, alpha)
	addrB := listen(t, beta)

	guest := newGuest(t, "db-1", 32)
	if err := guest.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	dev, err := disk.New("db-1", 4*disk.BlockSize, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.MkFS(0.75, 6); err != nil {
		t.Fatal(err)
	}
	wantMem := guest.Fingerprint64()
	wantDisk := dev.Backing().Fingerprint64()
	alpha.AddVM(guest)
	alpha.AttachDisk(dev)

	waitBoth := func(h *Host, vmName string) (*vm.VM, *disk.Disk) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			v, okV := h.VM(vmName)
			d, okD := h.Disk(vmName)
			if okV && okD {
				return v, d
			}
			if time.Now().After(deadline) {
				t.Fatalf("VM/disk never arrived (vm=%v disk=%v)", okV, okD)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Leg 1: everything moves full.
	if _, err := alpha.MigrateTo(context.Background(), addrB, "db-1", MigrateOptions{Recycle: true, KeepCheckpoint: true}); err != nil {
		t.Fatal(err)
	}
	vb, db := waitBoth(beta, "db-1")
	if _, stillThere := alpha.Disk("db-1"); stillThere {
		t.Error("disk still attached at source after migration")
	}
	for i, h := range vb.Fingerprint64() {
		if h != wantMem[i] {
			t.Fatalf("memory page %d differs after leg 1", i)
		}
	}
	for i, h := range db.Backing().Fingerprint64() {
		if h != wantDisk[i] {
			t.Fatalf("disk page %d differs after leg 1", i)
		}
	}
	// Alpha checkpointed both.
	if !alpha.Store().Has("db-1") || !alpha.Store().Has("db-1#disk") {
		t.Error("source did not checkpoint VM and disk")
	}

	// Some disk writes at beta, then migrate back: the disk leg should
	// recycle nearly everything.
	if err := db.AppendLog(3, disk.BlockSize/2, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := beta.MigrateTo(context.Background(), addrA, "db-1", MigrateOptions{Recycle: true, KeepCheckpoint: true}); err != nil {
		t.Fatal(err)
	}
	va, da := waitBoth(alpha, "db-1")
	if !vb.MemEqual(va) {
		t.Error("memory differs after leg 2")
	}
	if !db.ContentEqual(da) {
		t.Error("disk differs after leg 2")
	}
}
