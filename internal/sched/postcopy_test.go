package sched

import (
	"context"
	"testing"
	"time"

	"vecycle/internal/vm"
)

func TestPostCopyOverTCP(t *testing.T) {
	alpha := newHost(t, "alpha")
	beta := newHost(t, "beta")
	alpha.SaveArrivals = true
	beta.SaveArrivals = true
	addrA := listen(t, alpha)
	addrB := listen(t, beta)

	guest, err := vm.New(vm.Config{Name: "vm0", MemBytes: 64 * vm.PageSize, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	want := guest.Fingerprint64()
	alpha.AddVM(guest)

	wait := func(h *Host) *vm.VM {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if v, ok := h.VM("vm0"); ok {
				return v
			}
			if time.Now().After(deadline) {
				t.Fatal("VM never arrived")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Leg 1: post-copy with no checkpoint anywhere — every page is
	// demand-fetched.
	m1, err := alpha.PostCopyTo(context.Background(), addrB, "vm0")
	if err != nil {
		t.Fatal(err)
	}
	vb := wait(beta)
	if m1.PagesRequested != 64 {
		t.Errorf("leg 1 requested %d pages, want 64", m1.PagesRequested)
	}
	got := vb.Fingerprint64()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("page %d differs after post-copy", i)
		}
	}

	// Leg 2: back to alpha, which now holds a checkpoint (written by
	// PostCopyTo); only touched pages fault over the network.
	vb.TouchRandomPages(5)
	m2, err := beta.PostCopyTo(context.Background(), addrA, "vm0")
	if err != nil {
		t.Fatal(err)
	}
	wait(alpha)
	if m2.PagesRequested == 0 || m2.PagesRequested > 5 {
		t.Errorf("leg 2 requested %d pages, want 1..5", m2.PagesRequested)
	}
	if m2.BytesSent >= m1.BytesSent {
		t.Errorf("leg 2 sent %d bytes, leg 1 %d", m2.BytesSent, m1.BytesSent)
	}
}

func TestPostCopyNoSuchVM(t *testing.T) {
	alpha := newHost(t, "alpha")
	if _, err := alpha.PostCopyTo(context.Background(), "127.0.0.1:1", "ghost"); err == nil {
		t.Error("missing VM accepted")
	}
}
