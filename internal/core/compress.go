package core

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sync"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// Page compression, the orthogonal optimization of Svärd et al. (paper
// reference [24]) that §5 notes "can be combined with VeCycle": full pages
// that must cross the wire are deflated first. Checksum-only pages gain
// nothing (they are already 25 bytes), so compression only touches
// msgPageFull traffic — and incompressible pages (random data, encrypted
// memory) fall back to the raw encoding when deflate fails to shrink them.

// The entropy gate: deflate at BestSpeed still costs ~25 µs per 4 KiB page
// even when the data is incompressible and the output is thrown away in
// favour of the raw encoding. Before deflating, the encoder samples the
// page's byte histogram on a stride and estimates its Shannon entropy in
// integer fixed point; pages sampling close to 8 bits/byte (random data,
// encrypted or already-compressed memory) skip the flate pass entirely and
// go out as raw/full frames via the existing fallback encoding — no new
// wire tags. The decision is a pure function of the page bytes, so the wire
// stream stays byte-identical at every pipeline width. Misclassification is
// a pure performance trade: a skipped-but-compressible page ships raw
// (bigger, still correct), a passed-but-incompressible page wastes one
// deflate and falls back raw exactly as before.

// gateSamples is the number of bytes the entropy probe reads, spread across
// the page on a fixed stride (512 B sampled of a 4 KiB page).
const gateSamples = 512

// gateEntropyQ8 is the skip threshold in Q8 fixed-point bits per sampled
// byte. 512 uniform-random samples over 256 symbols measure ~7.2 empirical
// bits/byte (the sample-size bias keeps them below 8.0); structured or
// repetitive data measures well under 6. Pages above the threshold skip
// deflate.
const gateEntropyQ8 = 7 * 256 // 7.0 bits/byte

// log2Q8 holds round(log2(c) * 256) for c in [0, gateSamples]; index 0 is
// unused (empty histogram bins contribute nothing).
var log2Q8 [gateSamples + 1]uint32

func init() {
	for c := 2; c <= gateSamples; c++ {
		// Integer log2 in Q8 without floats: 256*floor(log2) plus a linear
		// interpolation of the fraction from the 8 bits below the top bit.
		// Max error vs the true log2 is ~0.086 bit — far inside the gate's
		// decision margin — and the table is bit-identical on every platform.
		msb := uint32(bits.Len32(uint32(c)) - 1)
		frac := (uint32(c)<<8)>>msb - 256 // (c / 2^msb - 1) in Q8
		log2Q8[c] = msb<<8 + frac
	}
}

// compressible estimates whether deflate is worth attempting on page. Pure
// function of the page bytes (content-pure): the golden-stream invariant
// across pipeline widths depends on that.
func compressible(page []byte) bool {
	stride := len(page) / gateSamples
	if stride < 1 {
		// Sub-sample-sized inputs: too small to estimate, just try deflate.
		return true
	}
	var hist [256]uint16
	for i := 0; i < gateSamples; i++ {
		hist[page[i*stride]]++
	}
	// Empirical entropy over the N samples, scaled by N and in Q8:
	//   H*N = N*log2(N) - sum_c count(c)*log2(count(c))
	const nLog2nQ8 = gateSamples * 9 << 8 // N * log2(512) in Q8
	var sum uint32
	for _, c := range hist {
		sum += uint32(c) * log2Q8[c]
	}
	return nLog2nQ8-sum <= gateEntropyQ8*gateSamples
}

// pageCompressor deflates page payloads, reusing one encoder.
type pageCompressor struct {
	buf bytes.Buffer
	fw  *flate.Writer
}

func newPageCompressor() (*pageCompressor, error) {
	c := &pageCompressor{}
	fw, err := flate.NewWriter(&c.buf, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("core: init compressor: %w", err)
	}
	c.fw = fw
	return c, nil
}

// compressorPool recycles pageCompressors across migrations and workers.
// Each one owns a flate.Writer holding several hundred KiB of window and
// hash-chain state — far too expensive to rebuild per round.
var compressorPool sync.Pool

func getPageCompressor() (*pageCompressor, error) {
	if c, ok := compressorPool.Get().(*pageCompressor); ok {
		return c, nil
	}
	return newPageCompressor()
}

func putPageCompressor(c *pageCompressor) {
	if c == nil {
		return
	}
	c.buf.Reset()
	compressorPool.Put(c)
}

// compress deflates page. ok=false means the page did not shrink and the
// caller should send it raw.
func (c *pageCompressor) compress(page []byte) (data []byte, ok bool, err error) {
	c.buf.Reset()
	c.fw.Reset(&c.buf)
	if _, err := c.fw.Write(page); err != nil {
		return nil, false, fmt.Errorf("core: compress page: %w", err)
	}
	if err := c.fw.Close(); err != nil {
		return nil, false, fmt.Errorf("core: compress page: %w", err)
	}
	if c.buf.Len() >= len(page) {
		return nil, false, nil
	}
	return c.buf.Bytes(), true, nil
}

// writePageFullZ emits a compressed full-page message: the standard page
// header followed by a u32 length and the deflate stream.
func writePageFullZ(w io.Writer, page uint64, sum checksum.Sum, compressed []byte) error {
	if err := writePageHeader(w, msgPageFullZ, page, sum); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(compressed)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("core: write compressed length: %w", err)
	}
	if _, err := w.Write(compressed); err != nil {
		return fmt.Errorf("core: write compressed payload: %w", err)
	}
	return nil
}

// pageDecompressor inflates page payloads, reusing one decoder.
type pageDecompressor struct {
	comp []byte
	fr   io.ReadCloser
}

func newPageDecompressor() *pageDecompressor {
	return &pageDecompressor{
		comp: make([]byte, 0, vm.PageSize),
		fr:   flate.NewReader(bytes.NewReader(nil)),
	}
}

// readInto reads one compressed payload (length prefix + deflate stream)
// from r and inflates exactly PageSize bytes into dst.
func (d *pageDecompressor) readInto(r io.Reader, dst []byte) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return fmt.Errorf("core: read compressed length: %w", err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n >= vm.PageSize {
		return fmt.Errorf("%w: compressed page length %d out of (0,%d)", ErrProtocol, n, vm.PageSize)
	}
	if cap(d.comp) < int(n) {
		d.comp = make([]byte, n)
	}
	d.comp = d.comp[:n]
	if _, err := io.ReadFull(r, d.comp); err != nil {
		return fmt.Errorf("core: read compressed payload: %w", err)
	}
	return d.inflate(d.comp, dst)
}

// inflate decompresses one already-read deflate payload into dst, which
// must hold exactly PageSize bytes. Pipeline workers use this directly:
// the decoder stage reads the payload off the wire and the worker inflates
// it off-thread.
func (d *pageDecompressor) inflate(comp, dst []byte) error {
	if err := d.fr.(flate.Resetter).Reset(bytes.NewReader(comp), nil); err != nil {
		return fmt.Errorf("core: reset inflater: %w", err)
	}
	if _, err := io.ReadFull(d.fr, dst[:vm.PageSize]); err != nil {
		return fmt.Errorf("%w: inflate page: %v", ErrProtocol, err)
	}
	// The stream must end exactly at a page boundary.
	var extra [1]byte
	if n, _ := d.fr.Read(extra[:]); n != 0 {
		return fmt.Errorf("%w: compressed page inflates beyond %d bytes", ErrProtocol, vm.PageSize)
	}
	return nil
}
