package core

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// Page compression, the orthogonal optimization of Svärd et al. (paper
// reference [24]) that §5 notes "can be combined with VeCycle": full pages
// that must cross the wire are deflated first. Checksum-only pages gain
// nothing (they are already 25 bytes), so compression only touches
// msgPageFull traffic — and incompressible pages (random data, encrypted
// memory) fall back to the raw encoding when deflate fails to shrink them.

// pageCompressor deflates page payloads, reusing one encoder.
type pageCompressor struct {
	buf bytes.Buffer
	fw  *flate.Writer
}

func newPageCompressor() (*pageCompressor, error) {
	c := &pageCompressor{}
	fw, err := flate.NewWriter(&c.buf, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("core: init compressor: %w", err)
	}
	c.fw = fw
	return c, nil
}

// compressorPool recycles pageCompressors across migrations and workers.
// Each one owns a flate.Writer holding several hundred KiB of window and
// hash-chain state — far too expensive to rebuild per round.
var compressorPool sync.Pool

func getPageCompressor() (*pageCompressor, error) {
	if c, ok := compressorPool.Get().(*pageCompressor); ok {
		return c, nil
	}
	return newPageCompressor()
}

func putPageCompressor(c *pageCompressor) {
	if c == nil {
		return
	}
	c.buf.Reset()
	compressorPool.Put(c)
}

// compress deflates page. ok=false means the page did not shrink and the
// caller should send it raw.
func (c *pageCompressor) compress(page []byte) (data []byte, ok bool, err error) {
	c.buf.Reset()
	c.fw.Reset(&c.buf)
	if _, err := c.fw.Write(page); err != nil {
		return nil, false, fmt.Errorf("core: compress page: %w", err)
	}
	if err := c.fw.Close(); err != nil {
		return nil, false, fmt.Errorf("core: compress page: %w", err)
	}
	if c.buf.Len() >= len(page) {
		return nil, false, nil
	}
	return c.buf.Bytes(), true, nil
}

// writePageFullZ emits a compressed full-page message: the standard page
// header followed by a u32 length and the deflate stream.
func writePageFullZ(w io.Writer, page uint64, sum checksum.Sum, compressed []byte) error {
	if err := writePageHeader(w, msgPageFullZ, page, sum); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(compressed)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("core: write compressed length: %w", err)
	}
	if _, err := w.Write(compressed); err != nil {
		return fmt.Errorf("core: write compressed payload: %w", err)
	}
	return nil
}

// pageDecompressor inflates page payloads, reusing one decoder.
type pageDecompressor struct {
	comp []byte
	fr   io.ReadCloser
}

func newPageDecompressor() *pageDecompressor {
	return &pageDecompressor{
		comp: make([]byte, 0, vm.PageSize),
		fr:   flate.NewReader(bytes.NewReader(nil)),
	}
}

// readInto reads one compressed payload (length prefix + deflate stream)
// from r and inflates exactly PageSize bytes into dst.
func (d *pageDecompressor) readInto(r io.Reader, dst []byte) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return fmt.Errorf("core: read compressed length: %w", err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n >= vm.PageSize {
		return fmt.Errorf("%w: compressed page length %d out of (0,%d)", ErrProtocol, n, vm.PageSize)
	}
	if cap(d.comp) < int(n) {
		d.comp = make([]byte, n)
	}
	d.comp = d.comp[:n]
	if _, err := io.ReadFull(r, d.comp); err != nil {
		return fmt.Errorf("core: read compressed payload: %w", err)
	}
	return d.inflate(d.comp, dst)
}

// inflate decompresses one already-read deflate payload into dst, which
// must hold exactly PageSize bytes. Pipeline workers use this directly:
// the decoder stage reads the payload off the wire and the worker inflates
// it off-thread.
func (d *pageDecompressor) inflate(comp, dst []byte) error {
	if err := d.fr.(flate.Resetter).Reset(bytes.NewReader(comp), nil); err != nil {
		return fmt.Errorf("core: reset inflater: %w", err)
	}
	if _, err := io.ReadFull(d.fr, dst[:vm.PageSize]); err != nil {
		return fmt.Errorf("%w: inflate page: %v", ErrProtocol, err)
	}
	// The stream must end exactly at a page boundary.
	var extra [1]byte
	if n, _ := d.fr.Read(extra[:]); n != 0 {
		return fmt.Errorf("%w: compressed page inflates beyond %d bytes", ErrProtocol, vm.PageSize)
	}
	return nil
}
