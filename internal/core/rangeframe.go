package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"vecycle/internal/checkpoint"
	"vecycle/internal/checksum"
	"vecycle/internal/delta"
	"vecycle/internal/vm"
)

// Coalesced page-range frames (tags 12-15). The per-page protocol spends a
// tag + page number + checksum on every 4 KiB page, and — worse for the
// pipelined engines — one decode/dispatch cycle per page at the
// destination. A range frame carries a contiguous run of pages that all
// received the same treatment in one frame:
//
//	tag · start u64 · count u32 · per-page metadata · concatenated payloads
//
// where the metadata is one checksum per page (range-sum, range-full) or
// one (checksum, payload-length) pair per page (range-full-z, range-delta).
// Runs never exceed MaxRangePages and never span a pipeline batch, so the
// frame layout is a pure function of page content and batch boundaries —
// which keeps the stream byte-identical across pipeline widths, exactly
// like the per-page encoding. The capability is negotiated in the hello
// exchange (hello bit 4 offered by the source, hello-ack bit 4 accepted by
// the destination); unnegotiated peers keep the byte-exact v1 stream.

// MaxRangePages caps the pages one range frame may carry. It equals the
// pipeline's batch size: runs cannot span batches, so a larger cap would
// never be used, and the bound keeps a decoder's per-frame buffering at
// MaxRangePages*vm.PageSize bytes no matter what a hostile peer sends.
const MaxRangePages = batchPages

// minRangePages is the smallest run worth coalescing: a single page is
// cheaper in its per-page v1 frame (no count field), so the encoder only
// emits ranges for runs of at least two and the decoder rejects smaller
// counts as malformed.
const minRangePages = 2

// pageTreatment classifies how one page crosses the wire; a range frame
// coalesces a run of pages sharing one treatment.
type pageTreatment uint8

const (
	treatNone  pageTreatment = iota
	treatSum                 // destination already holds the content
	treatFull                // raw page payload
	treatFullZ               // deflate-compressed payload
	treatDelta               // XBZRLE delta against the checkpoint frame
)

// rangeTag maps a treatment to its range-frame message type.
func (t pageTreatment) rangeTag() msgType {
	switch t {
	case treatSum:
		return msgRangeSum
	case treatFull:
		return msgRangeFull
	case treatFullZ:
		return msgRangeFullZ
	default:
		return msgRangeDelta
	}
}

// rangeRun accumulates the current candidate run inside a sourceEncoder:
// page checksums, per-page payload lengths (variable-size treatments), and
// the concatenated payload bytes for the compressed/delta treatments. Raw
// full payloads are not copied here — they are a contiguous span of the
// batch's data buffer and are written straight from it.
type rangeRun struct {
	treat    pageTreatment
	start    uint64 // first page number of the run
	startIdx int    // index of the first run page within the batch
	sums     []checksum.Sum
	lens     []uint32
	payload  bytes.Buffer
}

// reset clears the run for reuse, keeping the scratch capacity.
func (r *rangeRun) reset() {
	r.treat = treatNone
	r.sums = r.sums[:0]
	r.lens = r.lens[:0]
	r.payload.Reset()
}

// len reports the pages accumulated so far.
func (r *rangeRun) len() int { return len(r.sums) }

// writeRangeHeader emits the tag, start page, and page count of a range
// frame.
func writeRangeHeader(w io.Writer, t msgType, start uint64, count int) error {
	var buf [1 + 8 + 4]byte
	buf[0] = byte(t)
	binary.LittleEndian.PutUint64(buf[1:9], start)
	binary.LittleEndian.PutUint32(buf[9:13], uint32(count))
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("core: write %v header: %w", t, err)
	}
	return nil
}

// writeRangeSums emits the per-page checksum block of a range frame.
func writeRangeSums(w io.Writer, sums []checksum.Sum) error {
	for i := range sums {
		if _, err := w.Write(sums[i][:]); err != nil {
			return fmt.Errorf("core: write range sums: %w", err)
		}
	}
	return nil
}

// writeRangeVarMeta emits the (checksum, length) metadata block of a
// variable-payload range frame (range-full-z, range-delta).
func writeRangeVarMeta(w io.Writer, sums []checksum.Sum, lens []uint32) error {
	var lenBuf [4]byte
	for i := range sums {
		if _, err := w.Write(sums[i][:]); err != nil {
			return fmt.Errorf("core: write range meta: %w", err)
		}
		binary.LittleEndian.PutUint32(lenBuf[:], lens[i])
		if _, err := w.Write(lenBuf[:]); err != nil {
			return fmt.Errorf("core: write range meta: %w", err)
		}
	}
	return nil
}

// writePageDelta emits a single-page delta frame: the standard page header
// followed by a u32 length and the XBZRLE encoding.
func writePageDelta(w io.Writer, page uint64, sum checksum.Sum, enc []byte) error {
	if err := writePageHeader(w, msgPageDelta, page, sum); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(enc)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("core: write delta length: %w", err)
	}
	if _, err := w.Write(enc); err != nil {
		return fmt.Errorf("core: write delta payload: %w", err)
	}
	return nil
}

// encodeBatchRanges is the range-mode batch encoder: it classifies every
// page exactly as encodePage would (checksum-set lookup, delta attempt,
// deflate fallback — identical per-page decisions and metrics), but
// coalesces contiguous same-treatment pages into range frames. Runs of one
// page fall back to their per-page v1 frame, so a range frame on the wire
// always carries at least minRangePages pages.
func encodeBatchRanges(e *sourceEncoder, base PageProvider, b *pageBatch) error {
	r := &e.run
	r.reset()
	for i, p := range b.pages {
		data := b.data[i*vm.PageSize : (i+1)*vm.PageSize]
		sum := b.pageSum(e.alg, i, data)
		e.sent.record(p, sum)
		treat := treatFull
		var payload []byte
		switch {
		case e.destSums != nil && e.destSums.Contains(sum):
			treat = treatSum
		default:
			if base != nil {
				enc, err := e.deltaPayload(base, p, data)
				if err != nil {
					return err
				}
				if enc != nil {
					treat, payload = treatDelta, enc
				}
			}
			if treat == treatFull && e.comp != nil {
				if !compressible(data) {
					b.m.CompressSkipped++
				} else {
					b.m.CompressAttempted++
					z, ok, err := e.comp.compress(data)
					if err != nil {
						return err
					}
					if ok {
						treat, payload = treatFullZ, z
					}
				}
			}
		}

		// A run extends while the treatment matches, the page numbers stay
		// contiguous, and the cap is not hit; anything else flushes.
		if r.treat != treat || r.len() >= MaxRangePages ||
			(r.len() > 0 && r.start+uint64(r.len()) != uint64(p)) {
			if err := e.flushRun(b); err != nil {
				return err
			}
			r.treat = treat
			r.start = uint64(p)
			r.startIdx = i
		}
		r.sums = append(r.sums, sum)
		switch treat {
		case treatSum:
			b.m.PagesSum++
		case treatFull:
			b.m.PagesFull++
		case treatFullZ:
			r.lens = append(r.lens, uint32(len(payload)))
			r.payload.Write(payload)
			b.m.PagesFull++
			b.m.PagesCompressed++
			b.m.CompressionSavedBytes += int64(vm.PageSize - len(payload) - 4)
		case treatDelta:
			r.lens = append(r.lens, uint32(len(payload)))
			r.payload.Write(payload)
			b.m.PagesDelta++
			b.m.DeltaSavedBytes += int64(vm.PageSize - len(payload) - 4)
		}
	}
	return e.flushRun(b)
}

// deltaPayload attempts an XBZRLE delta of data against the provider's
// content for page p. nil means no delta applies (frame uncovered or the
// encoding too large); the returned slice is the encoder's scratch, valid
// until the next call.
func (e *sourceEncoder) deltaPayload(base PageProvider, p int, data []byte) ([]byte, error) {
	old, ok, err := base.PageAt(p)
	if err != nil {
		return nil, deltaBaseErr(err)
	}
	if !ok {
		return nil, nil
	}
	enc, err := delta.Encode(e.deltaBuf[:0], old, data, deltaLimit)
	if errors.Is(err, delta.ErrTooLarge) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	e.deltaBuf = enc[:0] // keep the (possibly grown) scratch for reuse
	return enc, nil
}

// flushRun writes the accumulated run into the batch buffer — as the
// per-page v1 frame when the run holds a single page, as one range frame
// otherwise — and resets the run.
func (e *sourceEncoder) flushRun(b *pageBatch) error {
	r := &e.run
	n := r.len()
	if n == 0 {
		return nil
	}
	defer r.reset()
	w := &b.buf
	b.m.PageFrames++
	if n == 1 {
		data := b.data[r.startIdx*vm.PageSize : (r.startIdx+1)*vm.PageSize]
		switch r.treat {
		case treatSum:
			return writePageSum(w, r.start, r.sums[0])
		case treatFull:
			return writePageFull(w, r.start, r.sums[0], data)
		case treatFullZ:
			return writePageFullZ(w, r.start, r.sums[0], r.payload.Bytes())
		default:
			return writePageDelta(w, r.start, r.sums[0], r.payload.Bytes())
		}
	}
	b.m.RangeFrames++
	t := r.treat.rangeTag()
	if err := writeRangeHeader(w, t, r.start, n); err != nil {
		return err
	}
	switch r.treat {
	case treatSum:
		return writeRangeSums(w, r.sums)
	case treatFull:
		if err := writeRangeSums(w, r.sums); err != nil {
			return err
		}
		payload := b.data[r.startIdx*vm.PageSize : (r.startIdx+n)*vm.PageSize]
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("core: write range payload: %w", err)
		}
		return nil
	default: // treatFullZ, treatDelta
		if err := writeRangeVarMeta(w, r.sums, r.lens); err != nil {
			return err
		}
		if _, err := w.Write(r.payload.Bytes()); err != nil {
			return fmt.Errorf("core: write range payload: %w", err)
		}
		return nil
	}
}

// rangeFrame is one decoded page-range frame: the destination's carrier
// between the decode stage and the install worker.
type rangeFrame struct {
	t       msgType
	start   uint64
	count   int
	sums    []checksum.Sum
	lens    []uint32 // per-page payload lengths (range-full-z, range-delta)
	payload []byte   // concatenated payloads; empty for range-sum
}

// reset clears the frame for reuse, keeping scratch capacity.
func (f *rangeFrame) reset() {
	f.count = 0
	f.sums = f.sums[:0]
	f.lens = f.lens[:0]
	f.payload = f.payload[:0]
}

// readRangeFrame parses one range frame after its tag byte into f, reusing
// f's scratch. numPages bounds the addressable page space; floor is the
// first page number this frame may cover — the end of the previous range
// frame of the round — so overlapping or descending runs are rejected (the
// source emits each round's pages in strictly ascending order).
func readRangeFrame(r io.Reader, t msgType, numPages int, floor uint64, f *rangeFrame) error {
	f.reset()
	f.t = t
	var hdr [8 + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("core: read %v header: %w", t, err)
	}
	f.start = binary.LittleEndian.Uint64(hdr[:8])
	count := binary.LittleEndian.Uint32(hdr[8:12])
	if count < minRangePages || count > MaxRangePages {
		return fmt.Errorf("%w: %v count %d out of [%d,%d]", ErrProtocol, t, count, minRangePages, MaxRangePages)
	}
	f.count = int(count)
	if f.start+uint64(f.count) > uint64(numPages) {
		return fmt.Errorf("%w: %v [%d,+%d) out of range (%d pages)", ErrProtocol, t, f.start, f.count, numPages)
	}
	if f.start < floor {
		return fmt.Errorf("%w: %v starting at %d overlaps or precedes an earlier run ending at %d", ErrProtocol, t, f.start, floor)
	}

	total := 0
	switch t {
	case msgRangeSum, msgRangeFull:
		var sum checksum.Sum
		for i := 0; i < f.count; i++ {
			if _, err := io.ReadFull(r, sum[:]); err != nil {
				return fmt.Errorf("core: read %v sums: %w", t, err)
			}
			f.sums = append(f.sums, sum)
		}
		if t == msgRangeFull {
			total = f.count * vm.PageSize
		}
	case msgRangeFullZ, msgRangeDelta:
		perPage := msgPageFullZ
		if t == msgRangeDelta {
			perPage = msgPageDelta
		}
		var meta [checksum.Size + 4]byte
		for i := 0; i < f.count; i++ {
			if _, err := io.ReadFull(r, meta[:]); err != nil {
				return fmt.Errorf("core: read %v meta: %w", t, err)
			}
			var sum checksum.Sum
			copy(sum[:], meta[:checksum.Size])
			n := binary.LittleEndian.Uint32(meta[checksum.Size:])
			// Per-page limits match the per-page frames' (a compressed page
			// must shrink, a delta may at most reach a full page).
			limit := vm.PageSize
			if perPage == msgPageFullZ {
				limit = vm.PageSize - 1
			}
			if n == 0 || int(n) > limit {
				return fmt.Errorf("%w: %v payload length %d out of range", ErrProtocol, t, n)
			}
			f.sums = append(f.sums, sum)
			f.lens = append(f.lens, n)
			total += int(n)
		}
	}
	if total > 0 {
		if cap(f.payload) < total {
			f.payload = make([]byte, total)
		}
		f.payload = f.payload[:total]
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return fmt.Errorf("core: read %v payload: %w", t, err)
		}
	}
	return nil
}

// destScratch is the per-goroutine install state shared by the sequential
// merge loop and each pipelined install worker: a span buffer that grows to
// one full range, a checksum scratch for range-sum probes, and a lazily
// created inflater.
type destScratch struct {
	buf    []byte
	sums   []checksum.Sum
	decomp *pageDecompressor
}

// span returns the scratch buffer grown to n pages.
func (st *destScratch) span(n int) []byte {
	if cap(st.buf) < n*vm.PageSize {
		st.buf = make([]byte, n*vm.PageSize)
	}
	return st.buf[:n*vm.PageSize]
}

// destScratchPool recycles install scratch across migrations and workers.
// A scratch grows to one full range span (MaxRangePages*vm.PageSize = 1 MiB)
// plus an inflater; allocating that per worker per migration is what made
// B/op scale linearly with pipeline width before pooling.
var destScratchPool = sync.Pool{New: func() interface{} {
	return new(destScratch)
}}

func getDestScratch() *destScratch {
	return destScratchPool.Get().(*destScratch)
}

func putDestScratch(st *destScratch) {
	destScratchPool.Put(st)
}

// applyRange installs one decoded range frame into v: per-page verification
// and payload decoding happen into a span buffer, then the whole run lands
// with a single vectorized install (vm.InstallRange) and the metrics update
// once per range. The caller has already validated the frame bounds and the
// checkpoint requirement. On success the frame's per-page sums — which
// describe the installed content in every treatment — are recorded into tbl
// (nil when the migration is not tracking incoming sums).
func applyRange(v *vm.VM, cp *checkpoint.Checkpoint, alg checksum.Algorithm, verify bool, f *rangeFrame, st *destScratch, tbl *SumTable, m *Metrics) error {
	start := int(f.start)
	switch f.t {
	case msgRangeSum:
		m.PagesSum += f.count
		// Fast path: probe every resident frame under one lock; only
		// mismatches fall back to the checkpoint index (lseek+read of
		// Listing 1), installed individually — they are the exception.
		st.sums = v.RangeSums(start, f.count, alg, st.sums)
		inPlace := 0
		for i := 0; i < f.count; i++ {
			if st.sums[i] == f.sums[i] {
				inPlace++
				continue
			}
			data, ok, err := cp.ReadBlock(f.sums[i])
			if err != nil {
				return recycleReadErr(err)
			}
			if !ok {
				return fmt.Errorf("%w: source referenced checksum %v absent from checkpoint", ErrProtocol, f.sums[i])
			}
			v.InstallPage(start+i, data)
			cp.Release(data)
			m.PagesReusedFromDisk++
		}
		m.PagesReusedInPlace += inPlace

	case msgRangeFull:
		if verify {
			for i := 0; i < f.count; i++ {
				if got := alg.Page(f.payload[i*vm.PageSize : (i+1)*vm.PageSize]); got != f.sums[i] {
					return fmt.Errorf("%w: page %d payload checksum mismatch", ErrProtocol, start+i)
				}
			}
		}
		v.InstallRange(start, f.payload)
		m.PagesFull += f.count

	case msgRangeFullZ:
		if st.decomp == nil {
			st.decomp = newPageDecompressor()
		}
		buf := st.span(f.count)
		off := 0
		for i := 0; i < f.count; i++ {
			n := int(f.lens[i])
			dst := buf[i*vm.PageSize : (i+1)*vm.PageSize]
			if err := st.decomp.inflate(f.payload[off:off+n], dst); err != nil {
				return err
			}
			off += n
			if verify {
				if got := alg.Page(dst); got != f.sums[i] {
					return fmt.Errorf("%w: page %d payload checksum mismatch", ErrProtocol, start+i)
				}
			}
		}
		v.InstallRange(start, buf)
		m.PagesFull += f.count
		m.PagesCompressed += f.count

	case msgRangeDelta:
		// The frames still hold bootstrap (checkpoint) content: deltas are
		// first-round only and each round-one frame appears exactly once,
		// so the whole base span can be read at once and patched in place.
		buf := st.span(f.count)
		v.ReadRange(start, f.count, buf)
		off := 0
		for i := 0; i < f.count; i++ {
			n := int(f.lens[i])
			dst := buf[i*vm.PageSize : (i+1)*vm.PageSize]
			if err := delta.Decode(dst, f.payload[off:off+n], dst); err != nil {
				return fmt.Errorf("%w: %v", ErrProtocol, err)
			}
			off += n
			// Deltas are always verified: a base mismatch (stale mirror at
			// the source) silently corrupts otherwise.
			if got := alg.Page(dst); got != f.sums[i] {
				return fmt.Errorf("%w: page %d delta produced checksum mismatch (stale delta base?)", ErrProtocol, start+i)
			}
		}
		v.InstallRange(start, buf)
		m.PagesDelta += f.count
	}
	tbl.recordRange(start, f.sums[:f.count])
	return nil
}
