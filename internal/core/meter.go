package core

import (
	"fmt"
	"io"
	"time"
)

// Metrics records what a migration cost. The paper reports migration time
// and source send traffic (Figures 6 and 7); the remaining counters break
// the traffic down by protocol element for the ablation benches.
type Metrics struct {
	// BytesSent is the total number of bytes written to the transport by
	// this side — the "source send traffic" of Figure 6 when read on the
	// source.
	BytesSent int64
	// BytesReceived is the total read from the transport.
	BytesReceived int64
	// PagesFull counts pages transferred with payload.
	PagesFull int
	// PagesSum counts pages replaced by a bare checksum.
	PagesSum int
	// PagesReusedInPlace counts destination frames whose resident content
	// already matched the received checksum (no disk read needed).
	PagesReusedInPlace int
	// PagesReusedFromDisk counts frames repaired from the checkpoint file
	// via the checksum index (the lseek+read path of Listing 1).
	PagesReusedFromDisk int
	// PagesCompressed counts full pages that crossed the wire deflated
	// (only with SourceOptions.Compress); incompressible pages fall back
	// to the raw encoding and count under PagesFull alone.
	PagesCompressed int
	// CompressionSavedBytes is the payload volume compression avoided.
	CompressionSavedBytes int64
	// CompressAttempted counts full pages the entropy gate admitted to the
	// deflate pass (source side, only with SourceOptions.Compress). A page
	// that deflated but did not shrink still counts here.
	CompressAttempted int
	// CompressSkipped counts full pages the entropy gate judged
	// incompressible and sent raw without running deflate at all.
	// CompressAttempted+CompressSkipped is the number of gate decisions.
	CompressSkipped int
	// PagesDelta counts changed pages sent as XBZRLE deltas against the
	// checkpoint frame (only with SourceOptions.DeltaBase).
	PagesDelta int
	// PageFrames counts page-carrying wire frames in either encoding: one
	// per page under the v1 per-page protocol, one per coalesced run when
	// page-range frames were negotiated. Pages/PageFrames is the realized
	// coalescing factor.
	PageFrames int
	// RangeFrames counts the subset of PageFrames that crossed the wire as
	// coalesced page-range frames (tags 12-15). Zero for unnegotiated
	// peers.
	RangeFrames int
	// DeltaSavedBytes is the payload volume delta encoding avoided.
	DeltaSavedBytes int64
	// AnnounceBytes is the size of the bulk hash announcement (§3.2's
	// "additional traffic", 16 MiB for a 4 GiB guest with MD5) as it
	// crossed the wire — compacted when the v2 encoding was negotiated.
	AnnounceBytes int64
	// AnnounceRawBytes is what the same announcement would have cost in the
	// v1 encoding (count + raw sums). AnnounceRawBytes - AnnounceBytes is
	// the volume the compact encoding saved; equal (modulo framing) when v1
	// was used.
	AnnounceRawBytes int64
	// Rounds is the number of pre-copy rounds, including the final
	// stop-and-copy round.
	Rounds int
	// HashBytes counts payload bytes the destination's round-end
	// TrackIncoming pass had to digest itself — pages no install-time sum
	// covered. Zero on the source, for untracked destinations, and on the
	// normal tracked path (round one walks every page, so every digest
	// arrives on some frame).
	HashBytes int64
	// HashAvoidedBytes counts payload bytes whose round-end digest was
	// recycled from a sum the merge already knew (frame headers, verified
	// installs, range probes) instead of being recomputed by a full-image
	// scan.
	HashAvoidedBytes int64
	// Stages breaks the pipelined engine down by stage, so a throughput
	// regression can be attributed (reader-bound, worker-bound, or
	// wire-bound) instead of guessed. All zero when the sequential
	// (Workers <= 0) engine ran.
	Stages StageMetrics
	// Duration is the wall-clock migration time: from initiating the
	// migration until the destination acknowledged the final merge. As in
	// the paper, destination setup (checkpoint load) and source checkpoint
	// writing are excluded.
	Duration time.Duration
}

// StageMetrics records per-stage busy and stall time of a pipelined
// transfer. On the source, ingest is the page reader, workers hash +
// compress + delta-encode, and emit is the in-order frame writer; on the
// destination, ingest is the frame decoder and workers
// decompress/verify/install (there is no emit stage). A stage's stall time
// is how long it spent blocked on its neighbours' bounded queues: a large
// EmitStall means the workers are the bottleneck, a large IngestStall on
// the destination means the workers cannot keep up with the wire.
type StageMetrics struct {
	// Batches counts work units through the pipeline: page batches on the
	// source, page messages on the destination.
	Batches int64
	// IngestBusy/IngestStall: the reader (source) or decoder (dest) stage.
	// On the source, IngestStall is time the sequencer spent blocked on the
	// in-order emit queue (emitter backpressure); on the destination, time
	// the decoder spent blocked handing jobs to the install pool.
	IngestBusy  time.Duration
	IngestStall time.Duration
	// DispatchStall is time the source's sequencer spent blocked handing
	// batches to the encode workers (worker backpressure). Separate from
	// IngestStall so reader-bound, emitter-bound, and worker-bound rounds
	// are distinguishable; zero on the destination.
	DispatchStall time.Duration
	// WorkerBusy is the summed busy time across the worker pool.
	WorkerBusy time.Duration
	// EmitBusy/EmitStall: the source's in-order emitter. Zero on the
	// destination, where installs are unordered and happen in the workers.
	EmitBusy  time.Duration
	EmitStall time.Duration
}

// add accumulates another round's (or side's) stage counters.
func (s *StageMetrics) add(o StageMetrics) {
	s.Batches += o.Batches
	s.IngestBusy += o.IngestBusy
	s.IngestStall += o.IngestStall
	s.DispatchStall += o.DispatchStall
	s.WorkerBusy += o.WorkerBusy
	s.EmitBusy += o.EmitBusy
	s.EmitStall += o.EmitStall
}

// addPageCounters merges the per-page counters a pipeline batch collected
// into the migration-wide metrics. Transport-level fields (BytesSent,
// Duration, Rounds, ...) are owned by the protocol driver and not touched.
func (m *Metrics) addPageCounters(d Metrics) {
	m.PagesFull += d.PagesFull
	m.PagesSum += d.PagesSum
	m.PagesDelta += d.PagesDelta
	m.PageFrames += d.PageFrames
	m.RangeFrames += d.RangeFrames
	m.PagesCompressed += d.PagesCompressed
	m.CompressionSavedBytes += d.CompressionSavedBytes
	m.CompressAttempted += d.CompressAttempted
	m.CompressSkipped += d.CompressSkipped
	m.DeltaSavedBytes += d.DeltaSavedBytes
	m.PagesReusedInPlace += d.PagesReusedInPlace
	m.PagesReusedFromDisk += d.PagesReusedFromDisk
}

// String summarizes the metrics in one line. Both byte directions render
// through FormatBytes and the field order is fixed, so source- and
// destination-side summaries line up column-for-column in logs (the
// destination's recv mirrors the source's sent). PostCopyMetrics.String
// extends this prefix with the post-copy fields.
func (m Metrics) String() string {
	return fmt.Sprintf("sent=%s recv=%s full=%d sum=%d rounds=%d time=%v",
		FormatBytes(m.BytesSent), FormatBytes(m.BytesReceived),
		m.PagesFull, m.PagesSum, m.Rounds, m.Duration)
}

// FormatBytes renders a byte count in binary units.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// countingWriter wraps a writer, accumulating the bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader wraps a reader, accumulating the bytes read.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
