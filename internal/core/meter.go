package core

import (
	"fmt"
	"io"
	"time"
)

// Metrics records what a migration cost. The paper reports migration time
// and source send traffic (Figures 6 and 7); the remaining counters break
// the traffic down by protocol element for the ablation benches.
type Metrics struct {
	// BytesSent is the total number of bytes written to the transport by
	// this side — the "source send traffic" of Figure 6 when read on the
	// source.
	BytesSent int64
	// BytesReceived is the total read from the transport.
	BytesReceived int64
	// PagesFull counts pages transferred with payload.
	PagesFull int
	// PagesSum counts pages replaced by a bare checksum.
	PagesSum int
	// PagesReusedInPlace counts destination frames whose resident content
	// already matched the received checksum (no disk read needed).
	PagesReusedInPlace int
	// PagesReusedFromDisk counts frames repaired from the checkpoint file
	// via the checksum index (the lseek+read path of Listing 1).
	PagesReusedFromDisk int
	// PagesCompressed counts full pages that crossed the wire deflated
	// (only with SourceOptions.Compress); incompressible pages fall back
	// to the raw encoding and count under PagesFull alone.
	PagesCompressed int
	// CompressionSavedBytes is the payload volume compression avoided.
	CompressionSavedBytes int64
	// PagesDelta counts changed pages sent as XBZRLE deltas against the
	// checkpoint frame (only with SourceOptions.DeltaBase).
	PagesDelta int
	// DeltaSavedBytes is the payload volume delta encoding avoided.
	DeltaSavedBytes int64
	// AnnounceBytes is the size of the bulk hash announcement (§3.2's
	// "additional traffic", 16 MiB for a 4 GiB guest with MD5).
	AnnounceBytes int64
	// Rounds is the number of pre-copy rounds, including the final
	// stop-and-copy round.
	Rounds int
	// Duration is the wall-clock migration time: from initiating the
	// migration until the destination acknowledged the final merge. As in
	// the paper, destination setup (checkpoint load) and source checkpoint
	// writing are excluded.
	Duration time.Duration
}

// String summarizes the metrics in one line.
func (m Metrics) String() string {
	return fmt.Sprintf("sent=%s full=%d sum=%d rounds=%d time=%v",
		FormatBytes(m.BytesSent), m.PagesFull, m.PagesSum, m.Rounds, m.Duration)
}

// FormatBytes renders a byte count in binary units.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// countingWriter wraps a writer, accumulating the bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader wraps a reader, accumulating the bytes read.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
