package core

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"testing"

	"vecycle/internal/vm"
)

// scriptedPeer builds the exact byte sequence a baseline destination sends a
// source: a positive hello-ack (no checkpoint, so no announcement) and the
// final ack. Replaying it from memory lets a test run the full source engine
// — pipeline, compression, round loop — with no peer goroutine, so memory
// measurements see only the source's own allocations.
func scriptedPeer(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHelloAck(&buf, helloAck{OK: true}); err != nil {
		t.Fatal(err)
	}
	if err := writeMsgType(&buf, msgAck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// migrationAllocBytes reports the average bytes allocated by one compressed
// source migration at the given pipeline width, after warming the
// process-wide pools.
func migrationAllocBytes(t *testing.T, v *vm.VM, script []byte, workers int) uint64 {
	t.Helper()
	run := func() {
		conn := readWriter{bytes.NewReader(script), io.Discard}
		if _, err := MigrateSource(context.Background(), conn, v, SourceOptions{
			Compress: true,
			Workers:  workers,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run()
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const iters = 5
	for i := 0; i < iters; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / iters
}

// TestPipelineAllocCeiling pins the fix for the encoder-pool allocation
// regression: runSourcePipeline used to build `workers` fresh
// sourceEncoders — each owning a new deflate window of several hundred
// KiB — every round, so a 4-worker migration allocated ~3× what a 1-worker
// one did. Encoders are now created once per migration and their deflate
// state is pooled process-wide; steady-state allocation must stay within a
// fixed ceiling and must not scale with the worker count.
func TestPipelineAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation skews allocation accounting")
	}
	const pages = 512 // 2 MiB guest, compressible: the deflate path stays hot
	v, err := vm.New(vm.Config{Name: "alloc-vm", MemBytes: pages * vm.PageSize, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.FillCompressible(1.0); err != nil {
		t.Fatal(err)
	}
	script := scriptedPeer(t)

	one := migrationAllocBytes(t, v, script, 1)
	four := migrationAllocBytes(t, v, script, 4)
	t.Logf("steady-state alloc per migration: workers=1 %d B, workers=4 %d B", one, four)

	// A single deflate window alone is ~600 KiB; the pre-fix 4-worker
	// figure was several MiB per migration. Steady state with pooled
	// encoders needs only batch bookkeeping and goroutine machinery.
	const ceiling = 1 << 20 // 1 MiB
	if four > ceiling {
		t.Errorf("workers=4 allocates %d B per migration, want <= %d", four, ceiling)
	}
	// And width must not multiply allocations: allow generous slack for
	// scheduling noise, but not the ~3x of the per-round rebuild.
	if one > 0 && four > one*2+256<<10 {
		t.Errorf("allocation scales with workers: %d B (w=1) -> %d B (w=4)", one, four)
	}
}

// TestBatchPoolBound pins putBatch's retention cap: a batch whose frame
// buffer ballooned past maxPooledBatchBytes returns to the pool with the
// buffer dropped, while ordinarily sized buffers keep their capacity for
// reuse.
func TestBatchPoolBound(t *testing.T) {
	big := batchPool.Get().(*pageBatch)
	big.buf.Grow(maxPooledBatchBytes + 1)
	putBatch(big)
	if c := big.buf.Cap(); c != 0 {
		t.Errorf("oversized buffer retained %d B after putBatch, want dropped", c)
	}

	ok := batchPool.Get().(*pageBatch)
	ok.buf.Grow(maxPooledBatchBytes / 2)
	want := ok.buf.Cap()
	putBatch(ok)
	if c := ok.buf.Cap(); c != want {
		t.Errorf("in-bound buffer capacity %d after putBatch, want %d retained", c, want)
	}
	if len(ok.pages) != 0 || len(ok.data) != 0 || ok.buf.Len() != 0 {
		t.Error("putBatch left residual batch state")
	}
}
