package core

import (
	"bytes"
	"context"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"

	"vecycle/internal/vm"
)

// scriptedPeer builds the exact byte sequence a baseline destination sends a
// source: a positive hello-ack (no checkpoint, so no announcement) and the
// final ack. Replaying it from memory lets a test run the full source engine
// — pipeline, compression, round loop — with no peer goroutine, so memory
// measurements see only the source's own allocations.
func scriptedPeer(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHelloAck(&buf, helloAck{OK: true}); err != nil {
		t.Fatal(err)
	}
	if err := writeMsgType(&buf, msgAck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// migrationAllocBytes reports the average bytes allocated by one compressed
// source migration at the given pipeline width, after warming the
// process-wide pools.
func migrationAllocBytes(t *testing.T, v *vm.VM, script []byte, workers int) uint64 {
	t.Helper()
	run := func() {
		conn := readWriter{bytes.NewReader(script), io.Discard}
		if _, err := MigrateSource(context.Background(), conn, v, SourceOptions{
			Compress: true,
			Workers:  workers,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run()
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const iters = 5
	for i := 0; i < iters; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / iters
}

// TestPipelineAllocCeiling pins the fix for the encoder-pool allocation
// regression: runSourcePipeline used to build `workers` fresh
// sourceEncoders — each owning a new deflate window of several hundred
// KiB — every round, so a 4-worker migration allocated ~3× what a 1-worker
// one did. Encoders are now created once per migration and their deflate
// state is pooled process-wide; steady-state allocation must stay within a
// fixed ceiling and must not scale with the worker count.
func TestPipelineAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation skews allocation accounting")
	}
	const pages = 512 // 2 MiB guest, compressible: the deflate path stays hot
	v, err := vm.New(vm.Config{Name: "alloc-vm", MemBytes: pages * vm.PageSize, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.FillCompressible(1.0); err != nil {
		t.Fatal(err)
	}
	script := scriptedPeer(t)

	// Every width BenchmarkFirstRound runs at: steady-state allocation must
	// stay under a fixed ceiling and must not scale with the worker count.
	widths := []int{1, 2, 4, 8}
	got := make(map[int]uint64, len(widths))
	for _, w := range widths {
		got[w] = migrationAllocBytes(t, v, script, w)
		t.Logf("steady-state alloc per migration: workers=%d %d B", w, got[w])
	}

	// A single deflate window alone is ~600 KiB; the pre-fix 4-worker
	// figure was several MiB per migration. Steady state with pooled
	// encoders needs only batch bookkeeping and goroutine machinery.
	const ceiling = 1 << 20 // 1 MiB
	one := got[1]
	for _, w := range widths[1:] {
		if got[w] > ceiling {
			t.Errorf("workers=%d allocates %d B per migration, want <= %d", w, got[w], ceiling)
		}
		// Width must not multiply allocations: allow generous slack for
		// scheduling noise, but not the ~3x of the per-round rebuild.
		if one > 0 && got[w] > one*2+256<<10 {
			t.Errorf("allocation scales with workers: %d B (w=1) -> %d B (w=%d)", one, got[w], w)
		}
	}
}

// fullMigrationAllocBytes measures the steady-state allocation of one
// complete migration — source and destination, over net.Pipe — at the given
// pipeline width, after warming the process-wide pools.
func fullMigrationAllocBytes(t *testing.T, src, dst *vm.VM, workers int) uint64 {
	t.Helper()
	run := func() {
		a, c := net.Pipe()
		var wg sync.WaitGroup
		var derr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, derr = MigrateDest(context.Background(), c, dst, DestOptions{Workers: workers})
		}()
		_, serr := MigrateSource(context.Background(), a, src, SourceOptions{
			Compress: true,
			Workers:  workers,
		})
		wg.Wait()
		a.Close()
		c.Close()
		if serr != nil || derr != nil {
			t.Fatalf("source: %v, dest: %v", serr, derr)
		}
	}
	for i := 0; i < 3; i++ {
		run()
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const iters = 5
	for i := 0; i < iters; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / iters
}

// TestMigrationAllocFlatness pins the end-to-end allocation curve across
// pipeline widths: with wire buffers and destination install scratch pooled
// process-wide, a w=8 migration must allocate within 1.5x of a w=1 one
// (plus fixed slack for goroutine machinery). Before pooling, each install
// worker grew a private 1 MiB span buffer per migration, so w=8 sat at ~6x.
func TestMigrationAllocFlatness(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation skews allocation accounting")
	}
	const pages = 512 // 2 MiB guest, half random: both encoder branches hot
	newGuest := func(name string, seed int64) *vm.VM {
		v, err := vm.New(vm.Config{Name: name, MemBytes: pages * vm.PageSize, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := v.FillRandom(1.0); err != nil {
			t.Fatal(err)
		}
		if err := v.FillCompressible(0.5); err != nil {
			t.Fatal(err)
		}
		return v
	}
	src := newGuest("flat-src", 17)
	dst := newGuest("flat-src", 18) // same name: a migration replaces the content

	one := fullMigrationAllocBytes(t, src, dst, 1)
	eight := fullMigrationAllocBytes(t, src, dst, 8)
	t.Logf("full-migration alloc: workers=1 %d B, workers=8 %d B", one, eight)
	if one > 0 && eight > one*3/2+256<<10 {
		t.Errorf("allocation scales with workers: %d B (w=1) -> %d B (w=8), want <= 1.5x + 256 KiB",
			one, eight)
	}
}

// TestBatchPoolBound pins putBatch's retention cap: a batch whose frame
// buffer ballooned past maxPooledBatchBytes returns to the pool with the
// buffer dropped, while ordinarily sized buffers keep their capacity for
// reuse.
func TestBatchPoolBound(t *testing.T) {
	big := batchPool.Get().(*pageBatch)
	big.buf.Grow(maxPooledBatchBytes + 1)
	putBatch(big)
	if c := big.buf.Cap(); c != 0 {
		t.Errorf("oversized buffer retained %d B after putBatch, want dropped", c)
	}

	ok := batchPool.Get().(*pageBatch)
	ok.buf.Grow(maxPooledBatchBytes / 2)
	want := ok.buf.Cap()
	putBatch(ok)
	if c := ok.buf.Cap(); c != want {
		t.Errorf("in-bound buffer capacity %d after putBatch, want %d retained", c, want)
	}
	if len(ok.pages) != 0 || len(ok.data) != 0 || ok.buf.Len() != 0 {
		t.Error("putBatch left residual batch state")
	}
}
