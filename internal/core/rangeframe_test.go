package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// buildRangeFull encodes a valid range-full frame (tag included) for count
// pages of the given content starting at start.
func buildRangeFull(t testing.TB, start uint64, pages [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeRangeHeader(&buf, msgRangeFull, start, len(pages)); err != nil {
		t.Fatal(err)
	}
	sums := make([]checksum.Sum, len(pages))
	for i, p := range pages {
		sums[i] = checksum.MD5.Page(p)
	}
	if err := writeRangeSums(&buf, sums); err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		buf.Write(p)
	}
	return buf.Bytes()
}

// buildRangeVar encodes a range-full-z/range-delta frame with arbitrary
// per-page lengths and payload — valid or deliberately malformed.
func buildRangeVar(t testing.TB, tag msgType, start uint64, lens []uint32, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeRangeHeader(&buf, tag, start, len(lens)); err != nil {
		t.Fatal(err)
	}
	sums := make([]checksum.Sum, len(lens))
	if err := writeRangeVarMeta(&buf, sums, lens); err != nil {
		t.Fatal(err)
	}
	buf.Write(payload)
	return buf.Bytes()
}

// TestRangeDecodeRejectsMalformed is the decoder corruption matrix: every
// violated invariant — count bounds, page bounds, ordering floor, per-page
// length limits — is an ErrProtocol, and a truncated frame is an I/O error;
// none may panic or install anything.
func TestRangeDecodeRejectsMalformed(t *testing.T) {
	const numPages = 1024
	page := make([]byte, vm.PageSize)
	valid := buildRangeFull(t, 10, [][]byte{page, page, page})

	// patchCount rewrites the count field of an encoded frame in place.
	patchCount := func(frame []byte, count uint32) []byte {
		out := append([]byte(nil), frame...)
		binary.LittleEndian.PutUint32(out[9:13], count)
		return out
	}

	cases := []struct {
		name     string
		frame    []byte
		floor    uint64
		wantProt bool // ErrProtocol; otherwise any non-nil error
	}{
		{"count-zero", patchCount(valid, 0), 0, true},
		{"count-one", patchCount(valid, 1), 0, true},
		{"count-over-cap", patchCount(valid, MaxRangePages+1), 0, true},
		{"count-huge", patchCount(valid, 1<<31), 0, true},
		{"out-of-page-bounds", buildRangeFull(t, numPages-1, [][]byte{page, page}), 0, true},
		{"overlaps-floor", valid, 12, true},
		{"descends-below-floor", valid, 500, true},
		{"truncated-sums", valid[:20], 0, false},
		{"truncated-payload", valid[:len(valid)-1], 0, false},
		{"z-len-zero", buildRangeVar(t, msgRangeFullZ, 0, []uint32{0, 8}, make([]byte, 8)), 0, true},
		{"z-len-full-page", buildRangeVar(t, msgRangeFullZ, 0, []uint32{vm.PageSize, 8}, nil), 0, true},
		{"delta-len-over-page", buildRangeVar(t, msgRangeDelta, 0, []uint32{vm.PageSize + 1, 8}, nil), 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := bytes.NewReader(tc.frame)
			tag, err := readMsgType(r)
			if err != nil {
				t.Fatal(err)
			}
			var f rangeFrame
			err = readRangeFrame(r, tag, numPages, tc.floor, &f)
			if err == nil {
				t.Fatal("malformed frame decoded cleanly")
			}
			if tc.wantProt && !errors.Is(err, ErrProtocol) {
				t.Errorf("error = %v, want ErrProtocol", err)
			}
		})
	}

	// Control: the unpatched frame decodes, and its fields survive the trip.
	r := bytes.NewReader(valid)
	tag, _ := readMsgType(r)
	var f rangeFrame
	if err := readRangeFrame(r, tag, numPages, 10, &f); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	if f.start != 10 || f.count != 3 || len(f.sums) != 3 || len(f.payload) != 3*vm.PageSize {
		t.Errorf("decoded frame = start %d count %d sums %d payload %d",
			f.start, f.count, len(f.sums), len(f.payload))
	}
}

// scriptedSourceStream builds a raw source-side byte stream: a hello with
// the given range-frame bit, one range frame, then done. Feeding it to
// MigrateDest exercises the destination's negotiation gate with no real
// source in the loop.
func scriptedSourceStream(t testing.TB, offerRanges bool, frame []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHello(&buf, hello{
		Version:     ProtocolVersion,
		VMName:      "vm0",
		PageSize:    vm.PageSize,
		PageCount:   64,
		Alg:         checksum.MD5,
		RangeFrames: offerRanges,
	}); err != nil {
		t.Fatal(err)
	}
	buf.Write(frame)
	if err := writeMsgType(&buf, msgDone); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRangeFrameNegotiationGate: a range frame from a peer that never
// completed the negotiation — it did not offer the capability, or the
// destination declined it — is a protocol violation on both destination
// engines; with the handshake complete the same bytes install cleanly.
func TestRangeFrameNegotiationGate(t *testing.T) {
	pages := [][]byte{make([]byte, vm.PageSize), make([]byte, vm.PageSize)}
	pages[0][7], pages[1][4095] = 0xAB, 0xCD
	frame := buildRangeFull(t, 3, pages)

	for _, workers := range []int{0, 4} {
		name := map[int]string{0: "sequential", 4: "pipelined"}[workers]
		t.Run(name, func(t *testing.T) {
			run := func(offer, decline bool) (*vm.VM, error) {
				dst := newVM(t, "vm0", 64, 2)
				conn := readWriter{bytes.NewReader(scriptedSourceStream(t, offer, frame)), io.Discard}
				_, err := MigrateDest(context.Background(), conn, dst, DestOptions{
					Workers:       workers,
					NoRangeFrames: decline,
				})
				return dst, err
			}
			if _, err := run(false, false); !errors.Is(err, ErrProtocol) {
				t.Errorf("unoffered range frame: err = %v, want ErrProtocol", err)
			}
			if _, err := run(true, true); !errors.Is(err, ErrProtocol) {
				t.Errorf("declined range frame: err = %v, want ErrProtocol", err)
			}
			dst, err := run(true, false)
			if err != nil {
				t.Fatalf("negotiated range frame rejected: %v", err)
			}
			got := make([]byte, vm.PageSize)
			dst.ReadPage(3, got)
			if !bytes.Equal(got, pages[0]) {
				t.Error("negotiated range frame did not install page 3")
			}
			dst.ReadPage(4, got)
			if !bytes.Equal(got, pages[1]) {
				t.Error("negotiated range frame did not install page 4")
			}
		})
	}

	// range-sum and range-delta reference checkpoint state; without a
	// checkpoint they are protocol violations even when negotiated.
	t.Run("sum-without-checkpoint", func(t *testing.T) {
		var buf bytes.Buffer
		if err := writeRangeHeader(&buf, msgRangeSum, 0, 2); err != nil {
			t.Fatal(err)
		}
		if err := writeRangeSums(&buf, make([]checksum.Sum, 2)); err != nil {
			t.Fatal(err)
		}
		dst := newVM(t, "vm0", 64, 2)
		conn := readWriter{bytes.NewReader(scriptedSourceStream(t, true, buf.Bytes())), io.Discard}
		if _, err := MigrateDest(context.Background(), conn, dst, DestOptions{}); !errors.Is(err, ErrProtocol) {
			t.Errorf("range-sum without checkpoint: err = %v, want ErrProtocol", err)
		}
	})
}

// TestRangeFrameInterop runs a recycled migration across the four
// combinations of range-frame support, mirroring the compact-announce
// interop test: coalescing is only on the wire when both ends opted in, any
// other pairing keeps the per-page v1 stream, and every combination
// migrates correctly with identical page classification.
func TestRangeFrameInterop(t *testing.T) {
	const pages = 600
	cases := []struct {
		name           string
		srcOld, dstOld bool
		wantRanges     bool
	}{
		{"both-new", false, false, true},
		{"old-source", true, false, false},
		{"old-dest", false, true, false},
		{"both-old", true, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := newVM(t, "vm0", pages, 1)
			fillGolden(src)
			store := newStore(t)
			if err := store.Save(src); err != nil {
				t.Fatal(err)
			}
			mutateGolden(src)
			dst := newVM(t, "vm0", pages, 2)
			sm, dres := migrate(t, src, dst,
				SourceOptions{Recycle: true, Compress: true, NoRangeFrames: tc.srcOld},
				DestOptions{Store: store, VerifyPayloads: true, NoRangeFrames: tc.dstOld})
			if !src.MemEqual(dst) {
				t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
			}
			if sm.PagesSum == 0 || sm.PagesFull == 0 || sm.PagesCompressed == 0 {
				t.Fatalf("scenario too narrow: %+v", sm)
			}
			if tc.wantRanges {
				if sm.RangeFrames == 0 {
					t.Error("negotiated pair emitted no range frames")
				}
			} else if sm.RangeFrames != 0 {
				t.Errorf("unnegotiated pair emitted %d range frames", sm.RangeFrames)
			}
			// Both sides count frames identically — the destination decodes
			// exactly what the source emitted.
			if dres.Metrics.RangeFrames != sm.RangeFrames {
				t.Errorf("dest decoded %d range frames, source sent %d",
					dres.Metrics.RangeFrames, sm.RangeFrames)
			}
			if dres.Metrics.PageFrames != sm.PageFrames {
				t.Errorf("dest decoded %d frames, source sent %d",
					dres.Metrics.PageFrames, sm.PageFrames)
			}
		})
	}
}

// TestRangeWireSizeHelpers cross-checks the exported range-frame size
// arithmetic against the real encoders, like TestWireSizeConstants does for
// the per-page messages.
func TestRangeWireSizeHelpers(t *testing.T) {
	page := make([]byte, vm.PageSize)
	full := buildRangeFull(t, 0, [][]byte{page, page, page})
	if len(full) != RangeFullMsgBytes(3) {
		t.Errorf("RangeFullMsgBytes(3) = %d, encoder wrote %d", RangeFullMsgBytes(3), len(full))
	}

	var buf bytes.Buffer
	if err := writeRangeHeader(&buf, msgRangeSum, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := writeRangeSums(&buf, make([]checksum.Sum, 5)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != RangeSumMsgBytes(5) {
		t.Errorf("RangeSumMsgBytes(5) = %d, encoder wrote %d", RangeSumMsgBytes(5), buf.Len())
	}

	v := buildRangeVar(t, msgRangeDelta, 0, []uint32{11, 7}, make([]byte, 18))
	if len(v) != RangeVarMsgBytes(2, 18) {
		t.Errorf("RangeVarMsgBytes(2, 18) = %d, encoder wrote %d", RangeVarMsgBytes(2, 18), len(v))
	}
}

// FuzzRangeDecode throws arbitrary bytes at the range-frame decoder under
// every range tag: it must reject or accept without panicking, and an
// accepted frame must satisfy the documented invariants.
func FuzzRangeDecode(f *testing.F) {
	page := make([]byte, vm.PageSize)
	f.Add(buildRangeFull(f, 2, [][]byte{page, page}))
	var sums bytes.Buffer
	_ = writeRangeHeader(&sums, msgRangeSum, 9, 3)
	_ = writeRangeSums(&sums, make([]checksum.Sum, 3))
	f.Add(sums.Bytes())
	f.Add(buildRangeVar(f, msgRangeFullZ, 0, []uint32{4, 4}, make([]byte, 8)))
	f.Add(buildRangeVar(f, msgRangeDelta, 0, []uint32{4, 4}, make([]byte, 8)))
	f.Add([]byte{byte(msgRangeFull)})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const numPages = 64
		for _, tag := range []msgType{msgRangeSum, msgRangeFull, msgRangeFullZ, msgRangeDelta} {
			var fr rangeFrame
			if err := readRangeFrame(bytes.NewReader(raw), tag, numPages, 1, &fr); err != nil {
				continue
			}
			if fr.count < minRangePages || fr.count > MaxRangePages {
				t.Errorf("accepted count %d", fr.count)
			}
			if fr.start < 1 || fr.start+uint64(fr.count) > numPages {
				t.Errorf("accepted run [%d,+%d) outside floor/bounds", fr.start, fr.count)
			}
			if len(fr.sums) != fr.count {
				t.Errorf("decoded %d sums for count %d", len(fr.sums), fr.count)
			}
		}
	})
}

// FuzzRangeMergeStream drives the whole destination engine with a mutated
// range-negotiated stream: must terminate with success or error, never
// panic — the range-frame sibling of FuzzMergeStream.
func FuzzRangeMergeStream(f *testing.F) {
	page := make([]byte, vm.PageSize)
	for i := range page {
		page[i] = byte(i)
	}
	f.Add(scriptedSourceStream(f, true, buildRangeFull(f, 0, [][]byte{page, page})))
	var sums bytes.Buffer
	_ = writeRangeHeader(&sums, msgRangeSum, 0, 2)
	_ = writeRangeSums(&sums, []checksum.Sum{checksum.MD5.Page(page), checksum.MD5.Page(page)})
	f.Add(scriptedSourceStream(f, true, sums.Bytes()))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dst, err := vm.New(vm.Config{Name: "vm0", MemBytes: 64 * vm.PageSize, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, _ = MigrateDest(context.Background(), readWriter{bytes.NewReader(raw), io.Discard}, dst, DestOptions{VerifyPayloads: true})
	})
}
