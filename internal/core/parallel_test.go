package core

import "testing"

// TestParallelChecksumEquivalence verifies that the multi-worker first
// round (§3.4's checksum-rate remedy) is observationally identical to the
// sequential path: same transfer decisions, same destination memory.
func TestParallelChecksumEquivalence(t *testing.T) {
	// 300 pages: deliberately not a multiple of the 256-page batch.
	src := newVM(t, "vm0", 300, 1)
	rd, err := src.NewRamdisk(0.9)
	if err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	if err := rd.UpdatePercent(30); err != nil {
		t.Fatal(err)
	}

	var results []Metrics
	for _, workers := range []int{0, 1, 4} {
		dst := newVM(t, "vm0", 300, int64(100+workers))
		sm, _ := migrate(t, src, dst,
			SourceOptions{Recycle: true, ChecksumWorkers: workers},
			DestOptions{Store: store, VerifyPayloads: true})
		if !src.MemEqual(dst) {
			t.Fatalf("workers=%d: memory differs at page %d", workers, src.FirstDifference(dst))
		}
		results = append(results, sm)
	}
	base := results[0]
	for i, sm := range results[1:] {
		if sm.PagesFull != base.PagesFull || sm.PagesSum != base.PagesSum {
			t.Errorf("variant %d: full/sum = %d/%d, sequential = %d/%d",
				i+1, sm.PagesFull, sm.PagesSum, base.PagesFull, base.PagesSum)
		}
		if sm.BytesSent != base.BytesSent {
			t.Errorf("variant %d: BytesSent = %d, sequential = %d", i+1, sm.BytesSent, base.BytesSent)
		}
	}
}

// TestParallelChecksumWithCompression exercises the worker path combined
// with deflate and an active guest.
func TestParallelChecksumWithCompression(t *testing.T) {
	src := newVM(t, "vm0", 300, 1)
	if err := src.FillCompressible(0.8); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 300, 2)
	sm, _ := migrate(t, src, dst,
		SourceOptions{ChecksumWorkers: 4, Compress: true},
		DestOptions{VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if sm.PagesCompressed == 0 {
		t.Error("compression inactive under parallel checksumming")
	}
}
