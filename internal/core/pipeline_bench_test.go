package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"

	"vecycle/internal/vm"
)

const benchPages = 4096 // 16 MiB guest

func benchVM(b *testing.B, seed int64) *vm.VM {
	b.Helper()
	v, err := vm.New(vm.Config{Name: "bench-vm", MemBytes: benchPages * vm.PageSize, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	// Half compressible, half random: both encoder branches stay hot.
	if err := v.FillRandom(1.0); err != nil {
		b.Fatal(err)
	}
	if err := v.FillCompressible(0.5); err != nil {
		b.Fatal(err)
	}
	return v
}

// BenchmarkFirstRound measures a cold first-round migration (no checkpoint
// at the destination, every page crosses the wire, compression on) at
// fixed pipeline widths {1, 2, 4, 8} — tools/benchgate reads exactly these
// series out of BENCH_migration.json and fails CI on negative scaling. On a
// multi-core host workers=8 should beat workers=1 by ~NumCPU/2 or better;
// on a single-core runner the widths converge but must not regress.
func BenchmarkFirstRound(b *testing.B) {
	src := benchVM(b, 7)
	dst := benchVM(b, 8)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(benchPages * vm.PageSize)
			for i := 0; i < b.N; i++ {
				a, c := net.Pipe()
				var wg sync.WaitGroup
				var serr, derr error
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, derr = MigrateDest(context.Background(), c, dst, DestOptions{Workers: workers})
				}()
				_, serr = MigrateSource(context.Background(), a, src, SourceOptions{
					Compress: true,
					Workers:  workers,
				})
				wg.Wait()
				a.Close()
				c.Close()
				if serr != nil || derr != nil {
					b.Fatalf("source: %v, dest: %v", serr, derr)
				}
			}
		})
	}
}

// BenchmarkTrackIncoming is BenchmarkFirstRound with destination tracking
// on — the ping-pong preparation path (§3.2). Before the hash-once
// lifecycle the destination paid a full-image digest pass at round end on
// top of the migration itself; install-time sum recording shrank that pass
// to only unobserved pages, which in a clean run is none. tools/benchgate
// gates these series against the committed recording, keeping the
// tracked-migration overhead from creeping back.
func BenchmarkTrackIncoming(b *testing.B) {
	src := benchVM(b, 7)
	dst := benchVM(b, 8)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(benchPages * vm.PageSize)
			for i := 0; i < b.N; i++ {
				a, c := net.Pipe()
				var wg sync.WaitGroup
				var serr, derr error
				var res DestResult
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, derr = MigrateDest(context.Background(), c, dst, DestOptions{
						Workers:       workers,
						TrackIncoming: true,
					})
				}()
				_, serr = MigrateSource(context.Background(), a, src, SourceOptions{
					Compress: true,
					Workers:  workers,
				})
				wg.Wait()
				a.Close()
				c.Close()
				if serr != nil || derr != nil {
					b.Fatalf("source: %v, dest: %v", serr, derr)
				}
				if res.Metrics.HashBytes != 0 {
					b.Fatalf("round-end pass digested %d bytes; install-time sums were not recycled", res.Metrics.HashBytes)
				}
			}
		})
	}
}

// BenchmarkFirstRoundTCP is BenchmarkFirstRound over a real 127.0.0.1 TCP
// connection instead of net.Pipe: syscalls, kernel socket buffers, and
// segmentation are in the measured path, so the batch-sized wire buffers
// show up here as fewer write(2) calls per round. Not gated by
// tools/benchgate (loopback throughput varies more across kernels than the
// in-process pipe), but recorded alongside it for comparison.
func BenchmarkFirstRoundTCP(b *testing.B) {
	src := benchVM(b, 7)
	dst := benchVM(b, 8)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(benchPages * vm.PageSize)
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				var derr error
				wg.Add(1)
				go func() {
					defer wg.Done()
					c, err := ln.Accept()
					if err != nil {
						derr = err
						return
					}
					defer c.Close()
					c.(*net.TCPConn).SetNoDelay(true)
					_, derr = MigrateDest(context.Background(), c, dst, DestOptions{Workers: workers})
				}()
				a, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				a.(*net.TCPConn).SetNoDelay(true)
				_, serr := MigrateSource(context.Background(), a, src, SourceOptions{
					Compress: true,
					Workers:  workers,
				})
				wg.Wait()
				a.Close()
				if serr != nil || derr != nil {
					b.Fatalf("source: %v, dest: %v", serr, derr)
				}
			}
		})
	}
}

// BenchmarkMergeLoop isolates the destination: one migration's inbound
// byte stream is recorded once, then replayed from memory, so the numbers
// reflect decode + verify + install throughput alone.
func BenchmarkMergeLoop(b *testing.B) {
	src := benchVM(b, 7)
	rec := recordStream(b, src)
	dst := benchVM(b, 8)
	for _, workers := range []int{0, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(benchPages * vm.PageSize)
			for i := 0; i < b.N; i++ {
				conn := readWriter{bytes.NewReader(rec), io.Discard}
				if _, err := MigrateDest(context.Background(), conn, dst, DestOptions{
					Workers:        workers,
					VerifyPayloads: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDestInstall isolates the destination's memory-install primitive:
// the per-page InstallPage loop the merge path used for every frame versus
// one vectorized InstallRange call per 256-page span — the copy a decoded
// range-full frame lands with.
func BenchmarkDestInstall(b *testing.B) {
	v := benchVM(b, 12)
	data := make([]byte, batchPages*vm.PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	b.Run("per-page", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			for p := 0; p < batchPages; p++ {
				v.InstallPage(p, data[p*vm.PageSize:(p+1)*vm.PageSize])
			}
		}
	})
	b.Run("range", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			v.InstallRange(0, data)
		}
	})
}

// recordStream runs one real migration and captures every byte the
// destination read.
func recordStream(b *testing.B, src *vm.VM) []byte {
	b.Helper()
	dst := benchVM(b, 9)
	a, c := net.Pipe()
	defer a.Close()
	defer c.Close()
	rc := &recordConn{Conn: a}
	var wg sync.WaitGroup
	var derr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, derr = MigrateDest(context.Background(), c, dst, DestOptions{})
	}()
	if _, err := MigrateSource(context.Background(), rc, src, SourceOptions{Compress: true}); err != nil {
		b.Fatal(err)
	}
	wg.Wait()
	if derr != nil {
		b.Fatal(derr)
	}
	return rc.rec.Bytes()
}
