package core

import (
	"math"
	"math/rand"
	"testing"

	"vecycle/internal/vm"
)

// TestGateClassification checks the entropy gate's verdict on the content
// classes the engine actually moves: random pages (and deflate output —
// already-compressed memory) must skip deflate, while patterned, zero, and
// mixed half-random pages must still attempt it.
func TestGateClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	page := make([]byte, vm.PageSize)

	for trial := 0; trial < 32; trial++ {
		rng.Read(page)
		if compressible(page) {
			t.Fatalf("trial %d: random page classified compressible", trial)
		}
	}

	for j := range page { // the FillCompressible pattern
		page[j] = byte((j % 16) * 7)
	}
	if !compressible(page) {
		t.Error("patterned page classified incompressible")
	}

	for j := range page {
		page[j] = 0
	}
	if !compressible(page) {
		t.Error("zero page classified incompressible")
	}

	rng.Read(page[:vm.PageSize/2]) // half random, half zero: still shrinks 2x
	for j := vm.PageSize / 2; j < vm.PageSize; j++ {
		page[j] = 0
	}
	if !compressible(page) {
		t.Error("half-random page classified incompressible")
	}
}

// TestGateDeterminism pins content-purity: the verdict depends only on the
// page bytes, so repeated calls and calls on a copy agree — the property the
// byte-identical golden streams across pipeline widths rest on.
func TestGateDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	page := make([]byte, vm.PageSize)
	for trial := 0; trial < 64; trial++ {
		// Mix of entropy levels, including near-threshold blends.
		n := (trial * vm.PageSize) / 64
		rng.Read(page[:n])
		for j := n; j < vm.PageSize; j++ {
			page[j] = byte(j)
		}
		first := compressible(page)
		cp := append([]byte(nil), page...)
		for i := 0; i < 4; i++ {
			if compressible(page) != first || compressible(cp) != first {
				t.Fatalf("trial %d: gate verdict unstable", trial)
			}
		}
	}
}

// TestGateEntropyEstimate cross-checks the integer fixed-point entropy
// against a float Shannon computation on the same sampled histogram: the
// Q8 approximation must stay within a tenth of a bit per byte, far inside
// the decision margin between compressible (<6) and random (~7.2) content.
func TestGateEntropyEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	page := make([]byte, vm.PageSize)
	for trial := 0; trial < 32; trial++ {
		n := (trial * vm.PageSize) / 32
		rng.Read(page[:n])
		for j := n; j < vm.PageSize; j++ {
			page[j] = byte(j % 32)
		}

		stride := len(page) / gateSamples
		var hist [256]uint16
		for i := 0; i < gateSamples; i++ {
			hist[page[i*stride]]++
		}
		var floatBits float64
		var q8Sum uint32
		for _, c := range hist {
			if c == 0 {
				continue
			}
			p := float64(c) / gateSamples
			floatBits += -p * math.Log2(p)
			q8Sum += uint32(c) * log2Q8[c]
		}
		q8Bits := (float64(gateSamples*9<<8) - float64(q8Sum)) / (gateSamples * 256)
		if diff := math.Abs(q8Bits - floatBits); diff > 0.1 {
			t.Errorf("trial %d: Q8 entropy %.3f vs float %.3f (diff %.3f)",
				trial, q8Bits, floatBits, diff)
		}
	}
}
