package core

import (
	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// Exact wire sizes of the protocol's messages, exported so the paper-scale
// migration simulator (internal/migsim) accounts bytes identically to the
// real engine. A package test cross-checks these constants against bytes
// actually metered on the wire.
const (
	// PageFullMsgBytes is a full-page message: tag, page number, checksum,
	// payload.
	PageFullMsgBytes = 1 + 8 + checksum.Size + vm.PageSize
	// PageSumMsgBytes is a checksum-only page message.
	PageSumMsgBytes = 1 + 8 + checksum.Size
	// RoundEndMsgBytes is a round boundary.
	RoundEndMsgBytes = 1 + 4 + 8
	// DoneMsgBytes and AckMsgBytes are bare tags.
	DoneMsgBytes = 1
	AckMsgBytes  = 1
	// HelloAckMsgBytes is a hello-ack with an empty reason.
	HelloAckMsgBytes = 1 + 1 + 2
)

// HelloMsgBytes reports the size of a hello for a VM name of the given
// length.
func HelloMsgBytes(nameLen int) int {
	return 1 + 2 + 2 + nameLen + 4 + 8 + 1 + 1
}

// AnnounceMsgBytes reports the size of a bulk hash announcement carrying n
// checksums.
func AnnounceMsgBytes(n int) int {
	return 1 + checksum.EncodedSize(n)
}

// RangeHeaderBytes is the fixed header of a coalesced page-range frame:
// tag, start page, page count.
const RangeHeaderBytes = 1 + 8 + 4

// RangeSumMsgBytes reports the size of a range-sum frame carrying n pages:
// header plus one checksum per page.
func RangeSumMsgBytes(n int) int {
	return RangeHeaderBytes + n*checksum.Size
}

// RangeFullMsgBytes reports the size of a range-full frame carrying n
// pages: header, one checksum per page, and the concatenated raw payloads.
func RangeFullMsgBytes(n int) int {
	return RangeSumMsgBytes(n) + n*vm.PageSize
}

// RangeVarMsgBytes reports the size of a range-full-z or range-delta frame
// carrying n pages whose encoded payloads total payloadBytes: header, one
// (checksum, length) pair per page, and the concatenated payloads.
func RangeVarMsgBytes(n, payloadBytes int) int {
	return RangeHeaderBytes + n*(checksum.Size+4) + payloadBytes
}
