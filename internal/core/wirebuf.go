package core

import (
	"bufio"
	"io"
	"sync"
)

// Wire buffer sizing and pooling. Each migration direction is asymmetric: the
// source writes megabytes of frames and reads a handful of control messages,
// the destination mirrors that. The data direction gets a buffer sized to a
// whole pipeline batch (1 MiB of guest pages plus framing), so the emitter
// hands the transport one large write per batch instead of sixteen 64 KiB
// ones — on real sockets that means fewer syscalls and full-sized segments,
// on net.Pipe fewer goroutine handoffs. The control direction stays at
// 64 KiB. Both directions' buffers are pooled process-wide: a 1 MiB bufio
// allocation per migration would otherwise dominate the steady-state
// allocation profile the alloc-ceiling tests pin.

const (
	// dataBufBytes sizes the data-direction buffer: one full pipeline batch
	// (batchPages pages) plus per-page framing headroom.
	dataBufBytes = 1 << 20
	// ctlBufBytes sizes the control direction (hello exchange, acks, and the
	// announcement, which is streamed in chunks anyway).
	ctlBufBytes = 1 << 16
)

var (
	dataWriterPool = sync.Pool{New: func() interface{} {
		return bufio.NewWriterSize(nil, dataBufBytes)
	}}
	dataReaderPool = sync.Pool{New: func() interface{} {
		return bufio.NewReaderSize(nil, dataBufBytes)
	}}
	ctlWriterPool = sync.Pool{New: func() interface{} {
		return bufio.NewWriterSize(nil, ctlBufBytes)
	}}
	ctlReaderPool = sync.Pool{New: func() interface{} {
		return bufio.NewReaderSize(nil, ctlBufBytes)
	}}
)

// getDataWriter returns a pooled batch-sized writer wrapping w.
func getDataWriter(w io.Writer) *bufio.Writer {
	bw := dataWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

// putDataWriter returns the writer to the pool, dropping its reference to
// the transport. Unflushed bytes are discarded — callers flush at every
// protocol turn, so anything left is an aborted migration's tail.
func putDataWriter(bw *bufio.Writer) {
	bw.Reset(nil)
	dataWriterPool.Put(bw)
}

// getDataReader returns a pooled batch-sized reader wrapping r.
func getDataReader(r io.Reader) *bufio.Reader {
	br := dataReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// putDataReader returns the reader to the pool, dropping buffered bytes and
// the transport reference.
func putDataReader(br *bufio.Reader) {
	br.Reset(nil)
	dataReaderPool.Put(br)
}

// getCtlWriter / putCtlWriter / getCtlReader / putCtlReader are the
// control-direction equivalents.
func getCtlWriter(w io.Writer) *bufio.Writer {
	bw := ctlWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

func putCtlWriter(bw *bufio.Writer) {
	bw.Reset(nil)
	ctlWriterPool.Put(bw)
}

func getCtlReader(r io.Reader) *bufio.Reader {
	br := ctlReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putCtlReader(br *bufio.Reader) {
	br.Reset(nil)
	ctlReaderPool.Put(br)
}
