package core

import (
	"testing"

	"vecycle/internal/checksum"
)

// TestAnnounceVersionInterop runs a recycled migration across the four
// combinations of compact-announce support. The capability is negotiated in
// the hello exchange: the v2 encoding is only on the wire when both ends
// opted in, any other pairing degrades to the v1 byte stream, and every
// combination migrates correctly.
func TestAnnounceVersionInterop(t *testing.T) {
	const pages = 128
	cases := []struct {
		name            string
		srcOld, dstOld  bool
		wantV2OnTheWire bool
	}{
		{"both-v2", false, false, true},
		{"old-source", true, false, false},
		{"old-dest", false, true, false},
		{"both-old", true, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := newVM(t, "vm0", pages, 1)
			if err := src.FillRandom(0.95); err != nil {
				t.Fatal(err)
			}
			store := newStore(t)
			if err := store.Save(src); err != nil {
				t.Fatal(err)
			}
			dst := newVM(t, "vm0", pages, 2)
			sm, dres := migrate(t, src, dst,
				SourceOptions{Recycle: true, NoCompactAnnounce: tc.srcOld},
				DestOptions{Store: store, VerifyPayloads: true, NoCompactAnnounce: tc.dstOld})
			if !src.MemEqual(dst) {
				t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
			}
			if !dres.UsedCheckpoint {
				t.Fatal("checkpoint not used")
			}
			if sm.PagesSum != pages {
				t.Errorf("PagesSum = %d, want %d", sm.PagesSum, pages)
			}

			// Both sides account the announcement's v1-equivalent size, so
			// compaction savings are observable regardless of the encoding
			// actually negotiated. Duplicate pages dedupe in the set, so the
			// size is bounded by — not equal to — the page count's.
			rawLen := dres.Metrics.AnnounceRawBytes
			if rawLen <= 0 || rawLen > int64(checksum.EncodedSize(pages)) {
				t.Fatalf("dest AnnounceRawBytes = %d, want in (0, %d]", rawLen, checksum.EncodedSize(pages))
			}
			if sm.AnnounceRawBytes != rawLen {
				t.Errorf("source AnnounceRawBytes = %d, dest accounted %d", sm.AnnounceRawBytes, rawLen)
			}

			// The destination's AnnounceBytes covers tag + frame exactly as
			// emitted; the v1 encoding is pinned to 1+EncodedSize, so any
			// other figure means the compact frame was on the wire.
			v1Wire := 1 + rawLen
			if tc.wantV2OnTheWire {
				if dres.Metrics.AnnounceBytes == v1Wire {
					t.Errorf("AnnounceBytes = %d matches the v1 encoding; compact frame not used", dres.Metrics.AnnounceBytes)
				}
				// The compact encoder never loses more than its fixed header.
				if dres.Metrics.AnnounceBytes > v1Wire+5 {
					t.Errorf("AnnounceBytes = %d, want <= v1 wire size + 5 (%d)", dres.Metrics.AnnounceBytes, v1Wire+5)
				}
			} else if dres.Metrics.AnnounceBytes != v1Wire {
				t.Errorf("AnnounceBytes = %d, want exact v1 wire size %d", dres.Metrics.AnnounceBytes, v1Wire)
			}
		})
	}
}
