package core

// Migration event hooks. The engine reports each protocol turn to an
// optional per-migration callback so the observability layer
// (internal/obs, wired by sched.Host) can build span-like traces without
// the engine importing it — and, critically, without touching the wire
// format: events are emitted about the stream, never into it.

// Event kinds emitted by the migration engines. docs/OBSERVABILITY.md
// documents each kind's fields.
const (
	// EventHello: session established. Detail carries
	// "have_checkpoint=true|false" (pre-copy source/dest) as negotiated.
	EventHello = "hello"
	// EventAnnounce: the bulk checksum announcement crossed the wire
	// (sent on the destination, received on the source). Bytes is its
	// size as encoded (compact when negotiated); Pages the number of
	// checksums announced, from which the pre-compaction v1 size follows
	// (checksum.EncodedSize).
	EventAnnounce = "announce"
	// EventSidecar: the destination restored its checkpoint and consulted
	// the fingerprint sidecar. Detail is the outcome: "hit" (index loaded
	// from the sidecar), "miss" (no sidecar; image rehashed), "fallback"
	// (sidecar invalid; image rehashed), or "disabled".
	EventSidecar = "sidecar"
	// EventRound: one pre-copy round completed. Round is the 1-based
	// round number, Pages the pages streamed (source) or observed dirty
	// (per the round-end frame), Bytes the wire volume of the round as
	// seen from the emitting side. On a compressing source, Detail carries
	// the entropy gate's per-round hit rate as
	// "gate_attempted=N gate_skipped=M".
	EventRound = "round"
	// EventPause: the source paused the guest for stop-and-copy.
	EventPause = "pause"
	// EventResume: the source resumed/released the guest after the
	// destination acknowledged.
	EventResume = "resume"
	// EventManifest: the post-copy checksum manifest crossed the wire.
	// Bytes is its size; Pages (destination only) the pages still
	// missing after resolving it locally.
	EventManifest = "manifest"
	// EventFetch: the post-copy demand-fetch phase finished. Pages is
	// the number of pages served over the network after resume.
	EventFetch = "fetch"
	// EventUnion: the destination had no servable checkpoint of the
	// arriving VM and announced the union of all resident store content
	// instead (the content-addressed pool — other VMs' checkpoints, older
	// generations, salvage partials). Pages is the number of distinct
	// checksums the union announces; Detail carries "entries=N", the
	// count of resident entries contributing.
	EventUnion = "union"
	// EventSalvage: salvage-checkpoint activity around an interrupted
	// migration. Detail is "written" (the destination persisted the pages
	// an aborted incoming migration had installed; Pages = pages newly
	// installed before the failure, Bytes = salvage image size),
	// "write-failed" (the persist itself failed; best-effort, the
	// migration error stands), or "resumed" (an attempt bootstrapped from
	// a salvage image — emitted on both sides; Pages = image pages on the
	// destination).
	EventSalvage = "salvage"
	// EventDegraded: a rung of the graceful-degradation ladder fired — a
	// best-effort activity (checkpoint persist, salvage write, recycled
	// read, union fold) failed and the migration carried on without it.
	// Detail is "stage:fault" using the Stage* constants and the faultfs
	// fault vocabulary ("eio", "enospc", "torn", ...).
	EventDegraded = "degraded"
	// EventDone: the migration completed from this side's perspective.
	EventDone = "done"
)

// Event is one protocol turn reported to an OnEvent hook.
type Event struct {
	// Kind is one of the Event* constants.
	Kind string
	// Round is the 1-based pre-copy round, zero when not applicable.
	Round int
	// Pages is the page count the turn covered.
	Pages int64
	// Bytes is the wire volume attributed to the turn.
	Bytes int64
	// Frames is the number of page-carrying wire frames the turn covered
	// (EventRound only). With coalesced page-range frames negotiated this
	// is well below Pages; under the v1 per-page protocol the two match.
	Frames int64
	// Detail carries free-form context.
	Detail string
}

// EventFunc observes migration protocol turns. Callbacks run on the
// migration's protocol goroutine and must be fast; nil disables emission.
type EventFunc func(Event)

// emit invokes the hook when set.
func (f EventFunc) emit(e Event) {
	if f != nil {
		f(e)
	}
}
