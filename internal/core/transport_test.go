package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"vecycle/internal/vm"
)

func TestDeadlineConnIdleTimeout(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := NewDeadlineConn(a, 50*time.Millisecond)

	done := make(chan error, 1)
	go func() {
		var buf [1]byte
		_, err := c.Read(buf[:]) // peer never writes
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrIdleTimeout) {
			t.Fatalf("Read error = %v, want ErrIdleTimeout", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Read did not time out")
	}
}

func TestDeadlineConnProgressDefersTimeout(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := NewDeadlineConn(a, 150*time.Millisecond)

	// The peer trickles bytes at a pace well inside the idle budget; the
	// connection must survive far past the budget measured from the start.
	go func() {
		for i := 0; i < 10; i++ {
			time.Sleep(50 * time.Millisecond)
			if _, err := b.Write([]byte{byte(i)}); err != nil {
				return
			}
		}
		b.Close()
	}()
	n, err := io.Copy(io.Discard, c)
	if n != 10 {
		t.Fatalf("read %d bytes before error %v, want 10", n, err)
	}
}

func TestDeadlineConnAbortUnblocksRead(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := NewDeadlineConn(a, time.Minute)

	cause := errors.New("operator says stop")
	go func() {
		time.Sleep(20 * time.Millisecond)
		c.Abort(cause)
	}()
	done := make(chan error, 1)
	go func() {
		var buf [1]byte
		_, err := c.Read(buf[:])
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, cause) {
			t.Fatalf("Read error = %v, want abort cause", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Abort did not unblock the read")
	}
	// Future operations fail immediately with the same cause.
	if _, err := c.Write([]byte{0}); !errors.Is(err, cause) {
		t.Fatalf("Write after abort = %v, want abort cause", err)
	}
}

func TestMigrateSourceContextCancel(t *testing.T) {
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	_ = b // silent peer: never reads, never answers

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := MigrateSource(ctx, NewDeadlineConn(a, time.Minute), src, SourceOptions{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("MigrateSource = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not abort the blocked migration")
	}
}

func TestMigrateSourceContextDeadline(t *testing.T) {
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	_ = b // silent peer

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := MigrateSource(ctx, NewDeadlineConn(a, time.Minute), src, SourceOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("MigrateSource = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("migration took %v to honor a 50ms deadline", elapsed)
	}
}

func TestAcceptContextCancel(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	_ = b // peer never sends a hello

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Accept(ctx, NewDeadlineConn(a, time.Minute))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Accept = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not abort the blocked accept")
	}
}

func TestOversizedNameHelloLeavesCleanStream(t *testing.T) {
	var stream bytes.Buffer
	bad := hello{
		Version:   ProtocolVersion,
		VMName:    strings.Repeat("x", maxNameLen+1),
		PageSize:  vm.PageSize,
		PageCount: 4,
		Alg:       1,
	}
	if err := writeHello(&stream, bad); err == nil {
		t.Fatal("oversized VM name accepted")
	}
	// The failed write must not have emitted a partial frame: the stream is
	// still usable for a follow-up hello.
	if stream.Len() != 0 {
		t.Fatalf("failed hello left %d bytes on the stream", stream.Len())
	}
	good := bad
	good.VMName = "vm0"
	if err := writeHello(&stream, good); err != nil {
		t.Fatal(err)
	}
	tag, err := readMsgType(&stream)
	if err != nil || tag != msgHello {
		t.Fatalf("readMsgType = %v, %v", tag, err)
	}
	got, err := readHello(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if got.VMName != "vm0" || got.PageCount != 4 {
		t.Fatalf("hello round-trip = %+v", got)
	}
	if stream.Len() != 0 {
		t.Fatalf("%d trailing bytes after hello", stream.Len())
	}
}

func TestHelloAckReasonTruncated(t *testing.T) {
	// Rejection reasons can embed attacker- or filesystem-derived strings;
	// the writer must bound them instead of desyncing or ballooning the
	// frame. Pins the truncate-to-maxNameLen behaviour.
	var stream bytes.Buffer
	long := strings.Repeat("r", maxNameLen+500)
	if err := writeHelloAck(&stream, helloAck{OK: false, Reason: long}); err != nil {
		t.Fatal(err)
	}
	tag, err := readMsgType(&stream)
	if err != nil || tag != msgHelloAck {
		t.Fatalf("readMsgType = %v, %v", tag, err)
	}
	got, err := readHelloAck(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Reason) != maxNameLen || got.Reason != long[:maxNameLen] {
		t.Fatalf("reason len %d after round-trip, want %d", len(got.Reason), maxNameLen)
	}
	if stream.Len() != 0 {
		t.Fatalf("%d trailing bytes after hello-ack", stream.Len())
	}
}

func TestMigrationSurvivesShortReads(t *testing.T) {
	src := newVM(t, "vm0", 32, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 32, 2)

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	// Fragment every read on the destination: no io.ReadFull call may
	// assume a page arrives in one piece.
	short := NewFaultConn(b, FaultConfig{MaxReadChunk: 7})

	var wg sync.WaitGroup
	var serr, derr error
	wg.Add(2)
	go func() { defer wg.Done(); _, serr = MigrateSource(context.Background(), a, src, SourceOptions{}) }()
	go func() { defer wg.Done(); _, derr = MigrateDest(context.Background(), short, dst, DestOptions{}) }()
	wg.Wait()
	if serr != nil || derr != nil {
		t.Fatalf("migration failed: source=%v dest=%v", serr, derr)
	}
	if !src.MemEqual(dst) {
		t.Error("memory differs after short-read migration")
	}
}

func TestMigrationFailsCleanlyOnReset(t *testing.T) {
	src := newVM(t, "vm0", 32, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 32, 2)

	a, b := net.Pipe()
	// Cut the connection mid page-stream, past the hello exchange.
	cut := NewFaultConn(a, FaultConfig{ResetAfterBytes: 20_000})

	var wg sync.WaitGroup
	var serr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, serr = MigrateSource(context.Background(), cut, src, SourceOptions{})
		a.Close() // unblock the destination's pending read
	}()
	go func() {
		defer wg.Done()
		_, _ = MigrateDest(context.Background(), b, dst, DestOptions{})
		b.Close()
	}()
	wg.Wait()
	if !errors.Is(serr, ErrInjectedReset) {
		t.Fatalf("source error = %v, want ErrInjectedReset", serr)
	}
}

func TestFaultConnStallHonorsDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() { _, _ = io.Copy(io.Discard, b) }() // drain until the stall

	stall := NewFaultConn(a, FaultConfig{StallAfterBytes: 1000})
	c := NewDeadlineConn(stall, 100*time.Millisecond)

	buf := make([]byte, 4096)
	start := time.Now()
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		_, err = c.Write(buf)
	}
	if !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("stalled write error = %v, want ErrIdleTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stalled write held the caller for %v", elapsed)
	}
}

func TestPostCopyRequestsArePipelined(t *testing.T) {
	const pages = 700
	src := newVM(t, "vm0", pages, 1)
	if err := src.FillRandom(1.0); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", pages, 2)

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	// Latency on the destination's writes makes every flush cost a round
	// trip, as on a real link; counting writes through the wrapper counts
	// flushes, since the 64 KiB protocol buffer holds a full request window.
	lat := NewFaultConn(b, FaultConfig{WriteLatency: 200 * time.Microsecond})

	var wg sync.WaitGroup
	var serr, derr error
	var res PostCopyDestResult
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, serr = PostCopySource(context.Background(), a, src, PostCopySourceOptions{})
	}()
	go func() {
		defer wg.Done()
		res, derr = PostCopyDest(context.Background(), lat, dst, PostCopyDestOptions{})
	}()
	wg.Wait()
	if serr != nil || derr != nil {
		t.Fatalf("post-copy failed: source=%v dest=%v", serr, derr)
	}
	if !src.MemEqual(dst) {
		t.Fatal("memory differs after post-copy")
	}
	missing := res.Metrics.PagesRequested
	if missing < requestWindow*2 {
		t.Fatalf("only %d pages were demand-fetched; test needs multiple windows", missing)
	}
	// One request flush per window plus a handful of control-message
	// flushes — versus one flush per page before pipelining.
	if got, limit := lat.WriteOps(), int64(missing/10); got > limit {
		t.Errorf("destination flushed %d times for %d fetched pages, want <= %d (pipelined windows)", got, missing, limit)
	}
}
