package core

import (
	"context"
	"errors"
	"fmt"

	"vecycle/internal/faultfs"
)

// The migration error taxonomy. Failures on the migration path fall into
// three classes, and the scheduler's retry loop used to tell them apart
// with ad-hoc sentinel checks scattered across call sites. MigrationError
// makes the classification explicit at the point where the failure is
// first understood: the site that knows whether an error is worth a
// retry, fatal, or merely a lost optimization wraps it once, and every
// layer above routes on the class through errors.As instead of
// re-deriving it.

// ErrorClass partitions migration-path failures by how the caller should
// respond.
type ErrorClass uint8

const (
	// ClassUnknown: the error carries no classification; callers fall back
	// to heuristics (Classify).
	ClassUnknown ErrorClass = iota
	// ClassTerminal: retrying cannot help — the destination rejected the
	// migration, the protocol was violated, or the caller canceled.
	ClassTerminal
	// ClassRetryable: a fresh attempt over a fresh connection may succeed
	// (transport faults, torn streams, transient storage reads).
	ClassRetryable
	// ClassDegraded: the migration itself SUCCEEDED but a best-effort side
	// activity (checkpoint persist, salvage write, recycled read) was lost.
	// Never propagated as a migration failure; recorded and dropped.
	ClassDegraded
)

// String returns the class as the label used by metrics and traces.
func (c ErrorClass) String() string {
	switch c {
	case ClassTerminal:
		return "terminal"
	case ClassRetryable:
		return "retryable"
	case ClassDegraded:
		return "degraded"
	default:
		return "unknown"
	}
}

// Stage labels for MigrationError.Stage and the degradation ladder's
// vecycle_degraded_total{stage} series. One vocabulary shared by core,
// sched and the docs.
const (
	// StageKeepCheckpoint: the source-side persist after a successful
	// outgoing migration (the §3.1 "keep the checkpoint" step).
	StageKeepCheckpoint = "keep-checkpoint"
	// StageSaveArrivals: the destination-side persist after a successful
	// incoming migration.
	StageSaveArrivals = "save-arrivals"
	// StageDiskCheckpoint: the pre-send disk checkpoint of the outgoing
	// migration path (CheckpointToDisk / the auto-checkpoint step).
	StageDiskCheckpoint = "disk-checkpoint"
	// StageSalvage: persisting the partial image of an interrupted
	// incoming migration.
	StageSalvage = "salvage"
	// StageBootstrap: restoring a local checkpoint to seed an incoming
	// migration (full restore or union announce).
	StageBootstrap = "bootstrap"
	// StageDeltaBase: opening the previous-generation image that delta
	// encoding diffs against on the source.
	StageDeltaBase = "delta-base"
	// StageRecycleRead: reading a recycled page out of the local store
	// mid-merge, after the round loop decided to reuse it.
	StageRecycleRead = "recycle-read"
	// StageUnionRead: folding a store entry into a union announcement.
	StageUnionRead = "union-read"
)

// MigrationError is a classified migration-path failure: which stage
// failed, how the caller should respond, and the storage-fault vocabulary
// word (faultfs.Label) when one applies.
type MigrationError struct {
	// Stage is one of the Stage* constants.
	Stage string
	// Class routes the caller's response.
	Class ErrorClass
	// Fault is the storage-fault label ("eio", "enospc", "torn", ...) or
	// empty when the failure was not storage-borne.
	Fault string
	// Err is the underlying cause.
	Err error
}

func (e *MigrationError) Error() string {
	if e.Fault != "" {
		return fmt.Sprintf("migration %s (%s, %s): %v", e.Stage, e.Class, e.Fault, e.Err)
	}
	return fmt.Sprintf("migration %s (%s): %v", e.Stage, e.Class, e.Err)
}

func (e *MigrationError) Unwrap() error { return e.Err }

// Fail wraps err as a classified MigrationError. A nil err returns nil so
// sites can wrap unconditionally.
func Fail(stage string, class ErrorClass, fault string, err error) error {
	if err == nil {
		return nil
	}
	return &MigrationError{Stage: stage, Class: class, Fault: fault, Err: err}
}

// recycleReadErr classifies a failed read of a recycled page out of the
// local checkpoint store mid-merge. The transfer's data is intact at the
// source, so a fresh attempt (resending the affected pages over the wire
// after the failing entry is quarantined) recovers — retryable, never
// terminal.
func recycleReadErr(err error) error {
	return Fail(StageRecycleRead, ClassRetryable, faultfs.Label(err), err)
}

// deltaBaseErr classifies a failed read of the source-side delta base.
// Deltas are an optimization; the scheduler's retry re-runs the attempt
// with delta encoding disabled, exactly like a stale-base abort.
func deltaBaseErr(err error) error {
	return Fail(StageDeltaBase, ClassRetryable, faultfs.Label(err), err)
}

// Classify reports how a migration error should be handled. A
// MigrationError anywhere in the chain is authoritative; otherwise
// rejection, protocol violations and cancellation are terminal, and
// everything else — transport resets, torn streams, storage hiccups — is
// worth a retry.
func Classify(err error) ErrorClass {
	if err == nil {
		return ClassUnknown
	}
	var me *MigrationError
	if errors.As(err, &me) && me.Class != ClassUnknown {
		return me.Class
	}
	switch {
	case errors.Is(err, ErrRejected),
		errors.Is(err, ErrProtocol),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return ClassTerminal
	}
	return ClassRetryable
}
