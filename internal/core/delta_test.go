package core

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// partialUpdate rewrites a small slice inside each of the given pages,
// leaving the rest of the page intact — the pattern where delta encoding
// shines (a few cache lines of a dirty page actually changed).
func partialUpdate(t *testing.T, v *vm.VM, pages []int) {
	t.Helper()
	buf := make([]byte, vm.PageSize)
	for _, p := range pages {
		v.ReadPage(p, buf)
		for i := 100; i < 164; i++ {
			buf[i] ^= 0xFF
		}
		v.WritePage(p, buf)
	}
}

func TestDeltaMigration(t *testing.T) {
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	// Both sides hold the same checkpoint: the destination's store and the
	// source's delta-base mirror.
	destStore, srcStore := newStore(t), newStore(t)
	if err := destStore.Save(src); err != nil {
		t.Fatal(err)
	}
	if err := srcStore.Save(src); err != nil {
		t.Fatal(err)
	}
	base, err := srcStore.Restore("vm0", checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	// 10 pages change partially, 4 pages change completely.
	partialUpdate(t, src, []int{3, 7, 11, 19, 23, 29, 31, 37, 41, 43})
	full := bytes.Repeat([]byte{0xEE}, vm.PageSize)
	for _, p := range []int{50, 51, 52, 53} {
		buf := append([]byte(nil), full...)
		buf[0] = byte(p) // distinct contents
		src.WritePage(p, buf)
	}

	dst := newVM(t, "vm0", 64, 2)
	sm, dres := migrate(t, src, dst,
		SourceOptions{Recycle: true, DeltaBase: base},
		DestOptions{Store: destStore, VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if sm.PagesDelta != 10 {
		t.Errorf("PagesDelta = %d, want 10", sm.PagesDelta)
	}
	if dres.Metrics.PagesDelta != 10 {
		t.Errorf("destination PagesDelta = %d, want 10", dres.Metrics.PagesDelta)
	}
	if sm.PagesFull != 4 {
		t.Errorf("PagesFull = %d, want 4 (deltas are counted separately)", sm.PagesFull)
	}
	if sm.PagesSum != 50 {
		t.Errorf("PagesSum = %d, want 50", sm.PagesSum)
	}
	if sm.DeltaSavedBytes <= 0 {
		t.Error("deltas saved nothing")
	}
	// Wire bytes: 10 partially-changed pages cost ~100 B each instead of
	// 4 KiB. Compare with the same migration without deltas.
	dst2 := newVM(t, "vm0", 64, 3)
	sm2, _ := migrate(t, src, dst2,
		SourceOptions{Recycle: true},
		DestOptions{Store: destStore, VerifyPayloads: true})
	if sm.BytesSent >= sm2.BytesSent {
		t.Errorf("delta migration sent %d bytes, plain recycle %d", sm.BytesSent, sm2.BytesSent)
	}
}

func TestDeltaStaleBaseDetected(t *testing.T) {
	// The source's mirror disagrees with the destination's checkpoint: the
	// delta applies against the wrong base and the mandatory checksum
	// verification must catch it.
	src := newVM(t, "vm0", 16, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	destStore := newStore(t)
	// The source's mirror is *almost* the destination's checkpoint: page 2
	// diverged slightly after the mirror was taken, so a delta against the
	// mirror still comes out small — but applies against the wrong base.
	staleStore := newStore(t)
	if err := staleStore.Save(src); err != nil {
		t.Fatal(err)
	}
	partialUpdate(t, src, []int{2}) // dest checkpoint = this middle state
	if err := destStore.Save(src); err != nil {
		t.Fatal(err)
	}
	base, err := staleStore.Restore("vm0", checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	// Revert page 2 to the mirror's state (the XOR update is an
	// involution): the delta against the mirror is empty, but the
	// destination's frame holds the middle state — a divergence the delta's
	// zero runs silently copy, which only the checksum can expose.
	partialUpdate(t, src, []int{2})

	dst := newVM(t, "vm0", 16, 2)
	a, b := net.Pipe()
	var wg sync.WaitGroup
	var derr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = MigrateSource(context.Background(), a, src, SourceOptions{Recycle: true, DeltaBase: base})
		a.Close()
	}()
	go func() {
		defer wg.Done()
		_, derr = MigrateDest(context.Background(), b, dst, DestOptions{Store: destStore})
		b.Close()
	}()
	wg.Wait()
	if !errors.Is(derr, ErrProtocol) {
		t.Errorf("stale delta base: destination error = %v, want ErrProtocol", derr)
	}
}

func TestDeltaDisabledWithoutDestCheckpoint(t *testing.T) {
	// The destination has no checkpoint: deltas must be suppressed even
	// though the source configured a base.
	src := newVM(t, "vm0", 16, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	srcStore := newStore(t)
	if err := srcStore.Save(src); err != nil {
		t.Fatal(err)
	}
	base, err := srcStore.Restore("vm0", checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	partialUpdate(t, src, []int{2})

	dst := newVM(t, "vm0", 16, 2)
	sm, _ := migrate(t, src, dst,
		SourceOptions{Recycle: true, DeltaBase: base},
		DestOptions{Store: newStore(t), VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatal("memory differs")
	}
	if sm.PagesDelta != 0 {
		t.Errorf("sent %d deltas to a checkpoint-less destination", sm.PagesDelta)
	}
}

func TestDeltaComposesWithCompression(t *testing.T) {
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillCompressible(0.95); err != nil {
		t.Fatal(err)
	}
	destStore, srcStore := newStore(t), newStore(t)
	if err := destStore.Save(src); err != nil {
		t.Fatal(err)
	}
	if err := srcStore.Save(src); err != nil {
		t.Fatal(err)
	}
	base, err := srcStore.Restore("vm0", checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	// Partial changes (delta-friendly) plus whole-page compressible
	// rewrites (compression-friendly).
	partialUpdate(t, src, []int{1, 2, 3})
	buf := make([]byte, vm.PageSize)
	for j := range buf {
		buf[j] = byte(j % 5)
	}
	src.WritePage(10, buf)

	dst := newVM(t, "vm0", 64, 2)
	sm, _ := migrate(t, src, dst,
		SourceOptions{Recycle: true, DeltaBase: base, Compress: true},
		DestOptions{Store: destStore, VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if sm.PagesDelta != 3 {
		t.Errorf("PagesDelta = %d, want 3", sm.PagesDelta)
	}
	if sm.PagesCompressed != 1 {
		t.Errorf("PagesCompressed = %d, want 1", sm.PagesCompressed)
	}
}
