package core

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// checkTrackedResult asserts the hash-once contract after a successful
// tracked migration: the page-sum table is complete, every recorded sum
// matches an independent digest of the installed memory, the SeenSums set
// is exactly what the old full-image collectSums pass would have produced,
// and the round-end pass digested nothing (every byte's sum was recycled).
func checkTrackedResult(t *testing.T, dst *vm.VM, res DestResult) {
	t.Helper()
	if res.PageSums == nil {
		t.Fatal("tracked migration returned no page-sum table")
	}
	sums, ok := res.PageSums.Sums()
	if !ok {
		t.Fatal("page-sum table incomplete after a successful tracked run")
	}
	alg := res.PageSums.Alg()
	for i := 0; i < dst.NumPages(); i++ {
		if want := dst.PageSum(i, alg); sums[i] != want {
			t.Fatalf("page %d: table sum %x, independent digest %x", i, sums[i], want)
		}
	}
	// The table-backed SeenSums must equal the legacy full-scan reference.
	ref := checksum.NewSet(dst.NumPages())
	collectSums(dst, alg, ref)
	if got, want := res.SeenSums.Len(), ref.Len(); got != want {
		t.Fatalf("SeenSums has %d distinct sums, full scan has %d", got, want)
	}
	for i := 0; i < dst.NumPages(); i++ {
		if s := dst.PageSum(i, alg); !res.SeenSums.Contains(s) {
			t.Fatalf("SeenSums missing page %d's sum", i)
		}
	}
	if res.Metrics.HashBytes != 0 {
		t.Errorf("round-end pass digested %d bytes, want 0 (all sums recorded at install)", res.Metrics.HashBytes)
	}
	if got, want := res.Metrics.HashAvoidedBytes, dst.MemBytes(); got != want {
		t.Errorf("HashAvoidedBytes = %d, want %d (whole image)", got, want)
	}
}

// TestSumTableEquivalence drives every frame kind that can install a page —
// coalesced range frames, individual full pages, checksum-only recycling,
// XBZRLE deltas — at every engine width, and pins the recorded table
// against an independent rehash of the final memory.
func TestSumTableEquivalence(t *testing.T) {
	const pages = 512
	scenarios := []struct {
		name string
		run  func(t *testing.T, workers int)
	}{
		{"range-frames", func(t *testing.T, workers int) {
			// Cold first round: every page arrives as a full payload,
			// coalesced into range frames carrying per-page sum arrays.
			src := newVM(t, "vm0", pages, 1)
			if err := src.FillRandom(0.9); err != nil {
				t.Fatal(err)
			}
			dst := newVM(t, "vm0", pages, 2)
			_, res := migrate(t, src, dst,
				SourceOptions{Workers: workers},
				DestOptions{Workers: workers, TrackIncoming: true, VerifyPayloads: true})
			if !src.MemEqual(dst) {
				t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
			}
			checkTrackedResult(t, dst, res)
		}},
		{"legacy-per-page", func(t *testing.T, workers int) {
			// Range frames withheld: the same cold round lands as
			// individual msgPageFull/FullZ frames.
			src := newVM(t, "vm0", pages, 1)
			if err := src.FillRandom(0.9); err != nil {
				t.Fatal(err)
			}
			dst := newVM(t, "vm0", pages, 2)
			_, res := migrate(t, src, dst,
				SourceOptions{Workers: workers, NoRangeFrames: true},
				DestOptions{Workers: workers, TrackIncoming: true, VerifyPayloads: true})
			if !src.MemEqual(dst) {
				t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
			}
			checkTrackedResult(t, dst, res)
		}},
		{"recycled", func(t *testing.T, workers int) {
			// Destination holds a warm checkpoint: most pages arrive as
			// checksum-only frames resolved out of the image, the dirtied
			// rest as payloads.
			src := newVM(t, "vm0", pages, 1)
			if err := src.FillRandom(0.9); err != nil {
				t.Fatal(err)
			}
			store := newStore(t)
			if err := store.Save(src); err != nil {
				t.Fatal(err)
			}
			src.TouchRandomPages(40)
			dst := newVM(t, "vm0", pages, 2)
			_, res := migrate(t, src, dst,
				SourceOptions{Recycle: true, Workers: workers},
				DestOptions{Store: store, Workers: workers, TrackIncoming: true, VerifyPayloads: true})
			if !src.MemEqual(dst) {
				t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
			}
			if !res.UsedCheckpoint {
				t.Fatal("checkpoint not used")
			}
			checkTrackedResult(t, dst, res)
		}},
		{"delta", func(t *testing.T, workers int) {
			// Both sides share a base; partially-dirtied pages travel as
			// XBZRLE deltas, installed after verification.
			src := newVM(t, "vm0", pages, 1)
			if err := src.FillRandom(0.95); err != nil {
				t.Fatal(err)
			}
			destStore, srcStore := newStore(t), newStore(t)
			if err := destStore.Save(src); err != nil {
				t.Fatal(err)
			}
			if err := srcStore.Save(src); err != nil {
				t.Fatal(err)
			}
			base, err := srcStore.Restore("vm0", checksum.MD5, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer base.Close()
			partialUpdate(t, src, []int{3, 7, 11, 19, 23, 29, 31, 37, 41, 43})
			dst := newVM(t, "vm0", pages, 2)
			sm, res := migrate(t, src, dst,
				SourceOptions{Recycle: true, Workers: workers, DeltaBase: base},
				DestOptions{Store: destStore, Workers: workers, TrackIncoming: true, VerifyPayloads: true})
			if !src.MemEqual(dst) {
				t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
			}
			if sm.PagesDelta == 0 {
				t.Fatal("delta scenario sent no delta frames")
			}
			checkTrackedResult(t, dst, res)
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for _, workers := range []int{0, 1, 2, 8} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					sc.run(t, workers)
				})
			}
		})
	}
}

// TestSumTableUntracked: without TrackIncoming there is no table to build.
func TestSumTableUntracked(t *testing.T) {
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 64, 2)
	_, res := migrate(t, src, dst, SourceOptions{}, DestOptions{VerifyPayloads: true})
	if res.PageSums != nil {
		t.Error("untracked migration built a page-sum table")
	}
}

// TestSumTableCorruptionTeardown: a verify failure aborts the migration
// mid-stream; the partial table must refuse to pose as complete, so no
// caller can feed a half-built digest set into SaveWithSums.
func TestSumTableCorruptionTeardown(t *testing.T) {
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 64, 2)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	evil := &corruptConn{Conn: a, target: 10_000}
	var (
		wg   sync.WaitGroup
		dres DestResult
		derr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = MigrateSource(context.Background(), evil, src, SourceOptions{})
	}()
	go func() {
		defer wg.Done()
		dres, derr = MigrateDest(context.Background(), b, dst,
			DestOptions{TrackIncoming: true, VerifyPayloads: true})
		b.Close()
	}()
	wg.Wait()
	if derr == nil {
		t.Fatal("corrupted stream accepted")
	}
	if dres.PageSums == nil {
		t.Fatal("tracked teardown dropped the table entirely (nil)")
	}
	if _, ok := dres.PageSums.Sums(); ok {
		t.Error("aborted migration's table claims completeness")
	}
}

// TestSumTableSalvage: an interrupted tracked attempt leaves an incomplete
// table; the resumed attempt — bootstrapping from the salvage image —
// still ends with a complete, correct one, because round one walks every
// page regardless of how the destination resolves it.
func TestSumTableSalvage(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(map[int]string{0: "sequential", 4: "pipelined"}[workers], func(t *testing.T) {
			const pages = 512
			src := newVM(t, "vm0", pages, 1)
			if err := src.FillRandom(0.95); err != nil {
				t.Fatal(err)
			}
			store := newStore(t)
			dst1 := newVM(t, "vm0", pages, 2)
			dres, serr, derr := cutMigration(t, src, dst1, 1_200_000,
				SourceOptions{Recycle: true, Workers: workers},
				DestOptions{Store: store, Workers: workers, TrackIncoming: true, VerifyPayloads: true})
			if serr == nil || derr == nil {
				t.Fatalf("cut migration succeeded (source=%v dest=%v)", serr, derr)
			}
			if dres.SalvagePages == 0 {
				t.Fatal("no salvage progress")
			}
			if dres.PageSums != nil {
				if _, ok := dres.PageSums.Sums(); ok {
					t.Error("interrupted attempt's table claims completeness")
				}
			}
			dst2 := newVM(t, "vm0", pages, 3)
			_, dres2 := migrate(t, src, dst2,
				SourceOptions{Recycle: true, Workers: workers},
				DestOptions{Store: store, Workers: workers, TrackIncoming: true, VerifyPayloads: true})
			if !src.MemEqual(dst2) {
				t.Fatalf("memory differs at page %d", src.FirstDifference(dst2))
			}
			if !dres2.ResumedFromPartial {
				t.Error("destination did not report a partial bootstrap")
			}
			checkTrackedResult(t, dst2, dres2)
		})
	}
}

// TestSourceSentSums pins the source-side half of the lifecycle: with a
// SentSums table supplied, a completed migration leaves the table holding
// the digest of every page's final (paused) state — the exact table the
// KeepCheckpoint save hands to SaveWithSums.
func TestSourceSentSums(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const pages = 512
			src := newVM(t, "vm0", pages, 1)
			if err := src.FillRandom(0.9); err != nil {
				t.Fatal(err)
			}
			dst := newVM(t, "vm0", pages, 2)
			sent := NewSumTable()
			_, _ = migrate(t, src, dst,
				SourceOptions{Workers: workers, SentSums: sent},
				DestOptions{VerifyPayloads: true})
			if !src.MemEqual(dst) {
				t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
			}
			sums, ok := sent.Sums()
			if !ok {
				t.Fatal("source table incomplete after a clean migration")
			}
			for i := 0; i < src.NumPages(); i++ {
				if want := src.PageSum(i, sent.Alg()); sums[i] != want {
					t.Fatalf("page %d: sent sum %x, paused state digests to %x", i, sums[i], want)
				}
			}
		})
	}
}
