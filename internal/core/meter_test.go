package core

import (
	"strings"
	"testing"
	"time"
)

// TestMetricsStringNormalized pins the one-line summary format: both byte
// directions in binary units via FormatBytes, fixed field order, and the
// post-copy variant extending — not reordering — the shared prefix. A
// source's sent=X and the destination's recv=X then agree byte-for-byte in
// logs.
func TestMetricsStringNormalized(t *testing.T) {
	m := Metrics{
		BytesSent:     3 << 20,
		BytesReceived: 1 << 10,
		PagesFull:     7,
		PagesSum:      9,
		Rounds:        2,
		Duration:      1500 * time.Millisecond,
	}
	want := "sent=3.00 MiB recv=1.00 KiB full=7 sum=9 rounds=2 time=1.5s"
	if got := m.String(); got != want {
		t.Errorf("Metrics.String() = %q, want %q", got, want)
	}

	pm := PostCopyMetrics{
		Metrics:        m,
		ResumeDelay:    200 * time.Millisecond,
		PagesRequested: 5,
	}
	if got := pm.String(); !strings.HasPrefix(got, want+" ") {
		t.Errorf("PostCopyMetrics.String() = %q, want prefix %q", got, want)
	} else if got != want+" resume=200ms fetched=5" {
		t.Errorf("PostCopyMetrics.String() = %q", got)
	}

	// The two sides of one migration must summarize symmetrically: the
	// destination view (directions swapped) renders its received volume
	// with the same unit formatting the source used for sent.
	destView := Metrics{BytesSent: m.BytesReceived, BytesReceived: m.BytesSent}
	if !strings.Contains(destView.String(), "recv="+FormatBytes(m.BytesSent)) {
		t.Errorf("dest view %q does not mirror source sent volume", destView.String())
	}
}
