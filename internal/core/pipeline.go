package core

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// The source half of the pipelined migration engine (§3.4): page
// sequencing, page reads + checksum + compression + delta encoding, and
// wire emission run as concurrent stages connected by bounded queues, so
// batch N+1 is being hashed and compressed while batch N is on the wire.
// The checksum rate — not the network — bounds fast-link migrations (MD5
// at ~350 MiB/s vs 10/40 GbE), which is why the encode stage is the one
// that fans out. Page reads happen inside the encode workers too (batched
// vm.ReadRange over contiguous spans), so memory-copy bandwidth scales
// with the worker count instead of serializing on the sequencer.
//
// Ordering guarantee: the emitter writes batches strictly in read order, so
// the wire stream is byte-for-byte identical to the sequential engine's for
// any worker count. Per-page encoding decisions (checksum-set lookup, delta
// attempt, deflate) depend only on the page content, never on neighbouring
// pages, which is what makes the fan-out sound.

// batchPages is the pipeline's work-unit size: 256 pages (1 MiB of guest
// memory) amortizes channel and scheduling overhead while keeping at most a
// few MiB in flight.
const batchPages = 256

// pageSeq enumerates the pages of one pre-copy round: the full address
// space in round one, the harvested dirty list afterwards.
type pageSeq struct {
	list  []int // explicit page numbers; nil means the range [0, count)
	count int   // used when list == nil
}

func seqAll(n int) pageSeq        { return pageSeq{count: n} }
func seqList(pages []int) pageSeq { return pageSeq{list: pages, count: len(pages)} }
func (s pageSeq) len() int        { return s.count }
func (s pageSeq) at(i int) int {
	if s.list != nil {
		return s.list[i]
	}
	return i
}

// pageBatch carries up to batchPages pages through the pipeline. The worker
// serializes its frames into buf; the emitter writes buf out in sequence
// order and merges the per-batch counters.
type pageBatch struct {
	pages []int          // page numbers
	data  []byte         // page payloads, len(pages)*PageSize
	sums  []checksum.Sum // per-page digests precomputed by the hash offload; empty otherwise
	buf   bytes.Buffer   // encoded wire frames, in page order
	m     Metrics        // per-batch page counters
	err   error          // set instead of buf when encoding failed
	done  chan struct{}
}

// pageSum returns page i's digest: the precomputed one when the sequential
// engine's hash offload ran over this batch, computed in place otherwise.
func (b *pageBatch) pageSum(alg checksum.Algorithm, i int, data []byte) checksum.Sum {
	if i < len(b.sums) {
		return b.sums[i]
	}
	return alg.Page(data)
}

// fail marks the batch failed and releases its emitter.
func (b *pageBatch) fail(err error) {
	if b.err == nil {
		b.err = err
	}
	close(b.done)
}

var batchPool = sync.Pool{New: func() interface{} {
	return &pageBatch{
		pages: make([]int, 0, batchPages),
		data:  make([]byte, 0, batchPages*vm.PageSize),
		sums:  make([]checksum.Sum, 0, batchPages),
	}
}}

// maxPooledBatchBytes bounds the frame buffer a pooled batch may retain. A
// batch's encoded frames normally fit its pages' raw size plus framing; a
// pathological round (incompressible deltas, say) can grow the buffer well
// beyond that, and sync.Pool would then keep the spike alive indefinitely.
// Oversized buffers are dropped so steady-state memory stays capped at any
// worker count.
const maxPooledBatchBytes = 2 * batchPages * vm.PageSize

func putBatch(b *pageBatch) {
	b.pages = b.pages[:0]
	b.data = b.data[:0]
	b.sums = b.sums[:0]
	b.buf.Reset()
	if b.buf.Cap() > maxPooledBatchBytes {
		b.buf = bytes.Buffer{}
	}
	b.m = Metrics{}
	b.err = nil
	b.done = nil
	batchPool.Put(b)
}

// pipelineStats accumulates stage timings from concurrently running stages.
type pipelineStats struct {
	batches       atomic.Int64
	ingestBusy    atomic.Int64
	ingestStall   atomic.Int64
	dispatchStall atomic.Int64
	workerBusy    atomic.Int64
	emitBusy      atomic.Int64
	emitStall     atomic.Int64
}

func (s *pipelineStats) stageMetrics() StageMetrics {
	return StageMetrics{
		Batches:       s.batches.Load(),
		IngestBusy:    time.Duration(s.ingestBusy.Load()),
		IngestStall:   time.Duration(s.ingestStall.Load()),
		DispatchStall: time.Duration(s.dispatchStall.Load()),
		WorkerBusy:    time.Duration(s.workerBusy.Load()),
		EmitBusy:      time.Duration(s.emitBusy.Load()),
		EmitStall:     time.Duration(s.emitStall.Load()),
	}
}

// encoderConfig captures the per-round encoding parameters shared by the
// sequential engine and every pipeline worker.
type encoderConfig struct {
	alg      checksum.Algorithm
	destSums *checksum.Set // nil: no redundancy elimination
	compress bool
	// ranges selects the coalesced page-range encoding (negotiated in the
	// hello exchange); false keeps the byte-exact per-page v1 stream.
	ranges bool
	// sent, when non-nil, receives the digest of every page as it is
	// encoded (SourceOptions.SentSums). Recording never alters the wire
	// bytes.
	sent *SumTable
}

// sourceEncoder is the per-goroutine encoding state: a reusable deflate
// encoder, a delta scratch buffer, and (in range mode) the current
// coalescing run. Encoding is pure per page and runs never span a batch,
// so any number of encoders produce identical bytes for identical input.
type sourceEncoder struct {
	alg      checksum.Algorithm
	destSums *checksum.Set
	comp     *pageCompressor
	deltaBuf []byte
	ranges   bool
	sent     *SumTable
	run      rangeRun
}

func newSourceEncoder(cfg encoderConfig) (*sourceEncoder, error) {
	e := &sourceEncoder{alg: cfg.alg, destSums: cfg.destSums, ranges: cfg.ranges,
		sent: cfg.sent}
	if cfg.compress {
		c, err := getPageCompressor()
		if err != nil {
			return nil, err
		}
		e.comp = c
	}
	return e, nil
}

// release returns the encoder's pooled resources; the encoder must not be
// used afterwards. Safe on nil.
func (e *sourceEncoder) release() {
	if e == nil {
		return
	}
	putPageCompressor(e.comp)
	e.comp = nil
}

// encodePage emits the wire frame for one page: a bare checksum when the
// destination already holds the content, else a delta against base when one
// fits, else the full (possibly deflated) payload. base is non-nil in the
// first round of a recycled migration only. sum is data's digest, computed
// by the caller (possibly ahead of time by the hash offload).
func (e *sourceEncoder) encodePage(w io.Writer, base PageProvider, page uint64, sum checksum.Sum, data []byte, m *Metrics) error {
	m.PageFrames++
	if e.destSums != nil && e.destSums.Contains(sum) {
		m.PagesSum++
		return writePageSum(w, page, sum)
	}
	if base != nil {
		sent, err := e.tryDelta(w, base, page, sum, data, m)
		if err != nil {
			return err
		}
		if sent {
			return nil
		}
	}
	m.PagesFull++
	return sendFullPage(w, page, sum, data, e.comp, m)
}

// tryDelta attempts an XBZRLE delta of data against the provider's content
// for the frame. sent reports whether a message was written.
func (e *sourceEncoder) tryDelta(w io.Writer, base PageProvider, page uint64, sum checksum.Sum, data []byte, m *Metrics) (sent bool, err error) {
	enc, err := e.deltaPayload(base, int(page), data)
	if err != nil || enc == nil {
		return false, err
	}
	if err := writePageDelta(w, page, sum, enc); err != nil {
		return false, err
	}
	m.PagesDelta++
	m.DeltaSavedBytes += int64(vm.PageSize - len(enc) - 4)
	return true, nil
}

// runSourcePipeline streams the pages of one round through the three-stage
// pipeline: a reader filling batches, one encoder goroutine per entry of
// encs, and the in-order emitter (the calling goroutine) writing to w. The
// encoders are created once per migration by the caller and reused across
// rounds: each may own a pooled deflate encoder plus delta scratch, which
// used to be rebuilt every round and dominated the engine's allocations.
//
// Error propagation: any stage error cancels the pipeline context; the
// reader stops producing, workers fail remaining queued batches without
// encoding them, and the emitter drains the ordered queue before returning
// the first error — no goroutine outlives the call. Cancellation of ctx is
// observed the same way (the caller's conn watcher unblocks a stuck write).
func runSourcePipeline(ctx context.Context, w io.Writer, v *vm.VM, pages pageSeq, encs []*sourceEncoder, base PageProvider, m *Metrics) error {
	n := pages.len()
	workers := len(encs)
	if n == 0 {
		return ctx.Err()
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var stats pipelineStats
	jobs := make(chan *pageBatch)
	// ordered bounds the number of in-flight batches: the reader cannot run
	// more than workers+2 batches ahead of the emitter.
	ordered := make(chan *pageBatch, workers+2)

	// Stage 1: sequencer. It only assigns page numbers to batches — the
	// actual guest-memory copies happen in the workers (fillBatch), so the
	// read bandwidth shards across the pool instead of bottlenecking here.
	go func() {
		defer close(jobs)
		defer close(ordered)
		for off := 0; off < n; off += batchPages {
			t0 := time.Now()
			cnt := batchPages
			if off+cnt > n {
				cnt = n - off
			}
			b := batchPool.Get().(*pageBatch)
			b.done = make(chan struct{})
			b.pages = b.pages[:cnt]
			for i := 0; i < cnt; i++ {
				b.pages[i] = pages.at(off + i)
			}
			stats.ingestBusy.Add(int64(time.Since(t0)))
			t1 := time.Now()
			select {
			case ordered <- b:
			case <-pctx.Done():
				putBatch(b)
				return
			}
			stats.ingestStall.Add(int64(time.Since(t1)))
			t2 := time.Now()
			select {
			case jobs <- b:
			case <-pctx.Done():
				// Already visible to the emitter but never reaching a
				// worker: fail it so the emitter does not wait forever.
				b.fail(pctx.Err())
				return
			}
			stats.dispatchStall.Add(int64(time.Since(t2)))
			stats.batches.Add(1)
		}
	}()

	// Stage 2: encode workers (page reads + encoding).
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(enc *sourceEncoder) {
			defer wg.Done()
			for b := range jobs {
				if err := pctx.Err(); err != nil {
					b.fail(err)
					continue
				}
				t0 := time.Now()
				fillBatch(v, b)
				err := encodeBatch(enc, base, b)
				stats.workerBusy.Add(int64(time.Since(t0)))
				if err != nil {
					b.fail(err)
					cancel()
					continue
				}
				close(b.done)
			}
		}(encs[k])
	}

	// Stage 3: in-order emitter (this goroutine).
	var firstErr error
	for b := range ordered {
		t0 := time.Now()
		<-b.done // closed by a worker, or by the reader on teardown
		stats.emitStall.Add(int64(time.Since(t0)))
		if firstErr == nil && b.err != nil {
			firstErr = b.err
			cancel()
		}
		if firstErr == nil {
			t1 := time.Now()
			if _, err := w.Write(b.buf.Bytes()); err != nil {
				firstErr = err
				cancel()
			}
			stats.emitBusy.Add(int64(time.Since(t1)))
			m.addPageCounters(b.m)
		}
		putBatch(b)
	}
	wg.Wait()
	m.Stages.add(stats.stageMetrics())
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// fillBatch copies the batch's pages out of the guest, coalescing
// contiguous page numbers into single ReadRange calls (one lock
// acquisition and one copy per contiguous span instead of per page).
func fillBatch(v *vm.VM, b *pageBatch) {
	cnt := len(b.pages)
	b.data = b.data[:cnt*vm.PageSize]
	for i := 0; i < cnt; {
		j := i + 1
		for j < cnt && b.pages[j] == b.pages[j-1]+1 {
			j++
		}
		v.ReadRange(b.pages[i], j-i, b.data[i*vm.PageSize:j*vm.PageSize])
		i = j
	}
}

// batchSumWorkers caps the sequential engine's hash-offload pool. The
// offload exists to overlap digesting with the single-goroutine encode loop,
// not to saturate the machine; past a few workers the batch is too small to
// split further.
const batchSumWorkers = 4

// offloadBatchSums precomputes the batch's page digests on a small goroutine
// pool, so the sequential (Workers <= 0) engine's encode loop reads them
// from b.sums instead of hashing inline — the hash stage was its single-core
// wall. The digests are exactly the ones encodeBatch would compute, so the
// wire stream is unchanged. Skipped on a single-CPU process or a small tail
// batch, where the spawn overhead would exceed the win; b.sums stays empty
// and pageSum falls back to hashing inline.
func offloadBatchSums(alg checksum.Algorithm, b *pageBatch) {
	cnt := len(b.pages)
	workers := runtime.GOMAXPROCS(0)
	if workers > batchSumWorkers {
		workers = batchSumWorkers
	}
	if workers < 2 || cnt < minPagesPerSumWorker {
		return
	}
	b.sums = b.sums[:cnt]
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := k; i < cnt; i += workers {
				b.sums[i] = alg.Page(b.data[i*vm.PageSize : (i+1)*vm.PageSize])
			}
		}(k)
	}
	wg.Wait()
}

// encodeBatch serializes every page of the batch into its buffer — in
// coalesced range frames when negotiated, per-page v1 frames otherwise.
func encodeBatch(enc *sourceEncoder, base PageProvider, b *pageBatch) error {
	if enc.ranges {
		return encodeBatchRanges(enc, base, b)
	}
	for i, p := range b.pages {
		data := b.data[i*vm.PageSize : (i+1)*vm.PageSize]
		sum := b.pageSum(enc.alg, i, data)
		enc.sent.record(p, sum)
		if err := enc.encodePage(&b.buf, base, uint64(p), sum, data, &b.m); err != nil {
			return err
		}
	}
	return nil
}

// minPagesPerSumWorker keeps the whole-memory checksum fan-out from
// spawning workers for toy guests.
const minPagesPerSumWorker = 256

// collectSums adds the checksum of every page of v to set, fanning the hash
// work across cores for large guests. Formerly the destination's
// TrackIncoming final pass (§3.2); the live path now recycles install-time
// digests via SumTable.finishTrack, and this full-image scan remains as the
// independent reference the equivalence tests pin the table against.
func collectSums(v *vm.VM, alg checksum.Algorithm, set *checksum.Set) {
	n := v.NumPages()
	workers := runtime.GOMAXPROCS(0)
	if workers > n/minPagesPerSumWorker {
		workers = n / minPagesPerSumWorker
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			set.Add(v.PageSum(i, alg))
		}
		return
	}
	sums := make([]checksum.Sum, n)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := k; i < n; i += workers {
				sums[i] = v.PageSum(i, alg)
			}
		}(k)
	}
	wg.Wait()
	for _, s := range sums {
		set.Add(s)
	}
}
