package core

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

func postcopy(t *testing.T, src, dst *vm.VM, sopts PostCopySourceOptions, dopts PostCopyDestOptions) (PostCopyMetrics, PostCopyDestResult) {
	t.Helper()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	var (
		wg   sync.WaitGroup
		sm   PostCopyMetrics
		serr error
		dres PostCopyDestResult
		derr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		sm, serr = PostCopySource(context.Background(), a, src, sopts)
	}()
	go func() {
		defer wg.Done()
		dres, derr = PostCopyDest(context.Background(), b, dst, dopts)
	}()
	wg.Wait()
	if serr != nil {
		t.Fatalf("source: %v", serr)
	}
	if derr != nil {
		t.Fatalf("destination: %v", derr)
	}
	return sm, dres
}

func TestPostCopyNoCheckpoint(t *testing.T) {
	src := newVM(t, "vm0", 32, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 32, 2)
	var missingAtResume int
	sm, dres := postcopy(t, src, dst,
		PostCopySourceOptions{},
		PostCopyDestOptions{OnResume: func(n int) { missingAtResume = n }})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if missingAtResume != 32 {
		t.Errorf("missing at resume = %d, want all 32 (no checkpoint)", missingAtResume)
	}
	if sm.PagesRequested != 32 || dres.Metrics.PagesRequested != 32 {
		t.Errorf("requested = %d/%d, want 32", sm.PagesRequested, dres.Metrics.PagesRequested)
	}
	if dres.UsedCheckpoint {
		t.Error("phantom checkpoint")
	}
}

func TestPostCopyWithCheckpoint(t *testing.T) {
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	src.TouchRandomPages(6)

	dst := newVM(t, "vm0", 64, 2)
	var missingAtResume int
	sm, dres := postcopy(t, src, dst,
		PostCopySourceOptions{},
		PostCopyDestOptions{Store: store, OnResume: func(n int) { missingAtResume = n }})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if !dres.UsedCheckpoint {
		t.Fatal("checkpoint unused")
	}
	// At most 6 pages changed (touches can repeat a page).
	if missingAtResume > 6 || missingAtResume == 0 {
		t.Errorf("missing at resume = %d, want 1..6", missingAtResume)
	}
	if sm.PagesRequested != missingAtResume {
		t.Errorf("requested %d, missing %d", sm.PagesRequested, missingAtResume)
	}
	if dres.Metrics.PagesReusedInPlace < 58 {
		t.Errorf("reused in place = %d, want >= 58", dres.Metrics.PagesReusedInPlace)
	}
	// Wire traffic: manifest (64×16 B) plus ~6 pages, far below 256 KiB.
	if sm.BytesSent > 64*1024 {
		t.Errorf("BytesSent = %d, want far below memory size", sm.BytesSent)
	}
}

func TestPostCopyMovedContentFromDisk(t *testing.T) {
	// Swapped frames: nothing needs the network, the checkpoint index
	// resolves both frames from disk.
	src := newVM(t, "vm0", 8, 1)
	if err := src.FillRandom(1); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	a := make([]byte, vm.PageSize)
	b := make([]byte, vm.PageSize)
	src.ReadPage(0, a)
	src.ReadPage(1, b)
	src.WritePage(0, b)
	src.WritePage(1, a)

	dst := newVM(t, "vm0", 8, 2)
	sm, dres := postcopy(t, src, dst,
		PostCopySourceOptions{},
		PostCopyDestOptions{Store: store})
	if !src.MemEqual(dst) {
		t.Fatal("memory differs")
	}
	if sm.PagesRequested != 0 {
		t.Errorf("requested %d pages over the network, want 0", sm.PagesRequested)
	}
	if dres.Metrics.PagesReusedFromDisk != 2 {
		t.Errorf("reused from disk = %d, want 2", dres.Metrics.PagesReusedFromDisk)
	}
}

func TestPostCopyResumeBeforeCompletion(t *testing.T) {
	// The resume callback must fire before the fetch phase finishes:
	// ResumeDelay strictly below total duration when pages are missing.
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 64, 2)
	resumed := false
	_, dres := postcopy(t, src, dst,
		PostCopySourceOptions{},
		PostCopyDestOptions{OnResume: func(n int) {
			resumed = true
			if n == 0 {
				t.Error("no pages missing without a checkpoint?")
			}
		}})
	if !resumed {
		t.Fatal("OnResume never fired")
	}
	if dres.Metrics.ResumeDelay >= dres.Metrics.Duration {
		t.Errorf("ResumeDelay %v not below total %v", dres.Metrics.ResumeDelay, dres.Metrics.Duration)
	}
}

func TestPostCopyRejectsWeakAlgorithm(t *testing.T) {
	src := newVM(t, "vm0", 4, 1)
	a, _ := net.Pipe()
	defer a.Close()
	if _, err := PostCopySource(context.Background(), a, src, PostCopySourceOptions{Alg: checksum.FNV}); err == nil {
		t.Error("FNV accepted")
	}
}

func TestPostCopyRejectsMismatchedVM(t *testing.T) {
	src := newVM(t, "vm0", 8, 1)
	dst := newVM(t, "other", 8, 2)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	var serr, derr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, serr = PostCopySource(context.Background(), a, src, PostCopySourceOptions{})
	}()
	go func() { defer wg.Done(); _, derr = PostCopyDest(context.Background(), b, dst, PostCopyDestOptions{}) }()
	wg.Wait()
	if !errors.Is(serr, ErrRejected) || !errors.Is(derr, ErrRejected) {
		t.Errorf("source=%v dest=%v, want ErrRejected on both", serr, derr)
	}
}

// TestPostCopyVsPreCopyResumeLatency pins the post-copy value proposition:
// with a fresh checkpoint, the destination resumes after the manifest
// exchange — far less data than pre-copy needs before its hand-over.
func TestPostCopyVsPreCopyResumeLatency(t *testing.T) {
	src := newVM(t, "vm0", 256, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	src.TouchRandomPages(8)

	dst := newVM(t, "vm0", 256, 2)
	sm, _ := postcopy(t, src, dst,
		PostCopySourceOptions{},
		PostCopyDestOptions{Store: store})
	if !src.MemEqual(dst) {
		t.Fatal("memory differs")
	}
	// The manifest is 256×16 B = 4 KiB; even with requests the total wire
	// volume must be below a tenth of the 1 MiB memory.
	if sm.BytesSent > int64(src.MemBytes()/10) {
		t.Errorf("post-copy with checkpoint sent %d bytes", sm.BytesSent)
	}
}
