package core

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"vecycle/internal/checkpoint"
	"vecycle/internal/checksum"
	"vecycle/internal/delta"
	"vecycle/internal/faultfs"
	"vecycle/internal/vm"
)

// DestOptions configures an incoming migration.
type DestOptions struct {
	// Store is consulted for a checkpoint of the incoming VM. May be nil
	// (pure baseline destination).
	Store *checkpoint.Store
	// TrackIncoming records the checksums of all pages observed during the
	// migration, enabling the ping-pong optimization on a later outgoing
	// migration of the same VM back to this peer (§3.2).
	TrackIncoming bool
	// VerifyPayloads re-computes the checksum of every full page received
	// and rejects mismatches. Costs one hash per page; useful under
	// unreliable transports and in tests.
	VerifyPayloads bool
	// Workers sizes the destination pipeline: frame decoding runs on one
	// goroutine while Workers goroutines decompress, verify, resolve
	// checkpoint blocks, apply deltas, and install pages. Installs within a
	// round are disjoint frames and proceed unordered; round boundaries are
	// barriers. Values below 1 keep the single-goroutine merge loop.
	Workers int
	// NoCompactAnnounce keeps the v1 announcement encoding even when the
	// source advertised the compact-announce capability. For interop testing
	// and as an escape hatch.
	NoCompactAnnounce bool
	// NoRangeFrames refuses the page-range-frame capability even when the
	// source offered it, keeping the per-page v1 page encoding. For interop
	// testing and as an escape hatch.
	NoRangeFrames bool
	// NoSalvage disables salvage checkpoints: a failed incoming migration
	// discards the pages it had installed instead of persisting them as a
	// partial store entry for the next attempt to resume from.
	NoSalvage bool
	// OnEvent, when non-nil, observes each protocol turn (hello, the
	// announcement, round ends, done) for tracing. Emission never alters
	// the wire stream.
	OnEvent EventFunc
}

// workers resolves the effective pipeline width (0 = sequential merge).
func (o *DestOptions) workers() int {
	if o.Workers < 1 {
		return 0
	}
	return o.Workers
}

// DestResult reports the outcome of an incoming migration.
type DestResult struct {
	Metrics Metrics
	// SeenSums is the checksum set of the VM's final arrived state (only
	// when DestOptions.TrackIncoming was set) — by construction the set of
	// blocks the peer's post-migration checkpoint holds, usable as
	// SourceOptions.KnownDestSums on a later return migration.
	SeenSums *checksum.Set
	// UsedCheckpoint reports whether a local checkpoint bootstrapped RAM.
	UsedCheckpoint bool
	// ResumedFromPartial reports that the bootstrap checkpoint was a
	// salvage image left by an interrupted earlier attempt — this
	// migration resumed instead of restarting from zero.
	ResumedFromPartial bool
	// SalvagePages is the number of newly installed pages persisted as a
	// salvage checkpoint after a failed merge; zero when no salvage was
	// written.
	SalvagePages int64
	// UnionBootstrap reports that no servable checkpoint of the arriving VM
	// existed, so the announcement was assembled from the union of all
	// resident store content instead (other VMs' checkpoints, older
	// generations, salvage partials — the content-addressed pool). Implies
	// UsedCheckpoint. The union serves blocks by content but installs
	// nothing into RAM, so ResumedFromPartial stays false.
	UnionBootstrap bool
	// PageSums is the per-page digest table the merge recorded (only when
	// DestOptions.TrackIncoming was set). After a successful migration it
	// covers every page of the arrived state, so the post-migration
	// checkpoint can be ingested via Store.SaveWithSums without a sidecar
	// rehash; after a failure it is partial and Sums reports false.
	PageSums *SumTable
}

// IncomingSession is a half-open incoming migration: the hello has been
// read, so the receiving host knows which VM is arriving and how big it is,
// but nothing has been acknowledged yet. Hosts use this to create or locate
// the destination VM before completing the migration with Run.
type IncomingSession struct {
	h    hello
	conn io.ReadWriter
	w    *bufio.Writer
	r    *bufio.Reader
	cw   *countingWriter
	cr   *countingReader
	// rangeOK records the negotiated page-range-frame capability (set in
	// Run): a range frame from a peer that never negotiated it is a
	// protocol violation.
	rangeOK bool
}

// Accept reads the source's hello from conn and returns the session.
// Cancelling ctx aborts the blocked hello read when conn supports deadlines
// or Abort.
func Accept(ctx context.Context, conn io.ReadWriter) (s *IncomingSession, err error) {
	ctx = orBackground(ctx)
	stop := watchContext(ctx, conn)
	defer stop()
	defer func() {
		if err != nil && ctx.Err() != nil {
			err = ctx.Err()
		}
	}()
	s = &IncomingSession{
		conn: conn,
		cw:   &countingWriter{w: conn},
		cr:   &countingReader{r: conn},
	}
	// Data direction (frames in) gets a pooled batch-sized buffer; the
	// control direction (acks out) a pooled 64 KiB one. Run and RunPostCopy
	// return them via release().
	s.w = getCtlWriter(s.cw)
	s.r = getDataReader(s.cr)

	t, err := readMsgType(s.r)
	if err != nil {
		return nil, err
	}
	if t != msgHello {
		return nil, fmt.Errorf("%w: expected hello, got %v", ErrProtocol, t)
	}
	s.h, err = readHello(s.r)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// VMName reports the incoming VM's name.
func (s *IncomingSession) VMName() string { return s.h.VMName }

// MemBytes reports the incoming VM's memory size.
func (s *IncomingSession) MemBytes() int64 {
	return int64(s.h.PageCount) * int64(s.h.PageSize)
}

// Reject refuses the migration with the given reason.
func (s *IncomingSession) Reject(reason string) error {
	if err := writeHelloAck(s.w, helloAck{OK: false, Reason: reason}); err != nil {
		return err
	}
	return flush(s.w)
}

// release returns the session's pooled wire buffers. The session must not
// perform I/O afterwards; safe to call more than once.
func (s *IncomingSession) release() {
	if s.w != nil {
		putCtlWriter(s.w)
		s.w = nil
	}
	if s.r != nil {
		putDataReader(s.r)
		s.r = nil
	}
}

// MigrateDest drives the destination side of a live migration into v over
// conn. The VM must be created (all-zero memory) and sized before the call;
// its name and page count are validated against the source's hello.
//
// Checkpoint loading happens between hello and hello-ack. The paper
// excludes this setup from the reported migration time — Metrics.Duration
// here starts after the checkpoint is loaded, matching that accounting.
func MigrateDest(ctx context.Context, conn io.ReadWriter, v *vm.VM, opts DestOptions) (DestResult, error) {
	s, err := Accept(ctx, conn)
	if err != nil {
		return DestResult{}, err
	}
	return s.Run(ctx, v, opts)
}

// Run completes an accepted incoming migration into v. Cancelling ctx
// aborts the merge at the next message boundary (or mid-read when the
// session's connection supports deadlines or Abort).
func (s *IncomingSession) Run(ctx context.Context, v *vm.VM, opts DestOptions) (res DestResult, err error) {
	ctx = orBackground(ctx)
	stop := watchContext(ctx, s.conn)
	defer stop()
	defer func() {
		if err != nil && ctx.Err() != nil {
			err = ctx.Err()
		}
	}()
	h := s.h
	w := s.w
	defer s.release()
	defer func() {
		res.Metrics.BytesSent = s.cw.n
		res.Metrics.BytesReceived = s.cr.n
	}()

	if reason := validateHello(h, v); reason != "" {
		_ = writeHelloAck(w, helloAck{OK: false, Reason: reason})
		_ = flush(w)
		return res, fmt.Errorf("%w: %s", ErrRejected, reason)
	}

	// Bootstrap from the local checkpoint if the source wants recycling and
	// we have one. A salvage (partial) image left by an interrupted earlier
	// attempt is served only when the announcement will actually describe
	// it: under skip-announce the source replays the checksum set it
	// learned from the last *complete* checkpoint, which a partial image
	// need not hold, so the bootstrap is skipped rather than risk
	// unresolvable page-sum references.
	var cp *checkpoint.Checkpoint
	partial := false
	union := false
	if h.Recycle && opts.Store != nil {
		if info, ok := opts.Store.Entry(h.VMName); ok && info.State != checkpoint.EntryQuarantined &&
			!(info.State == checkpoint.EntryPartial && h.SkipAnnounce) {
			rcp, rerr := opts.Store.Restore(h.VMName, h.Alg, v)
			if rerr != nil {
				// A corrupt or unreadable checkpoint must not fail the
				// migration; degrade to a full first round. A storage-borne
				// failure (unreadable or torn bytes) will recur on every
				// later bootstrap, so quarantine the entry — the next
				// arrival goes straight to the union/full path and the
				// operator sees it in the scrub report.
				fault := faultfs.Label(rerr)
				opts.OnEvent.emit(Event{Kind: EventDegraded,
					Detail: StageBootstrap + ":" + fault})
				if fault == "eio" || fault == "torn" {
					_ = opts.Store.Quarantine(h.VMName, "bootstrap read failed: "+rerr.Error())
				}
			} else {
				cp = rcp
				partial = info.State == checkpoint.EntryPartial
			}
		}
		if cp == nil && !h.SkipAnnounce {
			// Fresh VM on a warm host: no servable checkpoint of its own, but
			// the content-addressed pool may hold its pages anyway — other
			// VMs' checkpoints, older generations, salvage partials.
			// Announce the union of everything resident. The
			// partial-checkpoint ack bit keeps the source off delta encoding
			// (nothing was installed into v, so there is no delta base) —
			// exactly the salvage-bootstrap rule. Best-effort: a union that
			// fails to open degrades to a plain full first round.
			if ucp, members, uerr := opts.Store.OpenUnion(h.Alg); uerr == nil && ucp != nil {
				cp = ucp
				union = true
				partial = true
				res.UnionBootstrap = true
				opts.OnEvent.emit(Event{Kind: EventUnion,
					Pages:  int64(ucp.SumSet().Len()),
					Detail: fmt.Sprintf("entries=%d", len(members))})
			} else if uerr != nil {
				opts.OnEvent.emit(Event{Kind: EventDegraded,
					Detail: StageUnionRead + ":" + faultfs.Label(uerr)})
			}
		}
	}
	if cp != nil {
		defer cp.Close()
		res.UsedCheckpoint = true
		res.ResumedFromPartial = partial && !union
		opts.OnEvent.emit(Event{Kind: EventSidecar, Detail: cp.Sidecar().String()})
		if res.ResumedFromPartial {
			opts.OnEvent.emit(Event{Kind: EventSalvage, Detail: "resumed",
				Pages: int64(cp.Pages())})
		}
	}

	var tbl *SumTable
	if opts.TrackIncoming {
		res.SeenSums = checksum.NewSet(v.NumPages())
		tbl = NewSumTable()
		tbl.reset(h.Alg, v.NumPages())
		res.PageSums = tbl
	}

	start := time.Now()
	// The capability holds only when both ends opted in: the source's hello
	// bit and our own configuration. The ack echoes the decision so the
	// source knows which announcement encoding to expect.
	useV2 := h.CompactAnnounce && !opts.NoCompactAnnounce
	s.rangeOK = h.RangeFrames && !opts.NoRangeFrames
	if err := writeHelloAck(w, helloAck{OK: true, HaveCheckpoint: cp != nil,
		CompactAnnounce: useV2, PartialCheckpoint: partial,
		RangeFrames: s.rangeOK}); err != nil {
		return res, err
	}
	opts.OnEvent.emit(Event{Kind: EventHello, Pages: int64(h.PageCount),
		Detail: fmt.Sprintf("have_checkpoint=%v", cp != nil)})
	if cp != nil && !h.SkipAnnounce {
		set := cp.SumSet()
		before := s.cw.n + int64(w.Buffered())
		if useV2 {
			err = writeHashAnnounceV2(w, set)
		} else {
			err = writeHashAnnounce(w, set)
		}
		if err != nil {
			return res, err
		}
		res.Metrics.AnnounceBytes = s.cw.n + int64(w.Buffered()) - before
		res.Metrics.AnnounceRawBytes = int64(checksum.EncodedSize(set.Len()))
		opts.OnEvent.emit(Event{Kind: EventAnnounce, Bytes: res.Metrics.AnnounceBytes,
			Pages: int64(set.Len())})
	}
	if err := flush(w); err != nil {
		return res, err
	}

	if workers := opts.workers(); workers >= 1 {
		err = s.mergePipelined(ctx, v, opts, cp, tbl, &res, start, workers)
	} else {
		err = s.mergeSequential(ctx, v, opts, cp, tbl, &res, start)
	}
	if err != nil {
		// A recycled-page read failure means this entry's bytes lie: the
		// index promised content the disk would not yield. Quarantine it so
		// the retry's announcement comes from the union or nothing and the
		// affected pages flow over the wire instead. Union bootstraps skip
		// the quarantine — the failing block is not attributable to any one
		// entry.
		var me *MigrationError
		if errors.As(err, &me) && me.Stage == StageRecycleRead {
			opts.OnEvent.emit(Event{Kind: EventDegraded,
				Detail: StageRecycleRead + ":" + me.Fault})
			if !union {
				_ = opts.Store.Quarantine(h.VMName, "recycled-page read failed: "+me.Err.Error())
			}
		}
		// Both merge engines have fully drained their workers by the time
		// they return, so v's RAM is stable: persist the progress as a
		// salvage checkpoint for the next attempt to resume from.
		s.salvage(v, opts, &res)
	}
	return res, err
}

// salvage persists the pages a failed merge had already installed as a
// partial store entry, so the next attempt's hash announcement makes the
// source resend only what is still missing. Best-effort: the migration's
// error stands whether or not the salvage write succeeds. Nothing is
// written when no new page content arrived (checksum-only progress lives
// in the previous checkpoint already, which salvaging would demote).
func (s *IncomingSession) salvage(v *vm.VM, opts DestOptions, res *DestResult) {
	installed := int64(res.Metrics.PagesFull + res.Metrics.PagesDelta)
	if opts.NoSalvage || opts.Store == nil || !s.h.Recycle || installed == 0 {
		return
	}
	if err := opts.Store.SaveSalvage(v); err != nil {
		opts.OnEvent.emit(Event{Kind: EventSalvage, Detail: "write-failed"})
		opts.OnEvent.emit(Event{Kind: EventDegraded,
			Detail: StageSalvage + ":" + faultfs.Label(err)})
		return
	}
	res.SalvagePages = installed
	opts.OnEvent.emit(Event{Kind: EventSalvage, Detail: "written",
		Pages: installed, Bytes: v.MemBytes()})
}

// mergeSequential is the single-goroutine merge loop — Listing 1, extended
// with full-page installs and round bookkeeping. It is the reference the
// pipelined variant is tested against.
func (s *IncomingSession) mergeSequential(ctx context.Context, v *vm.VM, opts DestOptions, cp *checkpoint.Checkpoint, tbl *SumTable, res *DestResult, start time.Time) error {
	h := s.h
	w, r := s.w, s.r
	pageBuf := make([]byte, vm.PageSize)
	var deltaBuf []byte
	st := getDestScratch()
	defer putDestScratch(st)
	var rng rangeFrame
	// rangeFloor is where the next range frame may start: the source emits
	// each round's pages in ascending order, so a range below the previous
	// range's end is overlapping or descending — malformed. Reset each
	// round (later rounds legitimately revisit pages).
	var rangeFloor uint64
	roundStart := s.cr.n
	frameStart := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		t, err := readMsgType(r)
		if err != nil {
			return err
		}
		switch t {
		case msgRangeSum, msgRangeFull, msgRangeFullZ, msgRangeDelta:
			if !s.rangeOK {
				return fmt.Errorf("%w: %v received without range-frame negotiation", ErrProtocol, t)
			}
			if cp == nil && (t == msgRangeSum || t == msgRangeDelta) {
				return fmt.Errorf("%w: %v received without a checkpoint", ErrProtocol, t)
			}
			if err := readRangeFrame(r, t, v.NumPages(), rangeFloor, &rng); err != nil {
				return err
			}
			rangeFloor = rng.start + uint64(rng.count)
			if err := applyRange(v, cp, h.Alg, opts.VerifyPayloads, &rng, st, tbl, &res.Metrics); err != nil {
				return err
			}
			res.Metrics.PageFrames++
			res.Metrics.RangeFrames++

		case msgPageFull, msgPageFullZ:
			page, sum, err := readPageHeader(r)
			if err != nil {
				return err
			}
			if page >= uint64(v.NumPages()) {
				return fmt.Errorf("%w: page %d out of range", ErrProtocol, page)
			}
			res.Metrics.PageFrames++
			if t == msgPageFullZ {
				if st.decomp == nil {
					st.decomp = newPageDecompressor()
				}
				if err := st.decomp.readInto(r, pageBuf); err != nil {
					return err
				}
				res.Metrics.PagesCompressed++
			} else if _, err := io.ReadFull(r, pageBuf); err != nil {
				return fmt.Errorf("core: read page %d payload: %w", page, err)
			}
			if opts.VerifyPayloads {
				if got := h.Alg.Page(pageBuf); got != sum {
					return fmt.Errorf("%w: page %d payload checksum mismatch", ErrProtocol, page)
				}
			}
			v.InstallPage(int(page), pageBuf)
			// The header sum describes the installed bytes — verified above
			// when VerifyPayloads is set, trusted at the protocol's own level
			// otherwise (the same trust a recycled page-sum frame gets).
			tbl.record(int(page), sum)
			res.Metrics.PagesFull++

		case msgPageSum:
			page, sum, err := readPageHeader(r)
			if err != nil {
				return err
			}
			if page >= uint64(v.NumPages()) {
				return fmt.Errorf("%w: page %d out of range", ErrProtocol, page)
			}
			if cp == nil {
				return fmt.Errorf("%w: page-sum received without a checkpoint", ErrProtocol)
			}
			res.Metrics.PageFrames++
			res.Metrics.PagesSum++
			// Either way the page ends up holding content with this digest.
			tbl.record(int(page), sum)
			// Fast path: the frame content inherited from the checkpoint
			// bootstrap already matches.
			if v.PageSum(int(page), h.Alg) == sum {
				res.Metrics.PagesReusedInPlace++
				continue
			}
			// Slow path: look the checksum up in the checkpoint index and
			// re-read the block from disk (lseek+read of Listing 1).
			data, ok, err := cp.ReadBlock(sum)
			if err != nil {
				return recycleReadErr(err)
			}
			if !ok {
				return fmt.Errorf("%w: source referenced checksum %v absent from checkpoint", ErrProtocol, sum)
			}
			v.InstallPage(int(page), data)
			cp.Release(data)
			res.Metrics.PagesReusedFromDisk++

		case msgPageDelta:
			page, sum, err := readPageHeader(r)
			if err != nil {
				return err
			}
			if page >= uint64(v.NumPages()) {
				return fmt.Errorf("%w: page %d out of range", ErrProtocol, page)
			}
			if cp == nil {
				return fmt.Errorf("%w: page-delta received without a checkpoint", ErrProtocol)
			}
			res.Metrics.PageFrames++
			var lenBuf [4]byte
			if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
				return fmt.Errorf("core: read delta length: %w", err)
			}
			n := binary.LittleEndian.Uint32(lenBuf[:])
			if n == 0 || n > vm.PageSize {
				return fmt.Errorf("%w: delta length %d out of range", ErrProtocol, n)
			}
			if cap(deltaBuf) < int(n) {
				deltaBuf = make([]byte, n)
			}
			enc := deltaBuf[:n]
			if _, err := io.ReadFull(r, enc); err != nil {
				return fmt.Errorf("core: read delta payload: %w", err)
			}
			// The frame still holds bootstrap (checkpoint) content in round
			// one; apply the delta against it.
			v.ReadPage(int(page), pageBuf)
			if err := delta.Decode(pageBuf, enc, pageBuf); err != nil {
				return fmt.Errorf("%w: %v", ErrProtocol, err)
			}
			// Deltas are always verified: a base mismatch (stale mirror at
			// the source) silently corrupts otherwise.
			if got := h.Alg.Page(pageBuf); got != sum {
				return fmt.Errorf("%w: page %d delta produced checksum mismatch (stale delta base?)", ErrProtocol, page)
			}
			v.InstallPage(int(page), pageBuf)
			tbl.record(int(page), sum)
			res.Metrics.PagesDelta++

		case msgRoundEnd:
			round, dirty, err := readRoundEnd(r)
			if err != nil {
				return err
			}
			res.Metrics.Rounds++
			opts.OnEvent.emit(Event{Kind: EventRound, Round: int(round),
				Pages: int64(dirty), Bytes: s.cr.n - roundStart,
				Frames: int64(res.Metrics.PageFrames - frameStart)})
			roundStart = s.cr.n
			frameStart = res.Metrics.PageFrames
			rangeFloor = 0

		case msgDone:
			if err := writeMsgType(w, msgAck); err != nil {
				return err
			}
			if err := flush(w); err != nil {
				return err
			}
			res.Metrics.Duration = time.Since(start)
			opts.OnEvent.emit(Event{Kind: EventDone, Bytes: s.cr.n})
			// Record the checksum set of the *final* arrived state. This is
			// exactly "the set of pages existing at the source" (§3.2): the
			// source checkpoints its paused final state, which is what this
			// VM now holds — the sound basis for a later ping-pong return
			// leg. The sum table already carries each page's last installed
			// digest (stale intermediate contents were overwritten in the
			// table just as in RAM), so finishTrack folds it into the set
			// and hashes only pages no frame ever covered.
			if opts.TrackIncoming {
				res.Metrics.HashBytes, res.Metrics.HashAvoidedBytes = tbl.finishTrack(v, res.SeenSums)
			}
			return nil

		default:
			return fmt.Errorf("%w: unexpected %v during merge", ErrProtocol, t)
		}
	}
}

// validateHello returns a rejection reason, or "" to accept.
func validateHello(h hello, v *vm.VM) string {
	switch {
	case h.Version != ProtocolVersion:
		return fmt.Sprintf("protocol version %d unsupported (want %d)", h.Version, ProtocolVersion)
	case h.VMName != v.Name():
		return fmt.Sprintf("VM name %q does not match prepared VM %q", h.VMName, v.Name())
	case h.PageSize != vm.PageSize:
		return fmt.Sprintf("page size %d unsupported (want %d)", h.PageSize, vm.PageSize)
	case h.PageCount != uint64(v.NumPages()):
		return fmt.Sprintf("page count %d does not match prepared VM (%d)", h.PageCount, v.NumPages())
	// Weak (non-collision-resistant) algorithms are acceptable for baseline
	// migrations, where checksums only tag payload integrity; recycling
	// declares cross-host identity from them and demands a strong one.
	case !h.Alg.Valid() || (h.Recycle && !h.Alg.Strong()):
		return fmt.Sprintf("checksum algorithm %v unacceptable", h.Alg)
	default:
		return ""
	}
}
