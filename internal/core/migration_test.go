package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"vecycle/internal/checkpoint"
	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

func newVM(t *testing.T, name string, pages int, seed int64) *vm.VM {
	t.Helper()
	v, err := vm.New(vm.Config{Name: name, MemBytes: int64(pages) * vm.PageSize, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func newStore(t *testing.T) *checkpoint.Store {
	t.Helper()
	s, err := checkpoint.NewStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// migrate runs a full migration between src and dst over an in-memory pipe.
func migrate(t *testing.T, src, dst *vm.VM, sopts SourceOptions, dopts DestOptions) (Metrics, DestResult) {
	t.Helper()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	var (
		wg   sync.WaitGroup
		sm   Metrics
		serr error
		dres DestResult
		derr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		sm, serr = MigrateSource(context.Background(), a, src, sopts)
	}()
	go func() {
		defer wg.Done()
		dres, derr = MigrateDest(context.Background(), b, dst, dopts)
	}()
	wg.Wait()
	if serr != nil {
		t.Fatalf("source: %v", serr)
	}
	if derr != nil {
		t.Fatalf("destination: %v", derr)
	}
	return sm, dres
}

func TestBaselineMigration(t *testing.T) {
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 64, 2)
	sm, dres := migrate(t, src, dst, SourceOptions{}, DestOptions{VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if sm.PagesSum != 0 {
		t.Errorf("baseline sent %d checksum-only pages", sm.PagesSum)
	}
	if sm.PagesFull < 64 {
		t.Errorf("baseline sent %d full pages, want >= 64", sm.PagesFull)
	}
	if dres.UsedCheckpoint {
		t.Error("baseline used a checkpoint")
	}
	if sm.BytesSent < 64*vm.PageSize {
		t.Errorf("BytesSent = %d, below raw memory size", sm.BytesSent)
	}
}

func TestVeCycleIdleVMBestCase(t *testing.T) {
	// §4.4: an idle VM migrated back to a host holding a fresh checkpoint —
	// maximum similarity, traffic collapses to checksums.
	src := newVM(t, "vm0", 128, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 128, 2)
	sm, dres := migrate(t, src, dst,
		SourceOptions{Recycle: true},
		DestOptions{Store: store, VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if !dres.UsedCheckpoint {
		t.Fatal("checkpoint not used")
	}
	if sm.PagesFull != 0 {
		t.Errorf("idle VM sent %d full pages, want 0", sm.PagesFull)
	}
	if sm.PagesSum != 128 {
		t.Errorf("PagesSum = %d, want 128", sm.PagesSum)
	}
	// Traffic: announcement + per-page sums, far below the 512 KiB of RAM.
	if sm.BytesSent >= 128*vm.PageSize/4 {
		t.Errorf("BytesSent = %d, want well below memory size", sm.BytesSent)
	}
	if dres.Metrics.PagesReusedInPlace != 128 {
		t.Errorf("PagesReusedInPlace = %d, want 128", dres.Metrics.PagesReusedInPlace)
	}
}

func TestVeCyclePartialUpdate(t *testing.T) {
	// Half the ramdisk updated since the checkpoint (Figure 7 semantics).
	src := newVM(t, "vm0", 100, 1)
	rd, err := src.NewRamdisk(0.9)
	if err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	if err := rd.UpdatePercent(50); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 100, 2)
	sm, dres := migrate(t, src, dst,
		SourceOptions{Recycle: true},
		DestOptions{Store: store, VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	// 45 of 90 ramdisk pages updated; those go full, the rest by checksum.
	if sm.PagesFull != 45 {
		t.Errorf("PagesFull = %d, want 45", sm.PagesFull)
	}
	if sm.PagesSum != 55 {
		t.Errorf("PagesSum = %d, want 55", sm.PagesSum)
	}
	if dres.Metrics.PagesReusedInPlace != 55 {
		t.Errorf("PagesReusedInPlace = %d, want 55", dres.Metrics.PagesReusedInPlace)
	}
}

func TestVeCycleMovedContentReadFromDisk(t *testing.T) {
	// Content moved to a different frame after the checkpoint: the resident
	// frame mismatches, but the content exists in the checkpoint — the
	// lseek+read slow path of Listing 1.
	src := newVM(t, "vm0", 4, 1)
	pageA := bytes.Repeat([]byte{0xAA}, vm.PageSize)
	pageB := bytes.Repeat([]byte{0xBB}, vm.PageSize)
	src.WritePage(0, pageA)
	src.WritePage(1, pageB)
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	// Swap the two pages: contents unchanged as a set, frames dirty.
	src.WritePage(0, pageB)
	src.WritePage(1, pageA)

	dst := newVM(t, "vm0", 4, 2)
	sm, dres := migrate(t, src, dst,
		SourceOptions{Recycle: true},
		DestOptions{Store: store, VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if sm.PagesFull != 0 {
		t.Errorf("PagesFull = %d, want 0 (all content in checkpoint)", sm.PagesFull)
	}
	if dres.Metrics.PagesReusedFromDisk != 2 {
		t.Errorf("PagesReusedFromDisk = %d, want 2 (swapped frames)", dres.Metrics.PagesReusedFromDisk)
	}
}

func TestRecycleWithoutCheckpointDegrades(t *testing.T) {
	src := newVM(t, "vm0", 32, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 32, 2)
	// Recycle requested, but the destination store is empty.
	sm, dres := migrate(t, src, dst,
		SourceOptions{Recycle: true},
		DestOptions{Store: newStore(t), VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatal("memory differs")
	}
	if dres.UsedCheckpoint {
		t.Error("used a checkpoint that does not exist")
	}
	if sm.PagesSum != 0 {
		t.Errorf("degraded migration sent %d checksum pages", sm.PagesSum)
	}
}

func TestPingPongSkipsAnnouncement(t *testing.T) {
	// A→B with tracking, then B→A using the tracked sums: the second leg
	// must carry no bulk announcement yet still recycle.
	vmA := newVM(t, "vm0", 64, 1)
	if err := vmA.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	storeA, storeB := newStore(t), newStore(t)

	// Leg 1: A → B (no checkpoint at B yet; B tracks what it sees).
	vmB := newVM(t, "vm0", 64, 2)
	if err := storeA.Save(vmA); err != nil { // A checkpoints on the way out
		t.Fatal(err)
	}
	_, dres1 := migrate(t, vmA, vmB,
		SourceOptions{Recycle: true},
		DestOptions{Store: storeB, TrackIncoming: true, VerifyPayloads: true})
	if !vmA.MemEqual(vmB) {
		t.Fatal("leg 1 memory differs")
	}
	if dres1.SeenSums == nil || dres1.SeenSums.Len() == 0 {
		t.Fatal("leg 1 tracked nothing")
	}

	// B runs a little, then migrates back to A. B knows A's checkpoint
	// content: it is exactly what B received (A checkpointed the same
	// state it sent).
	vmB.TouchRandomPages(5)
	vmA2 := newVM(t, "vm0", 64, 3)
	sm2, dres2 := migrate(t, vmB, vmA2,
		SourceOptions{Recycle: true, KnownDestSums: dres1.SeenSums},
		DestOptions{Store: storeA, VerifyPayloads: true})
	if !vmB.MemEqual(vmA2) {
		t.Fatalf("leg 2 memory differs at page %d", vmB.FirstDifference(vmA2))
	}
	if sm2.AnnounceBytes != 0 {
		t.Errorf("ping-pong leg carried a %d-byte announcement", sm2.AnnounceBytes)
	}
	if dres2.Metrics.AnnounceBytes != 0 {
		t.Errorf("destination sent a %d-byte announcement despite skip", dres2.Metrics.AnnounceBytes)
	}
	if sm2.PagesSum == 0 {
		t.Error("ping-pong leg recycled nothing")
	}
}

func TestLiveMigrationWithConcurrentWrites(t *testing.T) {
	src := newVM(t, "vm0", 256, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 256, 2)

	// Guest workload running during the migration; the Pause hook stops it
	// before the final round.
	stop := make(chan struct{})
	var workload sync.WaitGroup
	workload.Add(1)
	go func() {
		defer workload.Done()
		for {
			select {
			case <-stop:
				return
			default:
				src.TouchRandomPages(1)
			}
		}
	}()
	pause := func() {
		close(stop)
		workload.Wait()
	}

	sm, _ := migrate(t, src, dst,
		SourceOptions{Pause: pause, MaxRounds: 6, StopThreshold: 8},
		DestOptions{VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("live migration memory differs at page %d", src.FirstDifference(dst))
	}
	if sm.Rounds < 2 {
		t.Errorf("Rounds = %d, expected iterative rounds under active workload", sm.Rounds)
	}
}

func TestHelloRejectionWrongName(t *testing.T) {
	src := newVM(t, "alpha", 8, 1)
	dst := newVM(t, "beta", 8, 2)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	var serr, derr error
	wg.Add(2)
	go func() { defer wg.Done(); _, serr = MigrateSource(context.Background(), a, src, SourceOptions{}) }()
	go func() { defer wg.Done(); _, derr = MigrateDest(context.Background(), b, dst, DestOptions{}) }()
	wg.Wait()
	if !errors.Is(serr, ErrRejected) {
		t.Errorf("source error = %v, want ErrRejected", serr)
	}
	if !errors.Is(derr, ErrRejected) {
		t.Errorf("destination error = %v, want ErrRejected", derr)
	}
}

func TestHelloRejectionWrongSize(t *testing.T) {
	src := newVM(t, "vm0", 8, 1)
	dst := newVM(t, "vm0", 16, 2)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	var serr error
	wg.Add(2)
	go func() { defer wg.Done(); _, serr = MigrateSource(context.Background(), a, src, SourceOptions{}) }()
	go func() { defer wg.Done(); _, _ = MigrateDest(context.Background(), b, dst, DestOptions{}) }()
	wg.Wait()
	if !errors.Is(serr, ErrRejected) {
		t.Errorf("source error = %v, want ErrRejected", serr)
	}
}

func TestSourceRejectsWeakAlgorithm(t *testing.T) {
	// Weak algorithms are integrity tags only: fine for baseline
	// migrations, rejected before any I/O the moment checksum equality
	// stands in for page content (recycling or a known-sums set).
	src := newVM(t, "vm0", 8, 1)
	for _, alg := range []checksum.Algorithm{checksum.FNV, checksum.FAST64} {
		a, _ := net.Pipe()
		if _, err := MigrateSource(context.Background(), a, src, SourceOptions{Alg: alg, Recycle: true}); err == nil {
			t.Errorf("%v accepted for recycling", alg)
		}
		a.Close()
		a, _ = net.Pipe()
		if _, err := MigrateSource(context.Background(), a, src, SourceOptions{Alg: alg, KnownDestSums: checksum.NewSet(0)}); err == nil {
			t.Errorf("%v accepted for ping-pong matching", alg)
		}
		a.Close()
	}
}

func TestBaselineMigrationAcceptsWeakAlgorithm(t *testing.T) {
	src := newVM(t, "vm0", 16, 1)
	if err := src.FillRandom(0.5); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 16, 2)
	migrate(t, src, dst, SourceOptions{Alg: checksum.FAST64}, DestOptions{VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Error("memory mismatch after fast64 baseline migration")
	}
}

func TestStaleCheckpointStillCorrect(t *testing.T) {
	// The checkpoint is from a much older state: correctness must not
	// depend on similarity.
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillRandom(0.5); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	// Rewrite nearly everything.
	rd, err := src.NewRamdisk(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.UpdatePercent(100); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 64, 2)
	sm, _ := migrate(t, src, dst,
		SourceOptions{Recycle: true},
		DestOptions{Store: store, VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if sm.PagesFull == 0 {
		t.Error("stale checkpoint produced no full transfers")
	}
}

// Property: for arbitrary source contents and an arbitrary checkpoint state
// (possibly unrelated), a VeCycle migration always reproduces the source
// memory exactly.
func TestMigrationCorrectnessProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns many migrations")
	}
	f := func(seed int64, updatePct uint8, pages uint8) bool {
		n := 8 + int(pages)%56 // 8..63 pages
		rng := rand.New(rand.NewSource(seed))
		src, err := vm.New(vm.Config{Name: "p", MemBytes: int64(n) * vm.PageSize, Seed: seed})
		if err != nil {
			return false
		}
		// Random initial content with duplicates: a small alphabet of page
		// bodies.
		body := func(b byte) []byte { return bytes.Repeat([]byte{b}, vm.PageSize) }
		for i := 0; i < n; i++ {
			src.WritePage(i, body(byte(rng.Intn(8))))
		}
		dir := t.TempDir()
		store, err := checkpoint.NewStore(filepath.Join(dir, "s"))
		if err != nil {
			return false
		}
		if err := store.Save(src); err != nil {
			return false
		}
		// Mutate a random subset.
		for i := 0; i < n; i++ {
			if rng.Intn(100) < int(updatePct)%101 {
				src.WritePage(i, body(byte(rng.Intn(16))))
			}
		}
		dst, err := vm.New(vm.Config{Name: "p", MemBytes: int64(n) * vm.PageSize, Seed: seed + 1})
		if err != nil {
			return false
		}
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		var wg sync.WaitGroup
		var serr, derr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, serr = MigrateSource(context.Background(), a, src, SourceOptions{Recycle: true})
		}()
		go func() {
			defer wg.Done()
			_, derr = MigrateDest(context.Background(), b, dst, DestOptions{Store: store, VerifyPayloads: true})
		}()
		wg.Wait()
		return serr == nil && derr == nil && src.MemEqual(dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
