//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// Allocation-accounting tests skip themselves under it: instrumentation
// adds per-allocation overhead that breaks absolute byte ceilings.
const raceEnabled = true
