package core

import (
	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// SumTable accumulates the per-page digest of a migrating VM as a byproduct
// of moving it: every frame the engine installs (or encodes, on the source)
// already carries or computes the page's sum, so recording it here lets the
// round-end TrackIncoming pass and the post-migration checkpoint Save reuse
// those digests instead of re-scanning the whole image.
//
// Concurrency: within a round, install workers touch disjoint pages, so the
// per-page slots need no locking; `have` is a []bool rather than a bitmask
// precisely so two workers never share a byte. Round barriers (the pipeline's
// inflight.Wait, the source's per-round loop) provide the cross-round
// happens-before, and the single goroutine that reaches msgDone is the only
// reader.
//
// The zero table (or a nil pointer) is inert: every method is nil-safe and
// the engine sizes it per attempt via reset, so a host can allocate one with
// NewSumTable, hand it to successive retry attempts, and read it only after
// a success.
type SumTable struct {
	alg  checksum.Algorithm
	sums []checksum.Sum
	have []bool
}

// NewSumTable returns an empty table for the engine to fill. Pass it as
// DestOptions' result (see DestResult.PageSums) consumer or as
// SourceOptions.SentSums; the engine sizes and resets it per attempt.
func NewSumTable() *SumTable {
	return &SumTable{}
}

// reset prepares the table for one migration attempt over a VM of `pages`
// pages digested under alg, discarding anything an earlier attempt recorded
// (a failed attempt's partial entries must never leak into the next).
func (t *SumTable) reset(alg checksum.Algorithm, pages int) {
	if t == nil {
		return
	}
	t.alg = alg
	if cap(t.sums) < pages {
		t.sums = make([]checksum.Sum, pages)
		t.have = make([]bool, pages)
		return
	}
	t.sums = t.sums[:pages]
	t.have = t.have[:pages]
	for i := range t.have {
		t.have[i] = false
		t.sums[i] = checksum.Sum{}
	}
}

// record notes that page now holds content with the given digest. Callers
// record only digests that are true of the installed (or just-sent) bytes:
// verified installs, wire header sums, and range-probe matches.
func (t *SumTable) record(page int, sum checksum.Sum) {
	if t == nil {
		return
	}
	t.sums[page] = sum
	t.have[page] = true
}

// recordRange notes the digests of count pages starting at start —
// the range-frame install path, where the frame header carries every sum.
func (t *SumTable) recordRange(start int, sums []checksum.Sum) {
	if t == nil {
		return
	}
	copy(t.sums[start:start+len(sums)], sums)
	for i := range sums {
		t.have[start+i] = true
	}
}

// Alg reports the algorithm the recorded digests use (the migration's
// negotiated hash). Zero until the engine has reset the table.
func (t *SumTable) Alg() checksum.Algorithm {
	if t == nil {
		return 0
	}
	return t.alg
}

// Sums returns the page-ordered digest slice and true when the last attempt
// covered every page; (nil, false) otherwise — including on a nil table or
// after a failed attempt. The slice is the table's own storage: treat it as
// read-only and gone at the next reset.
func (t *SumTable) Sums() ([]checksum.Sum, bool) {
	if t == nil || len(t.sums) == 0 {
		return nil, false
	}
	for _, ok := range t.have {
		if !ok {
			return nil, false
		}
	}
	return t.sums, true
}

// finishTrack folds the table into set — the destination's round-end
// TrackIncoming pass. Pages with a recorded digest are added as-is; pages
// nothing covered are hashed now and back-filled, so the table is complete
// afterwards. On the normal path nothing is hashed: round one walks the full
// address space, so every page's digest arrived on some frame. Returns the
// payload bytes hashed here and the bytes whose digest was recycled.
func (t *SumTable) finishTrack(v *vm.VM, set *checksum.Set) (hashed, avoided int64) {
	for i := range t.sums {
		if !t.have[i] {
			t.sums[i] = v.PageSum(i, t.alg)
			t.have[i] = true
			hashed += vm.PageSize
		} else {
			avoided += vm.PageSize
		}
		set.Add(t.sums[i])
	}
	return hashed, avoided
}
