package core

import (
	"bytes"
	"testing"

	"vecycle/internal/checksum"
)

// TestWireSizeConstants cross-checks the exported size constants against
// the actual encoders, so the analytical simulator can never drift from the
// real protocol.
func TestWireSizeConstants(t *testing.T) {
	var buf bytes.Buffer
	sum := checksum.MD5.Page([]byte("x"))

	buf.Reset()
	if err := writePageFull(&buf, 7, sum, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != PageFullMsgBytes {
		t.Errorf("PageFullMsgBytes = %d, encoder wrote %d", PageFullMsgBytes, buf.Len())
	}

	buf.Reset()
	if err := writePageSum(&buf, 7, sum); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != PageSumMsgBytes {
		t.Errorf("PageSumMsgBytes = %d, encoder wrote %d", PageSumMsgBytes, buf.Len())
	}

	buf.Reset()
	if err := writeRoundEnd(&buf, 1, 42); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != RoundEndMsgBytes {
		t.Errorf("RoundEndMsgBytes = %d, encoder wrote %d", RoundEndMsgBytes, buf.Len())
	}

	buf.Reset()
	if err := writeMsgType(&buf, msgDone); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != DoneMsgBytes {
		t.Errorf("DoneMsgBytes = %d, encoder wrote %d", DoneMsgBytes, buf.Len())
	}

	buf.Reset()
	if err := writeHelloAck(&buf, helloAck{OK: true}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != HelloAckMsgBytes {
		t.Errorf("HelloAckMsgBytes = %d, encoder wrote %d", HelloAckMsgBytes, buf.Len())
	}

	buf.Reset()
	h := hello{Version: ProtocolVersion, VMName: "vm-name", PageSize: 4096, PageCount: 10, Alg: checksum.MD5}
	if err := writeHello(&buf, h); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != HelloMsgBytes(len(h.VMName)) {
		t.Errorf("HelloMsgBytes(%d) = %d, encoder wrote %d", len(h.VMName), HelloMsgBytes(len(h.VMName)), buf.Len())
	}

	buf.Reset()
	set := checksum.NewSet(3)
	set.Add(sum)
	set.Add(checksum.MD5.Page([]byte("y")))
	if err := writeHashAnnounce(&buf, set); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != AnnounceMsgBytes(set.Len()) {
		t.Errorf("AnnounceMsgBytes(%d) = %d, encoder wrote %d", set.Len(), AnnounceMsgBytes(set.Len()), buf.Len())
	}
}

func TestMsgTypeString(t *testing.T) {
	for mt, want := range map[msgType]string{
		msgHello:        "hello",
		msgHelloAck:     "hello-ack",
		msgHashAnnounce: "hash-announce",
		msgPageSum:      "page-sum",
		msgPageFull:     "page-full",
		msgRoundEnd:     "round-end",
		msgDone:         "done",
		msgAck:          "ack",
		msgType(99):     "msg(99)",
	} {
		if got := mt.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", mt, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
	}
	for _, tc := range cases {
		if got := FormatBytes(tc.n); got != tc.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := hello{
		Version:      ProtocolVersion,
		VMName:       "desk-42",
		PageSize:     4096,
		PageCount:    1 << 20,
		Alg:          checksum.SHA256,
		Recycle:      true,
		SkipAnnounce: true,
	}
	if err := writeHello(&buf, in); err != nil {
		t.Fatal(err)
	}
	tag, err := readMsgType(&buf)
	if err != nil || tag != msgHello {
		t.Fatalf("tag=%v err=%v", tag, err)
	}
	got, err := readHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Errorf("round trip: got %+v, want %+v", got, in)
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := helloAck{OK: false, Reason: "size mismatch", HaveCheckpoint: true}
	if err := writeHelloAck(&buf, in); err != nil {
		t.Fatal(err)
	}
	tag, err := readMsgType(&buf)
	if err != nil || tag != msgHelloAck {
		t.Fatalf("tag=%v err=%v", tag, err)
	}
	got, err := readHelloAck(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Errorf("round trip: got %+v, want %+v", got, in)
	}
}
