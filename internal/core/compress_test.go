package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

func TestCompressorRoundTrip(t *testing.T) {
	comp, err := newPageCompressor()
	if err != nil {
		t.Fatal(err)
	}
	decomp := newPageDecompressor()

	page := bytes.Repeat([]byte("abcd"), vm.PageSize/4)
	z, ok, err := comp.compress(page)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("highly repetitive page did not compress")
	}
	if len(z) >= vm.PageSize/4 {
		t.Errorf("compressed size %d, expected strong reduction", len(z))
	}

	var buf bytes.Buffer
	sum := checksum.MD5.Page(page)
	if err := writePageFullZ(&buf, 3, sum, z); err != nil {
		t.Fatal(err)
	}
	tag, err := readMsgType(&buf)
	if err != nil || tag != msgPageFullZ {
		t.Fatalf("tag=%v err=%v", tag, err)
	}
	pageNo, gotSum, err := readPageHeader(&buf)
	if err != nil || pageNo != 3 || gotSum != sum {
		t.Fatalf("header: page=%d sum=%v err=%v", pageNo, gotSum, err)
	}
	out := make([]byte, vm.PageSize)
	if err := decomp.readInto(&buf, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, page) {
		t.Error("decompressed page differs")
	}
}

func TestCompressorIncompressibleFallback(t *testing.T) {
	comp, err := newPageCompressor()
	if err != nil {
		t.Fatal(err)
	}
	// A page of pseudo-random bytes should not shrink under deflate.
	page := make([]byte, vm.PageSize)
	state := uint32(12345)
	for i := range page {
		state = state*1664525 + 1013904223
		page[i] = byte(state >> 24)
	}
	if _, ok, err := comp.compress(page); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("random page reported compressible")
	}
}

func TestCompressorReuse(t *testing.T) {
	// The compressor and decompressor are reused across pages; make sure
	// state resets cleanly.
	comp, err := newPageCompressor()
	if err != nil {
		t.Fatal(err)
	}
	decomp := newPageDecompressor()
	for i := 0; i < 5; i++ {
		page := bytes.Repeat([]byte{byte(i + 1)}, vm.PageSize)
		z, ok, err := comp.compress(page)
		if err != nil || !ok {
			t.Fatalf("page %d: ok=%v err=%v", i, ok, err)
		}
		var buf bytes.Buffer
		if err := writePageFullZ(&buf, uint64(i), checksum.MD5.Page(page), z); err != nil {
			t.Fatal(err)
		}
		if _, err := readMsgType(&buf); err != nil {
			t.Fatal(err)
		}
		if _, _, err := readPageHeader(&buf); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, vm.PageSize)
		if err := decomp.readInto(&buf, out); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if !bytes.Equal(out, page) {
			t.Fatalf("page %d differs after round trip", i)
		}
	}
}

func TestDecompressorRejectsBadLengths(t *testing.T) {
	decomp := newPageDecompressor()
	out := make([]byte, vm.PageSize)
	// Length 0.
	if err := decomp.readInto(bytes.NewReader([]byte{0, 0, 0, 0}), out); err == nil {
		t.Error("zero-length compressed page accepted")
	}
	// Length >= PageSize (would never have been sent compressed).
	bad := []byte{0, 0x10, 0, 0} // 4096
	if err := decomp.readInto(bytes.NewReader(bad), out); err == nil {
		t.Error("page-size compressed length accepted")
	}
}

func TestDecompressorRejectsGarbage(t *testing.T) {
	decomp := newPageDecompressor()
	out := make([]byte, vm.PageSize)
	// Valid length, invalid deflate stream.
	payload := append([]byte{8, 0, 0, 0}, []byte("notdeflate")[:8]...)
	if err := decomp.readInto(bytes.NewReader(payload), out); err == nil {
		t.Error("garbage deflate stream accepted")
	}
}

func TestMigrationWithCompression(t *testing.T) {
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillCompressible(0.9); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 64, 2)
	sm, dres := migrate(t, src, dst,
		SourceOptions{Compress: true},
		DestOptions{VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if sm.PagesCompressed == 0 {
		t.Error("no pages compressed on a compressible workload")
	}
	if sm.CompressionSavedBytes <= 0 {
		t.Error("compression saved nothing")
	}
	if dres.Metrics.PagesCompressed != sm.PagesCompressed {
		t.Errorf("dest saw %d compressed pages, source sent %d",
			dres.Metrics.PagesCompressed, sm.PagesCompressed)
	}
	// Wire traffic must be well below the raw memory footprint.
	if sm.BytesSent >= src.MemBytes()/2 {
		t.Errorf("BytesSent = %d, expected better than 2x on compressible data", sm.BytesSent)
	}
}

func TestMigrationCompressionIncompressible(t *testing.T) {
	// Random data: compression enabled, but everything falls back to raw —
	// and the migration still completes correctly.
	src := newVM(t, "vm0", 32, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 32, 2)
	sm, _ := migrate(t, src, dst,
		SourceOptions{Compress: true},
		DestOptions{VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatal("memory differs")
	}
	// The filled pages are incompressible; only the zero tail compresses.
	if sm.PagesCompressed > 2 {
		t.Errorf("%d random pages compressed", sm.PagesCompressed)
	}
}

func TestMigrationCompressionWithRecycling(t *testing.T) {
	// Compression composes with checkpoint recycling: unchanged pages go as
	// checksums, changed compressible pages go deflated.
	src := newVM(t, "vm0", 64, 1)
	if err := src.FillCompressible(0.9); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	// Overwrite a quarter of memory with new compressible content.
	buf := make([]byte, vm.PageSize)
	for i := 0; i < 16; i++ {
		for j := range buf {
			buf[j] = byte((j%8)*(i+3) + 1)
		}
		src.WritePage(i, buf)
	}
	dst := newVM(t, "vm0", 64, 2)
	sm, _ := migrate(t, src, dst,
		SourceOptions{Recycle: true, Compress: true},
		DestOptions{Store: store, VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if sm.PagesSum != 48 {
		t.Errorf("PagesSum = %d, want 48", sm.PagesSum)
	}
	if sm.PagesCompressed != 16 {
		t.Errorf("PagesCompressed = %d, want 16", sm.PagesCompressed)
	}
}

// Property: compress/decompress round-trips arbitrary page contents that
// deflate accepts, whenever compression succeeds.
func TestCompressionRoundTripProperty(t *testing.T) {
	comp, err := newPageCompressor()
	if err != nil {
		t.Fatal(err)
	}
	decomp := newPageDecompressor()
	f := func(seedBytes []byte, repeat uint8) bool {
		if len(seedBytes) == 0 {
			seedBytes = []byte{0}
		}
		page := make([]byte, vm.PageSize)
		for i := range page {
			page[i] = seedBytes[i%len(seedBytes)] * byte(repeat%7)
		}
		z, ok, err := comp.compress(page)
		if err != nil {
			return false
		}
		if !ok {
			return true // raw fallback path, nothing to verify here
		}
		var buf bytes.Buffer
		if err := writePageFullZ(&buf, 0, checksum.MD5.Page(page), z); err != nil {
			return false
		}
		if _, err := readMsgType(&buf); err != nil {
			return false
		}
		if _, _, err := readPageHeader(&buf); err != nil {
			return false
		}
		out := make([]byte, vm.PageSize)
		if err := decomp.readInto(&buf, out); err != nil {
			return false
		}
		return bytes.Equal(out, page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
