package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// corruptConn flips one bit in the Nth byte that passes through Write.
type corruptConn struct {
	net.Conn
	target int64
	seen   int64
}

func (c *corruptConn) Write(p []byte) (int, error) {
	if c.seen <= c.target && c.target < c.seen+int64(len(p)) {
		// Copy so we do not mutate the caller's buffer.
		mut := make([]byte, len(p))
		copy(mut, p)
		mut[c.target-c.seen] ^= 0x01
		c.seen += int64(len(p))
		return c.Conn.Write(mut)
	}
	c.seen += int64(len(p))
	return c.Conn.Write(p)
}

func TestVerifyPayloadsCatchesCorruption(t *testing.T) {
	src := newVM(t, "vm0", 16, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 16, 2)

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	// Corrupt a byte deep inside the page stream (well past the hello).
	evil := &corruptConn{Conn: a, target: 10_000}

	var wg sync.WaitGroup
	var derr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		// The source may fail with a broken pipe once the destination
		// aborts; either way it must not report clean success with a
		// corrupted stream delivered.
		_, _ = MigrateSource(context.Background(), evil, src, SourceOptions{})
	}()
	go func() {
		defer wg.Done()
		_, derr = MigrateDest(context.Background(), b, dst, DestOptions{VerifyPayloads: true})
		// The destination aborted mid-stream: close its pipe end so the
		// still-writing source unblocks with a broken pipe.
		b.Close()
	}()
	wg.Wait()
	if !errors.Is(derr, ErrProtocol) {
		t.Errorf("destination error = %v, want ErrProtocol (checksum mismatch)", derr)
	}
}

func TestCorruptionWithoutVerifyIsSilent(t *testing.T) {
	// Documents the trade: without VerifyPayloads a flipped payload bit is
	// not detected by the protocol (as in QEMU itself) — the page simply
	// differs. This test pins that behaviour so a future change to default
	// verification is deliberate.
	src := newVM(t, "vm0", 16, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 16, 2)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	evil := &corruptConn{Conn: a, target: 10_000}

	var wg sync.WaitGroup
	var serr, derr error
	wg.Add(2)
	go func() { defer wg.Done(); _, serr = MigrateSource(context.Background(), evil, src, SourceOptions{}) }()
	go func() { defer wg.Done(); _, derr = MigrateDest(context.Background(), b, dst, DestOptions{}) }()
	wg.Wait()
	if serr != nil || derr != nil {
		t.Fatalf("migration failed: source=%v dest=%v", serr, derr)
	}
	if src.MemEqual(dst) {
		t.Error("corruption vanished — corruptConn did not hit the payload")
	}
}

// truncConn closes the stream after n bytes have been written.
type truncConn struct {
	net.Conn
	budget int64
}

func (c *truncConn) Write(p []byte) (int, error) {
	if c.budget <= 0 {
		return 0, io.ErrClosedPipe
	}
	if int64(len(p)) > c.budget {
		p = p[:c.budget]
	}
	n, err := c.Conn.Write(p)
	c.budget -= int64(n)
	if err == nil && c.budget <= 0 {
		c.Conn.Close()
		return n, io.ErrClosedPipe
	}
	return n, err
}

func TestTruncatedStreamFailsCleanly(t *testing.T) {
	for _, budget := range []int64{3, 40, 5_000, 30_000} {
		src := newVM(t, "vm0", 16, 1)
		if err := src.FillRandom(0.9); err != nil {
			t.Fatal(err)
		}
		dst := newVM(t, "vm0", 16, 2)
		a, b := net.Pipe()
		cut := &truncConn{Conn: a, budget: budget}

		var wg sync.WaitGroup
		var serr, derr error
		wg.Add(2)
		go func() { defer wg.Done(); _, serr = MigrateSource(context.Background(), cut, src, SourceOptions{}) }()
		go func() { defer wg.Done(); _, derr = MigrateDest(context.Background(), b, dst, DestOptions{}) }()
		wg.Wait()
		a.Close()
		b.Close()
		if serr == nil && derr == nil {
			t.Errorf("budget %d: both sides reported success on a truncated stream", budget)
		}
	}
}

func TestDestRejectsOutOfRangePage(t *testing.T) {
	dst := newVM(t, "vm0", 4, 1)
	var stream bytes.Buffer
	h := hello{
		Version:   ProtocolVersion,
		VMName:    "vm0",
		PageSize:  vm.PageSize,
		PageCount: 4,
		Alg:       checksum.MD5,
	}
	if err := writeHello(&stream, h); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, vm.PageSize)
	if err := writePageFull(&stream, 99, checksum.MD5.Page(page), page); err != nil {
		t.Fatal(err)
	}
	_, err := MigrateDest(context.Background(), readWriter{&stream, io.Discard}, dst, DestOptions{})
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("err = %v, want ErrProtocol", err)
	}
}

func TestDestRejectsPageSumWithoutCheckpoint(t *testing.T) {
	dst := newVM(t, "vm0", 4, 1)
	var stream bytes.Buffer
	h := hello{
		Version:   ProtocolVersion,
		VMName:    "vm0",
		PageSize:  vm.PageSize,
		PageCount: 4,
		Alg:       checksum.MD5,
		Recycle:   true,
	}
	if err := writeHello(&stream, h); err != nil {
		t.Fatal(err)
	}
	if err := writePageSum(&stream, 0, checksum.MD5.Page([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	_, err := MigrateDest(context.Background(), readWriter{&stream, io.Discard}, dst, DestOptions{})
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("err = %v, want ErrProtocol", err)
	}
}

func TestDestRejectsUnknownMessage(t *testing.T) {
	dst := newVM(t, "vm0", 4, 1)
	var stream bytes.Buffer
	h := hello{
		Version:   ProtocolVersion,
		VMName:    "vm0",
		PageSize:  vm.PageSize,
		PageCount: 4,
		Alg:       checksum.MD5,
	}
	if err := writeHello(&stream, h); err != nil {
		t.Fatal(err)
	}
	stream.WriteByte(0xEE) // nonsense tag
	_, err := MigrateDest(context.Background(), readWriter{&stream, io.Discard}, dst, DestOptions{})
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("err = %v, want ErrProtocol", err)
	}
}

func TestAcceptRejectsNonHello(t *testing.T) {
	var stream bytes.Buffer
	stream.WriteByte(byte(msgAck))
	if _, err := Accept(context.Background(), readWriter{&stream, io.Discard}); !errors.Is(err, ErrProtocol) {
		t.Errorf("err = %v, want ErrProtocol", err)
	}
}

func TestCorruptCheckpointDegradesToFull(t *testing.T) {
	src := newVM(t, "vm0", 16, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	// Delete the pooled page segments behind the store's back: Restore must
	// fail and the destination must degrade rather than abort.
	segs, err := filepath.Glob(filepath.Join(store.Dir(), "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no pool segments on disk")
	}
	for _, seg := range segs {
		if err := os.Remove(seg); err != nil {
			t.Fatal(err)
		}
	}
	dst := newVM(t, "vm0", 16, 2)
	sm, dres := migrate(t, src, dst,
		SourceOptions{Recycle: true},
		DestOptions{Store: store, VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatal("memory differs after degraded migration")
	}
	if dres.UsedCheckpoint {
		t.Error("corrupt checkpoint reported as used")
	}
	if sm.PagesSum != 0 {
		t.Errorf("degraded migration sent %d checksum pages", sm.PagesSum)
	}
}

// readWriter joins separate reader and writer halves.
type readWriter struct {
	io.Reader
	io.Writer
}
