package core

import (
	"errors"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is returned by a FaultConn configured to reset the
// connection mid-stream.
var ErrInjectedReset = errors.New("core: injected connection reset")

// ErrInjectedTornWrite is returned by a FaultConn configured to tear a
// write: part of the buffer reaches the peer, then the connection dies.
var ErrInjectedTornWrite = errors.New("core: injected torn write")

// FaultConfig selects the faults a FaultConn injects. The zero value injects
// nothing (a transparent wrapper that still counts operations).
type FaultConfig struct {
	// ReadLatency delays every Read, simulating link RTT on the receive
	// path.
	ReadLatency time.Duration
	// WriteLatency delays every Write. Combined with a buffered protocol
	// writer this charges one latency unit per flush, which is how the
	// pipelining tests make round trips observable.
	WriteLatency time.Duration
	// MaxReadChunk caps the bytes returned by a single Read (short reads),
	// exercising the io.ReadFull paths. <= 0 leaves reads untouched.
	MaxReadChunk int
	// ResetAfterBytes fails the connection with ErrInjectedReset once that
	// many bytes have been written through it (a mid-stream RST). <= 0
	// disables.
	ResetAfterBytes int64
	// StallAfterBytes blocks writes once that many bytes have passed
	// (a peer that stops draining). The stall honors write deadlines set
	// via SetWriteDeadline/SetDeadline and releases on Close, so a
	// DeadlineConn wrapped around the FaultConn still times the stall out.
	// <= 0 disables.
	StallAfterBytes int64
	// TornWriteAfterBytes tears the stream at that byte offset: the write
	// crossing the threshold delivers only the bytes up to it, then fails
	// with ErrInjectedTornWrite, and every later write fails outright —
	// the disk-side torn-write fault's transport sibling. The peer sees a
	// prefix of a frame followed by EOF-ish garbage, exercising the
	// receive path's partial-frame handling. <= 0 disables.
	TornWriteAfterBytes int64
}

// FaultConn wraps a connection and injects the configured transport faults.
// It forwards deadlines to the underlying connection when supported and
// counts operations, so tests can assert both failure behavior and flush
// discipline.
type FaultConn struct {
	conn io.ReadWriter
	cfg  FaultConfig

	readOps  atomic.Int64
	writeOps atomic.Int64
	written  atomic.Int64

	mu       sync.Mutex
	wdl      time.Time
	dlNotify chan struct{}

	closeOnce sync.Once
	closed    chan struct{}
}

// NewFaultConn wraps conn with the given fault configuration.
func NewFaultConn(conn io.ReadWriter, cfg FaultConfig) *FaultConn {
	return &FaultConn{
		conn:     conn,
		cfg:      cfg,
		dlNotify: make(chan struct{}),
		closed:   make(chan struct{}),
	}
}

// ReadOps reports the number of Read calls that reached the wrapper.
func (f *FaultConn) ReadOps() int64 { return f.readOps.Load() }

// WriteOps reports the number of Write calls that reached the wrapper. With
// a buffered protocol writer on top, this approximates the number of
// flushes.
func (f *FaultConn) WriteOps() int64 { return f.writeOps.Load() }

// BytesWritten reports the bytes accepted by Write so far.
func (f *FaultConn) BytesWritten() int64 { return f.written.Load() }

func (f *FaultConn) Read(p []byte) (int, error) {
	f.readOps.Add(1)
	if err := f.sleep(f.cfg.ReadLatency); err != nil {
		return 0, err
	}
	if f.cfg.MaxReadChunk > 0 && len(p) > f.cfg.MaxReadChunk {
		p = p[:f.cfg.MaxReadChunk]
	}
	return f.conn.Read(p)
}

func (f *FaultConn) Write(p []byte) (int, error) {
	f.writeOps.Add(1)
	if err := f.sleep(f.cfg.WriteLatency); err != nil {
		return 0, err
	}
	seen := f.written.Load()
	if f.cfg.ResetAfterBytes > 0 && seen >= f.cfg.ResetAfterBytes {
		return 0, ErrInjectedReset
	}
	if f.cfg.TornWriteAfterBytes > 0 {
		if seen >= f.cfg.TornWriteAfterBytes {
			return 0, ErrInjectedTornWrite
		}
		if remain := f.cfg.TornWriteAfterBytes - seen; int64(len(p)) > remain {
			n, err := f.conn.Write(p[:remain])
			f.written.Add(int64(n))
			if err != nil {
				return n, err
			}
			return n, ErrInjectedTornWrite
		}
	}
	if f.cfg.StallAfterBytes > 0 {
		if seen >= f.cfg.StallAfterBytes {
			return 0, f.stall()
		}
		if remain := f.cfg.StallAfterBytes - seen; int64(len(p)) > remain {
			// Deliver the bytes up to the stall point, then wedge.
			n, err := f.conn.Write(p[:remain])
			f.written.Add(int64(n))
			if err != nil {
				return n, err
			}
			return n, f.stall()
		}
	}
	if f.cfg.ResetAfterBytes > 0 {
		if remain := f.cfg.ResetAfterBytes - seen; int64(len(p)) > remain {
			n, err := f.conn.Write(p[:remain])
			f.written.Add(int64(n))
			if err != nil {
				return n, err
			}
			return n, ErrInjectedReset
		}
	}
	n, err := f.conn.Write(p)
	f.written.Add(int64(n))
	return n, err
}

// stall blocks until the connection is closed or the write deadline passes.
func (f *FaultConn) stall() error {
	for {
		f.mu.Lock()
		wdl, notify := f.wdl, f.dlNotify
		f.mu.Unlock()
		var timeout <-chan time.Time
		if !wdl.IsZero() {
			d := time.Until(wdl)
			if d <= 0 {
				return os.ErrDeadlineExceeded
			}
			timer := time.NewTimer(d)
			defer timer.Stop()
			timeout = timer.C
		}
		select {
		case <-f.closed:
			return io.ErrClosedPipe
		case <-timeout:
			return os.ErrDeadlineExceeded
		case <-notify: // deadline changed, re-evaluate
		}
	}
}

// sleep waits for d, aborting early when the connection closes.
func (f *FaultConn) sleep(d time.Duration) error {
	if d <= 0 {
		select {
		case <-f.closed:
			return io.ErrClosedPipe
		default:
			return nil
		}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-f.closed:
		return io.ErrClosedPipe
	case <-timer.C:
		return nil
	}
}

// SetReadDeadline forwards to the underlying connection when supported.
func (f *FaultConn) SetReadDeadline(t time.Time) error {
	if dl, ok := f.conn.(deadlineSetter); ok {
		return dl.SetReadDeadline(t)
	}
	return nil
}

// SetWriteDeadline records the deadline for stall release and forwards it.
func (f *FaultConn) SetWriteDeadline(t time.Time) error {
	f.mu.Lock()
	f.wdl = t
	close(f.dlNotify)
	f.dlNotify = make(chan struct{})
	f.mu.Unlock()
	if dl, ok := f.conn.(deadlineSetter); ok {
		return dl.SetWriteDeadline(t)
	}
	return nil
}

// SetDeadline sets both read and write deadlines.
func (f *FaultConn) SetDeadline(t time.Time) error {
	if err := f.SetReadDeadline(t); err != nil {
		return err
	}
	return f.SetWriteDeadline(t)
}

// Close releases any stalled writer and closes the underlying connection
// when it supports closing.
func (f *FaultConn) Close() error {
	f.closeOnce.Do(func() { close(f.closed) })
	if cl, ok := f.conn.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
