package core

import (
	"testing"

	"vecycle/internal/vm"
)

// TestUnionBootstrapFreshVM is the warm-host acceptance case: a VM that has
// never visited the destination migrates onto a host whose store holds a
// different VM's checkpoint. The content-addressed pool announces the union
// of resident content, so every page the newcomer shares with the resident
// crosses the wire as a checksum, not a payload.
func TestUnionBootstrapFreshVM(t *testing.T) {
	const pages = 32
	store := newStore(t)

	// A resident neighbor's checkpoint warms the host.
	neighbor := newVM(t, "neighbor", pages, 3)
	if err := neighbor.FillRandom(1.0); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(neighbor); err != nil {
		t.Fatal(err)
	}

	// The fresh VM shares exactly half its pages with the neighbor.
	src := newVM(t, "vm0", pages, 9)
	if err := src.FillRandom(1.0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, vm.PageSize)
	for i := 0; i < pages/2; i++ {
		neighbor.ReadPage(i, buf)
		src.InstallPage(i, buf)
	}

	var sawUnion bool
	dst := newVM(t, "vm0", pages, 2)
	sm, dres := migrate(t, src, dst,
		SourceOptions{Recycle: true},
		DestOptions{Store: store, VerifyPayloads: true, OnEvent: func(e Event) {
			if e.Kind == EventUnion {
				sawUnion = true
			}
		}})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs after union-bootstrap migration (page %d)",
			src.FirstDifference(dst))
	}
	if !dres.UsedCheckpoint || !dres.UnionBootstrap {
		t.Errorf("UsedCheckpoint=%v UnionBootstrap=%v, want both true",
			dres.UsedCheckpoint, dres.UnionBootstrap)
	}
	if dres.ResumedFromPartial {
		t.Error("union bootstrap misreported as a salvage resume")
	}
	if !sawUnion {
		t.Error("no EventUnion emitted")
	}
	// The shared half rode the announcement: checksum frames, no payloads.
	if sm.PagesSum != pages/2 {
		t.Errorf("source sent %d checksum pages, want %d", sm.PagesSum, pages/2)
	}
	if got := dres.Metrics.PagesReusedFromDisk; got != pages/2 {
		t.Errorf("destination resolved %d pages from the pool, want %d", got, pages/2)
	}
	// Union content was never installed into RAM, so nothing may arrive as a
	// delta against it.
	if dres.Metrics.PagesDelta != 0 {
		t.Errorf("union bootstrap produced %d delta pages, want 0", dres.Metrics.PagesDelta)
	}
}

// TestUnionBootstrapEmptyStore keeps the baseline intact: an empty store has
// no union to announce, so the migration runs full with no checkpoint bits
// set.
func TestUnionBootstrapEmptyStore(t *testing.T) {
	src := newVM(t, "vm0", 8, 1)
	if err := src.FillRandom(0.9); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 8, 2)
	sm, dres := migrate(t, src, dst,
		SourceOptions{Recycle: true},
		DestOptions{Store: newStore(t), VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatal("memory differs after baseline migration")
	}
	if dres.UsedCheckpoint || dres.UnionBootstrap {
		t.Errorf("empty store set UsedCheckpoint=%v UnionBootstrap=%v",
			dres.UsedCheckpoint, dres.UnionBootstrap)
	}
	if sm.PagesSum != 0 {
		t.Errorf("empty store still produced %d checksum pages", sm.PagesSum)
	}
}
