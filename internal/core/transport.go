package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync/atomic"
	"time"
)

// ErrIdleTimeout is returned (wrapped) when a transport made no progress for
// longer than its configured idle budget. A migration blocked on a hung peer
// fails with this instead of wedging forever; the sched layer classifies it
// as retryable.
var ErrIdleTimeout = errors.New("core: transport idle timeout")

// deadlineSetter is the part of net.Conn the transport layer needs to bound
// individual reads and writes. net.Pipe and TCP connections both provide it.
type deadlineSetter interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// aborter is implemented by connections that can be failed from another
// goroutine (context cancellation, host shutdown). Subsequent and in-flight
// I/O returns the abort cause.
type aborter interface {
	Abort(cause error)
}

// DeadlineConn wraps a connection with a per-I/O idle deadline: every Read
// and Write re-arms the deadline, so a transfer that keeps making progress
// never times out while a stalled peer fails the operation within idle.
// Timeout errors are wrapped in ErrIdleTimeout.
//
// When the underlying connection does not support deadlines (e.g. an
// in-memory buffer), the wrapper degrades to a transparent pass-through —
// Abort still works for future operations, but cannot interrupt a blocked
// one.
type DeadlineConn struct {
	conn io.ReadWriter
	dl   deadlineSetter // nil when conn cannot set deadlines
	idle time.Duration

	aborted atomic.Bool
	cause   atomic.Value // error set by Abort
}

// NewDeadlineConn wraps conn with an idle timeout. idle <= 0 disables the
// per-I/O deadline (the wrapper still supports Abort).
func NewDeadlineConn(conn io.ReadWriter, idle time.Duration) *DeadlineConn {
	c := &DeadlineConn{conn: conn, idle: idle}
	if dl, ok := conn.(deadlineSetter); ok {
		c.dl = dl
	}
	return c
}

// Read arms the read deadline and reads from the underlying connection.
func (c *DeadlineConn) Read(p []byte) (int, error) {
	if err := c.abortCause(); err != nil {
		return 0, err
	}
	if c.dl != nil && c.idle > 0 {
		_ = c.dl.SetReadDeadline(time.Now().Add(c.idle))
	}
	n, err := c.conn.Read(p)
	return n, c.mapErr(err)
}

// Write arms the write deadline and writes to the underlying connection.
func (c *DeadlineConn) Write(p []byte) (int, error) {
	if err := c.abortCause(); err != nil {
		return 0, err
	}
	if c.dl != nil && c.idle > 0 {
		_ = c.dl.SetWriteDeadline(time.Now().Add(c.idle))
	}
	n, err := c.conn.Write(p)
	return n, c.mapErr(err)
}

// Abort fails the connection with the given cause: in-flight reads and
// writes are unblocked via a past deadline and future ones fail immediately.
func (c *DeadlineConn) Abort(cause error) {
	if cause == nil {
		cause = net.ErrClosed
	}
	c.cause.Store(cause)
	c.aborted.Store(true)
	if c.dl != nil {
		past := time.Unix(1, 0)
		_ = c.dl.SetReadDeadline(past)
		_ = c.dl.SetWriteDeadline(past)
	}
}

// Close closes the underlying connection when it supports closing.
func (c *DeadlineConn) Close() error {
	if cl, ok := c.conn.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

func (c *DeadlineConn) abortCause() error {
	if !c.aborted.Load() {
		return nil
	}
	if err, ok := c.cause.Load().(error); ok {
		return err
	}
	return net.ErrClosed
}

// mapErr rewrites I/O errors: an abort cause wins, then deadline expiry is
// surfaced as ErrIdleTimeout.
func (c *DeadlineConn) mapErr(err error) error {
	if err == nil {
		return nil
	}
	if cause := c.abortCause(); cause != nil {
		return cause
	}
	if isTimeout(err) {
		return fmt.Errorf("%w: no progress for %v (%v)", ErrIdleTimeout, c.idle, err)
	}
	return err
}

// isTimeout reports whether err is a deadline-expiry error.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// watchContext arranges for conn to be aborted when ctx is cancelled, so a
// protocol goroutine blocked in Read or Write observes the cancellation
// instead of hanging until the peer acts. The returned stop function must be
// called before the caller returns; it releases the watcher goroutine.
//
// Connections that support neither Abort nor deadlines cannot be interrupted
// mid-I/O; cancellation is then only observed at protocol turn-taking
// points.
func watchContext(ctx context.Context, conn io.ReadWriter) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	ab, isAborter := conn.(aborter)
	dl, isSetter := conn.(deadlineSetter)
	if !isAborter && !isSetter {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			if isAborter {
				ab.Abort(ctx.Err())
			} else {
				past := time.Unix(1, 0)
				_ = dl.SetReadDeadline(past)
				_ = dl.SetWriteDeadline(past)
			}
		case <-done:
		}
	}()
	return func() { close(done) }
}

// orBackground normalizes a possibly-nil context.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}
