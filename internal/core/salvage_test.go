package core

import (
	"context"
	"net"
	"sync"
	"testing"

	"vecycle/internal/checkpoint"
	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// cutMigration runs a migration whose source connection resets after
// resetAfter bytes, returning both sides' outcomes.
func cutMigration(t *testing.T, src, dst *vm.VM, resetAfter int64, sopts SourceOptions, dopts DestOptions) (DestResult, error, error) {
	t.Helper()
	a, b := net.Pipe()
	cut := NewFaultConn(a, FaultConfig{ResetAfterBytes: resetAfter})
	var (
		wg   sync.WaitGroup
		serr error
		dres DestResult
		derr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, serr = MigrateSource(context.Background(), cut, src, sopts)
		a.Close() // unblock the destination's pending read
	}()
	go func() {
		defer wg.Done()
		dres, derr = MigrateDest(context.Background(), b, dst, dopts)
		b.Close()
	}()
	wg.Wait()
	return dres, serr, derr
}

// TestSalvageThenResume is the end-to-end salvage contract at the engine
// level: an interrupted attempt persists a partial checkpoint, and the next
// attempt announces its sums so the source resends strictly fewer full
// pages — with the hello-ack reporting the partial bootstrap and delta
// encoding disabled against it.
func TestSalvageThenResume(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(map[int]string{0: "sequential", 4: "pipelined"}[workers], func(t *testing.T) {
			const pages = 512
			src := newVM(t, "vm0", pages, 1)
			if err := src.FillRandom(0.95); err != nil {
				t.Fatal(err)
			}
			store := newStore(t)

			// Attempt 1: the wire dies mid round 1. No checkpoint exists yet,
			// so every streamed page is a full page — coalesced into
			// MaxRangePages-sized range frames (~1 MiB each), so the cut
			// must fall beyond the first complete frame for any progress to
			// have landed.
			dst1 := newVM(t, "vm0", pages, 2)
			dres, serr, derr := cutMigration(t, src, dst1, 1_200_000,
				SourceOptions{Recycle: true, Workers: workers},
				DestOptions{Store: store, Workers: workers, VerifyPayloads: true})
			if serr == nil || derr == nil {
				t.Fatalf("cut migration succeeded (source=%v dest=%v)", serr, derr)
			}
			if dres.SalvagePages == 0 {
				t.Fatal("no salvage checkpoint written")
			}
			info, ok := store.Entry("vm0")
			if !ok || info.State != checkpoint.EntryPartial {
				t.Fatalf("store entry after cut = %+v, %v; want partial", info, ok)
			}

			// Attempt 2: clean wire. The announcement from the salvage image
			// must eliminate every page the first attempt installed.
			dst2 := newVM(t, "vm0", pages, 3)
			sm, dres2 := migrate(t, src, dst2,
				SourceOptions{Recycle: true, Workers: workers},
				DestOptions{Store: store, Workers: workers, VerifyPayloads: true})
			if !src.MemEqual(dst2) {
				t.Fatalf("memory differs at page %d", src.FirstDifference(dst2))
			}
			if !dres2.ResumedFromPartial {
				t.Error("destination did not report a partial bootstrap")
			}
			if int64(sm.PagesFull) > int64(pages)-dres.SalvagePages {
				t.Errorf("resumed attempt sent %d full pages; attempt 1 salvaged %d of %d",
					sm.PagesFull, dres.SalvagePages, pages)
			}
			if sm.PagesSum == 0 {
				t.Error("resumed attempt reused nothing from the salvage image")
			}
		})
	}
}

// TestSalvageSkippedWithoutProgress: a failure before any page installs
// must not write a salvage entry (and must not demote an existing complete
// checkpoint to partial).
func TestSalvageSkippedWithoutProgress(t *testing.T) {
	const pages = 256
	src := newVM(t, "vm0", pages, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.Save(src); err != nil { // pre-existing complete checkpoint
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", pages, 2)
	// Cut inside the hello exchange: nothing installed beyond bootstrap.
	_, serr, derr := cutMigration(t, src, dst, 10,
		SourceOptions{Recycle: true},
		DestOptions{Store: store, VerifyPayloads: true})
	if serr == nil && derr == nil {
		t.Fatal("cut migration succeeded")
	}
	info, ok := store.Entry("vm0")
	if !ok || info.State != checkpoint.EntryComplete {
		t.Fatalf("entry = %+v, %v; want untouched complete checkpoint", info, ok)
	}
}

// TestSalvageDisabled: NoSalvage keeps failed migrations from writing
// partial entries.
func TestSalvageDisabled(t *testing.T) {
	const pages = 256
	src := newVM(t, "vm0", pages, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	dst := newVM(t, "vm0", pages, 2)
	_, serr, _ := cutMigration(t, src, dst, 300_000,
		SourceOptions{Recycle: true},
		DestOptions{Store: store, NoSalvage: true, VerifyPayloads: true})
	if serr == nil {
		t.Fatal("cut migration succeeded")
	}
	if _, ok := store.Entry("vm0"); ok {
		t.Error("NoSalvage still wrote a store entry")
	}
}

// TestPartialSkippedUnderSkipAnnounce: with the ping-pong skip-announce
// flag the source replays sums learned from the last complete checkpoint;
// a partial image must not be served silently in its place.
func TestPartialSkippedUnderSkipAnnounce(t *testing.T) {
	const pages = 256
	src := newVM(t, "vm0", pages, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.SaveSalvage(src); err != nil {
		t.Fatal(err)
	}
	// Ping-pong: the source claims to know the destination's sums.
	known := checksum.NewSet(src.NumPages())
	collectSums(src, checksum.MD5, known)
	dst := newVM(t, "vm0", pages, 2)
	sm, dres := migrate(t, src, dst,
		SourceOptions{Recycle: true, KnownDestSums: known},
		DestOptions{Store: store, VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	if dres.UsedCheckpoint {
		t.Error("partial checkpoint bootstrapped under skip-announce")
	}
	if sm.PagesSum != 0 {
		t.Errorf("source sent %d page-sums against a skipped bootstrap", sm.PagesSum)
	}
}
