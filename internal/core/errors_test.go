package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"syscall"
	"testing"

	"vecycle/internal/faultfs"
)

// TestMigrationErrorRoundTrip pins the taxonomy's contract: a classified
// error survives arbitrary wrapping, errors.As recovers the stage and
// class, errors.Is still reaches the root cause, and Classify routes on
// the class wherever it sits in the chain.
func TestMigrationErrorRoundTrip(t *testing.T) {
	root := fmt.Errorf("read block 7: %w", syscall.EIO)
	classified := Fail(StageRecycleRead, ClassRetryable, faultfs.Label(root), root)
	wrapped := fmt.Errorf("dest: handler: %w", fmt.Errorf("merge: %w", classified))

	var me *MigrationError
	if !errors.As(wrapped, &me) {
		t.Fatal("errors.As lost the MigrationError through two wraps")
	}
	if me.Stage != StageRecycleRead || me.Class != ClassRetryable || me.Fault != "eio" {
		t.Errorf("recovered {stage=%s class=%s fault=%s}, want {recycle-read retryable eio}",
			me.Stage, me.Class, me.Fault)
	}
	if !errors.Is(wrapped, syscall.EIO) {
		t.Error("errors.Is lost the root syscall error")
	}
	if got := Classify(wrapped); got != ClassRetryable {
		t.Errorf("Classify = %v, want retryable", got)
	}

	// The class is authoritative even when the underlying cause would
	// classify differently: a terminal-classed error wrapping a canceled
	// context stays terminal, and a retryable-classed error wrapping
	// ErrRejected stays retryable.
	if got := Classify(Fail(StageBootstrap, ClassTerminal, "", context.Canceled)); got != ClassTerminal {
		t.Errorf("Classify(terminal-classed) = %v, want terminal", got)
	}
	if got := Classify(Fail(StageRecycleRead, ClassRetryable, "", ErrRejected)); got != ClassRetryable {
		t.Errorf("Classify(retryable-classed) = %v, want retryable", got)
	}

	// Heuristics for unclassified errors.
	for _, tc := range []struct {
		err  error
		want ErrorClass
	}{
		{ErrRejected, ClassTerminal},
		{ErrProtocol, ClassTerminal},
		{context.Canceled, ClassTerminal},
		{context.DeadlineExceeded, ClassTerminal},
		{ErrInjectedReset, ClassRetryable},
		{syscall.ECONNRESET, ClassRetryable},
	} {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}

	// Fail is nil-safe so sites can wrap unconditionally.
	if Fail(StageSalvage, ClassDegraded, "", nil) != nil {
		t.Error("Fail(nil) != nil")
	}
}

// TestFaultConnTornWrite pins the transport torn-write mode: the write
// crossing the threshold delivers exactly the bytes up to it before
// failing, and every later write fails outright — the peer sees a clean
// prefix, never interleaved garbage.
func TestFaultConnTornWrite(t *testing.T) {
	var sink bytes.Buffer
	fc := NewFaultConn(&sink, FaultConfig{TornWriteAfterBytes: 6})

	if n, err := fc.Write([]byte("abcd")); n != 4 || err != nil {
		t.Fatalf("pre-threshold write = (%d, %v), want (4, nil)", n, err)
	}
	n, err := fc.Write([]byte("efgh"))
	if n != 2 || !errors.Is(err, ErrInjectedTornWrite) {
		t.Fatalf("crossing write = (%d, %v), want (2, ErrInjectedTornWrite)", n, err)
	}
	if n, err := fc.Write([]byte("ij")); n != 0 || !errors.Is(err, ErrInjectedTornWrite) {
		t.Fatalf("post-threshold write = (%d, %v), want (0, ErrInjectedTornWrite)", n, err)
	}
	if got := sink.String(); got != "abcdef" {
		t.Errorf("peer saw %q, want the clean 6-byte prefix %q", got, "abcdef")
	}
	if got := fc.BytesWritten(); got != 6 {
		t.Errorf("BytesWritten = %d, want 6", got)
	}
	// A torn stream is a transport fault: worth a retry.
	if got := Classify(err); got != ClassRetryable {
		t.Errorf("Classify(torn write) = %v, want retryable", got)
	}
}
