package core

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"
)

// TestAcceptNeverPanicsOnGarbage feeds random byte streams to the accept
// path: a hostile or corrupted peer must produce an error, never a panic
// or a runaway allocation.
func TestAcceptNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(256)
		raw := make([]byte, n)
		rng.Read(raw)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("input %d (%x): panic %v", i, raw, r)
				}
			}()
			s, err := Accept(context.Background(), readWriter{bytes.NewReader(raw), io.Discard})
			if err != nil {
				return // expected for almost every input
			}
			// An accidentally-valid hello: Run against a VM must still
			// terminate with an error (the stream is exhausted).
			v := newVM(t, s.VMName(), 4, 1)
			if s.MemBytes() == int64(4*4096) {
				_, _ = s.Run(context.Background(), v, DestOptions{})
			}
		}()
	}
}

// TestDestGarbageAfterValidHello fuzzes the merge loop: a well-formed
// hello followed by random bytes.
func TestDestGarbageAfterValidHello(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		var stream bytes.Buffer
		h := hello{
			Version:   ProtocolVersion,
			VMName:    "vm0",
			PageSize:  4096,
			PageCount: 4,
			Alg:       1, // MD5
		}
		if err := writeHello(&stream, h); err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, rng.Intn(512))
		rng.Read(junk)
		stream.Write(junk)

		dst := newVM(t, "vm0", 4, int64(i))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iteration %d: panic %v", i, r)
				}
			}()
			if _, err := MigrateDest(context.Background(), readWriter{&stream, io.Discard}, dst, DestOptions{}); err == nil {
				t.Errorf("iteration %d: garbage stream accepted", i)
			}
		}()
	}
}

// TestSourceGarbageResponses fuzzes the source against random hello-ack
// and announcement bytes.
func TestSourceGarbageResponses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		junk := make([]byte, rng.Intn(256))
		rng.Read(junk)
		src := newVM(t, "vm0", 4, int64(i))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iteration %d: panic %v", i, r)
				}
			}()
			// The writer is unbounded (io.Discard); only reads can fail.
			_, _ = MigrateSource(context.Background(), readWriter{bytes.NewReader(junk), io.Discard}, src,
				SourceOptions{Recycle: true})
		}()
	}
}
