package core

import (
	"bytes"
	"context"
	"io"
	"testing"

	"vecycle/internal/checksum"
	"vecycle/internal/delta"
	"vecycle/internal/vm"
)

// Native fuzz targets (run on their seed corpus under plain `go test`; use
// `go test -fuzz FuzzAccept ./internal/core` for continuous fuzzing).

func FuzzAccept(f *testing.F) {
	// Seed with a valid hello and a few mutations.
	var valid bytes.Buffer
	h := hello{Version: ProtocolVersion, VMName: "vm0", PageSize: 4096, PageCount: 4, Alg: checksum.MD5}
	if err := writeHello(&valid, h); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{byte(msgHello)})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := Accept(context.Background(), readWriter{bytes.NewReader(raw), io.Discard})
		if err != nil {
			return
		}
		// Structurally valid hello: the parsed sizes must be coherent.
		if s.MemBytes() < 0 {
			t.Errorf("negative MemBytes %d", s.MemBytes())
		}
	})
}

func FuzzMergeStream(f *testing.F) {
	var valid bytes.Buffer
	h := hello{Version: ProtocolVersion, VMName: "vm0", PageSize: 4096, PageCount: 2, Alg: checksum.MD5}
	if err := writeHello(&valid, h); err != nil {
		f.Fatal(err)
	}
	page := make([]byte, vm.PageSize)
	if err := writePageFull(&valid, 0, checksum.MD5.Page(page), page); err != nil {
		f.Fatal(err)
	}
	if err := writeMsgType(&valid, msgDone); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:20])
	f.Fuzz(func(t *testing.T, raw []byte) {
		dst, err := vm.New(vm.Config{Name: "vm0", MemBytes: 2 * vm.PageSize, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Must terminate with success or error, never panic.
		_, _ = MigrateDest(context.Background(), readWriter{bytes.NewReader(raw), io.Discard}, dst, DestOptions{})
	})
}

func FuzzDeltaDecode(f *testing.F) {
	old := make([]byte, 256)
	for i := range old {
		old[i] = byte(i)
	}
	newer := append([]byte(nil), old...)
	newer[10] ^= 0xFF
	enc, err := delta.Encode(nil, old, newer, 256)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte{0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		out := make([]byte, 256)
		// Either decodes or errors; the output length never changes.
		_ = delta.Decode(old, raw, out)
		if len(out) != 256 {
			t.Error("output resized")
		}
	})
}
