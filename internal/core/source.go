package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// Common protocol errors.
var (
	// ErrRejected is returned when the destination refuses the migration.
	ErrRejected = errors.New("core: destination rejected migration")
	// ErrProtocol is returned on unexpected messages or malformed frames.
	ErrProtocol = errors.New("core: protocol violation")
)

// SourceOptions configures an outgoing migration.
type SourceOptions struct {
	// Alg is the page-checksum algorithm. Recycled migrations must use a
	// strong one (MD5, SHA-256) because matches are declared across hosts
	// without byte comparison (§3.4); baseline migrations may select the
	// fast non-cryptographic hashes (fnv, fast64), whose sums serve only as
	// payload integrity tags. Defaults to MD5.
	Alg checksum.Algorithm
	// Recycle enables checkpoint-assisted mode. When false the engine
	// behaves like stock QEMU pre-copy: every first-round page is sent in
	// full.
	Recycle bool
	// KnownDestSums carries the checksum set this host observed while it
	// was the *destination* of a previous migration of this VM from the
	// current peer — the ping-pong optimization of §3.2. When set, the
	// destination's bulk announcement is skipped.
	KnownDestSums *checksum.Set
	// MaxRounds bounds the number of pre-copy rounds, including the final
	// stop-and-copy round. Defaults to 4.
	MaxRounds int
	// StopThreshold is the dirty-page count at which the engine proceeds to
	// the final round. Defaults to 64.
	StopThreshold int
	// Compress deflates full-page payloads (Svärd et al.'s orthogonal
	// optimization, combinable with checkpoint recycling). Pages that do
	// not shrink are sent raw.
	Compress bool
	// NoCompactAnnounce withholds the compact-announce capability from the
	// hello, forcing the destination to use the v1 announcement encoding.
	// For interop testing and as an escape hatch.
	NoCompactAnnounce bool
	// NoRangeFrames withholds the page-range-frame capability from the
	// hello, keeping the per-page v1 page encoding even against a
	// range-capable destination. For interop testing and as an escape
	// hatch.
	NoRangeFrames bool
	// Workers sizes the source pipeline: page reads, per-page encoding
	// (checksum + compression + delta), and wire emission run as concurrent
	// stages, with Workers goroutines in the encode stage — §3.4's remedy
	// when the checksum rate, not the network, bounds the migration
	// (10/40 GbE). The wire stream is byte-for-byte identical to the
	// sequential engine's for any worker count. Values below 1 keep the
	// single-goroutine sequential engine.
	Workers int
	// ChecksumWorkers is the deprecated name for Workers, kept so existing
	// callers keep parallelizing; it is consulted only when Workers is 0.
	ChecksumWorkers int
	// DeltaBase supplies the content the destination's RAM will hold after
	// its checkpoint bootstrap, per frame — typically this host's own
	// mirror of the peer's checkpoint (checkpoint.Checkpoint satisfies the
	// interface). When set, a changed page whose frame diverged only
	// partially is sent as an XBZRLE delta (Svärd et al.). Deltas are used
	// in the first round only: later rounds cannot assume the destination
	// frame still holds checkpoint content.
	DeltaBase PageProvider
	// Pause, when non-nil, is invoked before the final round so the caller
	// can stop the guest workload (the stop-and-copy pause). Resume, when
	// non-nil, is invoked after the destination acknowledges.
	Pause  func()
	Resume func()
	// OnEvent, when non-nil, observes each protocol turn (hello, rounds,
	// pause, done) for tracing. Emission never alters the wire stream.
	OnEvent EventFunc
	// SentSums, when non-nil, is reset by the migration and filled with the
	// digest of each page's most recently sent content, recorded as a
	// byproduct of encoding. Round one walks every page and later rounds
	// overwrite re-sent ones, so after a successful migration the table
	// holds the digest of every page of the paused final state — exactly
	// what the post-migration checkpoint will contain, so
	// checkpoint.Store.SaveWithSums can ingest it without a sidecar rehash.
	// Recording never alters the wire stream.
	SentSums *SumTable
}

func (o *SourceOptions) setDefaults() {
	if o.Alg == 0 {
		o.Alg = checksum.MD5
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 4
	}
	if o.StopThreshold <= 0 {
		o.StopThreshold = 64
	}
}

func (o *SourceOptions) validate() error {
	if !o.Alg.Valid() {
		return fmt.Errorf("core: invalid checksum algorithm")
	}
	// Recycling declares cross-host page identity from checksums alone, so
	// it demands a collision-resistant algorithm. A baseline migration only
	// uses checksums as payload integrity tags verified on the receiving
	// host, where the fast non-cryptographic hashes (fnv, fast64) suffice.
	if (o.Recycle || o.KnownDestSums != nil) && !o.Alg.Strong() {
		return fmt.Errorf("core: %v is not collision-resistant enough for cross-host matching", o.Alg)
	}
	return nil
}

// workers resolves the effective pipeline width: Workers wins, the
// deprecated ChecksumWorkers is the fallback, and anything below 1 selects
// the sequential engine (returned as 0).
func (o *SourceOptions) workers() int {
	w := o.Workers
	if w == 0 {
		w = o.ChecksumWorkers
	}
	if w < 1 {
		return 0
	}
	return w
}

// PageProvider supplies the page content a delta can be based on.
// *checkpoint.Checkpoint implements it.
type PageProvider interface {
	// PageAt returns the content of page frame i, ok=false when the frame
	// is not covered.
	PageAt(frame int) (data []byte, ok bool, err error)
}

// MigrateSource drives the source side of a live migration of v over conn.
// The guest may keep running (writing pages) throughout; the caller's
// Pause hook is invoked before the final stop-and-copy round.
//
// Cancelling ctx aborts the migration: the cancellation is observed at
// every protocol turn-taking point, and — when conn supports deadlines or
// Abort (net.Conn, DeadlineConn) — also interrupts an in-flight blocking
// read or write. The returned error is then ctx.Err().
//
// On success the returned metrics describe the transfer as seen from the
// source. The caller is responsible for writing the outgoing checkpoint
// afterwards (checkpoint.Store.Save) — excluded from the migration time,
// as in the paper's measurements.
func MigrateSource(ctx context.Context, conn io.ReadWriter, v *vm.VM, opts SourceOptions) (m Metrics, err error) {
	ctx = orBackground(ctx)
	stop := watchContext(ctx, conn)
	defer stop()
	defer func() {
		if err != nil && ctx.Err() != nil {
			err = ctx.Err()
		}
	}()
	opts.setDefaults()
	if err := opts.validate(); err != nil {
		return m, err
	}
	// Reset per attempt: a retry must not inherit a failed attempt's
	// partial recordings.
	opts.SentSums.reset(opts.Alg, v.NumPages())

	start := time.Now()
	cw := &countingWriter{w: conn}
	cr := &countingReader{r: conn}
	// Data direction (frames out) gets a pooled batch-sized buffer; the
	// control direction (acks in) a pooled 64 KiB one.
	w := getDataWriter(cw)
	r := getCtlReader(cr)
	defer putDataWriter(w)
	defer putCtlReader(r)
	defer func() {
		m.BytesSent = cw.n
		m.BytesReceived = cr.n
	}()

	h := hello{
		Version:      ProtocolVersion,
		VMName:       v.Name(),
		PageSize:     vm.PageSize,
		PageCount:    uint64(v.NumPages()),
		Alg:          opts.Alg,
		Recycle:      opts.Recycle,
		SkipAnnounce: opts.Recycle && opts.KnownDestSums != nil,
		// Capability, not a demand: the destination answers with its own
		// compact-announce bit and only then may use the v2 encoding. Old
		// destinations ignore the flag bit entirely.
		CompactAnnounce: !opts.NoCompactAnnounce,
		// Same negotiation shape for coalesced page-range frames: offered
		// here, used only when the ack echoes acceptance.
		RangeFrames: !opts.NoRangeFrames,
	}
	if err := writeHello(w, h); err != nil {
		return m, err
	}
	if err := flush(w); err != nil {
		return m, err
	}

	t, err := readMsgType(r)
	if err != nil {
		return m, err
	}
	if t != msgHelloAck {
		return m, fmt.Errorf("%w: expected hello-ack, got %v", ErrProtocol, t)
	}
	ack, err := readHelloAck(r)
	if err != nil {
		return m, err
	}
	if !ack.OK {
		return m, fmt.Errorf("%w: %s", ErrRejected, ack.Reason)
	}
	opts.OnEvent.emit(Event{Kind: EventHello, Pages: int64(v.NumPages()),
		Detail: fmt.Sprintf("have_checkpoint=%v", ack.HaveCheckpoint)})

	// Determine the set of checksums available at the destination.
	var destSums *checksum.Set
	switch {
	case !opts.Recycle || !ack.HaveCheckpoint:
		// Baseline mode, or the destination found no checkpoint: full first
		// round.
	case h.SkipAnnounce:
		destSums = opts.KnownDestSums
	default:
		t, err := readMsgType(r)
		if err != nil {
			return m, err
		}
		before := cr.n
		switch t {
		case msgHashAnnounce:
			destSums, err = readHashAnnounce(r)
		case msgHashAnnounceV2:
			if !h.CompactAnnounce || !ack.CompactAnnounce {
				return m, fmt.Errorf("%w: compact announce without negotiation", ErrProtocol)
			}
			destSums, err = readHashAnnounceV2(r)
		default:
			return m, fmt.Errorf("%w: expected hash-announce, got %v", ErrProtocol, t)
		}
		if err != nil {
			return m, err
		}
		m.AnnounceBytes = cr.n - before
		m.AnnounceRawBytes = int64(checksum.EncodedSize(destSums.Len()))
		opts.OnEvent.emit(Event{Kind: EventAnnounce, Bytes: m.AnnounceBytes,
			Pages: int64(destSums.Len())})
	}

	// Delta encoding is only sound when the destination actually
	// bootstrapped from its checkpoint — and from the checkpoint this
	// host's mirror describes. A salvage (partial) bootstrap means the
	// destination's RAM holds an interrupted attempt's pages, not the last
	// complete checkpoint, so the delta base is stale by construction.
	if !ack.HaveCheckpoint || !opts.Recycle || ack.PartialCheckpoint {
		opts.DeltaBase = nil
	}
	if ack.PartialCheckpoint {
		opts.OnEvent.emit(Event{Kind: EventSalvage, Detail: "resumed"})
	}

	// Encoders are created once per migration — not per round — and their
	// deflate state comes from a process-wide pool, so an N-worker migration
	// no longer allocates N fresh compressor windows every round.
	cfg := encoderConfig{alg: opts.Alg, destSums: destSums, compress: opts.Compress,
		ranges: h.RangeFrames && ack.RangeFrames, sent: opts.SentSums}
	workers := opts.workers()
	var seqEnc *sourceEncoder
	var encs []*sourceEncoder
	defer func() {
		seqEnc.release()
		for _, e := range encs {
			e.release()
		}
	}()
	if workers == 0 {
		seqEnc, err = newSourceEncoder(cfg)
		if err != nil {
			return m, err
		}
	} else {
		for i := 0; i < workers; i++ {
			e, err := newSourceEncoder(cfg)
			if err != nil {
				return m, err
			}
			encs = append(encs, e)
		}
	}
	// stream sends one round's pages: through the staged pipeline when
	// workers were requested, else through the sequential engine. Both emit
	// identical bytes; base (delta encoding) is set in round one only.
	stream := func(pages pageSeq, base PageProvider) error {
		if workers >= 1 {
			return runSourcePipeline(ctx, w, v, pages, encs, base, &m)
		}
		return sendSequential(ctx, w, v, pages, seqEnc, base, &m)
	}

	// Reset the dirty log: everything the guest writes from here on must be
	// re-sent in a later round.
	v.HarvestDirty()

	// gateDetail renders the entropy gate's per-round hit rate for round
	// traces (attempted/skipped deltas since the given snapshot).
	gateDetail := func(att, skip int) string {
		if !opts.Compress {
			return ""
		}
		return fmt.Sprintf("gate_attempted=%d gate_skipped=%d",
			m.CompressAttempted-att, m.CompressSkipped-skip)
	}

	// Round 1: walk every page. With a destination checksum set, redundant
	// pages shrink to (page number, checksum). Encoding runs on the worker
	// pool; messages are still emitted in page order.
	m.Rounds = 1
	roundStart := cw.n
	frameStart := m.PageFrames
	attStart, skipStart := m.CompressAttempted, m.CompressSkipped
	if err := stream(seqAll(v.NumPages()), opts.DeltaBase); err != nil {
		return m, err
	}
	if err := writeRoundEnd(w, 1, uint64(v.DirtyCount())); err != nil {
		return m, err
	}
	if err := flush(w); err != nil {
		return m, err
	}
	opts.OnEvent.emit(Event{Kind: EventRound, Round: 1,
		Pages: int64(v.NumPages()), Bytes: cw.n - roundStart,
		Frames: int64(m.PageFrames - frameStart),
		Detail: gateDetail(attStart, skipStart)})

	// Iterative rounds: resend pages dirtied while the previous round
	// streamed. A dirty page whose new content is already in the
	// destination's checkpoint index still shrinks to a checksum — the
	// destination resolves msgPageSum via its index in any round. The final
	// round runs with the guest paused.
	paused := false
	defer func() {
		if paused && opts.Resume != nil {
			opts.Resume()
		}
	}()
	var dirtyList []int
	for round := 2; ; round++ {
		if err := ctx.Err(); err != nil {
			return m, err
		}
		final := round >= opts.MaxRounds || v.DirtyCount() <= opts.StopThreshold
		if final && !paused {
			if opts.Pause != nil {
				opts.Pause()
			}
			paused = true
			opts.OnEvent.emit(Event{Kind: EventPause, Round: round,
				Pages: int64(v.DirtyCount())})
		}
		dirty := v.HarvestDirty()
		m.Rounds = round
		dirtyList = dirtyList[:0]
		dirty.ForEachSet(func(page int) {
			dirtyList = append(dirtyList, page)
		})
		roundStart = cw.n
		frameStart = m.PageFrames
		attStart, skipStart = m.CompressAttempted, m.CompressSkipped
		if err := stream(seqList(dirtyList), nil); err != nil {
			return m, err
		}
		if err := writeRoundEnd(w, uint32(round), uint64(len(dirtyList))); err != nil {
			return m, err
		}
		if err := flush(w); err != nil {
			return m, err
		}
		opts.OnEvent.emit(Event{Kind: EventRound, Round: round,
			Pages: int64(len(dirtyList)), Bytes: cw.n - roundStart,
			Frames: int64(m.PageFrames - frameStart),
			Detail: gateDetail(attStart, skipStart)})
		if final {
			break
		}
	}

	if err := writeMsgType(w, msgDone); err != nil {
		return m, err
	}
	if err := flush(w); err != nil {
		return m, err
	}
	t, err = readMsgType(r)
	if err != nil {
		return m, err
	}
	if t != msgAck {
		return m, fmt.Errorf("%w: expected ack, got %v", ErrProtocol, t)
	}
	if paused {
		opts.OnEvent.emit(Event{Kind: EventResume})
	}
	m.Duration = time.Since(start)
	opts.OnEvent.emit(Event{Kind: EventDone, Bytes: cw.n})
	return m, nil
}

// sendFullPage writes a full-page message, deflated when a compressor is
// configured, the entropy gate admits the page, and it actually shrinks.
func sendFullPage(w io.Writer, page uint64, sum checksum.Sum, data []byte, comp *pageCompressor, m *Metrics) error {
	if comp != nil {
		if !compressible(data) {
			m.CompressSkipped++
			return writePageFull(w, page, sum, data)
		}
		m.CompressAttempted++
		z, ok, err := comp.compress(data)
		if err != nil {
			return err
		}
		if ok {
			m.PagesCompressed++
			m.CompressionSavedBytes += int64(len(data) - len(z) - 4)
			return writePageFullZ(w, page, sum, z)
		}
	}
	return writePageFull(w, page, sum, data)
}

// sendSequential is the single-goroutine engine: it runs the same
// batchPages-sized units as the pipeline (fill, encode, one buffered write
// per batch) in order on the calling goroutine — the reference
// implementation the pipeline is tested against, sharing its batch path so
// the two cannot drift. Cancellation is checked once per batch.
func sendSequential(ctx context.Context, w io.Writer, v *vm.VM, pages pageSeq, enc *sourceEncoder, base PageProvider, m *Metrics) error {
	n := pages.len()
	b := batchPool.Get().(*pageBatch)
	defer putBatch(b)
	for off := 0; off < n; off += batchPages {
		if err := ctx.Err(); err != nil {
			return err
		}
		cnt := batchPages
		if off+cnt > n {
			cnt = n - off
		}
		b.pages = b.pages[:cnt]
		for i := 0; i < cnt; i++ {
			b.pages[i] = pages.at(off + i)
		}
		fillBatch(v, b)
		// Hash offload: digest the batch on a small pool while this
		// goroutine still owns the encode loop (the pipelined engine hashes
		// inside its workers already). The tail batch may skip the offload,
		// so stale sums from the previous batch must not linger.
		b.sums = b.sums[:0]
		offloadBatchSums(enc.alg, b)
		if err := encodeBatch(enc, base, b); err != nil {
			return err
		}
		if _, err := w.Write(b.buf.Bytes()); err != nil {
			return err
		}
		m.addPageCounters(b.m)
		b.buf.Reset()
		b.m = Metrics{}
	}
	return nil
}

// deltaLimit caps delta size: beyond half a page the full (or compressed)
// encoding is at least as good once framing is paid.
const deltaLimit = vm.PageSize / 2
