package core

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"vecycle/internal/checksum"
	"vecycle/internal/delta"
	"vecycle/internal/vm"
)

// Common protocol errors.
var (
	// ErrRejected is returned when the destination refuses the migration.
	ErrRejected = errors.New("core: destination rejected migration")
	// ErrProtocol is returned on unexpected messages or malformed frames.
	ErrProtocol = errors.New("core: protocol violation")
)

// SourceOptions configures an outgoing migration.
type SourceOptions struct {
	// Alg is the page-checksum algorithm; it must be strong (MD5, SHA-256)
	// because matches are declared across hosts without byte comparison
	// (§3.4). Defaults to MD5.
	Alg checksum.Algorithm
	// Recycle enables checkpoint-assisted mode. When false the engine
	// behaves like stock QEMU pre-copy: every first-round page is sent in
	// full.
	Recycle bool
	// KnownDestSums carries the checksum set this host observed while it
	// was the *destination* of a previous migration of this VM from the
	// current peer — the ping-pong optimization of §3.2. When set, the
	// destination's bulk announcement is skipped.
	KnownDestSums *checksum.Set
	// MaxRounds bounds the number of pre-copy rounds, including the final
	// stop-and-copy round. Defaults to 4.
	MaxRounds int
	// StopThreshold is the dirty-page count at which the engine proceeds to
	// the final round. Defaults to 64.
	StopThreshold int
	// Compress deflates full-page payloads (Svärd et al.'s orthogonal
	// optimization, combinable with checkpoint recycling). Pages that do
	// not shrink are sent raw.
	Compress bool
	// ChecksumWorkers parallelizes the first round's page checksumming —
	// §3.4's remedy when the checksum rate, not the network, bounds the
	// migration (10/40 GbE). Values below 2 keep the sequential path.
	ChecksumWorkers int
	// DeltaBase supplies the content the destination's RAM will hold after
	// its checkpoint bootstrap, per frame — typically this host's own
	// mirror of the peer's checkpoint (checkpoint.Checkpoint satisfies the
	// interface). When set, a changed page whose frame diverged only
	// partially is sent as an XBZRLE delta (Svärd et al.). Deltas are used
	// in the first round only: later rounds cannot assume the destination
	// frame still holds checkpoint content.
	DeltaBase PageProvider
	// Pause, when non-nil, is invoked before the final round so the caller
	// can stop the guest workload (the stop-and-copy pause). Resume, when
	// non-nil, is invoked after the destination acknowledges.
	Pause  func()
	Resume func()
}

func (o *SourceOptions) setDefaults() {
	if o.Alg == 0 {
		o.Alg = checksum.MD5
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 4
	}
	if o.StopThreshold <= 0 {
		o.StopThreshold = 64
	}
}

func (o *SourceOptions) validate() error {
	if !o.Alg.Valid() {
		return fmt.Errorf("core: invalid checksum algorithm")
	}
	if !o.Alg.Strong() {
		return fmt.Errorf("core: %v is not collision-resistant enough for cross-host matching", o.Alg)
	}
	return nil
}

// PageProvider supplies the page content a delta can be based on.
// *checkpoint.Checkpoint implements it.
type PageProvider interface {
	// PageAt returns the content of page frame i, ok=false when the frame
	// is not covered.
	PageAt(frame int) (data []byte, ok bool, err error)
}

// MigrateSource drives the source side of a live migration of v over conn.
// The guest may keep running (writing pages) throughout; the caller's
// Pause hook is invoked before the final stop-and-copy round.
//
// Cancelling ctx aborts the migration: the cancellation is observed at
// every protocol turn-taking point, and — when conn supports deadlines or
// Abort (net.Conn, DeadlineConn) — also interrupts an in-flight blocking
// read or write. The returned error is then ctx.Err().
//
// On success the returned metrics describe the transfer as seen from the
// source. The caller is responsible for writing the outgoing checkpoint
// afterwards (checkpoint.Store.Save) — excluded from the migration time,
// as in the paper's measurements.
func MigrateSource(ctx context.Context, conn io.ReadWriter, v *vm.VM, opts SourceOptions) (m Metrics, err error) {
	ctx = orBackground(ctx)
	stop := watchContext(ctx, conn)
	defer stop()
	defer func() {
		if err != nil && ctx.Err() != nil {
			err = ctx.Err()
		}
	}()
	opts.setDefaults()
	if err := opts.validate(); err != nil {
		return m, err
	}

	var comp *pageCompressor
	if opts.Compress {
		c, err := newPageCompressor()
		if err != nil {
			return m, err
		}
		comp = c
	}

	start := time.Now()
	cw := &countingWriter{w: conn}
	cr := &countingReader{r: conn}
	w := bufio.NewWriterSize(cw, 1<<16)
	r := bufio.NewReaderSize(cr, 1<<16)
	defer func() {
		m.BytesSent = cw.n
		m.BytesReceived = cr.n
	}()

	h := hello{
		Version:      ProtocolVersion,
		VMName:       v.Name(),
		PageSize:     vm.PageSize,
		PageCount:    uint64(v.NumPages()),
		Alg:          opts.Alg,
		Recycle:      opts.Recycle,
		SkipAnnounce: opts.Recycle && opts.KnownDestSums != nil,
	}
	if err := writeHello(w, h); err != nil {
		return m, err
	}
	if err := flush(w); err != nil {
		return m, err
	}

	t, err := readMsgType(r)
	if err != nil {
		return m, err
	}
	if t != msgHelloAck {
		return m, fmt.Errorf("%w: expected hello-ack, got %v", ErrProtocol, t)
	}
	ack, err := readHelloAck(r)
	if err != nil {
		return m, err
	}
	if !ack.OK {
		return m, fmt.Errorf("%w: %s", ErrRejected, ack.Reason)
	}

	// Determine the set of checksums available at the destination.
	var destSums *checksum.Set
	switch {
	case !opts.Recycle || !ack.HaveCheckpoint:
		// Baseline mode, or the destination found no checkpoint: full first
		// round.
	case h.SkipAnnounce:
		destSums = opts.KnownDestSums
	default:
		t, err := readMsgType(r)
		if err != nil {
			return m, err
		}
		if t != msgHashAnnounce {
			return m, fmt.Errorf("%w: expected hash-announce, got %v", ErrProtocol, t)
		}
		before := cr.n
		destSums, err = readHashAnnounce(r)
		if err != nil {
			return m, err
		}
		m.AnnounceBytes = cr.n - before
	}

	// Delta encoding is only sound when the destination actually
	// bootstrapped from its checkpoint.
	if !ack.HaveCheckpoint || !opts.Recycle {
		opts.DeltaBase = nil
	}

	// Reset the dirty log: everything the guest writes from here on must be
	// re-sent in a later round.
	v.HarvestDirty()

	// Round 1: walk every page. With a destination checksum set, redundant
	// pages shrink to (page number, checksum). Checksum computation can run
	// on several workers; messages are still emitted in page order.
	m.Rounds = 1
	buf := make([]byte, vm.PageSize)
	if err := firstRound(ctx, w, v, opts, destSums, comp, &m); err != nil {
		return m, err
	}
	if err := writeRoundEnd(w, 1, uint64(v.DirtyCount())); err != nil {
		return m, err
	}
	if err := flush(w); err != nil {
		return m, err
	}

	// Iterative rounds: resend pages dirtied while the previous round
	// streamed. The final round runs with the guest paused.
	paused := false
	defer func() {
		if paused && opts.Resume != nil {
			opts.Resume()
		}
	}()
	for round := 2; ; round++ {
		if err := ctx.Err(); err != nil {
			return m, err
		}
		final := round >= opts.MaxRounds || v.DirtyCount() <= opts.StopThreshold
		if final && !paused {
			if opts.Pause != nil {
				opts.Pause()
			}
			paused = true
		}
		dirty := v.HarvestDirty()
		m.Rounds = round
		sent := 0
		var werr error
		dirty.ForEachSet(func(page int) {
			if werr != nil {
				return
			}
			v.ReadPage(page, buf)
			sum := opts.Alg.Page(buf)
			m.PagesFull++
			sent++
			werr = sendFullPage(w, uint64(page), sum, buf, comp, &m)
		})
		if werr != nil {
			return m, werr
		}
		if err := writeRoundEnd(w, uint32(round), uint64(sent)); err != nil {
			return m, err
		}
		if err := flush(w); err != nil {
			return m, err
		}
		if final {
			break
		}
	}

	if err := writeMsgType(w, msgDone); err != nil {
		return m, err
	}
	if err := flush(w); err != nil {
		return m, err
	}
	t, err = readMsgType(r)
	if err != nil {
		return m, err
	}
	if t != msgAck {
		return m, fmt.Errorf("%w: expected ack, got %v", ErrProtocol, t)
	}
	m.Duration = time.Since(start)
	return m, nil
}

// sendFullPage writes a full-page message, deflated when a compressor is
// configured and the page actually shrinks.
func sendFullPage(w io.Writer, page uint64, sum checksum.Sum, data []byte, comp *pageCompressor, m *Metrics) error {
	if comp != nil {
		z, ok, err := comp.compress(data)
		if err != nil {
			return err
		}
		if ok {
			m.PagesCompressed++
			m.CompressionSavedBytes += int64(len(data) - len(z) - 4)
			return writePageFullZ(w, page, sum, z)
		}
	}
	return writePageFull(w, page, sum, data)
}

// firstRound streams every page of the VM, batching reads and (optionally)
// parallelizing the checksum computation across opts.ChecksumWorkers.
// Cancellation is checked once per batch.
func firstRound(ctx context.Context, w io.Writer, v *vm.VM, opts SourceOptions, destSums *checksum.Set, comp *pageCompressor, m *Metrics) error {
	const batchPages = 256
	workers := opts.ChecksumWorkers
	if workers < 1 {
		workers = 1
	}
	batch := make([]byte, batchPages*vm.PageSize)
	sums := make([]checksum.Sum, batchPages)

	for start := 0; start < v.NumPages(); start += batchPages {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := start + batchPages
		if end > v.NumPages() {
			end = v.NumPages()
		}
		n := end - start
		for i := 0; i < n; i++ {
			v.ReadPage(start+i, batch[i*vm.PageSize:(i+1)*vm.PageSize])
		}
		if workers == 1 || n < workers {
			for i := 0; i < n; i++ {
				sums[i] = opts.Alg.Page(batch[i*vm.PageSize : (i+1)*vm.PageSize])
			}
		} else {
			var wg sync.WaitGroup
			for wkr := 0; wkr < workers; wkr++ {
				wg.Add(1)
				go func(wkr int) {
					defer wg.Done()
					for i := wkr; i < n; i += workers {
						sums[i] = opts.Alg.Page(batch[i*vm.PageSize : (i+1)*vm.PageSize])
					}
				}(wkr)
			}
			wg.Wait()
		}
		for i := 0; i < n; i++ {
			page := uint64(start + i)
			data := batch[i*vm.PageSize : (i+1)*vm.PageSize]
			if destSums != nil && destSums.Contains(sums[i]) {
				m.PagesSum++
				if err := writePageSum(w, page, sums[i]); err != nil {
					return err
				}
				continue
			}
			if opts.DeltaBase != nil {
				sent, err := tryDelta(w, opts.DeltaBase, page, sums[i], data, m)
				if err != nil {
					return err
				}
				if sent {
					continue
				}
			}
			m.PagesFull++
			if err := sendFullPage(w, page, sums[i], data, comp, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// deltaLimit caps delta size: beyond half a page the full (or compressed)
// encoding is at least as good once framing is paid.
const deltaLimit = vm.PageSize / 2

// tryDelta attempts an XBZRLE delta of data against the provider's content
// for the frame. sent reports whether a message was written.
func tryDelta(w io.Writer, base PageProvider, page uint64, sum checksum.Sum, data []byte, m *Metrics) (sent bool, err error) {
	old, ok, err := base.PageAt(int(page))
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	enc, err := delta.Encode(nil, old, data, deltaLimit)
	if errors.Is(err, delta.ErrTooLarge) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := writePageHeader(w, msgPageDelta, page, sum); err != nil {
		return false, err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(enc)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return false, fmt.Errorf("core: write delta length: %w", err)
	}
	if _, err := w.Write(enc); err != nil {
		return false, fmt.Errorf("core: write delta payload: %w", err)
	}
	m.PagesDelta++
	m.DeltaSavedBytes += int64(vm.PageSize - len(enc) - 4)
	return true, nil
}
