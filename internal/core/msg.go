// Package core implements VeCycle's live-migration protocol (§3): an
// iterative pre-copy engine whose first round optionally eliminates
// redundant transfers against a checkpoint stored at the destination.
//
// Source side (§3.2): for every page of the first round, compute a strong
// checksum; if the destination announced that checksum, send only (page
// number, checksum), otherwise send the full page, with the checksum
// attached so the receiver need not recompute it. Later rounds carry only
// pages dirtied while the previous round streamed, always in full — "we
// consider it unlikely that a page updated between copy rounds matches a
// page already present at the destination".
//
// Destination side (§3.3): bootstrap RAM by sequentially reading the local
// checkpoint, recording one checksum per 4 KiB block with its file offset;
// announce the checksum set in bulk; then merge incoming messages per
// Listing 1 — a received checksum that does not match the resident frame is
// looked up in the checkpoint index and the block re-read from disk.
package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"vecycle/internal/checksum"
)

// ProtocolVersion guards against mixed deployments.
const ProtocolVersion uint16 = 1

// msgType tags each wire message.
type msgType uint8

// Wire message types.
const (
	msgHello        msgType = iota + 1 // source → destination: session parameters
	msgHelloAck                        // destination → source: accept/reject
	msgHashAnnounce                    // destination → source: checksums available locally
	msgPageSum                         // source → destination: page reusable from checkpoint
	msgPageFull                        // source → destination: page payload
	msgRoundEnd                        // source → destination: pre-copy round boundary
	msgDone                            // source → destination: stop-and-copy complete
	msgAck                             // destination → source: merge complete, VM may resume
	msgPageFullZ                       // source → destination: deflate-compressed page payload
	msgPageDelta                       // source → destination: XBZRLE delta against the checkpoint frame
	// msgHashAnnounceV2 replaces msgHashAnnounce when both ends negotiated
	// the compact-announce capability in the hello exchange: same checksum
	// set, delta-encoded and deflated (checksum.EncodeSetCompact).
	msgHashAnnounceV2 // destination → source: compact checksum announcement
	// Coalesced page-range frames (tags 12-15): one frame carries a
	// contiguous run of 2..MaxRangePages pages that all received the same
	// treatment (checksum-only, full, compressed, delta). Only sent after
	// the range-frame capability was negotiated in the hello exchange;
	// unnegotiated peers keep the byte-exact per-page stream above.
	msgRangeSum   // source → destination: run of checkpoint-reusable pages
	msgRangeFull  // source → destination: run of raw page payloads
	msgRangeFullZ // source → destination: run of deflate-compressed payloads
	msgRangeDelta // source → destination: run of XBZRLE deltas
)

func (m msgType) String() string {
	switch m {
	case msgHello:
		return "hello"
	case msgHelloAck:
		return "hello-ack"
	case msgHashAnnounce:
		return "hash-announce"
	case msgPageSum:
		return "page-sum"
	case msgPageFull:
		return "page-full"
	case msgRoundEnd:
		return "round-end"
	case msgDone:
		return "done"
	case msgAck:
		return "ack"
	case msgPageFullZ:
		return "page-full-z"
	case msgPageDelta:
		return "page-delta"
	case msgHashAnnounceV2:
		return "hash-announce-v2"
	case msgRangeSum:
		return "range-sum"
	case msgRangeFull:
		return "range-full"
	case msgRangeFullZ:
		return "range-full-z"
	case msgRangeDelta:
		return "range-delta"
	default:
		return fmt.Sprintf("msg(%d)", uint8(m))
	}
}

// hello carries the session parameters of an outgoing migration.
type hello struct {
	Version   uint16
	VMName    string
	PageSize  uint32
	PageCount uint64
	Alg       checksum.Algorithm
	// Recycle indicates the source wants checkpoint-assisted mode.
	Recycle bool
	// SkipAnnounce tells the destination the source already knows its
	// checksum set from a previous incoming migration — the ping-pong
	// optimization of §3.2.
	SkipAnnounce bool
	// PostCopy selects the post-copy protocol (manifest + demand fetch)
	// instead of iterative pre-copy.
	PostCopy bool
	// CompactAnnounce advertises that the source can decode the compact
	// (v2) hash announcement. Old peers ignore unknown flag bits, so the
	// capability degrades silently to the v1 byte stream.
	CompactAnnounce bool
	// RangeFrames advertises that the source wants to coalesce contiguous
	// same-treatment pages into page-range frames (tags 12-15). The
	// destination must echo acceptance in its hello-ack before any range
	// frame goes on the wire; old peers ignore the bit and keep the
	// byte-exact per-page stream.
	RangeFrames bool
}

// helloAck is the destination's response.
type helloAck struct {
	OK bool
	// Reason explains a rejection.
	Reason string
	// HaveCheckpoint reports whether a checkpoint was found and loaded; a
	// recycle-mode migration degrades to a full first round otherwise.
	HaveCheckpoint bool
	// CompactAnnounce confirms the destination will ship its announcement
	// in the compact (v2) frame. Only set when the source advertised the
	// capability in its hello.
	CompactAnnounce bool
	// PartialCheckpoint reports that the checkpoint behind HaveCheckpoint
	// is a salvage image — pages persisted by an interrupted earlier
	// attempt, not a complete guest state. Purely informational: resume is
	// announce-driven (the announcement carries exactly the sums the
	// salvage image holds), so the wire sequence is unchanged; the source
	// uses the bit to skip delta encoding (its mirror of the last complete
	// checkpoint no longer describes the destination's RAM) and to label
	// traces. Old sources ignore the unknown flag bit.
	PartialCheckpoint bool
	// RangeFrames confirms the destination will decode coalesced
	// page-range frames (tags 12-15). Only set when the source advertised
	// the capability in its hello; without it the source keeps the
	// per-page v1 stream.
	RangeFrames bool
}

const maxNameLen = 1024

// writeMsgType emits just the tag byte.
func writeMsgType(w io.Writer, t msgType) error {
	if _, err := w.Write([]byte{byte(t)}); err != nil {
		return fmt.Errorf("core: write %v tag: %w", t, err)
	}
	return nil
}

// readMsgType consumes one tag byte.
func readMsgType(r io.Reader) (msgType, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("core: read message tag: %w", err)
	}
	return msgType(b[0]), nil
}

func writeHello(w io.Writer, h hello) error {
	// Validate before the tag byte goes out: failing after a partial frame
	// would leave the stream desynced for any later traffic.
	if len(h.VMName) > maxNameLen {
		return fmt.Errorf("core: VM name of %d bytes exceeds limit %d", len(h.VMName), maxNameLen)
	}
	if err := writeMsgType(w, msgHello); err != nil {
		return err
	}
	var flags uint8
	if h.Recycle {
		flags |= 1
	}
	if h.SkipAnnounce {
		flags |= 2
	}
	if h.PostCopy {
		flags |= 4
	}
	if h.CompactAnnounce {
		flags |= 8
	}
	if h.RangeFrames {
		flags |= 16
	}
	fields := []interface{}{
		h.Version,
		uint16(len(h.VMName)),
	}
	for _, f := range fields {
		if err := binary.Write(w, binary.LittleEndian, f); err != nil {
			return fmt.Errorf("core: write hello: %w", err)
		}
	}
	if _, err := io.WriteString(w, h.VMName); err != nil {
		return fmt.Errorf("core: write hello name: %w", err)
	}
	rest := []interface{}{h.PageSize, h.PageCount, uint8(h.Alg), flags}
	for _, f := range rest {
		if err := binary.Write(w, binary.LittleEndian, f); err != nil {
			return fmt.Errorf("core: write hello: %w", err)
		}
	}
	return nil
}

// readHello parses a hello after its tag byte has been consumed.
func readHello(r io.Reader) (hello, error) {
	var h hello
	if err := binary.Read(r, binary.LittleEndian, &h.Version); err != nil {
		return h, fmt.Errorf("core: read hello version: %w", err)
	}
	var nameLen uint16
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return h, fmt.Errorf("core: read hello name length: %w", err)
	}
	if int(nameLen) > maxNameLen {
		return h, fmt.Errorf("core: hello name of %d bytes exceeds limit %d", nameLen, maxNameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return h, fmt.Errorf("core: read hello name: %w", err)
	}
	h.VMName = string(name)
	var alg uint8
	var flags uint8
	for _, f := range []interface{}{&h.PageSize, &h.PageCount, &alg, &flags} {
		if err := binary.Read(r, binary.LittleEndian, f); err != nil {
			return h, fmt.Errorf("core: read hello: %w", err)
		}
	}
	h.Alg = checksum.Algorithm(alg)
	h.Recycle = flags&1 != 0
	h.SkipAnnounce = flags&2 != 0
	h.PostCopy = flags&4 != 0
	h.CompactAnnounce = flags&8 != 0
	h.RangeFrames = flags&16 != 0
	return h, nil
}

func writeHelloAck(w io.Writer, a helloAck) error {
	if err := writeMsgType(w, msgHelloAck); err != nil {
		return err
	}
	var flags uint8
	if a.OK {
		flags |= 1
	}
	if a.HaveCheckpoint {
		flags |= 2
	}
	if a.CompactAnnounce {
		flags |= 4
	}
	if a.PartialCheckpoint {
		flags |= 8
	}
	if a.RangeFrames {
		flags |= 16
	}
	if len(a.Reason) > maxNameLen {
		a.Reason = a.Reason[:maxNameLen]
	}
	if err := binary.Write(w, binary.LittleEndian, flags); err != nil {
		return fmt.Errorf("core: write hello-ack: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(a.Reason))); err != nil {
		return fmt.Errorf("core: write hello-ack reason length: %w", err)
	}
	if _, err := io.WriteString(w, a.Reason); err != nil {
		return fmt.Errorf("core: write hello-ack reason: %w", err)
	}
	return nil
}

// readHelloAck parses a helloAck after its tag byte.
func readHelloAck(r io.Reader) (helloAck, error) {
	var a helloAck
	var flags uint8
	if err := binary.Read(r, binary.LittleEndian, &flags); err != nil {
		return a, fmt.Errorf("core: read hello-ack: %w", err)
	}
	a.OK = flags&1 != 0
	a.HaveCheckpoint = flags&2 != 0
	a.CompactAnnounce = flags&4 != 0
	a.PartialCheckpoint = flags&8 != 0
	a.RangeFrames = flags&16 != 0
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return a, fmt.Errorf("core: read hello-ack reason length: %w", err)
	}
	if int(n) > maxNameLen {
		return a, fmt.Errorf("core: hello-ack reason of %d bytes exceeds limit %d", n, maxNameLen)
	}
	reason := make([]byte, n)
	if _, err := io.ReadFull(r, reason); err != nil {
		return a, fmt.Errorf("core: read hello-ack reason: %w", err)
	}
	a.Reason = string(reason)
	return a, nil
}

func writeHashAnnounce(w io.Writer, set *checksum.Set) error {
	if err := writeMsgType(w, msgHashAnnounce); err != nil {
		return err
	}
	return checksum.EncodeSet(w, set)
}

// readHashAnnounce parses the bulk checksum set after the tag byte.
func readHashAnnounce(r io.Reader) (*checksum.Set, error) {
	return checksum.DecodeSet(r)
}

// writeHashAnnounceV2 emits the compact announcement; only sent after both
// ends negotiated the capability in the hello exchange.
func writeHashAnnounceV2(w io.Writer, set *checksum.Set) error {
	if err := writeMsgType(w, msgHashAnnounceV2); err != nil {
		return err
	}
	_, err := checksum.EncodeSetCompact(w, set)
	return err
}

// readHashAnnounceV2 parses the compact checksum set after the tag byte.
func readHashAnnounceV2(r io.Reader) (*checksum.Set, error) {
	return checksum.DecodeSetCompact(r)
}

// pageHeader is shared by msgPageSum and msgPageFull: the page number and
// its checksum. Sending the checksum with the full page "saves the receiver
// from re-computing the checksum for the received page".
func writePageHeader(w io.Writer, t msgType, page uint64, sum checksum.Sum) error {
	var buf [1 + 8 + checksum.Size]byte
	buf[0] = byte(t)
	binary.LittleEndian.PutUint64(buf[1:9], page)
	copy(buf[9:], sum[:])
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("core: write %v: %w", t, err)
	}
	return nil
}

func writePageSum(w io.Writer, page uint64, sum checksum.Sum) error {
	return writePageHeader(w, msgPageSum, page, sum)
}

func writePageFull(w io.Writer, page uint64, sum checksum.Sum, data []byte) error {
	if err := writePageHeader(w, msgPageFull, page, sum); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("core: write page payload: %w", err)
	}
	return nil
}

// readPageHeader parses the (page, sum) pair after the tag byte.
func readPageHeader(r io.Reader) (page uint64, sum checksum.Sum, err error) {
	var buf [8 + checksum.Size]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, sum, fmt.Errorf("core: read page header: %w", err)
	}
	page = binary.LittleEndian.Uint64(buf[:8])
	copy(sum[:], buf[8:])
	return page, sum, nil
}

func writeRoundEnd(w io.Writer, round uint32, dirty uint64) error {
	var buf [1 + 4 + 8]byte
	buf[0] = byte(msgRoundEnd)
	binary.LittleEndian.PutUint32(buf[1:5], round)
	binary.LittleEndian.PutUint64(buf[5:], dirty)
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("core: write round-end: %w", err)
	}
	return nil
}

// readRoundEnd parses a round boundary after the tag byte.
func readRoundEnd(r io.Reader) (round uint32, dirty uint64, err error) {
	var buf [4 + 8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, fmt.Errorf("core: read round-end: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:4]), binary.LittleEndian.Uint64(buf[4:]), nil
}

// flusher is implemented by buffered writers that need explicit flushing at
// protocol turn-taking points.
type flusher interface{ Flush() error }

func flush(w io.Writer) error {
	if f, ok := w.(flusher); ok {
		if err := f.Flush(); err != nil {
			return fmt.Errorf("core: flush: %w", err)
		}
	}
	return nil
}

var _ flusher = (*bufio.Writer)(nil)
