package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"vecycle/internal/checkpoint"
	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

// Post-copy migration (Hines & Gopalan, the paper's reference [13]),
// combined with checkpoint recycling. Where pre-copy streams memory while
// the guest still runs at the source, post-copy flips the order: the guest
// stops at the source immediately, a per-page checksum manifest crosses the
// wire, and the guest resumes at the destination while missing pages are
// fetched over the network. With a local checkpoint, "missing" shrinks to
// the pages whose content is genuinely new — the same set VeCycle's
// pre-copy first round would transfer — so recycling cuts exactly the
// post-copy phase during which the guest suffers remote page faults.
//
// Wire layout (after the shared hello/hello-ack):
//
//	source → destination: manifest = page count + one checksum per page
//	destination → source: page requests (page numbers), then done
//	source → destination: one full page per request, in request order
//	source → destination: ack after done
//
// Requests are pipelined: the destination writes them in windows of
// requestWindow pages and flushes once per window, then drains the
// responses in order. One network round trip is paid per window instead of
// per page — on the paper's WAN parameters (27 ms RTT) that is the
// difference between seconds and minutes of post-copy degradation.

// Additional message tags for the post-copy protocol.
const (
	msgManifest msgType = iota + 32
	msgPageRequest
)

// requestWindow is the number of pipelined page requests in flight per
// flush on the post-copy fetch path. 256 requests are 2.3 KiB on the wire
// (well inside one TCP window) and amortize one RTT over 1 MiB of pages.
const requestWindow = 256

// PostCopySourceOptions configures the source of a post-copy migration.
type PostCopySourceOptions struct {
	// Alg is the page-checksum algorithm (strong required). Defaults to MD5.
	Alg checksum.Algorithm
	// OnEvent, when non-nil, observes each protocol turn (hello, manifest,
	// fetch, done) for tracing. Emission never alters the wire stream.
	OnEvent EventFunc
}

// PostCopyMetrics extends the shared metrics with post-copy specifics.
type PostCopyMetrics struct {
	Metrics
	// ResumeDelay is how long after the migration started the guest could
	// resume at the destination — the figure of merit post-copy optimizes.
	// (On the source it is the time until the manifest was sent.)
	ResumeDelay time.Duration
	// PagesRequested counts pages served over the network after resume.
	PagesRequested int
}

// String summarizes the metrics in one line: the shared prefix of
// Metrics.String (identical field order and units on either side),
// followed by the post-copy specifics.
func (m PostCopyMetrics) String() string {
	return fmt.Sprintf("%s resume=%v fetched=%d",
		m.Metrics.String(), m.ResumeDelay, m.PagesRequested)
}

// PostCopySource runs the source side. The guest must already be paused:
// post-copy transfers a frozen state. The function returns once every
// requested page has been served and the destination confirmed completion.
// Cancelling ctx aborts at the next protocol turn.
func PostCopySource(ctx context.Context, conn io.ReadWriter, v *vm.VM, opts PostCopySourceOptions) (m PostCopyMetrics, err error) {
	ctx = orBackground(ctx)
	stop := watchContext(ctx, conn)
	defer stop()
	defer func() {
		if err != nil && ctx.Err() != nil {
			err = ctx.Err()
		}
	}()
	if opts.Alg == 0 {
		opts.Alg = checksum.MD5
	}
	if !opts.Alg.Valid() || !opts.Alg.Strong() {
		return m, fmt.Errorf("core: post-copy requires a strong checksum algorithm")
	}

	start := time.Now()
	cw := &countingWriter{w: conn}
	cr := &countingReader{r: conn}
	w := getDataWriter(cw)
	r := getCtlReader(cr)
	defer putDataWriter(w)
	defer putCtlReader(r)
	defer func() {
		m.BytesSent = cw.n
		m.BytesReceived = cr.n
	}()

	h := hello{
		Version:   ProtocolVersion,
		VMName:    v.Name(),
		PageSize:  vm.PageSize,
		PageCount: uint64(v.NumPages()),
		Alg:       opts.Alg,
		Recycle:   true,
		PostCopy:  true,
	}
	if err := writeHello(w, h); err != nil {
		return m, err
	}
	if err := flush(w); err != nil {
		return m, err
	}
	t, err := readMsgType(r)
	if err != nil {
		return m, err
	}
	if t != msgHelloAck {
		return m, fmt.Errorf("%w: expected hello-ack, got %v", ErrProtocol, t)
	}
	ack, err := readHelloAck(r)
	if err != nil {
		return m, err
	}
	if !ack.OK {
		return m, fmt.Errorf("%w: %s", ErrRejected, ack.Reason)
	}
	opts.OnEvent.emit(Event{Kind: EventHello, Pages: int64(v.NumPages()),
		Detail: fmt.Sprintf("have_checkpoint=%v", ack.HaveCheckpoint)})

	// Manifest: one checksum per page, in page order.
	manifestStart := cw.n
	if err := writeMsgType(w, msgManifest); err != nil {
		return m, err
	}
	var countBuf [8]byte
	binary.LittleEndian.PutUint64(countBuf[:], uint64(v.NumPages()))
	if _, err := w.Write(countBuf[:]); err != nil {
		return m, fmt.Errorf("core: write manifest count: %w", err)
	}
	buf := make([]byte, vm.PageSize)
	for i := 0; i < v.NumPages(); i++ {
		if i%8192 == 0 {
			if err := ctx.Err(); err != nil {
				return m, err
			}
		}
		v.ReadPage(i, buf)
		sum := opts.Alg.Page(buf)
		if _, err := w.Write(sum[:]); err != nil {
			return m, fmt.Errorf("core: write manifest sum %d: %w", i, err)
		}
	}
	if err := flush(w); err != nil {
		return m, err
	}
	m.ResumeDelay = time.Since(start)
	opts.OnEvent.emit(Event{Kind: EventManifest, Bytes: cw.n - manifestStart,
		Pages: int64(v.NumPages())})

	// Serve page requests until the destination is done. Responses are only
	// flushed once no further request is already buffered, so a pipelined
	// window of requests is answered with one batched write.
	for {
		if err := ctx.Err(); err != nil {
			return m, err
		}
		t, err := readMsgType(r)
		if err != nil {
			return m, err
		}
		switch t {
		case msgPageRequest:
			var pageBuf [8]byte
			if _, err := io.ReadFull(r, pageBuf[:]); err != nil {
				return m, fmt.Errorf("core: read page request: %w", err)
			}
			page := binary.LittleEndian.Uint64(pageBuf[:])
			if page >= uint64(v.NumPages()) {
				return m, fmt.Errorf("%w: requested page %d out of range", ErrProtocol, page)
			}
			v.ReadPage(int(page), buf)
			m.PagesRequested++
			m.PagesFull++
			if err := writePageFull(w, page, opts.Alg.Page(buf), buf); err != nil {
				return m, err
			}
			if r.Buffered() == 0 {
				if err := flush(w); err != nil {
					return m, err
				}
			}
		case msgDone:
			if err := writeMsgType(w, msgAck); err != nil {
				return m, err
			}
			if err := flush(w); err != nil {
				return m, err
			}
			m.Duration = time.Since(start)
			opts.OnEvent.emit(Event{Kind: EventFetch, Pages: int64(m.PagesRequested)})
			opts.OnEvent.emit(Event{Kind: EventDone, Bytes: cw.n})
			return m, nil
		default:
			return m, fmt.Errorf("%w: unexpected %v while serving pages", ErrProtocol, t)
		}
	}
}

// PostCopyDestOptions configures the destination side.
type PostCopyDestOptions struct {
	// Store is consulted for a checkpoint of the incoming VM.
	Store *checkpoint.Store
	// OnResume, when non-nil, is called the moment the guest could resume:
	// after the manifest has been resolved against local state, with the
	// number of pages still missing (to be demand-fetched).
	OnResume func(missing int)
	// OnEvent, when non-nil, observes each protocol turn (hello, manifest,
	// resume, fetch, done) for tracing. Emission never alters the wire
	// stream.
	OnEvent EventFunc
}

// PostCopyDestResult reports the outcome at the destination.
type PostCopyDestResult struct {
	Metrics PostCopyMetrics
	// UsedCheckpoint reports whether a local checkpoint was available.
	UsedCheckpoint bool
}

// PostCopyDest runs the destination side: resolve the manifest against the
// local checkpoint, "resume" the guest, then fetch the missing pages.
func PostCopyDest(ctx context.Context, conn io.ReadWriter, v *vm.VM, opts PostCopyDestOptions) (PostCopyDestResult, error) {
	s, err := Accept(ctx, conn)
	if err != nil {
		return PostCopyDestResult{}, err
	}
	return s.RunPostCopy(ctx, v, opts)
}

// IsPostCopy reports whether the accepted session requests the post-copy
// protocol.
func (s *IncomingSession) IsPostCopy() bool { return s.h.PostCopy }

// RunPostCopy completes an accepted post-copy migration into v. Cancelling
// ctx aborts at the next protocol turn (request-window boundaries during the
// fetch phase).
func (s *IncomingSession) RunPostCopy(ctx context.Context, v *vm.VM, opts PostCopyDestOptions) (res PostCopyDestResult, err error) {
	ctx = orBackground(ctx)
	stop := watchContext(ctx, s.conn)
	defer stop()
	defer func() {
		if err != nil && ctx.Err() != nil {
			err = ctx.Err()
		}
	}()
	h := s.h
	w, r := s.w, s.r
	defer s.release()
	defer func() {
		res.Metrics.BytesSent = s.cw.n
		res.Metrics.BytesReceived = s.cr.n
	}()

	if reason := validateHello(h, v); reason != "" {
		_ = writeHelloAck(w, helloAck{OK: false, Reason: reason})
		_ = flush(w)
		return res, fmt.Errorf("%w: %s", ErrRejected, reason)
	}

	var cp *checkpoint.Checkpoint
	if opts.Store != nil && opts.Store.Has(h.VMName) {
		cp, err = opts.Store.Restore(h.VMName, h.Alg, v)
		if err != nil {
			cp = nil
		}
	}
	err = nil
	if cp != nil {
		defer cp.Close()
		res.UsedCheckpoint = true
	}
	start := time.Now()
	if err := writeHelloAck(w, helloAck{OK: true, HaveCheckpoint: cp != nil}); err != nil {
		return res, err
	}
	if err := flush(w); err != nil {
		return res, err
	}
	opts.OnEvent.emit(Event{Kind: EventHello, Pages: int64(h.PageCount),
		Detail: fmt.Sprintf("have_checkpoint=%v", cp != nil)})

	// Manifest.
	manifestStart := s.cr.n
	t, err := readMsgType(r)
	if err != nil {
		return res, err
	}
	if t != msgManifest {
		return res, fmt.Errorf("%w: expected manifest, got %v", ErrProtocol, t)
	}
	var countBuf [8]byte
	if _, err := io.ReadFull(r, countBuf[:]); err != nil {
		return res, fmt.Errorf("core: read manifest count: %w", err)
	}
	count := binary.LittleEndian.Uint64(countBuf[:])
	if count != uint64(v.NumPages()) {
		return res, fmt.Errorf("%w: manifest covers %d pages, VM has %d", ErrProtocol, count, v.NumPages())
	}

	// Resolve each page locally where possible.
	var missing []uint64
	var sum checksum.Sum
	for i := uint64(0); i < count; i++ {
		if i%8192 == 0 {
			if err := ctx.Err(); err != nil {
				return res, err
			}
		}
		if _, err := io.ReadFull(r, sum[:]); err != nil {
			return res, fmt.Errorf("core: read manifest sum %d: %w", i, err)
		}
		if cp == nil {
			missing = append(missing, i)
			continue
		}
		if v.PageSum(int(i), h.Alg) == sum {
			res.Metrics.PagesReusedInPlace++
			continue
		}
		if data, ok, err := cp.ReadBlock(sum); err != nil {
			return res, recycleReadErr(err)
		} else if ok {
			v.InstallPage(int(i), data)
			cp.Release(data)
			res.Metrics.PagesReusedFromDisk++
			continue
		}
		missing = append(missing, i)
	}

	// The guest can resume now: every resident page is final; the missing
	// ones fault over the network as touched.
	res.Metrics.ResumeDelay = time.Since(start)
	opts.OnEvent.emit(Event{Kind: EventManifest, Bytes: s.cr.n - manifestStart,
		Pages: int64(len(missing))})
	opts.OnEvent.emit(Event{Kind: EventResume, Pages: int64(len(missing))})
	if opts.OnResume != nil {
		opts.OnResume(len(missing))
	}

	// Background pre-paging: request the missing pages in order, pipelined
	// in windows — one flush (and so one round trip) per requestWindow
	// pages instead of one per page.
	pageBuf := make([]byte, vm.PageSize)
	for start := 0; start < len(missing); start += requestWindow {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		end := start + requestWindow
		if end > len(missing) {
			end = len(missing)
		}
		for _, page := range missing[start:end] {
			var reqBuf [9]byte
			reqBuf[0] = byte(msgPageRequest)
			binary.LittleEndian.PutUint64(reqBuf[1:], page)
			if _, err := w.Write(reqBuf[:]); err != nil {
				return res, fmt.Errorf("core: write page request: %w", err)
			}
		}
		if err := flush(w); err != nil {
			return res, err
		}
		for _, page := range missing[start:end] {
			t, err := readMsgType(r)
			if err != nil {
				return res, err
			}
			if t != msgPageFull {
				return res, fmt.Errorf("%w: expected page-full, got %v", ErrProtocol, t)
			}
			got, gotSum, err := readPageHeader(r)
			if err != nil {
				return res, err
			}
			if got != page {
				return res, fmt.Errorf("%w: requested page %d, received %d", ErrProtocol, page, got)
			}
			if _, err := io.ReadFull(r, pageBuf); err != nil {
				return res, fmt.Errorf("core: read page %d payload: %w", page, err)
			}
			if h.Alg.Page(pageBuf) != gotSum {
				return res, fmt.Errorf("%w: page %d payload checksum mismatch", ErrProtocol, page)
			}
			v.InstallPage(int(page), pageBuf)
			res.Metrics.PagesRequested++
			res.Metrics.PagesFull++
		}
	}
	if err := writeMsgType(w, msgDone); err != nil {
		return res, err
	}
	if err := flush(w); err != nil {
		return res, err
	}
	if t, err = readMsgType(r); err != nil {
		return res, err
	}
	if t != msgAck {
		return res, fmt.Errorf("%w: expected ack, got %v", ErrProtocol, t)
	}
	res.Metrics.Duration = time.Since(start)
	opts.OnEvent.emit(Event{Kind: EventFetch, Pages: int64(res.Metrics.PagesRequested)})
	opts.OnEvent.emit(Event{Kind: EventDone, Bytes: s.cr.n})
	return res, nil
}
