package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vecycle/internal/checksum"
	"vecycle/internal/vm"
)

const goldenPages = 600

// fillGolden writes the pre-checkpoint state: compressible pages, random
// pages, and a tail of zero pages — all deterministic, so every call
// reconstructs the identical guest.
func fillGolden(src *vm.VM) {
	rng := rand.New(rand.NewSource(1234))
	buf := make([]byte, vm.PageSize)
	for i := 0; i < 240; i++ { // low-entropy: exercises deflate
		for j := range buf {
			buf[j] = byte((j % 32) * (i + 1))
		}
		src.WritePage(i, buf)
	}
	for i := 240; i < 480; i++ { // high-entropy: deflate falls back to raw
		rng.Read(buf)
		src.WritePage(i, buf)
	}
	// 480..599 stay zero.
}

// mutateGolden diverges the guest from its checkpoint: small in-place edits
// (delta-friendly), full rewrites (delta too large), everything else left
// matching (checksum-eliminated).
func mutateGolden(src *vm.VM) {
	rng := rand.New(rand.NewSource(5678))
	buf := make([]byte, vm.PageSize)
	for i := 240; i < 300; i++ {
		src.ReadPage(i, buf)
		for k := 0; k < 8; k++ {
			buf[(k*571)%vm.PageSize] ^= 0x5a
		}
		src.WritePage(i, buf)
	}
	for i := 300; i < 360; i++ {
		rng.Read(buf)
		src.WritePage(i, buf)
	}
	for i := 360; i < 420; i++ { // compressible rewrites: range-full-z runs
		for j := range buf {
			buf[j] = byte((j % 16) * (i + 3))
		}
		src.WritePage(i, buf)
	}
	for i := 420; i < 440; i++ { // mid-entropy rewrites: half random, half
		// zero — between the gate's clear-cut classes, lands on the
		// compressible side and must classify identically at every width
		rng.Read(buf[:vm.PageSize/2])
		for j := vm.PageSize / 2; j < vm.PageSize; j++ {
			buf[j] = 0
		}
		src.WritePage(i, buf)
	}
}

// goldenPause generates the round-2 (stop-and-copy) traffic: one page whose
// new content already sits in the destination checkpoint (iterative-round
// checksum elimination), one genuinely new random page, one compressible
// page.
func goldenPause(src *vm.VM) {
	buf := make([]byte, vm.PageSize)
	src.ReadPage(5, buf) // page 5 is unchanged checkpoint content
	src.WritePage(520, buf)
	rand.New(rand.NewSource(91)).Read(buf)
	src.WritePage(521, buf)
	for j := range buf {
		buf[j] = byte(j % 7)
	}
	src.WritePage(522, buf)
}

// recordConn tees everything the source writes. The recording is read only
// after the migration goroutines are joined.
type recordConn struct {
	net.Conn
	rec bytes.Buffer
}

func (c *recordConn) Write(p []byte) (int, error) {
	c.rec.Write(p)
	return c.Conn.Write(p)
}

// goldenRun migrates a freshly reconstructed golden guest with the given
// worker count and returns the exact byte stream the source emitted.
// onEvent, when non-nil, is installed on both endpoints — the golden
// comparison then proves observability never reaches the wire. legacy pins
// both endpoints to the per-page v1 stream (no range frames).
func goldenRun(t *testing.T, workers int, onEvent EventFunc, legacy bool) ([]byte, Metrics, *vm.VM) {
	t.Helper()
	src, err := vm.New(vm.Config{Name: "vm0", MemBytes: goldenPages * vm.PageSize, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fillGolden(src)
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	mutateGolden(src)
	base, err := store.Restore("vm0", checksum.MD5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	dst := newVM(t, "vm0", goldenPages, int64(1000+workers))
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	rc := &recordConn{Conn: a}

	var (
		wg   sync.WaitGroup
		sm   Metrics
		serr error
		derr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		sm, serr = MigrateSource(context.Background(), rc, src, SourceOptions{
			Recycle:       true,
			Compress:      true,
			DeltaBase:     base,
			Workers:       workers,
			NoRangeFrames: legacy,
			Pause:         func() { goldenPause(src) },
			OnEvent:       onEvent,
		})
	}()
	go func() {
		defer wg.Done()
		// Half the variants merge pipelined too, so the golden stream is
		// also decoded by both destination engines.
		_, derr = MigrateDest(context.Background(), b, dst, DestOptions{
			Store:          store,
			VerifyPayloads: true,
			Workers:        workers / 2,
			NoRangeFrames:  legacy,
			OnEvent:        onEvent,
		})
	}()
	wg.Wait()
	if serr != nil {
		t.Fatalf("workers=%d: source: %v", workers, serr)
	}
	if derr != nil {
		t.Fatalf("workers=%d: destination: %v", workers, derr)
	}
	if !src.MemEqual(dst) {
		t.Fatalf("workers=%d: memory differs at page %d", workers, src.FirstDifference(dst))
	}
	return rc.rec.Bytes(), sm, src
}

// TestGoldenStreamEquivalence asserts the pipelined source emits a
// byte-identical wire stream to the sequential engine for several worker
// counts, with compression, deltas, checksum elimination, and a second
// round all active. The baseline runs with no event hook and every
// variant with one, so equality also proves observability is about the
// stream, never in it.
func TestGoldenStreamEquivalence(t *testing.T) {
	golden, gm, _ := goldenRun(t, 0, nil, false)
	// The scenario must actually exercise every encoding.
	if gm.PagesSum == 0 || gm.PagesFull == 0 || gm.PagesDelta == 0 || gm.PagesCompressed == 0 {
		t.Fatalf("golden scenario too narrow: %+v", gm)
	}
	// And both entropy-gate outcomes: random rewrites must skip deflate,
	// compressible ones must attempt it.
	if gm.CompressAttempted == 0 || gm.CompressSkipped == 0 {
		t.Fatalf("entropy gate unexercised: attempted=%d skipped=%d",
			gm.CompressAttempted, gm.CompressSkipped)
	}
	if gm.Rounds < 2 {
		t.Fatalf("golden scenario ran %d round(s), want >= 2", gm.Rounds)
	}
	// Range frames are on by default, and the scenario's same-treatment runs
	// must actually coalesce — otherwise the variants below only re-prove the
	// per-page path.
	if gm.RangeFrames == 0 {
		t.Fatal("golden scenario emitted no range frames")
	}
	if gm.PageFrames >= gm.PagesSum+gm.PagesFull+gm.PagesDelta {
		t.Fatalf("PageFrames = %d not below page count %d; nothing coalesced",
			gm.PageFrames, gm.PagesSum+gm.PagesFull+gm.PagesDelta)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		var events atomic.Int64
		stream, sm, _ := goldenRun(t, workers, func(Event) { events.Add(1) }, false)
		if events.Load() == 0 {
			t.Fatalf("workers=%d: no events observed", workers)
		}
		if !bytes.Equal(stream, golden) {
			i := 0
			for i < len(stream) && i < len(golden) && stream[i] == golden[i] {
				i++
			}
			t.Fatalf("workers=%d: stream diverges from sequential at byte %d (lens %d vs %d)",
				workers, i, len(stream), len(golden))
		}
		if sm.PagesFull != gm.PagesFull || sm.PagesSum != gm.PagesSum ||
			sm.PagesDelta != gm.PagesDelta || sm.PagesCompressed != gm.PagesCompressed ||
			sm.CompressAttempted != gm.CompressAttempted ||
			sm.CompressSkipped != gm.CompressSkipped ||
			sm.PageFrames != gm.PageFrames || sm.RangeFrames != gm.RangeFrames ||
			sm.BytesSent != gm.BytesSent {
			t.Errorf("workers=%d: metrics diverge: got %+v want %+v", workers, sm, gm)
		}
	}
}

// TestGoldenStreamLegacyV1 pins the unnegotiated fallback: with range
// frames disabled on either side the wire stream is the per-page v1
// encoding, byte-identical at every pipeline width, identical no matter
// which side (or both) is old — and genuinely different bytes from the
// negotiated range-frame stream.
func TestGoldenStreamLegacyV1(t *testing.T) {
	legacy, lm, _ := goldenRun(t, 0, nil, true)
	if lm.RangeFrames != 0 {
		t.Fatalf("legacy run emitted %d range frames", lm.RangeFrames)
	}
	// v1 is strictly one frame per page.
	if pages := lm.PagesSum + lm.PagesFull + lm.PagesDelta; lm.PageFrames != pages {
		t.Fatalf("legacy PageFrames = %d, want one per page (%d)", lm.PageFrames, pages)
	}
	for _, workers := range []int{1, 2, 8} {
		stream, sm, _ := goldenRun(t, workers, nil, true)
		if !bytes.Equal(stream, legacy) {
			t.Fatalf("workers=%d: legacy stream diverges from sequential (lens %d vs %d)",
				workers, len(stream), len(legacy))
		}
		if sm.RangeFrames != 0 {
			t.Errorf("workers=%d: legacy run emitted %d range frames", workers, sm.RangeFrames)
		}
	}
	// The negotiated stream must actually differ — coalescing reaches the
	// wire — while the page-level metrics stay identical (classification is
	// unchanged, only the framing is).
	ranged, rm, _ := goldenRun(t, 0, nil, false)
	if bytes.Equal(ranged, legacy) {
		t.Error("negotiated and legacy streams are identical; range frames never hit the wire")
	}
	if len(ranged) >= len(legacy) {
		t.Errorf("range-frame stream is %d bytes, not smaller than v1's %d", len(ranged), len(legacy))
	}
	if rm.PagesSum != lm.PagesSum || rm.PagesFull != lm.PagesFull ||
		rm.PagesDelta != lm.PagesDelta || rm.PagesCompressed != lm.PagesCompressed ||
		rm.CompressAttempted != lm.CompressAttempted ||
		rm.CompressSkipped != lm.CompressSkipped {
		t.Errorf("page classification changed with framing: ranged %+v legacy %+v", rm, lm)
	}
}

// TestPipelineStageMetrics checks the per-stage counters are populated by a
// pipelined run and absent from a sequential one.
func TestPipelineStageMetrics(t *testing.T) {
	_, seq, _ := goldenRun(t, 0, nil, false)
	if seq.Stages.Batches != 0 {
		t.Errorf("sequential run recorded %d pipeline batches", seq.Stages.Batches)
	}
	_, par, _ := goldenRun(t, 2, nil, false)
	if par.Stages.Batches == 0 {
		t.Error("pipelined run recorded no batches")
	}
	if par.Stages.WorkerBusy == 0 {
		t.Error("pipelined run recorded no worker busy time")
	}
}

// TestIterativeRoundSumElimination verifies the satellite behavior: a page
// dirtied between rounds whose new content already exists in the
// destination's checkpoint crosses the wire as a bare checksum, in any
// round — not just the first.
func TestIterativeRoundSumElimination(t *testing.T) {
	src := newVM(t, "vm0", 128, 1)
	if err := src.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	if err := store.Save(src); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 128, 2)

	pause := func() {
		// Page 100's new content duplicates page 3 — present in the
		// destination checkpoint, so rounds >= 2 can still eliminate it.
		buf := make([]byte, vm.PageSize)
		src.ReadPage(3, buf)
		src.WritePage(100, buf)
		// Page 101 gets content the checkpoint cannot know.
		rand.New(rand.NewSource(424242)).Read(buf)
		src.WritePage(101, buf)
	}
	sm, dres := migrate(t, src, dst,
		SourceOptions{Recycle: true, Pause: pause},
		DestOptions{Store: store, VerifyPayloads: true})
	if !src.MemEqual(dst) {
		t.Fatalf("memory differs at page %d", src.FirstDifference(dst))
	}
	// Round 1 eliminates all 128 pages; round 2 eliminates page 100 again.
	if sm.PagesSum != 129 {
		t.Errorf("PagesSum = %d, want 129 (dirty page with checkpointed content not eliminated)", sm.PagesSum)
	}
	if sm.PagesFull != 1 {
		t.Errorf("PagesFull = %d, want 1", sm.PagesFull)
	}
	// Page 100's frame held stale content, so the destination repaired it
	// from the checkpoint file.
	if dres.Metrics.PagesReusedFromDisk == 0 {
		t.Error("destination never re-read a checkpoint block")
	}
}

// slowWriter models a link slower than the encoders: every write sleeps,
// then succeeds.
type slowWriter struct{ d time.Duration }

func (s slowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.d)
	return len(p), nil
}

// TestStageStallSplit pins the sequencer's two distinct stall accounts: a
// slow wire backs up the in-order emit queue (ingest stall), a saturated
// worker pool backs up the jobs handoff (dispatch stall). The old single
// counter conflated the two bottlenecks.
func TestStageStallSplit(t *testing.T) {
	const pages = 4096 // 16 batches: enough handoffs for the stalls to separate
	v, err := vm.New(vm.Config{Name: "stall-vm", MemBytes: pages * vm.PageSize, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.FillRandom(1.0); err != nil {
		t.Fatal(err)
	}

	// Emitter backpressure: checksum-only encoding is far faster than a
	// 30ms-per-write wire, so the sequencer's waits land on the ordered
	// send, not on worker dispatch.
	conn := readWriter{bytes.NewReader(scriptedPeer(t)), slowWriter{30 * time.Millisecond}}
	sm, err := MigrateSource(context.Background(), conn, v, SourceOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sm.Stages.IngestStall == 0 {
		t.Error("slow wire produced no ingest stall")
	}
	if sm.Stages.IngestStall <= sm.Stages.DispatchStall {
		t.Errorf("slow wire: ingest stall %v not above dispatch stall %v",
			sm.Stages.IngestStall, sm.Stages.DispatchStall)
	}

	// Worker backpressure: an instant wire and a single worker grinding
	// through deflate of random pages moves the sequencer's waits to the
	// jobs handoff.
	conn = readWriter{bytes.NewReader(scriptedPeer(t)), io.Discard}
	sm, err = MigrateSource(context.Background(), conn, v, SourceOptions{Workers: 1, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if sm.Stages.DispatchStall == 0 {
		t.Error("saturated pool produced no dispatch stall")
	}
	if sm.Stages.DispatchStall <= sm.Stages.IngestStall {
		t.Errorf("saturated pool: dispatch stall %v not above ingest stall %v",
			sm.Stages.DispatchStall, sm.Stages.IngestStall)
	}

	// The destination has no dispatch split — its decoder's only handoff is
	// the jobs send, accounted as ingest — so its DispatchStall stays zero
	// at any width.
	src := newVM(t, "vm0", 256, 1)
	if err := src.FillRandom(1.0); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 256, 2)
	_, dres := migrate(t, src, dst, SourceOptions{Workers: 2}, DestOptions{Workers: 4})
	if dres.Metrics.Stages.DispatchStall != 0 {
		t.Errorf("destination recorded dispatch stall %v, want 0", dres.Metrics.Stages.DispatchStall)
	}
	if dres.Metrics.Stages.Batches == 0 {
		t.Error("destination pipeline recorded no batches")
	}
}

// countConn counts bytes written while passing deadlines through to the
// underlying net.Conn.
type countConn struct {
	net.Conn
	n atomic.Int64
}

func (c *countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// waitGoroutines fails the test if the goroutine count does not return to
// the baseline within a grace period.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s", n, base, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPipelineCancellationNoLeak cancels a pipelined migration mid-stream
// on both sides and verifies every stage goroutine exits.
func TestPipelineCancellationNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	src := newVM(t, "vm0", 2048, 1)
	if err := src.FillRandom(1.0); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 2048, 2)

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	cc := &countConn{Conn: a}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	var serr, derr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, serr = MigrateSource(ctx, NewDeadlineConn(cc, time.Second), src, SourceOptions{Workers: 4})
	}()
	go func() {
		defer wg.Done()
		_, derr = MigrateDest(ctx, NewDeadlineConn(b, time.Second), dst, DestOptions{Workers: 4})
	}()
	// Cancel once the transfer is demonstrably mid-stream.
	for cc.n.Load() < 512*1024 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	if !errors.Is(serr, context.Canceled) {
		t.Errorf("source error = %v, want context.Canceled", serr)
	}
	if !errors.Is(derr, context.Canceled) {
		t.Errorf("destination error = %v, want context.Canceled", derr)
	}
	waitGoroutines(t, base)
}

// TestPipelineFaultResetNoLeak injects a mid-stream connection reset under
// pipelined engines on both sides and verifies clean teardown.
func TestPipelineFaultResetNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	src := newVM(t, "vm0", 512, 1)
	if err := src.FillRandom(1.0); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 512, 2)

	a, b := net.Pipe()
	cut := NewFaultConn(a, FaultConfig{ResetAfterBytes: 300_000})

	var wg sync.WaitGroup
	var serr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, serr = MigrateSource(context.Background(), cut, src, SourceOptions{Workers: 4})
		a.Close() // unblock the destination's pending read
	}()
	go func() {
		defer wg.Done()
		_, _ = MigrateDest(context.Background(), b, dst, DestOptions{Workers: 4})
		b.Close()
	}()
	wg.Wait()
	if !errors.Is(serr, ErrInjectedReset) {
		t.Errorf("source error = %v, want ErrInjectedReset", serr)
	}
	waitGoroutines(t, base)
}

// TestDestWorkerErrorAbortsDecoder injects a payload corruption that only a
// destination worker can detect and verifies the failure propagates out of
// the decoder (which would otherwise stay blocked reading) without leaks.
func TestDestWorkerErrorAbortsDecoder(t *testing.T) {
	base := runtime.NumGoroutine()
	src := newVM(t, "vm0", 512, 1)
	if err := src.FillRandom(1.0); err != nil {
		t.Fatal(err)
	}
	dst := newVM(t, "vm0", 512, 2)

	a, b := net.Pipe()
	// Flip one byte inside the 100th page's payload on the wire.
	corrupt := &corruptConn{Conn: a, target: 150_000}

	var wg sync.WaitGroup
	var serr, derr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, serr = MigrateSource(context.Background(), NewDeadlineConn(corrupt, time.Second), src, SourceOptions{})
		a.Close()
	}()
	go func() {
		defer wg.Done()
		_, derr = MigrateDest(context.Background(), NewDeadlineConn(b, time.Second), dst, DestOptions{Workers: 4, VerifyPayloads: true})
		b.Close()
	}()
	wg.Wait()
	if !errors.Is(derr, ErrProtocol) {
		t.Errorf("destination error = %v, want ErrProtocol (checksum mismatch)", derr)
	}
	if serr == nil {
		t.Error("source finished cleanly against an aborted destination")
	}
	waitGoroutines(t, base)
}
