package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"vecycle/internal/checkpoint"
	"vecycle/internal/checksum"
	"vecycle/internal/delta"
	"vecycle/internal/vm"
)

// The destination half of the pipelined engine: the decoder stage (the
// calling goroutine) parses frames off the wire, and a worker pool
// decompresses, verifies, resolves checkpoint blocks, applies deltas, and
// installs pages. Within a round the source sends each frame at most once,
// so installs are disjoint and need no ordering; the decoder drains the
// pool (a barrier) at every round boundary before frames can repeat, which
// preserves the cross-round last-write-wins semantics of the sequential
// merge loop.

// destJob carries one parsed page message — a single-page frame or a
// coalesced page-range frame — from the decoder to the workers.
type destJob struct {
	t       msgType
	page    uint64
	sum     checksum.Sum
	payload []byte // raw page, deflate stream, or delta encoding; empty for msgPageSum
	// rng holds the decoded range frame when t is a range tag; its scratch
	// slices are pooled with the job. Payload retention is structurally
	// bounded at MaxRangePages*vm.PageSize by the decoder's validation.
	rng rangeFrame
}

var destJobPool = sync.Pool{New: func() interface{} {
	return &destJob{payload: make([]byte, 0, vm.PageSize)}
}}

func putDestJob(j *destJob) {
	j.payload = j.payload[:0]
	j.rng.reset()
	destJobPool.Put(j)
}

// destWorker is the per-goroutine state of the install pool: a scratch span
// buffer, a lazily created inflater (both in st), and private metrics
// merged after the pool drains.
type destWorker struct {
	v      *vm.VM
	alg    checksum.Algorithm
	verify bool
	cp     *checkpoint.Checkpoint
	st     *destScratch // pooled; acquired at pool start, released after drain
	// tbl is the migration's shared page-sum table (nil unless
	// TrackIncoming). Workers write disjoint page slots within a round, so
	// no locking; see SumTable.
	tbl *SumTable
	m   Metrics
}

// process applies one page message to the VM. The decoder has already
// validated the frame number and the payload length, and rejected
// checkpoint-dependent messages when no checkpoint is loaded.
func (ws *destWorker) process(j *destJob) error {
	page := int(j.page)
	switch j.t {
	case msgRangeSum, msgRangeFull, msgRangeFullZ, msgRangeDelta:
		return applyRange(ws.v, ws.cp, ws.alg, ws.verify, &j.rng, ws.st, ws.tbl, &ws.m)

	case msgPageFull:
		if ws.verify {
			if got := ws.alg.Page(j.payload); got != j.sum {
				return fmt.Errorf("%w: page %d payload checksum mismatch", ErrProtocol, page)
			}
		}
		ws.v.InstallPage(page, j.payload)
		ws.tbl.record(page, j.sum)
		ws.m.PagesFull++

	case msgPageFullZ:
		if ws.st.decomp == nil {
			ws.st.decomp = newPageDecompressor()
		}
		buf := ws.st.span(1)
		if err := ws.st.decomp.inflate(j.payload, buf); err != nil {
			return err
		}
		if ws.verify {
			if got := ws.alg.Page(buf); got != j.sum {
				return fmt.Errorf("%w: page %d payload checksum mismatch", ErrProtocol, page)
			}
		}
		ws.v.InstallPage(page, buf)
		ws.tbl.record(page, j.sum)
		ws.m.PagesFull++
		ws.m.PagesCompressed++

	case msgPageSum:
		ws.m.PagesSum++
		// Either way the page ends up holding content with this digest.
		ws.tbl.record(page, j.sum)
		// Fast path: the frame content inherited from the checkpoint
		// bootstrap already matches.
		if ws.v.PageSum(page, ws.alg) == j.sum {
			ws.m.PagesReusedInPlace++
			return nil
		}
		// Slow path: resolve the checksum in the checkpoint index and
		// re-read the block from disk (lseek+read of Listing 1).
		data, ok, err := ws.cp.ReadBlock(j.sum)
		if err != nil {
			return recycleReadErr(err)
		}
		if !ok {
			return fmt.Errorf("%w: source referenced checksum %v absent from checkpoint", ErrProtocol, j.sum)
		}
		ws.v.InstallPage(page, data)
		ws.cp.Release(data)
		ws.m.PagesReusedFromDisk++

	case msgPageDelta:
		// The frame still holds bootstrap (checkpoint) content: deltas are
		// first-round only and each round-one frame appears exactly once.
		buf := ws.st.span(1)
		ws.v.ReadPage(page, buf)
		if err := delta.Decode(buf, j.payload, buf); err != nil {
			return fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		// Deltas are always verified: a base mismatch (stale mirror at the
		// source) silently corrupts otherwise.
		if got := ws.alg.Page(buf); got != j.sum {
			return fmt.Errorf("%w: page %d delta produced checksum mismatch (stale delta base?)", ErrProtocol, page)
		}
		ws.v.InstallPage(page, buf)
		ws.tbl.record(page, j.sum)
		ws.m.PagesDelta++
	}
	return nil
}

// mergePipelined is the concurrent variant of the merge loop: it decodes
// frames on the calling goroutine and fans the page work out to `workers`
// goroutines. Any worker error cancels the pipeline's context, whose
// watcher aborts the connection so a decoder blocked mid-read observes the
// failure; the decoder then drains the pool before returning, so no
// goroutine outlives the call.
func (s *IncomingSession) mergePipelined(ctx context.Context, v *vm.VM, opts DestOptions, cp *checkpoint.Checkpoint, tbl *SumTable, res *DestResult, start time.Time, workers int) (err error) {
	h := s.h
	w, r := s.w, s.r

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Deferred before cancel (LIFO): the watcher is released before the
	// defer-time cancel, so a clean return does not abort the connection.
	stopWatch := watchContext(pctx, s.conn)
	defer stopWatch()

	var (
		stats   pipelineStats
		errMu   sync.Mutex
		workErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if workErr == nil {
			workErr = err
		}
		errMu.Unlock()
		cancel()
	}
	storedErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return workErr
	}

	jobs := make(chan *destJob, workers*2)
	var inflight sync.WaitGroup // page messages dispatched but not yet installed
	var wg sync.WaitGroup
	wks := make([]*destWorker, workers)
	for k := range wks {
		wks[k] = &destWorker{v: v, alg: h.Alg, verify: opts.VerifyPayloads, cp: cp,
			st: getDestScratch(), tbl: tbl}
		wg.Add(1)
		go func(ws *destWorker) {
			defer wg.Done()
			for j := range jobs {
				// After a failure, drain without processing so the decoder
				// never blocks on a full queue.
				if pctx.Err() == nil {
					t0 := time.Now()
					if err := ws.process(j); err != nil {
						fail(err)
					}
					stats.workerBusy.Add(int64(time.Since(t0)))
				}
				putDestJob(j)
				inflight.Done()
			}
		}(wks[k])
	}
	defer func() {
		close(jobs)
		wg.Wait()
		for _, ws := range wks {
			res.Metrics.addPageCounters(ws.m)
			putDestScratch(ws.st)
		}
		res.Metrics.Stages.add(stats.stageMetrics())
	}()

	// retErr prefers a worker's error over the decoder's own: once a worker
	// fails, the connection is aborted and the decoder's read error is just
	// the echo of that abort.
	retErr := func(err error) error {
		if werr := storedErr(); werr != nil {
			return werr
		}
		return err
	}

	roundStart := s.cr.n
	frameStart := 0
	// rangeFloor is where the next range frame may start (ranges are
	// ascending and disjoint within a round); reset at each round boundary.
	var rangeFloor uint64
	for {
		if err := pctx.Err(); err != nil {
			return retErr(err)
		}
		t0 := time.Now()
		t, err := readMsgType(r)
		if err != nil {
			return retErr(err)
		}
		switch t {
		case msgRangeSum, msgRangeFull, msgRangeFullZ, msgRangeDelta:
			if !s.rangeOK {
				return retErr(fmt.Errorf("%w: %v received without range-frame negotiation", ErrProtocol, t))
			}
			if cp == nil && (t == msgRangeSum || t == msgRangeDelta) {
				return retErr(fmt.Errorf("%w: %v received without a checkpoint", ErrProtocol, t))
			}
			j := destJobPool.Get().(*destJob)
			j.t = t
			if err := readRangeFrame(r, t, v.NumPages(), rangeFloor, &j.rng); err != nil {
				putDestJob(j)
				return retErr(err)
			}
			rangeFloor = j.rng.start + uint64(j.rng.count)
			res.Metrics.PageFrames++
			res.Metrics.RangeFrames++
			stats.ingestBusy.Add(int64(time.Since(t0)))
			stats.batches.Add(1)
			t1 := time.Now()
			inflight.Add(1)
			select {
			case jobs <- j:
			case <-pctx.Done():
				inflight.Done()
				putDestJob(j)
				return retErr(pctx.Err())
			}
			stats.ingestStall.Add(int64(time.Since(t1)))

		case msgPageFull, msgPageFullZ, msgPageSum, msgPageDelta:
			page, sum, err := readPageHeader(r)
			if err != nil {
				return retErr(err)
			}
			if page >= uint64(v.NumPages()) {
				return fmt.Errorf("%w: page %d out of range", ErrProtocol, page)
			}
			if cp == nil && (t == msgPageSum || t == msgPageDelta) {
				return fmt.Errorf("%w: %v received without a checkpoint", ErrProtocol, t)
			}
			res.Metrics.PageFrames++
			j := destJobPool.Get().(*destJob)
			j.t, j.page, j.sum = t, page, sum
			switch t {
			case msgPageFull:
				j.payload = j.payload[:vm.PageSize]
				if _, err := io.ReadFull(r, j.payload); err != nil {
					putDestJob(j)
					return retErr(fmt.Errorf("core: read page %d payload: %w", page, err))
				}
			case msgPageFullZ, msgPageDelta:
				n, err := readPayloadLen(r, t)
				if err != nil {
					putDestJob(j)
					return retErr(err)
				}
				j.payload = j.payload[:n]
				if _, err := io.ReadFull(r, j.payload); err != nil {
					putDestJob(j)
					return retErr(fmt.Errorf("core: read page %d payload: %w", page, err))
				}
			}
			stats.ingestBusy.Add(int64(time.Since(t0)))
			stats.batches.Add(1)
			t1 := time.Now()
			inflight.Add(1)
			select {
			case jobs <- j:
			case <-pctx.Done():
				inflight.Done()
				putDestJob(j)
				return retErr(pctx.Err())
			}
			stats.ingestStall.Add(int64(time.Since(t1)))

		case msgRoundEnd:
			round, dirty, err := readRoundEnd(r)
			if err != nil {
				return retErr(err)
			}
			// Barrier: the next round may retransmit any frame, so all of
			// this round's installs must land first (last write wins).
			inflight.Wait()
			if werr := storedErr(); werr != nil {
				return werr
			}
			res.Metrics.Rounds++
			opts.OnEvent.emit(Event{Kind: EventRound, Round: int(round),
				Pages: int64(dirty), Bytes: s.cr.n - roundStart,
				Frames: int64(res.Metrics.PageFrames - frameStart)})
			roundStart = s.cr.n
			frameStart = res.Metrics.PageFrames
			rangeFloor = 0

		case msgDone:
			inflight.Wait()
			if werr := storedErr(); werr != nil {
				return werr
			}
			if err := writeMsgType(w, msgAck); err != nil {
				return err
			}
			if err := flush(w); err != nil {
				return err
			}
			res.Metrics.Duration = time.Since(start)
			opts.OnEvent.emit(Event{Kind: EventDone, Bytes: s.cr.n})
			// All installs have landed (inflight barrier above), so the sum
			// table is the final arrived state; hash only what no frame
			// covered. See mergeSequential's msgDone for the soundness note.
			if opts.TrackIncoming {
				res.Metrics.HashBytes, res.Metrics.HashAvoidedBytes = tbl.finishTrack(v, res.SeenSums)
			}
			return nil

		default:
			return fmt.Errorf("%w: unexpected %v during merge", ErrProtocol, t)
		}
	}
}

// readPayloadLen reads and validates the u32 length prefix of a compressed
// or delta payload.
func readPayloadLen(r io.Reader, t msgType) (int, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, fmt.Errorf("core: read %v length: %w", t, err)
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	// A compressed page must shrink; a delta may at most reach a full page.
	limit := vm.PageSize
	if t == msgPageFullZ {
		limit = vm.PageSize - 1
	}
	if n == 0 || n > limit {
		return 0, fmt.Errorf("%w: %v payload length %d out of range", ErrProtocol, t, n)
	}
	return n, nil
}
