package disk

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"sync"
	"testing"

	"vecycle/internal/checkpoint"
	"vecycle/internal/core"
	"vecycle/internal/vm"
)

func newDisk(t *testing.T, blocks int) *Disk {
	t.Helper()
	d, err := New("vm0", int64(blocks)*BlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", BlockSize, 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("vm0", 0, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New("vm0", BlockSize+1, 1); err == nil {
		t.Error("unaligned size accepted")
	}
}

func TestNaming(t *testing.T) {
	d := newDisk(t, 2)
	if d.Backing().Name() != "vm0#disk" {
		t.Errorf("backing name = %q", d.Backing().Name())
	}
	if d.VMName() != "vm0" {
		t.Errorf("VMName = %q", d.VMName())
	}
	if !IsDiskName("vm0#disk") || IsDiskName("vm0") || IsDiskName("#disk") {
		t.Error("IsDiskName wrong")
	}
}

func TestFromBacking(t *testing.T) {
	b, err := vm.New(vm.Config{Name: "x#disk", MemBytes: BlockSize, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromBacking(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.VMName() != "x" {
		t.Errorf("VMName = %q", d.VMName())
	}
	plain, err := vm.New(vm.Config{Name: "x", MemBytes: BlockSize, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromBacking(plain); err == nil {
		t.Error("non-disk backing accepted")
	}
}

func TestBlockReadWrite(t *testing.T) {
	d := newDisk(t, 4)
	data := bytes.Repeat([]byte{0xCD}, BlockSize)
	d.WriteBlock(2, data)
	got := make([]byte, BlockSize)
	d.ReadBlock(2, got)
	if !bytes.Equal(got, data) {
		t.Error("block round trip failed")
	}
	d.ReadBlock(1, got)
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Error("write leaked to neighbour block")
	}
}

func TestBlockBoundsPanic(t *testing.T) {
	d := newDisk(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range block access did not panic")
		}
	}()
	d.ReadBlock(2, make([]byte, BlockSize))
}

func TestReadWriteAtUnaligned(t *testing.T) {
	d := newDisk(t, 2)
	payload := []byte("journal-entry: hello world, spanning pages maybe")
	off := int64(vm.PageSize - 10) // straddles a page boundary
	if err := d.WriteAt(payload, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := d.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("ReadAt = %q, want %q", got, payload)
	}
	// Bounds.
	if err := d.WriteAt([]byte{1}, d.SizeBytes()); err == nil {
		t.Error("write past end accepted")
	}
	if err := d.ReadAt(make([]byte, 2), d.SizeBytes()-1); err == nil {
		t.Error("read past end accepted")
	}
}

func TestWorkloads(t *testing.T) {
	d := newDisk(t, 8)
	if err := d.MkFS(0.5, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.MkFS(1.5, 1); err == nil {
		t.Error("bad fraction accepted")
	}
	if err := d.AppendLog(6, 1000, 2); err != nil {
		t.Fatal(err)
	}
	d.OverwriteRandomBlocks(2, 3)
	// The filesystem region plus log region are non-zero.
	buf := make([]byte, BlockSize)
	d.ReadBlock(0, buf)
	if bytes.Equal(buf, make([]byte, BlockSize)) {
		t.Error("MkFS wrote nothing")
	}
}

// TestDiskMigrationWithRecycling migrates a disk through the standard
// engine: the backing region is page-shaped, so the whole VeCycle pipeline
// applies — which is the point of the design.
func TestDiskMigrationWithRecycling(t *testing.T) {
	src := newDisk(t, 16) // 1 MiB device
	if err := src.MkFS(0.8, 7); err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.NewStore(filepath.Join(t.TempDir(), "s"))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(src.Backing()); err != nil {
		t.Fatal(err)
	}
	// Journal traffic since the checkpoint: two blocks' worth.
	if err := src.AppendLog(13, 2*BlockSize, 9); err != nil {
		t.Fatal(err)
	}

	dstBacking, err := vm.New(vm.Config{Name: "vm0#disk", MemBytes: src.SizeBytes(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	var sm core.Metrics
	var serr, derr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		sm, serr = core.MigrateSource(context.Background(), a, src.Backing(), core.SourceOptions{Recycle: true})
	}()
	go func() {
		defer wg.Done()
		_, derr = core.MigrateDest(context.Background(), b, dstBacking, core.DestOptions{Store: store, VerifyPayloads: true})
	}()
	wg.Wait()
	if serr != nil || derr != nil {
		t.Fatalf("source=%v dest=%v", serr, derr)
	}
	dst, err := FromBacking(dstBacking)
	if err != nil {
		t.Fatal(err)
	}
	if !src.ContentEqual(dst) {
		t.Fatal("disk contents differ after migration")
	}
	// Only the journal region (32 pages) plus its partial edges go full.
	if sm.PagesFull > 40 {
		t.Errorf("disk migration sent %d full pages, want ~32 (journal only)", sm.PagesFull)
	}
	if sm.PagesSum < 200 {
		t.Errorf("PagesSum = %d, expected most of the 256-page device recycled", sm.PagesSum)
	}
}
