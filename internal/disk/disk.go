// Package disk models a VM's persistent block device. The paper's testbed
// sidesteps disk migration by serving VM images over NFS (§4.1) and notes
// that, without shared storage, "established techniques can be applied"
// (§3.1, citing XvMotion and CloudNet). This package supplies that missing
// substrate: a block device with write tracking whose migration reuses the
// exact page-granular engine of internal/core — which is also how QEMU's
// block migration piggybacks on the RAM streaming machinery.
//
// A disk is backed by a page array (16 pages per 64 KiB block), so a disk
// migration *is* a memory migration of the backing region: checkpoint
// recycling, deduplication, compression, delta encoding and the ping-pong
// optimization all apply unchanged. Disks churn far slower than RAM, so
// recycled disk checkpoints eliminate nearly all block traffic.
package disk

import (
	"fmt"

	"vecycle/internal/vm"
)

// BlockSize is the device's block size: 64 KiB, 16 memory pages.
const BlockSize = 16 * vm.PageSize

// DiskSuffix distinguishes a disk's stream and checkpoint from its VM's.
// A disk for VM "web-1" migrates and checkpoints under "web-1#disk".
const DiskSuffix = "#disk"

// Disk is a simulated block device.
type Disk struct {
	backing *vm.VM
}

// New creates a device of the given size (a positive multiple of
// BlockSize) for the named VM.
func New(vmName string, sizeBytes int64, seed int64) (*Disk, error) {
	if vmName == "" {
		return nil, fmt.Errorf("disk: empty VM name")
	}
	if sizeBytes <= 0 || sizeBytes%BlockSize != 0 {
		return nil, fmt.Errorf("disk: size %d must be a positive multiple of %d", sizeBytes, BlockSize)
	}
	backing, err := vm.New(vm.Config{Name: vmName + DiskSuffix, MemBytes: sizeBytes, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Disk{backing: backing}, nil
}

// FromBacking wraps an existing backing region (an arrived migration) as a
// disk. The backing VM's name must carry the DiskSuffix.
func FromBacking(backing *vm.VM) (*Disk, error) {
	if !IsDiskName(backing.Name()) {
		return nil, fmt.Errorf("disk: backing name %q lacks the %q suffix", backing.Name(), DiskSuffix)
	}
	return &Disk{backing: backing}, nil
}

// IsDiskName reports whether a migration stream name denotes a disk.
func IsDiskName(name string) bool {
	return len(name) > len(DiskSuffix) && name[len(name)-len(DiskSuffix):] == DiskSuffix
}

// VMName reports the owning VM's name (the suffix stripped).
func (d *Disk) VMName() string {
	n := d.backing.Name()
	return n[:len(n)-len(DiskSuffix)]
}

// Backing exposes the underlying page region for migration. The returned
// VM must be treated as the device's storage, not a guest.
func (d *Disk) Backing() *vm.VM { return d.backing }

// SizeBytes reports the device capacity.
func (d *Disk) SizeBytes() int64 { return d.backing.MemBytes() }

// NumBlocks reports the device size in blocks.
func (d *Disk) NumBlocks() int { return int(d.backing.MemBytes() / BlockSize) }

// ReadBlock copies block i into dst (at least BlockSize long).
func (d *Disk) ReadBlock(i int, dst []byte) {
	d.checkBlock(i)
	for p := 0; p < 16; p++ {
		d.backing.ReadPage(i*16+p, dst[p*vm.PageSize:(p+1)*vm.PageSize])
	}
}

// WriteBlock replaces block i with data (BlockSize bytes).
func (d *Disk) WriteBlock(i int, data []byte) {
	d.checkBlock(i)
	if len(data) != BlockSize {
		panic(fmt.Sprintf("disk: WriteBlock with %d bytes, want %d", len(data), BlockSize))
	}
	for p := 0; p < 16; p++ {
		d.backing.WritePage(i*16+p, data[p*vm.PageSize:(p+1)*vm.PageSize])
	}
}

func (d *Disk) checkBlock(i int) {
	if i < 0 || i >= d.NumBlocks() {
		panic(fmt.Sprintf("disk: block %d out of range [0,%d)", i, d.NumBlocks()))
	}
}

// WriteAt writes data at an arbitrary byte offset, page-aligned writes
// touching only the affected pages. Unaligned edges read-modify-write.
func (d *Disk) WriteAt(data []byte, off int64) error {
	if off < 0 || off+int64(len(data)) > d.SizeBytes() {
		return fmt.Errorf("disk: write [%d,%d) outside device of %d bytes", off, off+int64(len(data)), d.SizeBytes())
	}
	pageBuf := make([]byte, vm.PageSize)
	for len(data) > 0 {
		page := int(off / vm.PageSize)
		inPage := int(off % vm.PageSize)
		n := vm.PageSize - inPage
		if n > len(data) {
			n = len(data)
		}
		d.backing.ReadPage(page, pageBuf)
		copy(pageBuf[inPage:inPage+n], data[:n])
		d.backing.WritePage(page, pageBuf)
		data = data[n:]
		off += int64(n)
	}
	return nil
}

// ReadAt reads len(dst) bytes from the given offset.
func (d *Disk) ReadAt(dst []byte, off int64) error {
	if off < 0 || off+int64(len(dst)) > d.SizeBytes() {
		return fmt.Errorf("disk: read [%d,%d) outside device of %d bytes", off, off+int64(len(dst)), d.SizeBytes())
	}
	pageBuf := make([]byte, vm.PageSize)
	for len(dst) > 0 {
		page := int(off / vm.PageSize)
		inPage := int(off % vm.PageSize)
		n := vm.PageSize - inPage
		if n > len(dst) {
			n = len(dst)
		}
		d.backing.ReadPage(page, pageBuf)
		copy(dst[:n], pageBuf[inPage:inPage+n])
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}

// ContentEqual reports whether two disks hold identical bytes.
func (d *Disk) ContentEqual(other *Disk) bool {
	return d.backing.MemEqual(other.Backing())
}
