package disk

import (
	"fmt"
	"math/rand"
)

// Guest-side disk workloads for tests and benchmarks.

// MkFS fills the first frac of the device with distinct pseudo-file
// content, modelling an installed system image.
func (d *Disk) MkFS(frac float64, seed int64) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("disk: fraction %v out of [0,1]", frac)
	}
	rng := rand.New(rand.NewSource(seed))
	blocks := int(frac * float64(d.NumBlocks()))
	buf := make([]byte, BlockSize)
	for i := 0; i < blocks; i++ {
		rng.Read(buf) //nolint:errcheck // math/rand Read never fails
		d.WriteBlock(i, buf)
	}
	return nil
}

// AppendLog models journal/log traffic: sequential small writes starting
// at the given block, count bytes in total.
func (d *Disk) AppendLog(startBlock int, count int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, count)
	rng.Read(data) //nolint:errcheck // math/rand Read never fails
	return d.WriteAt(data, int64(startBlock)*BlockSize)
}

// OverwriteRandomBlocks rewrites n random blocks — scattered database-style
// writes.
func (d *Disk) OverwriteRandomBlocks(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, BlockSize)
	for k := 0; k < n; k++ {
		rng.Read(buf) //nolint:errcheck // math/rand Read never fails
		d.WriteBlock(rng.Intn(d.NumBlocks()), buf)
	}
}
