package fingerprint

import (
	"fmt"
	"sort"
	"time"

	"vecycle/internal/stats"
)

// Corpus is an analysis view over the fingerprint history of one machine.
// It precomputes each fingerprint's sorted unique-hash list once so that the
// all-pairs similarity sweep of Figure 1 (336 fingerprints → 56 616 pairs
// per machine) runs as linear merges instead of repeated map construction.
type Corpus struct {
	fps  []*Fingerprint
	uniq [][]PageHash // sorted distinct hashes, parallel to fps
}

// NewCorpus builds a corpus over fps. Fingerprints must be in ascending
// Taken order; an error is returned otherwise. The slice is captured, not
// copied — callers must not mutate the fingerprints afterwards.
func NewCorpus(fps []*Fingerprint) (*Corpus, error) {
	if len(fps) == 0 {
		return nil, fmt.Errorf("fingerprint: empty corpus")
	}
	uniq := make([][]PageHash, len(fps))
	for i, f := range fps {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("fingerprint %d: %w", i, err)
		}
		if i > 0 && f.Taken.Before(fps[i-1].Taken) {
			return nil, fmt.Errorf("fingerprint %d taken %v before predecessor %v",
				i, f.Taken, fps[i-1].Taken)
		}
		uniq[i] = sortedUnique(f.Hashes)
	}
	return &Corpus{fps: fps, uniq: uniq}, nil
}

// Len reports the number of fingerprints in the corpus.
func (c *Corpus) Len() int { return len(c.fps) }

// At returns fingerprint i.
func (c *Corpus) At(i int) *Fingerprint { return c.fps[i] }

// Similarity reports the similarity of fingerprint cur with respect to
// fingerprint old: the fraction of cur's unique hashes also present in old.
// In the checkpoint-reuse reading, cur is the VM's current state and old the
// stored checkpoint.
func (c *Corpus) Similarity(old, cur int) float64 {
	ucur, uold := c.uniq[cur], c.uniq[old]
	if len(ucur) == 0 {
		return 0
	}
	return float64(intersectSorted(ucur, uold)) / float64(len(ucur))
}

// Delta reports the time between fingerprints i and j (j later).
func (c *Corpus) Delta(i, j int) time.Duration {
	return c.fps[j].Taken.Sub(c.fps[i].Taken)
}

// BinnedSimilarity enumerates every ordered fingerprint pair (old earlier,
// cur later), computes the pair similarity, and bins it by time delta —
// the full computation behind one panel of Figure 1 (maxDelta 24 h) or
// Figure 2 (maxDelta one week). stride > 1 subsamples the fingerprint list
// to bound the quadratic sweep; stride 1 uses every fingerprint.
func (c *Corpus) BinnedSimilarity(binWidth, maxDelta time.Duration, stride int) ([]stats.BinStat, error) {
	if stride < 1 {
		stride = 1
	}
	nbins := int(maxDelta / binWidth)
	if nbins < 1 {
		return nil, fmt.Errorf("fingerprint: maxDelta %v below bin width %v", maxDelta, binWidth)
	}
	binner, err := stats.NewDeltaBinner(binWidth, nbins)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(c.fps); i += stride {
		for j := i + stride; j < len(c.fps); j += stride {
			d := c.Delta(i, j)
			if binner.BinIndex(d) < 0 {
				if d > maxDelta {
					break // later j only increase the delta
				}
				continue
			}
			binner.Add(d, c.Similarity(i, j))
		}
	}
	return binner.Series(), nil
}

// PairFunc receives one ordered fingerprint pair during ForEachPair.
type PairFunc func(old, cur int, delta time.Duration)

// ForEachPair invokes fn for every ordered pair (old earlier than cur),
// subsampled by stride, with delta at most maxDelta (0 means unbounded).
func (c *Corpus) ForEachPair(stride int, maxDelta time.Duration, fn PairFunc) {
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(c.fps); i += stride {
		for j := i + stride; j < len(c.fps); j += stride {
			d := c.Delta(i, j)
			if maxDelta > 0 && d > maxDelta {
				break
			}
			fn(i, j, d)
		}
	}
}

// DupSeries returns the duplicate-page fraction of every fingerprint as a
// (hours since first fingerprint, fraction) series — Figure 4, left panels.
func (c *Corpus) DupSeries() []stats.Point {
	return c.series(func(f *Fingerprint) float64 { return f.DupFraction() })
}

// ZeroSeries returns the zero-page fraction over time — Figure 4, right
// panel.
func (c *Corpus) ZeroSeries() []stats.Point {
	return c.series(func(f *Fingerprint) float64 { return f.ZeroFraction() })
}

func (c *Corpus) series(metric func(*Fingerprint) float64) []stats.Point {
	out := make([]stats.Point, len(c.fps))
	t0 := c.fps[0].Taken
	for i, f := range c.fps {
		out[i] = stats.Point{
			X: f.Taken.Sub(t0).Hours(),
			Y: metric(f),
		}
	}
	return out
}

// sortedUnique returns the distinct values of hs in ascending order.
func sortedUnique(hs []PageHash) []PageHash {
	out := make([]PageHash, len(hs))
	copy(out, hs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, h := range out {
		if i == 0 || h != out[w-1] {
			out[w] = h
			w++
		}
	}
	return out[:w]
}

// intersectSorted counts the common elements of two ascending unique slices.
func intersectSorted(a, b []PageHash) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
