// Package fingerprint implements memory fingerprints and the similarity
// analysis of the paper's trace study (§2).
//
// A fingerprint is one hash per memory page, taken at an instant. The
// Memory Buddies traces the paper analyzes record one fingerprint every 30
// minutes; the similarity between two fingerprints Fa and Fb is defined over
// their sets of *unique* hashes Ua and Ub as |Ua ∩ Ub| / |Ua| (§2.2) —
// counting unique content rather than pages, because duplicate pages within
// a VM are exploitable by other redundancy techniques and would inflate the
// checkpoint-reuse estimate.
package fingerprint

import (
	"fmt"
	"time"
)

// PageHash is the hash of one page's content. The zero value denotes the
// all-zero page by convention (freshly booted machines are dominated by
// them, §2.1).
type PageHash uint64

// ZeroPage is the hash of a page containing only zeros.
const ZeroPage PageHash = 0

// Fingerprint is one memory snapshot: the page hashes of a machine at one
// instant, in page order.
type Fingerprint struct {
	// Taken is the instant the fingerprint was recorded.
	Taken time.Time
	// Hashes holds one hash per page, indexed by page frame number.
	Hashes []PageHash
}

// NumPages reports the number of pages covered by the fingerprint.
func (f *Fingerprint) NumPages() int { return len(f.Hashes) }

// UniqueSet returns the set of distinct page hashes as a map from hash to
// the number of pages carrying it.
func (f *Fingerprint) UniqueSet() map[PageHash]int {
	u := make(map[PageHash]int, len(f.Hashes))
	for _, h := range f.Hashes {
		u[h]++
	}
	return u
}

// UniqueCount reports |U|, the number of distinct page hashes.
func (f *Fingerprint) UniqueCount() int { return len(f.UniqueSet()) }

// DupFraction reports the fraction of duplicate pages,
// 1 − unique/total (§4.2, Figure 4). It is 0 for an empty fingerprint.
func (f *Fingerprint) DupFraction() float64 {
	if len(f.Hashes) == 0 {
		return 0
	}
	return 1 - float64(f.UniqueCount())/float64(len(f.Hashes))
}

// ZeroFraction reports the fraction of pages containing only zeros
// (Figure 4, rightmost panel).
func (f *Fingerprint) ZeroFraction() float64 {
	if len(f.Hashes) == 0 {
		return 0
	}
	zeros := 0
	for _, h := range f.Hashes {
		if h == ZeroPage {
			zeros++
		}
	}
	return float64(zeros) / float64(len(f.Hashes))
}

// Similarity reports the paper's fingerprint similarity |Ua ∩ Ub| / |Ua|:
// the fraction of a's unique content also present in b. Note the asymmetry —
// a is the fingerprint whose reuse potential is being estimated (the VM's
// current state) and b the old checkpoint. An empty a yields 0.
func Similarity(a, b *Fingerprint) float64 {
	ua := a.UniqueSet()
	if len(ua) == 0 {
		return 0
	}
	ub := b.UniqueSet()
	shared := 0
	for h := range ua {
		if _, ok := ub[h]; ok {
			shared++
		}
	}
	return float64(shared) / float64(len(ua))
}

// DirtyPages reports, for two fingerprints of the same machine, the number
// of page frames whose content changed between old and cur. This is the
// trace-level stand-in for hardware dirty tracking used in §4.3: "given two
// fingerprints we say a page is dirty if its content changed between the two
// fingerprints". Frames present in only one fingerprint (a resized machine)
// count as dirty.
func DirtyPages(old, cur *Fingerprint) int {
	n := len(old.Hashes)
	if len(cur.Hashes) < n {
		n = len(cur.Hashes)
	}
	dirty := 0
	for i := 0; i < n; i++ {
		if old.Hashes[i] != cur.Hashes[i] {
			dirty++
		}
	}
	dirty += len(old.Hashes) - n
	dirty += len(cur.Hashes) - n
	return dirty
}

// Validate performs basic sanity checks on the fingerprint.
func (f *Fingerprint) Validate() error {
	if len(f.Hashes) == 0 {
		return fmt.Errorf("fingerprint: no pages")
	}
	if f.Taken.IsZero() {
		return fmt.Errorf("fingerprint: zero timestamp")
	}
	return nil
}

// Clone returns an independent deep copy of the fingerprint.
func (f *Fingerprint) Clone() *Fingerprint {
	h := make([]PageHash, len(f.Hashes))
	copy(h, f.Hashes)
	return &Fingerprint{Taken: f.Taken, Hashes: h}
}
