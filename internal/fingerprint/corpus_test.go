package fingerprint

import (
	"math"
	"testing"
	"time"
)

func mkCorpus(t *testing.T, fps ...*Fingerprint) *Corpus {
	t.Helper()
	c, err := NewCorpus(fps)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCorpusValidation(t *testing.T) {
	if _, err := NewCorpus(nil); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := NewCorpus([]*Fingerprint{fp(t0)}); err == nil {
		t.Error("invalid fingerprint accepted")
	}
	// Out of order.
	a := fp(t0.Add(time.Hour), 1)
	b := fp(t0, 1)
	if _, err := NewCorpus([]*Fingerprint{a, b}); err == nil {
		t.Error("unordered corpus accepted")
	}
}

func TestCorpusSimilarityMatchesDirect(t *testing.T) {
	fps := []*Fingerprint{
		fp(t0, 1, 2, 3, 4),
		fp(t0.Add(30*time.Minute), 3, 4, 5, 6),
		fp(t0.Add(time.Hour), 1, 2, 3, 4),
	}
	c := mkCorpus(t, fps...)
	for i := 0; i < len(fps); i++ {
		for j := i + 1; j < len(fps); j++ {
			want := Similarity(fps[j], fps[i])
			if got := c.Similarity(i, j); math.Abs(got-want) > 1e-12 {
				t.Errorf("Similarity(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestCorpusDelta(t *testing.T) {
	c := mkCorpus(t,
		fp(t0, 1),
		fp(t0.Add(90*time.Minute), 1),
	)
	if got := c.Delta(0, 1); got != 90*time.Minute {
		t.Errorf("Delta = %v", got)
	}
}

func TestBinnedSimilarity(t *testing.T) {
	// Four fingerprints 30 minutes apart; page 0 churns every step, pages
	// 1..3 are static. Unique sets are {step, 101, 102, 103}, so any pair's
	// similarity is 3/4.
	fps := make([]*Fingerprint, 4)
	for i := range fps {
		fps[i] = fp(t0.Add(time.Duration(i)*30*time.Minute),
			PageHash(1000+i), 101, 102, 103)
	}
	c := mkCorpus(t, fps...)
	series, err := c.BinnedSimilarity(30*time.Minute, 2*time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series has %d bins, want 3 (deltas 30m, 60m, 90m)", len(series))
	}
	wantN := []int{3, 2, 1} // pairs per delta
	for i, bs := range series {
		if bs.N != wantN[i] {
			t.Errorf("bin %d N = %d, want %d", i, bs.N, wantN[i])
		}
		if math.Abs(bs.Avg-0.75) > 1e-12 {
			t.Errorf("bin %d Avg = %v, want 0.75", i, bs.Avg)
		}
	}
}

func TestBinnedSimilarityBadRange(t *testing.T) {
	c := mkCorpus(t, fp(t0, 1))
	if _, err := c.BinnedSimilarity(time.Hour, time.Minute, 1); err == nil {
		t.Error("maxDelta < binWidth accepted")
	}
}

func TestBinnedSimilarityStride(t *testing.T) {
	fps := make([]*Fingerprint, 8)
	for i := range fps {
		fps[i] = fp(t0.Add(time.Duration(i)*30*time.Minute), PageHash(i), 7)
	}
	c := mkCorpus(t, fps...)
	full, err := c.BinnedSimilarity(30*time.Minute, 4*time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	strided, err := c.BinnedSimilarity(30*time.Minute, 4*time.Hour, 2)
	if err != nil {
		t.Fatal(err)
	}
	var nFull, nStrided int
	for _, b := range full {
		nFull += b.N
	}
	for _, b := range strided {
		nStrided += b.N
	}
	if nStrided >= nFull {
		t.Errorf("stride 2 produced %d pairs, full sweep %d", nStrided, nFull)
	}
	// Stride 2 keeps only even-indexed fingerprints: deltas are multiples of
	// an hour.
	for _, b := range strided {
		if b.Center%time.Hour != 0 && b.N > 0 {
			t.Errorf("strided sweep populated off-hour bin %v", b.Center)
		}
	}
}

func TestForEachPair(t *testing.T) {
	fps := make([]*Fingerprint, 5)
	for i := range fps {
		fps[i] = fp(t0.Add(time.Duration(i)*time.Hour), PageHash(i), 7)
	}
	c := mkCorpus(t, fps...)
	count := 0
	c.ForEachPair(1, 0, func(old, cur int, delta time.Duration) {
		if old >= cur {
			t.Errorf("pair (%d,%d) not ordered", old, cur)
		}
		if want := c.Delta(old, cur); delta != want {
			t.Errorf("delta %v, want %v", delta, want)
		}
		count++
	})
	if count != 10 {
		t.Errorf("visited %d pairs, want C(5,2)=10", count)
	}
	// With a delta cap of 1h only adjacent pairs remain.
	count = 0
	c.ForEachPair(1, time.Hour, func(_, _ int, _ time.Duration) { count++ })
	if count != 4 {
		t.Errorf("capped sweep visited %d pairs, want 4", count)
	}
}

func TestDupAndZeroSeries(t *testing.T) {
	c := mkCorpus(t,
		fp(t0, ZeroPage, 1, 1, 2),
		fp(t0.Add(time.Hour), 1, 2, 3, 4),
	)
	dup := c.DupSeries()
	if len(dup) != 2 {
		t.Fatalf("DupSeries length %d", len(dup))
	}
	if dup[0].X != 0 || dup[0].Y != 0.25 {
		t.Errorf("dup[0] = %+v, want (0, 0.25)", dup[0])
	}
	if dup[1].X != 1 || dup[1].Y != 0 {
		t.Errorf("dup[1] = %+v, want (1, 0)", dup[1])
	}
	zero := c.ZeroSeries()
	if zero[0].Y != 0.25 || zero[1].Y != 0 {
		t.Errorf("ZeroSeries = %+v", zero)
	}
}

func TestSortedUnique(t *testing.T) {
	got := sortedUnique([]PageHash{5, 1, 5, 3, 1, 1})
	want := []PageHash{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("sortedUnique = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortedUnique = %v, want %v", got, want)
		}
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct {
		a, b []PageHash
		want int
	}{
		{nil, nil, 0},
		{[]PageHash{1, 2, 3}, nil, 0},
		{[]PageHash{1, 2, 3}, []PageHash{2, 3, 4}, 2},
		{[]PageHash{1, 2, 3}, []PageHash{1, 2, 3}, 3},
		{[]PageHash{1, 3, 5}, []PageHash{2, 4, 6}, 0},
	}
	for _, tc := range cases {
		if got := intersectSorted(tc.a, tc.b); got != tc.want {
			t.Errorf("intersectSorted(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
