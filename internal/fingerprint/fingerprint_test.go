package fingerprint

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func fp(t time.Time, hashes ...PageHash) *Fingerprint {
	return &Fingerprint{Taken: t, Hashes: hashes}
}

var t0 = time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC)

func TestUniqueSet(t *testing.T) {
	f := fp(t0, 1, 1, 2, 3, 3, 3)
	u := f.UniqueSet()
	if len(u) != 3 {
		t.Fatalf("unique count = %d, want 3", len(u))
	}
	if u[1] != 2 || u[2] != 1 || u[3] != 3 {
		t.Errorf("multiplicities wrong: %v", u)
	}
	if f.UniqueCount() != 3 {
		t.Errorf("UniqueCount = %d", f.UniqueCount())
	}
}

func TestDupFraction(t *testing.T) {
	cases := []struct {
		name   string
		hashes []PageHash
		want   float64
	}{
		{"all distinct", []PageHash{1, 2, 3, 4}, 0},
		{"half dup", []PageHash{1, 1, 2, 2}, 0.5},
		{"all same", []PageHash{7, 7, 7, 7}, 0.75},
		{"empty", nil, 0},
	}
	for _, tc := range cases {
		f := fp(t0, tc.hashes...)
		if got := f.DupFraction(); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: DupFraction = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestZeroFraction(t *testing.T) {
	f := fp(t0, ZeroPage, 1, ZeroPage, 2)
	if got := f.ZeroFraction(); got != 0.5 {
		t.Errorf("ZeroFraction = %v, want 0.5", got)
	}
	if got := fp(t0).ZeroFraction(); got != 0 {
		t.Errorf("empty ZeroFraction = %v, want 0", got)
	}
}

func TestSimilarityPaperDefinition(t *testing.T) {
	// Ua = {1,2,3,4}, Ub = {3,4,5}: |Ua ∩ Ub| / |Ua| = 2/4.
	a := fp(t0, 1, 2, 3, 4)
	b := fp(t0, 3, 4, 5)
	if got := Similarity(a, b); got != 0.5 {
		t.Errorf("Similarity = %v, want 0.5", got)
	}
	// Asymmetric: with respect to b it is 2/3.
	if got := Similarity(b, a); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Similarity(b,a) = %v, want 2/3", got)
	}
}

func TestSimilarityIgnoresMultiplicity(t *testing.T) {
	// Duplicates must not inflate similarity: unique-set semantics.
	a := fp(t0, 1, 1, 1, 1, 2)
	b := fp(t0, 1)
	if got := Similarity(a, b); got != 0.5 {
		t.Errorf("Similarity = %v, want 0.5 (|{1,2} ∩ {1}|/|{1,2}|)", got)
	}
}

func TestSimilarityEdgeCases(t *testing.T) {
	empty := fp(t0)
	full := fp(t0, 1, 2)
	if got := Similarity(empty, full); got != 0 {
		t.Errorf("empty a: %v, want 0", got)
	}
	if got := Similarity(full, full); got != 1 {
		t.Errorf("identical: %v, want 1", got)
	}
	if got := Similarity(full, empty); got != 0 {
		t.Errorf("empty b: %v, want 0", got)
	}
}

func TestDirtyPages(t *testing.T) {
	old := fp(t0, 1, 2, 3, 4)
	cur := fp(t0.Add(time.Hour), 1, 9, 3, 8)
	if got := DirtyPages(old, cur); got != 2 {
		t.Errorf("DirtyPages = %d, want 2", got)
	}
	if got := DirtyPages(old, old); got != 0 {
		t.Errorf("self DirtyPages = %d, want 0", got)
	}
}

func TestDirtyPagesResized(t *testing.T) {
	old := fp(t0, 1, 2)
	cur := fp(t0, 1, 2, 3, 4)
	if got := DirtyPages(old, cur); got != 2 {
		t.Errorf("grown machine DirtyPages = %d, want 2", got)
	}
	if got := DirtyPages(cur, old); got != 2 {
		t.Errorf("shrunk machine DirtyPages = %d, want 2", got)
	}
}

// Property: a page moving to a different frame with unchanged content is
// dirty under tracking but free under content hashes — the Miyakodori
// overestimate illustrated in Figure 5's caption.
func TestMovedPageDirtyButSimilar(t *testing.T) {
	old := fp(t0, 10, 20, 30)
	cur := fp(t0.Add(time.Hour), 20, 10, 30) // frames 0 and 1 swapped
	if got := DirtyPages(old, cur); got != 2 {
		t.Fatalf("DirtyPages = %d, want 2", got)
	}
	if got := Similarity(cur, old); got != 1 {
		t.Fatalf("Similarity = %v, want 1", got)
	}
}

func TestValidate(t *testing.T) {
	if err := fp(t0, 1).Validate(); err != nil {
		t.Errorf("valid fingerprint rejected: %v", err)
	}
	if err := fp(t0).Validate(); err == nil {
		t.Error("empty fingerprint accepted")
	}
	if err := (&Fingerprint{Hashes: []PageHash{1}}).Validate(); err == nil {
		t.Error("zero timestamp accepted")
	}
}

func TestClone(t *testing.T) {
	a := fp(t0, 1, 2, 3)
	b := a.Clone()
	b.Hashes[0] = 99
	if a.Hashes[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if !b.Taken.Equal(a.Taken) {
		t.Error("Clone lost timestamp")
	}
}

// Property: similarity is always in [0, 1], and self-similarity of a
// non-empty fingerprint is exactly 1.
func TestSimilarityBounds(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		a := &Fingerprint{Taken: t0}
		for _, x := range xs {
			a.Hashes = append(a.Hashes, PageHash(x))
		}
		b := &Fingerprint{Taken: t0}
		for _, y := range ys {
			b.Hashes = append(b.Hashes, PageHash(y))
		}
		s := Similarity(a, b)
		if s < 0 || s > 1 {
			return false
		}
		if len(a.Hashes) > 0 && Similarity(a, a) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DupFraction is in [0, 1) for non-empty inputs and 0 iff all
// hashes are distinct.
func TestDupFractionBounds(t *testing.T) {
	f := func(xs []uint64) bool {
		fg := &Fingerprint{Taken: t0}
		for _, x := range xs {
			fg.Hashes = append(fg.Hashes, PageHash(x))
		}
		d := fg.DupFraction()
		if d < 0 || d >= 1 && len(xs) > 0 {
			return false
		}
		distinct := fg.UniqueCount() == len(fg.Hashes)
		return (d == 0) == (distinct || len(xs) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
