package methods

import (
	"testing"
	"testing/quick"
	"time"

	"vecycle/internal/fingerprint"
)

var t0 = time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)

func fp(hashes ...fingerprint.PageHash) *fingerprint.Fingerprint {
	return &fingerprint.Fingerprint{Taken: t0, Hashes: hashes}
}

func TestMethodString(t *testing.T) {
	want := map[Method]string{
		Full:        "full",
		Dedup:       "dedup",
		Dirty:       "dirty",
		DirtyDedup:  "dirty+dedup",
		Hashes:      "hashes",
		HashesDedup: "hashes+dedup",
		Method(42):  "method(42)",
	}
	for m, s := range want {
		if got := m.String(); got != s {
			t.Errorf("String(%d) = %q, want %q", m, got, s)
		}
	}
	if len(All()) != 6 {
		t.Errorf("All() has %d methods", len(All()))
	}
}

func TestAnalyzeIdenticalStates(t *testing.T) {
	f := fp(1, 2, 3, 4)
	b := Analyze(f, f)
	if b.DirtyPages != 0 || b.HashPages != 0 || b.HashDedupPages != 0 || b.DirtyDedupPages != 0 {
		t.Errorf("identical states should transfer nothing: %+v", b)
	}
	if b.DedupPages != 4 {
		t.Errorf("DedupPages = %d, want 4", b.DedupPages)
	}
}

func TestAnalyzeNoCheckpoint(t *testing.T) {
	cur := fp(1, 1, 2, 3)
	b := Analyze(nil, cur)
	if b.DirtyPages != 4 || b.HashPages != 4 {
		t.Errorf("first migration must send everything: %+v", b)
	}
	if b.DedupPages != 3 || b.HashDedupPages != 3 || b.DirtyDedupPages != 3 {
		t.Errorf("dedup on first migration wrong: %+v", b)
	}
}

func TestAnalyzeWorkedExample(t *testing.T) {
	// Checkpoint:  [A B C D E]
	// Current:     [A X C E E]   (B→X new content; D→E recreated content)
	old := fp(10, 20, 30, 40, 50)
	cur := fp(10, 99, 30, 50, 50)
	b := Analyze(old, cur)
	if b.TotalPages != 5 {
		t.Errorf("TotalPages = %d", b.TotalPages)
	}
	// Distinct current contents: {10, 99, 30, 50} = 4.
	if b.DedupPages != 4 {
		t.Errorf("DedupPages = %d, want 4", b.DedupPages)
	}
	// Dirty frames: 1 (20→99), 3 (40→50), 4 (50→50? no — unchanged).
	if b.DirtyPages != 2 {
		t.Errorf("DirtyPages = %d, want 2", b.DirtyPages)
	}
	// Distinct dirty contents: {99, 50} = 2.
	if b.DirtyDedupPages != 2 {
		t.Errorf("DirtyDedupPages = %d, want 2", b.DirtyDedupPages)
	}
	// Contents absent from checkpoint: only 99, present in one page.
	if b.HashPages != 1 {
		t.Errorf("HashPages = %d, want 1", b.HashPages)
	}
	if b.HashDedupPages != 1 {
		t.Errorf("HashDedupPages = %d, want 1", b.HashDedupPages)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeMovedContent(t *testing.T) {
	// Contents swap frames: dirty tracking transfers both, content hashes
	// transfer nothing — the Miyakodori overestimate (§4.3, Figure 5).
	old := fp(10, 20, 30)
	cur := fp(20, 10, 30)
	b := Analyze(old, cur)
	if b.DirtyPages != 2 {
		t.Errorf("DirtyPages = %d, want 2", b.DirtyPages)
	}
	if b.HashPages != 0 {
		t.Errorf("HashPages = %d, want 0 (content still in checkpoint)", b.HashPages)
	}
}

func TestAnalyzeGrownVM(t *testing.T) {
	old := fp(1, 2)
	cur := fp(1, 2, 3, 4)
	b := Analyze(old, cur)
	if b.DirtyPages != 2 {
		t.Errorf("DirtyPages = %d, want 2 (new frames are dirty)", b.DirtyPages)
	}
	if b.HashPages != 2 {
		t.Errorf("HashPages = %d, want 2", b.HashPages)
	}
}

func TestAnalyzeDuplicateNewContent(t *testing.T) {
	// Five frames re-filled with the same new content: pure hashes sends
	// five pages, hashes+dedup sends one.
	old := fp(1, 2, 3, 4, 5)
	cur := fp(9, 9, 9, 9, 9)
	b := Analyze(old, cur)
	if b.HashPages != 5 {
		t.Errorf("HashPages = %d, want 5", b.HashPages)
	}
	if b.HashDedupPages != 1 {
		t.Errorf("HashDedupPages = %d, want 1", b.HashDedupPages)
	}
}

func TestFraction(t *testing.T) {
	old := fp(1, 2, 3, 4)
	cur := fp(1, 2, 9, 9)
	b := Analyze(old, cur)
	if got := b.Fraction(Full); got != 1 {
		t.Errorf("Fraction(Full) = %v", got)
	}
	if got := b.Fraction(Hashes); got != 0.5 {
		t.Errorf("Fraction(Hashes) = %v, want 0.5", got)
	}
	empty := Breakdown{}
	if got := empty.Fraction(Full); got != 0 {
		t.Errorf("empty Fraction = %v", got)
	}
}

func TestPagesInvalidMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid method did not panic")
		}
	}()
	Breakdown{}.Pages(Method(0))
}

func TestReductionOverDirtyDedup(t *testing.T) {
	b := Breakdown{DirtyDedupPages: 100, HashDedupPages: 60}
	if got := b.ReductionOverDirtyDedup(); got != 40 {
		t.Errorf("reduction = %v, want 40", got)
	}
	zero := Breakdown{}
	if got := zero.ReductionOverDirtyDedup(); got != 0 {
		t.Errorf("zero dirty+dedup reduction = %v, want 0", got)
	}
}

// Property: the Figure 3 set relations hold for arbitrary fingerprint pairs.
func TestInvariantsProperty(t *testing.T) {
	f := func(oldRaw, curRaw []uint8) bool {
		// Narrow the hash space to force collisions, duplicates and moves.
		old := &fingerprint.Fingerprint{Taken: t0}
		for _, h := range oldRaw {
			old.Hashes = append(old.Hashes, fingerprint.PageHash(h%16))
		}
		cur := &fingerprint.Fingerprint{Taken: t0}
		for _, h := range curRaw {
			cur.Hashes = append(cur.Hashes, fingerprint.PageHash(h%16))
		}
		b := Analyze(old, cur)
		if err := b.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		// Also for the no-checkpoint case.
		if err := Analyze(nil, cur).CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: HashPages equals TotalPages minus the pages whose content
// exists in the checkpoint, and is consistent with similarity: identical
// fingerprints yield zero.
func TestHashesZeroOnIdentical(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		x := &fingerprint.Fingerprint{Taken: t0}
		for _, h := range raw {
			x.Hashes = append(x.Hashes, fingerprint.PageHash(h))
		}
		b := Analyze(x, x)
		return b.HashPages == 0 && b.DirtyPages == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
