// Package methods computes, for a pair of memory fingerprints (the stored
// checkpoint and the VM's state at migration time), how many pages each
// traffic-reduction technique would transfer — the analysis behind Figures
// 3, 5 and 8 of the paper.
//
// The six techniques:
//
//   - Full: the baseline; every page crosses the network.
//   - Dedup: sender-side deduplication (CloudNet-style) — each distinct
//     content is sent once, further copies as small references.
//   - Dirty: Miyakodori-style dirty tracking — frames written since the
//     checkpoint are sent, clean frames reused from the checkpoint.
//   - DirtyDedup: dirty tracking with the dirty set deduplicated.
//   - Hashes: VeCycle's content-based redundancy elimination — pages whose
//     content already exists anywhere in the checkpoint are replaced by a
//     checksum.
//   - HashesDedup: content-based elimination plus deduplication — each
//     *new* distinct content is sent exactly once.
//
// The set relations of Figure 3 hold by construction and are asserted by
// the package tests: every page skipped by dirty tracking is also skipped
// by content hashes (an unwritten frame's content is necessarily present in
// the checkpoint), so Hashes ≤ Dirty, while the converse fails for content
// that moved between frames or was re-created.
package methods

import (
	"fmt"

	"vecycle/internal/fingerprint"
)

// Method identifies a traffic-reduction technique.
type Method uint8

// The techniques compared in Figure 5, in the paper's plotting order.
const (
	Full Method = iota + 1
	Dedup
	Dirty
	DirtyDedup
	Hashes
	HashesDedup
)

// String returns the paper's label for the method.
func (m Method) String() string {
	switch m {
	case Full:
		return "full"
	case Dedup:
		return "dedup"
	case Dirty:
		return "dirty"
	case DirtyDedup:
		return "dirty+dedup"
	case Hashes:
		return "hashes"
	case HashesDedup:
		return "hashes+dedup"
	default:
		return fmt.Sprintf("method(%d)", uint8(m))
	}
}

// All lists every method in plotting order.
func All() []Method {
	return []Method{Full, Dedup, Dirty, DirtyDedup, Hashes, HashesDedup}
}

// Breakdown holds the number of full pages each method transfers for one
// fingerprint pair.
type Breakdown struct {
	// TotalPages is the VM size in pages — the Full transfer count.
	TotalPages int
	// DedupPages counts distinct contents in the current state.
	DedupPages int
	// DirtyPages counts frames whose content changed since the checkpoint.
	DirtyPages int
	// DirtyDedupPages counts distinct contents among dirty frames.
	DirtyDedupPages int
	// HashPages counts pages whose content is absent from the checkpoint.
	HashPages int
	// HashDedupPages counts distinct contents absent from the checkpoint.
	HashDedupPages int
}

// Pages reports the transfer count for a method.
func (b Breakdown) Pages(m Method) int {
	switch m {
	case Full:
		return b.TotalPages
	case Dedup:
		return b.DedupPages
	case Dirty:
		return b.DirtyPages
	case DirtyDedup:
		return b.DirtyDedupPages
	case Hashes:
		return b.HashPages
	case HashesDedup:
		return b.HashDedupPages
	default:
		panic(fmt.Sprintf("methods: Pages called with invalid %v", m))
	}
}

// Fraction reports a method's transfer count as a fraction of the baseline
// — the y-axis of Figure 5's bar chart ("Fraction of Baseline Traffic").
func (b Breakdown) Fraction(m Method) float64 {
	if b.TotalPages == 0 {
		return 0
	}
	return float64(b.Pages(m)) / float64(b.TotalPages)
}

// Analyze computes the full breakdown for a checkpoint/current fingerprint
// pair. A nil old fingerprint models the very first migration, when no
// checkpoint exists: dirty tracking and content hashes degrade to a full
// transfer (deduplication still applies).
func Analyze(old, cur *fingerprint.Fingerprint) Breakdown {
	n := len(cur.Hashes)
	b := Breakdown{TotalPages: n}

	ucur := cur.UniqueSet()
	b.DedupPages = len(ucur)

	if old == nil {
		b.DirtyPages = n
		b.DirtyDedupPages = len(ucur)
		b.HashPages = n
		b.HashDedupPages = len(ucur)
		return b
	}

	uold := old.UniqueSet()

	// Dirty frames: content at the same frame number changed. Frames beyond
	// the checkpoint's size count as dirty.
	overlap := len(old.Hashes)
	if n < overlap {
		overlap = n
	}
	dirtyDistinct := make(map[fingerprint.PageHash]struct{})
	for i := 0; i < n; i++ {
		dirty := i >= overlap || cur.Hashes[i] != old.Hashes[i]
		if !dirty {
			continue
		}
		b.DirtyPages++
		dirtyDistinct[cur.Hashes[i]] = struct{}{}
		// Content-based elimination sends the page only if its content is
		// nowhere in the checkpoint. A clean frame's content is by
		// definition in the checkpoint, so only dirty frames can miss.
		if _, ok := uold[cur.Hashes[i]]; !ok {
			b.HashPages++
		}
	}
	b.DirtyDedupPages = len(dirtyDistinct)
	for h := range dirtyDistinct {
		if _, ok := uold[h]; !ok {
			b.HashDedupPages++
		}
	}
	return b
}

// ReductionOverDirtyDedup reports by how much hashes+dedup undercuts
// dirty+dedup for this pair, in percent of the dirty+dedup transfer — the
// x-axis of Figure 5's CDF panels. A pair where dirty+dedup transfers
// nothing yields 0.
func (b Breakdown) ReductionOverDirtyDedup() float64 {
	if b.DirtyDedupPages == 0 {
		return 0
	}
	return 100 * float64(b.DirtyDedupPages-b.HashDedupPages) / float64(b.DirtyDedupPages)
}

// CheckInvariants verifies the set relations of Figure 3. It returns a
// descriptive error when a relation is violated; the property tests drive
// random fingerprints through it.
func (b Breakdown) CheckInvariants() error {
	type rel struct {
		name   string
		lo, hi int
	}
	rels := []rel{
		{"dedup <= full", b.DedupPages, b.TotalPages},
		{"dirty <= full", b.DirtyPages, b.TotalPages},
		{"dirty+dedup <= dirty", b.DirtyDedupPages, b.DirtyPages},
		{"hashes <= dirty", b.HashPages, b.DirtyPages},
		{"hashes+dedup <= hashes", b.HashDedupPages, b.HashPages},
		{"hashes+dedup <= dirty+dedup", b.HashDedupPages, b.DirtyDedupPages},
		{"hashes+dedup <= dedup", b.HashDedupPages, b.DedupPages},
		{"dirty+dedup <= dedup", b.DirtyDedupPages, b.DedupPages},
	}
	for _, r := range rels {
		if r.lo > r.hi {
			return fmt.Errorf("methods: invariant %q violated: %d > %d", r.name, r.lo, r.hi)
		}
	}
	return nil
}
