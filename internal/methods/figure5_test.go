package methods

import (
	"testing"

	"vecycle/internal/fingerprint"
	"vecycle/internal/memmodel"
)

// TestFigure5Ordering replays the Figure 5 analysis over the synthetic
// Server A and Server B traces and checks the paper's method ordering and
// approximate magnitudes (paper means, fraction of baseline traffic —
// Server A: dedup 0.92, dirty 0.80, dirty+dedup 0.77, hashes 0.65,
// hashes+dedup 0.64; Server B: dedup 0.85, dirty 0.78, dirty+dedup 0.69,
// hashes 0.59, hashes+dedup 0.53).
func TestFigure5Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("all-pairs sweep is quadratic in trace length")
	}
	type target struct {
		preset memmodel.Preset
		want   map[Method]float64 // paper's reported means
	}
	targets := []target{
		{memmodel.ServerA(), map[Method]float64{
			Dedup: 0.92, Dirty: 0.80, DirtyDedup: 0.77, Hashes: 0.65, HashesDedup: 0.64,
		}},
		{memmodel.ServerB(), map[Method]float64{
			Dedup: 0.85, Dirty: 0.78, DirtyDedup: 0.69, Hashes: 0.59, HashesDedup: 0.53,
		}},
	}
	const tolerance = 0.17
	for _, tc := range targets {
		m, err := tc.preset.Build()
		if err != nil {
			t.Fatal(err)
		}
		fps := m.Trace(tc.preset.TraceSteps)
		corpus, err := fingerprint.NewCorpus(fps)
		if err != nil {
			t.Fatal(err)
		}
		sums := map[Method]float64{}
		pairs := 0
		for i := 0; i < corpus.Len(); i += 6 {
			for j := i + 6; j < corpus.Len(); j += 6 {
				b := Analyze(corpus.At(i), corpus.At(j))
				if err := b.CheckInvariants(); err != nil {
					t.Fatalf("%s pair (%d,%d): %v", tc.preset.Config.Name, i, j, err)
				}
				for _, meth := range All() {
					sums[meth] += b.Fraction(meth)
				}
				pairs++
			}
		}
		name := tc.preset.Config.Name
		means := map[Method]float64{}
		for _, meth := range All() {
			means[meth] = sums[meth] / float64(pairs)
		}
		t.Logf("%s means over %d pairs: dedup=%.2f dirty=%.2f dirty+dedup=%.2f hashes=%.2f hashes+dedup=%.2f",
			name, pairs, means[Dedup], means[Dirty], means[DirtyDedup], means[Hashes], means[HashesDedup])

		// The paper's ordering: full > dedup > dirty > dirty+dedup >
		// hashes >= hashes+dedup.
		order := []Method{Full, Dedup, Dirty, DirtyDedup, Hashes}
		for i := 1; i < len(order); i++ {
			if means[order[i]] >= means[order[i-1]] {
				t.Errorf("%s: mean(%v)=%.3f not below mean(%v)=%.3f",
					name, order[i], means[order[i]], order[i-1], means[order[i-1]])
			}
		}
		if means[HashesDedup] > means[Hashes] {
			t.Errorf("%s: hashes+dedup above hashes", name)
		}
		for meth, want := range tc.want {
			got := means[meth]
			if got < want-tolerance || got > want+tolerance {
				t.Errorf("%s %v mean = %.3f, paper reports %.2f (tolerance ±%.2f)",
					name, meth, got, want, tolerance)
			}
		}
	}
}
