// Package dirtytrack provides the two dirty-page mechanisms the paper
// compares against content-based redundancy elimination (§4.3): plain dirty
// bitmaps, as used by pre-copy live migration to find the pages updated
// during a copy round, and Miyakodori-style per-page generation counters,
// which let a returning VM skip pages whose generation has not advanced
// since the checkpoint was written.
package dirtytrack

import (
	"fmt"
	"math/bits"
)

// Bitmap is a fixed-size dirty-page bitmap. The zero value is unusable;
// construct with NewBitmap.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap creates a bitmap tracking n pages, all initially clean.
func NewBitmap(n int) (*Bitmap, error) {
	if n < 0 {
		return nil, fmt.Errorf("dirtytrack: negative page count %d", n)
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}, nil
}

// Len reports the number of tracked pages.
func (b *Bitmap) Len() int { return b.n }

// Set marks page i dirty. It panics if i is out of range, mirroring slice
// indexing.
func (b *Bitmap) Set(i int) {
	b.check(i)
	b.words[i/64] |= 1 << (uint(i) % 64)
}

// Clear marks page i clean.
func (b *Bitmap) Clear(i int) {
	b.check(i)
	b.words[i/64] &^= 1 << (uint(i) % 64)
}

// Test reports whether page i is dirty.
func (b *Bitmap) Test(i int) bool {
	b.check(i)
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("dirtytrack: page %d out of range [0,%d)", i, b.n))
	}
}

// Count reports the number of dirty pages.
func (b *Bitmap) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Reset marks every page clean.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// SetAll marks every page dirty (the state at the start of a migration's
// first copy round).
func (b *Bitmap) SetAll() {
	for i := 0; i < b.n; i++ {
		b.Set(i)
	}
}

// ForEachSet calls fn for every dirty page in ascending order.
func (b *Bitmap) ForEachSet(fn func(page int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			page := wi*64 + bit
			if page >= b.n {
				return
			}
			fn(page)
			w &^= 1 << uint(bit)
		}
	}
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return &Bitmap{words: words, n: b.n}
}
