package dirtytrack

import "fmt"

// GenVector is a snapshot of per-page generation counters, as stored by
// Miyakodori alongside each checkpoint (§4.3): "each page has a generation
// counter that is incremented if the page is written to after a migration".
type GenVector []uint32

// Tracker maintains live generation counters for a VM's pages.
// The zero value is unusable; construct with NewTracker.
type Tracker struct {
	gens GenVector
}

// NewTracker creates a tracker for n pages, all at generation zero.
func NewTracker(n int) (*Tracker, error) {
	if n < 0 {
		return nil, fmt.Errorf("dirtytrack: negative page count %d", n)
	}
	return &Tracker{gens: make(GenVector, n)}, nil
}

// Len reports the number of tracked pages.
func (t *Tracker) Len() int { return len(t.gens) }

// Touch records a write to page i, advancing its generation. It panics if i
// is out of range.
func (t *Tracker) Touch(i int) { t.gens[i]++ }

// Generation reports page i's current generation.
func (t *Tracker) Generation(i int) uint32 { return t.gens[i] }

// Snapshot copies the current generation vector — taken when a checkpoint
// is written on an outgoing migration.
func (t *Tracker) Snapshot() GenVector {
	out := make(GenVector, len(t.gens))
	copy(out, t.gens)
	return out
}

// UnchangedSince reports which pages have not been written since the
// snapshot was taken: exactly the pages Miyakodori reuses from the local
// checkpoint on an incoming migration. Pages outside the snapshot's range
// (a resized VM) count as changed.
func (t *Tracker) UnchangedSince(snap GenVector) *Bitmap {
	bm, err := NewBitmap(len(t.gens))
	if err != nil {
		// Unreachable: len() is never negative.
		panic(err)
	}
	n := len(snap)
	if len(t.gens) < n {
		n = len(t.gens)
	}
	for i := 0; i < n; i++ {
		if t.gens[i] == snap[i] {
			bm.Set(i)
		}
	}
	return bm
}

// DirtyCountSince reports how many pages changed since the snapshot —
// the transfer set size under pure dirty tracking.
func (t *Tracker) DirtyCountSince(snap GenVector) int {
	return t.Len() - t.UnchangedSince(snap).Count()
}
