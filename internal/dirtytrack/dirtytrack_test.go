package dirtytrack

import (
	"testing"
	"testing/quick"
)

func TestNewBitmapValidation(t *testing.T) {
	if _, err := NewBitmap(-1); err == nil {
		t.Error("negative size accepted")
	}
	bm, err := NewBitmap(0)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Len() != 0 || bm.Count() != 0 {
		t.Error("empty bitmap not empty")
	}
}

func TestBitmapSetClearTest(t *testing.T) {
	bm, err := NewBitmap(130) // spans three words
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if bm.Test(i) {
			t.Errorf("page %d dirty at start", i)
		}
		bm.Set(i)
		if !bm.Test(i) {
			t.Errorf("page %d clean after Set", i)
		}
	}
	if bm.Count() != 6 {
		t.Errorf("Count = %d, want 6", bm.Count())
	}
	bm.Clear(64)
	if bm.Test(64) || bm.Count() != 5 {
		t.Error("Clear failed")
	}
}

func TestBitmapSetIdempotent(t *testing.T) {
	bm, _ := NewBitmap(10)
	bm.Set(3)
	bm.Set(3)
	if bm.Count() != 1 {
		t.Errorf("double Set counted twice: %d", bm.Count())
	}
}

func TestBitmapOutOfRangePanics(t *testing.T) {
	bm, _ := NewBitmap(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("access to page %d did not panic", i)
				}
			}()
			bm.Test(i)
		}()
	}
}

func TestBitmapResetSetAll(t *testing.T) {
	bm, _ := NewBitmap(100)
	bm.SetAll()
	if bm.Count() != 100 {
		t.Errorf("SetAll count = %d", bm.Count())
	}
	bm.Reset()
	if bm.Count() != 0 {
		t.Errorf("Reset count = %d", bm.Count())
	}
}

func TestBitmapForEachSet(t *testing.T) {
	bm, _ := NewBitmap(200)
	want := []int{0, 1, 63, 64, 65, 128, 199}
	for _, i := range want {
		bm.Set(i)
	}
	var got []int
	bm.ForEachSet(func(p int) { got = append(got, p) })
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v (order must be ascending)", got, want)
		}
	}
}

func TestBitmapClone(t *testing.T) {
	bm, _ := NewBitmap(10)
	bm.Set(5)
	c := bm.Clone()
	c.Set(6)
	if bm.Test(6) {
		t.Error("Clone shares storage")
	}
	if !c.Test(5) {
		t.Error("Clone lost bits")
	}
}

// Property: Count always equals the number of pages for which Test is true.
func TestBitmapCountConsistent(t *testing.T) {
	f := func(pages []uint8) bool {
		bm, err := NewBitmap(256)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, p := range pages {
			bm.Set(int(p))
			seen[int(p)] = true
		}
		if bm.Count() != len(seen) {
			return false
		}
		n := 0
		bm.ForEachSet(func(int) { n++ })
		return n == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(-1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestTrackerMiyakodoriCycle(t *testing.T) {
	// The Miyakodori flow: checkpoint + generation snapshot on the way out,
	// generation comparison on the way back in.
	tr, err := NewTracker(8)
	if err != nil {
		t.Fatal(err)
	}
	tr.Touch(0)
	tr.Touch(1)
	snap := tr.Snapshot() // outgoing migration: checkpoint written here

	tr.Touch(1) // page 1 written again after migration
	tr.Touch(5) // page 5 written for the first time

	unchanged := tr.UnchangedSince(snap)
	wantUnchanged := map[int]bool{0: true, 2: true, 3: true, 4: true, 6: true, 7: true}
	for i := 0; i < 8; i++ {
		if unchanged.Test(i) != wantUnchanged[i] {
			t.Errorf("page %d unchanged = %v, want %v", i, unchanged.Test(i), wantUnchanged[i])
		}
	}
	if got := tr.DirtyCountSince(snap); got != 2 {
		t.Errorf("DirtyCountSince = %d, want 2", got)
	}
}

func TestTrackerSnapshotIsolated(t *testing.T) {
	tr, _ := NewTracker(4)
	snap := tr.Snapshot()
	tr.Touch(0)
	if snap[0] != 0 {
		t.Error("snapshot mutated by later Touch")
	}
}

func TestTrackerResizedVM(t *testing.T) {
	tr, _ := NewTracker(6)
	shortSnap := GenVector{0, 0, 0} // snapshot from when the VM had 3 pages
	unchanged := tr.UnchangedSince(shortSnap)
	if unchanged.Count() != 3 {
		t.Errorf("unchanged = %d, want 3 (new pages count as changed)", unchanged.Count())
	}
	if got := tr.DirtyCountSince(shortSnap); got != 3 {
		t.Errorf("DirtyCountSince = %d, want 3", got)
	}
}

func TestTrackerGeneration(t *testing.T) {
	tr, _ := NewTracker(2)
	if tr.Generation(1) != 0 {
		t.Error("initial generation not zero")
	}
	tr.Touch(1)
	tr.Touch(1)
	if got := tr.Generation(1); got != 2 {
		t.Errorf("Generation = %d, want 2", got)
	}
	if tr.Generation(0) != 0 {
		t.Error("Touch leaked to another page")
	}
}

// Property: DirtyCountSince(snapshot just taken) == 0, and after touching k
// distinct pages it is exactly k.
func TestTrackerDirtyCountProperty(t *testing.T) {
	f := func(pages []uint8) bool {
		tr, err := NewTracker(256)
		if err != nil {
			return false
		}
		snap := tr.Snapshot()
		if tr.DirtyCountSince(snap) != 0 {
			return false
		}
		distinct := map[int]bool{}
		for _, p := range pages {
			tr.Touch(int(p))
			distinct[int(p)] = true
		}
		return tr.DirtyCountSince(snap) == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
