package migsim

import (
	"fmt"
	"time"

	"vecycle/internal/checksum"
	"vecycle/internal/core"
	"vecycle/internal/vm"
)

// PostCopyResult describes a simulated post-copy migration (the Hines &
// Gopalan mode implemented in core, at paper scale).
type PostCopyResult struct {
	// ResumeDelay is the downtime-equivalent: the guest stops at the source
	// when the migration starts and can resume at the destination once the
	// manifest has been transferred and resolved.
	ResumeDelay time.Duration
	// Time is the total migration time including the background fetch of
	// missing pages.
	Time time.Duration
	// MissingPages were fetched over the network after resume.
	MissingPages int
	// SourceSendBytes is the source's total traffic (manifest + pages).
	SourceSendBytes int64
}

// SimulatePostCopy models a post-copy migration of guest g to a host
// holding checkpoint cp (nil for none).
func SimulatePostCopy(g *GuestState, cp *Checkpoint, cost CostModel) (PostCopyResult, error) {
	var res PostCopyResult
	if err := cost.Validate(); err != nil {
		return res, err
	}
	if cp != nil && cp.Pages() != g.Pages() {
		return res, fmt.Errorf("migsim: checkpoint has %d pages, guest %d", cp.Pages(), g.Pages())
	}

	n := g.Pages()
	manifestBytes := int64(8 + 1 + n*checksum.Size)

	// Destination-side manifest resolution: hash each resident frame; read
	// moved blocks from disk.
	var destHashBytes, diskBytes int64
	missing := 0
	for i, content := range g.contents {
		if cp == nil {
			missing++
			continue
		}
		destHashBytes += vm.PageSize
		if cp.contents[i] == content {
			continue
		}
		if _, ok := cp.set[content]; ok {
			diskBytes += vm.PageSize
			continue
		}
		missing++
	}
	res.MissingPages = missing

	// Resume: handshake, manifest transfer, and local resolution. The
	// destination hashes frames while the manifest streams; the slower of
	// the two pipelines dominates, plus the disk reads.
	resolve := cost.computeTime(destHashBytes)
	manifestXfer := cost.transferTime(manifestBytes)
	pipeline := manifestXfer
	if resolve > pipeline {
		pipeline = resolve
	}
	// The source also hashes its memory to build the manifest, overlapped
	// with the transfer.
	srcHash := cost.computeTime(g.MemBytes())
	if srcHash > pipeline {
		pipeline = srcHash
	}
	res.ResumeDelay = cost.Link.RTT() + pipeline + cost.diskTime(diskBytes)

	// Background fetch: pipelined page requests.
	fetchBytes := int64(missing) * core.PageFullMsgBytes
	res.Time = res.ResumeDelay + cost.Link.RTT() + cost.transferTime(fetchBytes)
	res.SourceSendBytes = manifestBytes + fetchBytes
	return res, nil
}
