package migsim

import (
	"fmt"
	"time"

	"vecycle/internal/core"
	"vecycle/internal/vm"
)

// Mode selects the migration strategy.
type Mode uint8

// Migration strategies of Figure 6/7: stock QEMU pre-copy versus
// checkpoint-assisted VeCycle.
const (
	Baseline Mode = iota + 1
	VeCycle
)

// String returns the figure label of the mode.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "QEMU 2.0"
	case VeCycle:
		return "VeCycle"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Result describes one simulated migration.
type Result struct {
	Mode Mode
	// SourceSendBytes is the traffic leaving the migration source — the
	// right panel of Figure 6 ("Source send traffic").
	SourceSendBytes int64
	// AnnounceBytes is the bulk hash announcement received by the source.
	AnnounceBytes int64
	// PagesFull and PagesSum count the two page message kinds.
	PagesFull int
	PagesSum  int
	// Time is the simulated migration time (Figure 6/7 left panels).
	Time time.Duration
	// Pipeline components, for the §3.4 ablation: the migration cannot
	// finish before the slowest of these stages.
	TransferTime time.Duration
	ChecksumTime time.Duration
	DiskTime     time.Duration
}

// Simulate runs one migration of guest g to a host holding checkpoint cp
// (nil for none) under the given cost model. The simulated guest is idle
// during the migration — matching §4.4/4.5, where all updates happen
// between migrations — so a single copy round suffices.
func Simulate(g *GuestState, cp *Checkpoint, cost CostModel, mode Mode) (Result, error) {
	var res Result
	if err := cost.Validate(); err != nil {
		return res, err
	}
	if mode != Baseline && mode != VeCycle {
		return res, fmt.Errorf("migsim: invalid mode %v", mode)
	}
	if cp != nil && cp.Pages() != g.Pages() {
		return res, fmt.Errorf("migsim: checkpoint has %d pages, guest %d", cp.Pages(), g.Pages())
	}
	res.Mode = mode

	n := g.Pages()
	srcBytes := int64(core.HelloMsgBytes(len(g.name)))
	recycle := mode == VeCycle && cp != nil

	var destHashBytes, diskBytes int64
	if recycle {
		// Destination announces every distinct block checksum.
		res.AnnounceBytes = int64(core.AnnounceMsgBytes(cp.UniqueBlocks()))
		for i, content := range g.contents {
			if _, ok := cp.set[content]; ok {
				res.PagesSum++
				srcBytes += core.PageSumMsgBytes
				// Listing 1: the destination hashes the resident frame; on
				// mismatch it reads the block from the checkpoint image.
				destHashBytes += vm.PageSize
				if cp.contents[i] != content {
					diskBytes += vm.PageSize
				}
				continue
			}
			res.PagesFull++
			srcBytes += core.PageFullMsgBytes
		}
		// The source checksums its entire memory during the first round.
		res.ChecksumTime = cost.computeTime(g.MemBytes())
	} else {
		res.PagesFull = n
		srcBytes += int64(n) * core.PageFullMsgBytes
	}
	srcBytes += core.RoundEndMsgBytes + core.DoneMsgBytes
	res.SourceSendBytes = srcBytes

	res.TransferTime = cost.transferTime(srcBytes) + cost.transferTime(res.AnnounceBytes)
	res.DiskTime = cost.diskTime(diskBytes)
	destTime := cost.computeTime(destHashBytes) + res.DiskTime

	// The copy pipeline overlaps checksumming, transfer and destination
	// work; the slowest stage dominates (§3.4: "the checkpoint-assisted
	// migration will take at least as long as it takes to compute the
	// checksums for the VM's memory"). Handshakes add round trips.
	pipeline := res.TransferTime
	if res.ChecksumTime > pipeline {
		pipeline = res.ChecksumTime
	}
	if destTime > pipeline {
		pipeline = destTime
	}
	res.Time = 2*cost.Link.RTT() + pipeline
	return res, nil
}
