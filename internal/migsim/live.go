package migsim

import (
	"fmt"
	"time"

	"vecycle/internal/core"
	"vecycle/internal/vm"
)

// Live migration with a guest that keeps writing: the iterative pre-copy
// rounds of §3.1 at paper scale. Each round retransmits the pages dirtied
// while the previous round streamed; the VM pauses for the final round.
// The model exposes pre-copy's classic failure mode — a write rate near
// the link bandwidth stops the rounds from shrinking — and what checkpoint
// recycling (a cheaper first round) and post-copy (bounded downtime) do
// about it.

// LiveOptions tunes the iterative model.
type LiveOptions struct {
	// WriteBytesPerSec is the guest's dirtying rate while migrating.
	WriteBytesPerSec float64
	// StopThresholdPages triggers the final paused round (default 64, as in
	// core.SourceOptions).
	StopThresholdPages int
	// MaxRounds caps the iteration including the final round (default 4).
	MaxRounds int
}

func (o *LiveOptions) setDefaults() {
	if o.StopThresholdPages <= 0 {
		o.StopThresholdPages = 64
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 4
	}
}

// LiveResult extends Result with downtime accounting.
type LiveResult struct {
	Result
	// Rounds is the number of copy rounds, including the final one.
	Rounds int
	// Downtime is the stop-and-copy pause: the final round's transfer time
	// plus the hand-over round trip.
	Downtime time.Duration
}

// SimulateLive runs the iterative pre-copy model. The first round is the
// static Simulate transfer (baseline or recycled); subsequent rounds carry
// the pages dirtied during the previous round at full size.
func SimulateLive(g *GuestState, cp *Checkpoint, cost CostModel, mode Mode, opts LiveOptions) (LiveResult, error) {
	opts.setDefaults()
	var res LiveResult
	if opts.WriteBytesPerSec < 0 {
		return res, fmt.Errorf("migsim: negative write rate")
	}
	first, err := Simulate(g, cp, cost, mode)
	if err != nil {
		return res, err
	}
	res.Result = first
	res.Rounds = 1

	// Round 1 wall time (the handshake RTTs are already in first.Time).
	roundTime := first.Time
	total := first.Time
	dirtyPages := func(d time.Duration) int {
		pages := int(opts.WriteBytesPerSec * d.Seconds() / vm.PageSize)
		if pages > g.Pages() {
			pages = g.Pages()
		}
		return pages
	}

	dirty := dirtyPages(roundTime)
	for res.Rounds < opts.MaxRounds-1 && dirty > opts.StopThresholdPages {
		bytes := int64(dirty) * core.PageFullMsgBytes
		roundTime = cost.transferTime(bytes)
		total += roundTime
		res.SourceSendBytes += bytes
		res.PagesFull += dirty
		res.Rounds++
		dirty = dirtyPages(roundTime)
	}
	// Final paused round: whatever is dirty now crosses with the guest
	// stopped.
	finalBytes := int64(dirty) * core.PageFullMsgBytes
	res.Downtime = cost.transferTime(finalBytes) + cost.Link.RTT()
	res.SourceSendBytes += finalBytes
	res.PagesFull += dirty
	res.Rounds++
	res.Time = total + res.Downtime
	return res, nil
}
