package migsim

import (
	"fmt"
	"time"

	"vecycle/internal/netem"
)

// CostModel converts protocol byte counts into migration time. The defaults
// carry the constants the paper measures or cites.
type CostModel struct {
	// Link is the network path.
	Link netem.Link
	// TCPWindowBytes caps throughput at window/RTT, the effect that drops
	// the paper's 465 Mbps WAN to ~6 MiB/s measured (1 GiB in 177 s). Zero
	// means no window limit.
	TCPWindowBytes int64
	// ChecksumBytesPerSec is the page-checksum rate of the *paper's* hosts:
	// ~350 MiB/s single-core MD5 (§3.4). This engine hashes faster (~600
	// MB/s MD5, ~1.2 GB/s SHA-256 measured on the DESIGN.md §5.2 runner)
	// and the hash-once lifecycle recycles install-time digests so the
	// destination rarely pays a full-image pass at all — but the simulator
	// keeps the paper's constant because the Figure 6/7 fits (and the tests
	// pinning them) calibrate against the paper's hardware, not ours.
	ChecksumBytesPerSec float64
	// DiskReadBytesPerSec is the checkpoint read rate for the Listing 1
	// slow path. ~130 MiB/s for the paper's spinning disks.
	DiskReadBytesPerSec float64
}

// LANCost is the paper's gigabit benchmark network. The bandwidth is the
// *effective* migration rate the paper measures — "copying one gigabyte
// takes about 10 seconds over a gigabit link" (§4.4), i.e. ~105 MiB/s once
// TCP and QEMU stream overheads are paid, slightly under the ~120 MiB/s a
// raw gigabit link serializes.
func LANCost() CostModel {
	return CostModel{
		Link:                netem.Link{BytesPerSecond: 105 * (1 << 20), Latency: 200 * time.Microsecond},
		ChecksumBytesPerSec: 350 * (1 << 20),
		DiskReadBytesPerSec: 130 * (1 << 20),
	}
}

// WANCost is the emulated CloudNet WAN. The window is fitted so a 1 GiB
// baseline migration takes the paper's 177 s (~6.07 MiB/s effective).
func WANCost() CostModel {
	return CostModel{
		Link:                netem.WAN(),
		TCPWindowBytes:      330 * 1024,
		ChecksumBytesPerSec: 350 * (1 << 20),
		DiskReadBytesPerSec: 130 * (1 << 20),
	}
}

// Validate checks the model.
func (c CostModel) Validate() error {
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if c.ChecksumBytesPerSec <= 0 {
		return fmt.Errorf("migsim: checksum rate must be positive")
	}
	if c.DiskReadBytesPerSec <= 0 {
		return fmt.Errorf("migsim: disk rate must be positive")
	}
	if c.TCPWindowBytes < 0 {
		return fmt.Errorf("migsim: negative TCP window")
	}
	return nil
}

// EffectiveBandwidth reports the achievable throughput: the link rate,
// clamped by the TCP window if one is set.
func (c CostModel) EffectiveBandwidth() float64 {
	bw := c.Link.BytesPerSecond
	if c.TCPWindowBytes > 0 && c.Link.RTT() > 0 {
		windowed := float64(c.TCPWindowBytes) / c.Link.RTT().Seconds()
		if windowed < bw {
			bw = windowed
		}
	}
	return bw
}

// transferTime converts bytes on the wire to serialization time at the
// effective bandwidth.
func (c CostModel) transferTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / c.EffectiveBandwidth() * float64(time.Second))
}

// computeTime converts bytes hashed to checksum CPU time.
func (c CostModel) computeTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / c.ChecksumBytesPerSec * float64(time.Second))
}

// diskTime converts bytes read from the checkpoint image to disk time.
func (c CostModel) diskTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / c.DiskReadBytesPerSec * float64(time.Second))
}
