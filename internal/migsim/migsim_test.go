package migsim

import (
	"testing"
	"time"

	"vecycle/internal/vm"
)

const gib = int64(1) << 30

func newGuest(t *testing.T, memBytes int64) *GuestState {
	t.Helper()
	g, err := NewGuest("vm0", memBytes, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGuestValidation(t *testing.T) {
	if _, err := NewGuest("", gib, 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewGuest("x", 0, 1); err == nil {
		t.Error("zero memory accepted")
	}
	if _, err := NewGuest("x", vm.PageSize+1, 1); err == nil {
		t.Error("unaligned memory accepted")
	}
}

func TestFillRandomUnique(t *testing.T) {
	g := newGuest(t, 100*vm.PageSize)
	if err := g.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for _, c := range g.contents {
		seen[c]++
	}
	if seen[0] != 5 {
		t.Errorf("zero pages = %d, want 5", seen[0])
	}
	if len(seen) != 96 { // 95 unique + zero
		t.Errorf("distinct contents = %d, want 96", len(seen))
	}
	if err := g.FillRandom(-0.1); err == nil {
		t.Error("negative fraction accepted")
	}
}

func TestUpdatePercentCounts(t *testing.T) {
	g := newGuest(t, 100*vm.PageSize)
	if err := g.FillRandom(1); err != nil {
		t.Fatal(err)
	}
	cp := g.Checkpoint()
	if err := g.UpdatePercent(0.9, 50); err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i, c := range g.contents {
		if cp.contents[i] != c {
			changed++
		}
	}
	if changed != 45 { // 50% of the 90-page region
		t.Errorf("changed %d pages, want 45", changed)
	}
	if err := g.UpdatePercent(0, 10); err == nil {
		t.Error("zero region accepted")
	}
	if err := g.UpdatePercent(0.9, 101); err == nil {
		t.Error("percentage above 100 accepted")
	}
}

func TestCheckpointSnapshotIsolated(t *testing.T) {
	g := newGuest(t, 10*vm.PageSize)
	if err := g.FillRandom(1); err != nil {
		t.Fatal(err)
	}
	cp := g.Checkpoint()
	if err := g.UpdatePercent(1, 100); err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range g.contents {
		if g.contents[i] == cp.contents[i] {
			same++
		}
	}
	if same != 0 {
		t.Errorf("checkpoint shares %d entries with mutated guest", same)
	}
	if cp.UniqueBlocks() != 10 {
		t.Errorf("UniqueBlocks = %d, want 10", cp.UniqueBlocks())
	}
}

func TestSimulateValidation(t *testing.T) {
	g := newGuest(t, 10*vm.PageSize)
	if _, err := Simulate(g, nil, CostModel{}, Baseline); err == nil {
		t.Error("invalid cost model accepted")
	}
	if _, err := Simulate(g, nil, LANCost(), Mode(0)); err == nil {
		t.Error("invalid mode accepted")
	}
	other := newGuest(t, 20*vm.PageSize)
	if _, err := Simulate(g, other.Checkpoint(), LANCost(), VeCycle); err == nil {
		t.Error("mismatched checkpoint accepted")
	}
}

func TestSimulateBaselineBytes(t *testing.T) {
	g := newGuest(t, gib)
	if err := g.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(g, nil, LANCost(), Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if res.PagesFull != g.Pages() || res.PagesSum != 0 {
		t.Errorf("baseline pages: full=%d sum=%d", res.PagesFull, res.PagesSum)
	}
	// Wire bytes slightly exceed raw memory (headers).
	if res.SourceSendBytes < g.MemBytes() {
		t.Errorf("SourceSendBytes = %d below memory size %d", res.SourceSendBytes, g.MemBytes())
	}
	if res.SourceSendBytes > g.MemBytes()+g.MemBytes()/100 {
		t.Errorf("SourceSendBytes = %d, more than 1%% overhead", res.SourceSendBytes)
	}
}

func TestSimulateIdleVeCycle(t *testing.T) {
	// Figure 6's best case: unchanged guest, everything collapses to
	// checksums.
	g := newGuest(t, gib)
	if err := g.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	cp := g.Checkpoint()
	res, err := Simulate(g, cp, LANCost(), VeCycle)
	if err != nil {
		t.Fatal(err)
	}
	if res.PagesFull != 0 {
		t.Errorf("idle guest sent %d full pages", res.PagesFull)
	}
	if res.PagesSum != g.Pages() {
		t.Errorf("PagesSum = %d, want %d", res.PagesSum, g.Pages())
	}
	// §3.2: checksum traffic for a guest is count*16 bytes plus framing —
	// 15 MB-ish for 1 GiB, two orders below the 1 GiB baseline.
	if res.SourceSendBytes > 16*(1<<20) {
		t.Errorf("idle VeCycle source traffic = %d, want < 16 MiB", res.SourceSendBytes)
	}
}

func TestSimulatePaperFigure6LAN(t *testing.T) {
	// Paper, LAN best case: baseline ~10 s/GiB; VeCycle ~3 s at 1 GiB
	// (checksum-rate bound) and 3–4× faster overall.
	for _, gibs := range []int64{1, 4} {
		g := newGuest(t, gibs*gib)
		if err := g.FillRandom(0.95); err != nil {
			t.Fatal(err)
		}
		cp := g.Checkpoint()
		base, err := Simulate(g, nil, LANCost(), Baseline)
		if err != nil {
			t.Fatal(err)
		}
		vc, err := Simulate(g, cp, LANCost(), VeCycle)
		if err != nil {
			t.Fatal(err)
		}
		wantBase := time.Duration(gibs) * 10 * time.Second
		if base.Time < wantBase*7/10 || base.Time > wantBase*13/10 {
			t.Errorf("%d GiB baseline = %v, paper ~%v", gibs, base.Time, wantBase)
		}
		speedup := float64(base.Time) / float64(vc.Time)
		if speedup < 2.5 || speedup > 6 {
			t.Errorf("%d GiB speedup = %.1fx, paper reports 3–4x", gibs, speedup)
		}
		// Traffic reduction ~94 % for the idle guest.
		red := 1 - float64(vc.SourceSendBytes)/float64(base.SourceSendBytes)
		if red < 0.90 {
			t.Errorf("%d GiB traffic reduction = %.0f%%, paper reports ~94%%", gibs, red*100)
		}
	}
}

func TestSimulatePaperFigure6WAN(t *testing.T) {
	// Paper, WAN: 1 GiB baseline takes 177 s; VeCycle 16 s (data volume
	// down two orders of magnitude).
	g := newGuest(t, gib)
	if err := g.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	cp := g.Checkpoint()
	base, err := Simulate(g, nil, WANCost(), Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if base.Time < 150*time.Second || base.Time > 210*time.Second {
		t.Errorf("1 GiB WAN baseline = %v, paper reports 177 s", base.Time)
	}
	vc, err := Simulate(g, cp, WANCost(), VeCycle)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Time > 30*time.Second {
		t.Errorf("1 GiB WAN VeCycle = %v, paper reports 16 s", vc.Time)
	}
	if vc.Time < 2*time.Second {
		t.Errorf("1 GiB WAN VeCycle = %v, implausibly fast", vc.Time)
	}
}

func TestSimulateUpdateSweepMonotonic(t *testing.T) {
	// Figure 7: as the update percentage grows, VeCycle's time and traffic
	// rise toward the flat baseline.
	mem := int64(512) * (1 << 20) // smaller guest keeps the test quick
	var prev Result
	base := Result{}
	for i, pct := range []float64{0, 25, 50, 75, 100} {
		g := newGuest(t, mem)
		if err := g.FillRandom(1); err != nil {
			t.Fatal(err)
		}
		cp := g.Checkpoint()
		if err := g.UpdatePercent(0.9, pct); err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(g, nil, LANCost(), Baseline)
		if err != nil {
			t.Fatal(err)
		}
		vc, err := Simulate(g, cp, LANCost(), VeCycle)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = b
		} else {
			if vc.SourceSendBytes <= prev.SourceSendBytes {
				t.Errorf("traffic not increasing at %v%%: %d <= %d", pct, vc.SourceSendBytes, prev.SourceSendBytes)
			}
			if vc.Time < prev.Time {
				t.Errorf("time decreasing at %v%%: %v < %v", pct, vc.Time, prev.Time)
			}
			// Baseline is flat regardless of updates.
			if b.SourceSendBytes != base.SourceSendBytes {
				t.Errorf("baseline traffic varied with updates")
			}
		}
		if vc.Time > b.Time+b.Time/10 {
			t.Errorf("VeCycle slower than baseline at %v%%: %v vs %v", pct, vc.Time, b.Time)
		}
		prev = vc
	}
}

func TestEffectiveBandwidthWindowClamp(t *testing.T) {
	c := WANCost()
	eff := c.EffectiveBandwidth()
	if eff >= c.Link.BytesPerSecond {
		t.Errorf("window did not clamp bandwidth: %v", eff)
	}
	// ~6 MiB/s, the paper's measured effective WAN rate.
	if eff < 4e6 || eff > 9e6 {
		t.Errorf("effective WAN bandwidth = %.1f MB/s, want ~6", eff/1e6)
	}
	lan := LANCost()
	if lan.EffectiveBandwidth() != lan.Link.BytesPerSecond {
		t.Error("LAN bandwidth clamped without a window")
	}
}

func TestModeString(t *testing.T) {
	if Baseline.String() != "QEMU 2.0" || VeCycle.String() != "VeCycle" {
		t.Error("mode labels wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("invalid mode label wrong")
	}
}

func TestSimulateVeCycleWithoutCheckpoint(t *testing.T) {
	g := newGuest(t, 10*vm.PageSize)
	res, err := Simulate(g, nil, LANCost(), VeCycle)
	if err != nil {
		t.Fatal(err)
	}
	if res.PagesFull != 10 || res.PagesSum != 0 {
		t.Errorf("VeCycle without checkpoint must degrade to full: %+v", res)
	}
}
