package migsim

import (
	"testing"
	"time"

	"vecycle/internal/vm"
)

func liveGuest(t *testing.T) (*GuestState, *Checkpoint) {
	t.Helper()
	g, err := NewGuest("busy", 512<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	cp := g.Checkpoint()
	if err := g.UpdatePercent(1.0, 3); err != nil {
		t.Fatal(err)
	}
	return g, cp
}

func TestSimulateLiveIdleGuestMatchesStatic(t *testing.T) {
	g, cp := liveGuest(t)
	static, err := Simulate(g, cp, LANCost(), VeCycle)
	if err != nil {
		t.Fatal(err)
	}
	live, err := SimulateLive(g, cp, LANCost(), VeCycle, LiveOptions{WriteBytesPerSec: 0})
	if err != nil {
		t.Fatal(err)
	}
	// With no writes, only the empty final round and its RTT are added.
	if live.Rounds != 2 {
		t.Errorf("idle guest rounds = %d, want 2", live.Rounds)
	}
	if live.SourceSendBytes != static.SourceSendBytes {
		t.Errorf("idle guest bytes %d != static %d", live.SourceSendBytes, static.SourceSendBytes)
	}
	if live.Downtime > 10*time.Millisecond {
		t.Errorf("idle guest downtime = %v", live.Downtime)
	}
}

func TestSimulateLiveDowntimeGrowsWithWriteRate(t *testing.T) {
	g, cp := liveGuest(t)
	var prev time.Duration
	for i, rate := range []float64{1e6, 20e6, 60e6, 100e6} {
		live, err := SimulateLive(g, cp, LANCost(), Baseline, LiveOptions{WriteBytesPerSec: rate})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && live.Downtime < prev {
			t.Errorf("downtime shrank as write rate grew: %v < %v at %v B/s", live.Downtime, prev, rate)
		}
		prev = live.Downtime
	}
}

func TestSimulateLiveRecyclingReducesDowntime(t *testing.T) {
	g, cp := liveGuest(t)
	opts := LiveOptions{WriteBytesPerSec: 80e6}
	base, err := SimulateLive(g, nil, LANCost(), Baseline, opts)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := SimulateLive(g, cp, LANCost(), VeCycle, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The recycled first round is shorter, so fewer pages dirty during it
	// and every later round shrinks accordingly.
	if vc.Downtime >= base.Downtime {
		t.Errorf("recycled downtime %v not below baseline %v", vc.Downtime, base.Downtime)
	}
	if vc.Time >= base.Time {
		t.Errorf("recycled total %v not below baseline %v", vc.Time, base.Time)
	}
}

func TestSimulateLiveRespectsRoundCap(t *testing.T) {
	g, cp := liveGuest(t)
	// Write rate above the link bandwidth: rounds never converge.
	live, err := SimulateLive(g, cp, LANCost(), Baseline, LiveOptions{
		WriteBytesPerSec:   200e6,
		MaxRounds:          4,
		StopThresholdPages: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if live.Rounds != 4 {
		t.Errorf("rounds = %d, want the cap of 4", live.Rounds)
	}
	// Non-convergent pre-copy pays a massive stop-and-copy.
	if live.Downtime < time.Second {
		t.Errorf("non-convergent downtime = %v, expected seconds", live.Downtime)
	}
}

func TestSimulateLiveValidation(t *testing.T) {
	g, cp := liveGuest(t)
	if _, err := SimulateLive(g, cp, LANCost(), VeCycle, LiveOptions{WriteBytesPerSec: -1}); err == nil {
		t.Error("negative write rate accepted")
	}
	if _, err := SimulateLive(g, cp, CostModel{}, VeCycle, LiveOptions{}); err == nil {
		t.Error("invalid cost model accepted")
	}
}

func TestSimulateLiveDirtyCappedAtGuestSize(t *testing.T) {
	g, cp := liveGuest(t)
	// An absurd write rate cannot dirty more pages than exist.
	live, err := SimulateLive(g, cp, LANCost(), Baseline, LiveOptions{WriteBytesPerSec: 1e12, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	maxFinal := int64(g.Pages()) * (vm.PageSize + 32)
	if live.SourceSendBytes > 3*maxFinal {
		t.Errorf("bytes %d exceed 3x memory despite page cap", live.SourceSendBytes)
	}
}
