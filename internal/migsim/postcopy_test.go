package migsim

import (
	"testing"

	"vecycle/internal/vm"
)

func TestSimulatePostCopyValidation(t *testing.T) {
	g := newGuest(t, 10*vm.PageSize)
	if _, err := SimulatePostCopy(g, nil, CostModel{}); err == nil {
		t.Error("invalid cost model accepted")
	}
	other := newGuest(t, 20*vm.PageSize)
	if _, err := SimulatePostCopy(g, other.Checkpoint(), LANCost()); err == nil {
		t.Error("mismatched checkpoint accepted")
	}
}

func TestSimulatePostCopyNoCheckpoint(t *testing.T) {
	g := newGuest(t, gib)
	if err := g.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	res, err := SimulatePostCopy(g, nil, LANCost())
	if err != nil {
		t.Fatal(err)
	}
	if res.MissingPages != g.Pages() {
		t.Errorf("missing = %d, want all %d", res.MissingPages, g.Pages())
	}
	// Every page faults over the network: total is near a baseline
	// pre-copy, and the resume delay is tiny (manifest only).
	base, err := Simulate(g, nil, LANCost(), Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < base.Time*8/10 {
		t.Errorf("checkpoint-less post-copy total %v well below baseline %v", res.Time, base.Time)
	}
	// The resume delay is floored by the manifest's source checksum pass
	// (1 GiB at 350 MiB/s ≈ 2.9 s) but still well under the baseline's
	// full-copy hand-over.
	if res.ResumeDelay >= base.Time/2 {
		t.Errorf("resume delay %v, want below half the baseline total %v", res.ResumeDelay, base.Time)
	}
}

func TestSimulatePostCopyIdleGuest(t *testing.T) {
	g := newGuest(t, gib)
	if err := g.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	cp := g.Checkpoint()
	res, err := SimulatePostCopy(g, cp, LANCost())
	if err != nil {
		t.Fatal(err)
	}
	if res.MissingPages != 0 {
		t.Errorf("idle guest missing %d pages", res.MissingPages)
	}
	// Manifest only: 16 B/page ≈ 4 MiB for 1 GiB.
	if res.SourceSendBytes > 5<<20 {
		t.Errorf("idle post-copy sent %d bytes", res.SourceSendBytes)
	}
}

func TestSimulatePostCopyMovedContentNoFaults(t *testing.T) {
	g := newGuest(t, 512<<20)
	if err := g.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	cp := g.Checkpoint()
	if err := g.ShuffleFrames(0.5); err != nil {
		t.Fatal(err)
	}
	res, err := SimulatePostCopy(g, cp, LANCost())
	if err != nil {
		t.Fatal(err)
	}
	if res.MissingPages != 0 {
		t.Errorf("moved content faulted %d pages over the network", res.MissingPages)
	}
	// The moved frames are repaired from disk before resume; the disk stage
	// must show up in the resume delay.
	fresh := newGuest(t, 512<<20)
	if err := fresh.FillRandom(0.95); err != nil {
		t.Fatal(err)
	}
	cleanRes, err := SimulatePostCopy(fresh, fresh.Checkpoint(), LANCost())
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumeDelay <= cleanRes.ResumeDelay {
		t.Errorf("shuffled resume %v not above clean resume %v (disk reads unaccounted)",
			res.ResumeDelay, cleanRes.ResumeDelay)
	}
}

func TestShuffleFramesValidation(t *testing.T) {
	g := newGuest(t, 10*vm.PageSize)
	if err := g.ShuffleFrames(-0.1); err == nil {
		t.Error("negative fraction accepted")
	}
	if err := g.ShuffleFrames(1.1); err == nil {
		t.Error("fraction above 1 accepted")
	}
	if err := g.FillRandom(1); err != nil {
		t.Fatal(err)
	}
	before := g.Checkpoint()
	if err := g.ShuffleFrames(0.5); err != nil {
		t.Fatal(err)
	}
	// Shuffling preserves the content multiset.
	after := g.Checkpoint()
	if before.UniqueBlocks() != after.UniqueBlocks() {
		t.Errorf("shuffle changed unique blocks: %d -> %d", before.UniqueBlocks(), after.UniqueBlocks())
	}
}
