// Package migsim simulates migrations at paper scale (1–6 GiB guests) for
// Figures 6 and 7.
//
// The byte-accurate engine in internal/core is validated at small scale by
// integration tests; storing real 4 KiB bodies for a 6 GiB guest would add
// nothing, because the protocol's byte counts depend only on which pages
// match the checkpoint. This simulator therefore keeps one content
// identifier per page frame, replays the protocol's decision logic over
// that metadata, accounts wire bytes with the exact message sizes exported
// by internal/core, and converts bytes to time with a cost model holding
// the paper's measured constants: 120 MiB/s effective gigabit Ethernet,
// a 465 Mbps/27 ms CloudNet WAN whose TCP throughput collapses to ~6 MiB/s
// (the paper measures 1 GiB in 177 s), 350 MiB/s single-core MD5, and
// ~130 MiB/s sequential disk. The MD5 rate is the paper's hardware, not
// this engine's (~600 MB/s single-core; DESIGN.md §5.2) — the constants
// stay paper-fitted so the Figure 6/7 reproductions remain comparable.
// DESIGN.md §2 records this metadata-simulation substitution alongside
// the others.
package migsim

import (
	"fmt"
	"math/rand"

	"vecycle/internal/vm"
)

// GuestState is a paper-scale guest: one content identifier per page frame.
// Identifier 0 denotes the all-zero page.
type GuestState struct {
	name     string
	contents []uint64
	rng      *rand.Rand
	nextID   uint64
}

// NewGuest creates a guest of the given memory size with all-zero pages.
func NewGuest(name string, memBytes int64, seed int64) (*GuestState, error) {
	if name == "" {
		return nil, fmt.Errorf("migsim: empty guest name")
	}
	if memBytes <= 0 || memBytes%vm.PageSize != 0 {
		return nil, fmt.Errorf("migsim: memory size %d must be a positive multiple of %d", memBytes, vm.PageSize)
	}
	return &GuestState{
		name:     name,
		contents: make([]uint64, memBytes/vm.PageSize),
		rng:      rand.New(rand.NewSource(seed)),
		nextID:   1,
	}, nil
}

// Name reports the guest name.
func (g *GuestState) Name() string { return g.name }

// Pages reports the guest size in pages.
func (g *GuestState) Pages() int { return len(g.contents) }

// MemBytes reports the guest memory size.
func (g *GuestState) MemBytes() int64 { return int64(len(g.contents)) * vm.PageSize }

func (g *GuestState) fresh() uint64 {
	id := g.nextID
	g.nextID++
	return id
}

// FillRandom gives the first frac of pages unique content — the §4.4 guest
// preparation (95 % allocated and filled with random data).
func (g *GuestState) FillRandom(frac float64) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("migsim: fill fraction %v out of [0,1]", frac)
	}
	n := int(frac * float64(len(g.contents)))
	for i := 0; i < n; i++ {
		g.contents[i] = g.fresh()
	}
	return nil
}

// UpdatePercent rewrites pct percent of the first regionFrac of memory with
// fresh content, uniformly spread — the §4.5 ramdisk update workload
// (regionFrac 0.90 in the paper).
func (g *GuestState) UpdatePercent(regionFrac, pct float64) error {
	if regionFrac <= 0 || regionFrac > 1 {
		return fmt.Errorf("migsim: region fraction %v out of (0,1]", regionFrac)
	}
	if pct < 0 || pct > 100 {
		return fmt.Errorf("migsim: update percentage %v out of [0,100]", pct)
	}
	region := int(regionFrac * float64(len(g.contents)))
	count := int(pct / 100 * float64(region))
	perm := g.rng.Perm(region)
	for _, off := range perm[:count] {
		g.contents[off] = g.fresh()
	}
	return nil
}

// ShuffleFrames relocates the contents of frac of the guest's pages to
// different frames (pairwise swaps). Content is preserved, so a checkpoint
// still satisfies every page by checksum — but the destination must repair
// each moved frame from the checkpoint file, the Listing 1 disk path. This
// is the workload for the disk-rate ablation.
func (g *GuestState) ShuffleFrames(frac float64) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("migsim: shuffle fraction %v out of [0,1]", frac)
	}
	swaps := int(frac * float64(len(g.contents)) / 2)
	for k := 0; k < swaps; k++ {
		i, j := g.rng.Intn(len(g.contents)), g.rng.Intn(len(g.contents))
		g.contents[i], g.contents[j] = g.contents[j], g.contents[i]
	}
	return nil
}

// Checkpoint captures the guest's current page contents, standing for the
// image the source writes to local disk after an outgoing migration.
type Checkpoint struct {
	contents []uint64
	set      map[uint64]struct{}
}

// Checkpoint snapshots the guest.
func (g *GuestState) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		contents: make([]uint64, len(g.contents)),
		set:      make(map[uint64]struct{}, len(g.contents)),
	}
	copy(cp.contents, g.contents)
	for _, c := range g.contents {
		cp.set[c] = struct{}{}
	}
	return cp
}

// Pages reports the checkpoint size in pages.
func (cp *Checkpoint) Pages() int { return len(cp.contents) }

// UniqueBlocks reports the number of distinct contents — the size of the
// hash announcement.
func (cp *Checkpoint) UniqueBlocks() int { return len(cp.set) }
