package memmodel

import (
	"testing"
	"time"

	"vecycle/internal/fingerprint"
)

// TestSeedRobustness verifies that the calibration is a property of the
// model, not of one lucky seed: re-seeding Server B must keep the headline
// statistics (24-hour similarity, duplicate fraction) inside the paper's
// envelope.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several trace generations")
	}
	for _, seed := range []int64{0xB2, 1, 99, 424242} {
		p := ServerB()
		p.Config.Seed = seed
		m, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		fps := m.Trace(192) // four days is enough for 24h pairs
		c, err := fingerprint.NewCorpus(fps)
		if err != nil {
			t.Fatal(err)
		}
		series, err := c.BinnedSimilarity(30*time.Minute, 25*time.Hour, 4)
		if err != nil {
			t.Fatal(err)
		}
		var sim24 float64
		found := false
		for _, b := range series {
			if b.Center == 24*time.Hour {
				sim24 = b.Avg
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: no 24h bin", seed)
		}
		if sim24 < 0.25 || sim24 > 0.55 {
			t.Errorf("seed %d: sim@24h = %.3f, outside robust band [0.25, 0.55]", seed, sim24)
		}
		var dup float64
		for _, f := range fps {
			dup += f.DupFraction()
		}
		dup /= float64(len(fps))
		if dup < 0.05 || dup > 0.20 {
			t.Errorf("seed %d: dup%% = %.3f, outside robust band", seed, dup)
		}
	}
}

// TestScaleInvariance verifies the central scaling assumption of DESIGN.md:
// the similarity statistics do not depend on the model resolution
// (PagesPerGiB), so running at 1:128 scale is sound.
func TestScaleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several trace generations")
	}
	sims := map[int]float64{}
	for _, scale := range []int{512, 2048, 8192} {
		p := ServerA()
		p.Config.PagesPerGiB = scale
		m, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		fps := m.Trace(96) // two days
		c, err := fingerprint.NewCorpus(fps)
		if err != nil {
			t.Fatal(err)
		}
		series, err := c.BinnedSimilarity(30*time.Minute, 13*time.Hour, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range series {
			if b.Center == 12*time.Hour {
				sims[scale] = b.Avg
			}
		}
	}
	base := sims[2048]
	for scale, sim := range sims {
		if sim < base-0.06 || sim > base+0.06 {
			t.Errorf("scale %d: sim@12h = %.3f, reference (2048) = %.3f — not scale-invariant",
				scale, sim, base)
		}
	}
}
