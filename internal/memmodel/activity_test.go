package memmodel

import (
	"testing"
	"time"
)

// monday is a weekday anchor for session tests.
var monday = time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)

func TestDiurnalBounds(t *testing.T) {
	d := Diurnal{Mean: 0.5, Amplitude: 0.9, PeakHour: 14}
	for h := 0; h < 24; h++ {
		lvl := d.Level(monday.Add(time.Duration(h) * time.Hour))
		if lvl < 0 || lvl > 1 {
			t.Errorf("hour %d: level %v out of [0,1]", h, lvl)
		}
	}
}

func TestDiurnalPeak(t *testing.T) {
	d := Diurnal{Mean: 0.5, Amplitude: 0.3, PeakHour: 14}
	peak := d.Level(monday.Add(14 * time.Hour))
	trough := d.Level(monday.Add(2 * time.Hour))
	if peak <= trough {
		t.Errorf("peak %v <= trough %v", peak, trough)
	}
	if !d.Online(monday) {
		t.Error("servers must always be online")
	}
}

func TestSessionsWeekday(t *testing.T) {
	s := Sessions{StartHour: 9, EndHour: 18, JitterHours: 0, WeekendProb: 0, BusyLevel: 0.8}
	noon := monday.Add(12 * time.Hour)
	if !s.Online(noon) {
		t.Error("laptop offline at noon on a weekday")
	}
	if got := s.Level(noon); got != 0.8 {
		t.Errorf("session level = %v, want 0.8", got)
	}
	night := monday.Add(23 * time.Hour)
	if s.Online(night) {
		t.Error("laptop online at 23:00")
	}
	if got := s.Level(night); got != 0 {
		t.Errorf("offline level = %v, want 0", got)
	}
}

func TestSessionsWeekendProb(t *testing.T) {
	saturday := monday.Add(5 * 24 * time.Hour)
	never := Sessions{StartHour: 9, EndHour: 18, WeekendProb: 0, BusyLevel: 0.8}
	if never.Online(saturday.Add(12 * time.Hour)) {
		t.Error("WeekendProb 0 but online on Saturday")
	}
	always := Sessions{StartHour: 9, EndHour: 18, WeekendProb: 1, BusyLevel: 0.8}
	if !always.Online(saturday.Add(12 * time.Hour)) {
		t.Error("WeekendProb 1 but offline at Saturday midday")
	}
}

func TestSessionsJitterVariesByDay(t *testing.T) {
	s := Sessions{StartHour: 9, EndHour: 18, JitterHours: 2, BusyLevel: 0.8, Salt: 7}
	// At 08:30, jitter sometimes makes the session already started and
	// sometimes not; across two work weeks we expect both outcomes.
	online, offline := 0, 0
	for d := 0; d < 14; d++ {
		day := monday.Add(time.Duration(d) * 24 * time.Hour)
		if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		if s.Online(day.Add(8*time.Hour + 30*time.Minute)) {
			online++
		} else {
			offline++
		}
	}
	if online == 0 || offline == 0 {
		t.Errorf("jitter has no effect: online=%d offline=%d", online, offline)
	}
}

func TestSessionsSaltDecorrelates(t *testing.T) {
	a := Sessions{StartHour: 9, EndHour: 18, JitterHours: 2, BusyLevel: 0.8, Salt: 1}
	b := Sessions{StartHour: 9, EndHour: 18, JitterHours: 2, BusyLevel: 0.8, Salt: 2}
	differ := false
	for d := 0; d < 28 && !differ; d++ {
		for h := 7; h < 21; h++ {
			ts := monday.Add(time.Duration(d)*24*time.Hour + time.Duration(h)*time.Hour)
			if a.Online(ts) != b.Online(ts) {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Error("different salts produced identical schedules over 4 weeks")
	}
}

func TestConstant(t *testing.T) {
	c := Constant{LevelValue: 0.9}
	if c.Level(monday) != 0.9 || !c.Online(monday) {
		t.Error("constant activity wrong")
	}
	over := Constant{LevelValue: 1.7}
	if over.Level(monday) != 1 {
		t.Error("constant level not clamped")
	}
}

func TestWorkday(t *testing.T) {
	w := Workday{StartHour: 9, EndHour: 17, BusyLevel: 0.75, IdleLevel: 0.02}
	if got := w.Level(monday.Add(12 * time.Hour)); got != 0.75 {
		t.Errorf("workday noon level = %v", got)
	}
	if got := w.Level(monday.Add(3 * time.Hour)); got != 0.02 {
		t.Errorf("workday night level = %v", got)
	}
	saturday := monday.Add(5 * 24 * time.Hour)
	if got := w.Level(saturday.Add(12 * time.Hour)); got != 0.02 {
		t.Errorf("weekend level = %v, want idle", got)
	}
	if !w.Online(monday) {
		t.Error("VDI desktop must always be online")
	}
}

func TestWorkdayBoundaries(t *testing.T) {
	w := Workday{StartHour: 9, EndHour: 17, BusyLevel: 1, IdleLevel: 0}
	if got := w.Level(monday.Add(9 * time.Hour)); got != 1 {
		t.Errorf("level at 09:00 = %v, want busy (inclusive start)", got)
	}
	if got := w.Level(monday.Add(17 * time.Hour)); got != 0 {
		t.Errorf("level at 17:00 = %v, want idle (exclusive end)", got)
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1}}
	for _, tc := range cases {
		if got := clamp01(tc.in); got != tc.want {
			t.Errorf("clamp01(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestMix64(t *testing.T) {
	if mix64(1) == mix64(2) {
		t.Error("mix64 collided on 1, 2")
	}
	if mix64(5) != mix64(5) {
		t.Error("mix64 not deterministic")
	}
}
