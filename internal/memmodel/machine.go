package memmodel

import (
	"fmt"
	"math/rand"
	"time"

	"vecycle/internal/fingerprint"
)

// PageClass labels a page's churn behaviour.
type PageClass uint8

// Page classes, from least to most volatile.
const (
	// ClassZero pages contain only zeros (free memory). They churn at the
	// static rate: freshly allocated pages leave the class.
	ClassZero PageClass = iota + 1
	// ClassStatic pages hold kernel/program text and long-lived data and
	// almost never change — they are the similarity floor the paper observes
	// even after a week (Figure 2).
	ClassStatic
	// ClassWarm pages hold page-cache and heap data with moderate turnover.
	ClassWarm
	// ClassHot pages are the active working set and churn within hours.
	ClassHot
)

// String returns the class name.
func (c PageClass) String() string {
	switch c {
	case ClassZero:
		return "zero"
	case ClassStatic:
		return "static"
	case ClassWarm:
		return "warm"
	case ClassHot:
		return "hot"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Config parameterizes a modelled machine. Presets for the paper's traced
// systems live in presets.go.
type Config struct {
	// Name identifies the machine in reports ("Server A").
	Name string
	// RAMBytes is the real machine's memory size (Table 1). The model
	// represents it at reduced scale; see PagesPerGiB.
	RAMBytes int64
	// PagesPerGiB sets the model scale: how many model pages represent one
	// GiB of real memory. Real memory has 262 144 pages/GiB (4 KiB pages);
	// the default scale of 2048 model pages/GiB keeps the quadratic
	// all-pairs sweeps of Figures 1–5 tractable while leaving per-class
	// populations large enough for stable statistics. Fractions (similarity,
	// dup%, zero%) are scale-invariant; byte counts are scaled back up by
	// ScaleFactor.
	PagesPerGiB int
	// Seed makes the trace reproducible.
	Seed int64
	// Step is the fingerprint period; the traces the paper analyzes use 30
	// minutes.
	Step time.Duration
	// Start is the wall-clock time of the first fingerprint. Activity models
	// read weekday and hour from it.
	Start time.Time

	// ZeroFrac, StaticFrac, WarmFrac, HotFrac partition the pages by class;
	// they must sum to 1.
	ZeroFrac   float64
	StaticFrac float64
	WarmFrac   float64
	HotFrac    float64

	// StaticRate, WarmRate and HotRate are per-step rewrite probabilities at
	// activity level 1. Zero pages use StaticRate (allocation).
	StaticRate float64
	WarmRate   float64
	HotRate    float64
	// ActivityFloor is the fraction of the class rate that applies even at
	// activity 0 (background daemons never stop completely).
	ActivityFloor float64

	// DupProb is the probability a rewrite duplicates existing shared
	// content (drawn from a pool of PoolSize common contents) rather than
	// producing fresh unique bytes.
	DupProb float64
	// ZeroProb is the probability a rewrite frees the page to zeros.
	ZeroProb float64
	// PoolSize is the number of distinct shared contents (shared-library
	// pages, common file blocks).
	PoolSize int

	// MoveRate is the expected fraction of pages whose content is relocated
	// to a different frame per step at activity 1. Moves leave content (and
	// therefore hash-based similarity) intact but dirty the frames, which is
	// precisely why Miyakodori-style dirty tracking overestimates transfers
	// (§4.3, Figure 5).
	MoveRate float64
}

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	if c.RAMBytes <= 0 {
		return fmt.Errorf("memmodel: RAMBytes must be positive, got %d", c.RAMBytes)
	}
	if c.PagesPerGiB <= 0 {
		return fmt.Errorf("memmodel: PagesPerGiB must be positive, got %d", c.PagesPerGiB)
	}
	if c.Step <= 0 {
		return fmt.Errorf("memmodel: Step must be positive, got %v", c.Step)
	}
	if c.Start.IsZero() {
		return fmt.Errorf("memmodel: Start must be set")
	}
	sum := c.ZeroFrac + c.StaticFrac + c.WarmFrac + c.HotFrac
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("memmodel: class fractions sum to %v, want 1", sum)
	}
	for _, f := range []float64{c.ZeroFrac, c.StaticFrac, c.WarmFrac, c.HotFrac,
		c.StaticRate, c.WarmRate, c.HotRate, c.ActivityFloor, c.DupProb, c.ZeroProb, c.MoveRate} {
		if f < 0 || f > 1 {
			return fmt.Errorf("memmodel: fraction/probability %v out of [0,1]", f)
		}
	}
	if c.PoolSize <= 0 && c.DupProb > 0 {
		return fmt.Errorf("memmodel: DupProb %v requires PoolSize > 0", c.DupProb)
	}
	return nil
}

// NumPages reports the number of model pages.
func (c *Config) NumPages() int {
	return int(c.RAMBytes / (1 << 30) * int64(c.PagesPerGiB))
}

// ScaleFactor reports how many real pages one model page represents
// (real 262 144 pages/GiB over PagesPerGiB).
func (c *Config) ScaleFactor() float64 {
	return float64(262144) / float64(c.PagesPerGiB)
}

// Machine is a running memory model. Create with New, advance with Step,
// sample with Fingerprint, or produce a whole trace with Trace.
type Machine struct {
	cfg      Config
	activity Activity
	rng      *rand.Rand
	classes  []PageClass
	contents []uint64
	pool     []uint64
	nextID   uint64
	now      time.Time
	steps    int
}

// New creates a machine in its steady-state initial condition: pages are
// assigned classes and contents, with the configured zero and duplicate
// populations already in place (the traced machines had weeks of uptime).
func New(cfg Config, act Activity) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if act == nil {
		return nil, fmt.Errorf("memmodel: nil activity model")
	}
	n := cfg.NumPages()
	if n == 0 {
		return nil, fmt.Errorf("memmodel: configuration yields zero pages")
	}
	m := &Machine{
		cfg:      cfg,
		activity: act,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		classes:  make([]PageClass, n),
		contents: make([]uint64, n),
		pool:     make([]uint64, cfg.PoolSize),
		nextID:   1,
		now:      cfg.Start,
	}
	for i := range m.pool {
		m.pool[i] = m.fresh()
	}
	// Assign classes in page order, then shuffle so classes are interleaved
	// across the address space like real kernels lay them out.
	idx := 0
	fill := func(cl PageClass, frac float64) {
		count := int(frac * float64(n))
		for k := 0; k < count && idx < n; k++ {
			m.classes[idx] = cl
			idx++
		}
	}
	fill(ClassZero, cfg.ZeroFrac)
	fill(ClassStatic, cfg.StaticFrac)
	fill(ClassWarm, cfg.WarmFrac)
	for ; idx < n; idx++ {
		m.classes[idx] = ClassHot
	}
	m.rng.Shuffle(n, func(i, j int) {
		m.classes[i], m.classes[j] = m.classes[j], m.classes[i]
	})
	for i := range m.contents {
		m.contents[i] = m.initialContent(m.classes[i])
	}
	return m, nil
}

// initialContent draws a page's boot-time content for its class.
func (m *Machine) initialContent(cl PageClass) uint64 {
	if cl == ClassZero {
		return 0
	}
	if m.rng.Float64() < m.cfg.DupProb {
		return m.pool[m.rng.Intn(len(m.pool))]
	}
	return m.fresh()
}

// fresh mints a never-before-seen content identifier.
func (m *Machine) fresh() uint64 {
	id := m.nextID
	m.nextID++
	return id
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now reports the model's current time.
func (m *Machine) Now() time.Time { return m.now }

// Steps reports how many steps have been taken.
func (m *Machine) Steps() int { return m.steps }

// classRate reports the per-step rewrite probability of a class at the
// given activity level.
func (m *Machine) classRate(cl PageClass, act float64) float64 {
	var base float64
	switch cl {
	case ClassZero, ClassStatic:
		base = m.cfg.StaticRate
	case ClassWarm:
		base = m.cfg.WarmRate
	case ClassHot:
		base = m.cfg.HotRate
	}
	return base * (m.cfg.ActivityFloor + (1-m.cfg.ActivityFloor)*act)
}

// Step advances the model by one fingerprint period: pages are rewritten
// according to their class rates and the current activity level, and a
// fraction of frames have their contents relocated.
func (m *Machine) Step() {
	act := m.activity.Level(m.now)
	for i := range m.contents {
		if m.rng.Float64() < m.classRate(m.classes[i], act) {
			m.rewrite(i)
		}
	}
	// Relocate content between frames: a swap preserves the content multiset
	// (hash-based similarity is unaffected) while dirtying both frames. The
	// churn class travels with the content — a shared library relocated by
	// the allocator is still a shared library.
	moves := int(m.cfg.MoveRate * act * float64(len(m.contents)))
	for k := 0; k < moves; k++ {
		i, j := m.rng.Intn(len(m.contents)), m.rng.Intn(len(m.contents))
		m.contents[i], m.contents[j] = m.contents[j], m.contents[i]
		m.classes[i], m.classes[j] = m.classes[j], m.classes[i]
	}
	m.now = m.now.Add(m.cfg.Step)
	m.steps++
}

// rewrite replaces page i's content.
func (m *Machine) rewrite(i int) {
	r := m.rng.Float64()
	switch {
	case r < m.cfg.ZeroProb:
		m.contents[i] = 0
	case r < m.cfg.ZeroProb+m.cfg.DupProb:
		m.contents[i] = m.pool[m.rng.Intn(len(m.pool))]
	default:
		m.contents[i] = m.fresh()
	}
}

// Online reports whether the machine would record a fingerprint now.
func (m *Machine) Online() bool { return m.activity.Online(m.now) }

// Fingerprint samples the machine's current memory state. Content
// identifiers are hashed through splitmix64 so that page hashes are
// uniformly distributed; the zero page keeps the conventional hash 0.
func (m *Machine) Fingerprint() *fingerprint.Fingerprint {
	hashes := make([]fingerprint.PageHash, len(m.contents))
	for i, c := range m.contents {
		hashes[i] = HashContent(c)
	}
	return &fingerprint.Fingerprint{Taken: m.now, Hashes: hashes}
}

// HashContent maps a content identifier to its page hash. Identifier 0 (the
// zero page) maps to fingerprint.ZeroPage.
func HashContent(content uint64) fingerprint.PageHash {
	if content == 0 {
		return fingerprint.ZeroPage
	}
	h := mix64(content)
	if h == 0 {
		h = 1 // reserve 0 for the zero page
	}
	return fingerprint.PageHash(h)
}

// Contents returns the raw content identifier of every page frame, for
// callers (the migration simulator) that need frame-level state rather than
// hashes. The returned slice is a copy.
func (m *Machine) Contents() []uint64 {
	out := make([]uint64, len(m.contents))
	copy(out, m.contents)
	return out
}

// Trace advances the machine for the given number of steps and returns the
// fingerprints recorded while the machine was online — laptops produce
// fewer fingerprints than server traces of equal length, exactly as in the
// Memory Buddies data set.
func (m *Machine) Trace(steps int) []*fingerprint.Fingerprint {
	fps := make([]*fingerprint.Fingerprint, 0, steps)
	for s := 0; s < steps; s++ {
		if m.Online() {
			fps = append(fps, m.Fingerprint())
		}
		m.Step()
	}
	return fps
}
