package memmodel

import (
	"testing"
	"time"

	"vecycle/internal/fingerprint"
)

// The calibration tests check the synthetic models against every number the
// paper's prose reports for the original traces. Ranges are deliberately
// generous — the goal is the paper's qualitative envelope (who decays how
// fast, which machine has more duplicates), not digit-exact replay of
// unavailable data.

// simAt returns the average similarity across all fingerprint pairs whose
// delta falls in the 30-minute bin centred on target.
func simAt(t *testing.T, fps []*fingerprint.Fingerprint, target time.Duration, stride int) float64 {
	t.Helper()
	c, err := fingerprint.NewCorpus(fps)
	if err != nil {
		t.Fatal(err)
	}
	maxDelta := target + time.Hour
	series, err := c.BinnedSimilarity(30*time.Minute, maxDelta, stride)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range series {
		if b.Center == target {
			return b.Avg
		}
	}
	t.Fatalf("no bin centred on %v", target)
	return 0
}

func tracePreset(t *testing.T, p Preset, steps int) []*fingerprint.Fingerprint {
	t.Helper()
	m, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m.Trace(steps)
}

func checkRange(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.3f, want in [%.2f, %.2f]", name, got, lo, hi)
	} else {
		t.Logf("%s = %.3f (target [%.2f, %.2f])", name, got, lo, hi)
	}
}

func TestCalibrationServerSimilarity(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is quadratic in trace length")
	}
	// Paper: average 24-hour similarity is ~40 % for Server B and ~20 % for
	// Server C; short 2-hour intervals reach 50–70 % and upwards.
	cases := []struct {
		preset     Preset
		lo24, hi24 float64
		lo2h, hi2h float64
	}{
		{ServerA(), 0.22, 0.45, 0.50, 0.90},
		{ServerB(), 0.30, 0.50, 0.50, 0.90},
		{ServerC(), 0.12, 0.30, 0.45, 0.85},
	}
	for _, tc := range cases {
		fps := tracePreset(t, tc.preset, tc.preset.TraceSteps)
		name := tc.preset.Config.Name
		checkRange(t, name+" sim@24h", simAt(t, fps, 24*time.Hour, 4), tc.lo24, tc.hi24)
		checkRange(t, name+" sim@2h", simAt(t, fps, 2*time.Hour, 1), tc.lo2h, tc.hi2h)
	}
}

func TestCalibrationServerCWeekFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is quadratic in trace length")
	}
	// Figure 2: even after one week about 20 % of Server C's memory content
	// is unchanged.
	// 166 h is the longest delta that is a multiple of the stride-4 pair
	// spacing (2 h) and still inside the one-week trace.
	fps := tracePreset(t, ServerC(), ServerC().TraceSteps)
	checkRange(t, "Server C sim@166h", simAt(t, fps, 166*time.Hour, 4), 0.08, 0.30)
}

func TestCalibrationCrawlers(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is quadratic in trace length")
	}
	// §2.3: crawler similarity is ~40 % after one hour, below 20 % after
	// five hours.
	for _, p := range []Preset{CrawlerA(), CrawlerB()} {
		fps := tracePreset(t, p, p.TraceSteps)
		name := p.Config.Name
		checkRange(t, name+" sim@1h", simAt(t, fps, time.Hour, 1), 0.28, 0.60)
		s5 := simAt(t, fps, 5*time.Hour, 1)
		if s5 >= 0.25 {
			t.Errorf("%s sim@5h = %.3f, want < 0.25", name, s5)
		} else {
			t.Logf("%s sim@5h = %.3f (target < 0.25)", name, s5)
		}
	}
}

func TestCalibrationDuplicatePages(t *testing.T) {
	if testing.Short() {
		t.Skip("trace generation is slow")
	}
	// Figure 4: duplicate pages are 5–20 % for servers (Server A lowest and
	// very stable at ~5 %, Server C ~20 %) and 10–20 % for laptops. Zero
	// pages stay below ~5 % for servers.
	type target struct {
		preset Preset
		steps  int
		dupLo  float64
		dupHi  float64
		zeroHi float64
	}
	targets := []target{
		{ServerA(), 96, 0.02, 0.10, 0.08},
		{ServerB(), 96, 0.05, 0.16, 0.08},
		{ServerC(), 96, 0.12, 0.30, 0.04},
		{LaptopA(), 336, 0.08, 0.25, 0.10},
		{LaptopB(), 336, 0.08, 0.25, 0.10},
	}
	for _, tc := range targets {
		fps := tracePreset(t, tc.preset, tc.steps)
		if len(fps) == 0 {
			t.Fatalf("%s: empty trace", tc.preset.Config.Name)
		}
		var dupSum, zeroSum float64
		for _, f := range fps {
			dupSum += f.DupFraction()
			zeroSum += f.ZeroFraction()
		}
		dup := dupSum / float64(len(fps))
		zero := zeroSum / float64(len(fps))
		checkRange(t, tc.preset.Config.Name+" dup%", dup, tc.dupLo, tc.dupHi)
		if zero > tc.zeroHi {
			t.Errorf("%s zero%% = %.3f, want <= %.2f", tc.preset.Config.Name, zero, tc.zeroHi)
		} else {
			t.Logf("%s zero%% = %.3f (target <= %.2f)", tc.preset.Config.Name, zero, tc.zeroHi)
		}
	}
}

func TestCalibrationLaptopFingerprintCount(t *testing.T) {
	if testing.Short() {
		t.Skip("trace generation is slow")
	}
	// §2.2: of the 336 possible fingerprints the laptop traces contain only
	// 151–205 because the machines are suspended outside sessions.
	for _, p := range []Preset{LaptopA(), LaptopB(), LaptopC(), LaptopD()} {
		fps := tracePreset(t, p, 336)
		if len(fps) < 110 || len(fps) > 240 {
			t.Errorf("%s recorded %d/336 fingerprints, paper range is 151–205", p.Config.Name, len(fps))
		} else {
			t.Logf("%s recorded %d/336 fingerprints (paper: 151–205)", p.Config.Name, len(fps))
		}
	}
}

func TestCalibrationDesktopIdleOvernight(t *testing.T) {
	if testing.Short() {
		t.Skip("trace generation is slow")
	}
	// §2.4/§4.6: overnight (17:00 → 9:00) the consolidated desktop barely
	// changes, so the 9 am migration should find very high similarity, while
	// the workday (9:00 → 17:00) churns much more.
	m, err := Desktop().Build()
	if err != nil {
		t.Fatal(err)
	}
	// m starts Wed 5 Nov 2014 00:00. Collect fingerprints at 9:00 and 17:00.
	var at9, at17, next9 *fingerprint.Fingerprint
	for i := 0; i < 96; i++ {
		now := m.Now()
		if now.Day() == 5 && now.Hour() == 9 && now.Minute() == 0 {
			at9 = m.Fingerprint()
		}
		if now.Day() == 5 && now.Hour() == 17 && now.Minute() == 0 {
			at17 = m.Fingerprint()
		}
		if now.Day() == 6 && now.Hour() == 9 && now.Minute() == 0 {
			next9 = m.Fingerprint()
		}
		m.Step()
	}
	if at9 == nil || at17 == nil || next9 == nil {
		t.Fatal("missed schedule fingerprints")
	}
	workday := fingerprint.Similarity(at17, at9)
	overnight := fingerprint.Similarity(next9, at17)
	t.Logf("desktop workday sim = %.3f, overnight sim = %.3f", workday, overnight)
	if overnight <= workday {
		t.Errorf("overnight similarity %.3f not higher than workday %.3f", overnight, workday)
	}
	if overnight < 0.80 {
		t.Errorf("overnight similarity %.3f, want >= 0.80 (idle machine)", overnight)
	}
	if workday > 0.85 {
		t.Errorf("workday similarity %.3f, want <= 0.85 (busy machine)", workday)
	}
}
