package memmodel

import (
	"testing"
	"time"

	"vecycle/internal/fingerprint"
)

func testConfig() Config {
	return Config{
		Name:          "test",
		RAMBytes:      1 << 30,
		PagesPerGiB:   1024,
		Seed:          42,
		Step:          30 * time.Minute,
		Start:         traceStart,
		ZeroFrac:      0.05,
		StaticFrac:    0.25,
		WarmFrac:      0.45,
		HotFrac:       0.25,
		StaticRate:    0.001,
		WarmRate:      0.04,
		HotRate:       0.5,
		ActivityFloor: 0.2,
		DupProb:       0.1,
		ZeroProb:      0.02,
		PoolSize:      32,
		MoveRate:      0.03,
	}
}

func TestConfigValidate(t *testing.T) {
	valid := testConfig()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero ram", func(c *Config) { c.RAMBytes = 0 }},
		{"zero scale", func(c *Config) { c.PagesPerGiB = 0 }},
		{"zero step", func(c *Config) { c.Step = 0 }},
		{"zero start", func(c *Config) { c.Start = time.Time{} }},
		{"fractions", func(c *Config) { c.HotFrac = 0.9 }},
		{"negative rate", func(c *Config) { c.WarmRate = -0.1 }},
		{"rate above one", func(c *Config) { c.HotRate = 1.5 }},
		{"dup without pool", func(c *Config) { c.PoolSize = 0 }},
	}
	for _, m := range mutations {
		c := testConfig()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", m.name)
		}
	}
}

func TestNumPagesAndScale(t *testing.T) {
	c := testConfig()
	if got := c.NumPages(); got != 1024 {
		t.Errorf("NumPages = %d, want 1024", got)
	}
	if got := c.ScaleFactor(); got != 256 {
		t.Errorf("ScaleFactor = %v, want 256 (262144/1024)", got)
	}
}

func TestNewRejectsNilActivity(t *testing.T) {
	if _, err := New(testConfig(), nil); err == nil {
		t.Error("nil activity accepted")
	}
}

func TestNewInitialState(t *testing.T) {
	m, err := New(testConfig(), Constant{LevelValue: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fp := m.Fingerprint()
	if fp.NumPages() != 1024 {
		t.Fatalf("fingerprint has %d pages", fp.NumPages())
	}
	// The configured zero fraction should be visible at boot (zero pages
	// plus a few ZeroProb rewrites at init; allow slack).
	zf := fp.ZeroFraction()
	if zf < 0.02 || zf > 0.12 {
		t.Errorf("initial zero fraction = %v, want ≈0.05", zf)
	}
	// Duplicates should exist due to the shared pool.
	if fp.DupFraction() <= 0 {
		t.Error("no duplicate pages at boot despite DupProb > 0")
	}
	if !fp.Taken.Equal(traceStart) {
		t.Errorf("first fingerprint at %v, want %v", fp.Taken, traceStart)
	}
}

func TestStepAdvancesTime(t *testing.T) {
	m, err := New(testConfig(), Constant{LevelValue: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m.Step()
	m.Step()
	if m.Steps() != 2 {
		t.Errorf("Steps = %d", m.Steps())
	}
	if want := traceStart.Add(time.Hour); !m.Now().Equal(want) {
		t.Errorf("Now = %v, want %v", m.Now(), want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *fingerprint.Fingerprint {
		m, err := New(testConfig(), Constant{LevelValue: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			m.Step()
		}
		return m.Fingerprint()
	}
	a, b := run(), run()
	if len(a.Hashes) != len(b.Hashes) {
		t.Fatal("lengths differ")
	}
	for i := range a.Hashes {
		if a.Hashes[i] != b.Hashes[i] {
			t.Fatalf("same seed diverged at page %d", i)
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	cfg1, cfg2 := testConfig(), testConfig()
	cfg2.Seed = 43
	m1, err := New(cfg1, Constant{LevelValue: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(cfg2, Constant{LevelValue: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a, b := m1.Fingerprint(), m2.Fingerprint()
	same := 0
	for i := range a.Hashes {
		if a.Hashes[i] == b.Hashes[i] {
			same++
		}
	}
	if same == len(a.Hashes) {
		t.Error("different seeds produced identical memory")
	}
}

func TestChurnScalesWithActivity(t *testing.T) {
	churn := func(level float64) int {
		cfg := testConfig()
		cfg.ActivityFloor = 0
		m, err := New(cfg, Constant{LevelValue: level})
		if err != nil {
			t.Fatal(err)
		}
		before := m.Fingerprint()
		for i := 0; i < 5; i++ {
			m.Step()
		}
		return fingerprint.DirtyPages(before, m.Fingerprint())
	}
	idle, busy := churn(0.05), churn(1.0)
	if idle >= busy {
		t.Errorf("idle churn %d >= busy churn %d", idle, busy)
	}
}

func TestZeroActivityZeroFloorFreezesMemory(t *testing.T) {
	cfg := testConfig()
	cfg.ActivityFloor = 0
	cfg.MoveRate = 0
	m, err := New(cfg, Constant{LevelValue: 0})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Fingerprint()
	for i := 0; i < 20; i++ {
		m.Step()
	}
	if d := fingerprint.DirtyPages(before, m.Fingerprint()); d != 0 {
		t.Errorf("suspended machine dirtied %d pages", d)
	}
}

func TestMovesPreserveSimilarityButDirtyFrames(t *testing.T) {
	cfg := testConfig()
	// Only moves: no rewrites at all.
	cfg.StaticRate, cfg.WarmRate, cfg.HotRate = 0, 0, 0
	cfg.MoveRate = 0.2
	cfg.ActivityFloor = 1
	m, err := New(cfg, Constant{LevelValue: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Fingerprint()
	for i := 0; i < 3; i++ {
		m.Step()
	}
	after := m.Fingerprint()
	if got := fingerprint.Similarity(after, before); got != 1 {
		t.Errorf("moves changed content similarity: %v", got)
	}
	if got := fingerprint.DirtyPages(before, after); got == 0 {
		t.Error("moves dirtied no frames")
	}
}

func TestHashContent(t *testing.T) {
	if HashContent(0) != fingerprint.ZeroPage {
		t.Error("zero content must hash to ZeroPage")
	}
	if HashContent(1) == HashContent(2) {
		t.Error("distinct contents collided")
	}
	if HashContent(7) != HashContent(7) {
		t.Error("HashContent not deterministic")
	}
	if HashContent(12345) == fingerprint.ZeroPage {
		t.Error("non-zero content mapped to the zero hash")
	}
}

func TestContentsCopy(t *testing.T) {
	m, err := New(testConfig(), Constant{LevelValue: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Contents()
	c[0] = ^uint64(0)
	if m.Contents()[0] == ^uint64(0) {
		t.Error("Contents returned a live reference")
	}
}

func TestTraceHonorsOnline(t *testing.T) {
	// A laptop that is online only during sessions produces fewer
	// fingerprints than steps.
	p := LaptopA()
	m, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	fps := m.Trace(96) // two days
	if len(fps) == 0 {
		t.Fatal("laptop never online in two days")
	}
	if len(fps) >= 96 {
		t.Errorf("laptop online for all %d steps, expected gaps", len(fps))
	}
	for i := 1; i < len(fps); i++ {
		if !fps[i].Taken.After(fps[i-1].Taken) {
			t.Error("trace timestamps not increasing")
		}
	}
}

func TestServerTraceComplete(t *testing.T) {
	m, err := ServerA().Build()
	if err != nil {
		t.Fatal(err)
	}
	fps := m.Trace(48)
	if len(fps) != 48 {
		t.Errorf("server recorded %d/48 fingerprints, servers are always online", len(fps))
	}
}

func TestPresetLookup(t *testing.T) {
	if _, ok := PresetByName("Server B"); !ok {
		t.Error("Server B not found")
	}
	if _, ok := PresetByName("Server Z"); ok {
		t.Error("unknown preset found")
	}
	if got := len(Table1()); got != 7 {
		t.Errorf("Table1 has %d systems, want 7", got)
	}
	if got := len(AllPresets()); got != 10 {
		t.Errorf("AllPresets has %d systems, want 10", got)
	}
}

func TestAllPresetsValid(t *testing.T) {
	for _, p := range AllPresets() {
		if err := p.Config.Validate(); err != nil {
			t.Errorf("%s: %v", p.Config.Name, err)
		}
		if _, err := p.Build(); err != nil {
			t.Errorf("%s: Build: %v", p.Config.Name, err)
		}
	}
}

func TestPageClassString(t *testing.T) {
	for cl, want := range map[PageClass]string{
		ClassZero:    "zero",
		ClassStatic:  "static",
		ClassWarm:    "warm",
		ClassHot:     "hot",
		PageClass(9): "class(9)",
	} {
		if got := cl.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", cl, got, want)
		}
	}
}
