package memmodel

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// JSON configuration for custom machines, so studies beyond the paper's
// Table 1 can be described declaratively and fed to cmd/tracegen.
//
// Example:
//
//	{
//	  "name": "Build Server",
//	  "os": "Linux",
//	  "ram_gib": 16,
//	  "trace_steps": 336,
//	  "classes": {"zero": 0.02, "static": 0.2, "warm": 0.5, "hot": 0.28},
//	  "rates": {"static": 0.001, "warm": 0.08, "hot": 0.9},
//	  "activity": {"kind": "diurnal", "mean": 0.6, "amplitude": 0.3, "peak_hour": 15},
//	  "dup_prob": 0.1, "zero_prob": 0.01, "pool_size": 64,
//	  "move_rate": 0.005, "activity_floor": 0.2, "seed": 7
//	}

// FileConfig is the serialized form of a machine description.
type FileConfig struct {
	Name       string `json:"name"`
	OS         string `json:"os"`
	RAMGiB     int64  `json:"ram_gib"`
	TraceSteps int    `json:"trace_steps"`
	Seed       int64  `json:"seed"`
	StepMin    int    `json:"step_minutes"`

	Classes struct {
		Zero   float64 `json:"zero"`
		Static float64 `json:"static"`
		Warm   float64 `json:"warm"`
		Hot    float64 `json:"hot"`
	} `json:"classes"`
	Rates struct {
		Static float64 `json:"static"`
		Warm   float64 `json:"warm"`
		Hot    float64 `json:"hot"`
	} `json:"rates"`
	ActivityFloor float64 `json:"activity_floor"`
	DupProb       float64 `json:"dup_prob"`
	ZeroProb      float64 `json:"zero_prob"`
	PoolSize      int     `json:"pool_size"`
	MoveRate      float64 `json:"move_rate"`

	Activity struct {
		Kind string `json:"kind"` // diurnal | sessions | constant | workday

		// diurnal
		Mean      float64 `json:"mean"`
		Amplitude float64 `json:"amplitude"`
		PeakHour  float64 `json:"peak_hour"`

		// sessions / workday
		StartHour   float64 `json:"start_hour"`
		EndHour     float64 `json:"end_hour"`
		JitterHours float64 `json:"jitter_hours"`
		WeekendProb float64 `json:"weekend_prob"`
		BusyLevel   float64 `json:"busy_level"`
		IdleLevel   float64 `json:"idle_level"`

		// constant
		Level float64 `json:"level"`
	} `json:"activity"`
}

// Preset converts the file form into a runnable preset.
func (fc *FileConfig) Preset() (Preset, error) {
	if fc.Name == "" {
		return Preset{}, fmt.Errorf("memmodel: config missing name")
	}
	if fc.RAMGiB <= 0 {
		return Preset{}, fmt.Errorf("memmodel: config %q: ram_gib must be positive", fc.Name)
	}
	steps := fc.TraceSteps
	if steps <= 0 {
		steps = 336
	}
	stepMin := fc.StepMin
	if stepMin <= 0 {
		stepMin = 30
	}
	cfg := Config{
		Name:          fc.Name,
		RAMBytes:      fc.RAMGiB * gib,
		PagesPerGiB:   DefaultPagesPerGiB,
		Seed:          fc.Seed,
		Step:          time.Duration(stepMin) * time.Minute,
		Start:         traceStart,
		ZeroFrac:      fc.Classes.Zero,
		StaticFrac:    fc.Classes.Static,
		WarmFrac:      fc.Classes.Warm,
		HotFrac:       fc.Classes.Hot,
		StaticRate:    fc.Rates.Static,
		WarmRate:      fc.Rates.Warm,
		HotRate:       fc.Rates.Hot,
		ActivityFloor: fc.ActivityFloor,
		DupProb:       fc.DupProb,
		ZeroProb:      fc.ZeroProb,
		PoolSize:      fc.PoolSize,
		MoveRate:      fc.MoveRate,
	}
	var act Activity
	switch fc.Activity.Kind {
	case "diurnal":
		act = Diurnal{Mean: fc.Activity.Mean, Amplitude: fc.Activity.Amplitude, PeakHour: fc.Activity.PeakHour}
	case "sessions":
		act = Sessions{
			StartHour:   fc.Activity.StartHour,
			EndHour:     fc.Activity.EndHour,
			JitterHours: fc.Activity.JitterHours,
			WeekendProb: fc.Activity.WeekendProb,
			BusyLevel:   fc.Activity.BusyLevel,
			Salt:        uint64(fc.Seed),
		}
	case "constant":
		act = Constant{LevelValue: fc.Activity.Level}
	case "workday":
		act = Workday{
			StartHour: fc.Activity.StartHour,
			EndHour:   fc.Activity.EndHour,
			BusyLevel: fc.Activity.BusyLevel,
			IdleLevel: fc.Activity.IdleLevel,
		}
	default:
		return Preset{}, fmt.Errorf("memmodel: config %q: unknown activity kind %q (want diurnal, sessions, constant or workday)",
			fc.Name, fc.Activity.Kind)
	}
	if err := cfg.Validate(); err != nil {
		return Preset{}, fmt.Errorf("memmodel: config %q: %w", fc.Name, err)
	}
	return Preset{
		Config:     cfg,
		Activity:   act,
		OS:         fc.OS,
		TraceID:    "(custom config)",
		TraceSteps: steps,
	}, nil
}

// LoadConfig reads one or more machine descriptions from a JSON file
// holding either a single object or an array of objects.
func LoadConfig(path string) ([]Preset, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("memmodel: %w", err)
	}
	var many []FileConfig
	if err := json.Unmarshal(raw, &many); err != nil {
		var one FileConfig
		if err2 := json.Unmarshal(raw, &one); err2 != nil {
			return nil, fmt.Errorf("memmodel: parse %s: %w", path, err)
		}
		many = []FileConfig{one}
	}
	presets := make([]Preset, 0, len(many))
	for i := range many {
		p, err := many[i].Preset()
		if err != nil {
			return nil, err
		}
		presets = append(presets, p)
	}
	return presets, nil
}
