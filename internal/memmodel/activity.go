// Package memmodel generates synthetic memory-evolution traces that stand in
// for the Memory Buddies fingerprint traces (Wood et al., VEE'09) and the
// paper's own crawler and desktop traces, none of which are retrievable
// today (the hosting links have rotted).
//
// A modelled machine has a fixed number of pages, each carrying a content
// identifier and belonging to a churn class (static OS/code pages, warm
// page-cache pages, hot working-set pages, zero pages). An activity process
// modulates per-class rewrite probabilities over time — diurnal load for
// servers, user sessions for laptops, sustained churn for crawlers, a
// 9-to-5 workday for the VDI desktop. Rewrites draw fresh unique content,
// duplicate content from a shared pool (shared libraries, common file
// blocks), or zeros, which reproduces the duplicate- and zero-page fractions
// of Figure 4. A slow frame-shuffle process relocates content between
// frames, recreating the effect that makes dirty-page tracking overestimate
// transfers relative to content hashes (Figure 5).
//
// The models are calibrated against every number the paper's prose reports;
// EXPERIMENTS.md records the paper-vs-measured comparison and DESIGN.md §2
// records this trace substitution alongside the others.
package memmodel

import (
	"math"
	"time"
)

// Activity describes when a machine is busy and when it is reachable for
// fingerprinting. Implementations must be pure functions of time so traces
// are reproducible.
type Activity interface {
	// Level reports the machine's activity in [0, 1] at time t. Page churn
	// scales with the level.
	Level(t time.Time) float64
	// Online reports whether the machine records a fingerprint at time t.
	// Servers are always online; laptops only while their user works (the
	// paper's laptop traces contain only 151–205 of the 336 possible
	// fingerprints).
	Online(t time.Time) bool
}

// Diurnal is a day-night activity cycle: a sinusoid with the given mean and
// amplitude peaking at PeakHour, always online. It models the paper's
// web/e-mail servers.
type Diurnal struct {
	// Mean is the average activity level in [0,1].
	Mean float64
	// Amplitude scales the day-night swing; the level stays clamped to [0,1].
	Amplitude float64
	// PeakHour is the local hour (0–24) of maximum activity.
	PeakHour float64
}

var _ Activity = Diurnal{}

// Level implements Activity.
func (d Diurnal) Level(t time.Time) float64 {
	hour := float64(t.Hour()) + float64(t.Minute())/60
	phase := 2 * math.Pi * (hour - d.PeakHour) / 24
	return clamp01(d.Mean + d.Amplitude*math.Cos(phase))
}

// Online implements Activity: servers run 24/7.
func (d Diurnal) Online(time.Time) bool { return true }

// Sessions models an interactively used laptop: high activity during work
// sessions, offline (suspended) otherwise. Session boundaries jitter from
// day to day, derived deterministically from the date, so different seeds
// and machines do not share identical schedules.
type Sessions struct {
	// StartHour and EndHour bound the nominal daily session (e.g. 9 and 18).
	StartHour float64
	EndHour   float64
	// JitterHours shifts each day's session start and end by up to ±JitterHours.
	JitterHours float64
	// WeekendProb is the probability a weekend day has a (short) session.
	WeekendProb float64
	// BusyLevel is the activity level during a session.
	BusyLevel float64
	// Salt decorrelates schedules between machines with equal parameters.
	Salt uint64
}

var _ Activity = Sessions{}

// sessionWindow reports the session bounds for the day containing t, and
// whether the day has a session at all.
func (s Sessions) sessionWindow(t time.Time) (startH, endH float64, ok bool) {
	day := t.YearDay() + t.Year()*366
	h := mix64(uint64(day) ^ s.Salt*0x9E3779B97F4A7C15)
	jitter := func(shift uint) float64 {
		// Uniform in [-JitterHours, +JitterHours).
		u := float64((h>>shift)&0xFFFF) / 0x10000
		return (2*u - 1) * s.JitterHours
	}
	wd := t.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		p := float64(h&0xFFFF) / 0x10000
		if p >= s.WeekendProb {
			return 0, 0, false
		}
		// Leisure-length weekend session.
		return 11 + jitter(16), 19 + jitter(32), true
	}
	return s.StartHour + jitter(16), s.EndHour + jitter(32), true
}

// Level implements Activity.
func (s Sessions) Level(t time.Time) float64 {
	if !s.Online(t) {
		return 0
	}
	return clamp01(s.BusyLevel)
}

// Online implements Activity.
func (s Sessions) Online(t time.Time) bool {
	startH, endH, ok := s.sessionWindow(t)
	if !ok {
		return false
	}
	hour := float64(t.Hour()) + float64(t.Minute())/60
	return hour >= startH && hour < endH
}

// Constant is an always-online activity at a fixed level — the web crawler
// VMs, which the paper found to be the worst case for checkpoint reuse
// (similarity below 20% after five hours).
type Constant struct {
	// LevelValue is the fixed activity level.
	LevelValue float64
}

var _ Activity = Constant{}

// Level implements Activity.
func (c Constant) Level(time.Time) float64 { return clamp01(c.LevelValue) }

// Online implements Activity.
func (c Constant) Online(time.Time) bool { return true }

// Workday models the VDI desktop of §4.6: always powered (it keeps running
// on the consolidation server overnight) but only busy while the user is at
// the keyboard on weekdays.
type Workday struct {
	// StartHour and EndHour bound the busy period (the paper migrates at
	// 9 am and 5 pm).
	StartHour float64
	EndHour   float64
	// BusyLevel is the activity while the user works; IdleLevel the
	// background activity overnight and on weekends.
	BusyLevel float64
	IdleLevel float64
}

var _ Activity = Workday{}

// Level implements Activity.
func (w Workday) Level(t time.Time) float64 {
	wd := t.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		return clamp01(w.IdleLevel)
	}
	hour := float64(t.Hour()) + float64(t.Minute())/60
	if hour >= w.StartHour && hour < w.EndHour {
		return clamp01(w.BusyLevel)
	}
	return clamp01(w.IdleLevel)
}

// Online implements Activity.
func (w Workday) Online(time.Time) bool { return true }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// mix64 is the splitmix64 finalizer, used to derive deterministic per-day
// jitter and page-content hashes.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
