package memmodel

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleConfig = `{
  "name": "Build Server",
  "os": "Linux",
  "ram_gib": 2,
  "trace_steps": 48,
  "seed": 7,
  "classes": {"zero": 0.02, "static": 0.2, "warm": 0.5, "hot": 0.28},
  "rates": {"static": 0.001, "warm": 0.08, "hot": 0.9},
  "activity": {"kind": "diurnal", "mean": 0.6, "amplitude": 0.3, "peak_hour": 15},
  "dup_prob": 0.1, "zero_prob": 0.01, "pool_size": 64,
  "move_rate": 0.005, "activity_floor": 0.2
}`

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "machines.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigSingle(t *testing.T) {
	presets, err := LoadConfig(writeConfig(t, sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if len(presets) != 1 {
		t.Fatalf("got %d presets", len(presets))
	}
	p := presets[0]
	if p.Config.Name != "Build Server" || p.OS != "Linux" || p.TraceSteps != 48 {
		t.Errorf("preset = %+v", p)
	}
	m, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	fps := m.Trace(8)
	if len(fps) != 8 {
		t.Errorf("trace has %d fingerprints", len(fps))
	}
}

func TestLoadConfigArray(t *testing.T) {
	body := "[" + sampleConfig + "," + sampleConfig + "]"
	presets, err := LoadConfig(writeConfig(t, body))
	if err != nil {
		t.Fatal(err)
	}
	if len(presets) != 2 {
		t.Errorf("got %d presets", len(presets))
	}
}

func TestLoadConfigActivityKinds(t *testing.T) {
	kinds := map[string]string{
		"sessions": `{"kind": "sessions", "start_hour": 9, "end_hour": 18, "busy_level": 0.8}`,
		"constant": `{"kind": "constant", "level": 0.9}`,
		"workday":  `{"kind": "workday", "start_hour": 9, "end_hour": 17, "busy_level": 0.7, "idle_level": 0.05}`,
	}
	for kind, actJSON := range kinds {
		body := `{
	  "name": "K", "ram_gib": 1,
	  "classes": {"zero": 0.05, "static": 0.25, "warm": 0.45, "hot": 0.25},
	  "rates": {"static": 0.001, "warm": 0.05, "hot": 0.5},
	  "dup_prob": 0.1, "zero_prob": 0.01, "pool_size": 16,
	  "activity": ` + actJSON + `}`
		presets, err := LoadConfig(writeConfig(t, body))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, err := presets[0].Build(); err != nil {
			t.Fatalf("%s: build: %v", kind, err)
		}
	}
}

func TestLoadConfigErrors(t *testing.T) {
	cases := map[string]string{
		"missing file":  "",
		"bad json":      "{not json",
		"missing name":  `{"ram_gib": 1, "activity": {"kind": "constant"}}`,
		"zero ram":      `{"name": "x", "activity": {"kind": "constant"}}`,
		"bad activity":  `{"name": "x", "ram_gib": 1, "activity": {"kind": "lunar"}}`,
		"bad fractions": `{"name": "x", "ram_gib": 1, "activity": {"kind": "constant"}, "classes": {"zero": 0.9, "static": 0.9, "warm": 0.9, "hot": 0.9}}`,
	}
	for name, body := range cases {
		var path string
		if name == "missing file" {
			path = filepath.Join(t.TempDir(), "none.json")
		} else {
			path = writeConfig(t, body)
		}
		if _, err := LoadConfig(path); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
