package memmodel

import "time"

// Preset bundles a machine configuration with its activity model and the
// descriptive metadata of Table 1.
type Preset struct {
	Config   Config
	Activity Activity
	// OS and TraceID reproduce Table 1's descriptive columns (the trace IDs
	// reference the original Memory Buddies repository).
	OS      string
	TraceID string
	// TraceSteps is the nominal trace length in fingerprint periods: 336 for
	// the one-week Memory Buddies traces, 192 for the four-day crawler
	// traces, 912 for the 19-day desktop trace.
	TraceSteps int
}

// DefaultPagesPerGiB is the model scale used by the presets: 2048 model
// pages stand for one GiB (262 144 real pages), a 1:128 reduction that keeps
// the all-pairs similarity sweeps of Figures 1–5 tractable.
const DefaultPagesPerGiB = 2048

// traceStart anchors the synthetic traces on a Monday so weekday-dependent
// activity (laptop sessions, the VDI workday) lines up with the paper's
// description. The desktop trace instead starts on 5 Nov 2014 as in §4.6.
var traceStart = time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)

const gib = int64(1) << 30

// baseConfig fills the fields shared by every preset.
func baseConfig(name string, ramGiB int64, seed int64) Config {
	return Config{
		Name:        name,
		RAMBytes:    ramGiB * gib,
		PagesPerGiB: DefaultPagesPerGiB,
		Seed:        seed,
		Step:        30 * time.Minute,
		Start:       traceStart,
	}
}

// ServerA models Table 1's Server A: 1 GiB Linux web/e-mail server with a
// very stable, low duplicate-page population (~5 %, Figure 4) and an average
// 24-hour similarity around 30 % (Figure 1, top-left).
func ServerA() Preset {
	cfg := baseConfig("Server A", 1, 0xA1)
	cfg.ZeroFrac, cfg.StaticFrac, cfg.WarmFrac, cfg.HotFrac = 0.04, 0.21, 0.50, 0.25
	cfg.StaticRate, cfg.WarmRate, cfg.HotRate = 0.0008, 0.045, 0.60
	cfg.ActivityFloor = 0.25
	cfg.DupProb, cfg.ZeroProb, cfg.PoolSize = 0.05, 0.015, 48
	cfg.MoveRate = 0.005
	return Preset{
		Config:     cfg,
		Activity:   Diurnal{Mean: 0.5, Amplitude: 0.35, PeakHour: 14},
		OS:         "Linux",
		TraceID:    "00065BEE5AA7",
		TraceSteps: 336,
	}
}

// ServerB models Server B: 4 GiB Linux server, the paper's best case among
// the servers with ~40 % average similarity after 24 hours.
func ServerB() Preset {
	cfg := baseConfig("Server B", 4, 0xB2)
	cfg.ZeroFrac, cfg.StaticFrac, cfg.WarmFrac, cfg.HotFrac = 0.04, 0.23, 0.50, 0.23
	cfg.StaticRate, cfg.WarmRate, cfg.HotRate = 0.0006, 0.038, 0.70
	cfg.ActivityFloor = 0.25
	cfg.DupProb, cfg.ZeroProb, cfg.PoolSize = 0.10, 0.015, 96
	cfg.MoveRate = 0.004
	return Preset{
		Config:     cfg,
		Activity:   Diurnal{Mean: 0.45, Amplitude: 0.35, PeakHour: 15},
		OS:         "Linux",
		TraceID:    "00188B30D847",
		TraceSteps: 336,
	}
}

// ServerC models Server C: 8 GiB Linux server, the paper's worst server —
// average similarity near 20 % after 24 hours, minimum below 10 %, yet
// still ~20 % content overlap after a full week (Figure 2), and the highest
// duplicate-page fraction (~20 %) with the fewest zero pages.
func ServerC() Preset {
	cfg := baseConfig("Server C", 8, 0xC3)
	cfg.ZeroFrac, cfg.StaticFrac, cfg.WarmFrac, cfg.HotFrac = 0.015, 0.145, 0.55, 0.29
	cfg.StaticRate, cfg.WarmRate, cfg.HotRate = 0.0005, 0.062, 0.80
	cfg.ActivityFloor = 0.20
	cfg.DupProb, cfg.ZeroProb, cfg.PoolSize = 0.22, 0.004, 64
	cfg.MoveRate = 0.006
	return Preset{
		Config:     cfg,
		Activity:   Diurnal{Mean: 0.55, Amplitude: 0.40, PeakHour: 13},
		OS:         "Linux",
		TraceID:    "001E4F36E2FB",
		TraceSteps: 336,
	}
}

// laptop builds one of the four OS X laptops of Table 1: 2 GiB machines
// that are online only during user sessions (the traces contain 151–205 of
// the 336 possible fingerprints) with duplicate-page fractions of 10–20 %.
func laptop(name, traceID string, seed int64, salt uint64, startHour float64) Preset {
	cfg := baseConfig(name, 2, seed)
	cfg.ZeroFrac, cfg.StaticFrac, cfg.WarmFrac, cfg.HotFrac = 0.05, 0.25, 0.45, 0.25
	cfg.StaticRate, cfg.WarmRate, cfg.HotRate = 0.0010, 0.055, 0.55
	// Suspended laptops do not churn: no activity floor.
	cfg.ActivityFloor = 0.02
	cfg.DupProb, cfg.ZeroProb, cfg.PoolSize = 0.15, 0.02, 64
	cfg.MoveRate = 0.004
	return Preset{
		Config: cfg,
		Activity: Sessions{
			StartHour:   startHour,
			EndHour:     startHour + 13.5,
			JitterHours: 1.5,
			WeekendProb: 0.7,
			BusyLevel:   0.75,
			Salt:        salt,
		},
		OS:         "OSX",
		TraceID:    traceID,
		TraceSteps: 336,
	}
}

// LaptopA models Table 1's Laptop A.
func LaptopA() Preset { return laptop("Laptop A", "001B6333F86A", 0xD4, 11, 9) }

// LaptopB models Table 1's Laptop B.
func LaptopB() Preset { return laptop("Laptop B", "001B6333F90A", 0xE5, 23, 8.5) }

// LaptopC models Table 1's Laptop C.
func LaptopC() Preset { return laptop("Laptop C", "001B6334DE9F", 0xF6, 37, 10) }

// LaptopD models Table 1's Laptop D.
func LaptopD() Preset { return laptop("Laptop D", "001B6338238A", 0x17, 53, 9.5) }

// crawler builds one of the Apache Nutch web-crawler VMs the authors traced
// themselves: 8 GiB, 4 cores, constantly busy. The crawlers are the paper's
// worst case for checkpoint reuse — similarity is ~40 % after one hour and
// below 20 % after five (§2.3).
func crawler(name string, seed int64, level float64) Preset {
	cfg := baseConfig(name, 8, seed)
	cfg.ZeroFrac, cfg.StaticFrac, cfg.WarmFrac, cfg.HotFrac = 0.01, 0.10, 0.55, 0.34
	cfg.StaticRate, cfg.WarmRate, cfg.HotRate = 0.0012, 0.22, 0.90
	cfg.ActivityFloor = 0.30
	cfg.DupProb, cfg.ZeroProb, cfg.PoolSize = 0.08, 0.004, 64
	cfg.MoveRate = 0.008
	return Preset{
		Config:     cfg,
		Activity:   Constant{LevelValue: level},
		OS:         "Linux",
		TraceID:    "(own trace)",
		TraceSteps: 192, // 4 days at 30-minute fingerprints
	}
}

// CrawlerA models the first web-crawler VM.
func CrawlerA() Preset { return crawler("Crawler A", 0x28, 0.90) }

// CrawlerB models the second web-crawler VM.
func CrawlerB() Preset { return crawler("Crawler B", 0x39, 0.85) }

// Desktop models the author's 6 GiB Ubuntu desktop of §4.6, traced for 19
// days (5–23 Nov 2014, 912 fingerprints): busy during the 9-to-5 workday,
// nearly idle overnight and on weekends. In the VDI scenario this machine
// migrates twice every weekday.
func Desktop() Preset {
	cfg := baseConfig("Desktop", 6, 0x4A)
	// 5 Nov 2014 was a Wednesday.
	cfg.Start = time.Date(2014, 11, 5, 0, 0, 0, 0, time.UTC)
	cfg.ZeroFrac, cfg.StaticFrac, cfg.WarmFrac, cfg.HotFrac = 0.03, 0.36, 0.46, 0.15
	cfg.StaticRate, cfg.WarmRate, cfg.HotRate = 0.0006, 0.050, 0.45
	cfg.ActivityFloor = 0.03
	cfg.DupProb, cfg.ZeroProb, cfg.PoolSize = 0.12, 0.015, 96
	cfg.MoveRate = 0.004
	return Preset{
		Config:     cfg,
		Activity:   Workday{StartHour: 9, EndHour: 17, BusyLevel: 0.75, IdleLevel: 0.015},
		OS:         "Linux (Ubuntu 10.04)",
		TraceID:    "(own trace)",
		TraceSteps: 912,
	}
}

// Table1 returns the presets in the order of the paper's Table 1.
func Table1() []Preset {
	return []Preset{
		ServerA(), ServerB(), ServerC(),
		LaptopA(), LaptopB(), LaptopC(), LaptopD(),
	}
}

// AllPresets returns every modelled machine, including the crawler and
// desktop traces the authors collected themselves.
func AllPresets() []Preset {
	return append(Table1(), CrawlerA(), CrawlerB(), Desktop())
}

// PresetByName looks a preset up by its machine name ("Server A").
func PresetByName(name string) (Preset, bool) {
	for _, p := range AllPresets() {
		if p.Config.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

// Build constructs the machine for a preset.
func (p Preset) Build() (*Machine, error) { return New(p.Config, p.Activity) }
