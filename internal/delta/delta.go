// Package delta implements XBZRLE-style page delta encoding, the delta
// compression technique of Svärd et al. (the paper's reference [24]) that
// §5 lists among the optimizations combinable with checkpoint recycling.
//
// A page that changed since the checkpoint often changed only in part — a
// few cache lines of a 4 KiB page. When both ends hold the same old version
// (the destination in its checkpoint, the source in its mirror of that
// checkpoint), the wire needs only the difference: the XOR of old and new
// is mostly zeros and run-length encodes tightly.
//
// Encoding: a sequence of (zero-run length, literal-run length, literal
// bytes) records over the XOR stream, with lengths as unsigned varints.
// Literals carry the *new* bytes (not the XOR), so decoding is a copy, and
// a corrupted old-version mismatch is caught by the page checksum that
// always accompanies the delta on the wire.
package delta

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTooLarge is returned by Encode when the delta would not be smaller
// than the caller's limit — the page should be sent by other means.
var ErrTooLarge = errors.New("delta: encoding exceeds limit")

// Encode produces a delta that transforms old into new. Both slices must
// have equal length. The encoding is appended to dst (which may be nil)
// and returned; if it would reach limit bytes, ErrTooLarge is returned
// instead and the caller should fall back to a full or compressed page.
func Encode(dst, old, new []byte, limit int) ([]byte, error) {
	if len(old) != len(new) {
		return nil, fmt.Errorf("delta: length mismatch %d vs %d", len(old), len(new))
	}
	if limit <= 0 {
		return nil, ErrTooLarge
	}
	start := len(dst)
	var scratch [binary.MaxVarintLen64]byte
	i, n := 0, len(new)
	for i < n {
		// Zero run: bytes where old == new.
		zrun := 0
		for i+zrun < n && old[i+zrun] == new[i+zrun] {
			zrun++
		}
		i += zrun
		if i >= n && len(dst) > start {
			// Trailing zero run needs no record.
			break
		}
		// Literal run: bytes that differ. Runs are broken by 16+ equal
		// bytes: shorter equal stretches cost less as literals than as a
		// record pair.
		lit := 0
		for i+lit < n {
			if old[i+lit] == new[i+lit] {
				same := 1
				for i+lit+same < n && same < 16 && old[i+lit+same] == new[i+lit+same] {
					same++
				}
				if same >= 16 || i+lit+same >= n {
					break
				}
				lit += same
				continue
			}
			lit++
		}
		k := binary.PutUvarint(scratch[:], uint64(zrun))
		dst = append(dst, scratch[:k]...)
		k = binary.PutUvarint(scratch[:], uint64(lit))
		dst = append(dst, scratch[:k]...)
		dst = append(dst, new[i:i+lit]...)
		i += lit
		if len(dst)-start >= limit {
			return nil, ErrTooLarge
		}
	}
	if len(dst) == start {
		// Identical pages: emit one empty record so the delta is non-empty.
		dst = append(dst, 0, 0)
	}
	return dst, nil
}

// Decode applies a delta produced by Encode to old, writing the
// reconstructed page into out. old and out must have equal length (out may
// alias old).
func Decode(old, enc, out []byte) error {
	if len(old) != len(out) {
		return fmt.Errorf("delta: length mismatch %d vs %d", len(old), len(out))
	}
	pos := 0
	i := 0
	readUvarint := func() (uint64, error) {
		v, k := binary.Uvarint(enc[i:])
		if k <= 0 {
			return 0, fmt.Errorf("delta: truncated varint at %d", i)
		}
		i += k
		return v, nil
	}
	for i < len(enc) {
		zrun, err := readUvarint()
		if err != nil {
			return err
		}
		if zrun > uint64(len(out)-pos) {
			return fmt.Errorf("delta: zero run %d overflows page at %d", zrun, pos)
		}
		copy(out[pos:pos+int(zrun)], old[pos:pos+int(zrun)])
		pos += int(zrun)
		lit, err := readUvarint()
		if err != nil {
			return err
		}
		if lit > uint64(len(out)-pos) {
			return fmt.Errorf("delta: literal run %d overflows page at %d", lit, pos)
		}
		if uint64(len(enc)-i) < lit {
			return fmt.Errorf("delta: truncated literal run at %d", i)
		}
		copy(out[pos:pos+int(lit)], enc[i:i+int(lit)])
		pos += int(lit)
		i += int(lit)
	}
	// Implicit trailing zero run.
	copy(out[pos:], old[pos:])
	return nil
}
