package delta

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

const pageSize = 4096

func roundTrip(t *testing.T, old, new []byte, limit int) ([]byte, bool) {
	t.Helper()
	enc, err := Encode(nil, old, new, limit)
	if errors.Is(err, ErrTooLarge) {
		return nil, false
	}
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(old))
	if err := Decode(old, enc, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, new) {
		t.Fatalf("round trip mismatch")
	}
	return enc, true
}

func TestIdenticalPages(t *testing.T) {
	page := bytes.Repeat([]byte{7}, pageSize)
	enc, ok := roundTrip(t, page, page, pageSize)
	if !ok {
		t.Fatal("identical pages exceeded limit")
	}
	if len(enc) > 4 {
		t.Errorf("identical pages encoded in %d bytes, want <= 4", len(enc))
	}
}

func TestSmallChange(t *testing.T) {
	old := bytes.Repeat([]byte{1}, pageSize)
	new := append([]byte(nil), old...)
	// 64 changed bytes in the middle.
	for i := 2000; i < 2064; i++ {
		new[i] = 0xFF
	}
	enc, ok := roundTrip(t, old, new, pageSize)
	if !ok {
		t.Fatal("small change exceeded limit")
	}
	if len(enc) > 100 {
		t.Errorf("64-byte change encoded in %d bytes", len(enc))
	}
}

func TestChangeAtBoundaries(t *testing.T) {
	old := bytes.Repeat([]byte{1}, pageSize)
	new := append([]byte(nil), old...)
	new[0] = 9
	new[pageSize-1] = 9
	roundTrip(t, old, new, pageSize)
}

func TestScatteredChanges(t *testing.T) {
	old := bytes.Repeat([]byte{1}, pageSize)
	new := append([]byte(nil), old...)
	for i := 0; i < pageSize; i += 50 {
		new[i] ^= 0xAA
	}
	roundTrip(t, old, new, pageSize)
}

func TestCompletelyDifferentExceedsLimit(t *testing.T) {
	old := make([]byte, pageSize)
	new := make([]byte, pageSize)
	for i := range new {
		old[i] = byte(i)
		new[i] = byte(i) ^ 0x5A
	}
	if _, err := Encode(nil, old, new, pageSize); !errors.Is(err, ErrTooLarge) {
		t.Errorf("fully-changed page: err = %v, want ErrTooLarge", err)
	}
}

func TestEncodeLengthMismatch(t *testing.T) {
	if _, err := Encode(nil, make([]byte, 4), make([]byte, 8), 100); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDecodeLengthMismatch(t *testing.T) {
	if err := Decode(make([]byte, 4), []byte{0, 0}, make([]byte, 8)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDecodeHostileInputs(t *testing.T) {
	old := make([]byte, 64)
	out := make([]byte, 64)
	hostile := [][]byte{
		{0xFF},           // truncated varint
		{200, 1, 0},      // zero run beyond page
		{0, 200},         // literal run beyond page
		{0, 10, 1, 2, 3}, // literal run longer than remaining encoding
		{0, 1, 9, 0xFF},  // trailing truncated varint
	}
	for i, enc := range hostile {
		if err := Decode(old, enc, out); err == nil {
			t.Errorf("hostile input %d accepted", i)
		}
	}
}

func TestDecodeInPlace(t *testing.T) {
	old := bytes.Repeat([]byte{3}, pageSize)
	new := append([]byte(nil), old...)
	new[100] = 42
	enc, err := Encode(nil, old, new, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	// out aliases old.
	if err := Decode(old, enc, old); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, new) {
		t.Error("in-place decode mismatch")
	}
}

func TestEncodeAppendsToDst(t *testing.T) {
	old := bytes.Repeat([]byte{1}, 64)
	new := append([]byte(nil), old...)
	new[10] = 2
	prefix := []byte("hdr")
	enc, err := Encode(prefix, old, new, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(enc, prefix) {
		t.Error("Encode did not append to dst")
	}
	out := make([]byte, 64)
	if err := Decode(old, enc[len(prefix):], out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, new) {
		t.Error("mismatch after prefix strip")
	}
}

// Property: for arbitrary old/new pairs, either Encode round-trips exactly
// or reports ErrTooLarge.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, flips uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		old := make([]byte, 512)
		rng.Read(old)
		new := append([]byte(nil), old...)
		for k := 0; k < int(flips%512); k++ {
			new[rng.Intn(len(new))] ^= byte(1 + rng.Intn(255))
		}
		enc, err := Encode(nil, old, new, len(new))
		if errors.Is(err, ErrTooLarge) {
			return true
		}
		if err != nil {
			return false
		}
		out := make([]byte, len(old))
		if err := Decode(old, enc, out); err != nil {
			return false
		}
		return bytes.Equal(out, new)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	old := make([]byte, pageSize)
	rng := rand.New(rand.NewSource(1))
	rng.Read(old)
	new := append([]byte(nil), old...)
	// 5% of the page changed in 8 contiguous stretches.
	for s := 0; s < 8; s++ {
		off := rng.Intn(pageSize - 32)
		for i := 0; i < 25; i++ {
			new[off+i] ^= 0x77
		}
	}
	b.SetBytes(pageSize)
	var enc []byte
	for i := 0; i < b.N; i++ {
		var err error
		enc, err = Encode(enc[:0], old, new, pageSize)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	old := make([]byte, pageSize)
	new := append([]byte(nil), old...)
	for i := 1000; i < 1200; i++ {
		new[i] = 0x33
	}
	enc, err := Encode(nil, old, new, pageSize)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, pageSize)
	b.SetBytes(pageSize)
	for i := 0; i < b.N; i++ {
		if err := Decode(old, enc, out); err != nil {
			b.Fatal(err)
		}
	}
}
