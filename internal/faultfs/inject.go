package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Op names a fault site: one kind of filesystem call the seam exposes.
type Op string

// Fault sites. OpCreate covers Create and any OpenFile with O_CREATE;
// OpWrite/OpReadAt/OpRead/OpSync/OpClose fire on the per-file handle
// operations of files opened through an injected FS.
const (
	OpMkdir    Op = "mkdir"
	OpCreate   Op = "create"
	OpOpen     Op = "open"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpStat     Op = "stat"
	OpReadFile Op = "readfile"
	OpReadDir  Op = "readdir"
	OpChtimes  Op = "chtimes"
	OpRead     Op = "read"
	OpReadAt   Op = "readat"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
)

// Canonical injected errnos. They are plain syscall errnos wrapped with
// context, so errors.Is(err, faultfs.ErrEIO) works on anything the
// injector produced and on real kernel errors alike.
var (
	// ErrEIO models an unreadable/unwritable sector.
	ErrEIO error = syscall.EIO
	// ErrENOSPC models a full disk.
	ErrENOSPC error = syscall.ENOSPC
)

// ErrTornWrite marks an injected torn write: part of the payload reached
// the file before the failure. It wraps EIO semantics on the wire but
// carries its own identity so tests and metrics can tell the classes
// apart.
var ErrTornWrite = errors.New("faultfs: injected torn write")

// Fault is one armed fault rule. The zero value of every optional field
// means "any": a Fault{Op: OpWrite, Err: ErrEIO} fails every write on
// every path.
type Fault struct {
	// Op restricts the rule to one operation kind; empty matches all.
	Op Op
	// Path is a substring the target path must contain ("" matches all).
	// Store fault sites are usually selected by suffix: ".seg", ".pmf",
	// ".idx", ".gens.json", "MANIFEST.json".
	Path string
	// After lets this many matching calls through before the rule fires.
	After int
	// Times caps how often the rule fires: 0 means once, n>0 means n
	// times, negative means every matching call forever.
	Times int
	// Err is the injected error. Defaults to ErrEIO, or ErrTornWrite
	// when TornBytes is set.
	Err error
	// TornBytes, on OpWrite, delivers this many bytes of the payload to
	// the underlying file before returning the error — a torn write.
	TornBytes int
	// Latency delays the operation before it proceeds (or fails).
	Latency time.Duration
}

// Shot records one fired fault, for test assertions.
type Shot struct {
	// Op is the operation the fault fired on.
	Op Op
	// Path is the target path of that operation.
	Path string
	// Err is the error that was injected (nil for latency-only rules).
	Err error
}

// Injector applies deterministic Fault rules to an underlying FS. Rules
// are evaluated in arming order; the first rule that matches and is due
// fires. All methods are safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	faults []*armedFault
	shots  []Shot
}

type armedFault struct {
	Fault
	seen  int
	fired int
}

// NewInjector returns an Injector armed with the given rules.
func NewInjector(faults ...Fault) *Injector {
	in := &Injector{}
	for _, f := range faults {
		in.Arm(f)
	}
	return in
}

// Arm appends one fault rule.
func (in *Injector) Arm(f Fault) {
	if f.Err == nil {
		switch {
		case f.TornBytes > 0:
			f.Err = ErrTornWrite
		case f.Latency == 0:
			f.Err = ErrEIO
		}
		// Err == nil with Latency set stays a latency-only rule.
	}
	in.mu.Lock()
	in.faults = append(in.faults, &armedFault{Fault: f})
	in.mu.Unlock()
}

// Disarm clears all rules; already-recorded shots are kept.
func (in *Injector) Disarm() {
	in.mu.Lock()
	in.faults = nil
	in.mu.Unlock()
}

// Shots returns a copy of every fault fired so far, in order.
func (in *Injector) Shots() []Shot {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Shot(nil), in.shots...)
}

// check consults the rules for one operation. It returns the number of
// bytes a torn write should deliver (0 for none) and the injected error
// (nil to let the operation proceed).
func (in *Injector) check(op Op, path string) (torn int, err error) {
	in.mu.Lock()
	var due *armedFault
	for _, f := range in.faults {
		if f.Op != "" && f.Op != op {
			continue
		}
		if f.Path != "" && !strings.Contains(path, f.Path) {
			continue
		}
		f.seen++
		if f.seen <= f.After {
			continue
		}
		max := f.Times
		if max == 0 {
			max = 1
		}
		if max > 0 && f.fired >= max {
			continue
		}
		f.fired++
		due = f
		break
	}
	if due == nil {
		in.mu.Unlock()
		return 0, nil
	}
	errOut := due.Err
	if errOut == nil && due.TornBytes > 0 {
		errOut = ErrTornWrite
	}
	var wrapped error
	if errOut != nil {
		wrapped = fmt.Errorf("faultfs: injected %s %s: %w", op, path, errOut)
	}
	in.shots = append(in.shots, Shot{Op: op, Path: path, Err: wrapped})
	latency := due.Latency
	in.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	return due.TornBytes, wrapped
}

// FS wraps base so every operation consults the injector first. Files
// opened through the wrapped FS are themselves wrapped, so per-handle
// operations (write, readat, sync, close) are fault sites too.
func (in *Injector) FS(base FS) FS {
	return &faultFS{base: base, in: in}
}

type faultFS struct {
	base FS
	in   *Injector
}

func (f *faultFS) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.in.check(OpMkdir, path); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f *faultFS) Create(name string) (File, error) {
	if _, err := f.in.check(OpCreate, name); err != nil {
		return nil, err
	}
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{base: file, path: name, in: f.in}, nil
}

func (f *faultFS) Open(name string) (File, error) {
	if _, err := f.in.check(OpOpen, name); err != nil {
		return nil, err
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{base: file, path: name, in: f.in}, nil
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	op := OpOpen
	if flag&os.O_CREATE != 0 {
		op = OpCreate
	}
	if _, err := f.in.check(op, name); err != nil {
		return nil, err
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{base: file, path: name, in: f.in}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if _, err := f.in.check(OpRename, newpath); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error {
	if _, err := f.in.check(OpRemove, name); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *faultFS) Stat(name string) (os.FileInfo, error) {
	if _, err := f.in.check(OpStat, name); err != nil {
		return nil, err
	}
	return f.base.Stat(name)
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	if _, err := f.in.check(OpReadFile, name); err != nil {
		return nil, err
	}
	return f.base.ReadFile(name)
}

func (f *faultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if _, err := f.in.check(OpReadDir, name); err != nil {
		return nil, err
	}
	return f.base.ReadDir(name)
}

func (f *faultFS) Chtimes(name string, atime, mtime time.Time) error {
	if _, err := f.in.check(OpChtimes, name); err != nil {
		return err
	}
	return f.base.Chtimes(name, atime, mtime)
}

type faultFile struct {
	base File
	path string
	in   *Injector
}

func (f *faultFile) Read(p []byte) (int, error) {
	if _, err := f.in.check(OpRead, f.path); err != nil {
		return 0, err
	}
	return f.base.Read(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if _, err := f.in.check(OpReadAt, f.path); err != nil {
		return 0, err
	}
	return f.base.ReadAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	torn, err := f.in.check(OpWrite, f.path)
	if err != nil {
		n := 0
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			n, _ = f.base.Write(p[:torn])
		}
		return n, err
	}
	return f.base.Write(p)
}

func (f *faultFile) Sync() error {
	if _, err := f.in.check(OpSync, f.path); err != nil {
		return err
	}
	return f.base.Sync()
}

func (f *faultFile) Close() error {
	if _, err := f.in.check(OpClose, f.path); err != nil {
		f.base.Close()
		return err
	}
	return f.base.Close()
}

func (f *faultFile) Name() string { return f.path }

func (f *faultFile) Stat() (os.FileInfo, error) { return f.base.Stat() }

// Label classifies an error into the short fault vocabulary used by the
// vecycle_degraded_total metric and trace events: "torn", "enospc",
// "eio", "quota", "notexist", "timeout", or "other". Empty for nil.
func Label(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrTornWrite), errors.Is(err, io.ErrUnexpectedEOF):
		return "torn"
	case errors.Is(err, syscall.ENOSPC), errors.Is(err, syscall.EDQUOT):
		return "enospc"
	case errors.Is(err, syscall.EIO):
		return "eio"
	case os.IsNotExist(err):
		return "notexist"
	case os.IsTimeout(err):
		return "timeout"
	default:
		return "other"
	}
}
