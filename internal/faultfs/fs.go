// Package faultfs is the storage-side sibling of core.FaultConn: a thin
// filesystem seam that internal/checkpoint routes every file operation
// through, plus a deterministic fault injector that can make any single
// operation site fail with EIO, ENOSPC, a torn write, or added latency.
//
// Production code uses the OS passthrough (the zero-cost default); chaos
// tests wrap it with an Injector armed with per-op-site schedules. The
// seam is deliberately restricted to the handful of calls the checkpoint
// store actually makes — it is not a general VFS.
package faultfs

import (
	"io"
	"os"
	"time"
)

// File is the subset of *os.File the checkpoint store uses. *os.File
// implements it directly, so the passthrough adds no wrapper object.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Closer

	// Name reports the path the file was opened with.
	Name() string
	// Stat reports file metadata.
	Stat() (os.FileInfo, error)
	// Sync flushes the file to stable storage.
	Sync() error
}

// FS is the filesystem seam under internal/checkpoint. Every durable
// store operation goes through one of these calls, which makes each of
// them an injectable fault site.
type FS interface {
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// Create truncate-creates a file for writing.
	Create(name string) (File, error)
	// Open opens a file for reading.
	Open(name string) (File, error)
	// OpenFile is the generalised open.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat reports file metadata by path.
	Stat(name string) (os.FileInfo, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// Chtimes updates access/modification times.
	Chtimes(name string, atime, mtime time.Time) error
}

// OS is the passthrough FS used outside chaos tests.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}
