package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.txt")
	f, err := OS.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if _, err := OS.Stat(p); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Rename(p, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestInjectEIOOnCreate(t *testing.T) {
	in := NewInjector(Fault{Op: OpCreate, Path: ".seg"})
	fsys := in.FS(OS)
	dir := t.TempDir()

	// Non-matching path is untouched.
	f, err := fsys.Create(filepath.Join(dir, "x.pmf"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Matching path fails with EIO (the default errno) exactly once.
	if _, err := fsys.Create(filepath.Join(dir, "x.seg")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	f, err = fsys.Create(filepath.Join(dir, "y.seg"))
	if err != nil {
		t.Fatalf("second create should pass: %v", err)
	}
	f.Close()

	shots := in.Shots()
	if len(shots) != 1 || shots[0].Op != OpCreate || !errors.Is(shots[0].Err, ErrEIO) {
		t.Fatalf("shots = %+v", shots)
	}
}

func TestInjectAfterAndTimes(t *testing.T) {
	in := NewInjector(Fault{Op: OpRemove, After: 2, Times: 2, Err: ErrENOSPC})
	fsys := in.FS(OS)
	dir := t.TempDir()
	mk := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	var errs []error
	for i := 0; i < 6; i++ {
		errs = append(errs, fsys.Remove(mk("f")))
	}
	for i, want := range []bool{false, false, true, true, false, false} {
		if got := errs[i] != nil; got != want {
			t.Fatalf("call %d: err=%v, want fail=%v", i, errs[i], want)
		}
	}
	if !errors.Is(errs[2], syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", errs[2])
	}
}

func TestInjectForever(t *testing.T) {
	in := NewInjector(Fault{Op: OpSync, Times: -1})
	fsys := in.FS(OS)
	f, err := fsys.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrEIO) {
			t.Fatalf("sync %d: want EIO, got %v", i, err)
		}
	}
}

func TestTornWrite(t *testing.T) {
	in := NewInjector(Fault{Op: OpWrite, TornBytes: 3})
	fsys := in.FS(OS)
	p := filepath.Join(t.TempDir(), "f")
	f, err := fsys.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrTornWrite) {
		t.Fatalf("Write = %d, %v; want 3, ErrTornWrite", n, err)
	}
	// Subsequent writes pass (Times defaults to once).
	if _, err := f.Write([]byte("ghi")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := os.ReadFile(p)
	if err != nil || string(got) != "abcghi" {
		t.Fatalf("on-disk = %q, %v; torn prefix should have landed", got, err)
	}
}

func TestReadFaults(t *testing.T) {
	p := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(p, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(Fault{Op: OpReadAt, After: 1})
	fsys := in.FS(OS)
	f, err := fsys.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("first readat should pass: %v", err)
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrEIO) {
		t.Fatalf("second readat: want EIO, got %v", err)
	}
}

func TestLatencyOnly(t *testing.T) {
	in := NewInjector(Fault{Op: OpStat, Latency: 30 * time.Millisecond, Times: -1})
	fsys := in.FS(OS)
	p := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(p, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := fsys.Stat(p); err != nil {
		t.Fatalf("latency-only rule must not error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("stat returned in %v, want >=30ms latency", d)
	}
	if shots := in.Shots(); len(shots) != 1 || shots[0].Err != nil {
		t.Fatalf("shots = %+v", shots)
	}
}

func TestOpenFileCreateFlagRouting(t *testing.T) {
	in := NewInjector(Fault{Op: OpCreate, Times: -1})
	fsys := in.FS(OS)
	p := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644); err == nil {
		t.Fatal("O_CREATE open should hit the create rule")
	}
	f, err := fsys.OpenFile(p, os.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("plain open must not hit the create rule: %v", err)
	}
	f.Close()
}

func TestLabel(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrTornWrite, "torn"},
		{syscall.ENOSPC, "enospc"},
		{syscall.EDQUOT, "enospc"},
		{syscall.EIO, "eio"},
		{os.ErrNotExist, "notexist"},
		{errors.New("weird"), "other"},
	}
	for _, c := range cases {
		if got := Label(c.err); got != c.want {
			t.Errorf("Label(%v) = %q, want %q", c.err, got, c.want)
		}
	}
	// Wrapped errors classify the same way.
	in := NewInjector(Fault{Op: OpRename, Err: ErrENOSPC})
	fsys := in.FS(OS)
	err := fsys.Rename("a", "b")
	if Label(err) != "enospc" {
		t.Errorf("wrapped rename error: Label = %q", Label(err))
	}
}
