// Package vm implements a byte-accurate simulated guest: a page-granular
// memory image with dirty tracking, standing in for the QEMU/KVM guests of
// the paper's prototype (§3). The migration engine in internal/core only
// ever observes pages, dirty bits and checksums, so this substrate exposes
// the identical surface a hypervisor would — and lets integration tests
// assert byte-for-byte equality of source and destination memory after a
// migration. This is the central substitution of the reproduction; see
// DESIGN.md §2 for the full substitution table.
package vm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"

	"vecycle/internal/checksum"
	"vecycle/internal/dirtytrack"
)

// PageSize is the guest page size in bytes, 4 KiB as in the paper.
const PageSize = 4096

// Config parameterizes a guest.
type Config struct {
	// Name identifies the VM ("vm0"). Migrations verify that source and
	// destination agree on it.
	Name string
	// MemBytes is the guest memory size; it must be a positive multiple of
	// PageSize.
	MemBytes int64
	// Seed drives the guest's workload randomness.
	Seed int64
}

// VM is a simulated guest. All methods are safe for concurrent use: the
// guest workload keeps writing while a live migration reads pages, exactly
// the overlap pre-copy migration is designed to handle.
type VM struct {
	name string
	seed int64

	mu    sync.RWMutex
	mem   []byte
	dirty *dirtytrack.Bitmap
	gens  *dirtytrack.Tracker
	rng   *rand.Rand
}

// New creates a guest with all-zero memory.
func New(cfg Config) (*VM, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("vm: empty name")
	}
	if cfg.MemBytes <= 0 || cfg.MemBytes%PageSize != 0 {
		return nil, fmt.Errorf("vm: MemBytes %d must be a positive multiple of %d", cfg.MemBytes, PageSize)
	}
	pages := int(cfg.MemBytes / PageSize)
	dirty, err := dirtytrack.NewBitmap(pages)
	if err != nil {
		return nil, err
	}
	gens, err := dirtytrack.NewTracker(pages)
	if err != nil {
		return nil, err
	}
	return &VM{
		name:  cfg.Name,
		seed:  cfg.Seed,
		mem:   make([]byte, cfg.MemBytes),
		dirty: dirty,
		gens:  gens,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Name reports the VM's identity.
func (v *VM) Name() string { return v.name }

// NumPages reports the guest memory size in pages.
func (v *VM) NumPages() int { return len(v.mem) / PageSize }

// MemBytes reports the guest memory size in bytes.
func (v *VM) MemBytes() int64 { return int64(len(v.mem)) }

// ReadPage copies page i into dst, which must be at least PageSize long.
func (v *VM) ReadPage(i int, dst []byte) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	copy(dst[:PageSize], v.pageLocked(i))
}

// PageSum computes the checksum of page i under alg without copying.
func (v *VM) PageSum(i int, alg checksum.Algorithm) checksum.Sum {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return alg.Page(v.pageLocked(i))
}

// WritePage replaces page i with data (PageSize bytes), marking the page
// dirty and advancing its generation.
func (v *VM) WritePage(i int, data []byte) {
	if len(data) != PageSize {
		panic(fmt.Sprintf("vm: WritePage with %d bytes, want %d", len(data), PageSize))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	copy(v.pageLocked(i), data)
	v.dirty.Set(i)
	v.gens.Touch(i)
}

// InstallPage is WritePage for the migration destination: it updates memory
// without marking the page dirty, since an installed page is by definition
// in sync with the source.
func (v *VM) InstallPage(i int, data []byte) {
	if len(data) != PageSize {
		panic(fmt.Sprintf("vm: InstallPage with %d bytes, want %d", len(data), PageSize))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	copy(v.pageLocked(i), data)
}

// InstallRange installs len(data)/PageSize contiguous pages starting at
// frame start with one lock acquisition and one copy — the vectorized
// install the destination pipeline uses for coalesced page-range frames.
// len(data) must be a positive multiple of PageSize and the span must fit
// the guest.
func (v *VM) InstallRange(start int, data []byte) {
	if len(data) == 0 || len(data)%PageSize != 0 {
		panic(fmt.Sprintf("vm: InstallRange with %d bytes, want a positive multiple of %d", len(data), PageSize))
	}
	count := len(data) / PageSize
	v.mu.Lock()
	defer v.mu.Unlock()
	copy(v.mem[start*PageSize:(start+count)*PageSize], data)
}

// ReadRange copies count contiguous pages starting at frame start into dst
// (at least count*PageSize bytes) under one lock acquisition — the batched
// counterpart of ReadPage used by the pipeline's sharded readers.
func (v *VM) ReadRange(start, count int, dst []byte) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	copy(dst[:count*PageSize], v.mem[start*PageSize:(start+count)*PageSize])
}

// RangeSums computes the checksum of count contiguous pages starting at
// frame start under one lock acquisition, appending to out (reusing its
// capacity). The destination uses it to probe a whole range-sum frame
// against resident content without per-page lock traffic.
func (v *VM) RangeSums(start, count int, alg checksum.Algorithm, out []checksum.Sum) []checksum.Sum {
	out = out[:0]
	v.mu.RLock()
	defer v.mu.RUnlock()
	for i := start; i < start+count; i++ {
		out = append(out, alg.Page(v.pageLocked(i)))
	}
	return out
}

func (v *VM) pageLocked(i int) []byte {
	return v.mem[i*PageSize : (i+1)*PageSize]
}

// HarvestDirty atomically returns the current dirty bitmap and clears it —
// the "dirty log read" a pre-copy round performs before re-scanning.
func (v *VM) HarvestDirty() *dirtytrack.Bitmap {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := v.dirty.Clone()
	v.dirty.Reset()
	return out
}

// DirtyCount reports the number of currently dirty pages without clearing.
func (v *VM) DirtyCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.dirty.Count()
}

// GenSnapshot captures the Miyakodori generation vector (taken alongside a
// checkpoint on an outgoing migration).
func (v *VM) GenSnapshot() dirtytrack.GenVector {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.gens.Snapshot()
}

// UnchangedSince reports the pages not written since the given generation
// snapshot.
func (v *VM) UnchangedSince(snap dirtytrack.GenVector) *dirtytrack.Bitmap {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.gens.UnchangedSince(snap)
}

// MemEqual reports whether two guests hold byte-identical memory — the
// post-migration correctness check.
func (v *VM) MemEqual(other *VM) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	other.mu.RLock()
	defer other.mu.RUnlock()
	return bytes.Equal(v.mem, other.mem)
}

// FirstDifference reports the first differing page between two guests, or
// -1 if memory is identical. Intended for test diagnostics.
func (v *VM) FirstDifference(other *VM) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	other.mu.RLock()
	defer other.mu.RUnlock()
	if len(v.mem) != len(other.mem) {
		return 0
	}
	for i := 0; i < v.NumPages(); i++ {
		if !bytes.Equal(v.pageLocked(i), other.pageLocked(i)) {
			return i
		}
	}
	return -1
}

// Fingerprint64 returns a 64-bit FNV hash per page, for cheap whole-memory
// comparisons in tests and experiments.
func (v *VM) Fingerprint64() []uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]uint64, v.NumPages())
	for i := range out {
		s := checksum.FNV.Page(v.pageLocked(i))
		var h uint64
		for b := 0; b < 8; b++ {
			h = h<<8 | uint64(s[b])
		}
		out[i] = h
	}
	return out
}
