package vm

import (
	"fmt"
	"math/rand"
)

// Guest workloads reproducing the benchmark setups of §4.4 and §4.5.

// FillRandom implements the best-case preparation of §4.4: "the VM executes
// a program which allocates 95% of the total memory and writes random data
// to it". frac selects the portion of memory filled (0.95 in the paper);
// the remainder stays zero. Filled pages receive unique random bytes.
func (v *VM) FillRandom(frac float64) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("vm: fill fraction %v out of [0,1]", frac)
	}
	pages := int(frac * float64(v.NumPages()))
	buf := make([]byte, PageSize)
	for i := 0; i < pages; i++ {
		v.randomPage(buf)
		v.WritePage(i, buf)
	}
	return nil
}

// Ramdisk models the controlled-update environment of §4.5: a single large
// file in a ramdisk laid out sequentially in guest physical memory,
// covering frac of the VM's pages (0.90 in the paper). UpdateBlocks then
// rewrites selected parts of it.
type Ramdisk struct {
	vm    *VM
	first int
	pages int
	rng   *rand.Rand
}

// NewRamdisk allocates and fills the ramdisk, returning a handle for
// subsequent updates.
func (v *VM) NewRamdisk(frac float64) (*Ramdisk, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("vm: ramdisk fraction %v out of (0,1]", frac)
	}
	pages := int(frac * float64(v.NumPages()))
	if pages == 0 {
		return nil, fmt.Errorf("vm: ramdisk fraction %v yields zero pages", frac)
	}
	r := &Ramdisk{vm: v, first: 0, pages: pages, rng: rand.New(rand.NewSource(v.seed ^ 0x72616D64))}
	buf := make([]byte, PageSize)
	for i := 0; i < pages; i++ {
		r.fillPage(buf)
		v.WritePage(r.first+i, buf)
	}
	return r, nil
}

// Pages reports the ramdisk size in pages.
func (r *Ramdisk) Pages() int { return r.pages }

// UpdatePercent rewrites the given percentage of the ramdisk with fresh
// random data, spread uniformly across the file — the knob behind
// Figure 7's x-axis (25/50/75/100 % updates).
func (r *Ramdisk) UpdatePercent(pct float64) error {
	if pct < 0 || pct > 100 {
		return fmt.Errorf("vm: update percentage %v out of [0,100]", pct)
	}
	count := int(pct / 100 * float64(r.pages))
	perm := r.rng.Perm(r.pages)
	buf := make([]byte, PageSize)
	for _, off := range perm[:count] {
		r.fillPage(buf)
		r.vm.WritePage(r.first+off, buf)
	}
	return nil
}

func (r *Ramdisk) fillPage(buf []byte) {
	r.rng.Read(buf) //nolint:errcheck // math/rand Read never fails
}

// FillCompressible fills the first frac of memory with low-entropy pages
// (repeating short patterns, like text or sparse data structures), each
// still distinct from the others. Used to exercise the compression path.
func (v *VM) FillCompressible(frac float64) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("vm: fill fraction %v out of [0,1]", frac)
	}
	pages := int(frac * float64(v.NumPages()))
	buf := make([]byte, PageSize)
	for i := 0; i < pages; i++ {
		// A 16-byte pattern parameterized by the page number repeats across
		// the page: unique content, high redundancy.
		for j := range buf {
			buf[j] = byte((j % 16) * (i + 1))
		}
		v.WritePage(i, buf)
	}
	return nil
}

// TouchRandomPages dirties n random pages with fresh content — the
// background writer used to exercise iterative pre-copy rounds during a
// live migration.
func (v *VM) TouchRandomPages(n int) {
	buf := make([]byte, PageSize)
	for k := 0; k < n; k++ {
		v.mu.Lock()
		i := v.rng.Intn(v.NumPages())
		v.rng.Read(buf) //nolint:errcheck // math/rand Read never fails
		v.mu.Unlock()
		v.WritePage(i, buf)
	}
}

// randomPage fills buf with guest-rng random bytes.
func (v *VM) randomPage(buf []byte) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.rng.Read(buf) //nolint:errcheck // math/rand Read never fails
}
